(** Nearest-centroid bug classifier over {!Features} vectors.

    Deliberately simple and fully deterministic: features are
    z-score-normalized over the training set, one centroid per class,
    Euclidean nearest centroid wins. The point (per the paper's future
    work) is to show the *features* carry the bug class, not to tune a
    learner. *)

type model

(** [train examples] — [(class_label, feature_vector)] pairs. All
    vectors must share one dimension; at least one example required.
    Raises [Invalid_argument] otherwise. *)
val train : (string * float array) list -> model

(** [classes m] — distinct labels, sorted. *)
val classes : model -> string list

(** [classify m v] — the predicted label and the (normalized-space)
    distance to its centroid. *)
val classify : model -> float array -> string * float

(** [confusion m examples] — rows of
    [(true_label, predicted_label, count)] over a labeled test set. *)
val confusion : model -> (string * float array) list -> (string * string * int) list

(** [accuracy m examples] — fraction classified correctly. *)
val accuracy : model -> (string * float array) list -> float

(** [render_confusion rows] — a confusion-matrix table. *)
val render_confusion : (string * string * int) list -> string
