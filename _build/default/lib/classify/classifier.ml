type model = {
  dim : int;
  mean : float array;
  stddev : float array;
  centroids : (string * float array) list; (* in normalized space *)
}

let normalize m v = Array.mapi (fun i x -> (x -. m.mean.(i)) /. m.stddev.(i)) v

let train examples =
  (match examples with
  | [] -> invalid_arg "Classifier.train: no examples"
  | (_, v) :: rest ->
    let dim = Array.length v in
    if List.exists (fun (_, w) -> Array.length w <> dim) rest then
      invalid_arg "Classifier.train: inconsistent dimensions");
  let dim = Array.length (snd (List.hd examples)) in
  let n = float_of_int (List.length examples) in
  let mean = Array.make dim 0.0 in
  List.iter (fun (_, v) -> Array.iteri (fun i x -> mean.(i) <- mean.(i) +. x) v) examples;
  Array.iteri (fun i s -> mean.(i) <- s /. n) mean;
  let var = Array.make dim 0.0 in
  List.iter
    (fun (_, v) ->
      Array.iteri (fun i x -> var.(i) <- var.(i) +. ((x -. mean.(i)) ** 2.0)) v)
    examples;
  let stddev =
    Array.map (fun s -> let d = sqrt (s /. n) in if d < 1e-9 then 1.0 else d) var
  in
  let m0 = { dim; mean; stddev; centroids = [] } in
  let by_class = Hashtbl.create 8 in
  List.iter
    (fun (label, v) ->
      let nv = normalize m0 v in
      let sum, count =
        Option.value ~default:(Array.make dim 0.0, 0) (Hashtbl.find_opt by_class label)
      in
      Array.iteri (fun i x -> sum.(i) <- sum.(i) +. x) nv;
      Hashtbl.replace by_class label (sum, count + 1))
    examples;
  let centroids =
    Hashtbl.fold
      (fun label (sum, count) acc ->
        (label, Array.map (fun s -> s /. float_of_int count) sum) :: acc)
      by_class []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  { m0 with centroids }

let classes m = List.map fst m.centroids

let distance a b =
  let acc = ref 0.0 in
  Array.iteri (fun i x -> acc := !acc +. ((x -. b.(i)) ** 2.0)) a;
  sqrt !acc

let classify m v =
  if Array.length v <> m.dim then invalid_arg "Classifier.classify: dimension";
  let nv = normalize m v in
  List.fold_left
    (fun (best_l, best_d) (label, c) ->
      let d = distance nv c in
      if d < best_d then (label, d) else (best_l, best_d))
    ("", infinity) m.centroids

let confusion m examples =
  let counts = Hashtbl.create 16 in
  List.iter
    (fun (truth, v) ->
      let predicted, _ = classify m v in
      let key = (truth, predicted) in
      Hashtbl.replace counts key
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts key)))
    examples;
  Hashtbl.fold (fun (t, p) c acc -> (t, p, c) :: acc) counts []
  |> List.sort compare

let accuracy m examples =
  if examples = [] then invalid_arg "Classifier.accuracy: no examples";
  let correct =
    List.fold_left
      (fun acc (truth, v) -> if fst (classify m v) = truth then acc + 1 else acc)
      0 examples
  in
  float_of_int correct /. float_of_int (List.length examples)

let render_confusion rows =
  Difftrace_util.Texttable.render
    ~headers:[ "True class"; "Predicted"; "Count" ]
    (List.map (fun (t, p, c) -> [ t; p; string_of_int c ]) rows)
