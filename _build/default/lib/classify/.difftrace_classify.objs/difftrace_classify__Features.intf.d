lib/classify/features.mli: Difftrace Difftrace_simulator
