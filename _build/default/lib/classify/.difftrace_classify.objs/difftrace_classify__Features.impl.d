lib/classify/features.ml: Array Difftrace Difftrace_fca Difftrace_nlr Difftrace_simulator Float Lazy List
