lib/classify/classifier.ml: Array Difftrace_util Hashtbl List Option String
