lib/classify/classifier.mli:
