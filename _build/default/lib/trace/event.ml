type t = Call of int | Return of int

let id = function Call i | Return i -> i
let is_call = function Call _ -> true | Return _ -> false
let is_return e = not (is_call e)

let equal a b =
  match (a, b) with
  | Call x, Call y | Return x, Return y -> x = y
  | Call _, Return _ | Return _, Call _ -> false

let to_string symtab = function
  | Call i -> Symtab.name symtab i
  | Return i -> "ret " ^ Symtab.name symtab i

let encode = function Call i -> i lsl 1 | Return i -> (i lsl 1) lor 1
let decode n = if n land 1 = 0 then Call (n lsr 1) else Return (n lsr 1)
