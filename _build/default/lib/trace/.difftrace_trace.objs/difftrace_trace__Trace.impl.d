lib/trace/trace.ml: Array Difftrace_util Event Format Hashtbl Printf
