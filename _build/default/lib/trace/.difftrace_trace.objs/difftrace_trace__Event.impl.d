lib/trace/event.ml: Symtab
