lib/trace/trace_set.mli: Event Symtab Trace
