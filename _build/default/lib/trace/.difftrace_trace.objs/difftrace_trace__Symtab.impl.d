lib/trace/symtab.ml: Difftrace_util Hashtbl Vec
