lib/trace/trace_set.ml: Array Int List Symtab Trace
