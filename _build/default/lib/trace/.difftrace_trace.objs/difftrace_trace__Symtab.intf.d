lib/trace/symtab.mli:
