lib/trace/event.mli: Symtab
