type t = { symtab : Symtab.t; traces : Trace.t array }

let compare_trace (a : Trace.t) (b : Trace.t) =
  match Int.compare a.pid b.pid with 0 -> Int.compare a.tid b.tid | c -> c

let create symtab traces =
  let arr = Array.of_list traces in
  Array.sort compare_trace arr;
  { symtab; traces = arr }

let symtab t = t.symtab
let traces t = t.traces
let cardinal t = Array.length t.traces

let find t ~pid ~tid =
  Array.find_opt (fun (tr : Trace.t) -> tr.pid = pid && tr.tid = tid) t.traces

let find_exn t ~pid ~tid =
  match find t ~pid ~tid with Some tr -> tr | None -> raise Not_found

let labels ?short t = Array.map (fun tr -> Trace.label ?short tr) t.traces

let processes t =
  List.sort_uniq Int.compare
    (Array.to_list (Array.map (fun (tr : Trace.t) -> tr.pid) t.traces))

let total_events t =
  Array.fold_left (fun acc tr -> acc + Trace.length tr) 0 t.traces

let map_events f t =
  { t with
    traces =
      Array.map (fun (tr : Trace.t) -> { tr with Trace.events = f tr }) t.traces }
