(** Trace events: function calls and returns, by interned symbol ID.

    This is the whole vocabulary DiffTrace needs — the paper's front end
    records call/return pairs at every traced interface (user code, MPI,
    OpenMP, libc) and all later phases are defined over these streams. *)

type t =
  | Call of int    (** entry into function [id] *)
  | Return of int  (** exit from function [id] *)

(** [id e] is the function ID of either kind of event. *)
val id : t -> int

(** [is_call e] / [is_return e]. *)
val is_call : t -> bool

val is_return : t -> bool

(** [equal a b] — structural equality. *)
val equal : t -> t -> bool

(** [to_string symtab e] renders as [foo] for calls and [ret foo] for
    returns. *)
val to_string : Symtab.t -> t -> string

(** [encode e] packs an event into a single non-negative int
    (LSB = return flag); [decode] inverts it. Used by the trace codec. *)
val encode : t -> int

val decode : int -> t
