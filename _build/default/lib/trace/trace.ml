type t = { pid : int; tid : int; events : Event.t array; truncated : bool }

let make ~pid ~tid ~truncated events = { pid; tid; events; truncated }

let label ?(short = false) t =
  if short && t.tid = 0 then string_of_int t.pid
  else Printf.sprintf "%d.%d" t.pid t.tid

let length t = Array.length t.events

let call_ids t =
  let out = Difftrace_util.Vec.with_capacity (Array.length t.events) in
  Array.iter
    (function
      | Event.Call id -> Difftrace_util.Vec.push out id
      | Event.Return _ -> ())
    t.events;
  Difftrace_util.Vec.to_array out

let distinct_functions t =
  let seen = Hashtbl.create 64 in
  Array.iter (fun e -> Hashtbl.replace seen (Event.id e) ()) t.events;
  Hashtbl.length seen

let to_strings symtab t = Array.to_list (Array.map (Event.to_string symtab) t.events)

let pp symtab ppf t =
  Format.fprintf ppf "@[<v 2>T%s%s:@ %a@]" (label t)
    (if t.truncated then " (truncated)" else "")
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut Format.pp_print_string)
    (to_strings symtab t)
