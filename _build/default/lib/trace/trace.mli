(** A per-thread whole-program trace.

    One value of this type corresponds to one ParLOT trace file: the
    ordered call/return events of a single thread, identified by
    [(pid, tid)] — the paper labels these "process.thread", e.g. trace
    [6.4] is thread 4 of process 6. *)

type t = {
  pid : int;  (** MPI rank of the owning process *)
  tid : int;  (** thread within the process; 0 is the master thread *)
  events : Event.t array;
  truncated : bool;
      (** [true] when the thread never terminated (deadlock / hang):
          the trace ends mid-execution, exactly as a ParLOT file of a
          hung process would. *)
}

(** [make ~pid ~tid ~truncated events]. *)
val make : pid:int -> tid:int -> truncated:bool -> Event.t array -> t

(** [label t] is the paper's "pid.tid" label, e.g. ["6.4"]. Threads of a
    single-threaded run ([tid = 0]) are labeled just ["6"] when
    [short:true]. *)
val label : ?short:bool -> t -> string

(** [length t] is the number of events. *)
val length : t -> int

(** [call_ids t] is the sequence of function IDs of the [Call] events
    only, in order — the input to the NLR and FCA stages once returns
    have been filtered. *)
val call_ids : t -> int array

(** [distinct_functions t] is the number of distinct function IDs
    appearing in [t]. *)
val distinct_functions : t -> int

(** [to_strings symtab t] renders each event. *)
val to_strings : Symtab.t -> t -> string list

(** [pp symtab ppf t] prints the label and events. *)
val pp : Symtab.t -> Format.formatter -> t -> unit
