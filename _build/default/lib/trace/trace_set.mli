(** The traces of one whole-program execution.

    Groups every per-thread trace of a run together with the execution's
    shared symbol table; this is what the DiffTrace pipeline consumes and
    what "JSM of an execution" is defined over. *)

type t

(** [create symtab traces] sorts traces by [(pid, tid)]. *)
val create : Symtab.t -> Trace.t list -> t

val symtab : t -> Symtab.t

(** [traces t] in [(pid, tid)] order. *)
val traces : t -> Trace.t array

(** [cardinal t] is the number of traces. *)
val cardinal : t -> int

(** [find t ~pid ~tid] is the trace of that thread. *)
val find : t -> pid:int -> tid:int -> Trace.t option

(** [find_exn t ~pid ~tid] — raises [Not_found] when absent. *)
val find_exn : t -> pid:int -> tid:int -> Trace.t

(** [labels ?short t] is [Trace.label] of each trace, in order. *)
val labels : ?short:bool -> t -> string array

(** [processes t] is the sorted list of distinct pids. *)
val processes : t -> int list

(** [total_events t] is the summed event count. *)
val total_events : t -> int

(** [map_events f t] rewrites every trace's event array (used by the
    filtering stage); the symbol table is shared unchanged. *)
val map_events : (Trace.t -> Event.t array) -> t -> t
