(** Function-symbol interning.

    ParLOT stores traces as sequences of small integer function IDs, not
    strings; all analysis layers work on IDs and only resolve names for
    presentation. A symbol table is shared by every thread of an
    execution so that IDs are comparable across traces. *)

type t

(** [create ()] is an empty table. *)
val create : unit -> t

(** [intern t name] returns the ID of [name], assigning the next free ID
    on first sight. IDs are dense, starting at 0. *)
val intern : t -> string -> int

(** [find_opt t name] is the ID of [name] if already interned. *)
val find_opt : t -> string -> int option

(** [name t id] is the name of [id].
    Raises [Invalid_argument] for unknown IDs. *)
val name : t -> int -> string

(** [size t] is the number of interned symbols. *)
val size : t -> int

(** [names t] is all interned names, indexed by ID. *)
val names : t -> string array
