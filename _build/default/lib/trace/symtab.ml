open Difftrace_util

type t = { by_name : (string, int) Hashtbl.t; by_id : string Vec.t }

let create () = { by_name = Hashtbl.create 256; by_id = Vec.create () }

let intern t name =
  match Hashtbl.find_opt t.by_name name with
  | Some id -> id
  | None ->
    let id = Vec.length t.by_id in
    Hashtbl.add t.by_name name id;
    Vec.push t.by_id name;
    id

let find_opt t name = Hashtbl.find_opt t.by_name name

let name t id =
  if id < 0 || id >= Vec.length t.by_id then invalid_arg "Symtab.name: unknown ID";
  Vec.get t.by_id id

let size t = Vec.length t.by_id
let names t = Vec.to_array t.by_id
