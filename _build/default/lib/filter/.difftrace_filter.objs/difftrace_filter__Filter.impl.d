lib/filter/filter.ml: Array Difftrace_trace Difftrace_util Event List Printf Re String Symtab Trace Trace_set
