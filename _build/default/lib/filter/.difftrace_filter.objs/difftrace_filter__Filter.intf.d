lib/filter/filter.mli: Difftrace_trace
