(** Trace front-end filters (paper Table I).

    A filter is two primary *drop* switches (function returns, [.plt]
    stubs) plus a union of *keep* categories; when at least one keep
    category is enabled, only matching calls survive. Filters are pure
    views over decoded traces — the whole point of whole-program
    tracing is that the same capture can be re-filtered offline at every
    debug iteration. *)

type keep =
  | Mpi_all          (** functions starting with [MPI_] *)
  | Mpi_collectives  (** MPI_Barrier / Allreduce / Reduce / Bcast / … *)
  | Mpi_send_recv    (** MPI_Send/Isend/Recv/Irecv/Wait *)
  | Mpi_internal     (** inner MPI library frames (MPID*, MPIDI*, …) *)
  | Omp_all          (** GOMP_* and omp_* *)
  | Omp_critical     (** GOMP_critical_start / GOMP_critical_end *)
  | Omp_mutex        (** mutex / omp lock functions *)
  | Sys_memory       (** memcpy, memset, malloc, … *)
  | Sys_network      (** network, tcp, socket, sched, … *)
  | Sys_poll         (** poll, yield, sched, … *)
  | Sys_string       (** strlen, strcpy, … *)
  | Custom of string (** regular expression over function names *)
  | Everything       (** keep everything (identity keep) *)

type t = {
  drop_returns : bool;
  drop_plt : bool;
  keeps : keep list; (** empty = keep all (subject to the drops) *)
}

(** [make ?drop_returns ?drop_plt keeps] — drops default to [true],
    matching the paper's usual "11." prefix. *)
val make : ?drop_returns:bool -> ?drop_plt:bool -> keep list -> t

(** [keep_name k] — compact name used in filter specs ("mpiall",
    "mem", …); [Custom re] prints as ["cust"]. *)
val keep_name : keep -> string

(** [name t] — the spec string, paper-style: two drop digits, then the
    keep names dot-separated (e.g. ["11.mem.ompcrit.cust"]). *)
val name : t -> string

(** [of_spec ?custom s] parses [name]'s format. Each ["cust"] component
    takes the next regex from [custom] (default [".*"]).
    Raises [Invalid_argument] on unknown components. *)
val of_spec : ?custom:string list -> string -> t

(** [matches t fname] — would a call to [fname] survive the keep
    stage? (Ignores the two drop switches.) *)
val matches : t -> string -> bool

(** [apply t symtab events] — the filtered event sequence. *)
val apply :
  t ->
  Difftrace_trace.Symtab.t ->
  Difftrace_trace.Event.t array ->
  Difftrace_trace.Event.t array

(** [apply_set t ts] — filter every trace of a set. *)
val apply_set : t -> Difftrace_trace.Trace_set.t -> Difftrace_trace.Trace_set.t

(** [predefined] — Table I: category, sub-category, description. *)
val predefined : (string * string * string) list
