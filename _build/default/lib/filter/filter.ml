open Difftrace_trace

type keep =
  | Mpi_all
  | Mpi_collectives
  | Mpi_send_recv
  | Mpi_internal
  | Omp_all
  | Omp_critical
  | Omp_mutex
  | Sys_memory
  | Sys_network
  | Sys_poll
  | Sys_string
  | Custom of string
  | Everything

type t = { drop_returns : bool; drop_plt : bool; keeps : keep list }

let make ?(drop_returns = true) ?(drop_plt = true) keeps =
  { drop_returns; drop_plt; keeps }

let keep_name = function
  | Mpi_all -> "mpiall"
  | Mpi_collectives -> "mpicol"
  | Mpi_send_recv -> "mpisr"
  | Mpi_internal -> "mpilib"
  | Omp_all -> "ompall"
  | Omp_critical -> "ompcrit"
  | Omp_mutex -> "ompmutex"
  | Sys_memory -> "mem"
  | Sys_network -> "net"
  | Sys_poll -> "poll"
  | Sys_string -> "str"
  | Custom _ -> "cust"
  | Everything -> "all"

let name t =
  let digit b = if b then "1" else "0" in
  String.concat "."
    (Printf.sprintf "%s%s" (digit t.drop_returns) (digit t.drop_plt)
    :: List.map keep_name t.keeps)

let of_spec ?(custom = []) s =
  match String.split_on_char '.' s with
  | [] -> invalid_arg "Filter.of_spec: empty spec"
  | digits :: rest ->
    if String.length digits <> 2 || String.exists (fun c -> c <> '0' && c <> '1') digits
    then invalid_arg ("Filter.of_spec: bad drop digits in " ^ s);
    let customs = ref custom in
    let next_custom () =
      match !customs with
      | [] -> ".*"
      | c :: tl ->
        customs := tl;
        c
    in
    let keep_of = function
      | "mpiall" | "mpi" -> Mpi_all
      | "mpicol" -> Mpi_collectives
      | "mpisr" -> Mpi_send_recv
      | "mpilib" -> Mpi_internal
      | "ompall" | "omp" -> Omp_all
      | "ompcrit" -> Omp_critical
      | "ompmutex" -> Omp_mutex
      | "mem" -> Sys_memory
      | "net" -> Sys_network
      | "poll" -> Sys_poll
      | "str" -> Sys_string
      | "cust" -> Custom (next_custom ())
      | "all" -> Everything
      | other -> invalid_arg ("Filter.of_spec: unknown component " ^ other)
    in
    { drop_returns = digits.[0] = '1';
      drop_plt = digits.[1] = '1';
      keeps = List.map keep_of rest }

let contains_any hay needles =
  List.exists
    (fun needle ->
      let nl = String.length needle and hl = String.length hay in
      let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
      go 0)
    needles

let starts_with prefix s = String.starts_with ~prefix s

let collectives =
  [ "MPI_Barrier"; "MPI_Allreduce"; "MPI_Reduce"; "MPI_Bcast"; "MPI_Allgather";
    "MPI_Gather"; "MPI_Scatter"; "MPI_Alltoall"; "MPI_Scan" ]

let send_recvs = [ "MPI_Send"; "MPI_Isend"; "MPI_Recv"; "MPI_Irecv"; "MPI_Wait"; "MPI_Waitall" ]

let keep_matches k fname =
  match k with
  | Mpi_all -> starts_with "MPI_" fname
  | Mpi_collectives -> List.mem fname collectives
  | Mpi_send_recv -> List.mem fname send_recvs
  | Mpi_internal -> starts_with "MPID" fname
  | Omp_all -> starts_with "GOMP_" fname || starts_with "omp_" fname
  | Omp_critical -> fname = "GOMP_critical_start" || fname = "GOMP_critical_end"
  | Omp_mutex ->
    contains_any fname [ "mutex" ] || fname = "omp_set_lock" || fname = "omp_unset_lock"
  | Sys_memory -> contains_any fname [ "memcpy"; "memchk"; "memset"; "memmove"; "alloc" ]
  | Sys_network -> contains_any fname [ "network"; "tcp"; "socket"; "sched" ]
  | Sys_poll -> contains_any fname [ "poll"; "yield"; "sched" ]
  | Sys_string -> starts_with "str" fname
  | Custom re -> Re.execp (Re.compile (Re.Perl.re re)) fname
  | Everything -> true

let matches t fname =
  t.keeps = [] || List.exists (fun k -> keep_matches k fname) t.keeps

(* Per-symbol keep decision, precompiled once per (filter, symtab). *)
let keep_table t symtab =
  let compiled =
    List.map
      (function
        | Custom re ->
          let re = Re.compile (Re.Perl.re re) in
          fun fname -> Re.execp re fname
        | k -> fun fname -> keep_matches k fname)
      t.keeps
  in
  let names = Symtab.names symtab in
  Array.map
    (fun fname ->
      let plt = String.length fname > 4 && String.ends_with ~suffix:".plt" fname in
      let kept = compiled = [] || List.exists (fun f -> f fname) compiled in
      kept && not (t.drop_plt && plt))
    names

let apply_with_table t table events =
  let out = Difftrace_util.Vec.with_capacity (Array.length events) in
  Array.iter
    (fun e ->
      let keep =
        (match e with
        | Event.Return _ when t.drop_returns -> false
        | Event.Call id | Event.Return id -> table.(id))
      in
      if keep then Difftrace_util.Vec.push out e)
    events;
  Difftrace_util.Vec.to_array out

let apply t symtab events = apply_with_table t (keep_table t symtab) events

let apply_set t ts =
  let table = keep_table t (Trace_set.symtab ts) in
  Trace_set.map_events (fun tr -> apply_with_table t table tr.Trace.events) ts

let predefined =
  [ ("Primary", "Returns", "Filter out all returns");
    ("Primary", "PLT", "Filter out the \".plt\" stub calls for dynamically resolved externals");
    ("MPI", "MPI All", "Only keep functions that start with \"MPI_\"");
    ("MPI", "MPI Collectives", "Only keep MPI collective calls (MPI_Barrier, MPI_Allreduce, ...)");
    ("MPI", "MPI Send/Recv", "Only keep MPI_Send, MPI_Isend, MPI_Recv, MPI_Irecv and MPI_Wait");
    ("MPI", "MPI Internal Library", "Keep all inner MPI library calls");
    ("OMP", "OMP All", "Only keep OMP calls (starting with GOMP_)");
    ("OMP", "OMP Critical", "Only keep GOMP_critical_start and GOMP_critical_end");
    ("OMP", "OMP Mutex", "Only keep OMP mutex/lock calls");
    ("System", "Memory", "Keep any memory related functions (memcpy, memchk, alloc, malloc, ...)");
    ("System", "Network", "Keep any network related functions (network, tcp, sched, ...)");
    ("System", "Poll", "Keep any poll related functions (poll, yield, sched, ...)");
    ("System", "String", "Keep any string related functions (strlen, strcpy, ...)");
    ("Advanced", "Custom", "Any regular expression can be captured");
    ("Advanced", "Everything", "Does not filter anything") ]
