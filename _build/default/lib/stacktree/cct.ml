open Difftrace_trace

type node = {
  frame : string;
  calls : int;
  by : (int * int) list;
  children : node list;
}

type t = { roots : node list }

(* Mutable builder tree. *)
type mnode = {
  m_frame : string;
  mutable m_calls : int;
  mutable m_by : (int * int) list;
  m_children : (string, mnode) Hashtbl.t;
  m_order : string Difftrace_util.Vec.t; (* first-seen child order *)
}

let mnode frame =
  { m_frame = frame;
    m_calls = 0;
    m_by = [];
    m_children = Hashtbl.create 4;
    m_order = Difftrace_util.Vec.create () }

let child_of parent frame =
  match Hashtbl.find_opt parent.m_children frame with
  | Some c -> c
  | None ->
    let c = mnode frame in
    Hashtbl.add parent.m_children frame c;
    Difftrace_util.Vec.push parent.m_order frame;
    c

let add_trace root symtab (tr : Trace.t) =
  let who = (tr.Trace.pid, tr.Trace.tid) in
  let stack = ref [ root ] in
  let touch node =
    node.m_calls <- node.m_calls + 1;
    match node.m_by with
    | w :: _ when w = who -> ()
    | _ -> node.m_by <- who :: node.m_by
  in
  Array.iter
    (fun ev ->
      match ev with
      | Event.Call id ->
        let top = List.hd !stack in
        let c = child_of top (Symtab.name symtab id) in
        touch c;
        stack := c :: !stack
      | Event.Return id -> (
        match !stack with
        | top :: (_ :: _ as rest) when top.m_frame = Symtab.name symtab id ->
          stack := rest
        | _ -> () (* unmatched return: filtered trace, ignore *)))
    tr.Trace.events

let rec freeze m =
  { frame = m.m_frame;
    calls = m.m_calls;
    by = List.sort_uniq compare m.m_by;
    children =
      Difftrace_util.Vec.to_list m.m_order
      |> List.map (fun f -> freeze (Hashtbl.find m.m_children f)) }

let freeze_root root = { roots = (freeze root).children }

let of_trace symtab tr =
  let root = mnode "<root>" in
  add_trace root symtab tr;
  freeze_root root

let coalesce ts =
  let symtab = Trace_set.symtab ts in
  let root = mnode "<root>" in
  Array.iter (add_trace root symtab) (Trace_set.traces ts);
  freeze_root root

let total_calls t =
  let rec go acc n = List.fold_left go (acc + n.calls) n.children in
  List.fold_left go 0 t.roots

let find t path =
  let rec go nodes = function
    | [] -> None
    | [ frame ] -> List.find_opt (fun n -> n.frame = frame) nodes
    | frame :: rest -> (
      match List.find_opt (fun n -> n.frame = frame) nodes with
      | Some n -> go n.children rest
      | None -> None)
  in
  go t.roots path

type delta = { path : string list; normal_calls : int; faulty_calls : int }

let diff ~normal ~faulty =
  let table = Hashtbl.create 256 in
  let rec walk which prefix nodes =
    List.iter
      (fun n ->
        let path = List.rev (n.frame :: prefix) in
        let a, b = Option.value ~default:(0, 0) (Hashtbl.find_opt table path) in
        Hashtbl.replace table path
          (match which with `N -> (n.calls, b) | `F -> (a, n.calls));
        walk which (n.frame :: prefix) n.children)
      nodes
  in
  walk `N [] normal.roots;
  walk `F [] faulty.roots;
  Hashtbl.fold
    (fun path (a, b) acc ->
      if a <> b then { path; normal_calls = a; faulty_calls = b } :: acc else acc)
    table []
  |> List.sort (fun x y ->
         match
           Int.compare
             (abs (y.faulty_calls - y.normal_calls))
             (abs (x.faulty_calls - x.normal_calls))
         with
         | 0 -> compare x.path y.path
         | c -> c)

let render ?(max_depth = max_int) t =
  let buf = Buffer.create 1024 in
  let rec go depth indent n =
    if depth <= max_depth then begin
      Buffer.add_string buf
        (Printf.sprintf "%s%s x%d (%d threads)\n" indent n.frame n.calls
           (List.length n.by));
      List.iter (go (depth + 1) (indent ^ "  ")) n.children
    end
  in
  List.iter (go 1 "") t.roots;
  Buffer.contents buf

let render_diff deltas =
  Difftrace_util.Texttable.render
    ~headers:[ "Calling context"; "Normal"; "Faulty" ]
    (List.map
       (fun d ->
         [ String.concat " > " d.path;
           string_of_int d.normal_calls;
           string_of_int d.faulty_calls ])
       deltas)

let to_dot ?(title = "calling-context tree") t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph cct {\n";
  Buffer.add_string buf (Printf.sprintf "  label=%S;\n" title);
  Buffer.add_string buf "  node [shape=box];\n";
  let counter = ref 0 in
  let rec go parent n =
    let id = !counter in
    incr counter;
    Buffer.add_string buf
      (Printf.sprintf "  n%d [label=\"%s\\nx%d (%d thr)\"];\n" id n.frame n.calls
         (List.length n.by));
    (match parent with
    | Some p -> Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" p id)
    | None -> ());
    List.iter (go (Some id)) n.children
  in
  List.iter (go None) t.roots;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
