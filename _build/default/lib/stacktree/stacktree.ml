open Difftrace_trace

let final_stack symtab (tr : Trace.t) =
  let stack = ref [] in
  Array.iter
    (fun ev ->
      match ev with
      | Event.Call id -> stack := id :: !stack
      | Event.Return id -> (
        (* pop the matching frame; ignore unmatched returns, which
           appear when the trace was filtered *)
        match !stack with
        | top :: rest when top = id -> stack := rest
        | _ -> ()))
    tr.Trace.events;
  List.rev_map (Symtab.name symtab) !stack

type node = { frame : string; members : (int * int) list; children : node list }
type t = { roots : node list; idle : (int * int) list }

(* Build the tree from (stack, thread) pairs by grouping on the head
   frame at each level. Ordering: nodes sorted by descending member
   count, ties by frame name. *)
let rec build_level entries =
  let by_frame = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (stack, who) ->
      match stack with
      | [] -> ()
      | frame :: rest ->
        if not (Hashtbl.mem by_frame frame) then order := frame :: !order;
        Hashtbl.replace by_frame frame
          ((rest, who) :: Option.value ~default:[] (Hashtbl.find_opt by_frame frame)))
    entries;
  List.rev !order
  |> List.map (fun frame ->
         let sub = List.rev (Hashtbl.find by_frame frame) in
         { frame;
           members = List.sort compare (List.map snd sub);
           children = build_level sub })
  |> List.sort (fun a b ->
         match Int.compare (List.length b.members) (List.length a.members) with
         | 0 -> String.compare a.frame b.frame
         | c -> c)

let build ts =
  let symtab = Trace_set.symtab ts in
  let entries =
    Array.to_list (Trace_set.traces ts)
    |> List.map (fun (tr : Trace.t) ->
           (final_stack symtab tr, (tr.Trace.pid, tr.Trace.tid)))
  in
  let idle = List.filter (fun (s, _) -> s = []) entries |> List.map snd in
  { roots = build_level entries; idle = List.sort compare idle }

let equivalence_classes t =
  let classes = Hashtbl.create 32 in
  let rec walk prefix node =
    let stack = List.rev (node.frame :: prefix) in
    (* threads whose stack ENDS at this node: members not in any child *)
    let deeper =
      List.concat_map (fun c -> c.members) node.children |> List.sort_uniq compare
    in
    let ending = List.filter (fun m -> not (List.mem m deeper)) node.members in
    if ending <> [] then Hashtbl.replace classes stack ending;
    List.iter (walk (node.frame :: prefix)) node.children
  in
  List.iter (walk []) t.roots;
  let cls =
    Hashtbl.fold (fun stack members acc -> (stack, members) :: acc) classes []
    |> List.sort (fun (sa, ma) (sb, mb) ->
           match Int.compare (List.length mb) (List.length ma) with
           | 0 -> compare sa sb
           | c -> c)
  in
  if t.idle = [] then cls else cls @ [ ([], t.idle) ]

let label (p, t) = Printf.sprintf "%d.%d" p t

let members_summary members =
  let n = List.length members in
  let shown = List.filteri (fun i _ -> i < 6) members |> List.map label in
  Printf.sprintf "[%d: %s%s]" n (String.concat "," shown)
    (if n > 6 then ",..." else "")

let render t =
  let buf = Buffer.create 1024 in
  let rec go indent node =
    Buffer.add_string buf
      (Printf.sprintf "%s%s %s\n" indent node.frame (members_summary node.members));
    List.iter (go (indent ^ "  ")) node.children
  in
  List.iter (go "") t.roots;
  if t.idle <> [] then
    Buffer.add_string buf
      (Printf.sprintf "(completed cleanly) %s\n" (members_summary t.idle));
  Buffer.contents buf
