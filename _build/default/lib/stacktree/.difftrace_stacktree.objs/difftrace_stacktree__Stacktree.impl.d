lib/stacktree/stacktree.ml: Array Buffer Difftrace_trace Event Hashtbl Int List Option Printf String Symtab Trace Trace_set
