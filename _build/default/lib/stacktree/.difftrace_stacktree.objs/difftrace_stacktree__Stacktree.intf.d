lib/stacktree/stacktree.mli: Difftrace_trace
