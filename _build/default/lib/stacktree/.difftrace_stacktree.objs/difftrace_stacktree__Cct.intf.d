lib/stacktree/cct.mli: Difftrace_trace
