lib/stacktree/cct.ml: Array Buffer Difftrace_trace Difftrace_util Event Hashtbl Int List Option Printf String Symtab Trace Trace_set
