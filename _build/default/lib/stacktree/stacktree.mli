(** STAT-style stack prefix trees (paper §II-E and §VI, refs [14][15]).

    "The widely used and highly successful STAT tool owes most of its
    success for being able to efficiently collect stack traces, organize
    them as prefix-trees, and equivalence the processes into teams" —
    this module provides that view over the simulator's whole-program
    traces: each thread's *final* call stack (functions entered but
    never returned from) is reconstructed from its call/return stream;
    the stacks are merged into a prefix tree whose nodes carry the set
    of threads passing through; threads with identical final stacks form
    equivalence classes. For a hung run this answers "where is everyone
    stuck" at a glance — the triage STAT performs on live jobs. *)

(** [final_stack symtab trace] — the call stack at the end of the
    trace, outermost function first. Empty for a thread that returned
    from everything (a completed run whose events balance). Unmatched
    returns are ignored (robustness against filtered traces). *)
val final_stack :
  Difftrace_trace.Symtab.t -> Difftrace_trace.Trace.t -> string list

(** A prefix-tree node: the function name, the threads whose final
    stack goes through this frame, and the deeper frames. *)
type node = {
  frame : string;
  members : (int * int) list;  (** (pid, tid), sorted *)
  children : node list;
}

type t = {
  roots : node list;
  idle : (int * int) list;
      (** threads with an empty final stack (completed cleanly) *)
}

(** [build ts] — the merged prefix tree over every trace's final
    stack. *)
val build : Difftrace_trace.Trace_set.t -> t

(** [equivalence_classes t] — groups of threads with identical final
    stacks, largest class first; the empty-stack class (if any) comes
    last. Each class is [(stack, members)]. *)
val equivalence_classes : t -> (string list * (int * int) list) list

(** [render t] — STAT-like ASCII tree, member counts and sample labels
    on every node. *)
val render : t -> string
