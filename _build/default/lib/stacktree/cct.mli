(** Coalesced calling-context trees (paper §II-E / §VI, ref [15]).

    CSTGs "have proven effective in locating bugs within Uintah and
    perform STAT-like equivalence class formation, albeit with the
    added detail of maintaining calling contexts". This module builds a
    calling-context tree from each trace's call/return nesting — node =
    call path, weight = number of invocations — coalesces the trees of
    all threads of a run, and diffs two coalesced trees, yielding the
    per-context call-count deltas that localize behavioural changes
    with full context. *)

type node = {
  frame : string;
  calls : int;            (** total invocations of this context *)
  by : (int * int) list;  (** threads contributing, sorted *)
  children : node list;
}

type t = { roots : node list }

(** [of_trace symtab trace] — one thread's calling-context tree. Calls
    left open at the end of a truncated trace still count. *)
val of_trace : Difftrace_trace.Symtab.t -> Difftrace_trace.Trace.t -> t

(** [coalesce ts] — the merged tree over every trace of the run. *)
val coalesce : Difftrace_trace.Trace_set.t -> t

(** [total_calls t] — sum of [calls] over all nodes. *)
val total_calls : t -> int

(** [find t path] — the node at [path] (a list of frames from a root),
    if present. *)
val find : t -> string list -> node option

(** A context whose call count changed between two runs. *)
type delta = {
  path : string list;
  normal_calls : int;  (** 0 = context only in the faulty run *)
  faulty_calls : int;  (** 0 = context disappeared *)
}

(** [diff ~normal ~faulty] — all contexts whose counts differ, sorted
    by descending |delta|. *)
val diff : normal:t -> faulty:t -> delta list

(** [render ?max_depth t] — indented tree with counts and contributor
    summaries. *)
val render : ?max_depth:int -> t -> string

(** [render_diff deltas] — a change table ("context, normal, faulty"). *)
val render_diff : delta list -> string

(** [to_dot ?title t] — Graphviz rendering of the coalesced tree; edge
    labels carry call counts. *)
val to_dot : ?title:string -> t -> string
