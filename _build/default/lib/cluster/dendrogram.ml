type tree =
  | Leaf of int
  | Node of { left : tree; right : tree; height : float; size : int }

let of_linkage (t : Linkage.t) =
  let n = t.Linkage.n in
  let nodes = Array.make (n + Array.length t.Linkage.merges) (Leaf 0) in
  for i = 0 to n - 1 do
    nodes.(i) <- Leaf i
  done;
  Array.iteri
    (fun step (m : Linkage.merge) ->
      nodes.(n + step) <-
        Node
          { left = nodes.(m.Linkage.a);
            right = nodes.(m.Linkage.b);
            height = m.Linkage.dist;
            size = m.Linkage.size })
    t.Linkage.merges;
  let nmerges = Array.length t.Linkage.merges in
  if nmerges = 0 then nodes.(0) else nodes.(n + nmerges - 1)

let rec leaf_order = function
  | Leaf i -> [ i ]
  | Node { left; right; _ } -> leaf_order left @ leaf_order right

let height = function Leaf _ -> 0.0 | Node { height; _ } -> height

(* Recursive box rendering: each subtree renders as lines plus the
   column index of its connector. *)
let render ?labels (t : Linkage.t) =
  let label i =
    match labels with
    | Some ls when i < Array.length ls -> ls.(i)
    | Some _ | None -> string_of_int i
  in
  let tree = of_linkage t in
  let rec go = function
    | Leaf i ->
      let s = label i in
      ([ s ], String.length s / 2, String.length s)
    | Node { left; right; height; _ } ->
      let llines, lcol, lw = go left in
      let rlines, rcol, rw = go right in
      let head = Printf.sprintf "[%.2f]" height in
      (* widen the gap so the height label always fits *)
      let gap = max 3 (String.length head + 2 - lw - rw) in
      let width = lw + gap + rw in
      let pad_to w s = s ^ String.make (max 0 (w - String.length s)) ' ' in
      let merged =
        let rec zip a b =
          match (a, b) with
          | [], [] -> []
          | x :: xs, [] -> (pad_to lw x ^ String.make gap ' ' ^ String.make rw ' ') :: zip xs []
          | [], y :: ys -> (String.make (lw + gap) ' ' ^ pad_to rw y) :: zip [] ys
          | x :: xs, y :: ys -> (pad_to lw x ^ String.make gap ' ' ^ pad_to rw y) :: zip xs ys
        in
        zip llines rlines
      in
      let rcol_abs = lw + gap + rcol in
      let connector = Bytes.make width ' ' in
      for c = lcol to rcol_abs do
        Bytes.set connector c '-'
      done;
      Bytes.set connector lcol '+';
      Bytes.set connector rcol_abs '+';
      let mid = (lcol + rcol_abs) / 2 in
      let head_line = Bytes.make width ' ' in
      Bytes.set head_line mid '|';
      let head_start = min (max 0 (mid - (String.length head / 2))) (max 0 (width - String.length head)) in
      String.iteri
        (fun i c ->
          if head_start + i < width then Bytes.set head_line (head_start + i) c)
        head;
      ( Bytes.to_string head_line :: Bytes.to_string connector :: merged,
        mid,
        width )
  in
  let lines, _, _ = go tree in
  String.concat "\n" lines ^ "\n"
