(** Dendrogram structure and text rendering (paper §III-C).

    DiffTrace "reorders the dendrograms built to achieve the
    clustering"; this module materializes a {!Linkage.t} merge list as
    a tree, provides the leaf order a dendrogram plot would use, and
    renders an ASCII figure. *)

type tree =
  | Leaf of int
  | Node of { left : tree; right : tree; height : float; size : int }

(** [of_linkage t] — the merge tree ([t] must come from
    {!Linkage.cluster}, n ≥ 1). *)
val of_linkage : Linkage.t -> tree

(** [leaf_order tree] — leaves left-to-right, the dendrogram x-axis. *)
val leaf_order : tree -> int list

(** [height tree] — root merge height (0 for a single leaf). *)
val height : tree -> float

(** [render ?labels t] — ASCII dendrogram of a linkage (labels default
    to leaf indices), drawn top-down with merge heights annotated. *)
val render : ?labels:string array -> Linkage.t -> string
