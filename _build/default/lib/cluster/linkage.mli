(** Agglomerative hierarchical clustering (paper §III-C).

    A Lance–Williams implementation of the seven SciPy linkage methods
    the paper lists (ward is the one used for every reported table).
    Input is a symmetric dissimilarity matrix; output is a SciPy-style
    merge list: step [t] merges clusters [a] and [b] (leaves are
    [0..n-1], the cluster formed at step [t] is [n+t]) at height
    [dist] into a cluster of [size] leaves. *)

type method_ =
  | Single
  | Complete
  | Average   (** UPGMA *)
  | Weighted  (** WPGMA *)
  | Centroid
  | Median
  | Ward      (** variance minimization — the paper's default *)

val method_name : method_ -> string

(** [method_of_string s] parses lowercase method names.
    Raises [Invalid_argument] on unknown names. *)
val method_of_string : string -> method_

val all_methods : method_ list

type merge = { a : int; b : int; dist : float; size : int }

(** A dendrogram over [n] leaves: [n - 1] merges in nondecreasing
    height order (heights can locally invert for centroid/median, as in
    SciPy). *)
type t = { n : int; merges : merge array }

(** [cluster method m] — [m] must be square and symmetric with zero
    diagonal. Raises [Invalid_argument] otherwise. A 1×1 input yields
    an empty merge list. *)
val cluster : method_ -> float array array -> t

(** [cut_k t k] — the flat clustering with exactly [k] clusters
    (1 ≤ k ≤ n): an array mapping each leaf to a cluster id in
    [0..k-1] (ids are normalized by first appearance). *)
val cut_k : t -> int -> int array

(** [cut_height t h] — the flat clustering obtained by refusing merges
    with [dist > h]. *)
val cut_height : t -> float -> int array

(** [cophenetic t] — the n×n matrix of merge heights at which leaf
    pairs first join (used by tests against hand-computed values). *)
val cophenetic : t -> float array array
