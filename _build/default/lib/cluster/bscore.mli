(** Fowlkes–Mallows comparison of two hierarchical clusterings
    (paper §III-C, ref [17]).

    For each cut level k, B_k ∈ [0, 1] measures the agreement of the
    two k-cluster flat clusterings (1 = identical). The paper uses a
    single scalar "B-score" as the ranking-table sort key: we take the
    mean of B_k over k = 2 .. n−1, the summary Fowlkes & Mallows plot.
    Lower B-score = the fault changed the clustering structure more. *)

(** [bk a b ~k] — the Fowlkes–Mallows index of the two dendrograms cut
    at [k] clusters. The dendrograms must have the same leaf count.
    By convention returns 1.0 when either [Pk] or [Qk] is zero (both
    cuts are all-singletons there, carrying no information). *)
val bk : Linkage.t -> Linkage.t -> k:int -> float

(** [bk_of_assignments x y] — Fowlkes–Mallows of two flat clusterings
    given as leaf→cluster arrays of equal length. *)
val bk_of_assignments : int array -> int array -> float

(** [score a b] — mean B_k over k = 2 .. n−1 (1.0 when n < 3). *)
val score : Linkage.t -> Linkage.t -> float

(** [series a b] — [(k, B_k)] for k = 2 .. n−1. *)
val series : Linkage.t -> Linkage.t -> (int * float) list
