let bk_of_assignments x y =
  let n = Array.length x in
  if Array.length y <> n then invalid_arg "Bscore: leaf count mismatch";
  if n = 0 then invalid_arg "Bscore: empty clusterings";
  let kx = 1 + Array.fold_left max 0 x and ky = 1 + Array.fold_left max 0 y in
  let mm = Array.make_matrix kx ky 0 in
  for i = 0 to n - 1 do
    mm.(x.(i)).(y.(i)) <- mm.(x.(i)).(y.(i)) + 1
  done;
  let tk = ref 0 and pk = ref 0 and qk = ref 0 in
  for a = 0 to kx - 1 do
    let row = ref 0 in
    for b = 0 to ky - 1 do
      tk := !tk + (mm.(a).(b) * mm.(a).(b));
      row := !row + mm.(a).(b)
    done;
    pk := !pk + (!row * !row)
  done;
  for b = 0 to ky - 1 do
    let col = ref 0 in
    for a = 0 to kx - 1 do
      col := !col + mm.(a).(b)
    done;
    qk := !qk + (!col * !col)
  done;
  let tk = !tk - n and pk = !pk - n and qk = !qk - n in
  if pk = 0 || qk = 0 then 1.0
  else float_of_int tk /. sqrt (float_of_int pk *. float_of_int qk)

let bk a b ~k =
  if a.Linkage.n <> b.Linkage.n then invalid_arg "Bscore.bk: leaf count mismatch";
  bk_of_assignments (Linkage.cut_k a k) (Linkage.cut_k b k)

let series a b =
  let n = a.Linkage.n in
  List.init (max 0 (n - 2)) (fun i ->
      let k = i + 2 in
      (k, bk a b ~k))

let score a b =
  match series a b with
  | [] -> 1.0
  | s -> List.fold_left (fun acc (_, v) -> acc +. v) 0.0 s /. float_of_int (List.length s)
