lib/cluster/linkage.ml: Array Float Hashtbl List
