lib/cluster/bscore.mli: Linkage
