lib/cluster/dendrogram.mli: Linkage
