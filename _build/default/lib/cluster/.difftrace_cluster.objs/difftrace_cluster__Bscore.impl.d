lib/cluster/bscore.ml: Array Linkage List
