lib/cluster/jsm.ml: Array Context Difftrace_fca Difftrace_util Float List
