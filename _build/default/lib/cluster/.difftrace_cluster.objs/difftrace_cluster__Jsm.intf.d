lib/cluster/jsm.mli: Difftrace_fca
