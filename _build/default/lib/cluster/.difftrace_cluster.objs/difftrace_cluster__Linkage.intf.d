lib/cluster/linkage.mli:
