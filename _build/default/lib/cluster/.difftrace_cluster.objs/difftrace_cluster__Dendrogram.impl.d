lib/cluster/dendrogram.ml: Array Bytes Linkage Printf String
