(** Vector clocks and Lamport stamps (paper §VII future work (2) and
    ref [46]).

    The runtime stamps every synchronization action (send, receive,
    collective, wait) with a per-process vector clock plus a Lamport
    scalar; {!ord}/{!happens_before} then answer temporal queries over
    two executions' traces — the "mine temporal properties such as
    happened-before" the paper plans on top of OTF2 timestamps. *)

type t

(** [create n] is the zero clock over [n] processes. *)
val create : int -> t

val copy : t -> t

(** [size t] is the number of components. *)
val size : t -> int

(** [get t i] is component [i]. *)
val get : t -> int -> int

(** [tick t i] increments component [i] in place (a local step of
    process [i]). *)
val tick : t -> int -> unit

(** [merge t other] sets [t] to the componentwise maximum in place (the
    receive rule). *)
val merge : t -> t -> unit

(** [leq a b] — pointwise ≤. *)
val leq : t -> t -> bool

val equal : t -> t -> bool

(** Causal relation between two stamps. *)
type order = Before | After | Equal | Concurrent

(** [ord a b] — [Before] iff a ≤ b pointwise and a ≠ b, etc. *)
val ord : t -> t -> order

(** [happens_before a b] = [ord a b = Before]. *)
val happens_before : t -> t -> bool

(** [concurrent a b] = [ord a b = Concurrent]. *)
val concurrent : t -> t -> bool

(** [to_list t] / [of_list l]. *)
val to_list : t -> int list

val of_list : int list -> t

(** [pp ppf t] prints as [<1,0,3>]. *)
val pp : Format.formatter -> t -> unit

(** A full logical stamp: Lamport scalar + vector snapshot. *)
type stamp = { lamport : int; vec : t }

(** [stamp_happens_before a b] — vector-clock happens-before over
    stamps. [Lamport] consistency ([a → b] implies
    [a.lamport < b.lamport]) is property-tested. *)
val stamp_happens_before : stamp -> stamp -> bool
