lib/simulator/fault.mli: Format
