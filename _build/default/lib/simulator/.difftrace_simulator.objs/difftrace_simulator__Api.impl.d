lib/simulator/api.ml: Array Difftrace_parlot Effect Int List Runtime Tracer
