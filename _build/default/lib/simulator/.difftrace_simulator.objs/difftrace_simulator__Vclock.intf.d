lib/simulator/vclock.mli: Format
