lib/simulator/explore.ml: Array Buffer Char Difftrace_trace Difftrace_util Digest Int List Printf Runtime String
