lib/simulator/api.mli: Runtime
