lib/simulator/explore.mli: Difftrace_trace Runtime
