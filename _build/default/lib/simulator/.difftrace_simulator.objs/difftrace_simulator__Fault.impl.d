lib/simulator/fault.ml: Format List Printf String
