lib/simulator/vclock.ml: Array Format List String
