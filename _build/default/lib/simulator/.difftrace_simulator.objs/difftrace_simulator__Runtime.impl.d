lib/simulator/runtime.ml: Array Capture Difftrace_parlot Difftrace_trace Difftrace_util Effect Hashtbl Int List Option Printf Prng Queue String Tracer Vclock Vec
