lib/simulator/runtime.mli: Difftrace_parlot Difftrace_trace Effect Vclock
