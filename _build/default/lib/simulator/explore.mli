(** Schedule exploration.

    The DOE correctness report the paper builds on (§I, ref [3])
    classifies "nondeterminism control" as one of the six debugging
    method types. The simulator's scheduler is a pure function of its
    seed, which makes the simplest form of it trivial: run the same
    program under many schedules and report how the outcome varies —
    does a potential deadlock actually fire, does a racy update change
    the result, how many distinct trace shapes exist? *)

type verdict = {
  seed : int;
  deadlocked : bool;
  timed_out : bool;
  races : int;
  fingerprint : int;
      (** hash of all decoded traces: schedules with equal fingerprints
          produced identical executions *)
}

type summary = {
  verdicts : verdict list;       (** one per seed, in seed order *)
  deadlock_seeds : int list;     (** seeds whose run hung *)
  distinct_outcomes : int;       (** number of distinct fingerprints *)
}

(** [run ?np ?eager_limit ?max_steps ~seeds program] — execute
    [program] once per seed. *)
val run :
  ?np:int ->
  ?eager_limit:int ->
  ?max_steps:int ->
  seeds:int list ->
  (Runtime.env -> unit) ->
  summary

(** [render s] — a compact report table. *)
val render : summary -> string

(** [fingerprint_of ts] — the full-content trace digest used in
    verdicts (exposed for external drivers). *)
val fingerprint_of : Difftrace_trace.Trace_set.t -> int
