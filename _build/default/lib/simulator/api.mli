(** Traced MPI / OpenMP programming interface.

    These wrappers are what workloads call. Each wrapper records the
    call event, performs the matching simulator effect, and records the
    return event — so a call that never completes (deadlock) leaves a
    trace ending in that call, exactly like a ParLOT trace of a hung
    process. Under [All_images] capture the wrappers additionally emit
    plausible inner library frames ([MPID_*], [memcpy], [poll], …),
    giving the Table I system filters something to select. *)

open Runtime

(** {2 MPI} *)

val mpi_init : env -> unit
val mpi_finalize : env -> unit

(** [comm_rank env] records [MPI_Comm_rank] and returns the rank. *)
val comm_rank : env -> int

(** [comm_size env] records [MPI_Comm_size] and returns [np]. *)
val comm_size : env -> int

(** [send env ~dst ?tag data] — blocking standard-mode send: completes
    immediately below the eager limit, otherwise rendezvous. *)
val send : env -> dst:int -> ?tag:int -> payload -> unit

(** [recv env ~src ?tag ()] — blocking receive from [(src, tag)]. *)
val recv : env -> src:int -> ?tag:int -> unit -> payload

val barrier : ?comm:comm -> env -> unit

(** [allreduce env ?count ~op data] — [count] defaults to
    [Array.length data]; passing a different count reproduces the
    paper's wrong-collective-size deadlock. *)
val allreduce : ?comm:comm -> env -> ?count:int -> op:reduce_op -> payload -> payload

(** [reduce env ~root ~op data] — result at [root], [[||]] elsewhere. *)
val reduce : ?comm:comm -> env -> root:int -> op:reduce_op -> payload -> payload

(** [bcast env ~root data] — [data] is consulted only at [root]. *)
val bcast : ?comm:comm -> env -> root:int -> payload -> payload

(** {2 OpenMP} *)

(** [parallel env ~num_threads body] forks a team; [body] runs once per
    team member with that member's [env] ([tid] 0..n-1, master is 0). *)
val parallel : env -> num_threads:int -> (env -> unit) -> unit

(** [critical ?name env f] runs [f] under the (process-wide) named
    critical section, recording [GOMP_critical_start]/[_end]. *)
val critical : ?name:string -> env -> (unit -> 'a) -> 'a

(** [omp_get_thread_num env] is [tid env], recorded in the trace. *)
val omp_get_thread_num : env -> int

(** {2 Generic} *)

(** [yield env] cooperatively yields (records a library-level
    [sched_yield], visible in all-images captures). *)
val yield : env -> unit

(** [call env name f] records user-function [name] around [f ()] —
    the instrumentation point for main-image user code. *)
val call : env -> string -> (unit -> 'a) -> 'a

(** [libc env name] records a call to libc function [name] through its
    PLT stub (an extra [name.plt] frame, as Pin observes). *)
val libc : env -> string -> unit

(** {2 Nonblocking point-to-point} *)

(** An MPI request handle, completed by {!wait}. *)
type request

(** [isend env ~dst ?tag data] — nonblocking standard-mode send. The
    call never blocks; complete the request with {!wait} (for
    rendezvous-sized messages that happens when the receiver consumes
    the message). *)
val isend : env -> dst:int -> ?tag:int -> payload -> request

(** [irecv env ~src ?tag ()] — nonblocking receive; matching follows
    posting order per (source, tag). *)
val irecv : env -> src:int -> ?tag:int -> unit -> request

(** [wait env r] — block until [r] completes; returns the received
    payload, or [[||]] for send requests. A request can be waited on
    once. *)
val wait : env -> request -> payload

(** [test env r] — MPI_Test: [Some payload] if [r] completed (the
    request is consumed), [None] if still pending. *)
val test : env -> request -> payload option

(** [waitall env rs] — wait on each request in order. *)
val waitall : env -> request list -> payload list

(** {2 Additional collectives (Table I's collective list)} *)

(** [allgather env data] — every rank contributes [data]; everyone
    receives the rank-ordered concatenation. All ranks must pass the
    same element count. *)
val allgather : ?comm:comm -> env -> payload -> payload

(** [gather env ~root data] — like {!allgather} but only [root]
    receives the concatenation; others get [[||]]. *)
val gather : ?comm:comm -> env -> root:int -> payload -> payload

(** [scatter env ~root ~count data] — [root] provides [np * count]
    elements; every rank receives its [count]-element slice. A root
    buffer of the wrong size hangs the collective (diagnosed). *)
val scatter : ?comm:comm -> env -> root:int -> count:int -> payload -> payload

(** [alltoall env ~count data] — each rank provides [np * count]
    elements; rank [d] receives the [d]-th [count]-slice of every
    rank, in rank order. *)
val alltoall : ?comm:comm -> env -> count:int -> payload -> payload

(** [scan env ~op data] — inclusive prefix reduction: rank [i] gets
    the reduction of ranks [0..i]. *)
val scan : ?comm:comm -> env -> op:reduce_op -> payload -> payload

(** [comm_split ?comm env ~color ~key] — partition the parent
    communicator (default world): members sharing [color] form a new
    communicator, ordered by ([key], rank). Collective over the
    parent. Root arguments to collectives on the result still take
    {e global} pids (of members). *)
val comm_split : ?comm:comm -> env -> color:int -> key:int -> comm

(** [sendrecv env ~dst ?sendtag ~src ?recvtag data] — MPI_Sendrecv:
    send [data] to [dst] and receive from [src] in one deadlock-free
    call (the receive is posted first internally). *)
val sendrecv :
  env -> dst:int -> ?sendtag:int -> src:int -> ?recvtag:int -> payload -> payload
