open Difftrace_util
open Difftrace_parlot
module Trace_set = Difftrace_trace.Trace_set

type payload = int array
type reduce_op = Op_sum | Op_min | Op_max | Op_prod

let apply_op op a b =
  if Array.length a <> Array.length b then
    invalid_arg "Runtime.apply_op: length mismatch";
  let f =
    match op with
    | Op_sum -> ( + )
    | Op_min -> min
    | Op_max -> max
    | Op_prod -> ( * )
  in
  Array.map2 f a b

type coll_kind =
  | C_barrier
  | C_allreduce
  | C_reduce
  | C_bcast
  | C_allgather
  | C_gather
  | C_scatter
  | C_alltoall
  | C_scan

(* A communicator: an identifier plus its member ranks (sorted). The
   world communicator has id 0 and every rank. *)
type comm = { comm_id : int; members : int array }

type coll_call = {
  kind : coll_kind;
  data : payload;
  op : reduce_op;
  count : int;
  root : int;
  comm : comm;
}

type race = { race_pid : int; cell_name : string; tids : int list }

(* ------------------------------------------------------------------ *)
(* Fibers and scheduler state                                          *)
(* ------------------------------------------------------------------ *)

type fiber = {
  f_pid : int;
  f_tid : int;
  mutable status : status;
  mutable held : string list; (* critical sections currently held *)
  mutable fork : fork option; (* the team this fiber is a child of *)
}

and status =
  | Runnable of (unit -> unit)
  | Blocked of blocked
  | Done
  | Hung (* still blocked / running when the run ended abnormally *)

and blocked =
  | B_send of {
      dst : int;
      tag : int;
      data : payload;
      stamp : Vclock.stamp;
      wake : unit -> unit;
    }
  | B_recv of { src : int; tag : int; wake : payload -> unit }
  | B_coll of { seq : int }
  | B_join of { fork : fork; wake : unit -> unit }
  | B_lock of { name : string }
  | B_wait of { req : int }

and fork = { parent : fiber; mutable children : fiber list }

(* [m_notify] carries the request ID of a rendezvous-sized Isend: the
   request completes when this message is consumed by a receive;
   [m_stamp] is the sender's logical clock at the send. *)
type mail = {
  m_src : int;
  m_tag : int;
  m_data : payload;
  m_notify : int option;
  m_stamp : Vclock.stamp;
}

(* A recorded synchronization action with its logical timestamp. *)
type sync_point = { sp_op : string; sp_stamp : Vclock.stamp }

(* nonblocking-communication request state *)
type req_state =
  | Req_ready of payload
  | Req_recv of { pid : int; src : int; tag : int } (* posted, unmatched *)
  | Req_send (* rendezvous isend not yet consumed *)

type participant = { p_fiber : fiber; p_call : coll_call; p_wake : payload -> unit }

type coll_slot = {
  mutable members : participant list;
  mutable poisoned : bool; (* mismatch detected: never completes *)
}

type lock_state = { mutable holder : fiber option; waiters : (fiber * (unit -> unit)) Queue.t }

type access = { a_tid : int; a_write : bool; a_locked : bool }

type state = {
  np : int;
  eager_limit : int;
  rng : Prng.t;
  capture : Capture.t;
  fibers : fiber Vec.t;
  mailboxes : mail Vec.t array; (* indexed by destination pid *)
  coll_seq : (int * int, int) Hashtbl.t;
  (* (comm_id, pid) -> next collective sequence number in that comm *)
  colls : (int * int, coll_slot) Hashtbl.t; (* (comm_id, seq) -> slot *)
  mutable next_comm : int;
  locks : ((int * string), lock_state) Hashtbl.t;
  accesses : ((int * int), access Vec.t) Hashtbl.t; (* (pid, cell id) *)
  cell_names : (int, string) Hashtbl.t;
  pending_forks : (int * int, fork) Hashtbl.t;
  weights : float array; (* per-pid scheduling weight (OS jitter model) *)
  requests : (int, req_state) Hashtbl.t;
  req_waiters : (int, payload -> unit) Hashtbl.t; (* fiber wake by request *)
  vclocks : Vclock.t array; (* per-process vector clock *)
  lamports : int array; (* per-process Lamport clock *)
  sync_logs : (int * int, sync_point Vec.t) Hashtbl.t;
  mutable next_req : int;
  mutable next_cell : int;
  mutable steps_left : int;
  mutable timed_out : bool;
  mutable mismatch : string option;
}

type env = { e_pid : int; e_tid : int; e_st : state; e_fiber : fiber }

let comm_world env : comm =
  { comm_id = 0; members = Array.init env.e_st.np (fun i -> i) }

let comm_rank_in (c : comm) pid =
  let found = ref None in
  Array.iteri
    (fun i p -> if p = pid && !found = None then found := Some i)
    c.members;
  !found

(* Deterministic identity for a split result: every member computes the
   same id from the same inputs, so collectives on the new communicator
   match across ranks without central coordination. *)
let derive_comm ~(parent : comm) ~color ~(members : int array) : comm =
  { comm_id = Hashtbl.hash (parent.comm_id, color, Array.to_list members);
    members }

let pid env = env.e_pid
let tid env = env.e_tid
let np env = env.e_st.np
let tracer env = Capture.tracer env.e_st.capture ~pid:env.e_pid ~tid:env.e_tid
let capture_level env = Capture.level env.e_st.capture

type _ Effect.t +=
  | E_yield : unit Effect.t
  | E_send : { dst : int; tag : int; data : payload } -> unit Effect.t
  | E_recv : { src : int; tag : int } -> payload Effect.t
  | E_collective : coll_call -> payload Effect.t
  | E_fork : (env -> unit) * int -> unit Effect.t
  | E_join : unit Effect.t
  | E_lock : string -> unit Effect.t
  | E_unlock : string -> unit Effect.t
  | E_isend : { dst : int; tag : int; data : payload } -> int Effect.t
  | E_irecv : { src : int; tag : int } -> int Effect.t
  | E_wait : int -> payload Effect.t
  | E_test : int -> payload option Effect.t

(* ------------------------------------------------------------------ *)
(* Matching helpers                                                    *)
(* ------------------------------------------------------------------ *)

(* First mailbox entry for [dst] matching (src, tag), removed if found.
   FIFO per (src, tag) pair, as MPI's non-overtaking rule requires. *)
let rec take_mail st ~dst ~src ~tag =
  let box = st.mailboxes.(dst) in
  let found = ref None in
  let i = ref 0 in
  while !found = None && !i < Vec.length box do
    let m = Vec.get box !i in
    if m.m_src = src && m.m_tag = tag then found := Some !i;
    incr i
  done;
  match !found with
  | None -> None
  | Some idx ->
    let m = Vec.get box idx in
    (* compact: shift left *)
    for j = idx to Vec.length box - 2 do
      Vec.set box j (Vec.get box (j + 1))
    done;
    Vec.truncate box (Vec.length box - 1);
    (match m.m_notify with
    | Some req -> complete_request st req [||] None
    | None -> ());
    Some (m.m_data, m.m_stamp)

(* Mark a request ready, waking any fiber blocked in MPI_Wait on it.
   [stamp] is the sender's clock when completing a posted receive; it is
   folded into the receiving process's clock at match time. *)
and complete_request st req data stamp =
  (match (stamp, Hashtbl.find_opt st.requests req) with
  | Some (s : Vclock.stamp), Some (Req_recv r) ->
    Vclock.merge st.vclocks.(r.pid) s.Vclock.vec;
    if s.Vclock.lamport > st.lamports.(r.pid) then
      st.lamports.(r.pid) <- s.Vclock.lamport
  | _, (Some (Req_recv _ | Req_ready _ | Req_send) | None) -> ());
  Hashtbl.replace st.requests req (Req_ready data);
  match Hashtbl.find_opt st.req_waiters req with
  | Some wake ->
    Hashtbl.remove st.req_waiters req;
    Hashtbl.remove st.requests req;
    wake data
  | None -> ()

(* A fiber of process [src] blocked sending to [dst] with [tag]. *)
let find_blocked_sender st ~dst ~src ~tag =
  let found = ref None in
  Vec.iter
    (fun f ->
      if Option.is_none !found && f.f_pid = src then
        match f.status with
        | Blocked (B_send s) when s.dst = dst && s.tag = tag ->
          found := Some (f, s.data, s.stamp, s.wake)
        | _ -> ())
    st.fibers;
  !found

(* A fiber of process [dst] blocked receiving from (src, tag). *)
let find_blocked_recv st ~dst ~src ~tag =
  let found = ref None in
  Vec.iter
    (fun f ->
      if Option.is_none !found && f.f_pid = dst then
        match f.status with
        | Blocked (B_recv r) when r.src = src && r.tag = tag ->
          found := Some (f, r.wake)
        | _ -> ())
    st.fibers;
  !found

(* --- logical clocks ------------------------------------------------ *)

(* A local step of process [pid]: tick its clocks and snapshot. *)
let local_stamp st pid =
  Vclock.tick st.vclocks.(pid) pid;
  st.lamports.(pid) <- st.lamports.(pid) + 1;
  { Vclock.lamport = st.lamports.(pid); vec = Vclock.copy st.vclocks.(pid) }

(* The receive rule: fold the sender's stamp into [pid]'s clocks. *)
let absorb_stamp st pid (stamp : Vclock.stamp) =
  Vclock.merge st.vclocks.(pid) stamp.Vclock.vec;
  if stamp.Vclock.lamport > st.lamports.(pid) then
    st.lamports.(pid) <- stamp.Vclock.lamport

let record_sync st fiber op stamp =
  let key = (fiber.f_pid, fiber.f_tid) in
  let log =
    match Hashtbl.find_opt st.sync_logs key with
    | Some v -> v
    | None ->
      let v = Vec.create () in
      Hashtbl.add st.sync_logs key v;
      v
  in
  Vec.push log { sp_op = op; sp_stamp = stamp }

(* stamp + record a send-side action on the current fiber *)
let send_stamp st fiber op =
  let s = local_stamp st fiber.f_pid in
  record_sync st fiber op s;
  s

(* absorb + stamp + record a receive-side action *)
let recv_stamp st fiber op (sender : Vclock.stamp) =
  absorb_stamp st fiber.f_pid sender;
  let s = local_stamp st fiber.f_pid in
  record_sync st fiber op s

(* Earliest posted-but-unmatched Irecv request at [dst] for (src, tag);
   MPI matches receives in posting order, and request IDs are issued in
   posting order. *)
let find_posted_recv st ~dst ~src ~tag =
  let best = ref None in
  Hashtbl.iter
    (fun id state ->
      match state with
      | Req_recv r when r.pid = dst && r.src = src && r.tag = tag ->
        (match !best with Some b when b < id -> () | _ -> best := Some id)
      | Req_recv _ | Req_ready _ | Req_send -> ())
    st.requests;
  !best

let coll_kind_name = function
  | C_barrier -> "MPI_Barrier"
  | C_allreduce -> "MPI_Allreduce"
  | C_reduce -> "MPI_Reduce"
  | C_bcast -> "MPI_Bcast"
  | C_allgather -> "MPI_Allgather"
  | C_gather -> "MPI_Gather"
  | C_scatter -> "MPI_Scatter"
  | C_alltoall -> "MPI_Alltoall"
  | C_scan -> "MPI_Scan"

(* Completion check for a collective slot: all np processes joined with
   consistent kind and count. The op applied is rank 0's (lowest pid),
   so a wrong op in rank 0 silently changes the result (§IV-D). *)
let try_complete_coll st skey slot =
  let comm_size =
    match slot.members with
    | [] -> max_int
    | p :: _ -> Array.length p.p_call.comm.members
  in
  if (not slot.poisoned) && List.length slot.members = comm_size then begin
    let members =
      List.sort (fun a b -> Int.compare a.p_fiber.f_pid b.p_fiber.f_pid) slot.members
    in
    match members with
    | [] -> ()
    | first :: _ ->
      let kind = first.p_call.kind and count = first.p_call.count in
      let consistent =
        List.for_all
          (fun p -> p.p_call.kind = kind && p.p_call.count = count)
          members
      in
      if not consistent then begin
        slot.poisoned <- true;
        if st.mismatch = None then
          st.mismatch <-
            Some
              (Printf.sprintf "collective #%d: mismatched %s" (snd skey)
                 (String.concat "/"
                    (List.map
                       (fun p ->
                         Printf.sprintf "%s(count=%d)@p%d"
                           (coll_kind_name p.p_call.kind)
                           p.p_call.count p.p_fiber.f_pid)
                       members)))
      end
      else begin
        Hashtbl.remove st.colls skey;
        (* a completed collective synchronizes all participants'
           logical clocks *)
        let merged = Vclock.create st.np in
        let max_lamport = ref 0 in
        List.iter
          (fun p ->
            Vclock.merge merged st.vclocks.(p.p_fiber.f_pid);
            if st.lamports.(p.p_fiber.f_pid) > !max_lamport then
              max_lamport := st.lamports.(p.p_fiber.f_pid))
          members;
        List.iter
          (fun p ->
            let pid = p.p_fiber.f_pid in
            Vclock.merge st.vclocks.(pid) merged;
            if !max_lamport > st.lamports.(pid) then st.lamports.(pid) <- !max_lamport;
            record_sync st p.p_fiber
              (coll_kind_name first.p_call.kind)
              (local_stamp st pid))
          members;
        let op = first.p_call.op in
        let chunk = count in
        let sorted_data = List.map (fun p -> p.p_call.data) members in
        let bad_vector_size =
          match kind with
          | C_scatter ->
            let root = first.p_call.root in
            List.exists
              (fun p ->
                p.p_fiber.f_pid = root
                && Array.length p.p_call.data <> comm_size * chunk)
              members
          | C_alltoall ->
            List.exists
              (fun p -> Array.length p.p_call.data <> comm_size * chunk)
              members
          | C_barrier | C_allreduce | C_reduce | C_bcast | C_allgather
          | C_gather | C_scan -> false
        in
        if bad_vector_size then begin
          slot.poisoned <- true;
          Hashtbl.add st.colls skey slot;
          if st.mismatch = None then
            st.mismatch <-
              Some
                (Printf.sprintf "collective #%d: %s buffer not np*count"
                   (snd skey) (coll_kind_name kind))
        end
        else
        let deliver =
          match kind with
          | C_barrier -> fun _ -> [||]
          | C_allreduce ->
            let acc =
              List.fold_left
                (fun acc p ->
                  match acc with
                  | None -> Some p.p_call.data
                  | Some a -> Some (apply_op op a p.p_call.data))
                None members
            in
            let result = Option.get acc in
            fun _ -> Array.copy result
          | C_reduce ->
            let acc =
              List.fold_left
                (fun acc p ->
                  match acc with
                  | None -> Some p.p_call.data
                  | Some a -> Some (apply_op op a p.p_call.data))
                None members
            in
            let result = Option.get acc in
            fun (p : participant) ->
              if p.p_fiber.f_pid = p.p_call.root then Array.copy result else [||]
          | C_bcast ->
            let root = first.p_call.root in
            let root_data =
              match List.find_opt (fun p -> p.p_fiber.f_pid = root) members with
              | Some p -> p.p_call.data
              | None -> [||]
            in
            fun _ -> Array.copy root_data
          | C_allgather ->
            let all = Array.concat sorted_data in
            fun _ -> Array.copy all
          | C_gather ->
            let all = Array.concat sorted_data in
            fun (p : participant) ->
              if p.p_fiber.f_pid = p.p_call.root then Array.copy all else [||]
          | C_scatter ->
            let root = first.p_call.root in
            let root_data =
              match List.find_opt (fun p -> p.p_fiber.f_pid = root) members with
              | Some p -> p.p_call.data
              | None -> [||]
            in
            fun (p : participant) ->
              let r = Option.get (comm_rank_in p.p_call.comm p.p_fiber.f_pid) in
              Array.sub root_data (r * chunk) chunk
          | C_alltoall ->
            (* contribution of sender s to receiver d: s.data[d*chunk ..] *)
            fun (p : participant) ->
              let d = Option.get (comm_rank_in p.p_call.comm p.p_fiber.f_pid) in
              Array.concat
                (List.map (fun data -> Array.sub data (d * chunk) chunk) sorted_data)
          | C_scan ->
            (* inclusive prefix reduction in rank order *)
            let prefixes = Hashtbl.create st.np in
            let _ =
              List.fold_left
                (fun acc p ->
                  let acc =
                    match acc with
                    | None -> p.p_call.data
                    | Some a -> apply_op op a p.p_call.data
                  in
                  Hashtbl.replace prefixes p.p_fiber.f_pid (Array.copy acc);
                  Some acc)
                None members
            in
            fun (p : participant) -> Hashtbl.find prefixes p.p_fiber.f_pid
        in
        List.iter (fun p -> p.p_wake (deliver p)) members
      end
  end

(* ------------------------------------------------------------------ *)
(* Fiber startup and the effect handler                                *)
(* ------------------------------------------------------------------ *)

let fiber_done st fiber =
  fiber.status <- Done;
  (* wake a parent waiting on a fully-finished team *)
  match fiber.fork with
  | None -> ()
  | Some fork -> (
    ignore st;
    match fork.parent.status with
    | Blocked (B_join j) when j.fork == fork ->
      if List.for_all (fun c -> c.status = Done) fork.children then j.wake ()
    | _ -> ())

let rec start_fiber st fiber (thunk : unit -> unit) =
  let open Effect.Deep in
  match_with thunk ()
    { retc = (fun () -> fiber_done st fiber);
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | E_yield ->
            Some
              (fun (k : (a, unit) continuation) ->
                fiber.status <- Runnable (fun () -> continue k ()))
          | E_send { dst; tag; data } ->
            Some
              (fun (k : (a, unit) continuation) ->
                handle_send st fiber ~dst ~tag ~data k)
          | E_recv { src; tag } ->
            Some
              (fun (k : (a, unit) continuation) ->
                handle_recv st fiber ~src ~tag k)
          | E_collective call ->
            Some
              (fun (k : (a, unit) continuation) ->
                handle_collective st fiber call k)
          | E_fork (body, nthreads) ->
            Some
              (fun (k : (a, unit) continuation) ->
                handle_fork st fiber body nthreads k)
          | E_join ->
            Some (fun (k : (a, unit) continuation) -> handle_join st fiber k)
          | E_lock name ->
            Some (fun (k : (a, unit) continuation) -> handle_lock st fiber name k)
          | E_unlock name ->
            Some
              (fun (k : (a, unit) continuation) -> handle_unlock st fiber name k)
          | E_isend { dst; tag; data } ->
            Some
              (fun (k : (a, unit) continuation) ->
                handle_isend st fiber ~dst ~tag ~data k)
          | E_irecv { src; tag } ->
            Some
              (fun (k : (a, unit) continuation) ->
                handle_irecv st fiber ~src ~tag k)
          | E_wait req ->
            Some (fun (k : (a, unit) continuation) -> handle_wait st fiber req k)
          | E_test req ->
            Some (fun (k : (a, unit) continuation) -> handle_test st fiber req k)
          | _ -> None) }

and handle_send :
    state -> fiber -> dst:int -> tag:int -> data:payload ->
    (unit, unit) Effect.Deep.continuation -> unit =
 fun st fiber ~dst ~tag ~data k ->
  let open Effect.Deep in
  let stamp = send_stamp st fiber "MPI_Send" in
  match find_blocked_recv st ~dst ~src:fiber.f_pid ~tag with
  | Some (rf, wake) ->
    (* wake only flips the receiver's status to Runnable *)
    recv_stamp st rf "MPI_Recv" stamp;
    wake data;
    fiber.status <- Runnable (fun () -> continue k ())
  | None ->
    (match find_posted_recv st ~dst ~src:fiber.f_pid ~tag with
     | Some req ->
       complete_request st req data (Some stamp);
       fiber.status <- Runnable (fun () -> continue k ())
     | None ->
    if Array.length data <= st.eager_limit then begin
      (* eager: buffer at the destination and complete locally *)
      Vec.push st.mailboxes.(dst)
        { m_src = fiber.f_pid; m_tag = tag; m_data = data; m_notify = None;
          m_stamp = stamp };
      fiber.status <- Runnable (fun () -> continue k ())
    end
    else
      (* rendezvous: wait for the matching receive *)
      fiber.status <-
        Blocked
          (B_send
             { dst;
               tag;
               data;
               stamp;
               wake = (fun () -> fiber.status <- Runnable (fun () -> continue k ())) }))

and handle_recv :
    state -> fiber -> src:int -> tag:int ->
    (payload, unit) Effect.Deep.continuation -> unit =
 fun st fiber ~src ~tag k ->
  let open Effect.Deep in
  match take_mail st ~dst:fiber.f_pid ~src ~tag with
  | Some (data, stamp) ->
    recv_stamp st fiber "MPI_Recv" stamp;
    fiber.status <- Runnable (fun () -> continue k data)
  | None -> (
    match find_blocked_sender st ~dst:fiber.f_pid ~src ~tag with
    | Some (_sf, data, stamp, wake) ->
      recv_stamp st fiber "MPI_Recv" stamp;
      wake ();
      fiber.status <- Runnable (fun () -> continue k data)
    | None ->
      fiber.status <-
        Blocked
          (B_recv
             { src;
               tag;
               wake =
                 (fun data -> fiber.status <- Runnable (fun () -> continue k data)) }))

and handle_collective :
    state -> fiber -> coll_call ->
    (payload, unit) Effect.Deep.continuation -> unit =
 fun st fiber call k ->
  let open Effect.Deep in
  let ckey = (call.comm.comm_id, fiber.f_pid) in
  let seq = Option.value ~default:0 (Hashtbl.find_opt st.coll_seq ckey) in
  Hashtbl.replace st.coll_seq ckey (seq + 1);
  let skey = (call.comm.comm_id, seq) in
  let slot =
    match Hashtbl.find_opt st.colls skey with
    | Some s -> s
    | None ->
      let s = { members = []; poisoned = false } in
      Hashtbl.add st.colls skey s;
      s
  in
  let wake data = fiber.status <- Runnable (fun () -> continue k data) in
  slot.members <- { p_fiber = fiber; p_call = call; p_wake = wake } :: slot.members;
  fiber.status <- Blocked (B_coll { seq });
  try_complete_coll st skey slot

and handle_fork :
    state -> fiber -> (env -> unit) -> int ->
    (unit, unit) Effect.Deep.continuation -> unit =
 fun st fiber body nthreads k ->
  let open Effect.Deep in
  if Hashtbl.mem st.pending_forks (fiber.f_pid, fiber.f_tid) then
    invalid_arg "Runtime: nested parallel regions are not supported";
  let fork = { parent = fiber; children = [] } in
  let children =
    List.init (nthreads - 1) (fun i ->
        let t = i + 1 in
        let child =
          { f_pid = fiber.f_pid;
            f_tid = t;
            status = Done (* placeholder, set below *);
            held = [];
            fork = Some fork }
        in
        let env = { e_pid = child.f_pid; e_tid = t; e_st = st; e_fiber = child } in
        child.status <-
          Runnable (fun () -> start_fiber st child (fun () -> body env));
        Vec.push st.fibers child;
        child)
  in
  fork.children <- children;
  (* The master resumes immediately and runs the team body for rank 0
     itself (OpenMP semantics); it performs E_join afterwards, looked up
     through [pending_forks]. *)
  Hashtbl.replace st.pending_forks (fiber.f_pid, fiber.f_tid) fork;
  fiber.status <- Runnable (fun () -> continue k ())

and handle_join :
    state -> fiber -> (unit, unit) Effect.Deep.continuation -> unit =
 fun st fiber k ->
  let open Effect.Deep in
  match Hashtbl.find_opt st.pending_forks (fiber.f_pid, fiber.f_tid) with
  | None -> fiber.status <- Runnable (fun () -> continue k ())
  | Some fork ->
    Hashtbl.remove st.pending_forks (fiber.f_pid, fiber.f_tid);
    if List.for_all (fun c -> c.status = Done) fork.children then
      fiber.status <- Runnable (fun () -> continue k ())
    else
      fiber.status <-
        Blocked
          (B_join
             { fork;
               wake = (fun () -> fiber.status <- Runnable (fun () -> continue k ())) })

and handle_lock :
    state -> fiber -> string -> (unit, unit) Effect.Deep.continuation -> unit =
 fun st fiber name k ->
  let open Effect.Deep in
  let key = (fiber.f_pid, name) in
  let ls =
    match Hashtbl.find_opt st.locks key with
    | Some ls -> ls
    | None ->
      let ls = { holder = None; waiters = Queue.create () } in
      Hashtbl.add st.locks key ls;
      ls
  in
  match ls.holder with
  | None ->
    ls.holder <- Some fiber;
    fiber.held <- name :: fiber.held;
    fiber.status <- Runnable (fun () -> continue k ())
  | Some _ ->
    let wake () =
      ls.holder <- Some fiber;
      fiber.held <- name :: fiber.held;
      fiber.status <- Runnable (fun () -> continue k ())
    in
    Queue.push (fiber, wake) ls.waiters;
    fiber.status <- Blocked (B_lock { name })

and fresh_request st state0 =
  let id = st.next_req in
  st.next_req <- id + 1;
  Hashtbl.replace st.requests id state0;
  id

and handle_isend :
    state -> fiber -> dst:int -> tag:int -> data:payload ->
    (int, unit) Effect.Deep.continuation -> unit =
 fun st fiber ~dst ~tag ~data k ->
  let open Effect.Deep in
  let resume req = fiber.status <- Runnable (fun () -> continue k req) in
  let stamp = send_stamp st fiber "MPI_Isend" in
  match find_blocked_recv st ~dst ~src:fiber.f_pid ~tag with
  | Some (rf, wake) ->
    recv_stamp st rf "MPI_Recv" stamp;
    wake data;
    resume (fresh_request st (Req_ready [||]))
  | None -> (
    match find_posted_recv st ~dst ~src:fiber.f_pid ~tag with
    | Some posted ->
      complete_request st posted data (Some stamp);
      resume (fresh_request st (Req_ready [||]))
    | None ->
      if Array.length data <= st.eager_limit then begin
        Vec.push st.mailboxes.(dst)
          { m_src = fiber.f_pid; m_tag = tag; m_data = data; m_notify = None;
            m_stamp = stamp };
        resume (fresh_request st (Req_ready [||]))
      end
      else begin
        (* rendezvous-sized: the call itself never blocks, but the
           request completes only when the message is consumed *)
        let req = fresh_request st Req_send in
        Vec.push st.mailboxes.(dst)
          { m_src = fiber.f_pid; m_tag = tag; m_data = data; m_notify = Some req;
            m_stamp = stamp };
        resume req
      end)

and handle_irecv :
    state -> fiber -> src:int -> tag:int ->
    (int, unit) Effect.Deep.continuation -> unit =
 fun st fiber ~src ~tag k ->
  let open Effect.Deep in
  let resume req = fiber.status <- Runnable (fun () -> continue k req) in
  match take_mail st ~dst:fiber.f_pid ~src ~tag with
  | Some (data, stamp) ->
    absorb_stamp st fiber.f_pid stamp;
    resume (fresh_request st (Req_ready data))
  | None -> (
    match find_blocked_sender st ~dst:fiber.f_pid ~src ~tag with
    | Some (_sf, data, stamp, wake) ->
      absorb_stamp st fiber.f_pid stamp;
      wake ();
      resume (fresh_request st (Req_ready data))
    | None -> resume (fresh_request st (Req_recv { pid = fiber.f_pid; src; tag })))

and handle_wait :
    state -> fiber -> int -> (payload, unit) Effect.Deep.continuation -> unit =
 fun st fiber req k ->
  let open Effect.Deep in
  match Hashtbl.find_opt st.requests req with
  | None -> invalid_arg "Runtime: MPI_Wait on an unknown or finished request"
  | Some (Req_ready data) ->
    Hashtbl.remove st.requests req;
    record_sync st fiber "MPI_Wait" (local_stamp st fiber.f_pid);
    fiber.status <- Runnable (fun () -> continue k data)
  | Some (Req_recv _ | Req_send) ->
    Hashtbl.replace st.req_waiters req (fun data ->
        record_sync st fiber "MPI_Wait" (local_stamp st fiber.f_pid);
        fiber.status <- Runnable (fun () -> continue k data));
    fiber.status <- Blocked (B_wait { req })

and handle_test :
    state -> fiber -> int -> (payload option, unit) Effect.Deep.continuation -> unit =
 fun st fiber req k ->
  let open Effect.Deep in
  match Hashtbl.find_opt st.requests req with
  | None -> invalid_arg "Runtime: MPI_Test on an unknown or finished request"
  | Some (Req_ready data) ->
    Hashtbl.remove st.requests req;
    record_sync st fiber "MPI_Test" (local_stamp st fiber.f_pid);
    fiber.status <- Runnable (fun () -> continue k (Some data))
  | Some (Req_recv _ | Req_send) ->
    (* incomplete: return immediately (and let others run) *)
    fiber.status <- Runnable (fun () -> continue k None)

and handle_unlock :
    state -> fiber -> string -> (unit, unit) Effect.Deep.continuation -> unit =
 fun st fiber name k ->
  let open Effect.Deep in
  let key = (fiber.f_pid, name) in
  (match Hashtbl.find_opt st.locks key with
  | Some ls when (match ls.holder with Some f -> f == fiber | None -> false) ->
    fiber.held <- List.filter (fun n -> n <> name) fiber.held;
    if Queue.is_empty ls.waiters then ls.holder <- None
    else
      let _, wake = Queue.pop ls.waiters in
      wake ()
  | _ -> invalid_arg "Runtime: unlock of a lock not held");
  fiber.status <- Runnable (fun () -> continue k ())

(* ------------------------------------------------------------------ *)
(* Shared memory with access recording                                 *)
(* ------------------------------------------------------------------ *)

module Shm = struct
  type 'a cell = { id : int; name : string; protected_ : bool; mutable v : 'a }

  let counter = ref 0

  let cell ?(protected_ = false) name v =
    incr counter;
    { id = !counter; name; protected_; v }

  (* Bounded per-(process, cell) log: flagging a discipline violation
     needs only one witness per thread, not the full access history. *)
  let max_log = 4096

  let record env c write =
    if c.protected_ then begin
      let st = env.e_st in
      Hashtbl.replace st.cell_names c.id c.name;
      let key = (env.e_pid, c.id) in
      let log =
        match Hashtbl.find_opt st.accesses key with
        | Some v -> v
        | None ->
          let v = Vec.create () in
          Hashtbl.add st.accesses key v;
          v
      in
      if Vec.length log < max_log then
        Vec.push log
          { a_tid = env.e_tid; a_write = write; a_locked = env.e_fiber.held <> [] }
    end

  let read env c =
    record env c false;
    c.v

  let write env c v =
    record env c true;
    c.v <- v
end

(* ------------------------------------------------------------------ *)
(* Scheduler                                                           *)
(* ------------------------------------------------------------------ *)

let pick_runnable st =
  let candidates = Vec.create () in
  Vec.iter
    (fun f -> match f.status with Runnable _ -> Vec.push candidates f | _ -> ())
    st.fibers;
  let n = Vec.length candidates in
  if n = 0 then None
  else begin
    (* weighted pick: per-process weights model OS timing jitter;
       uniform weights degrade to a plain seeded choice *)
    let total = ref 0.0 in
    Vec.iter (fun f -> total := !total +. st.weights.(f.f_pid)) candidates;
    let target = Prng.float st.rng *. !total in
    let acc = ref 0.0 and chosen = ref None in
    Vec.iter
      (fun f ->
        if !chosen = None then begin
          acc := !acc +. st.weights.(f.f_pid);
          if !acc >= target then chosen := Some f
        end)
      candidates;
    match !chosen with Some f -> Some f | None -> Some (Vec.get candidates (n - 1))
  end

let schedule st =
  let continue_run = ref true in
  while !continue_run do
    if st.steps_left <= 0 then begin
      st.timed_out <- true;
      continue_run := false
    end
    else
      match pick_runnable st with
      | None -> continue_run := false
      | Some fiber -> (
        st.steps_left <- st.steps_left - 1;
        match fiber.status with
        | Runnable thunk -> thunk ()
        | Blocked _ | Done | Hung -> assert false)
  done

(* A "race" here is a locking-discipline violation: a write to a
   protected cell performed while holding no critical section. (The
   intentional unlocked *reads* HPC search codes do — a master scanning
   its workers' champions — are not flagged.) *)
let races_of st =
  Hashtbl.fold
    (fun (pid, cell_id) log acc ->
      let conflicting_tids = Hashtbl.create 8 in
      Vec.iter
        (fun a ->
          if a.a_write && not a.a_locked then
            Hashtbl.replace conflicting_tids a.a_tid ())
        log;
      if Hashtbl.length conflicting_tids = 0 then acc
      else
        { race_pid = pid;
          cell_name =
            (match Hashtbl.find_opt st.cell_names cell_id with
            | Some n -> n
            | None -> "?");
          tids =
            List.sort Int.compare
              (Hashtbl.fold (fun t () l -> t :: l) conflicting_tids []) }
        :: acc)
    st.accesses []

type outcome = {
  traces : Trace_set.t;
  stats : Capture.stats;
  deadlocked : (int * int) list;
  timed_out : bool;
  collective_mismatch : string option;
  races : race list;
  sync_log : ((int * int) * sync_point array) list;
}

let run ?(np = 1) ?(eager_limit = 4) ?(seed = 1) ?(max_steps = 2_000_000)
    ?(level = Tracer.Main_image) ?(jitter = 0.0) program =
  if np <= 0 then invalid_arg "Runtime.run: np must be positive";
  if jitter < 0.0 || jitter >= 1.0 then
    invalid_arg "Runtime.run: jitter must be in [0, 1)";
  let wrng = Prng.create (seed lxor 0x5DEECE66D) in
  let weights =
    Array.init np (fun _ ->
        1.0 +. (jitter *. ((2.0 *. Prng.float wrng) -. 1.0)))
  in
  let st =
    { np;
      eager_limit;
      rng = Prng.create seed;
      weights;
      capture = Capture.create ~level ();
      fibers = Vec.create ();
      mailboxes = Array.init np (fun _ -> Vec.create ());
      coll_seq = Hashtbl.create 64;
      colls = Hashtbl.create 64;
      next_comm = 1;
      locks = Hashtbl.create 16;
      accesses = Hashtbl.create 64;
      cell_names = Hashtbl.create 16;
      pending_forks = Hashtbl.create 16;
      requests = Hashtbl.create 64;
      req_waiters = Hashtbl.create 16;
      vclocks = Array.init np (fun _ -> Vclock.create np);
      lamports = Array.make np 0;
      sync_logs = Hashtbl.create 32;
      next_req = 0;
      next_cell = 0;
      steps_left = max_steps;
      timed_out = false;
      mismatch = None }
  in
  for p = 0 to np - 1 do
    let fiber = { f_pid = p; f_tid = 0; status = Done; held = []; fork = None } in
    let env = { e_pid = p; e_tid = 0; e_st = st; e_fiber = fiber } in
    (* touch the tracer so even an empty thread produces a trace file *)
    ignore (Capture.tracer st.capture ~pid:p ~tid:0);
    fiber.status <-
      Runnable (fun () -> start_fiber st fiber (fun () -> program env));
    Vec.push st.fibers fiber
  done;
  schedule st;
  let deadlocked = ref [] in
  Vec.iter
    (fun f ->
      match f.status with
      | Done -> ()
      | Runnable _ | Blocked _ | Hung ->
        f.status <- Hung;
        deadlocked := (f.f_pid, f.f_tid) :: !deadlocked;
        Tracer.set_truncated (Capture.tracer st.capture ~pid:f.f_pid ~tid:f.f_tid))
    st.fibers;
  let traces = Capture.finish st.capture in
  let stats = Capture.stats st.capture traces in
  { traces;
    stats;
    deadlocked = List.sort compare (List.rev !deadlocked);
    timed_out = st.timed_out;
    collective_mismatch = st.mismatch;
    races = races_of st;
    sync_log =
      Hashtbl.fold (fun key v acc -> (key, Vec.to_array v) :: acc) st.sync_logs []
      |> List.sort compare }
