(** Deterministic cooperative MPI + OpenMP execution simulator.

    This substrate replaces the paper's physical testbed (MPI + GOMP
    under Pin). A run executes [np] SPMD processes, each a cooperative
    fiber (OCaml 5 effect handlers); processes may fork OpenMP-style
    thread teams. The scheduler is seeded and fully deterministic, so a
    normal and a fault-injected execution differ only through the fault
    — the property DiffTrace's diffing relies on.

    Faithfully modeled semantics (these carry the paper's bugs):
    - point-to-point messages with an {e eager limit}: small sends
      buffer and complete immediately, large sends rendezvous (block
      until the matching receive) — the [swapBug] trap;
    - collectives that complete only when all [np] processes have
      joined with the same kind and count — a wrong count hangs the
      job (§IV-C);
    - the reduction operator actually applied is rank 0's — a wrong
      operator in rank 0 silently changes semantics (§IV-D);
    - global-deadlock detection: when nothing can run, every live
      fiber's trace is truncated at its blocking call, exactly like the
      ParLOT files of a hung job;
    - a step budget standing in for the cluster job time limit, so
      livelocks (e.g. workers spinning forever after their master
      deadlocked) also end with truncated traces;
    - critical sections and a locking-discipline checker that flags
      writes to protected shared cells made outside any critical
      section (§IV-B's bug class). *)

(** Message and reduction payloads: arrays of ints. *)
type payload = int array

type reduce_op = Op_sum | Op_min | Op_max | Op_prod

(** [apply_op op a b] combines elementwise ([a] and [b] must have equal
    length). *)
val apply_op : reduce_op -> payload -> payload -> payload

(** Per-fiber execution context, passed to the program. *)
type env

val pid : env -> int
val tid : env -> int
val np : env -> int

(** [tracer env] is this thread's ParLOT tracer; the {!Api} wrappers
    use it to record call/return events. *)
val tracer : env -> Difftrace_parlot.Tracer.t

(** [capture_level env] — main image vs. all images. *)
val capture_level : env -> Difftrace_parlot.Tracer.level

(** A locking-discipline violation: a write to a [protected] shared
    cell performed outside any critical section (§IV-B's bug class). *)
type race = { race_pid : int; cell_name : string; tids : int list }

(** A synchronization action recorded with its logical timestamp
    (paper future work (2): logically timestamping trace entries to
    mine temporal properties such as happened-before). [sp_op] is the
    MPI operation name; [sp_stamp] its Lamport + vector-clock stamp. *)
type sync_point = { sp_op : string; sp_stamp : Vclock.stamp }

type outcome = {
  traces : Difftrace_trace.Trace_set.t;
  stats : Difftrace_parlot.Capture.stats;
  deadlocked : (int * int) list;
      (** threads still blocked/running when the run ended abnormally *)
  timed_out : bool;  (** step budget exhausted (livelock / job limit) *)
  collective_mismatch : string option;
      (** diagnostic when a collective could never complete *)
  races : race list;
  sync_log : ((int * int) * sync_point array) list;
      (** per (pid, tid): the logically-timestamped synchronization
          actions, in program order *)
}

(** [run ?np ?eager_limit ?seed ?max_steps ?level ?jitter program]
    executes [program env] once per rank and returns the decoded traces
    plus diagnostics. [eager_limit] is in payload words (default 4);
    [max_steps] bounds scheduler steps (default 2_000_000). [jitter]
    ∈ [0, 1) (default 0) models OS timing noise: each process gets a
    seed-derived scheduling weight in [1−jitter, 1+jitter], so ranks
    advance at slightly different rates — still fully deterministic per
    seed, but breaking the perfect symmetry that real clusters never
    have. *)
val run :
  ?np:int ->
  ?eager_limit:int ->
  ?seed:int ->
  ?max_steps:int ->
  ?level:Difftrace_parlot.Tracer.level ->
  ?jitter:float ->
  (env -> unit) ->
  outcome

(** {2 Effects — the raw simulator interface}

    Programs normally go through {!Api}, which wraps these effects with
    ParLOT tracing. They are exposed for the API layer and for tests. *)

type coll_kind =
  | C_barrier
  | C_allreduce
  | C_reduce
  | C_bcast
  | C_allgather
  | C_gather
  | C_scatter
  | C_alltoall
  | C_scan

(** A communicator: an identifier plus its member ranks (sorted
    ascending). Collectives match per communicator, in per-member call
    order; vector collectives (gather/scatter/alltoall/allgather/scan)
    order their data by rank {e within} the communicator. *)
type comm = { comm_id : int; members : int array }

(** [comm_world env] — the world communicator (id 0, every rank). *)
val comm_world : env -> comm

(** [comm_rank_in comm pid] — [pid]'s rank within [comm], or [None] if
    not a member. *)
val comm_rank_in : comm -> int -> int option

(** [derive_comm ~parent ~color ~members] — the deterministic
    communicator all members of a split with the same [color] obtain
    (same inputs → same identity on every rank). *)
val derive_comm : parent:comm -> color:int -> members:int array -> comm

type coll_call = {
  kind : coll_kind;
  data : payload;
  op : reduce_op;
  count : int;
  root : int;
  comm : comm;
}

type _ Effect.t +=
  | E_yield : unit Effect.t
  | E_send : { dst : int; tag : int; data : payload } -> unit Effect.t
  | E_recv : { src : int; tag : int } -> payload Effect.t
  | E_collective : coll_call -> payload Effect.t
  | E_fork : (env -> unit) * int -> unit Effect.t
  | E_join : unit Effect.t
  | E_lock : string -> unit Effect.t
  | E_unlock : string -> unit Effect.t
  | E_isend : { dst : int; tag : int; data : payload } -> int Effect.t
      (** nonblocking send; returns a request handle. Never blocks: an
          eager-sized message buffers and the request is immediately
          complete; a rendezvous-sized message is posted but its
          request completes only when a receive consumes it. *)
  | E_irecv : { src : int; tag : int } -> int Effect.t
      (** nonblocking receive; returns a request handle that completes
          when a matching message arrives (receives match in posting
          order). *)
  | E_wait : int -> payload Effect.t
      (** block until the request completes; returns the received
          payload ([[||]] for send requests). Each request can be
          waited on exactly once. *)
  | E_test : int -> payload option Effect.t
      (** nonblocking completion check: [Some payload] consumes the
          completed request, [None] leaves it pending (MPI_Test). *)

(** {2 Shared memory with access recording} *)

module Shm : sig
  (** A per-process shared cell. Writes to cells declared
      [~protected_:true] are checked against the locking discipline:
      writing one outside a critical section surfaces in
      [outcome.races]. *)
  type 'a cell

  (** [cell ?protected_ name v] — [name] appears in race reports;
      [protected_] (default false) declares the cell as
      critical-section-guarded. *)
  val cell : ?protected_:bool -> string -> 'a -> 'a cell

  val read : env -> 'a cell -> 'a
  val write : env -> 'a cell -> 'a -> unit
end
