open Difftrace_parlot
open Runtime

let on_call ?image env name = Tracer.on_call ?image (tracer env) name
let on_return ?image env name = Tracer.on_return ?image (tracer env) name

(* Inner library frames around a blocking point: entry frames are
   recorded before the effect, exits after it, so a hang truncates the
   trace inside the library — as real ParLOT all-images traces show. *)
let with_lib_frames env names f =
  List.iter (fun n -> on_call ~image:Tracer.Library env n) names;
  let r = f () in
  List.iter (fun n -> on_return ~image:Tracer.Library env n) (List.rev names);
  r

let traced env name ~lib f =
  on_call env name;
  let r = with_lib_frames env lib f in
  on_return env name;
  r

let mpi_init env =
  traced env "MPI_Init" ~lib:[ "MPID_Init"; "MPIDU_Init"; "socket" ] (fun () -> ())

let mpi_finalize env =
  traced env "MPI_Finalize" ~lib:[ "MPID_Finalize"; "poll" ] (fun () -> ())

let comm_rank env =
  traced env "MPI_Comm_rank" ~lib:[] (fun () -> pid env)

let comm_size env =
  traced env "MPI_Comm_size" ~lib:[] (fun () -> np env)

let send env ~dst ?(tag = 0) data =
  traced env "MPI_Send"
    ~lib:[ "MPID_Send"; "MPIDI_CH3_iSend"; "memcpy"; "poll" ]
    (fun () -> Effect.perform (E_send { dst; tag; data }))

let recv env ~src ?(tag = 0) () =
  traced env "MPI_Recv"
    ~lib:[ "MPID_Recv"; "MPIDI_CH3U_Recvq"; "memcpy"; "poll" ]
    (fun () -> Effect.perform (E_recv { src; tag }))

let collective env name lib call =
  traced env name ~lib (fun () -> Effect.perform (E_collective call))

let the_comm env = function Some c -> c | None -> comm_world env

let barrier ?comm env =
  ignore
    (collective env "MPI_Barrier"
       [ "MPID_Barrier"; "poll" ]
       { kind = C_barrier; data = [||]; op = Op_sum; count = 0; root = 0;
         comm = the_comm env comm })

let allreduce ?comm env ?count ~op data =
  let count = match count with Some c -> c | None -> Array.length data in
  collective env "MPI_Allreduce"
    [ "MPID_Allreduce"; "memcpy"; "poll" ]
    { kind = C_allreduce; data; op; count; root = 0; comm = the_comm env comm }

let reduce ?comm env ~root ~op data =
  collective env "MPI_Reduce"
    [ "MPID_Reduce"; "memcpy"; "poll" ]
    { kind = C_reduce; data; op; count = Array.length data; root;
      comm = the_comm env comm }

let bcast ?comm env ~root data =
  collective env "MPI_Bcast"
    [ "MPID_Bcast"; "memcpy"; "poll" ]
    { kind = C_bcast; data; op = Op_sum; count = 0; root; comm = the_comm env comm }

let parallel env ~num_threads body =
  if num_threads <= 0 then invalid_arg "Api.parallel: num_threads";
  on_call env "GOMP_parallel_start";
  Effect.perform (E_fork (body, num_threads));
  on_return env "GOMP_parallel_start";
  (* the master executes the region as team member 0 *)
  body env;
  on_call env "GOMP_parallel_end";
  Effect.perform E_join;
  on_return env "GOMP_parallel_end"

let critical ?(name = "default") env f =
  on_call env "GOMP_critical_start";
  Effect.perform (E_lock name);
  on_return env "GOMP_critical_start";
  let r = f () in
  on_call env "GOMP_critical_end";
  Effect.perform (E_unlock name);
  on_return env "GOMP_critical_end";
  r

let omp_get_thread_num env =
  traced env "omp_get_thread_num" ~lib:[] (fun () -> tid env)

let yield env =
  on_call ~image:Tracer.Library env "sched_yield";
  Effect.perform E_yield;
  on_return ~image:Tracer.Library env "sched_yield"

let call env name f =
  on_call env name;
  let r = f () in
  on_return env name;
  r

let libc env name =
  on_call env (name ^ ".plt");
  on_call env name;
  on_return env name;
  on_return env (name ^ ".plt")

type request = int

let isend env ~dst ?(tag = 0) data =
  traced env "MPI_Isend"
    ~lib:[ "MPID_Isend"; "memcpy" ]
    (fun () -> Effect.perform (E_isend { dst; tag; data }))

let irecv env ~src ?(tag = 0) () =
  traced env "MPI_Irecv"
    ~lib:[ "MPID_Irecv" ]
    (fun () -> Effect.perform (E_irecv { src; tag }))

let wait env req =
  traced env "MPI_Wait" ~lib:[ "MPID_Progress_wait"; "poll" ] (fun () ->
      Effect.perform (E_wait req))

let test env req =
  traced env "MPI_Test" ~lib:[ "MPID_Progress_test" ] (fun () ->
      Effect.perform (E_test req))

let waitall env reqs =
  traced env "MPI_Waitall" ~lib:[ "MPID_Progress_wait"; "poll" ] (fun () ->
      List.map (fun r -> Effect.perform (E_wait r)) reqs)

let allgather ?comm env data =
  collective env "MPI_Allgather"
    [ "MPID_Allgather"; "memcpy" ]
    { kind = C_allgather; data; op = Op_sum; count = Array.length data; root = 0;
      comm = the_comm env comm }

let gather ?comm env ~root data =
  collective env "MPI_Gather"
    [ "MPID_Gather"; "memcpy" ]
    { kind = C_gather; data; op = Op_sum; count = Array.length data; root;
      comm = the_comm env comm }

let scatter ?comm env ~root ~count data =
  collective env "MPI_Scatter"
    [ "MPID_Scatter"; "memcpy" ]
    { kind = C_scatter; data; op = Op_sum; count; root; comm = the_comm env comm }

let alltoall ?comm env ~count data =
  collective env "MPI_Alltoall"
    [ "MPID_Alltoall"; "memcpy" ]
    { kind = C_alltoall; data; op = Op_sum; count; root = 0;
      comm = the_comm env comm }

let scan ?comm env ~op data =
  collective env "MPI_Scan"
    [ "MPID_Scan"; "memcpy" ]
    { kind = C_scan; data; op; count = Array.length data; root = 0;
      comm = the_comm env comm }

(* MPI_Comm_split: an allgather of (color, key, pid) over the parent,
   after which every member deterministically derives its group. *)
let comm_split ?comm env ~color ~key =
  traced env "MPI_Comm_split" ~lib:[ "MPID_Comm_split"; "memcpy" ] (fun () ->
      let parent = the_comm env comm in
      let gathered =
        Effect.perform
          (E_collective
             { kind = C_allgather;
               data = [| color; key; Runtime.pid env |];
               op = Op_sum;
               count = 3;
               root = 0;
               comm = parent })
      in
      let n = Array.length gathered / 3 in
      let mine =
        List.init n (fun i ->
            (gathered.(3 * i), gathered.((3 * i) + 1), gathered.((3 * i) + 2)))
        |> List.filter (fun (c, _, _) -> c = color)
        (* order members by (key, pid), as MPI_Comm_split does *)
        |> List.sort (fun (_, k1, p1) (_, k2, p2) ->
               match Int.compare k1 k2 with 0 -> Int.compare p1 p2 | c -> c)
        |> List.map (fun (_, _, p) -> p)
      in
      derive_comm ~parent ~color ~members:(Array.of_list mine))

(* MPI_Sendrecv: the deadlock-free combined exchange — the receive is
   posted before the send, inside one traced call. *)
let sendrecv env ~dst ?(sendtag = 0) ~src ?(recvtag = 0) data =
  traced env "MPI_Sendrecv"
    ~lib:[ "MPID_Irecv"; "MPID_Send"; "MPID_Progress_wait"; "poll" ]
    (fun () ->
      let r = Effect.perform (E_irecv { src; tag = recvtag }) in
      Effect.perform (E_send { dst; tag = sendtag; data });
      Effect.perform (E_wait r))
