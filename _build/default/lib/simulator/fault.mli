(** Typed fault injection.

    The paper evaluates DiffTrace by planting faults by hand (§II-G,
    §IV, §V). This module makes each of those faults a first-class
    value so workloads can be run as [normal = run No_fault] vs.
    [faulty = run f] with everything else identical — the precondition
    for trace diffing. *)

type t =
  | No_fault
  | Swap_send_recv of { rank : int; after_iter : int }
      (** §II-G [swapBug]: swap the Recv;Send order in [rank] after
          iteration [after_iter], risking head-to-head sends under a low
          eager limit. *)
  | Deadlock_recv of { rank : int; after_iter : int }
      (** §II-G [dlBug]: [rank] posts a receive nobody sends, an actual
          deadlock at the same location. *)
  | Wrong_collective_size of { rank : int }
      (** §IV-C: [rank] calls MPI_Allreduce with a wrong count; the
          collective can never complete — a real deadlock. *)
  | Wrong_collective_op of { rank : int }
      (** §IV-D: [rank] passes MPI_MAX where MPI_MIN was intended; the
          run terminates but computes the worst answer. *)
  | No_critical of { rank : int; thread : int }
      (** §IV-B: OpenMP thread [thread] of process [rank] performs its
          shared-memory update outside the critical section. *)
  | Skip_function of { rank : int; func : string }
      (** §V: [rank] never invokes [func] (LULESH: LagrangeLeapFrog). *)

val equal : t -> t -> bool

(** [to_string f] — compact human-readable form, e.g.
    ["swapBug(rank=5,after=7)"]. *)
val to_string : t -> string

(** [of_string s] parses [to_string]'s output.
    Raises [Invalid_argument] on malformed input. *)
val of_string : string -> t

val pp : Format.formatter -> t -> unit
