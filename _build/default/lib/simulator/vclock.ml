type t = int array

let create n =
  if n <= 0 then invalid_arg "Vclock.create";
  Array.make n 0

let copy = Array.copy
let size = Array.length

let get t i =
  if i < 0 || i >= Array.length t then invalid_arg "Vclock.get";
  t.(i)

let tick t i =
  if i < 0 || i >= Array.length t then invalid_arg "Vclock.tick";
  t.(i) <- t.(i) + 1

let same_size a b =
  if Array.length a <> Array.length b then invalid_arg "Vclock: size mismatch"

let merge t other =
  same_size t other;
  Array.iteri (fun i v -> if v > t.(i) then t.(i) <- v) other

let leq a b =
  same_size a b;
  let ok = ref true in
  Array.iteri (fun i v -> if v > b.(i) then ok := false) a;
  !ok

let equal a b =
  same_size a b;
  a = b

type order = Before | After | Equal | Concurrent

let ord a b =
  match (leq a b, leq b a) with
  | true, true -> Equal
  | true, false -> Before
  | false, true -> After
  | false, false -> Concurrent

let happens_before a b = ord a b = Before
let concurrent a b = ord a b = Concurrent
let to_list = Array.to_list

let of_list l =
  if l = [] then invalid_arg "Vclock.of_list";
  Array.of_list l

let pp ppf t =
  Format.fprintf ppf "<%s>"
    (String.concat "," (List.map string_of_int (to_list t)))

type stamp = { lamport : int; vec : t }

let stamp_happens_before a b = happens_before a.vec b.vec
