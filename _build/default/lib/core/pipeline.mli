(** The DiffTrace pipeline (paper Fig. 1).

    [analyze] takes one execution's decoded traces through
    decompress → filter → NLR → FCA attributes → formal context →
    concept lattice → JSM. [compare_runs] runs it for a normal and a
    faulty execution against a *shared* symbol table and loop table (so
    L-ids mean the same thing in both), then computes JSM_D, the
    B-score between the two hierarchical clusterings, and the
    suspicious-trace ranking. *)

type analysis = {
  config : Config.t;
  symtab : Difftrace_trace.Symtab.t;  (** shared, unified symbol table *)
  loop_table : Difftrace_nlr.Nlr.Loop_table.t;  (** shared loop table *)
  labels : string array;
  nlrs : (Difftrace_nlr.Nlr.t * bool) array;
      (** per trace: summary + truncation flag, indexed like [labels] *)
  context : Difftrace_fca.Context.t;
  lattice : Difftrace_fca.Lattice.t Lazy.t;
      (** built incrementally (Godin) on demand *)
  jsm : Difftrace_cluster.Jsm.t;
}

(** [analyze ?symtab ?loop_table config ts] — fresh shared tables are
    created when not supplied. *)
val analyze :
  ?symtab:Difftrace_trace.Symtab.t ->
  ?loop_table:Difftrace_nlr.Nlr.Loop_table.t ->
  Config.t ->
  Difftrace_trace.Trace_set.t ->
  analysis

(** [nlr_of analysis label] — that trace's summary and truncation flag.
    Raises [Not_found] for unknown labels. *)
val nlr_of : analysis -> string -> Difftrace_nlr.Nlr.t * bool

type comparison = {
  cmp_config : Config.t;
  normal : analysis;
  faulty : analysis;
  jsm_d : Difftrace_cluster.Jsm.t;
  bscore : float;
      (** Fowlkes–Mallows agreement of the two clusterings; low =
          the fault restructured the similarity relation *)
  suspects : (string * float) array;
      (** every common trace with its JSM_D row change, descending *)
  only_normal : string list;  (** labels present only in the normal run *)
  only_faulty : string list;
}

val compare_runs :
  Config.t ->
  normal:Difftrace_trace.Trace_set.t ->
  faulty:Difftrace_trace.Trace_set.t ->
  comparison

(** [top_processes ?limit c] — pids ranked by their most-changed
    master/thread row (descending), zero-change pids dropped. *)
val top_processes : ?limit:int -> comparison -> int list

(** [top_threads ?limit c] — worker-thread labels ("p.t", t ≥ 1)
    ranked by row change, zero-change threads dropped. *)
val top_threads : ?limit:int -> comparison -> string list

(** [diffnlr c label] — the diffNLR of that thread between the two
    runs (paper Figs. 5–7). Raises [Not_found] for unknown labels. *)
val diffnlr : comparison -> string -> Difftrace_diff.Diffnlr.t

(** {2 Single-run triage}

    §II-A: "many types of faults may be apparent just by analyzing
    JSM_faulty: for instance, processes whose execution got truncated
    will look highly dissimilar to those that terminated normally."
    Triage ranks the traces of a {e single} run by how much they stand
    out from the rest — no reference run required. *)

type triage_entry = {
  tr_label : string;
  tr_score : float;  (** 1 − mean similarity to every other trace *)
  tr_truncated : bool;
}

(** [triage a] — entries sorted by descending outlier score;
    truncated traces break score ties first. *)
val triage : analysis -> triage_entry array

(** [render_triage entries] — a small report table. *)
val render_triage : triage_entry array -> string

(** [dendrogram a] — ASCII dendrogram of the analysis's hierarchical
    clustering (1 − JSM distances, the analysis's linkage method). *)
val dendrogram : analysis -> string

(** [phasediff c label] — phase-aware diff of that thread's filtered
    call sequences (phases cut at MPI collectives; see
    {!Difftrace_diff.Phasediff}). Raises [Not_found] for unknown
    labels. *)
val phasediff : comparison -> string -> Difftrace_diff.Phasediff.t
