(** One point in DiffTrace's parameter space (the dashed box of the
    paper's Fig. 1): front-end filter × FCA attributes × NLR constant ×
    linkage method. Ranking tables sweep grids of these. *)

type t = {
  filter : Difftrace_filter.Filter.t;
  attrs : Difftrace_fca.Attributes.spec;
  k : int;            (** NLR constant K *)
  repeats : int;      (** NLR loop-creation threshold *)
  linkage : Difftrace_cluster.Linkage.method_;
}

(** [make ?filter ?attrs ?k ?repeats ?linkage ()] — defaults: MPI-all
    filter, single/noFreq attributes, K=10, repeats=2, ward. *)
val make :
  ?filter:Difftrace_filter.Filter.t ->
  ?attrs:Difftrace_fca.Attributes.spec ->
  ?k:int ->
  ?repeats:int ->
  ?linkage:Difftrace_cluster.Linkage.method_ ->
  unit ->
  t

(** [filter_name t] — e.g. ["11.mpiall.cust.K10"] (the paper's filter
    column, K folded in). *)
val filter_name : t -> string

(** [attrs_name t] — e.g. ["sing.noFreq"]. *)
val attrs_name : t -> string

(** [name t] — full label including the linkage. *)
val name : t -> string
