lib/core/pipeline.mli: Config Difftrace_cluster Difftrace_diff Difftrace_fca Difftrace_nlr Difftrace_trace Lazy
