lib/core/config.ml: Difftrace_cluster Difftrace_fca Difftrace_filter Printf
