lib/core/report.ml: Array Autotune Buffer Config Difftrace_diff Difftrace_simulator Difftrace_stacktree Difftrace_temporal List Pipeline Printf String
