lib/core/config.mli: Difftrace_cluster Difftrace_fca Difftrace_filter
