lib/core/ranking.ml: Config Difftrace_fca Difftrace_filter Difftrace_util Float List Pipeline Printf String
