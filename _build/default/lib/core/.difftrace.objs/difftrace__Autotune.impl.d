lib/core/autotune.ml: Array Config Difftrace_cluster Difftrace_fca Difftrace_filter Difftrace_util Float List Option Pipeline Printf
