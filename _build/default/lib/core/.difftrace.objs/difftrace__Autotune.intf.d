lib/core/autotune.mli: Config Difftrace_cluster Difftrace_fca Difftrace_filter Difftrace_trace
