lib/core/report.mli: Config Difftrace_simulator
