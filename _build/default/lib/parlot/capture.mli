(** Execution-wide trace capture.

    One [Capture.t] stands for one instrumented run: it owns the shared
    symbol table, hands a {!Tracer.t} to each (process, thread) on first
    use, and at the end decodes every compressed stream into a
    {!Difftrace_trace.Trace_set.t}. It also reports the §V statistics
    (compressed bytes per thread, decompressed event counts, distinct
    functions). *)

type t

(** [create ?level ()] — capture level defaults to [Main_image]. *)
val create : ?level:Tracer.level -> unit -> t

val symtab : t -> Difftrace_trace.Symtab.t
val level : t -> Tracer.level

(** [tracer t ~pid ~tid] is that thread's tracer, created on first
    request. *)
val tracer : t -> pid:int -> tid:int -> Tracer.t

(** [finish t] closes every stream and decodes the trace set. Idempotent
    decoding is not supported: call once. *)
val finish : t -> Difftrace_trace.Trace_set.t

type stats = {
  threads : int;
  total_events : int;          (** retained (post image-filter) events *)
  total_compressed_bytes : int;
  mean_compressed_bytes : float;   (** per thread *)
  mean_events_per_process : float; (** decompressed calls+returns, per process *)
  mean_distinct_functions : float; (** distinct IDs per process *)
  compression_ratio : float;       (** raw varint bytes / compressed bytes *)
}

(** [stats t ts] summarizes a finished capture against its decoded trace
    set. *)
val stats : t -> Difftrace_trace.Trace_set.t -> stats

val pp_stats : Format.formatter -> stats -> unit
