lib/parlot/lzw.ml: Buffer Char Difftrace_util Hashtbl String Varint Vec
