lib/parlot/capture.mli: Difftrace_trace Format Tracer
