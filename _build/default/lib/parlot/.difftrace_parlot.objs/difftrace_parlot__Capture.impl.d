lib/parlot/capture.ml: Array Difftrace_trace Difftrace_util Event Format Hashtbl List Symtab Trace Trace_set Tracer
