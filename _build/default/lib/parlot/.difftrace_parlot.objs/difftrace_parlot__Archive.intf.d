lib/parlot/archive.mli: Difftrace_trace
