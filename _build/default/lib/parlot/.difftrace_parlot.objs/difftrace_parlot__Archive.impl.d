lib/parlot/archive.ml: Array Buffer Difftrace_trace Difftrace_util Event Filename Fun Lzw Printf Scanf String Symtab Sys Trace Trace_set Tracer
