lib/parlot/tracer.mli: Difftrace_trace
