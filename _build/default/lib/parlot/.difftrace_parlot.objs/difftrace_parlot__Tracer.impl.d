lib/parlot/tracer.ml: Buffer Difftrace_trace Difftrace_util Event Lzw String Symtab Trace Varint Vec
