lib/parlot/lzw.mli:
