open Difftrace_util

(* Classic LZW. Codes 0..255 denote single bytes; code 256 is the
   end-of-stream marker; fresh phrases get codes from 257 up. The
   current phrase is represented by its dictionary code, so the encoder
   state is O(1) per step plus the dictionary. *)

let eos_code = 256
let first_code = 257

type encoder = {
  dict : (int * char, int) Hashtbl.t;
  mutable next_code : int;
  mutable current : int; (* code of the pending phrase; -1 = none *)
  out : Buffer.t;
  mutable fed : int;
}

let encoder () =
  { dict = Hashtbl.create 4096;
    next_code = first_code;
    current = -1;
    out = Buffer.create 256;
    fed = 0 }

let feed e c =
  e.fed <- e.fed + 1;
  if e.current < 0 then e.current <- Char.code c
  else
    match Hashtbl.find_opt e.dict (e.current, c) with
    | Some code -> e.current <- code
    | None ->
      Varint.write e.out e.current;
      Hashtbl.add e.dict (e.current, c) e.next_code;
      e.next_code <- e.next_code + 1;
      e.current <- Char.code c

let feed_string e s = String.iter (feed e) s

let finish e =
  if e.current >= 0 then begin
    Varint.write e.out e.current;
    e.current <- -1
  end;
  Varint.write e.out eos_code;
  Buffer.contents e.out

let output_size e = Buffer.length e.out
let input_size e = e.fed

let compress s =
  let e = encoder () in
  feed_string e s;
  finish e

(* Decoder: phrases are stored as (prefix_code, last_byte) pairs; a
   phrase is materialized by walking prefixes. Handles the KwKwK case
   (a code one past the dictionary end refers to the phrase currently
   being defined). *)
let decompress s =
  let phrases = Vec.create () in
  (* phrases.(i) corresponds to code first_code+i *)
  let phrase_bytes code =
    let buf = Buffer.create 16 in
    let rec go code =
      if code < 256 then Buffer.add_char buf (Char.chr code)
      else begin
        let prefix, last = Vec.get phrases (code - first_code) in
        go prefix;
        Buffer.add_char buf last
      end
    in
    go code;
    Buffer.contents buf
  in
  let first_byte code =
    let rec go code =
      if code < 256 then Char.chr code
      else
        let prefix, _ = Vec.get phrases (code - first_code) in
        go prefix
    in
    go code
  in
  let out = Buffer.create (String.length s * 3) in
  let len = String.length s in
  let rec loop pos prev =
    if pos >= len then invalid_arg "Lzw.decompress: missing end-of-stream";
    let code, pos = Varint.read s pos in
    if code = eos_code then ()
    else begin
      let valid_max = first_code + Vec.length phrases in
      if code > valid_max || code < 0 then invalid_arg "Lzw.decompress: bad code";
      (match prev with
      | None -> ()
      | Some prev ->
        (* Define the phrase prev ++ first_byte(code); for the KwKwK
           case code = valid_max, whose first byte equals prev's. *)
        let last = if code = valid_max then first_byte prev else first_byte code in
        Vec.push phrases (prev, last));
      Buffer.add_string out (phrase_bytes code);
      loop pos (Some code)
    end
  in
  if len > 0 then loop 0 None;
  Buffer.contents out
