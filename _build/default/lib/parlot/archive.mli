(** On-disk trace archives.

    The paper's workflow records traces once and re-analyzes them
    offline "with different filters" at every debug iteration. An
    archive directory holds exactly what ParLOT leaves behind: one
    compressed trace file per thread plus a manifest (symbol table,
    thread list, truncation flags).

    Layout:
    {v
    <dir>/manifest        version, symbols, one line per thread
    <dir>/trace_P_T.lzw   compressed event stream of thread (P, T)
    v} *)

(** [save ~dir outcome_traces] writes the archive (creating [dir] if
    needed) and returns the number of trace files written. Re-encodes
    each decoded trace with the streaming LZW codec. *)
val save : dir:string -> Difftrace_trace.Trace_set.t -> int

(** [load ~dir] reads an archive back into a trace set.
    Raises [Sys_error] on IO failure and [Invalid_argument] on a
    malformed manifest or corrupt trace file. *)
val load : dir:string -> Difftrace_trace.Trace_set.t

(** [manifest_file dir] / [trace_file dir ~pid ~tid] — file paths. *)
val manifest_file : string -> string

val trace_file : string -> pid:int -> tid:int -> string
