open Difftrace_trace

type t = {
  symtab : Symtab.t;
  level : Tracer.level;
  tracers : (int * int, Tracer.t) Hashtbl.t;
}

let create ?(level = Tracer.Main_image) () =
  { symtab = Symtab.create (); level; tracers = Hashtbl.create 64 }

let symtab t = t.symtab
let level t = t.level

let tracer t ~pid ~tid =
  match Hashtbl.find_opt t.tracers (pid, tid) with
  | Some tr -> tr
  | None ->
    let tr = Tracer.create ~symtab:t.symtab ~level:t.level ~pid ~tid in
    Hashtbl.add t.tracers (pid, tid) tr;
    tr

let finish t =
  let traces =
    Hashtbl.fold
      (fun (pid, tid) tr acc ->
        let data, truncated = Tracer.finish tr in
        Tracer.decode ~symtab:t.symtab ~pid ~tid ~truncated data :: acc)
      t.tracers []
  in
  Trace_set.create t.symtab traces

type stats = {
  threads : int;
  total_events : int;
  total_compressed_bytes : int;
  mean_compressed_bytes : float;
  mean_events_per_process : float;
  mean_distinct_functions : float;
  compression_ratio : float;
}

let stats t ts =
  let threads = Hashtbl.length t.tracers in
  let total_events = Trace_set.total_events ts in
  (* Raw size: each event as a varint, i.e. what an uncompressed ParLOT
     stream would occupy. *)
  let raw_bytes =
    Array.fold_left
      (fun acc tr ->
        Array.fold_left
          (fun acc e -> acc + Difftrace_util.Varint.size (Event.encode e))
          acc tr.Trace.events)
      0 (Trace_set.traces ts)
  in
  let total_compressed_bytes =
    Hashtbl.fold
      (fun _ tr acc -> acc + Tracer.compressed_so_far tr)
      t.tracers 0
  in
  let procs = Trace_set.processes ts in
  let nprocs = max 1 (List.length procs) in
  let per_process_events =
    List.map
      (fun pid ->
        Array.fold_left
          (fun acc tr ->
            if tr.Trace.pid = pid then acc + Trace.length tr else acc)
          0 (Trace_set.traces ts))
      procs
  in
  let per_process_distinct =
    List.map
      (fun pid ->
        let seen = Hashtbl.create 256 in
        Array.iter
          (fun tr ->
            if tr.Trace.pid = pid then
              Array.iter (fun e -> Hashtbl.replace seen (Event.id e) ()) tr.Trace.events)
          (Trace_set.traces ts);
        Hashtbl.length seen)
      procs
  in
  let meanl l =
    float_of_int (List.fold_left ( + ) 0 l) /. float_of_int nprocs
  in
  { threads;
    total_events;
    total_compressed_bytes;
    mean_compressed_bytes =
      float_of_int total_compressed_bytes /. float_of_int (max 1 threads);
    mean_events_per_process = meanl per_process_events;
    mean_distinct_functions = meanl per_process_distinct;
    compression_ratio =
      (if total_compressed_bytes = 0 then 1.0
       else float_of_int raw_bytes /. float_of_int total_compressed_bytes) }

let pp_stats ppf s =
  Format.fprintf ppf
    "@[<v>threads: %d@ events: %d@ compressed bytes: %d (%.1f/thread)@ \
     events/process: %.0f@ distinct functions/process: %.0f@ compression \
     ratio: %.2fx@]"
    s.threads s.total_events s.total_compressed_bytes s.mean_compressed_bytes
    s.mean_events_per_process s.mean_distinct_functions s.compression_ratio
