(** Per-thread trace recorder with ParLOT's on-the-fly compression.

    The simulated runtime calls [on_call]/[on_return] exactly where Pin
    instrumentation would fire; events are varint-serialized and pushed
    straight into a streaming {!Lzw} encoder, so the in-memory footprint
    during capture is the encoder state, not the trace. *)

(** Which binary image a function belongs to. ParLOT captures either the
    [main image] only (user code + API entry points) or [all images]
    (including inner library frames). *)
type image = Main | Library

type level = Main_image | All_images

type t

(** [create ~symtab ~level ~pid ~tid]. *)
val create :
  symtab:Difftrace_trace.Symtab.t -> level:level -> pid:int -> tid:int -> t

val pid : t -> int
val tid : t -> int

(** [on_call t ?image name] records entry into [name]. Events from
    [Library] images are dropped under [Main_image] capture, mirroring
    ParLOT's image filter. [image] defaults to [Main]. *)
val on_call : ?image:image -> t -> string -> unit

(** [on_return t ?image name] records exit from [name]. *)
val on_return : ?image:image -> t -> string -> unit

(** [scoped t ?image name f] records the call, runs [f ()], records the
    return, and passes exceptions through *without* recording the return
    — a thread killed inside a call leaves a truncated trace, as the
    paper's deadlock examples show. *)
val scoped : ?image:image -> t -> string -> (unit -> 'a) -> 'a

(** [set_truncated t] marks the thread as never having terminated. *)
val set_truncated : t -> unit

(** [events_recorded t] is the number of retained events so far. *)
val events_recorded : t -> int

(** [compressed_so_far t] is the compressed byte count so far. *)
val compressed_so_far : t -> int

(** [finish t] closes the stream and returns the compressed trace file
    contents together with the truncation flag. *)
val finish : t -> string * bool

(** [decode ~symtab ~pid ~tid ~truncated data] decompresses a finished
    stream back into a {!Difftrace_trace.Trace.t} — the pipeline's
    "ParLOT decoder" stage. *)
val decode :
  symtab:Difftrace_trace.Symtab.t ->
  pid:int ->
  tid:int ->
  truncated:bool ->
  string ->
  Difftrace_trace.Trace.t
