open Difftrace_trace

let manifest_file dir = Filename.concat dir "manifest"

let trace_file dir ~pid ~tid =
  Filename.concat dir (Printf.sprintf "trace_%d_%d.lzw" pid tid)

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let save ~dir ts =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let symtab = Trace_set.symtab ts in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "difftrace-archive 1\n";
  Buffer.add_string buf (Printf.sprintf "symbols %d\n" (Symtab.size symtab));
  Array.iter
    (fun name -> Buffer.add_string buf (Printf.sprintf "%S\n" name))
    (Symtab.names symtab);
  let traces = Trace_set.traces ts in
  Buffer.add_string buf (Printf.sprintf "threads %d\n" (Array.length traces));
  Array.iter
    (fun (tr : Trace.t) ->
      Buffer.add_string buf
        (Printf.sprintf "thread %d %d %s %d\n" tr.Trace.pid tr.Trace.tid
           (if tr.Trace.truncated then "truncated" else "complete")
           (Trace.length tr)))
    traces;
  write_file (manifest_file dir) (Buffer.contents buf);
  Array.iter
    (fun (tr : Trace.t) ->
      let enc = Lzw.encoder () in
      let scratch = Buffer.create 16 in
      Array.iter
        (fun ev ->
          Buffer.clear scratch;
          Difftrace_util.Varint.write scratch (Event.encode ev);
          Lzw.feed_string enc (Buffer.contents scratch))
        tr.Trace.events;
      write_file (trace_file dir ~pid:tr.Trace.pid ~tid:tr.Trace.tid) (Lzw.finish enc))
    traces;
  Array.length traces

let load ~dir =
  let manifest = read_file (manifest_file dir) in
  let lines = String.split_on_char '\n' manifest in
  let fail msg = invalid_arg ("Archive.load: " ^ msg) in
  match lines with
  | "difftrace-archive 1" :: rest ->
    let nsyms, rest =
      match rest with
      | l :: rest ->
        (try Scanf.sscanf l "symbols %d" (fun n -> (n, rest))
         with Scanf.Scan_failure _ | Failure _ -> fail "missing symbols header")
      | [] -> fail "truncated manifest"
    in
    let symtab = Symtab.create () in
    let rec read_syms n rest =
      if n = 0 then rest
      else
        match rest with
        | l :: rest ->
          let name = try Scanf.sscanf l "%S" (fun s -> s) with _ -> fail "bad symbol" in
          ignore (Symtab.intern symtab name);
          read_syms (n - 1) rest
        | [] -> fail "truncated symbols"
    in
    let rest = read_syms nsyms rest in
    let nthreads, rest =
      match rest with
      | l :: rest ->
        (try Scanf.sscanf l "threads %d" (fun n -> (n, rest))
         with Scanf.Scan_failure _ | Failure _ -> fail "missing threads header")
      | [] -> fail "truncated manifest"
    in
    let rec read_threads n rest acc =
      if n = 0 then acc
      else
        match rest with
        | l :: rest ->
          let pid, tid, status, len =
            try Scanf.sscanf l "thread %d %d %s %d" (fun a b c d -> (a, b, c, d))
            with Scanf.Scan_failure _ | Failure _ -> fail "bad thread line"
          in
          let truncated =
            match status with
            | "truncated" -> true
            | "complete" -> false
            | _ -> fail "bad thread status"
          in
          let data = read_file (trace_file dir ~pid ~tid) in
          let tr = Tracer.decode ~symtab ~pid ~tid ~truncated data in
          if Trace.length tr <> len then fail "trace length mismatch";
          read_threads (n - 1) rest (tr :: acc)
        | [] -> fail "truncated thread list"
    in
    let traces = read_threads nthreads rest [] in
    Trace_set.create symtab traces
  | _ -> fail "bad magic"
