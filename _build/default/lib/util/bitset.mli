(** Fixed-capacity bit sets over the integers [0 .. capacity-1].

    Used throughout the FCA and clustering code for concept extents and
    intents, where fast intersection / union / subset tests dominate the
    running time of lattice construction. *)

type t

(** [create n] is the empty set with capacity [n] (elements [0..n-1]). *)
val create : int -> t

(** [capacity s] is the capacity [s] was created with. *)
val capacity : t -> int

(** [copy s] is a fresh set equal to [s]. *)
val copy : t -> t

(** [singleton n i] is the capacity-[n] set containing only [i]. *)
val singleton : int -> int -> t

(** [full n] is the capacity-[n] set containing all of [0..n-1]. *)
val full : int -> t

(** [of_list n l] is the capacity-[n] set of the elements of [l]. *)
val of_list : int -> int list -> t

(** [add s i] adds [i] to [s] in place. Raises [Invalid_argument] if [i]
    is outside [0..capacity-1]. *)
val add : t -> int -> unit

(** [remove s i] removes [i] from [s] in place. *)
val remove : t -> int -> unit

(** [mem s i] tests membership. *)
val mem : t -> int -> bool

(** [is_empty s] is [true] iff [s] has no element. *)
val is_empty : t -> bool

(** [cardinal s] is the number of elements of [s]. *)
val cardinal : t -> int

(** [equal a b] is set equality. The sets must have equal capacity. *)
val equal : t -> t -> bool

(** [compare a b] is a total order compatible with [equal]. *)
val compare : t -> t -> int

(** [subset a b] is [true] iff every element of [a] is in [b]. *)
val subset : t -> t -> bool

(** [inter a b] is a fresh set [a ∩ b]. *)
val inter : t -> t -> t

(** [union a b] is a fresh set [a ∪ b]. *)
val union : t -> t -> t

(** [diff a b] is a fresh set [a \ b]. *)
val diff : t -> t -> t

(** [inter_cardinal a b] is [cardinal (inter a b)] without allocating. *)
val inter_cardinal : t -> t -> int

(** [union_cardinal a b] is [cardinal (union a b)] without allocating. *)
val union_cardinal : t -> t -> int

(** [jaccard a b] is [|a ∩ b| / |a ∪ b|], and [1.0] when both are empty. *)
val jaccard : t -> t -> float

(** [add_all a b] adds every element of [b] to [a] in place. *)
val add_all : t -> t -> unit

(** [inter_into a b] replaces [a] by [a ∩ b] in place. *)
val inter_into : t -> t -> unit

(** [iter f s] applies [f] to the elements of [s] in increasing order. *)
val iter : (int -> unit) -> t -> unit

(** [fold f s init] folds over elements in increasing order. *)
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

(** [to_list s] is the elements in increasing order. *)
val to_list : t -> int list

(** [hash s] is a hash compatible with [equal]. *)
val hash : t -> int

(** [pp ppf s] prints as [{0, 3, 7}]. *)
val pp : Format.formatter -> t -> unit
