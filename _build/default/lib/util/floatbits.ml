let to_ints fs =
  let out = Array.make (2 * Array.length fs) 0 in
  Array.iteri
    (fun i f ->
      let b = Int64.bits_of_float f in
      out.(2 * i) <- Int64.to_int (Int64.shift_right_logical b 32);
      out.((2 * i) + 1) <- Int64.to_int (Int64.logand b 0xFFFFFFFFL))
    fs;
  out

let of_ints p =
  if Array.length p mod 2 <> 0 then invalid_arg "Floatbits.of_ints: odd length";
  Array.init
    (Array.length p / 2)
    (fun i ->
      Int64.float_of_bits
        (Int64.logor
           (Int64.shift_left (Int64.of_int p.(2 * i)) 32)
           (Int64.of_int p.((2 * i) + 1))))
