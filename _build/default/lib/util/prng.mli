(** Deterministic pseudo-random number generation (SplitMix64).

    Every stochastic choice in the simulator and the workload generators
    goes through this module so that an execution is a pure function of
    its seed — a prerequisite for trace diffing, for reproducible tests,
    and for comparing a normal and a fault-injected run of the *same*
    schedule. *)

type t

(** [create seed] is a generator seeded with [seed]. *)
val create : int -> t

(** [copy g] is an independent generator with the same state. *)
val copy : t -> t

(** [next g] is the next raw 64-bit state-step output (as an [int64]). *)
val next : t -> int64

(** [int g bound] is uniform in [0 .. bound-1]. Requires [bound > 0]. *)
val int : t -> int -> int

(** [float g] is uniform in [0, 1). *)
val float : t -> float

(** [bool g] is a fair coin flip. *)
val bool : t -> bool

(** [shuffle g a] permutes [a] in place (Fisher–Yates). *)
val shuffle : t -> 'a array -> unit

(** [split g] derives a new independent generator from [g], advancing
    [g]. *)
val split : t -> t
