type align = Left | Right | Center

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s
    | Center ->
      let l = (width - n) / 2 in
      String.make l ' ' ^ s ^ String.make (width - n - l) ' '

let render ?aligns ~headers rows =
  let ncols = List.length headers in
  List.iter
    (fun r ->
      if List.length r <> ncols then invalid_arg "Texttable.render: ragged row")
    rows;
  let aligns =
    match aligns with
    | Some a when List.length a = ncols -> Array.of_list a
    | Some _ -> invalid_arg "Texttable.render: aligns length mismatch"
    | None -> Array.make ncols Left
  in
  let cells = Array.of_list (List.map Array.of_list (headers :: rows)) in
  let widths = Array.make ncols 0 in
  Array.iter
    (fun row ->
      Array.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) row)
    cells;
  let buf = Buffer.create 1024 in
  let hline () =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let line row =
    Buffer.add_char buf '|';
    Array.iteri
      (fun i c ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf (pad aligns.(i) widths.(i) c);
        Buffer.add_string buf " |")
      row;
    Buffer.add_char buf '\n'
  in
  hline ();
  line cells.(0);
  hline ();
  for i = 1 to Array.length cells - 1 do
    line cells.(i)
  done;
  if Array.length cells > 1 then hline ();
  Buffer.contents buf

let print ?aligns ~headers rows = print_string (render ?aligns ~headers rows)

let heatmap ~labels m =
  let n = Array.length m in
  if Array.length labels <> n then invalid_arg "Texttable.heatmap: labels mismatch";
  let headers = "" :: Array.to_list labels in
  let rows =
    List.init n (fun i ->
        labels.(i)
        :: Array.to_list (Array.map (fun v -> Printf.sprintf "%.2f" v) m.(i)))
  in
  let aligns = Left :: List.init n (fun _ -> Right) in
  render ~aligns ~headers rows
