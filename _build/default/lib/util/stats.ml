let nonempty a = if Array.length a = 0 then invalid_arg "Stats: empty array"

let sum a = Array.fold_left ( +. ) 0.0 a

let mean a =
  nonempty a;
  sum a /. float_of_int (Array.length a)

let variance a =
  nonempty a;
  let m = mean a in
  Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 a
  /. float_of_int (Array.length a)

let stddev a = sqrt (variance a)

let median a =
  nonempty a;
  let b = Array.copy a in
  Array.sort Float.compare b;
  let n = Array.length b in
  if n mod 2 = 1 then b.(n / 2) else (b.((n / 2) - 1) +. b.(n / 2)) /. 2.0

let minimum a =
  nonempty a;
  Array.fold_left Float.min a.(0) a

let maximum a =
  nonempty a;
  Array.fold_left Float.max a.(0) a

let geomean a =
  nonempty a;
  let acc =
    Array.fold_left
      (fun acc x ->
        if x <= 0.0 then invalid_arg "Stats.geomean: nonpositive value";
        acc +. log x)
      0.0 a
  in
  exp (acc /. float_of_int (Array.length a))
