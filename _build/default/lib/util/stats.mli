(** Small numeric summaries used by the benchmark harness and the
    EXPERIMENTS.md reporting (trace-size statistics, reduction factors,
    ranking stability). *)

(** [mean a] — arithmetic mean. Raises [Invalid_argument] on empty. *)
val mean : float array -> float

(** [variance a] — population variance. *)
val variance : float array -> float

(** [stddev a] — population standard deviation. *)
val stddev : float array -> float

(** [median a] — median (does not modify [a]). *)
val median : float array -> float

(** [minimum a], [maximum a]. *)
val minimum : float array -> float

val maximum : float array -> float

(** [sum a]. *)
val sum : float array -> float

(** [geomean a] — geometric mean of positive values. *)
val geomean : float array -> float
