(* SplitMix64 (Steele et al.), the standard seeding-quality generator:
   tiny state, full 64-bit period of the underlying Weyl sequence. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }
let copy g = { state = g.state }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next g =
  g.state <- Int64.add g.state golden;
  mix g.state

let int g bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let r = Int64.to_int (Int64.shift_right_logical (next g) 2) in
  r mod bound

let float g =
  let r = Int64.to_float (Int64.shift_right_logical (next g) 11) in
  r /. 9007199254740992.0 (* 2^53 *)

let bool g = Int64.logand (next g) 1L = 1L

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done

let split g = { state = next g }
