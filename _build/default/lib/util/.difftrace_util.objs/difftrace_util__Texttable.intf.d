lib/util/texttable.mli:
