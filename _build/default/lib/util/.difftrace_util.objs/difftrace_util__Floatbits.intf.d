lib/util/floatbits.mli:
