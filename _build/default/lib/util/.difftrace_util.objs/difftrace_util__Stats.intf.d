lib/util/stats.mli:
