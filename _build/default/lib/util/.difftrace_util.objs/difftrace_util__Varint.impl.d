lib/util/varint.ml: Buffer Char List String
