lib/util/bitset.ml: Array Format Int List Sys
