lib/util/prng.mli:
