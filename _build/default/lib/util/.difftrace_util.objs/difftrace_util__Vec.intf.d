lib/util/vec.mli:
