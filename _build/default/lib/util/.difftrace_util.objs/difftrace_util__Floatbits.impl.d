lib/util/floatbits.ml: Array Int64
