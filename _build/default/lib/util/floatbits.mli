(** Lossless float <-> int-array coding.

    The simulator's message payloads are [int array]s; numerical
    workloads ship floating-point data by splitting each IEEE-754 value
    into two 32-bit halves (a single [Int64.to_int] would lose the sign
    bit on 63-bit OCaml ints). *)

(** [to_ints fs] — two ints per float, in order. *)
val to_ints : float array -> int array

(** [of_ints p] — inverse of [to_ints]. [Array.length p] must be even.
    Raises [Invalid_argument] otherwise. *)
val of_ints : int array -> float array
