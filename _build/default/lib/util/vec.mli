(** Growable arrays ("vectors").

    The NLR reduction stack and the trace encoders are hot paths built on
    this structure; it provides amortized O(1) push/pop and O(1) random
    access without the boxing overhead of lists. *)

type 'a t

(** [create ()] is an empty vector. *)
val create : unit -> 'a t

(** [with_capacity n] is an empty vector preallocating room for [n]
    elements. *)
val with_capacity : int -> 'a t

(** [length v] is the number of elements. *)
val length : 'a t -> int

(** [is_empty v] is [length v = 0]. *)
val is_empty : 'a t -> bool

(** [get v i] is element [i]. Raises [Invalid_argument] out of range. *)
val get : 'a t -> int -> 'a

(** [set v i x] replaces element [i]. *)
val set : 'a t -> int -> 'a -> unit

(** [push v x] appends [x]. *)
val push : 'a t -> 'a -> unit

(** [pop v] removes and returns the last element.
    Raises [Invalid_argument] if empty. *)
val pop : 'a t -> 'a

(** [peek v i] is the element [i] positions from the top, so [peek v 0]
    is the last element. Raises [Invalid_argument] out of range. *)
val peek : 'a t -> int -> 'a

(** [truncate v n] drops elements so that [length v = n].
    Raises [Invalid_argument] if [n > length v]. *)
val truncate : 'a t -> int -> unit

(** [clear v] removes all elements. *)
val clear : 'a t -> unit

(** [to_array v] is a fresh array of the elements in order. *)
val to_array : 'a t -> 'a array

(** [of_array a] is a vector of the elements of [a]. *)
val of_array : 'a array -> 'a t

(** [to_list v] is the elements in order. *)
val to_list : 'a t -> 'a list

(** [iter f v] applies [f] in order. *)
val iter : ('a -> unit) -> 'a t -> unit

(** [iteri f v] applies [f i x] in order. *)
val iteri : (int -> 'a -> unit) -> 'a t -> unit

(** [fold_left f init v] folds in order. *)
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

(** [sub v pos len] is a fresh array of [len] elements starting at
    [pos]. *)
val sub : 'a t -> int -> int -> 'a array

(** [append_array v a] pushes every element of [a]. *)
val append_array : 'a t -> 'a array -> unit
