(** Plain-text table rendering for the paper's ranking tables and the
    reproduction harness output. *)

type align = Left | Right | Center

(** [render ?aligns ~headers rows] lays the table out with box-drawing
    separators; every row must have [List.length headers] cells.
    [aligns] defaults to all-[Left]. *)
val render : ?aligns:align list -> headers:string list -> string list list -> string

(** [print ?aligns ~headers rows] renders and prints to stdout. *)
val print : ?aligns:align list -> headers:string list -> string list list -> unit

(** [heatmap ~labels m] renders a square float matrix with 2-decimal
    cells and row/column labels — used for the JSM "heatmaps" (Fig. 4). *)
val heatmap : labels:string array -> float array array -> string
