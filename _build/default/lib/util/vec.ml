(* The backing array is always created from a real element (never from
   [Obj.magic]) so that OCaml's flat float-array representation is
   respected. Cells beyond [len] may retain stale elements; they are
   never exposed and only delay GC of those values, which is acceptable
   for the short-lived vectors used here. *)

type 'a t = { mutable data : 'a array; mutable len : int; mutable want : int }

let create () = { data = [||]; len = 0; want = 0 }
let with_capacity n = { data = [||]; len = 0; want = n }
let length v = v.len
let is_empty v = v.len = 0

let check v i = if i < 0 || i >= v.len then invalid_arg "Vec: index out of range"

let get v i =
  check v i;
  v.data.(i)

let set v i x =
  check v i;
  v.data.(i) <- x

let grow v x =
  let cap = Array.length v.data in
  if cap = 0 then v.data <- Array.make (max 8 v.want) x
  else begin
    let nd = Array.make (2 * cap) x in
    Array.blit v.data 0 nd 0 v.len;
    v.data <- nd
  end

let push v x =
  if v.len = Array.length v.data then grow v x;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let pop v =
  if v.len = 0 then invalid_arg "Vec.pop: empty";
  v.len <- v.len - 1;
  v.data.(v.len)

let peek v i =
  if i < 0 || i >= v.len then invalid_arg "Vec.peek: out of range";
  v.data.(v.len - 1 - i)

let truncate v n =
  if n < 0 || n > v.len then invalid_arg "Vec.truncate";
  v.len <- n

let clear v = truncate v 0
let to_array v = Array.sub v.data 0 v.len
let of_array a = { data = Array.copy a; len = Array.length a; want = 0 }
let to_list v = Array.to_list (to_array v)

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let iteri f v =
  for i = 0 to v.len - 1 do
    f i v.data.(i)
  done

let fold_left f init v =
  let acc = ref init in
  iter (fun x -> acc := f !acc x) v;
  !acc

let sub v pos len =
  if pos < 0 || len < 0 || pos + len > v.len then invalid_arg "Vec.sub";
  Array.sub v.data pos len

let append_array v a = Array.iter (push v) a
