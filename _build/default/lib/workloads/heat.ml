open Difftrace_simulator
open Runtime

type result = { iterations : int; final_residual : int; field : int array }

let is m fault ~rank =
  match (m, fault) with
  | `Swap, Fault.Swap_send_recv { rank = r; after_iter = _ } -> r = rank
  | `Dl, Fault.Deadlock_recv { rank = r; after_iter = _ } -> r = rank
  | `Skip, Fault.Skip_function { rank = r; func } -> r = rank && func = "ExchangeHalo"
  | `Wsize, Fault.Wrong_collective_size { rank = r } -> r = rank
  | (`Swap | `Dl | `Skip | `Wsize), _ -> false

let after fault =
  match fault with
  | Fault.Swap_send_recv { after_iter; _ } | Fault.Deadlock_recv { after_iter; _ } ->
    after_iter
  | Fault.No_fault | Fault.Wrong_collective_size _ | Fault.Wrong_collective_op _
  | Fault.No_critical _ | Fault.Skip_function _ -> 0

let run ?(np = 8) ?(workers = 4) ?(seed = 1) ?level ?(cells_per_rank = 24)
    ?(halo = 2) ?(max_iters = 30) ?(eager_limit = 4) ?max_steps ~fault () =
  let iterations = ref 0 in
  let final_residual = ref 0 in
  let gathered = ref [||] in
  let outcome =
    Runtime.run ~np ~seed ~eager_limit ?max_steps ?level (fun env ->
        Api.call env "main" (fun () ->
            Api.mpi_init env;
            let rank = Api.comm_rank env in
            let np = Api.comm_size env in
            let cpr = cells_per_rank in
            (* rank 0 builds the initial field: a hot spot mid-domain *)
            let init =
              if rank = 0 then
                Api.call env "InitField" (fun () ->
                    Array.init (np * cpr) (fun i ->
                        if i = np * cpr / 2 then 1_000_000 else 0))
              else [||]
            in
            let field =
              ref (Api.scatter env ~root:0 ~count:cpr init)
            in
            let residual = Shm.cell ~protected_:true "residual" 0 in
            let exchange_halo it =
              (* boundary values from the neighbours; zero at the walls *)
              let left = rank - 1 and right = rank + 1 in
              let send_payload side =
                match side with
                | `Left -> Array.sub !field 0 halo
                | `Right -> Array.sub !field (cpr - halo) halo
              in
              let swapped = is `Swap fault ~rank && it > after fault in
              if is `Dl fault ~rank && it > after fault then begin
                (* a receive that can never match: actual deadlock (the
                   dummy halos below are never reached) *)
                ignore (Api.recv env ~src:(if rank = 0 then 1 else 0) ~tag:666 ());
                (Array.make halo 0, Array.make halo 0)
              end
              else if swapped then begin
                (* faulty protocol: blocking sends first *)
                if left >= 0 then Api.send env ~dst:left ~tag:1 (send_payload `Left);
                if right < np then Api.send env ~dst:right ~tag:1 (send_payload `Right);
                let l =
                  if left >= 0 then Api.recv env ~src:left ~tag:1 ()
                  else Array.make halo 0
                in
                let r =
                  if right < np then Api.recv env ~src:right ~tag:1 ()
                  else Array.make halo 0
                in
                (l, r)
              end
              else begin
                (* correct protocol: post receives, then send, then wait *)
                let rl = if left >= 0 then Some (Api.irecv env ~src:left ~tag:1 ()) else None in
                let rr = if right < np then Some (Api.irecv env ~src:right ~tag:1 ()) else None in
                if left >= 0 then Api.send env ~dst:left ~tag:1 (send_payload `Left);
                if right < np then Api.send env ~dst:right ~tag:1 (send_payload `Right);
                let l =
                  match rl with Some r -> Api.wait env r | None -> Array.make halo 0
                in
                let r =
                  match rr with Some r -> Api.wait env r | None -> Array.make halo 0
                in
                (l, r)
              end
            in
            let continue_loop = ref true in
            let it = ref 0 in
            while !continue_loop && !it < max_iters do
              incr it;
              let left_halo, right_halo =
                if is `Skip fault ~rank then (Array.make halo 0, Array.make halo 0)
                else Api.call env "ExchangeHalo" (fun () -> exchange_halo !it)
              in
              (* Jacobi update across the OpenMP team *)
              Api.critical env (fun () -> Shm.write env residual 0);
              let old = !field in
              let fresh = Array.copy old in
              Api.call env "JacobiSweep" (fun () ->
                  Api.parallel env ~num_threads:workers (fun tenv ->
                      let t = Runtime.tid tenv in
                      let per = (cpr + workers - 1) / workers in
                      let lo = t * per and hi = min cpr ((t + 1) * per) in
                      let local = ref 0 in
                      Api.call tenv "JacobiKernel" (fun () ->
                          for i = lo to hi - 1 do
                            let get j =
                              if j < 0 then left_halo.(halo + j)
                              else if j >= cpr then right_halo.(j - cpr)
                              else old.(j)
                            in
                            let v = (get (i - 1) + (2 * get i) + get (i + 1)) / 4 in
                            fresh.(i) <- v;
                            local := !local + abs (v - old.(i))
                          done);
                      let update () =
                        Shm.write tenv residual (Shm.read tenv residual + !local)
                      in
                      let skip_critical =
                        match fault with
                        | Fault.No_critical { rank = r; thread } ->
                          r = rank && thread = t
                        | Fault.No_fault | Fault.Swap_send_recv _
                        | Fault.Deadlock_recv _ | Fault.Wrong_collective_size _
                        | Fault.Wrong_collective_op _ | Fault.Skip_function _ ->
                          false
                      in
                      if skip_critical then update ()
                      else Api.critical tenv update));
              field := fresh;
              let count =
                if is `Wsize fault ~rank then Some 3 else None
              in
              let local_res = Api.critical env (fun () -> Shm.read env residual) in
              let g = Api.allreduce env ?count ~op:Op_sum [| local_res |] in
              if rank = 0 then begin
                iterations := !it;
                final_residual := g.(0)
              end;
              if g.(0) = 0 then continue_loop := false
            done;
            let all = Api.gather env ~root:0 !field in
            if rank = 0 then gathered := all;
            Api.mpi_finalize env))
  in
  ( outcome,
    { iterations = !iterations; final_residual = !final_residual; field = !gathered } )
