open Difftrace_util

type t = { xs : int array; ys : int array }

let make ~cities ~seed =
  if cities < 3 then invalid_arg "Tsp.make: need at least 3 cities";
  let rng = Prng.create seed in
  { xs = Array.init cities (fun _ -> Prng.int rng 1000);
    ys = Array.init cities (fun _ -> Prng.int rng 1000) }

let n_cities t = Array.length t.xs

(* Scaled integer Euclidean distance: floor(100 * sqrt(dx² + dy²)). *)
let dist t i j =
  let dx = float_of_int (t.xs.(i) - t.xs.(j))
  and dy = float_of_int (t.ys.(i) - t.ys.(j)) in
  int_of_float (100.0 *. sqrt ((dx *. dx) +. (dy *. dy)))

let tour_length t tour =
  let n = Array.length tour in
  if n <> n_cities t then invalid_arg "Tsp.tour_length: wrong tour size";
  let total = ref 0 in
  for i = 0 to n - 1 do
    total := !total + dist t tour.(i) tour.((i + 1) mod n)
  done;
  !total

let random_tour t ~seed =
  let tour = Array.init (n_cities t) (fun i -> i) in
  Prng.shuffle (Prng.create seed) tour;
  tour

(* First-improvement 2-opt: reverse tour[i+1..j] whenever that shortens
   the tour; repeat to a local minimum. *)
let two_opt t tour =
  let n = Array.length tour in
  let improved = ref true in
  let exchanges = ref 0 in
  while !improved do
    improved := false;
    for i = 0 to n - 2 do
      for j = i + 1 to n - 1 do
        let a = tour.(i)
        and b = tour.((i + 1) mod n)
        and c = tour.(j)
        and d = tour.((j + 1) mod n) in
        if a <> c && b <> d then begin
          let delta = dist t a c + dist t b d - dist t a b - dist t c d in
          if delta < 0 then begin
            (* reverse the segment i+1 .. j *)
            let lo = ref (i + 1) and hi = ref j in
            while !lo < !hi do
              let tmp = tour.(!lo) in
              tour.(!lo) <- tour.(!hi);
              tour.(!hi) <- tmp;
              incr lo;
              decr hi
            done;
            incr exchanges;
            improved := true
          end
        end
      done
    done
  done;
  (tour_length t tour, !exchanges)

let solve t ~seed =
  let tour = random_tour t ~seed in
  fst (two_opt t tour)
