open Difftrace_simulator
open Runtime

type result = { global_champion : int; rounds : int array }

(* Ranks are encoded into the low bits of the champion-owner Allreduce
   so MPI_MINLOC can be expressed with a plain MIN. *)
let rank_bits = 6 (* supports np <= 64 *)

let run ?(np = 8) ?(workers = 4) ?(seed = 1) ?level ?(cities = 12)
    ?(seeds_per_worker = 40) ?(threshold = 3) ?max_steps ?jitter ~fault () =
  if np > 1 lsl rank_bits then invalid_arg "Ilcs.run: np too large";
  let rounds = Array.make np 0 in
  let best = ref max_int in
  let outcome =
    Runtime.run ~np ~seed ?level ?max_steps ?jitter (fun env ->
        Api.call env "main" (fun () ->
            Api.mpi_init env;
            let my_rank = Api.comm_rank env in
            ignore (Api.comm_size env);
            (* total number of CPUs / GPUs (Listing 1 lines 7-8) *)
            ignore (Api.reduce env ~root:0 ~op:Op_sum [| workers |]);
            ignore (Api.reduce env ~root:0 ~op:Op_sum [| 0 |]);
            (* identical problem instance on every rank *)
            let tsp = Tsp.make ~cities ~seed:4242 in
            ignore (Api.call env "CPU_Init" (fun () -> Tsp.n_cities tsp));
            Api.barrier env;
            let champ =
              Array.init (workers + 1) (fun t ->
                  Shm.cell ~protected_:true (Printf.sprintf "champ[%d]" t)
                    max_int)
            in
            let bcast_buffer = Shm.cell ~protected_:true "bcast_buffer" max_int in
            let cont = Shm.cell "cont" 1 in
            Api.parallel env ~num_threads:(workers + 1) (fun tenv ->
                let trank = Api.omp_get_thread_num tenv in
                if trank <> 0 then begin
                  (* worker thread: evaluate seeds, record improvements *)
                  let base = (my_rank * 7919) + (trank * 104729) + seed in
                  let i = ref 0 in
                  while Shm.read tenv cont = 1 && !i < seeds_per_worker do
                    let sd = base + !i in
                    let result =
                      Api.call tenv "CPU_Exec" (fun () -> Tsp.solve tsp ~seed:sd)
                    in
                    if result < Shm.read tenv champ.(trank) then begin
                      let update () =
                        Api.libc tenv "memcpy";
                        Shm.write tenv champ.(trank) result
                      in
                      let skip_critical =
                        match fault with
                        | Fault.No_critical { rank; thread } ->
                          rank = my_rank && thread = trank
                        | Fault.No_fault | Fault.Swap_send_recv _
                        | Fault.Deadlock_recv _ | Fault.Wrong_collective_size _
                        | Fault.Wrong_collective_op _ | Fault.Skip_function _ ->
                          false
                      in
                      if skip_critical then update () else Api.critical tenv update
                    end;
                    incr i;
                    Api.yield tenv
                  done
                end
                else begin
                  (* master thread: global reduction / broadcast rounds.
                     The loop condition depends only on globally agreed
                     values, so every master executes the same number of
                     collectives. *)
                  let prev_global = ref max_int in
                  let no_change = ref 0 in
                  while !no_change < threshold do
                    let local = ref max_int in
                    for t = 1 to workers do
                      let v = Shm.read tenv champ.(t) in
                      if v < !local then local := v
                    done;
                    let op =
                      match fault with
                      | Fault.Wrong_collective_op { rank } when rank = my_rank ->
                        Op_max
                      | Fault.Wrong_collective_op _ | Fault.No_fault
                      | Fault.Swap_send_recv _ | Fault.Deadlock_recv _
                      | Fault.Wrong_collective_size _ | Fault.No_critical _
                      | Fault.Skip_function _ -> Op_min
                    in
                    let count =
                      match fault with
                      | Fault.Wrong_collective_size { rank } when rank = my_rank ->
                        Some 2
                      | Fault.Wrong_collective_size _ | Fault.No_fault
                      | Fault.Swap_send_recv _ | Fault.Deadlock_recv _
                      | Fault.Wrong_collective_op _ | Fault.No_critical _
                      | Fault.Skip_function _ -> None
                    in
                    (* broadcast the global champion (value) *)
                    let g = Api.allreduce tenv ?count ~op [| !local |] in
                    let gchamp = g.(0) in
                    (* broadcast the global champion P_id *)
                    let enc =
                      ((if !local = max_int then (1 lsl 40) - 1 else !local)
                      lsl rank_bits)
                      lor my_rank
                    in
                    let gp = Api.allreduce tenv ~op:Op_min [| enc |] in
                    let champion_pid = gp.(0) land ((1 lsl rank_bits) - 1) in
                    if my_rank = champion_pid then
                      Api.critical tenv (fun () ->
                          Api.libc tenv "memcpy";
                          Shm.write tenv bcast_buffer !local);
                    ignore
                      (Api.bcast tenv ~root:champion_pid
                         [| Shm.read tenv bcast_buffer |]);
                    if gchamp < !prev_global then begin
                      prev_global := gchamp;
                      no_change := 0
                    end
                    else incr no_change;
                    rounds.(my_rank) <- rounds.(my_rank) + 1;
                    if my_rank = 0 && gchamp < !best then best := gchamp;
                    Api.yield tenv
                  done;
                  Shm.write tenv cont 0
                end);
            if my_rank = 0 then
              ignore (Api.call env "CPU_Output" (fun () -> ()));
            Api.mpi_finalize env))
  in
  (outcome, { global_champion = !best; rounds })
