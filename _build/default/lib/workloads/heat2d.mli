(** 2-D heat diffusion on a process grid with sub-communicators.

    The 2-D companion of {!Heat}: ranks form a [px × py] Cartesian
    grid (rank = ry·px + rx); each owns a [w × h] cell block. Every
    iteration exchanges four halos (receives posted first), runs a
    5-point Jacobi update across the OpenMP team, and reduces the
    residual over the world communicator. Row and column communicators
    built with [MPI_Comm_split] are exercised for real work: each row
    tracks its row-maximum temperature (row-comm Allreduce) and the
    final field is assembled by row gathers into column 0 followed by
    a column-comm gather at rank 0.

    Fault points: [Skip_function {rank; func = "ExchangeHalo2D"}]
    (neighbours hang), [Wrong_collective_size {rank}] (residual
    Allreduce mismatch hangs the world), [No_critical {rank; thread}]
    (unprotected residual accumulation, flagged by the discipline
    checker). *)

type result = {
  iterations : int;
  final_residual : int;    (** scaled-integer global residual *)
  field : int array;       (** full [px·w × py·h] field, row-major,
                               gathered at rank 0 ([[||]] on hangs) *)
  row_max : int array;     (** per-row maximum cell value (rank 0 view) *)
}

val run :
  ?px:int ->
  ?py:int ->
  ?workers:int ->
  ?seed:int ->
  ?level:Difftrace_parlot.Tracer.level ->
  ?w:int ->
  ?h:int ->
  ?max_iters:int ->
  ?max_steps:int ->
  fault:Difftrace_simulator.Fault.t ->
  unit ->
  Difftrace_simulator.Runtime.outcome * result
