(** Traveling Salesman local search — the user code ILCS runs (§IV-A).

    Random Euclidean instances; tours start from a seeded random
    permutation and are improved with the 2-opt heuristic until a local
    minimum, exactly the workflow the paper describes. Distances are
    scaled integers so results are exact and platform-independent. *)

type t

(** [make ~cities ~seed] — a random instance with [cities] points on a
    1000×1000 grid. *)
val make : cities:int -> seed:int -> t

val n_cities : t -> int

(** [tour_length t tour] — total scaled-integer length of the closed
    tour. [tour] must be a permutation of [0..n-1]. *)
val tour_length : t -> int array -> int

(** [random_tour t ~seed] — seeded random permutation. *)
val random_tour : t -> seed:int -> int array

(** [two_opt t tour] — improves [tour] in place to a 2-opt local
    minimum; returns the final length and the number of improving
    exchanges applied. *)
val two_opt : t -> int array -> int * int

(** [solve t ~seed] — random restart + 2-opt; returns the local-minimum
    length ([CPU_Exec]'s result). *)
val solve : t -> seed:int -> int
