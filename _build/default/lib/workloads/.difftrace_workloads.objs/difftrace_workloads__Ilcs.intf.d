lib/workloads/ilcs.mli: Difftrace_parlot Difftrace_simulator
