lib/workloads/lulesh.mli: Difftrace_parlot Difftrace_simulator
