lib/workloads/odd_even.ml: Api Array Difftrace_simulator Difftrace_util Fault Int Prng Runtime
