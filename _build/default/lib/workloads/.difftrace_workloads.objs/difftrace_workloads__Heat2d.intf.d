lib/workloads/heat2d.mli: Difftrace_parlot Difftrace_simulator
