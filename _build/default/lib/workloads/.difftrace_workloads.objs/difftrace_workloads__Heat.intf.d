lib/workloads/heat.mli: Difftrace_parlot Difftrace_simulator
