lib/workloads/ilcs.ml: Api Array Difftrace_simulator Fault Printf Runtime Shm Tsp
