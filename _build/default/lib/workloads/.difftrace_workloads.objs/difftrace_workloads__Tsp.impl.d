lib/workloads/tsp.ml: Array Difftrace_util Prng
