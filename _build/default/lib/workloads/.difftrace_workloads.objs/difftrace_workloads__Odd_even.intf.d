lib/workloads/odd_even.mli: Difftrace_parlot Difftrace_simulator
