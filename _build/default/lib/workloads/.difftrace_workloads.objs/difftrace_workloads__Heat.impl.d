lib/workloads/heat.ml: Api Array Difftrace_simulator Fault Runtime Shm
