lib/workloads/lulesh.ml: Api Array Difftrace_simulator Difftrace_util Fault Float List Runtime
