lib/workloads/heat2d.ml: Api Array Difftrace_simulator Fault Option Runtime Shm
