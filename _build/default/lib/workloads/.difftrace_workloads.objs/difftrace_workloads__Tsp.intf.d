lib/workloads/tsp.mli:
