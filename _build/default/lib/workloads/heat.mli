(** 1-D heat diffusion (Jacobi stencil) under MPI + OpenMP.

    The classic HPC kernel the paper's introduction motivates: rank 0
    scatters the initial field, each rank iterates a Jacobi update on
    its block (the cell loop runs in an OpenMP team, accumulating the
    local residual under a critical section), halo cells are exchanged
    with neighbours every iteration (receives posted first), and an
    Allreduce of the residual decides convergence — a global value, so
    all ranks agree on the iteration count. Rank 0 gathers the final
    field. Arithmetic is scaled-integer, so results are exact and
    deterministic.

    Fault points:
    - [Swap_send_recv {rank; after_iter}] — that rank falls back to a
      blocking send-then-recv halo protocol; because its neighbours
      still post receives first the run completes, but the protocol
      flip is plainly visible in the trace (MPI_Send replacing the
      MPI_Irecv/MPI_Wait pattern) — a silent bug for diffNLR to find;
    - [Deadlock_recv {rank; after_iter}] — a receive nobody matches;
    - [Skip_function {rank; func = "ExchangeHalo"}] — the §V-style
      dropped call: neighbours block forever;
    - [Wrong_collective_size {rank}] — wrong count in the residual
      Allreduce: every rank hangs there;
    - [No_critical {rank; thread}] — that worker adds its partial
      residual without the critical section (flagged by the
      discipline checker). *)

type result = {
  iterations : int;        (** Jacobi iterations executed (rank 0 view) *)
  final_residual : int;    (** scaled-integer global residual *)
  field : int array;       (** gathered final field (rank 0); [[||]] on
                               abnormal runs *)
}

val run :
  ?np:int ->
  ?workers:int ->
  ?seed:int ->
  ?level:Difftrace_parlot.Tracer.level ->
  ?cells_per_rank:int ->
  ?halo:int ->
  ?max_iters:int ->
  ?eager_limit:int ->
  ?max_steps:int ->
  fault:Difftrace_simulator.Fault.t ->
  unit ->
  Difftrace_simulator.Runtime.outcome * result
