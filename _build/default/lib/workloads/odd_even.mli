(** MPI odd/even transposition sort — the paper's walk-through example
    (Fig. 2, Tables II–IV, §II-G).

    Each rank holds a block of values; in phase [i] even-indexed pairs
    (even [i]) or odd-indexed pairs (odd [i]) exchange blocks and keep
    the lower/upper half. Even ranks Send;Recv, odd ranks Recv;Send —
    the pattern whose swap is the [swapBug] waiting trap. The first and
    last ranks sit out half the phases, which is why their loops run
    half as often (Table III). *)

(** [run ?np ?seed ?level ?block ?eager_limit ?max_steps ~fault ()]
    executes the sort with [np] ranks (default 4) over [block] values
    per rank (default 1 — paper setting, small enough for eager sends;
    raise it past [eager_limit] to make [swapBug] a real deadlock).

    Supported faults: [No_fault], [Swap_send_recv], [Deadlock_recv].
    Returns the outcome and the final per-rank blocks (row [r] = rank
    [r]'s values after sorting; meaningful only for clean runs). *)
val run :
  ?np:int ->
  ?seed:int ->
  ?level:Difftrace_parlot.Tracer.level ->
  ?block:int ->
  ?eager_limit:int ->
  ?max_steps:int ->
  ?jitter:float ->
  fault:Difftrace_simulator.Fault.t ->
  unit ->
  Difftrace_simulator.Runtime.outcome * int array array

(** [sorted_concat blocks] — the concatenation of all blocks, for
    checking the sort's output. *)
val sorted_concat : int array array -> int array

(** [find_ptr ~np ~phase ~rank] — the partner of [rank] in [phase], if
    any (the paper's [findPtr]). *)
val find_ptr : np:int -> phase:int -> rank:int -> int option
