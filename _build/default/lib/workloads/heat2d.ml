open Difftrace_simulator
open Runtime

type result = {
  iterations : int;
  final_residual : int;
  field : int array;
  row_max : int array;
}

let is_skip fault ~rank =
  match fault with
  | Fault.Skip_function { rank = r; func } -> r = rank && func = "ExchangeHalo2D"
  | Fault.No_fault | Fault.Swap_send_recv _ | Fault.Deadlock_recv _
  | Fault.Wrong_collective_size _ | Fault.Wrong_collective_op _
  | Fault.No_critical _ -> false

let run ?(px = 3) ?(py = 2) ?(workers = 3) ?(seed = 1) ?level ?(w = 8) ?(h = 6)
    ?(max_iters = 12) ?max_steps ~fault () =
  let np = px * py in
  let iterations = ref 0 in
  let final_residual = ref 0 in
  let out_field = ref [||] in
  let out_row_max = ref [||] in
  let outcome =
    Runtime.run ~np ~seed ?level ?max_steps (fun env ->
        Api.call env "main" (fun () ->
            Api.mpi_init env;
            let rank = Api.comm_rank env in
            let rx = rank mod px and ry = rank / px in
            (* row and column communicators: the real comm_split use *)
            let row_comm = Api.comm_split env ~color:ry ~key:rx in
            let col_comm = Api.comm_split env ~color:rx ~key:ry in
            (* local block, row-major: cell (col i, row j) at j*w + i *)
            let cell i j = (j * w) + i in
            let field = Array.make (w * h) 0 in
            (* hot spot at the global centre *)
            let gx = px * w / 2 and gy = py * h / 2 in
            if gx / w = rx && gy / h = ry then
              field.(cell (gx mod w) (gy mod h)) <- 1_000_000;
            let residual = Shm.cell ~protected_:true "residual2d" 0 in
            let north = if ry > 0 then Some (rank - px) else None in
            let south = if ry < py - 1 then Some (rank + px) else None in
            let west = if rx > 0 then Some (rank - 1) else None in
            let east = if rx < px - 1 then Some (rank + 1) else None in
            let col j = Array.init h (fun r -> field.(cell j r)) in
            let row j = Array.sub field (j * w) w in
            let exchange () =
              (* post all four receives, then send, then complete *)
              let post = Option.map (fun src -> Api.irecv env ~src ~tag:1 ()) in
              let rn, rs, rw, re =
                Api.call env "CommRecv" (fun () ->
                    (post north, post south, post west, post east))
              in
              Api.call env "CommSend" (fun () ->
                  Option.iter (fun d -> Api.send env ~dst:d ~tag:1 (row 0)) north;
                  Option.iter (fun d -> Api.send env ~dst:d ~tag:1 (row (h - 1))) south;
                  Option.iter (fun d -> Api.send env ~dst:d ~tag:1 (col 0)) west;
                  Option.iter (fun d -> Api.send env ~dst:d ~tag:1 (col (w - 1))) east);
              let zero n = Array.make n 0 in
              let wait n = function
                | Some r -> Api.wait env r
                | None -> zero n
              in
              (wait w rn, wait w rs, wait h rw, wait h re)
            in
            for _it = 1 to max_iters do
              let hn, hs, hw, he =
                if is_skip fault ~rank then
                  (Array.make w 0, Array.make w 0, Array.make h 0, Array.make h 0)
                else Api.call env "ExchangeHalo2D" (fun () -> exchange ())
              in
              Api.critical env (fun () -> Shm.write env residual 0);
              let old = Array.copy field in
              Api.call env "JacobiSweep2D" (fun () ->
                  Api.parallel env ~num_threads:workers (fun tenv ->
                      let t = Runtime.tid tenv in
                      let per = (h + workers - 1) / workers in
                      let jlo = t * per and jhi = min h ((t + 1) * per) in
                      let local = ref 0 in
                      Api.call tenv "JacobiKernel2D" (fun () ->
                          for j = jlo to jhi - 1 do
                            for i = 0 to w - 1 do
                              let g di dj =
                                let i' = i + di and j' = j + dj in
                                if i' < 0 then hw.(j)
                                else if i' >= w then he.(j)
                                else if j' < 0 then hn.(i)
                                else if j' >= h then hs.(i)
                                else old.(cell i' j')
                              in
                              let v =
                                ((4 * old.(cell i j)) + g (-1) 0 + g 1 0
                                + g 0 (-1) + g 0 1)
                                / 8
                              in
                              field.(cell i j) <- v;
                              local := !local + abs (v - old.(cell i j))
                            done
                          done);
                      let update () =
                        Shm.write tenv residual (Shm.read tenv residual + !local)
                      in
                      let skip_critical =
                        match fault with
                        | Fault.No_critical { rank = r; thread } ->
                          r = rank && thread = t
                        | Fault.No_fault | Fault.Swap_send_recv _
                        | Fault.Deadlock_recv _ | Fault.Wrong_collective_size _
                        | Fault.Wrong_collective_op _ | Fault.Skip_function _ ->
                          false
                      in
                      if skip_critical then update ()
                      else Api.critical tenv update));
              (* world residual *)
              let count =
                match fault with
                | Fault.Wrong_collective_size { rank = r } when r = rank -> Some 2
                | Fault.Wrong_collective_size _ | Fault.No_fault
                | Fault.Swap_send_recv _ | Fault.Deadlock_recv _
                | Fault.Wrong_collective_op _ | Fault.No_critical _
                | Fault.Skip_function _ -> None
              in
              let local_res = Api.critical env (fun () -> Shm.read env residual) in
              let g = Api.allreduce env ?count ~op:Op_sum [| local_res |] in
              if rank = 0 then begin
                incr iterations;
                final_residual := g.(0)
              end;
              (* per-row hottest cell: a row-communicator collective *)
              let local_max = Array.fold_left max 0 field in
              ignore (Api.allreduce ~comm:row_comm env ~op:Op_max [| local_max |])
            done;
            (* assemble: row gather to each row's first rank, then a
               column gather of the assembled strips at world rank 0 *)
            let row_root = ry * px in
            let gathered = Api.gather ~comm:row_comm env ~root:row_root field in
            let strip =
              if rank = row_root then begin
                (* interleave the rx-ordered blocks into strip rows *)
                let strip = Array.make (px * w * h) 0 in
                for b = 0 to px - 1 do
                  for j = 0 to h - 1 do
                    Array.blit gathered ((b * w * h) + (j * w)) strip
                      ((j * px * w) + (b * w))
                      w
                  done
                done;
                strip
              end
              else [||]
            in
            let local_max = Array.fold_left max 0 field in
            let rmax = Api.allreduce ~comm:row_comm env ~op:Op_max [| local_max |] in
            if rx = 0 then begin
              let full = Api.gather ~comm:col_comm env ~root:0 strip in
              let maxes = Api.gather ~comm:col_comm env ~root:0 rmax in
              if rank = 0 then begin
                out_field := full;
                out_row_max := maxes
              end
            end;
            Api.mpi_finalize env))
  in
  ( outcome,
    { iterations = !iterations;
      final_residual = !final_residual;
      field = !out_field;
      row_max = !out_row_max } )
