open Difftrace_simulator
open Runtime

let floats_to_payload = Difftrace_util.Floatbits.to_ints
let payload_to_floats = Difftrace_util.Floatbits.of_ints

(* -------------------------------------------------------------------- *)
(* Physics constants (Sedov-style setup, ideal-gas EOS)                  *)
(* -------------------------------------------------------------------- *)

let gamma = 1.4
let e_ambient = 1e-6
let e_deposit = 3.0
let rho0 = 1.0
let dx0 = 1.0
let courant = 0.45
let dt_max = 0.1
let q_quadratic = 2.0
let q_linear = 0.25

type hydro = {
  cycles_run : int;
  final_dt : float;
  total_internal_energy : float;
  total_kinetic_energy : float;
  max_pressure : float;
  shock_cell : int;
}

(* Halo exchange with the 1-D neighbours, LULESH-style: post the
   receives (CommRecv), send (CommSend), then complete everything — a
   deadlock-free protocol as long as both sides participate, which is
   exactly what the Skip_function fault violates. [payload] supplies
   the boundary data for each side; returns the neighbours' data. *)
let halo env ~tag ~payload =
  let rank = Runtime.pid env and n = Runtime.np env in
  let left = rank - 1 and right = rank + 1 in
  let rl, rr =
    Api.call env "CommRecv" (fun () ->
        ( (if left >= 0 then Some (Api.irecv env ~src:left ~tag ()) else None),
          if right < n then Some (Api.irecv env ~src:right ~tag ()) else None ))
  in
  Api.call env "CommSend" (fun () ->
      if left >= 0 then Api.send env ~dst:left ~tag (payload `Left);
      if right < n then Api.send env ~dst:right ~tag (payload `Right));
  let wait = function Some r -> Some (Api.wait env r) | None -> None in
  (wait rl, wait rr)

(* A parallel element loop: the team splits [count] elements; each
   member calls the leaf trace functions per element and then runs
   [work lo hi] on its slice. *)
let elem_loop env ~workers ~count ?(work = fun _ _ -> ()) name leaves =
  Api.call env name (fun () ->
      Api.parallel env ~num_threads:workers (fun tenv ->
          let t = Runtime.tid tenv in
          let per = (count + workers - 1) / workers in
          let lo = t * per and hi = min count ((t + 1) * per) in
          for _e = lo to hi - 1 do
            List.iter (fun leaf -> Api.call tenv leaf (fun () -> ())) leaves
          done;
          work lo hi))

let simulate ?(np = 8) ?(workers = 4) ?(seed = 1) ?level ?(edge = 4)
    ?(cycles = 2) ?(regions = 4) ?max_steps ~fault () =
  let num_elem = edge * edge * edge in
  let out_hydro = ref None in
  let outcome =
    Runtime.run ~np ~seed ?level ?max_steps (fun env ->
        Api.call env "main" (fun () ->
            Api.mpi_init env;
            let rank = Api.comm_rank env in
            let np = Api.comm_size env in
            let n = num_elem in
            (* rank owns elements [0..n-1] and nodes [0..n]; node n is a
               ghost copy of the right neighbour's node 0 *)
            let x =
              Array.init (n + 1) (fun i -> float_of_int ((rank * n) + i) *. dx0)
            in
            let xd = Array.make (n + 1) 0.0 in
            let vol = Array.make n dx0 in
            let vol_old = Array.make n dx0 in
            let mass = Array.make n (rho0 *. dx0) in
            let e =
              Array.init n (fun i ->
                  if rank = 0 && i = 0 then e_deposit else e_ambient)
            in
            let p = Array.make n 0.0 in
            let q = Array.make n 0.0 in
            let ss = Array.make n 0.0 in
            let force = Array.make (n + 1) 0.0 in
            let eos_elem i =
              let rho = mass.(i) /. vol.(i) in
              p.(i) <- Float.max 0.0 ((gamma -. 1.0) *. rho *. e.(i));
              ss.(i) <- sqrt (gamma *. (p.(i) +. 1e-12) /. rho)
            in
            Api.call env "InitMeshDecomp" (fun () -> Api.libc env "malloc");
            Api.call env "BuildMesh" (fun () ->
                Api.libc env "malloc";
                Api.libc env "memset";
                for i = 0 to n - 1 do
                  eos_elem i
                done);
            Api.barrier env;
            let skip_llf =
              match fault with
              | Fault.Skip_function { rank = r; func } ->
                r = rank && func = "LagrangeLeapFrog"
              | Fault.No_fault | Fault.Swap_send_recv _ | Fault.Deadlock_recv _
              | Fault.Wrong_collective_size _ | Fault.Wrong_collective_op _
              | Fault.No_critical _ -> false
            in
            let dt = ref 1e-2 in
            for _cycle = 1 to cycles do
              (* global stable time step: Courant minimum over all ranks
                 (reduced as a nanosecond-scaled integer, since Op_min
                 over raw float bit-halves is meaningless) *)
              Api.call env "TimeIncrement" (fun () ->
                  let local = ref dt_max in
                  for i = 0 to n - 1 do
                    let du = abs_float (xd.(i + 1) -. xd.(i)) in
                    let c = courant *. vol.(i) /. (ss.(i) +. du +. 1e-12) in
                    if c < !local then local := c
                  done;
                  let scaled = int_of_float (!local *. 1e9) in
                  let gmin = Api.allreduce env ~op:Op_min [| scaled |] in
                  dt := float_of_int gmin.(0) /. 1e9);
              if not skip_llf then
                Api.call env "LagrangeLeapFrog" (fun () ->
                    let dt = !dt in
                    Api.call env "LagrangeNodal" (fun () ->
                        Api.call env "CalcForceForNodes" (fun () ->
                            elem_loop env ~workers ~count:n
                              "InitStressTermsForElems" []
                              ~work:(fun lo hi ->
                                for i = lo to hi - 1 do
                                  eos_elem i
                                done);
                            elem_loop env ~workers ~count:n
                              "IntegrateStressForElems"
                              [ "CollectDomainNodesToElemNodes";
                                "CalcElemShapeFunctionDerivatives";
                                "SumElemFaceNormal";
                                "CalcElemNodeNormals";
                                "SumElemStressesToNodeForces" ];
                            Api.call env "CalcHourglassControlForElems"
                              (fun () ->
                                elem_loop env ~workers ~count:n
                                  "CalcElemVolumeDerivative" [ "VoluDer" ];
                                elem_loop env ~workers ~count:n
                                  "CalcFBHourglassForceForElems"
                                  [ "CalcElemFBHourglassForce" ]);
                            (* neighbour boundary stress (p+q) *)
                            let pq i = p.(i) +. q.(i) in
                            let lpq, rpq =
                              halo env ~tag:1 ~payload:(function
                                | `Left -> floats_to_payload [| pq 0 |]
                                | `Right -> floats_to_payload [| pq (n - 1) |])
                            in
                            let left_pq =
                              match lpq with
                              | Some m -> (payload_to_floats m).(0)
                              | None -> pq 0 (* reflective wall *)
                            in
                            let right_pq =
                              match rpq with
                              | Some m -> (payload_to_floats m).(0)
                              | None -> pq (n - 1)
                            in
                            (* staggered grid: F_i = (p+q)_left − (p+q)_right *)
                            for i = 0 to n do
                              let pl = if i = 0 then left_pq else pq (i - 1) in
                              let pr = if i = n then right_pq else pq i in
                              force.(i) <- pl -. pr
                            done);
                        elem_loop env ~workers ~count:n
                          "CalcAccelerationForNodes" []
                          ~work:(fun lo hi ->
                            (* a = F / nodal mass (half of each adjacent
                               element's mass) *)
                            for i = lo to min hi (n - 1) do
                              let ml = if i = 0 then mass.(0) else mass.(i - 1) in
                              let mr = mass.(min i (n - 1)) in
                              force.(i) <- force.(i) /. (0.5 *. (ml +. mr))
                            done);
                        Api.call env
                          "ApplyAccelerationBoundaryConditionsForNodes"
                          (fun () ->
                            if rank = 0 then force.(0) <- 0.0;
                            if rank = np - 1 then force.(n) <- 0.0);
                        elem_loop env ~workers ~count:n "CalcVelocityForNodes" []
                          ~work:(fun lo hi ->
                            for i = lo to min hi (n - 1) do
                              xd.(i) <- xd.(i) +. (force.(i) *. dt)
                            done);
                        elem_loop env ~workers ~count:n "CalcPositionForNodes" []
                          ~work:(fun lo hi ->
                            for i = lo to min hi (n - 1) do
                              x.(i) <- x.(i) +. (xd.(i) *. dt)
                            done);
                        Api.call env "CommSyncPosVel" (fun () ->
                            (* ghost node n := right neighbour's node 0 *)
                            let _, rgt =
                              halo env ~tag:2 ~payload:(function
                                | `Left -> floats_to_payload [| x.(0); xd.(0) |]
                                | `Right ->
                                  floats_to_payload [| x.(n - 1); xd.(n - 1) |])
                            in
                            match rgt with
                            | Some m ->
                              let fs = payload_to_floats m in
                              x.(n) <- fs.(0);
                              xd.(n) <- fs.(1)
                            | None -> xd.(n) <- 0.0 (* global right wall *)));
                    Api.call env "LagrangeElements" (fun () ->
                        Api.call env "CalcLagrangeElements" (fun () ->
                            elem_loop env ~workers ~count:n
                              "CalcKinematicsForElems"
                              [ "CalcElemVolume"; "AreaFace";
                                "CalcElemCharacteristicLength";
                                "CalcElemVelocityGradient" ]
                              ~work:(fun lo hi ->
                                for i = lo to hi - 1 do
                                  vol.(i) <-
                                    Float.max (x.(i + 1) -. x.(i)) (0.05 *. dx0)
                                done));
                        Api.call env "CalcQForElems" (fun () ->
                            elem_loop env ~workers ~count:n
                              "CalcMonotonicQGradientsForElems" [];
                            Api.call env "CommMonoQ" (fun () ->
                                ignore
                                  (halo env ~tag:3 ~payload:(function
                                    | `Left -> floats_to_payload [| q.(0) |]
                                    | `Right -> floats_to_payload [| q.(n - 1) |])));
                            elem_loop env ~workers ~count:n
                              "CalcMonotonicQRegionForElems" []
                              ~work:(fun lo hi ->
                                (* standard artificial viscosity on
                                   compressing elements *)
                                for i = lo to hi - 1 do
                                  let du = xd.(i + 1) -. xd.(i) in
                                  if du < 0.0 then begin
                                    let rho = mass.(i) /. vol.(i) in
                                    q.(i) <-
                                      rho
                                      *. ((q_quadratic *. du *. du)
                                         +. (q_linear *. ss.(i) *. abs_float du))
                                  end
                                  else q.(i) <- 0.0
                                done));
                        Api.call env "ApplyMaterialPropertiesForElems" (fun () ->
                            (* Per element the EOS evaluates a fixed
                               chain of 12 distinct steps (as
                               CalcEnergyForElems does in LULESH 2.0);
                               the 12-call unit is longer than K=10's
                               window but inside K=50's — the §V sweep.
                               The chain performs the real ideal-gas
                               update: compression work, clamping,
                               pressure and sound speed. *)
                            let eos_steps =
                              [ "CalcEnergyForElems"; "CalcPressureForElems";
                                "CalcVacuumResponse"; "CalcWorkForElems";
                                "CalcQWorkForElems"; "CalcPbvcForElems";
                                "CalcEnergyDeltaForElems";
                                "CalcSoundSpeedForElems";
                                "UpdateEnergyForElems"; "CheckEOSLowerBound";
                                "CheckEOSUpperBound"; "StoreEOSResults" ]
                            in
                            for reg = 0 to regions - 1 do
                              let reg_elems = n / regions in
                              Api.call env "EvalEOSForElems" (fun () ->
                                  for k = 0 to reg_elems - 1 do
                                    let i = (reg * reg_elems) + k in
                                    List.iter
                                      (fun step -> Api.call env step (fun () -> ()))
                                      eos_steps;
                                    (* dE = −(p+q)·dV / m, then EOS *)
                                    let dvol = vol.(i) -. vol_old.(i) in
                                    e.(i) <-
                                      Float.max e_ambient
                                        (e.(i)
                                        -. ((p.(i) +. q.(i)) *. dvol /. mass.(i)));
                                    eos_elem i
                                  done)
                            done);
                        elem_loop env ~workers ~count:n "UpdateVolumesForElems"
                          []
                          ~work:(fun lo hi ->
                            for i = lo to hi - 1 do
                              vol_old.(i) <- vol.(i)
                            done));
                    Api.call env "CalcTimeConstraintsForElems" (fun () ->
                        elem_loop env ~workers ~count:n
                          "CalcCourantConstraintForElems" [];
                        elem_loop env ~workers ~count:n
                          "CalcHydroConstraintForElems" []))
            done;
            (* global summary gathered at the root *)
            let internal = ref 0.0 in
            for i = 0 to n - 1 do
              internal := !internal +. (e.(i) *. mass.(i))
            done;
            let kinetic = ref 0.0 in
            for i = 0 to n - 1 do
              let nm = 0.5 *. (mass.(max 0 (i - 1)) +. mass.(i)) in
              kinetic := !kinetic +. (0.5 *. nm *. xd.(i) *. xd.(i))
            done;
            let pmax = ref 0.0 and pcell = ref 0 in
            for i = 0 to n - 1 do
              if p.(i) > !pmax then begin
                pmax := p.(i);
                pcell := (rank * n) + i
              end
            done;
            let summary =
              Api.gather env ~root:0
                (floats_to_payload
                   [| !internal; !kinetic; !pmax; float_of_int !pcell |])
            in
            if rank = 0 then begin
              let fs = payload_to_floats summary in
              let nranks = Array.length fs / 4 in
              let ti = ref 0.0 and tk = ref 0.0 in
              let pm = ref 0.0 and pc = ref 0 in
              for r = 0 to nranks - 1 do
                ti := !ti +. fs.(4 * r);
                tk := !tk +. fs.((4 * r) + 1);
                if fs.((4 * r) + 2) > !pm then begin
                  pm := fs.((4 * r) + 2);
                  pc := int_of_float fs.((4 * r) + 3)
                end
              done;
              out_hydro :=
                Some
                  { cycles_run = cycles;
                    final_dt = !dt;
                    total_internal_energy = !ti;
                    total_kinetic_energy = !tk;
                    max_pressure = !pm;
                    shock_cell = !pc }
            end;
            if rank = 0 then
              Api.call env "VerifyAndWriteFinalOutput" (fun () ->
                  Api.libc env "strlen");
            Api.mpi_finalize env))
  in
  let hydro =
    match !out_hydro with
    | Some h -> h
    | None ->
      { cycles_run = 0;
        final_dt = 0.0;
        total_internal_energy = 0.0;
        total_kinetic_energy = 0.0;
        max_pressure = 0.0;
        shock_cell = 0 }
  in
  (outcome, hydro)

let run ?np ?workers ?seed ?level ?edge ?cycles ?regions ?max_steps ~fault () =
  fst
    (simulate ?np ?workers ?seed ?level ?edge ?cycles ?regions ?max_steps ~fault
       ())
