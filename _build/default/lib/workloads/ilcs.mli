(** ILCS — Iterative Local Champion Search framework (paper §IV,
    Listing 1) running TSP 2-opt as its user code.

    Per rank: a master thread (OpenMP rank 0) plus [workers] worker
    threads. Workers repeatedly evaluate seeds with [CPU_Exec] (TSP
    2-opt) and update their local champion under an OpenMP critical
    section; the master repeatedly Allreduces the local champion value
    and champion owner, has the owner fill the broadcast buffer under
    the critical section, Bcasts it, and terminates the search once the
    global champion has not improved for [threshold] rounds — a
    condition computed from global values only, so all masters agree on
    the round count.

    Supported faults (the paper's three ILCS experiments):
    - [No_critical {rank; thread}] — that worker updates its champion
      without the critical section (§IV-B);
    - [Wrong_collective_size {rank}] — that master passes a wrong count
      to the first Allreduce: real deadlock (§IV-C);
    - [Wrong_collective_op {rank}] — that master passes MAX for MIN;
      since the simulator applies rank 0's operator, injecting into
      rank 0 silently flips the search's semantics (§IV-D). *)

(** Result summary of a clean run. *)
type result = {
  global_champion : int;  (** best tour length found *)
  rounds : int array;     (** per-rank master round count *)
}

val run :
  ?np:int ->
  ?workers:int ->
  ?seed:int ->
  ?level:Difftrace_parlot.Tracer.level ->
  ?cities:int ->
  ?seeds_per_worker:int ->
  ?threshold:int ->
  ?max_steps:int ->
  ?jitter:float ->
  fault:Difftrace_simulator.Fault.t ->
  unit ->
  Difftrace_simulator.Runtime.outcome * result
