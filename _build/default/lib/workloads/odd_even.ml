open Difftrace_util
open Difftrace_simulator

let find_ptr ~np ~phase ~rank =
  let partner =
    if rank mod 2 = 0 then if phase mod 2 = 0 then rank + 1 else rank - 1
    else if phase mod 2 = 0 then rank - 1
    else rank + 1
  in
  if partner < 0 || partner >= np then None else Some partner

(* Merge my block with the partner's; low half goes to the smaller
   rank, high half to the larger. *)
let keep_half mine theirs ~low =
  let all = Array.append mine theirs in
  Array.sort Int.compare all;
  let n = Array.length mine in
  if low then Array.sub all 0 n else Array.sub all n n

let run ?(np = 4) ?(seed = 1) ?level ?(block = 1) ?(eager_limit = 4)
    ?max_steps ?jitter ~fault () =
  let results = Array.make np [||] in
  let outcome =
    Runtime.run ~np ~seed ~eager_limit ?max_steps ?level ?jitter (fun env ->
        Api.call env "main" (fun () ->
            Api.mpi_init env;
            let rank = Api.comm_rank env in
            let np = Api.comm_size env in
            let rng = Prng.create (seed + (rank * 7919)) in
            let data = ref (Array.init block (fun _ -> Prng.int rng 100000)) in
            Api.call env "oddEvenSort" (fun () ->
                for i = 0 to np - 1 do
                  let ptr =
                    Api.call env "findPtr" (fun () -> find_ptr ~np ~phase:i ~rank)
                  in
                  match ptr with
                  | None -> ()
                  | Some p ->
                    let exchange_swapped =
                      match fault with
                      | Fault.Swap_send_recv { rank = r; after_iter } ->
                        rank = r && i >= after_iter
                      | Fault.No_fault | Fault.Deadlock_recv _
                      | Fault.Wrong_collective_size _ | Fault.Wrong_collective_op _
                      | Fault.No_critical _ | Fault.Skip_function _ -> false
                    in
                    let deadlock_here =
                      match fault with
                      | Fault.Deadlock_recv { rank = r; after_iter } ->
                        rank = r && i >= after_iter
                      | Fault.No_fault | Fault.Swap_send_recv _
                      | Fault.Wrong_collective_size _ | Fault.Wrong_collective_op _
                      | Fault.No_critical _ | Fault.Skip_function _ -> false
                    in
                    if deadlock_here then
                      (* a receive nobody will ever match: actual deadlock *)
                      ignore (Api.recv env ~src:p ~tag:999 ())
                    else begin
                      let send_first =
                        if exchange_swapped then rank mod 2 <> 0 else rank mod 2 = 0
                      in
                      let theirs =
                        if send_first then begin
                          Api.send env ~dst:p !data;
                          Api.recv env ~src:p ()
                        end
                        else begin
                          let theirs = Api.recv env ~src:p () in
                          Api.send env ~dst:p !data;
                          theirs
                        end
                      in
                      data := keep_half !data theirs ~low:(rank < p)
                    end
                done);
            results.(rank) <- !data;
            Api.mpi_finalize env))
  in
  (outcome, results)

let sorted_concat blocks =
  let all = Array.concat (Array.to_list blocks) in
  all
