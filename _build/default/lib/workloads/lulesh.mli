(** LULESH 2.0 mini-app (paper §V) — 1-D Lagrangian shock
    hydrodynamics under MPI + OpenMP.

    Beyond reproducing the whole-program {e trace shape} of LULESH2
    (the Lagrange-leapfrog phase hierarchy with its real function
    names, per-element OpenMP loops, per-region EOS chains, halo
    exchanges, and the per-cycle [TimeIncrement] Allreduce), the
    workload now solves an actual Sedov-style problem: an energy
    deposit in the first element drives a shock through a 1-D
    Lagrangian mesh block-decomposed across ranks. Element pressure,
    artificial viscosity, specific internal energy and sound speed are
    updated with an ideal-gas EOS; nodal forces, accelerations,
    velocities and positions follow the staggered-grid leapfrog; the
    stable time step is the global Courant minimum (Allreduce over
    bit-encoded floats). Everything is deterministic.

    The §V fault — [Skip_function {rank; func = "LagrangeLeapFrog"}] —
    makes that rank skip the whole phase, so its neighbours block in
    halo receives and every process stops making progress (Table IX).

    [edge] controls elements per rank ([edge]³); [cycles] the number of
    time steps. *)

(** Physics summary, valid for clean runs (zeros after a hang). *)
type hydro = {
  cycles_run : int;
  final_dt : float;            (** last stable time step *)
  total_internal_energy : float;  (** global, at the end *)
  total_kinetic_energy : float;   (** global, at the end *)
  max_pressure : float;        (** global peak element pressure *)
  shock_cell : int;            (** global index of the peak-pressure element *)
}

(** [run …] — traces only (the common case for the analyses). *)
val run :
  ?np:int ->
  ?workers:int ->
  ?seed:int ->
  ?level:Difftrace_parlot.Tracer.level ->
  ?edge:int ->
  ?cycles:int ->
  ?regions:int ->
  ?max_steps:int ->
  fault:Difftrace_simulator.Fault.t ->
  unit ->
  Difftrace_simulator.Runtime.outcome

(** [simulate …] — traces plus the physics summary. *)
val simulate :
  ?np:int ->
  ?workers:int ->
  ?seed:int ->
  ?level:Difftrace_parlot.Tracer.level ->
  ?edge:int ->
  ?cycles:int ->
  ?regions:int ->
  ?max_steps:int ->
  fault:Difftrace_simulator.Fault.t ->
  unit ->
  Difftrace_simulator.Runtime.outcome * hydro
