lib/nlr/nlr.mli: Difftrace_trace
