lib/nlr/nlr.ml: Array Difftrace_trace Difftrace_util Hashtbl Printf String Vec
