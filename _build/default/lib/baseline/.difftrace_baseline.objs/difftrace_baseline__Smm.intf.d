lib/baseline/smm.mli: Difftrace_trace
