lib/baseline/smm.ml: Array Difftrace_trace Float Hashtbl List Option Symtab Trace Trace_set
