(** AutomaDeD-style Semi-Markov Models — the related-work baseline
    (paper §VI, refs [28][29]).

    AutomaDeD "captures the application's control flow via Semi Markov
    Models and detects outlier executions": per task, a matrix of
    transition probabilities between code blocks. Here states are
    function {e names} of the call stream (names, not per-capture IDs,
    so models from different runs are comparable) and the dwell-time
    component is logical — every call weighs 1 — which is the part of
    AutomaDeD that survives without wall-clock timestamps. The baseline
    serves two purposes: a point of comparison for DiffTrace's
    JSM/B-score ranking in the benches, and a second opinion for
    single-run outlier detection. *)

type t

(** [of_calls names] — transition model of one trace's call sequence. *)
val of_calls : string array -> t

(** [of_trace symtab trace] — model over the trace's call events. *)
val of_trace : Difftrace_trace.Symtab.t -> Difftrace_trace.Trace.t -> t

(** [n_states t] — number of distinct states (functions) observed as
    transition sources. *)
val n_states : t -> int

(** [transition_probability t ~src ~dst] — P(next = dst | current =
    src); 0 when [src] was never seen. *)
val transition_probability : t -> src:string -> dst:string -> float

(** [distance a b] — dissimilarity in [0, 1]: mean over the union of
    source states of half the L1 distance between the two transition
    distributions (a state missing from one model counts as fully
    different). [distance a a = 0]; symmetric. *)
val distance : t -> t -> float

(** [outliers ts] — AutomaDeD-style single-run outlier scores: each
    trace's mean model distance to every other trace, sorted
    descending. Labels follow {!Difftrace_trace.Trace.label} (short
    form when the run is single-threaded). *)
val outliers : Difftrace_trace.Trace_set.t -> (string * float) array

(** [rank_changes ~normal ~faulty] — relative-debugging with SMMs: for
    each trace label present in both runs, the model distance between
    its normal and faulty versions, sorted descending — the baseline
    counterpart of DiffTrace's JSM_D row change. *)
val rank_changes :
  normal:Difftrace_trace.Trace_set.t ->
  faulty:Difftrace_trace.Trace_set.t ->
  (string * float) array
