open Difftrace_trace

(* per source state: total outgoing count and per-destination counts *)
type row = { mutable total : int; dests : (string, int) Hashtbl.t }
type t = { rows : (string, row) Hashtbl.t }

let of_calls names =
  let rows = Hashtbl.create 64 in
  for i = 0 to Array.length names - 2 do
    let src = names.(i) and dst = names.(i + 1) in
    let row =
      match Hashtbl.find_opt rows src with
      | Some r -> r
      | None ->
        let r = { total = 0; dests = Hashtbl.create 8 } in
        Hashtbl.add rows src r;
        r
    in
    row.total <- row.total + 1;
    Hashtbl.replace row.dests dst
      (1 + Option.value ~default:0 (Hashtbl.find_opt row.dests dst))
  done;
  { rows }

let of_trace symtab tr =
  of_calls (Array.map (Symtab.name symtab) (Trace.call_ids tr))

let n_states t = Hashtbl.length t.rows

let transition_probability t ~src ~dst =
  match Hashtbl.find_opt t.rows src with
  | None -> 0.0
  | Some row ->
    if row.total = 0 then 0.0
    else
      float_of_int (Option.value ~default:0 (Hashtbl.find_opt row.dests dst))
      /. float_of_int row.total

(* half-L1 (total variation) distance between two transition rows *)
let row_distance a b =
  match (a, b) with
  | None, None -> 0.0
  | Some _, None | None, Some _ -> 1.0
  | Some ra, Some rb ->
    let dests = Hashtbl.create 16 in
    Hashtbl.iter (fun d _ -> Hashtbl.replace dests d ()) ra.dests;
    Hashtbl.iter (fun d _ -> Hashtbl.replace dests d ()) rb.dests;
    let p row d =
      if row.total = 0 then 0.0
      else
        float_of_int (Option.value ~default:0 (Hashtbl.find_opt row.dests d))
        /. float_of_int row.total
    in
    let acc = ref 0.0 in
    Hashtbl.iter (fun d () -> acc := !acc +. Float.abs (p ra d -. p rb d)) dests;
    !acc /. 2.0

let distance a b =
  let srcs = Hashtbl.create 32 in
  Hashtbl.iter (fun s _ -> Hashtbl.replace srcs s ()) a.rows;
  Hashtbl.iter (fun s _ -> Hashtbl.replace srcs s ()) b.rows;
  let n = Hashtbl.length srcs in
  if n = 0 then 0.0
  else begin
    let acc = ref 0.0 in
    Hashtbl.iter
      (fun s () ->
        acc := !acc +. row_distance (Hashtbl.find_opt a.rows s) (Hashtbl.find_opt b.rows s))
      srcs;
    !acc /. float_of_int n
  end

let models_of ts =
  let symtab = Trace_set.symtab ts in
  let traces = Trace_set.traces ts in
  let short = Array.for_all (fun tr -> tr.Trace.tid = 0) traces in
  Array.map
    (fun tr -> (Trace.label ~short tr, of_trace symtab tr))
    traces

let outliers ts =
  let models = models_of ts in
  let n = Array.length models in
  let scores =
    Array.mapi
      (fun i (label, m) ->
        let acc = ref 0.0 in
        Array.iteri (fun j (_, m') -> if j <> i then acc := !acc +. distance m m') models;
        (label, if n <= 1 then 0.0 else !acc /. float_of_int (n - 1)))
      models
  in
  Array.sort (fun (_, a) (_, b) -> Float.compare b a) scores;
  scores

let rank_changes ~normal ~faulty =
  let mn = models_of normal and mf = models_of faulty in
  let changes =
    Array.to_list mn
    |> List.filter_map (fun (label, m) ->
           Array.find_opt (fun (l, _) -> l = label) mf
           |> Option.map (fun (_, m') -> (label, distance m m')))
  in
  let arr = Array.of_list changes in
  Array.sort (fun (_, a) (_, b) -> Float.compare b a) arr;
  arr
