(** Attribute mining from NLR-summarized traces (paper Table V).

    An attribute is either a single NLR entry or a consecutive pair of
    entries ("this reflects calling context"), optionally tagged with
    its observed frequency — raw, log10-bucketed, or absent. The six
    combinations are the knobs the ranking tables sweep. *)

type granularity =
  | Single  (** each entry of the trace NLR *)
  | Double  (** each pair of consecutive entries *)

type freq_mode =
  | Actual  (** attribute carries the observed frequency *)
  | Log10   (** attribute carries floor(log10 frequency) *)
  | No_freq (** presence/absence only *)

type spec = { granularity : granularity; freq_mode : freq_mode }

(** [name s] — the paper's row labels: ["sing.actual"], ["doub.noFreq"],
    ["sing.log10"], … *)
val name : spec -> string

(** [of_name s] parses [name]'s output.
    Raises [Invalid_argument] on unknown names. *)
val of_name : string -> spec

(** [all] — the six specs, in the paper's table order. *)
val all : spec list

(** [of_nlr spec symtab nlr] is the attribute set mined from one
    summarized trace. Loop elements contribute their token ("L0") with
    multiplicity equal to their iteration count. *)
val of_nlr :
  spec -> Difftrace_trace.Symtab.t -> Difftrace_nlr.Nlr.t -> string list
