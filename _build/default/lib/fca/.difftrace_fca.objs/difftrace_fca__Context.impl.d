lib/fca/context.ml: Array Bitset Difftrace_util Hashtbl List Texttable Vec
