lib/fca/lattice.mli: Context Difftrace_util
