lib/fca/attributes.mli: Difftrace_nlr Difftrace_trace
