lib/fca/lattice.ml: Array Bitset Buffer Context Difftrace_util Hashtbl Int List Printf String Vec
