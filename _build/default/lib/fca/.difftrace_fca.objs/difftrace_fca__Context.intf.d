lib/fca/context.mli: Difftrace_util
