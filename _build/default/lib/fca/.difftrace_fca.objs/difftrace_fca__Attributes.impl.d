lib/fca/attributes.ml: Array Difftrace_nlr Float Hashtbl List Nlr Option Printf String
