(** Formal contexts K = (G, M, I) — paper §II-E, Table IV.

    Objects are traces, attributes are mined strings; the incidence
    relation is stored as one attribute bitset per object, which makes
    the Galois derivations ([common_attrs]/[common_objects]) cheap word
    operations. *)

type t

(** [of_attr_sets rows] builds a context from
    [(object_label, attributes)] pairs. The attribute universe is the
    union, in first-seen order. *)
val of_attr_sets : (string * string list) list -> t

val n_objects : t -> int
val n_attrs : t -> int

(** [object_label t i] / [attr_name t j]. *)
val object_label : t -> int -> string

val attr_name : t -> int -> string

(** [has t i j] — does object [i] carry attribute [j]? *)
val has : t -> int -> int -> bool

(** [object_attrs t i] — the intent of the single object [i] (shared,
    do not mutate). *)
val object_attrs : t -> int -> Difftrace_util.Bitset.t

(** [common_attrs t objs] — attributes common to every object in
    [objs]; the full attribute set when [objs] is empty. *)
val common_attrs : t -> Difftrace_util.Bitset.t -> Difftrace_util.Bitset.t

(** [common_objects t attrs] — objects carrying every attribute in
    [attrs]; all objects when [attrs] is empty. *)
val common_objects : t -> Difftrace_util.Bitset.t -> Difftrace_util.Bitset.t

(** [closure t attrs] = [common_attrs (common_objects attrs)]. *)
val closure : t -> Difftrace_util.Bitset.t -> Difftrace_util.Bitset.t

(** [jaccard t i j] — Jaccard similarity of the two objects' attribute
    sets (1.0 when both are empty). *)
val jaccard : t -> int -> int -> float

(** [to_table t] — the cross table (Table IV style). *)
val to_table : t -> string
