open Difftrace_nlr

type granularity = Single | Double
type freq_mode = Actual | Log10 | No_freq
type spec = { granularity : granularity; freq_mode : freq_mode }

let name s =
  let g = match s.granularity with Single -> "sing" | Double -> "doub" in
  let f =
    match s.freq_mode with Actual -> "actual" | Log10 -> "log10" | No_freq -> "noFreq"
  in
  g ^ "." ^ f

let of_name str =
  match String.split_on_char '.' str with
  | [ g; f ] ->
    let granularity =
      match g with
      | "sing" -> Single
      | "doub" -> Double
      | _ -> invalid_arg ("Attributes.of_name: " ^ str)
    in
    let freq_mode =
      match f with
      | "actual" -> Actual
      | "log10" -> Log10
      | "noFreq" -> No_freq
      | _ -> invalid_arg ("Attributes.of_name: " ^ str)
    in
    { granularity; freq_mode }
  | _ -> invalid_arg ("Attributes.of_name: " ^ str)

let all =
  [ { granularity = Single; freq_mode = Actual };
    { granularity = Single; freq_mode = Log10 };
    { granularity = Single; freq_mode = No_freq };
    { granularity = Double; freq_mode = Actual };
    { granularity = Double; freq_mode = Log10 };
    { granularity = Double; freq_mode = No_freq } ]

let log10_bucket n = int_of_float (Float.log10 (float_of_int (max 1 n)))

let of_nlr spec symtab (nlr : Nlr.t) =
  let freqs : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let bump key n =
    Hashtbl.replace freqs key
      (n + Option.value ~default:0 (Hashtbl.find_opt freqs key))
  in
  let elems = nlr.Nlr.elems in
  (match spec.granularity with
  | Single ->
    Array.iter
      (fun e -> bump (Nlr.token symtab e) (Nlr.multiplicity e))
      elems
  | Double ->
    for i = 0 to Array.length elems - 2 do
      let a = elems.(i) and b = elems.(i + 1) in
      let key = Nlr.token symtab a ^ "->" ^ Nlr.token symtab b in
      bump key (min (Nlr.multiplicity a) (Nlr.multiplicity b))
    done);
  Hashtbl.fold
    (fun key freq acc ->
      let attr =
        match spec.freq_mode with
        | No_freq -> key
        | Actual -> Printf.sprintf "%s:%d" key freq
        | Log10 -> Printf.sprintf "%s:e%d" key (log10_bucket freq)
      in
      attr :: acc)
    freqs []
  |> List.sort String.compare
