(** Concept lattices and their construction (paper §III-B, Fig. 3).

    Two constructions are provided:
    - {!of_context_incremental} — Godin's incremental algorithm, the
      paper's choice: objects are injected one at a time into an
      initially empty lattice, the mode that scales to long-running
      executions producing traces one by one;
    - {!of_context_batch} — Ganter's NextClosure, the batch baseline
      the paper dismisses for long traces; kept as an oracle for
      property tests and for the ablation bench.

    Both return the same set of formal concepts (tested). *)

type concept = {
  extent : Difftrace_util.Bitset.t;  (** objects *)
  intent : Difftrace_util.Bitset.t;  (** attributes *)
}

type t

(** [concepts t] in canonical order: extent cardinality descending,
    ties by extent bit order — top first, bottom last. *)
val concepts : t -> concept array

val size : t -> int

(** [of_context_batch ctx] — Ganter's NextClosure over [ctx]. *)
val of_context_batch : Context.t -> t

(** [of_context_incremental ctx] — Godin-style incremental insertion of
    [ctx]'s objects in index order. *)
val of_context_incremental : Context.t -> t

(** [equal a b] — same concept sets. *)
val equal : t -> t -> bool

(** [top t] — the concept with all objects; [bottom t] — the concept
    with all (shared) attributes. *)
val top : t -> concept

val bottom : t -> concept

(** [object_concept t i] — the most specific concept whose extent
    contains object [i] (its "object concept"). *)
val object_concept : t -> int -> concept

(** [covers t] — covering edges [(child, parent)] of the lattice order
    (extents: child ⊂ parent, nothing strictly between), as indices
    into [concepts t]. *)
val covers : t -> (int * int) list

(** [to_string ctx t] — a Fig. 3-style textual rendering: one line per
    concept, top first, with full extents and reduced attribute
    labeling (each attribute shown at its most general concept). *)
val to_string : Context.t -> t -> string

(** [to_dot ?title ctx t] — Graphviz rendering of the lattice (Fig. 3's
    visual form): one box per concept with reduced attribute labeling
    and full extents, covering edges bottom-up. *)
val to_dot : ?title:string -> Context.t -> t -> string

(** [jaccard t i j] — Jaccard similarity of two objects computed from
    the lattice (paper §II-E: "the complete pairwise JSM can easily be
    computed from concept lattices"): the intents of the two object
    concepts are intersected/unioned. Agrees exactly with
    {!Context.jaccard} (property-tested). *)
val jaccard : t -> int -> int -> float
