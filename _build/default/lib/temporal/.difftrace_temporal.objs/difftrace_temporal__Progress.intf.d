lib/temporal/progress.mli: Difftrace_simulator
