lib/temporal/otf2.ml: Array Buffer Difftrace_simulator Difftrace_trace Difftrace_util Event Hashtbl List Printf Queue Scanf String Symtab Trace Trace_set
