lib/temporal/otf2.mli: Difftrace_simulator Difftrace_trace
