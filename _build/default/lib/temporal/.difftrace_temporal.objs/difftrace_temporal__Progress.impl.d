lib/temporal/progress.ml: Array Difftrace_simulator Difftrace_util Int List Option Printf
