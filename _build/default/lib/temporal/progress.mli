(** Progress measures over logically-timestamped traces.

    The paper notes (§VI) that diffNLR "does not (yet) incorporate
    progress measures" and points at PRODOMETER's {e least progressed
    tasks}. With the simulator's Lamport/vector stamps this becomes
    direct: a hung thread's last synchronization stamp tells how far it
    got relative to everyone else, without a reference run. *)

type entry = {
  pid : int;
  tid : int;
  last_op : string option;  (** last completed synchronization, if any *)
  last_lamport : int;       (** 0 when the thread never synchronized *)
  sync_count : int;
}

(** [of_outcome outcome] — one entry per thread. *)
val of_outcome : Difftrace_simulator.Runtime.outcome -> entry list

(** [least_progressed outcome] — entries sorted by ascending Lamport
    time of their last synchronization: the first entries are the
    threads whose progress stopped earliest (the PRODOMETER-style
    suspects for a hang). *)
val least_progressed : Difftrace_simulator.Runtime.outcome -> entry list

(** [hb outcome ~a ~b] — causal order between the last synchronization
    points of two threads, [None] if either never synchronized. *)
val hb :
  Difftrace_simulator.Runtime.outcome ->
  a:int * int ->
  b:int * int ->
  Difftrace_simulator.Vclock.order option

(** [render entries] — a small report table. *)
val render : entry list -> string
