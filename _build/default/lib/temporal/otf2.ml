open Difftrace_trace
module R = Difftrace_simulator.Runtime
module Vclock = Difftrace_simulator.Vclock

type sync = { op : string; lamport : int; vector : int list }
type event = Enter of string | Leave of string | Sync of sync

type location = { pid : int; tid : int; truncated : bool; events : event list }
type t = { locations : location list }

(* Attach each recorded sync point after the ENTER of the call it
   stamps: the fiber's sync records are in program order, so a queue
   matched by operation name suffices. MPI_Waitall is the one composite
   case — it performs several waits inside a single traced call — and
   is handled by draining consecutive MPI_Wait records. *)
let events_of_trace symtab (tr : Trace.t) syncs =
  let q = Queue.create () in
  Array.iter (fun sp -> Queue.push sp q) syncs;
  let out = ref [] in
  let emit e = out := e :: !out in
  let sync_of (sp : R.sync_point) =
    Sync
      { op = sp.R.sp_op;
        lamport = sp.R.sp_stamp.Vclock.lamport;
        vector = Vclock.to_list sp.R.sp_stamp.Vclock.vec }
  in
  Array.iter
    (fun ev ->
      match ev with
      | Event.Return id -> emit (Leave (Symtab.name symtab id))
      | Event.Call id ->
        let name = Symtab.name symtab id in
        emit (Enter name);
        let matches sp_op =
          sp_op = name || (name = "MPI_Waitall" && sp_op = "MPI_Wait")
        in
        let rec drain () =
          match Queue.peek_opt q with
          | Some sp when matches sp.R.sp_op ->
            ignore (Queue.pop q);
            emit (sync_of sp);
            if name = "MPI_Waitall" then drain ()
          | Some _ | None -> ()
        in
        drain ())
    tr.Trace.events;
  (* any unmatched sync records are appended, preserving order *)
  Queue.iter (fun sp -> emit (sync_of sp)) q;
  List.rev !out

let of_outcome (outcome : R.outcome) =
  let ts = outcome.R.traces in
  let symtab = Trace_set.symtab ts in
  let locations =
    Array.to_list (Trace_set.traces ts)
    |> List.map (fun (tr : Trace.t) ->
           let syncs =
             match List.assoc_opt (tr.Trace.pid, tr.Trace.tid) outcome.R.sync_log with
             | Some s -> s
             | None -> [||]
           in
           { pid = tr.Trace.pid;
             tid = tr.Trace.tid;
             truncated = tr.Trace.truncated;
             events = events_of_trace symtab tr syncs })
  in
  { locations }

(* --- rendering ------------------------------------------------------ *)

let render t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "OTF2-TEXT 1\n";
  (* string definitions *)
  let strings = Hashtbl.create 128 in
  let order = Difftrace_util.Vec.create () in
  let intern s =
    match Hashtbl.find_opt strings s with
    | Some i -> i
    | None ->
      let i = Hashtbl.length strings in
      Hashtbl.add strings s i;
      Difftrace_util.Vec.push order s;
      i
  in
  List.iter
    (fun loc ->
      List.iter
        (function
          | Enter n | Leave n -> ignore (intern n)
          | Sync s -> ignore (intern s.op))
        loc.events)
    t.locations;
  Difftrace_util.Vec.iteri
    (fun i s -> Buffer.add_string buf (Printf.sprintf "DEF STRING %d %S\n" i s))
    order;
  List.iter
    (fun loc ->
      Buffer.add_string buf
        (Printf.sprintf "DEF LOCATION %d %d %s\n" loc.pid loc.tid
           (if loc.truncated then "TRUNCATED" else "COMPLETE")))
    t.locations;
  (* events per location *)
  List.iter
    (fun loc ->
      Buffer.add_string buf (Printf.sprintf "BEGIN %d %d\n" loc.pid loc.tid);
      List.iter
        (fun e ->
          Buffer.add_string buf
            (match e with
            | Enter n -> Printf.sprintf "E %d\n" (intern n)
            | Leave n -> Printf.sprintf "L %d\n" (intern n)
            | Sync s ->
              Printf.sprintf "S %d %d %s\n" (intern s.op) s.lamport
                (String.concat "," (List.map string_of_int s.vector))))
        loc.events;
      Buffer.add_string buf (Printf.sprintf "END %d %d\n" loc.pid loc.tid))
    t.locations;
  Buffer.contents buf

(* --- parsing --------------------------------------------------------- *)

let parse text =
  let fail line = invalid_arg ("Otf2.parse: bad line: " ^ line) in
  let lines = String.split_on_char '\n' text in
  let strings = Hashtbl.create 128 in
  let locations = ref [] in
  let current = ref None in
  let header_seen = ref false in
  let name id =
    match Hashtbl.find_opt strings id with
    | Some s -> s
    | None -> invalid_arg "Otf2.parse: undefined string id"
  in
  List.iter
    (fun line ->
      if line <> "" then
        match String.split_on_char ' ' line with
        | [ "OTF2-TEXT"; "1" ] -> header_seen := true
        | "DEF" :: "STRING" :: id :: rest ->
          let raw = String.concat " " rest in
          let s = Scanf.sscanf raw "%S" (fun s -> s) in
          Hashtbl.add strings (int_of_string id) s
        | [ "DEF"; "LOCATION"; pid; tid; status ] ->
          locations :=
            { pid = int_of_string pid;
              tid = int_of_string tid;
              truncated = status = "TRUNCATED";
              events = [] }
            :: !locations
        | [ "BEGIN"; pid; tid ] ->
          current := Some (int_of_string pid, int_of_string tid, ref [])
        | [ "END"; pid; tid ] -> (
          match !current with
          | Some (p, t, evs) when p = int_of_string pid && t = int_of_string tid ->
            let events = List.rev !evs in
            locations :=
              List.map
                (fun loc ->
                  if loc.pid = p && loc.tid = t then { loc with events } else loc)
                !locations;
            current := None
          | Some _ | None -> fail line)
        | [ "E"; id ] -> (
          match !current with
          | Some (_, _, evs) -> evs := Enter (name (int_of_string id)) :: !evs
          | None -> fail line)
        | [ "L"; id ] -> (
          match !current with
          | Some (_, _, evs) -> evs := Leave (name (int_of_string id)) :: !evs
          | None -> fail line)
        | [ "S"; id; lamport; vec ] -> (
          match !current with
          | Some (_, _, evs) ->
            evs :=
              Sync
                { op = name (int_of_string id);
                  lamport = int_of_string lamport;
                  vector =
                    List.map int_of_string (String.split_on_char ',' vec) }
              :: !evs
          | None -> fail line)
        | _ -> fail line)
    lines;
  if not !header_seen then invalid_arg "Otf2.parse: missing header";
  { locations = List.rev !locations }

let equal a b = a = b

let sync_points t =
  List.concat_map
    (fun loc ->
      List.filter_map
        (function Sync s -> Some ((loc.pid, loc.tid), s) | Enter _ | Leave _ -> None)
        loc.events)
    t.locations

let to_trace_set t =
  let symtab = Symtab.create () in
  let traces =
    List.map
      (fun loc ->
        let events =
          List.filter_map
            (function
              | Enter n -> Some (Event.Call (Symtab.intern symtab n))
              | Leave n -> Some (Event.Return (Symtab.intern symtab n))
              | Sync _ -> None)
            loc.events
        in
        Trace.make ~pid:loc.pid ~tid:loc.tid ~truncated:loc.truncated
          (Array.of_list events))
      t.locations
  in
  Trace_set.create symtab traces
