module R = Difftrace_simulator.Runtime
module Vclock = Difftrace_simulator.Vclock

type entry = {
  pid : int;
  tid : int;
  last_op : string option;
  last_lamport : int;
  sync_count : int;
}

let of_outcome (outcome : R.outcome) =
  List.map
    (fun ((pid, tid), syncs) ->
      let n = Array.length syncs in
      if n = 0 then { pid; tid; last_op = None; last_lamport = 0; sync_count = 0 }
      else
        let last = syncs.(n - 1) in
        { pid;
          tid;
          last_op = Some last.R.sp_op;
          last_lamport = last.R.sp_stamp.Vclock.lamport;
          sync_count = n })
    outcome.R.sync_log

let least_progressed outcome =
  List.stable_sort
    (fun a b -> Int.compare a.last_lamport b.last_lamport)
    (of_outcome outcome)

let last_stamp (outcome : R.outcome) key =
  match List.assoc_opt key outcome.R.sync_log with
  | Some syncs when Array.length syncs > 0 ->
    Some syncs.(Array.length syncs - 1).R.sp_stamp
  | Some _ | None -> None

let hb outcome ~a ~b =
  match (last_stamp outcome a, last_stamp outcome b) with
  | Some sa, Some sb -> Some (Vclock.ord sa.Vclock.vec sb.Vclock.vec)
  | _ -> None

let render entries =
  Difftrace_util.Texttable.render
    ~headers:[ "Thread"; "Last sync"; "Lamport"; "#syncs" ]
    (List.map
       (fun e ->
         [ Printf.sprintf "%d.%d" e.pid e.tid;
           Option.value ~default:"-" e.last_op;
           string_of_int e.last_lamport;
           string_of_int e.sync_count ])
       entries)
