(** OTF2-style trace export (paper §VII future work (2)).

    Serializes a run — per-thread call/return streams plus the
    logically-timestamped synchronization log — into a self-contained
    textual format modeled on OTF2's structure: a definitions section
    (strings, locations) followed by per-location event records. ENTER
    and LEAVE records carry the per-location sequence position; SYNC
    records additionally carry the Lamport scalar and the full vector
    clock, so downstream tools can mine temporal properties without the
    simulator. A parser is provided (and round-trip tested). *)

type sync = { op : string; lamport : int; vector : int list }

type event =
  | Enter of string
  | Leave of string
  | Sync of sync

type location = {
  pid : int;
  tid : int;
  truncated : bool;
  events : event list;
      (** call/return events in order; SYNC records follow the ENTER of
          the operation they stamp *)
}

type t = { locations : location list }

(** [of_outcome outcome] — build the archive from a simulator run. *)
val of_outcome : Difftrace_simulator.Runtime.outcome -> t

(** [render t] — the textual archive. *)
val render : t -> string

(** [parse s] — inverse of [render].
    Raises [Invalid_argument] on malformed input. *)
val parse : string -> t

(** [equal a b] — structural equality (for round-trip checks). *)
val equal : t -> t -> bool

(** [sync_points t] — every SYNC record with its location, in file
    order. *)
val sync_points : t -> ((int * int) * sync) list

(** [to_trace_set t] — reconstruct a plain trace set from the archive's
    ENTER/LEAVE records (SYNC records are ignored), enabling the whole
    DiffTrace pipeline to run on imported OTF2-style archives.
    [of_outcome] followed by [to_trace_set] reproduces the original
    traces exactly (property-tested). *)
val to_trace_set : t -> Difftrace_trace.Trace_set.t
