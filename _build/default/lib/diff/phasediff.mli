(** Phase-aware trace diffing.

    Long whole-program traces blur a Myers diff: a single early
    divergence shifts everything after it. HPC programs, however, are
    punctuated by synchronization points (collectives), which cut an
    execution into {e phases} that can be diffed independently — one of
    the extensible "vantage points" the paper's §I calls for. This
    module splits two call sequences at marker calls, pairs the phases
    positionally, diffs each pair, and reports where behaviour first
    diverged. *)

(** [default_markers name] — true for MPI collective operations
    (barrier, reduce, allreduce, bcast, gather, scatter, alltoall,
    scan, comm split). *)
val default_markers : string -> bool

(** [split ~markers calls] — the phases of a call sequence; each marker
    call closes its phase (and is included in it). A trailing segment
    without a marker forms the final phase. Empty input → no phases. *)
val split : markers:(string -> bool) -> string list -> string list list

type phase_report = {
  index : int;
  normal_phase : string list;
  faulty_phase : string list;
  distance : int;  (** Myers edit distance between the two phases *)
}

type t = {
  phases : phase_report list;  (** every phase pair, in order *)
  first_divergent : int option;
      (** index of the first phase with nonzero distance *)
  total_phases : int;
}

(** [compare ~markers ~normal ~faulty] — positional phase pairing;
    unmatched trailing phases diff against the empty sequence. *)
val compare :
  ?markers:(string -> bool) ->
  normal:string list ->
  faulty:string list ->
  unit ->
  t

(** [render t] — a table of per-phase distances plus the diffNLR-style
    rendering of the first divergent phase (if any). *)
val render : t -> string
