open Difftrace_nlr

type t = {
  blocks : string Myers.block list;
  normal_truncated : bool;
  faulty_truncated : bool;
}

let of_strings ~normal ~faulty =
  let a = Array.of_list normal and b = Array.of_list faulty in
  { blocks = Myers.blocks (Myers.diff ~equal:String.equal a b);
    normal_truncated = false;
    faulty_truncated = false }

let make symtab ~normal:(nlr_n, trunc_n) ~faulty:(nlr_f, trunc_f) =
  let strings nlr = Array.of_list (Nlr.to_strings symtab nlr) in
  let a = strings nlr_n and b = strings nlr_f in
  { blocks = Myers.blocks (Myers.diff ~equal:String.equal a b);
    normal_truncated = trunc_n;
    faulty_truncated = trunc_f }

let common_length t =
  List.fold_left
    (fun acc -> function
      | Myers.Common l -> acc + List.length l
      | Myers.Changed _ -> acc)
    0 t.blocks

let changed_length t =
  List.fold_left
    (fun acc -> function
      | Myers.Common _ -> acc
      | Myers.Changed { del; ins } -> acc + List.length del + List.length ins)
    0 t.blocks

let render ?(title = "diffNLR") t =
  let width =
    List.fold_left
      (fun acc b ->
        let lens =
          match b with
          | Myers.Common l -> List.map String.length l
          | Myers.Changed { del; ins } ->
            List.map String.length del @ List.map String.length ins
        in
        List.fold_left max acc lens)
      12 t.blocks
  in
  let pad s = s ^ String.make (max 0 (width - String.length s)) ' ' in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "=== %s ===\n" title);
  Buffer.add_string buf
    (Printf.sprintf "    %s | %s\n" (pad "normal") (pad "faulty"));
  let rule () =
    Buffer.add_string buf
      (Printf.sprintf "    %s-+-%s\n" (String.make width '-') (String.make width '-'))
  in
  rule ();
  List.iter
    (fun block ->
      (match block with
      | Myers.Common lines ->
        List.iter
          (fun l -> Buffer.add_string buf (Printf.sprintf "  = %s | %s\n" (pad l) (pad l)))
          lines
      | Myers.Changed { del; ins } ->
        let rec zip d i =
          match (d, i) with
          | [], [] -> ()
          | dh :: dt, [] ->
            Buffer.add_string buf (Printf.sprintf "  < %s | %s\n" (pad dh) (pad ""));
            zip dt []
          | [], ih :: it ->
            Buffer.add_string buf (Printf.sprintf "  > %s | %s\n" (pad "") (pad ih));
            zip [] it
          | dh :: dt, ih :: it ->
            Buffer.add_string buf (Printf.sprintf "  ~ %s | %s\n" (pad dh) (pad ih));
            zip dt it
        in
        zip del ins);
      rule ())
    t.blocks;
  (match (t.normal_truncated, t.faulty_truncated) with
  | false, true ->
    Buffer.add_string buf
      "    faulty trace is TRUNCATED: the thread hung inside its last call\n"
  | true, false ->
    Buffer.add_string buf "    normal trace is TRUNCATED (unexpected)\n"
  | true, true -> Buffer.add_string buf "    both traces are TRUNCATED\n"
  | false, false -> ());
  Buffer.contents buf
