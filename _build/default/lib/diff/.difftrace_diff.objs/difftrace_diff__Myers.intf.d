lib/diff/myers.mli:
