lib/diff/diffnlr.mli: Difftrace_nlr Difftrace_trace Myers
