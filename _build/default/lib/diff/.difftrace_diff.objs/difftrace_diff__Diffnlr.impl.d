lib/diff/diffnlr.ml: Array Buffer Difftrace_nlr List Myers Nlr Printf String
