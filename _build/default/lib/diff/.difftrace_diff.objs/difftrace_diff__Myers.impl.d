lib/diff/myers.ml: Array List
