lib/diff/phasediff.ml: Array Buffer Diffnlr Difftrace_util List Myers Option Printf String
