lib/diff/phasediff.mli:
