(** Myers' O(ND) difference algorithm (paper ref [18]) — the engine
    under diffNLR, applied to totally-ordered trace/NLR sequences. *)

type 'a op =
  | Keep of 'a    (** present in both sequences *)
  | Delete of 'a  (** only in the first (normal) sequence *)
  | Insert of 'a  (** only in the second (faulty) sequence *)

(** [diff ~equal a b] is a minimal edit script turning [a] into [b];
    [Keep]s and [Delete]s appear in [a]'s order, [Insert]s in [b]'s. *)
val diff : equal:('a -> 'a -> bool) -> 'a array -> 'a array -> 'a op list

(** [edit_distance ~equal a b] is the number of non-[Keep] operations
    (the D in O(ND)). *)
val edit_distance : equal:('a -> 'a -> bool) -> 'a array -> 'a array -> int

(** [apply script] replays the script, returning [(a, b)] — the two
    sequences it encodes. [diff] then [apply] is the identity pair
    (property-tested). *)
val apply : 'a op list -> 'a list * 'a list

(** Contiguous runs of the script, for block-structured display. *)
type 'a block =
  | Common of 'a list  (** the "main stem" *)
  | Changed of { del : 'a list; ins : 'a list }
      (** a differing region: [del] from the first sequence, [ins]
          from the second (either may be empty) *)

(** [blocks script] groups the script into maximal blocks. *)
val blocks : 'a op list -> 'a block list
