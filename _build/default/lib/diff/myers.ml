type 'a op = Keep of 'a | Delete of 'a | Insert of 'a

(* Greedy O(ND) with stored per-round V arrays for backtracking, as in
   Myers' paper §4. *)
let diff ~equal a b =
  let n = Array.length a and m = Array.length b in
  if n = 0 then List.init m (fun j -> Insert b.(j))
  else if m = 0 then List.init n (fun i -> Delete a.(i))
  else begin
    let max_d = n + m in
    let offset = max_d in
    let v = Array.make ((2 * max_d) + 1) 0 in
    let trace = ref [] in
    let found = ref None in
    let d = ref 0 in
    while !found = None && !d <= max_d do
      trace := Array.copy v :: !trace;
      let dd = !d in
      let k = ref (-dd) in
      while !found = None && !k <= dd do
        let kk = !k in
        let x =
          if kk = -dd || (kk <> dd && v.(offset + kk - 1) < v.(offset + kk + 1))
          then v.(offset + kk + 1)
          else v.(offset + kk - 1) + 1
        in
        let x = ref x in
        let y () = !x - kk in
        while !x < n && y () < m && equal a.(!x) b.(y ()) do
          incr x
        done;
        v.(offset + kk) <- !x;
        if !x >= n && y () >= m then found := Some dd;
        k := !k + 2
      done;
      incr d
    done;
    let d_final = match !found with Some d -> d | None -> assert false in
    (* Backtrack using the saved V arrays (most recent first). *)
    let traces = Array.of_list (List.rev !trace) in
    let ops = ref [] in
    let x = ref n and y = ref m in
    for d = d_final downto 1 do
      let v = traces.(d) in
      (* v here is the V array *at the start* of round d, i.e. after
         round d-1: index it with the predecessor k. *)
      let k = !x - !y in
      let prev_k =
        if k = -d || (k <> d && v.(offset + k - 1) < v.(offset + k + 1)) then
          k + 1
        else k - 1
      in
      let prev_x = v.(offset + prev_k) in
      let prev_y = prev_x - prev_k in
      (* snake *)
      while !x > prev_x && !y > prev_y do
        decr x;
        decr y;
        ops := Keep a.(!x) :: !ops
      done;
      if !x = prev_x then begin
        (* came from k+1: an insertion of b.(prev_y) *)
        decr y;
        ops := Insert b.(!y) :: !ops
      end
      else begin
        decr x;
        ops := Delete a.(!x) :: !ops
      end
    done;
    (* leading snake of round 0 *)
    while !x > 0 && !y > 0 do
      decr x;
      decr y;
      ops := Keep a.(!x) :: !ops
    done;
    assert (!x = 0 && !y = 0);
    !ops
  end

let edit_distance ~equal a b =
  List.fold_left
    (fun acc -> function Keep _ -> acc | Delete _ | Insert _ -> acc + 1)
    0 (diff ~equal a b)

let apply script =
  let a = ref [] and b = ref [] in
  List.iter
    (function
      | Keep x ->
        a := x :: !a;
        b := x :: !b
      | Delete x -> a := x :: !a
      | Insert x -> b := x :: !b)
    script;
  (List.rev !a, List.rev !b)

type 'a block =
  | Common of 'a list
  | Changed of { del : 'a list; ins : 'a list }

let blocks script =
  let out = ref [] in
  let commons = ref [] and dels = ref [] and inss = ref [] in
  let flush_changed () =
    if !dels <> [] || !inss <> [] then begin
      out := Changed { del = List.rev !dels; ins = List.rev !inss } :: !out;
      dels := [];
      inss := []
    end
  in
  let flush_common () =
    if !commons <> [] then begin
      out := Common (List.rev !commons) :: !out;
      commons := []
    end
  in
  List.iter
    (function
      | Keep x ->
        flush_changed ();
        commons := x :: !commons
      | Delete x ->
        flush_common ();
        dels := x :: !dels
      | Insert x ->
        flush_common ();
        inss := x :: !inss)
    script;
  flush_changed ();
  flush_common ();
  List.rev !out
