(** diffNLR — block-aligned visualization of a normal/faulty trace pair
    (paper §II-G.1, Figs. 5–7).

    Runs Myers diff over the two NLR element sequences and lays the
    result out as a "main stem" of common blocks with side-by-side
    normal-only / faulty-only diff rectangles, the paper's textual
    metaphor for git-style diffs of loop structure. *)

type t = {
  blocks : string Myers.block list;
  normal_truncated : bool;
  faulty_truncated : bool;
}

(** [make symtab ~normal ~faulty] diffs two summarized traces of the
    same thread from the two executions; the [truncated] flags come
    from the underlying traces and are shown in the rendering ("never
    reached MPI_Finalize"). *)
val make :
  Difftrace_trace.Symtab.t ->
  normal:Difftrace_nlr.Nlr.t * bool ->
  faulty:Difftrace_nlr.Nlr.t * bool ->
  t

(** [of_strings ~normal ~faulty] — same layout over pre-rendered
    element strings (used by tests and generic callers). *)
val of_strings : normal:string list -> faulty:string list -> t

(** [common_length t] / [changed_length t] — number of elements on the
    stem vs. inside diff rectangles. *)
val common_length : t -> int

val changed_length : t -> int

(** [render ?title t] — the two-column text figure. *)
val render : ?title:string -> t -> string
