examples/lulesh_study.mli:
