examples/custom_workload.ml: Array Config Difftrace Difftrace_diff Difftrace_fca Difftrace_filter Difftrace_simulator List Pipeline Printf Ranking
