examples/quickstart.mli:
