examples/hang_triage.mli:
