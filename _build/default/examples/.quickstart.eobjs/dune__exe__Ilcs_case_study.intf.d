examples/ilcs_case_study.mli:
