open Difftrace_simulator
open Difftrace_workloads
module R = Runtime
module Trace = Difftrace_trace.Trace
module Trace_set = Difftrace_trace.Trace_set

let qtest ?(count = 30) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let is_sorted a =
  let ok = ref true in
  for i = 0 to Array.length a - 2 do
    if a.(i) > a.(i + 1) then ok := false
  done;
  !ok

(* ------------------------------------------------------------------ *)
(* TSP                                                                 *)
(* ------------------------------------------------------------------ *)

let test_tsp_tour_length () =
  let t = Tsp.make ~cities:5 ~seed:1 in
  let tour = Array.init 5 (fun i -> i) in
  Alcotest.(check bool) "positive length" true (Tsp.tour_length t tour > 0);
  Alcotest.check_raises "wrong size" (Invalid_argument "Tsp.tour_length: wrong tour size")
    (fun () -> ignore (Tsp.tour_length t [| 0; 1 |]))

let test_tsp_two_opt_improves () =
  let t = Tsp.make ~cities:15 ~seed:7 in
  let tour = Tsp.random_tour t ~seed:3 in
  let before = Tsp.tour_length t tour in
  let after, exchanges = Tsp.two_opt t tour in
  Alcotest.(check bool) "not worse" true (after <= before);
  Alcotest.(check bool) "made some exchanges" true (exchanges > 0);
  (* tour is still a permutation *)
  let sorted = Array.copy tour in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 15 (fun i -> i)) sorted;
  Alcotest.(check int) "reported length is real" after (Tsp.tour_length t tour)

let prop_tsp_solve_deterministic =
  qtest "TSP solve is a pure function of seeds"
    QCheck2.Gen.(pair (int_range 0 100) (int_range 0 100))
    (fun (inst_seed, tour_seed) ->
      let t1 = Tsp.make ~cities:10 ~seed:inst_seed in
      let t2 = Tsp.make ~cities:10 ~seed:inst_seed in
      Tsp.solve t1 ~seed:tour_seed = Tsp.solve t2 ~seed:tour_seed)

let test_tsp_validation () =
  Alcotest.check_raises "too few cities"
    (Invalid_argument "Tsp.make: need at least 3 cities") (fun () ->
      ignore (Tsp.make ~cities:2 ~seed:1))

(* ------------------------------------------------------------------ *)
(* Odd/even sort                                                       *)
(* ------------------------------------------------------------------ *)

let test_find_ptr_matches_paper () =
  (* np=4: pairing of Table II *)
  let p phase rank = Odd_even.find_ptr ~np:4 ~phase ~rank in
  Alcotest.(check (option int)) "phase0 rank0" (Some 1) (p 0 0);
  Alcotest.(check (option int)) "phase0 rank3" (Some 2) (p 0 3);
  Alcotest.(check (option int)) "phase1 rank0 idle" None (p 1 0);
  Alcotest.(check (option int)) "phase1 rank3 idle" None (p 1 3);
  Alcotest.(check (option int)) "phase1 rank1" (Some 2) (p 1 1);
  Alcotest.(check (option int)) "phase1 rank2" (Some 1) (p 1 2)

let test_find_ptr_symmetric () =
  for np = 2 to 9 do
    for phase = 0 to np - 1 do
      for rank = 0 to np - 1 do
        match Odd_even.find_ptr ~np ~phase ~rank with
        | None -> ()
        | Some p ->
          if Odd_even.find_ptr ~np ~phase ~rank:p <> Some rank then
            Alcotest.fail
              (Printf.sprintf "asymmetric pairing np=%d phase=%d rank=%d" np phase
                 rank)
      done
    done
  done

let test_odd_even_sorts () =
  let outcome, blocks = Odd_even.run ~np:8 ~block:4 ~fault:Fault.No_fault () in
  Alcotest.(check (list (pair int int))) "clean" [] outcome.R.deadlocked;
  let all = Odd_even.sorted_concat blocks in
  Alcotest.(check bool) "globally sorted" true (is_sorted all);
  Alcotest.(check int) "all values present" 32 (Array.length all)

let prop_odd_even_sorts_any_np =
  qtest "odd/even sorts for any np/block/seed"
    QCheck2.Gen.(triple (int_range 2 10) (int_range 1 5) (int_range 0 1000))
    (fun (np, block, seed) ->
      let outcome, blocks = Odd_even.run ~np ~block ~seed ~fault:Fault.No_fault () in
      outcome.R.deadlocked = [] && is_sorted (Odd_even.sorted_concat blocks))

let test_swap_bug_completes_under_eager () =
  (* the paper's swapBug: only a *potential* deadlock; with small eager
     messages the run completes but the loop body flips *)
  let outcome, _ =
    Odd_even.run ~np:16
      ~fault:(Fault.Swap_send_recv { rank = 5; after_iter = 7 })
      ()
  in
  Alcotest.(check (list (pair int int))) "completes" [] outcome.R.deadlocked

let test_swap_bug_deadlocks_under_rendezvous () =
  (* with blocks above the eager limit the same bug is a real deadlock *)
  let outcome, _ =
    Odd_even.run ~np:16 ~block:8 ~eager_limit:4
      ~fault:(Fault.Swap_send_recv { rank = 5; after_iter = 7 })
      ()
  in
  Alcotest.(check bool) "deadlocks" true (outcome.R.deadlocked <> [])

let test_dl_bug_truncates_rank5 () =
  let outcome, _ =
    Odd_even.run ~np:16 ~fault:(Fault.Deadlock_recv { rank = 5; after_iter = 7 }) ()
  in
  Alcotest.(check bool) "rank 5 hung" true (List.mem (5, 0) outcome.R.deadlocked);
  let tr = Trace_set.find_exn outcome.R.traces ~pid:5 ~tid:0 in
  Alcotest.(check bool) "trace truncated" true tr.Trace.truncated

(* ------------------------------------------------------------------ *)
(* ILCS                                                                *)
(* ------------------------------------------------------------------ *)

let test_ilcs_normal_terminates () =
  let outcome, result = Ilcs.run ~fault:Fault.No_fault () in
  Alcotest.(check (list (pair int int))) "clean" [] outcome.R.deadlocked;
  Alcotest.(check bool) "no timeout" false outcome.R.timed_out;
  Alcotest.(check int) "no races" 0 (List.length outcome.R.races);
  Alcotest.(check bool) "found a champion" true
    (result.Ilcs.global_champion < max_int);
  (* all masters execute the same number of rounds — the collective
     matching invariant *)
  let r0 = result.Ilcs.rounds.(0) in
  Array.iter (fun r -> Alcotest.(check int) "uniform rounds" r0 r) result.Ilcs.rounds;
  Alcotest.(check int) "8 ranks x (1 master + 4 workers)" 40
    (Trace_set.cardinal outcome.R.traces)

let test_ilcs_champion_is_true_min () =
  (* the champion must be the minimum over every seed any worker
     evaluated... at least not larger than a re-solve of some seed *)
  let _, result = Ilcs.run ~np:2 ~workers:2 ~fault:Fault.No_fault () in
  let tsp = Tsp.make ~cities:12 ~seed:4242 in
  let some_seed_result = Tsp.solve tsp ~seed:((0 * 7919) + (1 * 104729) + 1) in
  Alcotest.(check bool) "champion <= first worker seed" true
    (result.Ilcs.global_champion <= some_seed_result)

let test_ilcs_no_critical_flags_exact_thread () =
  let outcome, _ = Ilcs.run ~fault:(Fault.No_critical { rank = 6; thread = 4 }) () in
  match outcome.R.races with
  | [ r ] ->
    Alcotest.(check int) "process 6" 6 r.R.race_pid;
    Alcotest.(check string) "champ cell" "champ[4]" r.R.cell_name;
    Alcotest.(check (list int)) "thread 4" [ 4 ] r.R.tids
  | l -> Alcotest.fail (Printf.sprintf "expected 1 violation, got %d" (List.length l))

let test_ilcs_no_critical_trace_lacks_gomp () =
  let outcome, _ = Ilcs.run ~fault:(Fault.No_critical { rank = 6; thread = 4 }) () in
  let ts = outcome.R.traces in
  let has_critical pid tid =
    let tr = Trace_set.find_exn ts ~pid ~tid in
    List.mem "GOMP_critical_start" (Trace.to_strings (Trace_set.symtab ts) tr)
  in
  Alcotest.(check bool) "faulty thread has no critical" false (has_critical 6 4);
  Alcotest.(check bool) "sibling thread still has critical" true (has_critical 6 3)

let test_ilcs_wrong_size_deadlocks_masters () =
  let outcome, _ = Ilcs.run ~fault:(Fault.Wrong_collective_size { rank = 2 }) () in
  Alcotest.(check (list (pair int int))) "all 8 masters hung"
    (List.init 8 (fun p -> (p, 0)))
    outcome.R.deadlocked;
  Alcotest.(check bool) "diagnosed" true (outcome.R.collective_mismatch <> None);
  let tr = Trace_set.find_exn outcome.R.traces ~pid:2 ~tid:0 in
  let strs = Trace.to_strings (Trace_set.symtab outcome.R.traces) tr in
  Alcotest.(check string) "last entry is the unreturned Allreduce" "MPI_Allreduce"
    (List.nth strs (List.length strs - 1))

let test_ilcs_wrong_op_changes_rounds () =
  let _, normal = Ilcs.run ~fault:Fault.No_fault () in
  let outcome, faulty = Ilcs.run ~fault:(Fault.Wrong_collective_op { rank = 0 }) () in
  Alcotest.(check (list (pair int int))) "still terminates" [] outcome.R.deadlocked;
  Alcotest.(check bool) "silent bug: round count changed" true
    (faulty.Ilcs.rounds.(0) <> normal.Ilcs.rounds.(0))

(* ------------------------------------------------------------------ *)
(* LULESH                                                              *)
(* ------------------------------------------------------------------ *)

let test_lulesh_normal_clean () =
  let outcome = Lulesh.run ~fault:Fault.No_fault () in
  Alcotest.(check (list (pair int int))) "clean" [] outcome.R.deadlocked;
  Alcotest.(check int) "8 x 4 traces" 32 (Trace_set.cardinal outcome.R.traces);
  (* every rank calls the leapfrog *)
  let st = Trace_set.symtab outcome.R.traces in
  Array.iter
    (fun tr ->
      if tr.Trace.tid = 0 then
        Alcotest.(check bool) "has LagrangeLeapFrog" true
          (List.mem "LagrangeLeapFrog" (Trace.to_strings st tr)))
    (Trace_set.traces outcome.R.traces)

let test_lulesh_skip_fault_blocks_neighbours () =
  let outcome =
    Lulesh.run ~fault:(Fault.Skip_function { rank = 2; func = "LagrangeLeapFrog" }) ()
  in
  Alcotest.(check bool) "run hangs" true (outcome.R.deadlocked <> []);
  let st = Trace_set.symtab outcome.R.traces in
  let tr2 = Trace_set.find_exn outcome.R.traces ~pid:2 ~tid:0 in
  Alcotest.(check bool) "rank 2 skipped the phase" false
    (List.mem "LagrangeLeapFrog" (Trace.to_strings st tr2));
  let tr1 = Trace_set.find_exn outcome.R.traces ~pid:1 ~tid:0 in
  Alcotest.(check bool) "neighbour still entered it" true
    (List.mem "LagrangeLeapFrog" (Trace.to_strings st tr1))

let test_lulesh_hydro_physics () =
  (* the mini-app now solves a real Sedov-style problem *)
  let _, h2 = Lulesh.simulate ~edge:4 ~cycles:2 ~fault:Fault.No_fault () in
  let _, h20 = Lulesh.simulate ~edge:4 ~cycles:20 ~fault:Fault.No_fault () in
  let etot h =
    h.Lulesh.total_internal_energy +. h.Lulesh.total_kinetic_energy
  in
  (* total energy is conserved up to artificial-viscosity dissipation *)
  Alcotest.(check bool) "energy within 2% of the deposit" true
    (Float.abs (etot h2 -. 3.0) < 0.06 && Float.abs (etot h20 -. 3.0) < 0.06);
  Alcotest.(check bool) "dissipation is monotone" true (etot h20 <= etot h2);
  (* the blast converts internal energy into kinetic energy *)
  Alcotest.(check bool) "kinetic energy grows" true
    (h20.Lulesh.total_kinetic_energy > h2.Lulesh.total_kinetic_energy);
  (* the peak pressure decays as the blast expands *)
  Alcotest.(check bool) "pressure decays" true
    (h20.Lulesh.max_pressure < h2.Lulesh.max_pressure);
  Alcotest.(check bool) "positive stable dt" true (h20.Lulesh.final_dt > 0.0)

let test_lulesh_hydro_shock_moves () =
  let _, early = Lulesh.simulate ~edge:4 ~cycles:5 ~fault:Fault.No_fault () in
  let _, late = Lulesh.simulate ~edge:4 ~cycles:60 ~fault:Fault.No_fault () in
  Alcotest.(check bool) "shock front advances" true
    (late.Lulesh.shock_cell > early.Lulesh.shock_cell)

let test_lulesh_hydro_deterministic () =
  let _, a = Lulesh.simulate ~cycles:6 ~fault:Fault.No_fault () in
  let _, b = Lulesh.simulate ~cycles:6 ~fault:Fault.No_fault () in
  Alcotest.(check bool) "identical physics" true (a = b)

let test_lulesh_k_sweep_shape () =
  let outcome = Lulesh.run ~np:2 ~cycles:1 ~fault:Fault.No_fault () in
  let tr = Trace_set.find_exn outcome.R.traces ~pid:0 ~tid:0 in
  let ids = Trace.call_ids tr in
  let factor k =
    let table = Difftrace_nlr.Nlr.Loop_table.create () in
    Difftrace_nlr.Nlr.reduction_factor (Difftrace_nlr.Nlr.of_ids ~table ~k ids)
  in
  let f10 = factor 10 and f50 = factor 50 in
  Alcotest.(check bool) "K=50 compresses much more than K=10 (paper §V)" true
    (f50 > 4.0 *. f10)

(* ------------------------------------------------------------------ *)
(* Fault parsing                                                       *)
(* ------------------------------------------------------------------ *)

let test_fault_roundtrip () =
  let faults =
    [ Fault.No_fault;
      Fault.Swap_send_recv { rank = 5; after_iter = 7 };
      Fault.Deadlock_recv { rank = 5; after_iter = 7 };
      Fault.Wrong_collective_size { rank = 2 };
      Fault.Wrong_collective_op { rank = 0 };
      Fault.No_critical { rank = 6; thread = 4 };
      Fault.Skip_function { rank = 2; func = "LagrangeLeapFrog" } ]
  in
  List.iter
    (fun f ->
      Alcotest.(check bool)
        ("roundtrip " ^ Fault.to_string f)
        true
        (Fault.equal f (Fault.of_string (Fault.to_string f))))
    faults;
  Alcotest.check_raises "bad fault" (Invalid_argument "Fault.of_string: bogus")
    (fun () -> ignore (Fault.of_string "bogus"))

let () =
  Alcotest.run "workloads"
    [ ( "tsp",
        [ Alcotest.test_case "tour length" `Quick test_tsp_tour_length;
          Alcotest.test_case "2-opt improves" `Quick test_tsp_two_opt_improves;
          prop_tsp_solve_deterministic;
          Alcotest.test_case "validation" `Quick test_tsp_validation ] );
      ( "odd_even",
        [ Alcotest.test_case "find_ptr (paper pairing)" `Quick
            test_find_ptr_matches_paper;
          Alcotest.test_case "find_ptr symmetric" `Quick test_find_ptr_symmetric;
          Alcotest.test_case "sorts" `Quick test_odd_even_sorts;
          prop_odd_even_sorts_any_np;
          Alcotest.test_case "swapBug completes (eager)" `Quick
            test_swap_bug_completes_under_eager;
          Alcotest.test_case "swapBug deadlocks (rendezvous)" `Quick
            test_swap_bug_deadlocks_under_rendezvous;
          Alcotest.test_case "dlBug truncates rank 5" `Quick test_dl_bug_truncates_rank5 ] );
      ( "ilcs",
        [ Alcotest.test_case "normal terminates" `Quick test_ilcs_normal_terminates;
          Alcotest.test_case "champion sanity" `Quick test_ilcs_champion_is_true_min;
          Alcotest.test_case "noCritical flags 6.4" `Quick
            test_ilcs_no_critical_flags_exact_thread;
          Alcotest.test_case "noCritical trace shape" `Quick
            test_ilcs_no_critical_trace_lacks_gomp;
          Alcotest.test_case "wrongSize deadlocks masters" `Quick
            test_ilcs_wrong_size_deadlocks_masters;
          Alcotest.test_case "wrongOp changes rounds" `Quick
            test_ilcs_wrong_op_changes_rounds ] );
      ( "lulesh",
        [ Alcotest.test_case "normal clean" `Quick test_lulesh_normal_clean;
          Alcotest.test_case "skip fault hangs job" `Quick
            test_lulesh_skip_fault_blocks_neighbours;
          Alcotest.test_case "hydro physics" `Quick test_lulesh_hydro_physics;
          Alcotest.test_case "shock moves" `Quick test_lulesh_hydro_shock_moves;
          Alcotest.test_case "hydro deterministic" `Quick
            test_lulesh_hydro_deterministic;
          Alcotest.test_case "K sweep shape" `Quick test_lulesh_k_sweep_shape ] );
      ( "fault",
        [ Alcotest.test_case "to_string/of_string" `Quick test_fault_roundtrip ] ) ]
