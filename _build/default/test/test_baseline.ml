open Difftrace_baseline
module R = Difftrace_simulator.Runtime
module Fault = Difftrace_simulator.Fault
module Odd_even = Difftrace_workloads.Odd_even
module Filter = Difftrace_filter.Filter

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let test_transition_probabilities () =
  let m = Smm.of_calls [| "a"; "b"; "a"; "b"; "a"; "c" |] in
  Alcotest.(check int) "two source states... a and b" 2 (Smm.n_states m);
  Alcotest.(check (float 1e-9)) "P(b|a) = 2/3" (2.0 /. 3.0)
    (Smm.transition_probability m ~src:"a" ~dst:"b");
  Alcotest.(check (float 1e-9)) "P(c|a) = 1/3" (1.0 /. 3.0)
    (Smm.transition_probability m ~src:"a" ~dst:"c");
  Alcotest.(check (float 1e-9)) "P(a|b) = 1" 1.0
    (Smm.transition_probability m ~src:"b" ~dst:"a");
  Alcotest.(check (float 1e-9)) "unknown source" 0.0
    (Smm.transition_probability m ~src:"z" ~dst:"a")

let test_distance_identity_symmetry () =
  let a = Smm.of_calls [| "x"; "y"; "x"; "y" |] in
  let b = Smm.of_calls [| "x"; "z"; "x"; "z" |] in
  Alcotest.(check (float 1e-9)) "d(a,a)=0" 0.0 (Smm.distance a a);
  Alcotest.(check (float 1e-9)) "symmetric" (Smm.distance a b) (Smm.distance b a);
  Alcotest.(check bool) "different models differ" true (Smm.distance a b > 0.3)

let test_distance_missing_state () =
  let a = Smm.of_calls [| "x"; "y" |] in
  let empty = Smm.of_calls [||] in
  Alcotest.(check (float 1e-9)) "missing state fully different" 1.0
    (Smm.distance a empty);
  Alcotest.(check (float 1e-9)) "two empties" 0.0 (Smm.distance empty empty)

let gen_calls =
  QCheck2.Gen.(
    list_size (int_range 0 80) (int_range 0 4)
    |> map (fun l -> Array.of_list (List.map (Printf.sprintf "f%d") l)))

let prop_distance_metric_like =
  qtest "distance in [0,1], zero on self, symmetric"
    QCheck2.Gen.(pair gen_calls gen_calls)
    (fun (a, b) ->
      let ma = Smm.of_calls a and mb = Smm.of_calls b in
      let d = Smm.distance ma mb in
      d >= 0.0 && d <= 1.0
      && Smm.distance ma ma = 0.0
      && Float.abs (d -. Smm.distance mb ma) < 1e-12)

let mpi_only ts = Filter.apply_set (Filter.make [ Filter.Mpi_all ]) ts

let test_baseline_flags_swapbug () =
  (* the baseline must also localize the paper's swapBug: rank 5's
     transition structure flips Recv->Send into Send->Recv *)
  let normal, _ = Odd_even.run ~np:16 ~fault:Fault.No_fault () in
  let faulty, _ =
    Odd_even.run ~np:16 ~fault:(Fault.Swap_send_recv { rank = 5; after_iter = 7 }) ()
  in
  let changes =
    Smm.rank_changes ~normal:(mpi_only normal.R.traces)
      ~faulty:(mpi_only faulty.R.traces)
  in
  Alcotest.(check string) "rank 5 changed most" "5" (fst changes.(0));
  Alcotest.(check bool) "clearly positive" true (snd changes.(0) > 0.01)

let test_baseline_outliers_on_hung_run () =
  let faulty, _ =
    Odd_even.run ~np:8 ~fault:(Fault.Deadlock_recv { rank = 3; after_iter = 2 }) ()
  in
  let scores = Smm.outliers (mpi_only faulty.R.traces) in
  Alcotest.(check int) "one score per trace" 8 (Array.length scores);
  Alcotest.(check bool) "scores sorted descending" true
    (let ok = ref true in
     for i = 1 to Array.length scores - 1 do
       if snd scores.(i - 1) < snd scores.(i) then ok := false
     done;
     !ok)

let test_baseline_identical_runs () =
  let a, _ = Odd_even.run ~np:8 ~fault:Fault.No_fault () in
  let b, _ = Odd_even.run ~np:8 ~fault:Fault.No_fault () in
  let changes = Smm.rank_changes ~normal:a.R.traces ~faulty:b.R.traces in
  Array.iter
    (fun (l, d) ->
      Alcotest.(check (float 1e-9)) ("no drift for " ^ l) 0.0 d)
    changes

let () =
  Alcotest.run "baseline"
    [ ( "smm",
        [ Alcotest.test_case "transition probabilities" `Quick
            test_transition_probabilities;
          Alcotest.test_case "distance identity/symmetry" `Quick
            test_distance_identity_symmetry;
          Alcotest.test_case "missing state" `Quick test_distance_missing_state;
          prop_distance_metric_like ] );
      ( "debugging",
        [ Alcotest.test_case "flags swapBug rank 5" `Quick test_baseline_flags_swapbug;
          Alcotest.test_case "outliers on hung run" `Quick
            test_baseline_outliers_on_hung_run;
          Alcotest.test_case "identical runs" `Quick test_baseline_identical_runs ] ) ]
