open Difftrace_trace

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let test_symtab_intern () =
  let t = Symtab.create () in
  let a = Symtab.intern t "foo" in
  let b = Symtab.intern t "bar" in
  let a' = Symtab.intern t "foo" in
  Alcotest.(check int) "dense ids from 0" 0 a;
  Alcotest.(check int) "second id" 1 b;
  Alcotest.(check int) "stable reintern" a a';
  Alcotest.(check int) "size" 2 (Symtab.size t);
  Alcotest.(check string) "name lookup" "foo" (Symtab.name t 0);
  Alcotest.(check (option int)) "find_opt hit" (Some 1) (Symtab.find_opt t "bar");
  Alcotest.(check (option int)) "find_opt miss" None (Symtab.find_opt t "baz");
  Alcotest.(check (array string)) "names" [| "foo"; "bar" |] (Symtab.names t);
  Alcotest.check_raises "unknown id" (Invalid_argument "Symtab.name: unknown ID")
    (fun () -> ignore (Symtab.name t 5))

let test_event_basics () =
  let t = Symtab.create () in
  let f = Symtab.intern t "f" in
  Alcotest.(check int) "id of call" f (Event.id (Event.Call f));
  Alcotest.(check int) "id of return" f (Event.id (Event.Return f));
  Alcotest.(check bool) "is_call" true (Event.is_call (Event.Call f));
  Alcotest.(check bool) "is_return" true (Event.is_return (Event.Return f));
  Alcotest.(check string) "call to_string" "f" (Event.to_string t (Event.Call f));
  Alcotest.(check string) "return to_string" "ret f"
    (Event.to_string t (Event.Return f));
  Alcotest.(check bool) "equal" true (Event.equal (Event.Call 3) (Event.Call 3));
  Alcotest.(check bool) "not equal kinds" false
    (Event.equal (Event.Call 3) (Event.Return 3))

let prop_event_codec =
  qtest "event encode/decode roundtrip"
    QCheck2.Gen.(
      let* id = int_range 0 100000 in
      let* call = bool in
      return (if call then Event.Call id else Event.Return id))
    (fun e -> Event.equal e (Event.decode (Event.encode e)))

let mk_trace ?(pid = 0) ?(tid = 0) ?(truncated = false) evs =
  Trace.make ~pid ~tid ~truncated (Array.of_list evs)

let test_trace_call_ids () =
  let tr =
    mk_trace [ Event.Call 1; Event.Return 1; Event.Call 2; Event.Call 1; Event.Return 2 ]
  in
  Alcotest.(check (array int)) "calls only, in order" [| 1; 2; 1 |] (Trace.call_ids tr);
  Alcotest.(check int) "length counts all events" 5 (Trace.length tr);
  Alcotest.(check int) "distinct" 2 (Trace.distinct_functions tr)

let test_trace_label () =
  let tr = mk_trace ~pid:6 ~tid:4 [] in
  Alcotest.(check string) "full label" "6.4" (Trace.label tr);
  Alcotest.(check string) "short only for tid 0" "6.4" (Trace.label ~short:true tr);
  let m = mk_trace ~pid:6 ~tid:0 [] in
  Alcotest.(check string) "master short" "6" (Trace.label ~short:true m);
  Alcotest.(check string) "master full" "6.0" (Trace.label m)

let test_trace_set_ordering () =
  let ts =
    Trace_set.create (Symtab.create ())
      [ mk_trace ~pid:1 ~tid:1 []; mk_trace ~pid:0 ~tid:0 [];
        mk_trace ~pid:1 ~tid:0 []; mk_trace ~pid:0 ~tid:2 [] ]
  in
  Alcotest.(check (array string)) "sorted labels" [| "0.0"; "0.2"; "1.0"; "1.1" |]
    (Trace_set.labels ts);
  Alcotest.(check int) "cardinal" 4 (Trace_set.cardinal ts);
  Alcotest.(check (list int)) "processes" [ 0; 1 ] (Trace_set.processes ts)

let test_trace_set_find () =
  let t1 = mk_trace ~pid:3 ~tid:2 [ Event.Call 0 ] in
  let ts = Trace_set.create (Symtab.create ()) [ t1 ] in
  (match Trace_set.find ts ~pid:3 ~tid:2 with
  | Some tr -> Alcotest.(check int) "found" 1 (Trace.length tr)
  | None -> Alcotest.fail "missing");
  Alcotest.(check (option int)) "miss" None
    (Option.map Trace.length (Trace_set.find ts ~pid:9 ~tid:9));
  Alcotest.check_raises "find_exn miss" Not_found (fun () ->
      ignore (Trace_set.find_exn ts ~pid:9 ~tid:9))

let test_trace_set_map_events () =
  let t1 = mk_trace [ Event.Call 0; Event.Return 0; Event.Call 1 ] in
  let ts = Trace_set.create (Symtab.create ()) [ t1 ] in
  let ts' =
    Trace_set.map_events
      (fun tr -> Array.of_list (List.filter Event.is_call (Array.to_list tr.Trace.events)))
      ts
  in
  Alcotest.(check int) "filtered" 2 (Trace_set.total_events ts');
  Alcotest.(check int) "original untouched" 3 (Trace_set.total_events ts)

let () =
  Alcotest.run "trace"
    [ ( "symtab",
        [ Alcotest.test_case "intern" `Quick test_symtab_intern ] );
      ( "event",
        [ Alcotest.test_case "basics" `Quick test_event_basics; prop_event_codec ] );
      ( "trace",
        [ Alcotest.test_case "call_ids" `Quick test_trace_call_ids;
          Alcotest.test_case "labels" `Quick test_trace_label ] );
      ( "trace_set",
        [ Alcotest.test_case "ordering" `Quick test_trace_set_ordering;
          Alcotest.test_case "find" `Quick test_trace_set_find;
          Alcotest.test_case "map_events" `Quick test_trace_set_map_events ] ) ]
