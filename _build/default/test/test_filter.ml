open Difftrace_filter
open Difftrace_trace

let mk_events symtab names =
  Array.of_list
    (List.map
       (fun n ->
         if String.length n > 4 && String.sub n 0 4 = "ret:" then
           Event.Return (Symtab.intern symtab (String.sub n 4 (String.length n - 4)))
         else Event.Call (Symtab.intern symtab n))
       names)

let apply_names filter names =
  let symtab = Symtab.create () in
  let evs = mk_events symtab names in
  Array.to_list (Array.map (Event.to_string symtab) (Filter.apply filter symtab evs))

let test_returns_filter () =
  let f = Filter.make ~drop_returns:true ~drop_plt:false [] in
  Alcotest.(check (list string)) "returns dropped" [ "a"; "b" ]
    (apply_names f [ "a"; "ret:a"; "b"; "ret:b" ]);
  let f = Filter.make ~drop_returns:false ~drop_plt:false [] in
  Alcotest.(check (list string)) "returns kept" [ "a"; "ret a" ]
    (apply_names f [ "a"; "ret:a" ])

let test_plt_filter () =
  let f = Filter.make ~drop_returns:false ~drop_plt:true [] in
  Alcotest.(check (list string)) "plt dropped" [ "memcpy" ]
    (apply_names f [ "memcpy.plt"; "memcpy" ]);
  let f = Filter.make ~drop_returns:false ~drop_plt:false [] in
  Alcotest.(check (list string)) "plt kept" [ "memcpy.plt"; "memcpy" ]
    (apply_names f [ "memcpy.plt"; "memcpy" ])

let sample =
  [ "main"; "MPI_Init"; "MPI_Send"; "MPI_Barrier"; "MPI_Allreduce"; "MPID_Send";
    "GOMP_parallel_start"; "GOMP_critical_start"; "GOMP_critical_end";
    "omp_get_thread_num"; "memcpy"; "malloc"; "socket"; "poll"; "sched_yield";
    "strlen"; "pthread_mutex_lock"; "CPU_Exec" ]

let keeps k = apply_names (Filter.make ~drop_returns:true ~drop_plt:true [ k ]) sample

let test_mpi_all () =
  Alcotest.(check (list string)) "MPI_ prefix"
    [ "MPI_Init"; "MPI_Send"; "MPI_Barrier"; "MPI_Allreduce" ]
    (keeps Filter.Mpi_all)

let test_mpi_collectives () =
  Alcotest.(check (list string)) "collectives" [ "MPI_Barrier"; "MPI_Allreduce" ]
    (keeps Filter.Mpi_collectives)

let test_mpi_send_recv () =
  Alcotest.(check (list string)) "send/recv" [ "MPI_Send" ] (keeps Filter.Mpi_send_recv)

let test_mpi_internal () =
  Alcotest.(check (list string)) "MPID frames" [ "MPID_Send" ] (keeps Filter.Mpi_internal)

let test_omp_all () =
  Alcotest.(check (list string)) "GOMP/omp"
    [ "GOMP_parallel_start"; "GOMP_critical_start"; "GOMP_critical_end";
      "omp_get_thread_num" ]
    (keeps Filter.Omp_all)

let test_omp_critical () =
  Alcotest.(check (list string)) "critical only"
    [ "GOMP_critical_start"; "GOMP_critical_end" ]
    (keeps Filter.Omp_critical)

let test_omp_mutex () =
  Alcotest.(check (list string)) "mutex" [ "pthread_mutex_lock" ] (keeps Filter.Omp_mutex)

let test_sys_categories () =
  Alcotest.(check (list string)) "memory" [ "memcpy"; "malloc" ] (keeps Filter.Sys_memory);
  Alcotest.(check (list string)) "network" [ "socket"; "sched_yield" ]
    (keeps Filter.Sys_network);
  Alcotest.(check (list string)) "poll" [ "poll"; "sched_yield" ] (keeps Filter.Sys_poll);
  Alcotest.(check (list string)) "string" [ "strlen" ] (keeps Filter.Sys_string)

let test_custom_regex () =
  Alcotest.(check (list string)) "regex" [ "main"; "CPU_Exec" ]
    (keeps (Filter.Custom "^main$|^CPU_"))

let test_everything () =
  Alcotest.(check int) "identity keep" (List.length sample)
    (List.length (keeps Filter.Everything))

let test_union_of_keeps () =
  let f = Filter.make [ Filter.Mpi_collectives; Filter.Sys_memory ] in
  Alcotest.(check (list string)) "union"
    [ "MPI_Barrier"; "MPI_Allreduce"; "memcpy"; "malloc" ]
    (apply_names f sample)

let test_no_keeps_means_all () =
  let f = Filter.make [] in
  Alcotest.(check int) "only drops apply" (List.length sample)
    (List.length (apply_names f sample))

let test_spec_roundtrip () =
  let specs =
    [ "11.mpiall"; "01.mem.ompcrit"; "10.mpicol.cust"; "11.all"; "00.poll.str" ]
  in
  List.iter
    (fun s ->
      Alcotest.(check string) ("roundtrip " ^ s) s (Filter.name (Filter.of_spec s)))
    specs

let test_spec_custom_binding () =
  let f = Filter.of_spec ~custom:[ "^CPU_" ] "11.cust" in
  Alcotest.(check bool) "custom bound" true (Filter.matches f "CPU_Exec");
  Alcotest.(check bool) "custom excludes" false (Filter.matches f "main")

let test_spec_errors () =
  Alcotest.check_raises "bad digits" (Invalid_argument "Filter.of_spec: bad drop digits in 2x.mpiall")
    (fun () -> ignore (Filter.of_spec "2x.mpiall"));
  Alcotest.check_raises "unknown keep" (Invalid_argument "Filter.of_spec: unknown component nope")
    (fun () -> ignore (Filter.of_spec "11.nope"))

let test_apply_set_shares_decision () =
  let symtab = Symtab.create () in
  let evs = mk_events symtab [ "MPI_Send"; "work"; "ret:MPI_Send" ] in
  let ts =
    Trace_set.create symtab
      [ Trace.make ~pid:0 ~tid:0 ~truncated:false evs;
        Trace.make ~pid:1 ~tid:0 ~truncated:false evs ]
  in
  let ts' = Filter.apply_set (Filter.make [ Filter.Mpi_all ]) ts in
  Alcotest.(check int) "both traces filtered" 2 (Trace_set.total_events ts')

let test_predefined_catalog () =
  Alcotest.(check int) "Table I has 15 rows" 15 (List.length Filter.predefined)

let () =
  Alcotest.run "filter"
    [ ( "primary",
        [ Alcotest.test_case "returns" `Quick test_returns_filter;
          Alcotest.test_case "plt" `Quick test_plt_filter ] );
      ( "categories",
        [ Alcotest.test_case "mpi all" `Quick test_mpi_all;
          Alcotest.test_case "mpi collectives" `Quick test_mpi_collectives;
          Alcotest.test_case "mpi send/recv" `Quick test_mpi_send_recv;
          Alcotest.test_case "mpi internal" `Quick test_mpi_internal;
          Alcotest.test_case "omp all" `Quick test_omp_all;
          Alcotest.test_case "omp critical" `Quick test_omp_critical;
          Alcotest.test_case "omp mutex" `Quick test_omp_mutex;
          Alcotest.test_case "system" `Quick test_sys_categories;
          Alcotest.test_case "custom regex" `Quick test_custom_regex;
          Alcotest.test_case "everything" `Quick test_everything;
          Alcotest.test_case "union of keeps" `Quick test_union_of_keeps;
          Alcotest.test_case "no keeps = all" `Quick test_no_keeps_means_all ] );
      ( "specs",
        [ Alcotest.test_case "name/of_spec roundtrip" `Quick test_spec_roundtrip;
          Alcotest.test_case "custom binding" `Quick test_spec_custom_binding;
          Alcotest.test_case "errors" `Quick test_spec_errors ] );
      ( "sets",
        [ Alcotest.test_case "apply_set" `Quick test_apply_set_shares_decision;
          Alcotest.test_case "Table I catalog" `Quick test_predefined_catalog ] ) ]
