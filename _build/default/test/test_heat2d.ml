open Difftrace_simulator
module R = Runtime
module H = Difftrace_workloads.Heat2d
module Trace = Difftrace_trace.Trace
module Trace_set = Difftrace_trace.Trace_set

let qtest ?(count = 12) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let test_normal_run () =
  let o, r = H.run ~fault:Fault.No_fault () in
  Alcotest.(check (list (pair int int))) "clean" [] o.R.deadlocked;
  Alcotest.(check int) "12 iterations" 12 r.H.iterations;
  Alcotest.(check int) "full 24x12 field" (24 * 12) (Array.length r.H.field);
  Alcotest.(check int) "one row max per grid row" 2 (Array.length r.H.row_max);
  Alcotest.(check bool) "residual positive (still diffusing)" true
    (r.H.final_residual > 0)

let test_heat_spreads_from_centre () =
  let _, r = H.run ~max_iters:20 ~fault:Fault.No_fault () in
  let gw = 24 in
  let at x y = r.H.field.((y * gw) + x) in
  (* the hot spot was at (12, 6): the centre must dominate the corners *)
  Alcotest.(check bool) "centre hotter than corner" true (at 12 6 > at 0 0);
  (* rough radial symmetry in x across the centre *)
  Alcotest.(check bool) "left/right neighbours warmed" true
    (at 11 6 > 0 && at 13 6 > 0);
  (* everything bounded by the deposit *)
  Array.iter
    (fun v -> if v < 0 || v > 1_000_000 then Alcotest.fail "out of bounds")
    r.H.field

let test_mass_approximately_conserved () =
  let _, r = H.run ~max_iters:8 ~fault:Fault.No_fault () in
  let total = Array.fold_left ( + ) 0 r.H.field in
  (* integer division and wall absorption lose a little *)
  Alcotest.(check bool) "within 2% of the deposit" true
    (total > 980_000 && total <= 1_000_000)

let test_row_max_matches_field () =
  let _, r = H.run ~max_iters:10 ~fault:Fault.No_fault () in
  let gw = 24 and h = 6 in
  Array.iteri
    (fun ry expected ->
      let m = ref 0 in
      for y = ry * h to ((ry + 1) * h) - 1 do
        for x = 0 to gw - 1 do
          if r.H.field.((y * gw) + x) > !m then m := r.H.field.((y * gw) + x)
        done
      done;
      Alcotest.(check int) (Printf.sprintf "row %d max" ry) !m expected)
    r.H.row_max

let test_comm_split_in_traces () =
  let o, _ = H.run ~max_iters:2 ~fault:Fault.No_fault () in
  let ts = o.R.traces in
  let tr = Trace_set.find_exn ts ~pid:3 ~tid:0 in
  let names = Trace.to_strings (Trace_set.symtab ts) tr in
  Alcotest.(check bool) "MPI_Comm_split traced" true
    (List.mem "MPI_Comm_split" names);
  Alcotest.(check bool) "halo exchange traced" true
    (List.mem "ExchangeHalo2D" names)

let test_skip_halo_hangs () =
  let o, _ = H.run ~fault:(Fault.Skip_function { rank = 1; func = "ExchangeHalo2D" }) () in
  Alcotest.(check bool) "neighbours hang" true (o.R.deadlocked <> [])

let test_wrong_size_hangs () =
  let o, _ = H.run ~fault:(Fault.Wrong_collective_size { rank = 4 }) () in
  Alcotest.(check int) "all six masters hang" 6 (List.length o.R.deadlocked);
  Alcotest.(check bool) "diagnosed" true (o.R.collective_mismatch <> None)

let test_nocritical_flagged () =
  let o, _ = H.run ~fault:(Fault.No_critical { rank = 5; thread = 1 }) () in
  match o.R.races with
  | [ race ] ->
    Alcotest.(check int) "process" 5 race.R.race_pid;
    Alcotest.(check (list int)) "thread" [ 1 ] race.R.tids
  | l -> Alcotest.fail (Printf.sprintf "expected 1 violation, got %d" (List.length l))

let prop_deterministic =
  qtest "heat2d is a pure function of its seed"
    QCheck2.Gen.(int_range 0 50)
    (fun seed ->
      let _, a = H.run ~px:2 ~py:2 ~w:4 ~h:4 ~max_iters:4 ~seed ~fault:Fault.No_fault () in
      let _, b = H.run ~px:2 ~py:2 ~w:4 ~h:4 ~max_iters:4 ~seed ~fault:Fault.No_fault () in
      a = b)

let prop_grid_shapes =
  qtest "any grid shape runs cleanly"
    QCheck2.Gen.(
      triple (int_range 1 3) (int_range 1 3) (int_range 0 100))
    (fun (px, py, seed) ->
      let o, r =
        H.run ~px ~py ~w:4 ~h:3 ~max_iters:3 ~seed ~fault:Fault.No_fault ()
      in
      o.R.deadlocked = [] && Array.length r.H.field = px * 4 * py * 3)

let () =
  Alcotest.run "heat2d"
    [ ( "physics",
        [ Alcotest.test_case "normal run" `Quick test_normal_run;
          Alcotest.test_case "spreads from centre" `Quick test_heat_spreads_from_centre;
          Alcotest.test_case "mass conserved" `Quick test_mass_approximately_conserved;
          Alcotest.test_case "row max collective" `Quick test_row_max_matches_field ] );
      ( "traces",
        [ Alcotest.test_case "comm_split traced" `Quick test_comm_split_in_traces ] );
      ( "faults",
        [ Alcotest.test_case "skip halo hangs" `Quick test_skip_halo_hangs;
          Alcotest.test_case "wrong size hangs" `Quick test_wrong_size_hangs;
          Alcotest.test_case "noCritical flagged" `Quick test_nocritical_flagged ] );
      ( "properties", [ prop_deterministic; prop_grid_shapes ] ) ]
