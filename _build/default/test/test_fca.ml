open Difftrace_fca
module Bitset = Difftrace_util.Bitset
module Symtab = Difftrace_trace.Symtab
module Nlr = Difftrace_nlr.Nlr

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Attributes (Table V)                                                *)
(* ------------------------------------------------------------------ *)

let nlr_of ?(k = 10) names_string =
  let st = Symtab.create () in
  let ids =
    Array.of_list
      (List.map
         (fun c -> Symtab.intern st (String.make 1 c))
         (List.init (String.length names_string) (String.get names_string)))
  in
  let table = Nlr.Loop_table.create () in
  (st, Nlr.of_ids ~table ~k ids)

let spec g f = { Attributes.granularity = g; freq_mode = f }

let test_attr_names () =
  Alcotest.(check string) "sing.actual" "sing.actual"
    (Attributes.name (spec Attributes.Single Attributes.Actual));
  Alcotest.(check string) "doub.noFreq" "doub.noFreq"
    (Attributes.name (spec Attributes.Double Attributes.No_freq));
  Alcotest.(check int) "six specs" 6 (List.length Attributes.all);
  List.iter
    (fun s ->
      let s' = Attributes.of_name (Attributes.name s) in
      Alcotest.(check string) "roundtrip" (Attributes.name s) (Attributes.name s'))
    Attributes.all;
  Alcotest.check_raises "bad name" (Invalid_argument "Attributes.of_name: nope")
    (fun () -> ignore (Attributes.of_name "nope"))

let test_single_nofreq () =
  let st, nlr = nlr_of "abab" in
  Alcotest.(check (list string)) "loop token once" [ "L0" ]
    (Attributes.of_nlr (spec Attributes.Single Attributes.No_freq) st nlr)

let test_single_actual_counts_loop_multiplicity () =
  let st, nlr = nlr_of "cababab" in
  Alcotest.(check (list string)) "frequency includes loop count"
    [ "L0:3"; "c:1" ]
    (Attributes.of_nlr (spec Attributes.Single Attributes.Actual) st nlr)

let test_single_log10_buckets () =
  let st, nlr = nlr_of (String.concat "" (List.init 150 (fun _ -> "ab"))) in
  Alcotest.(check (list string)) "150 iterations -> bucket e2" [ "L0:e2" ]
    (Attributes.of_nlr (spec Attributes.Single Attributes.Log10) st nlr)

let test_double_pairs () =
  let st, nlr = nlr_of "xyz" in
  Alcotest.(check (list string)) "consecutive pairs"
    [ "x->y:1"; "y->z:1" ]
    (Attributes.of_nlr (spec Attributes.Double Attributes.Actual) st nlr)

let test_double_nofreq_dedupes () =
  let st, nlr = nlr_of ~k:1 "xyxzxyxz" in
  let attrs = Attributes.of_nlr (spec Attributes.Double Attributes.No_freq) st nlr in
  Alcotest.(check bool) "pair x->y present once" true (List.mem "x->y" attrs);
  Alcotest.(check bool) "sorted unique" true
    (List.sort_uniq String.compare attrs = attrs)

(* ------------------------------------------------------------------ *)
(* Context                                                             *)
(* ------------------------------------------------------------------ *)

(* the paper's Table IV *)
let odd_even_context () =
  let common = [ "MPI_Init"; "MPI_Comm_size"; "MPI_Comm_rank"; "MPI_Finalize" ] in
  Context.of_attr_sets
    [ ("T0", "L0" :: common); ("T1", "L1" :: common); ("T2", "L0" :: common);
      ("T3", "L1" :: common) ]

let test_context_shape () =
  let ctx = odd_even_context () in
  Alcotest.(check int) "objects" 4 (Context.n_objects ctx);
  Alcotest.(check int) "attrs" 6 (Context.n_attrs ctx);
  Alcotest.(check string) "label" "T2" (Context.object_label ctx 2);
  Alcotest.(check bool) "T0 has L0" true
    (Context.has ctx 0 0 (* "L0" was first seen *));
  Alcotest.(check bool) "T1 lacks L0" false (Context.has ctx 1 0)

let test_context_derivations () =
  let ctx = odd_even_context () in
  let evens = Bitset.of_list 4 [ 0; 2 ] in
  let common = Context.common_attrs ctx evens in
  (* L0 + the 4 shared functions *)
  Alcotest.(check int) "evens share 5 attrs" 5 (Bitset.cardinal common);
  let back = Context.common_objects ctx common in
  Alcotest.(check (list int)) "closure extent" [ 0; 2 ] (Bitset.to_list back);
  (* empty object set -> all attributes *)
  Alcotest.(check int) "common_attrs of none = all" 6
    (Bitset.cardinal (Context.common_attrs ctx (Bitset.create 4)))

let test_context_jaccard () =
  let ctx = odd_even_context () in
  Alcotest.(check (float 1e-9)) "same group" 1.0 (Context.jaccard ctx 0 2);
  Alcotest.(check (float 1e-9)) "cross group (4 shared / 6 union)" (4.0 /. 6.0)
    (Context.jaccard ctx 0 1)

let test_context_table_render () =
  let s = Context.to_table (odd_even_context ()) in
  Alcotest.(check bool) "mentions T3" true
    (String.split_on_char '\n' s
    |> List.exists (fun l -> String.length l > 2 && String.sub l 0 2 = "| "))

(* ------------------------------------------------------------------ *)
(* Lattice                                                             *)
(* ------------------------------------------------------------------ *)

let test_lattice_odd_even () =
  let ctx = odd_even_context () in
  let lat = Lattice.of_context_incremental ctx in
  (* Fig. 3: top, two mid concepts, bottom *)
  Alcotest.(check int) "four concepts" 4 (Lattice.size lat);
  let top = Lattice.top lat and bottom = Lattice.bottom lat in
  Alcotest.(check int) "top has all objects" 4 (Bitset.cardinal top.Lattice.extent);
  Alcotest.(check int) "top intent = shared 4" 4 (Bitset.cardinal top.Lattice.intent);
  Alcotest.(check int) "bottom empty extent" 0 (Bitset.cardinal bottom.Lattice.extent);
  Alcotest.(check int) "bottom full intent" 6 (Bitset.cardinal bottom.Lattice.intent)

let test_lattice_object_concept () =
  let ctx = odd_even_context () in
  let lat = Lattice.of_context_incremental ctx in
  let c = Lattice.object_concept lat 1 in
  Alcotest.(check (list int)) "T1's concept groups odds" [ 1; 3 ]
    (Bitset.to_list c.Lattice.extent)

let test_lattice_covers () =
  let ctx = odd_even_context () in
  let lat = Lattice.of_context_incremental ctx in
  let covers = Lattice.covers lat in
  (* diamond: bottom covered by two mids, two mids covered by top *)
  Alcotest.(check int) "four covering edges" 4 (List.length covers)

let test_batch_equals_incremental_fixture () =
  let ctx = odd_even_context () in
  Alcotest.(check bool) "same lattice" true
    (Lattice.equal (Lattice.of_context_batch ctx) (Lattice.of_context_incremental ctx))

let test_lattice_empty_context () =
  let ctx = Context.of_attr_sets [] in
  let lat_b = Lattice.of_context_batch ctx in
  let lat_i = Lattice.of_context_incremental ctx in
  Alcotest.(check bool) "both degenerate and equal" true (Lattice.equal lat_b lat_i)

let test_lattice_object_with_all_attrs () =
  (* one object carries every attribute: bottom extent is nonempty *)
  let ctx =
    Context.of_attr_sets [ ("rich", [ "a"; "b"; "c" ]); ("poor", [ "a" ]) ]
  in
  let lat = Lattice.of_context_incremental ctx in
  let bottom = Lattice.bottom lat in
  Alcotest.(check (list int)) "bottom holds the rich object" [ 0 ]
    (Bitset.to_list bottom.Lattice.extent);
  Alcotest.(check bool) "batch agrees" true
    (Lattice.equal lat (Lattice.of_context_batch ctx))

let test_lattice_to_dot () =
  let ctx = odd_even_context () in
  let lat = Lattice.of_context_incremental ctx in
  let dot = Lattice.to_dot ~title:"Fig. 3" ctx lat in
  let contains sub =
    let n = String.length sub and h = String.length dot in
    let rec go i = i + n <= h && (String.sub dot i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "digraph" true (contains "digraph lattice");
  Alcotest.(check bool) "title" true (contains "Fig. 3");
  Alcotest.(check bool) "four nodes" true
    (contains "c0 [" && contains "c3 [");
  Alcotest.(check bool) "an edge" true (contains "->");
  Alcotest.(check bool) "attribute appears" true (contains "L0")

let ctx_gen =
  QCheck2.Gen.(
    let* n_obj = int_range 0 7 in
    let* n_attr = int_range 1 8 in
    let* rows =
      list_repeat n_obj
        (list_size (int_range 0 n_attr) (int_range 0 (n_attr - 1)))
    in
    return
      (Context.of_attr_sets
         (List.mapi
            (fun i attrs ->
              ( Printf.sprintf "o%d" i,
                List.sort_uniq String.compare
                  (List.map (Printf.sprintf "a%d") attrs) ))
            rows)))

let prop_godin_equals_next_closure =
  qtest "Godin incremental = Ganter NextClosure" ~count:300 ctx_gen (fun ctx ->
      Lattice.equal (Lattice.of_context_batch ctx) (Lattice.of_context_incremental ctx))

let prop_concepts_are_closed =
  qtest "every concept is a Galois fixpoint" ctx_gen (fun ctx ->
      let lat = Lattice.of_context_incremental ctx in
      Array.for_all
        (fun c ->
          Bitset.equal (Context.common_attrs ctx c.Lattice.extent) c.Lattice.intent
          && Bitset.equal (Context.common_objects ctx c.Lattice.intent) c.Lattice.extent)
        (Lattice.concepts lat))

let prop_lattice_jaccard_equals_context =
  qtest "lattice-derived JSM = context JSM (paper §II-E)" ctx_gen (fun ctx ->
      let n = Context.n_objects ctx in
      n = 0
      ||
      let lat = Lattice.of_context_incremental ctx in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if Float.abs (Lattice.jaccard lat i j -. Context.jaccard ctx i j) > 1e-9
          then ok := false
        done
      done;
      !ok)

let prop_closure_extensive_idempotent =
  qtest "closure is extensive, monotone and idempotent"
    QCheck2.Gen.(
      let* ctx = ctx_gen in
      let n = Context.n_attrs ctx in
      let* attrs =
        if n = 0 then return [] else list_size (int_range 0 n) (int_range 0 (n - 1))
      in
      return (ctx, attrs))
    (fun (ctx, attrs) ->
      let a = Bitset.of_list (Context.n_attrs ctx) attrs in
      let c = Context.closure ctx a in
      Bitset.subset a c && Bitset.equal (Context.closure ctx c) c)

let () =
  Alcotest.run "fca"
    [ ( "attributes",
        [ Alcotest.test_case "names" `Quick test_attr_names;
          Alcotest.test_case "single noFreq" `Quick test_single_nofreq;
          Alcotest.test_case "single actual + loop multiplicity" `Quick
            test_single_actual_counts_loop_multiplicity;
          Alcotest.test_case "single log10 buckets" `Quick test_single_log10_buckets;
          Alcotest.test_case "double pairs" `Quick test_double_pairs;
          Alcotest.test_case "double noFreq dedupe" `Quick test_double_nofreq_dedupes ] );
      ( "context",
        [ Alcotest.test_case "shape (Table IV)" `Quick test_context_shape;
          Alcotest.test_case "Galois derivations" `Quick test_context_derivations;
          Alcotest.test_case "jaccard" `Quick test_context_jaccard;
          Alcotest.test_case "table render" `Quick test_context_table_render ] );
      ( "lattice",
        [ Alcotest.test_case "odd/even (Fig. 3)" `Quick test_lattice_odd_even;
          Alcotest.test_case "object concept" `Quick test_lattice_object_concept;
          Alcotest.test_case "covering edges" `Quick test_lattice_covers;
          Alcotest.test_case "batch = incremental (fixture)" `Quick
            test_batch_equals_incremental_fixture;
          Alcotest.test_case "empty context" `Quick test_lattice_empty_context;
          Alcotest.test_case "object with all attrs" `Quick
            test_lattice_object_with_all_attrs;
          Alcotest.test_case "to_dot" `Quick test_lattice_to_dot;
          prop_godin_equals_next_closure;
          prop_concepts_are_closed;
          prop_lattice_jaccard_equals_context;
          prop_closure_extensive_idempotent ] ) ]
