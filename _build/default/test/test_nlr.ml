open Difftrace_nlr
open Difftrace_trace

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let symtab_of names =
  let t = Symtab.create () in
  List.iter (fun n -> ignore (Symtab.intern t n)) names;
  t

(* builds an ID sequence from single-letter names *)
let seq symtab s =
  Array.of_list
    (List.map
       (fun c -> Symtab.intern symtab (String.make 1 c))
       (List.init (String.length s) (String.get s)))

let summarize ?(k = 10) ?repeats ?table symtab s =
  let table = match table with Some t -> t | None -> Nlr.Loop_table.create () in
  (Nlr.of_ids ~table ~k ?repeats (seq symtab s), table)

let strings symtab nlr = String.concat ";" (Nlr.to_strings symtab nlr)

let test_no_loop () =
  let st = symtab_of [] in
  let nlr, _ = summarize st "abcdef" in
  Alcotest.(check string) "unchanged" "a;b;c;d;e;f" (strings st nlr)

let test_simple_loop () =
  let st = symtab_of [] in
  let nlr, table = summarize st "abababab" in
  Alcotest.(check string) "folded" "L0^4" (strings st nlr);
  Alcotest.(check string) "body" "[a-b]" (Nlr.body_to_string ~table st 0)

let test_two_iteration_loop () =
  (* Table III needs L0^2 from just two iterations (repeats = 2) *)
  let st = symtab_of [] in
  let nlr, _ = summarize st "xyxy" in
  Alcotest.(check string) "two copies fold" "L0^2" (strings st nlr)

let test_repeats_three_threshold () =
  let st = symtab_of [] in
  let nlr, _ = summarize ~repeats:3 st "xyxy" in
  Alcotest.(check string) "two copies do NOT fold at repeats=3" "x;y;x;y"
    (strings st nlr);
  let nlr, _ = summarize ~repeats:3 st "xyxyxy" in
  Alcotest.(check string) "three copies fold" "L0^3" (strings st nlr)

let test_loop_with_prefix_suffix () =
  let st = symtab_of [] in
  let nlr, _ = summarize st "iababababf" in
  Alcotest.(check string) "stem kept" "i;L0^4;f" (strings st nlr)

let test_single_symbol_loop () =
  let st = symtab_of [] in
  let nlr, _ = summarize st "aaaaa" in
  Alcotest.(check string) "unary body" "L0^5" (strings st nlr)

let test_nested_loops () =
  let st = symtab_of [] in
  (* (a b b)(a b b) : inner bb folds first, then the outer pair *)
  let nlr, table = summarize st "abbabb" in
  Alcotest.(check string) "outer loop" "L1^2" (strings st nlr);
  Alcotest.(check string) "outer body references inner loop" "[a-L0^2]"
    (Nlr.body_to_string ~table st 1)

let test_k_bounds_window () =
  let st = symtab_of [] in
  (* repeating unit of length 4 is not folded when k = 3 *)
  let nlr, _ = summarize ~k:3 st "abcdabcd" in
  Alcotest.(check string) "k too small" "a;b;c;d;a;b;c;d" (strings st nlr);
  let nlr, _ = summarize ~k:4 st "abcdabcd" in
  Alcotest.(check string) "k sufficient" "L0^2" (strings st nlr)

let test_different_counts_not_isomorphic () =
  let st = symtab_of [] in
  (* aa b aaa b : L(a)^2 and L(a)^3 differ, so the outer pair must NOT fold *)
  let nlr, _ = summarize st "aabaaab" in
  Alcotest.(check string) "counts distinguish loops" "L0^2;b;L0^3;b" (strings st nlr)

let test_table_shared_across_traces () =
  let st = symtab_of [] in
  let table = Nlr.Loop_table.create () in
  let nlr1, _ = summarize ~table st "srsrsrsr" in
  let nlr2, _ = summarize ~table st "rsrsrs" in
  (* Loop IDs must be consistent across traces of one execution *)
  Alcotest.(check string) "first trace uses L0" "L0^4" (strings st nlr1);
  Alcotest.(check string) "second trace's distinct body gets L1" "L1^3"
    (strings st nlr2);
  Alcotest.(check int) "two shared bodies" 2 (Nlr.Loop_table.size table);
  (* a later trace with the first body shape reuses L0 *)
  let nlr3, _ = summarize ~table st "srsr" in
  Alcotest.(check string) "L0 reused across traces" "L0^2" (strings st nlr3)

let test_paper_odd_even () =
  (* the §II example: traces reduce to Table III *)
  let st = symtab_of [ "I"; "R"; "K"; "s"; "r"; "F" ] in
  let table = Nlr.Loop_table.create () in
  let t0, _ = summarize ~table st "IRKsrsrF" in
  let t1, _ = summarize ~table st "IRKrsrsrsrsF" in
  Alcotest.(check string) "T0 = prologue L^2 epilogue" "I;R;K;L0^2;F" (strings st t0);
  Alcotest.(check string) "T1 = prologue L'^4 epilogue" "I;R;K;L1^4;F" (strings st t1)

let test_length_and_factor () =
  let st = symtab_of [] in
  let nlr, _ = summarize st "abababab" in
  Alcotest.(check int) "length" 1 (Nlr.length nlr);
  Alcotest.(check (float 1e-9)) "factor" 8.0 (Nlr.reduction_factor nlr);
  let empty, _ = summarize st "" in
  Alcotest.(check (float 1e-9)) "empty factor" 1.0 (Nlr.reduction_factor empty)

let test_token_multiplicity () =
  let st = symtab_of [] in
  let nlr, _ = summarize st "cabababd" in
  match nlr.Nlr.elems with
  | [| Nlr.Sym c; Nlr.Loop _ as l; Nlr.Sym d |] ->
    Alcotest.(check string) "sym token" "c" (Nlr.token st (Nlr.Sym c));
    Alcotest.(check string) "loop token" "L0" (Nlr.token st l);
    Alcotest.(check int) "sym multiplicity" 1 (Nlr.multiplicity (Nlr.Sym d));
    Alcotest.(check int) "loop multiplicity" 3 (Nlr.multiplicity l)
  | _ -> Alcotest.fail "unexpected structure"

let test_validation () =
  let table = Nlr.Loop_table.create () in
  Alcotest.check_raises "k >= 1" (Invalid_argument "Nlr.of_ids: k must be >= 1")
    (fun () -> ignore (Nlr.of_ids ~table ~k:0 [| 1 |]));
  Alcotest.check_raises "repeats >= 2"
    (Invalid_argument "Nlr.of_ids: repeats must be >= 2") (fun () ->
      ignore (Nlr.of_ids ~table ~repeats:1 [| 1 |]));
  Alcotest.check_raises "unknown body" (Invalid_argument "Loop_table.body")
    (fun () -> ignore (Nlr.Loop_table.body table 3))

(* --- the key property: NLR is a lossless abstraction ---------------- *)

let ids_gen =
  QCheck2.Gen.(
    let* alpha = int_range 1 5 in
    let* n = int_range 0 300 in
    let* l = list_repeat n (int_range 0 (alpha - 1)) in
    return (Array.of_list l))

let prop_lossless =
  qtest "expand (of_ids ids) = ids" ~count:500 ids_gen (fun ids ->
      let table = Nlr.Loop_table.create () in
      let nlr = Nlr.of_ids ~table ~k:6 ids in
      Nlr.expand ~table nlr = ids)

let prop_lossless_various_k =
  qtest "lossless for every k"
    QCheck2.Gen.(pair ids_gen (int_range 1 20))
    (fun (ids, k) ->
      let table = Nlr.Loop_table.create () in
      let nlr = Nlr.of_ids ~table ~k ids in
      Nlr.expand ~table nlr = ids)

let prop_never_longer =
  qtest "summary never longer than input" ids_gen (fun ids ->
      let table = Nlr.Loop_table.create () in
      Nlr.length (Nlr.of_ids ~table ids) <= Array.length ids)

let prop_shared_table_lossless =
  qtest "sharing a loop table across traces stays lossless"
    QCheck2.Gen.(pair ids_gen ids_gen)
    (fun (a, b) ->
      let table = Nlr.Loop_table.create () in
      let na = Nlr.of_ids ~table ~k:6 a in
      let nb = Nlr.of_ids ~table ~k:6 b in
      Nlr.expand ~table na = a && Nlr.expand ~table nb = b)

let () =
  Alcotest.run "nlr"
    [ ( "reduce",
        [ Alcotest.test_case "no loop" `Quick test_no_loop;
          Alcotest.test_case "simple loop" `Quick test_simple_loop;
          Alcotest.test_case "two iterations fold" `Quick test_two_iteration_loop;
          Alcotest.test_case "repeats=3 threshold" `Quick test_repeats_three_threshold;
          Alcotest.test_case "prefix/suffix stem" `Quick test_loop_with_prefix_suffix;
          Alcotest.test_case "unary body" `Quick test_single_symbol_loop;
          Alcotest.test_case "nested" `Quick test_nested_loops;
          Alcotest.test_case "k bounds window" `Quick test_k_bounds_window;
          Alcotest.test_case "counts distinguish" `Quick
            test_different_counts_not_isomorphic ] );
      ( "table",
        [ Alcotest.test_case "shared across traces" `Quick
            test_table_shared_across_traces;
          Alcotest.test_case "paper odd/even (Table III)" `Quick test_paper_odd_even ] );
      ( "accessors",
        [ Alcotest.test_case "length/factor" `Quick test_length_and_factor;
          Alcotest.test_case "token/multiplicity" `Quick test_token_multiplicity;
          Alcotest.test_case "validation" `Quick test_validation ] );
      ( "properties",
        [ prop_lossless; prop_lossless_various_k; prop_never_longer;
          prop_shared_table_lossless ] ) ]
