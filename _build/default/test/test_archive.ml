open Difftrace_parlot
open Difftrace_trace
module R = Difftrace_simulator.Runtime
module Fault = Difftrace_simulator.Fault
module Odd_even = Difftrace_workloads.Odd_even
module Stacktree = Difftrace_stacktree.Stacktree

let tmpdir name =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) ("difftrace_" ^ name) in
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  dir

let set_equal ts1 ts2 =
  let dump ts =
    Array.to_list (Trace_set.traces ts)
    |> List.map (fun tr ->
           ( tr.Trace.pid,
             tr.Trace.tid,
             tr.Trace.truncated,
             Trace.to_strings (Trace_set.symtab ts) tr ))
  in
  dump ts1 = dump ts2

(* ------------------------------------------------------------------ *)
(* Archive                                                             *)
(* ------------------------------------------------------------------ *)

let test_archive_roundtrip () =
  let outcome, _ = Odd_even.run ~np:4 ~fault:Fault.No_fault () in
  let dir = tmpdir "roundtrip" in
  let n = Archive.save ~dir outcome.R.traces in
  Alcotest.(check int) "one file per thread" 4 n;
  let loaded = Archive.load ~dir in
  Alcotest.(check bool) "identical traces after reload" true
    (set_equal outcome.R.traces loaded)

let test_archive_preserves_truncation () =
  let outcome, _ =
    Odd_even.run ~np:8 ~fault:(Fault.Deadlock_recv { rank = 5; after_iter = 3 }) ()
  in
  let dir = tmpdir "truncated" in
  ignore (Archive.save ~dir outcome.R.traces);
  let loaded = Archive.load ~dir in
  Alcotest.(check bool) "truncation flags survive" true
    (set_equal outcome.R.traces loaded);
  let tr = Trace_set.find_exn loaded ~pid:5 ~tid:0 in
  Alcotest.(check bool) "rank 5 still truncated" true tr.Trace.truncated

let test_archive_reanalysis_offline () =
  (* the paper's workflow: record once, re-filter offline *)
  let outcome, _ = Odd_even.run ~np:4 ~fault:Fault.No_fault () in
  let dir = tmpdir "offline" in
  ignore (Archive.save ~dir outcome.R.traces);
  let loaded = Archive.load ~dir in
  let a = Difftrace.Pipeline.analyze (Difftrace.Config.make ()) loaded in
  Alcotest.(check string) "Table III reproducible from disk"
    "MPI_Init;MPI_Comm_rank;MPI_Comm_size;L0^2;MPI_Finalize"
    (String.concat ";"
       (Difftrace_nlr.Nlr.to_strings a.Difftrace.Pipeline.symtab
          (fst a.Difftrace.Pipeline.nlrs.(0))))

let test_archive_corrupt_manifest () =
  let dir = tmpdir "corrupt" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let oc = open_out (Archive.manifest_file dir) in
  output_string oc "not an archive\n";
  close_out oc;
  Alcotest.check_raises "bad magic" (Invalid_argument "Archive.load: bad magic")
    (fun () -> ignore (Archive.load ~dir))

(* ------------------------------------------------------------------ *)
(* Stack trees                                                         *)
(* ------------------------------------------------------------------ *)

let test_final_stack_reconstruction () =
  let symtab = Symtab.create () in
  let id n = Symtab.intern symtab n in
  let tr =
    Trace.make ~pid:0 ~tid:0 ~truncated:true
      [| Event.Call (id "main"); Event.Call (id "f"); Event.Return (id "f");
         Event.Call (id "g"); Event.Call (id "MPI_Recv") |]
  in
  Alcotest.(check (list string)) "stuck inside main>g>MPI_Recv"
    [ "main"; "g"; "MPI_Recv" ]
    (Stacktree.final_stack symtab tr)

let test_final_stack_balanced () =
  let symtab = Symtab.create () in
  let id n = Symtab.intern symtab n in
  let tr =
    Trace.make ~pid:0 ~tid:0 ~truncated:false
      [| Event.Call (id "main"); Event.Call (id "f"); Event.Return (id "f");
         Event.Return (id "main") |]
  in
  Alcotest.(check (list string)) "balanced trace -> empty stack" []
    (Stacktree.final_stack symtab tr)

let test_final_stack_unmatched_return () =
  let symtab = Symtab.create () in
  let id n = Symtab.intern symtab n in
  let tr =
    Trace.make ~pid:0 ~tid:0 ~truncated:false
      [| Event.Call (id "main"); Event.Return (id "other") |]
  in
  Alcotest.(check (list string)) "unmatched return ignored" [ "main" ]
    (Stacktree.final_stack symtab tr)

let test_stacktree_hung_run () =
  (* dlBug: STAT-style view of where every rank is stuck *)
  let outcome, _ =
    Odd_even.run ~np:8 ~fault:(Fault.Deadlock_recv { rank = 3; after_iter = 2 }) ()
  in
  let tree = Stacktree.build outcome.R.traces in
  (* everyone still alive is under main > oddEvenSort > MPI_* *)
  (match tree.Stacktree.roots with
  | [ root ] ->
    Alcotest.(check string) "root frame" "main" root.Stacktree.frame;
    Alcotest.(check bool) "root holds the hung ranks" true
      (List.length root.Stacktree.members >= 5)
  | _ -> Alcotest.fail "expected a single main root");
  let classes = Stacktree.equivalence_classes tree in
  Alcotest.(check bool) "at least one stuck class" true (List.length classes >= 1);
  let total =
    List.fold_left (fun acc (_, members) -> acc + List.length members) 0 classes
  in
  Alcotest.(check int) "every rank is in exactly one class" 8 total;
  (* the injected rank is stuck under main > oddEvenSort > MPI_Recv *)
  let rank3_class =
    List.find (fun (_, members) -> List.mem (3, 0) members) classes
  in
  Alcotest.(check (list string)) "rank 3's stack"
    [ "main"; "oddEvenSort"; "MPI_Recv" ]
    (fst rank3_class);
  let rendered = Stacktree.render tree in
  Alcotest.(check bool) "renders frames" true (String.length rendered > 50)

let test_stacktree_clean_run_all_idle () =
  let outcome, _ = Odd_even.run ~np:4 ~fault:Fault.No_fault () in
  let tree = Stacktree.build outcome.R.traces in
  Alcotest.(check int) "no live frames" 0 (List.length tree.Stacktree.roots);
  Alcotest.(check int) "all idle" 4 (List.length tree.Stacktree.idle)

(* ------------------------------------------------------------------ *)
(* Extra collectives                                                   *)
(* ------------------------------------------------------------------ *)

module Api = Difftrace_simulator.Api

let clean outcome =
  Alcotest.(check (list (pair int int))) "no deadlock" [] outcome.R.deadlocked

let test_allgather () =
  let outcome =
    R.run ~np:3 (fun env ->
        let r = Api.allgather env [| R.pid env * 10 |] in
        Alcotest.(check (array int)) "rank-ordered concat" [| 0; 10; 20 |] r)
  in
  clean outcome

let test_gather () =
  let outcome =
    R.run ~np:3 (fun env ->
        let r = Api.gather env ~root:1 [| R.pid env; R.pid env |] in
        if R.pid env = 1 then
          Alcotest.(check (array int)) "root" [| 0; 0; 1; 1; 2; 2 |] r
        else Alcotest.(check (array int)) "non-root" [||] r)
  in
  clean outcome

let test_scatter () =
  let outcome =
    R.run ~np:3 (fun env ->
        let data = if R.pid env = 0 then [| 10; 11; 20; 21; 30; 31 |] else [||] in
        let r = Api.scatter env ~root:0 ~count:2 data in
        Alcotest.(check (array int)) "slice"
          [| ((R.pid env + 1) * 10); ((R.pid env + 1) * 10) + 1 |]
          r)
  in
  clean outcome

let test_scatter_bad_buffer_hangs () =
  let outcome =
    R.run ~np:2 (fun env ->
        let data = if R.pid env = 0 then [| 1 |] (* too short *) else [||] in
        ignore (Api.scatter env ~root:0 ~count:2 data))
  in
  Alcotest.(check int) "hangs" 2 (List.length outcome.R.deadlocked);
  Alcotest.(check bool) "diagnosed" true (outcome.R.collective_mismatch <> None)

let test_alltoall () =
  let outcome =
    R.run ~np:2 (fun env ->
        (* rank r sends [r*100 + d] to rank d *)
        let data = [| (R.pid env * 100) + 0; (R.pid env * 100) + 1 |] in
        let r = Api.alltoall env ~count:1 data in
        Alcotest.(check (array int)) "transposed"
          [| 0 + R.pid env; 100 + R.pid env |]
          r)
  in
  clean outcome

let test_scan () =
  let outcome =
    R.run ~np:4 (fun env ->
        let r = Api.scan env ~op:R.Op_sum [| 1 |] in
        Alcotest.(check (array int)) "inclusive prefix" [| R.pid env + 1 |] r)
  in
  clean outcome

(* ------------------------------------------------------------------ *)
(* Communicators                                                       *)
(* ------------------------------------------------------------------ *)

let test_comm_split_groups () =
  let outcome =
    R.run ~np:6 (fun env ->
        let rank = R.pid env in
        (* evens and odds form separate communicators *)
        let c = Api.comm_split env ~color:(rank mod 2) ~key:rank in
        (* sum within the group *)
        let s = Api.allreduce ~comm:c env ~op:R.Op_sum [| rank |] in
        let expected = if rank mod 2 = 0 then 0 + 2 + 4 else 1 + 3 + 5 in
        Alcotest.(check (array int)) "group sum" [| expected |] s;
        (* world collectives still work alongside *)
        let w = Api.allreduce env ~op:R.Op_sum [| 1 |] in
        Alcotest.(check (array int)) "world size" [| 6 |] w)
  in
  clean outcome

let test_comm_split_key_orders_members () =
  let outcome =
    R.run ~np:4 (fun env ->
        let rank = R.pid env in
        (* reverse ordering via descending keys *)
        let c = Api.comm_split env ~color:0 ~key:(- rank) in
        Alcotest.(check (array int)) "members sorted by key"
          [| 3; 2; 1; 0 |]
          c.R.members;
        ignore (Api.barrier ~comm:c env))
  in
  clean outcome

let test_comm_split_allgather_order () =
  let outcome =
    R.run ~np:4 (fun env ->
        let rank = R.pid env in
        let c = Api.comm_split env ~color:(rank / 2) ~key:rank in
        let g = Api.allgather ~comm:c env [| rank * 10 |] in
        let expected = if rank < 2 then [| 0; 10 |] else [| 20; 30 |] in
        Alcotest.(check (array int)) "gathered in comm-rank order" expected g)
  in
  clean outcome

let test_comm_mismatched_split_hangs () =
  (* a classic split bug: one rank computes a different color and its
     group can never complete a collective of the expected size...
     here rank 3 joins color 0's group while they expect it in group 1,
     so the collective *memberships* disagree -> derive_comm differs ->
     the groups deadlock *)
  let outcome =
    R.run ~np:4 (fun env ->
        let rank = R.pid env in
        let color = if rank = 3 then 0 else rank mod 2 in
        let c = Api.comm_split env ~color ~key:rank in
        (* ranks disagree about who is in which group only if their
           local view diverged; with allgather-based split all views
           agree, so instead simulate the bug by using the wrong comm
           size expectation: rank 3 then barriers on a comm whose other
           members never barrier on it *)
        if rank = 3 then ignore (Api.barrier ~comm:c env)
        else if rank mod 2 = 1 then ignore (Api.barrier ~comm:c env))
  in
  (* rank 1's group is {1}, it completes alone; rank 3 joined {0,2,3}
     but 0 and 2 never call barrier -> rank 3 hangs *)
  Alcotest.(check bool) "the misrouted rank hangs" true
    (List.mem (3, 0) outcome.R.deadlocked)


(* ------------------------------------------------------------------ *)
(* trace emission of the newer MPI wrappers                            *)
(* ------------------------------------------------------------------ *)

let trace_names outcome ~pid =
  let ts = outcome.R.traces in
  let tr = Trace_set.find_exn ts ~pid ~tid:0 in
  Trace.to_strings (Trace_set.symtab ts) tr

let test_sendrecv_trace_name () =
  let outcome =
    R.run ~np:2 (fun env ->
        let peer = 1 - R.pid env in
        ignore (Api.sendrecv env ~dst:peer ~src:peer [| 1 |]))
  in
  let names = trace_names outcome ~pid:0 in
  Alcotest.(check bool) "MPI_Sendrecv recorded" true
    (List.mem "MPI_Sendrecv" names);
  Alcotest.(check bool) "and returned" true (List.mem "ret MPI_Sendrecv" names)

let test_comm_split_trace_name () =
  let outcome =
    R.run ~np:2 (fun env ->
        ignore (Api.comm_split env ~color:0 ~key:(R.pid env)))
  in
  let names = trace_names outcome ~pid:1 in
  Alcotest.(check bool) "MPI_Comm_split recorded" true
    (List.mem "MPI_Comm_split" names)

let test_explore_reproducible () =
  let program env =
    Api.parallel env ~num_threads:3 (fun tenv ->
        Api.critical tenv (fun () -> ());
        Api.yield tenv)
  in
  let a = Difftrace_simulator.Explore.run ~np:2 ~seeds:[ 3; 1; 2 ] program in
  let b = Difftrace_simulator.Explore.run ~np:2 ~seeds:[ 1; 2; 3 ] program in
  Alcotest.(check bool) "seed order does not matter, results identical" true
    (a = b)

let test_archive_empty_set () =
  let ts = Trace_set.create (Symtab.create ()) [] in
  let dir = tmpdir "empty" in
  Alcotest.(check int) "zero files" 0 (Archive.save ~dir ts);
  Alcotest.(check int) "load empty" 0 (Trace_set.cardinal (Archive.load ~dir))

let () =
  Alcotest.run "archive+stacktree+collectives"
    [ ( "archive",
        [ Alcotest.test_case "roundtrip" `Quick test_archive_roundtrip;
          Alcotest.test_case "truncation preserved" `Quick
            test_archive_preserves_truncation;
          Alcotest.test_case "offline re-analysis" `Quick
            test_archive_reanalysis_offline;
          Alcotest.test_case "corrupt manifest" `Quick test_archive_corrupt_manifest ] );
      ( "stacktree",
        [ Alcotest.test_case "final stack" `Quick test_final_stack_reconstruction;
          Alcotest.test_case "balanced stack" `Quick test_final_stack_balanced;
          Alcotest.test_case "unmatched return" `Quick test_final_stack_unmatched_return;
          Alcotest.test_case "hung run classes" `Quick test_stacktree_hung_run;
          Alcotest.test_case "clean run idle" `Quick test_stacktree_clean_run_all_idle ] );
      ( "collectives",
        [ Alcotest.test_case "allgather" `Quick test_allgather;
          Alcotest.test_case "gather" `Quick test_gather;
          Alcotest.test_case "scatter" `Quick test_scatter;
          Alcotest.test_case "scatter bad buffer" `Quick test_scatter_bad_buffer_hangs;
          Alcotest.test_case "alltoall" `Quick test_alltoall;
          Alcotest.test_case "scan" `Quick test_scan ] );
      ( "api-traces",
        [ Alcotest.test_case "sendrecv name" `Quick test_sendrecv_trace_name;
          Alcotest.test_case "comm_split name" `Quick test_comm_split_trace_name;
          Alcotest.test_case "explore reproducible" `Quick test_explore_reproducible;
          Alcotest.test_case "empty archive" `Quick test_archive_empty_set ] );
      ( "communicators",
        [ Alcotest.test_case "split groups" `Quick test_comm_split_groups;
          Alcotest.test_case "key ordering" `Quick test_comm_split_key_orders_members;
          Alcotest.test_case "allgather order" `Quick test_comm_split_allgather_order;
          Alcotest.test_case "misrouted rank hangs" `Quick
            test_comm_mismatched_split_hangs ] ) ]

