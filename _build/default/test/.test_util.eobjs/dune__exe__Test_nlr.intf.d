test/test_nlr.mli:
