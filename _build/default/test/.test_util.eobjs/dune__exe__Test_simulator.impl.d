test/test_simulator.ml: Alcotest Api Array Difftrace_parlot Difftrace_simulator Difftrace_trace Difftrace_workloads Effect Explore Fault List Option Printf QCheck2 QCheck_alcotest Runtime Shm String
