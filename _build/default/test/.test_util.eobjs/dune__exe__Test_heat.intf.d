test/test_heat.mli:
