test/test_nlr.ml: Alcotest Array Difftrace_nlr Difftrace_trace List Nlr QCheck2 QCheck_alcotest String Symtab
