test/test_cluster.ml: Alcotest Array Bscore Dendrogram Difftrace_cluster Difftrace_fca Float Int Jsm Linkage List Option QCheck2 QCheck_alcotest String
