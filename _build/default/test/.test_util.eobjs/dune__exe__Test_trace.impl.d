test/test_trace.ml: Alcotest Array Difftrace_trace Event List Option QCheck2 QCheck_alcotest Symtab Trace Trace_set
