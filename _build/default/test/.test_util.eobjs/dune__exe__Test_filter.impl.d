test/test_filter.ml: Alcotest Array Difftrace_filter Difftrace_trace Event Filter List String Symtab Trace Trace_set
