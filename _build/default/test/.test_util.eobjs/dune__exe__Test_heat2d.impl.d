test/test_heat2d.ml: Alcotest Array Difftrace_simulator Difftrace_trace Difftrace_workloads Fault List Printf QCheck2 QCheck_alcotest Runtime
