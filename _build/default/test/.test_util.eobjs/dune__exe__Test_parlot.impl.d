test/test_parlot.ml: Alcotest Capture Difftrace_parlot Difftrace_trace List Lzw Printf QCheck2 QCheck_alcotest String Symtab Trace Trace_set Tracer
