test/test_util.ml: Alcotest Array Bitset Buffer Difftrace_util Int List Prng QCheck2 QCheck_alcotest Stats String Texttable Varint Vec
