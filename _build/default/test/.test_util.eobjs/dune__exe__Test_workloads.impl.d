test/test_workloads.ml: Alcotest Array Difftrace_nlr Difftrace_simulator Difftrace_trace Difftrace_workloads Fault Float Ilcs Int List Lulesh Odd_even Printf QCheck2 QCheck_alcotest Runtime Tsp
