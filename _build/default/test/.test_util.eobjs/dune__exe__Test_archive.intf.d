test/test_archive.mli:
