test/test_fca.mli:
