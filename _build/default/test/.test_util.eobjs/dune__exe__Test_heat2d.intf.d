test/test_heat2d.mli:
