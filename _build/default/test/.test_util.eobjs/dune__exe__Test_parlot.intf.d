test/test_parlot.mli:
