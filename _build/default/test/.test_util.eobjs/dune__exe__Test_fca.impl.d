test/test_fca.ml: Alcotest Array Attributes Context Difftrace_fca Difftrace_nlr Difftrace_trace Difftrace_util Float Lattice List Printf QCheck2 QCheck_alcotest String
