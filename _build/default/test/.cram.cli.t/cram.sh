  $ difftrace filters | head -6
  $ difftrace compare -w oddeven --np 16 -f 'swapBug(rank=5,after=7)'
  $ difftrace run -w ilcs -f 'wrongSize(rank=2)' | grep -E 'DEADLOCK|mismatch'
  $ difftrace record -w oddeven --np 8 -o normal.arch
  $ difftrace record -w oddeven --np 8 -f 'dlBug(rank=5,after=3)' -o faulty.arch > /dev/null
  $ difftrace analyze --normal normal.arch --faulty faulty.arch --attrs sing.log10 | head -4
  $ difftrace run -f 'bogus(rank=1)' 2>&1 | head -2 | tail -1
  $ difftrace report -w oddeven --np 8 -f 'dlBug(rank=5,after=3)' -o report.md
  $ grep -c '^## ' report.md
  $ difftrace triage -w oddeven --np 8 -f 'dlBug(rank=3,after=2)' --attrs sing.log10 | head -10
  $ difftrace explore -w oddeven --np 6 -n 4
  $ difftrace autotune -w oddeven --np 8 -f 'swapBug(rank=3,after=2)' | tail -1
