open Difftrace_classify
open Difftrace
module R = Difftrace_simulator.Runtime
module Fault = Difftrace_simulator.Fault
module F = Difftrace_filter.Filter
module Odd_even = Difftrace_workloads.Odd_even
module Ilcs = Difftrace_workloads.Ilcs

(* ------------------------------------------------------------------ *)
(* Classifier unit tests                                               *)
(* ------------------------------------------------------------------ *)

let test_train_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Classifier.train: no examples")
    (fun () -> ignore (Classifier.train []));
  Alcotest.check_raises "ragged"
    (Invalid_argument "Classifier.train: inconsistent dimensions") (fun () ->
      ignore (Classifier.train [ ("a", [| 1.0 |]); ("b", [| 1.0; 2.0 |]) ]))

let test_two_clusters () =
  let m =
    Classifier.train
      [ ("low", [| 0.0; 0.1 |]); ("low", [| 0.1; 0.0 |]);
        ("high", [| 1.0; 0.9 |]); ("high", [| 0.9; 1.0 |]) ]
  in
  Alcotest.(check (list string)) "classes" [ "high"; "low" ] (Classifier.classes m);
  Alcotest.(check string) "near low" "low" (fst (Classifier.classify m [| 0.05; 0.05 |]));
  Alcotest.(check string) "near high" "high" (fst (Classifier.classify m [| 0.95; 0.95 |]))

let test_normalization_invariance () =
  (* a feature with a huge scale must not drown the informative one *)
  let m =
    Classifier.train
      [ ("a", [| 0.0; 1000.0 |]); ("a", [| 0.1; 1010.0 |]);
        ("b", [| 1.0; 1005.0 |]); ("b", [| 0.9; 995.0 |]) ]
  in
  Alcotest.(check string) "scale-dominated feature ignored" "b"
    (fst (Classifier.classify m [| 0.95; 1000.0 |]))

let test_accuracy_and_confusion () =
  let examples =
    [ ("x", [| 0.0 |]); ("x", [| 0.2 |]); ("y", [| 1.0 |]); ("y", [| 0.8 |]) ]
  in
  let m = Classifier.train examples in
  Alcotest.(check (float 1e-9)) "train accuracy" 1.0 (Classifier.accuracy m examples);
  let conf = Classifier.confusion m examples in
  Alcotest.(check int) "two diagonal rows" 2 (List.length conf);
  List.iter
    (fun (t, p, c) ->
      Alcotest.(check string) "diagonal" t p;
      Alcotest.(check int) "two each" 2 c)
    conf;
  Alcotest.(check bool) "renders" true
    (String.length (Classifier.render_confusion conf) > 30)

(* ------------------------------------------------------------------ *)
(* Feature extraction                                                  *)
(* ------------------------------------------------------------------ *)

let oe_pair fault =
  let normal, _ = Odd_even.run ~np:8 ~fault:Fault.No_fault () in
  let faulty, _ = Odd_even.run ~np:8 ~fault () in
  let c =
    Pipeline.compare_runs (Config.make ()) ~normal:normal.R.traces
      ~faulty:faulty.R.traces
  in
  (Features.extract c ~faulty_outcome:faulty, faulty)

let test_features_clean_pair () =
  let f, _ = oe_pair Fault.No_fault in
  Alcotest.(check (float 1e-9)) "bscore 1 for identical runs" 1.0 f.Features.bscore;
  Alcotest.(check (float 1e-9)) "no truncation" 0.0 f.Features.truncated_fraction;
  Alcotest.(check (float 1e-9)) "no deadlock" 0.0 f.Features.deadlocked;
  Alcotest.(check (float 1e-9)) "no drift" 0.0 f.Features.loop_drift

let test_features_deadlock_pair () =
  let f, outcome = oe_pair (Fault.Deadlock_recv { rank = 5; after_iter = 3 }) in
  Alcotest.(check (float 1e-9)) "deadlock flag" 1.0 f.Features.deadlocked;
  Alcotest.(check bool) "truncation seen" true (f.Features.truncated_fraction > 0.0);
  Alcotest.(check bool) "run really hung" true (outcome.R.deadlocked <> [])

let test_feature_vector_shape () =
  let f, _ = oe_pair Fault.No_fault in
  Alcotest.(check int) "names match vector" (Array.length Features.names)
    (Array.length (Features.to_vector f))

(* ------------------------------------------------------------------ *)
(* End-to-end: classify injected bug classes across seeds              *)
(* ------------------------------------------------------------------ *)

let ilcs_example ~seed fault =
  let normal, _ = Ilcs.run ~np:4 ~workers:2 ~seed ~fault:Fault.No_fault () in
  let faulty, _ = Ilcs.run ~np:4 ~workers:2 ~seed ~fault () in
  let config =
    Config.make
      ~filter:(F.make [ F.Mpi_all; F.Omp_critical; F.Custom "CPU_Exec|memcpy" ])
      ~attrs:
        { Difftrace_fca.Attributes.granularity = Difftrace_fca.Attributes.Single;
          freq_mode = Difftrace_fca.Attributes.Actual }
      ()
  in
  let c =
    Pipeline.compare_runs config ~normal:normal.R.traces ~faulty:faulty.R.traces
  in
  Features.to_vector (Features.extract c ~faulty_outcome:faulty)

let bug_classes =
  [ ("noCritical", fun _seed -> Fault.No_critical { rank = 2; thread = 1 });
    ("wrongSize", fun _seed -> Fault.Wrong_collective_size { rank = 1 });
    ("wrongOp", fun _seed -> Fault.Wrong_collective_op { rank = 0 }) ]

let test_bug_classification_end_to_end () =
  let dataset seeds =
    List.concat_map
      (fun seed ->
        List.map (fun (label, mk) -> (label, ilcs_example ~seed (mk seed))) bug_classes)
      seeds
  in
  let train = dataset [ 1; 2; 3 ] in
  let test = dataset [ 4; 5 ] in
  let m = Classifier.train train in
  let acc = Classifier.accuracy m test in
  (* three classes, chance = 1/3; the features must do much better *)
  Alcotest.(check bool)
    (Printf.sprintf "accuracy %.2f above 0.66" acc)
    true (acc > 0.66)

let () =
  Alcotest.run "classify"
    [ ( "classifier",
        [ Alcotest.test_case "validation" `Quick test_train_validation;
          Alcotest.test_case "two clusters" `Quick test_two_clusters;
          Alcotest.test_case "normalization" `Quick test_normalization_invariance;
          Alcotest.test_case "accuracy + confusion" `Quick test_accuracy_and_confusion ] );
      ( "features",
        [ Alcotest.test_case "clean pair" `Quick test_features_clean_pair;
          Alcotest.test_case "deadlock pair" `Quick test_features_deadlock_pair;
          Alcotest.test_case "vector shape" `Quick test_feature_vector_shape ] );
      ( "end-to-end",
        [ Alcotest.test_case "3-class bug classification" `Slow
            test_bug_classification_end_to_end ] ) ]
