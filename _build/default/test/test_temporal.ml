open Difftrace_simulator
open Difftrace_temporal
module R = Runtime
module Fault = Fault
module Odd_even = Difftrace_workloads.Odd_even

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Vclock laws                                                         *)
(* ------------------------------------------------------------------ *)

let test_vclock_basic () =
  let c = Vclock.create 3 in
  Alcotest.(check (list int)) "zero" [ 0; 0; 0 ] (Vclock.to_list c);
  Vclock.tick c 1;
  Vclock.tick c 1;
  Vclock.tick c 2;
  Alcotest.(check (list int)) "ticked" [ 0; 2; 1 ] (Vclock.to_list c);
  Alcotest.(check int) "get" 2 (Vclock.get c 1);
  let d = Vclock.of_list [ 1; 0; 5 ] in
  Vclock.merge c d;
  Alcotest.(check (list int)) "merged" [ 1; 2; 5 ] (Vclock.to_list c)

let test_vclock_order () =
  let a = Vclock.of_list [ 1; 0 ] and b = Vclock.of_list [ 1; 1 ] in
  Alcotest.(check bool) "a -> b" true (Vclock.happens_before a b);
  Alcotest.(check bool) "not b -> a" false (Vclock.happens_before b a);
  let c = Vclock.of_list [ 0; 2 ] in
  Alcotest.(check bool) "a || c" true (Vclock.concurrent a c);
  Alcotest.(check bool) "self not before self" false (Vclock.happens_before a a);
  (match Vclock.ord a a with
  | Vclock.Equal -> ()
  | _ -> Alcotest.fail "self should be Equal");
  Alcotest.check_raises "size mismatch" (Invalid_argument "Vclock: size mismatch")
    (fun () -> ignore (Vclock.leq a (Vclock.of_list [ 1; 2; 3 ])))

let vec_gen n = QCheck2.Gen.(list_repeat n (int_range 0 5))

let prop_vclock_partial_order =
  qtest "vclock ord is antisymmetric and merge is an upper bound"
    QCheck2.Gen.(pair (vec_gen 4) (vec_gen 4))
    (fun (la, lb) ->
      let a = Vclock.of_list la and b = Vclock.of_list lb in
      let antisym =
        match (Vclock.ord a b, Vclock.ord b a) with
        | Vclock.Before, Vclock.After
        | Vclock.After, Vclock.Before
        | Vclock.Equal, Vclock.Equal
        | Vclock.Concurrent, Vclock.Concurrent -> true
        | _ -> false
      in
      let m = Vclock.copy a in
      Vclock.merge m b;
      antisym && Vclock.leq a m && Vclock.leq b m)

let prop_vclock_merge_idempotent_commutative =
  qtest "merge is idempotent and commutative"
    QCheck2.Gen.(pair (vec_gen 5) (vec_gen 5))
    (fun (la, lb) ->
      let ab = Vclock.of_list la in
      Vclock.merge ab (Vclock.of_list lb);
      let ba = Vclock.of_list lb in
      Vclock.merge ba (Vclock.of_list la);
      let aa = Vclock.of_list la in
      Vclock.merge aa (Vclock.of_list la);
      Vclock.equal ab ba && Vclock.equal aa (Vclock.of_list la))

(* ------------------------------------------------------------------ *)
(* Runtime integration: stamps respect causality                       *)
(* ------------------------------------------------------------------ *)

let find_syncs outcome key =
  match List.assoc_opt key outcome.R.sync_log with
  | Some s -> Array.to_list s
  | None -> []

let test_send_happens_before_recv () =
  let outcome =
    R.run ~np:2 (fun env ->
        if R.pid env = 0 then Api.send env ~dst:1 [| 1 |]
        else ignore (Api.recv env ~src:0 ()))
  in
  match (find_syncs outcome (0, 0), find_syncs outcome (1, 0)) with
  | [ send ], [ recv ] ->
    Alcotest.(check string) "send op" "MPI_Send" send.R.sp_op;
    Alcotest.(check string) "recv op" "MPI_Recv" recv.R.sp_op;
    Alcotest.(check bool) "send -> recv (vector)" true
      (Vclock.stamp_happens_before send.R.sp_stamp recv.R.sp_stamp);
    Alcotest.(check bool) "Lamport consistent" true
      (send.R.sp_stamp.Vclock.lamport < recv.R.sp_stamp.Vclock.lamport)
  | a, b ->
    Alcotest.fail
      (Printf.sprintf "unexpected sync log shapes: %d / %d" (List.length a)
         (List.length b))

let test_disjoint_sends_concurrent () =
  (* two independent pairs: their stamps must be concurrent *)
  let outcome =
    R.run ~np:4 (fun env ->
        match R.pid env with
        | 0 -> Api.send env ~dst:1 [| 1 |]
        | 1 -> ignore (Api.recv env ~src:0 ())
        | 2 -> Api.send env ~dst:3 [| 1 |]
        | _ -> ignore (Api.recv env ~src:2 ()))
  in
  match (find_syncs outcome (1, 0), find_syncs outcome (3, 0)) with
  | [ r01 ], [ r23 ] ->
    Alcotest.(check bool) "independent receives are concurrent" true
      (Vclock.concurrent r01.R.sp_stamp.Vclock.vec r23.R.sp_stamp.Vclock.vec)
  | _ -> Alcotest.fail "unexpected sync logs"

let test_barrier_synchronizes () =
  let outcome =
    R.run ~np:3 (fun env ->
        if R.pid env = 0 then Api.send env ~dst:1 [| 7 |];
        if R.pid env = 1 then ignore (Api.recv env ~src:0 ());
        Api.barrier env)
  in
  (* rank 2's barrier stamp must be causally after rank 0's send *)
  let send = List.hd (find_syncs outcome (0, 0)) in
  let barrier2 =
    List.find (fun sp -> sp.R.sp_op = "MPI_Barrier") (find_syncs outcome (2, 0))
  in
  Alcotest.(check bool) "send -> other rank's post-barrier" true
    (Vclock.stamp_happens_before send.R.sp_stamp barrier2.R.sp_stamp)

let test_transitive_chain () =
  (* 0 -> 1 -> 2: first send happens-before the last receive *)
  let outcome =
    R.run ~np:3 (fun env ->
        match R.pid env with
        | 0 -> Api.send env ~dst:1 [| 0 |]
        | 1 ->
          let v = Api.recv env ~src:0 () in
          Api.send env ~dst:2 v
        | _ -> ignore (Api.recv env ~src:1 ()))
  in
  let s0 = List.hd (find_syncs outcome (0, 0)) in
  let r2 = List.hd (find_syncs outcome (2, 0)) in
  Alcotest.(check bool) "transitivity through rank 1" true
    (Vclock.stamp_happens_before s0.R.sp_stamp r2.R.sp_stamp)

let test_nonblocking_stamps () =
  let outcome =
    R.run ~np:2 (fun env ->
        if R.pid env = 0 then begin
          let r = Api.irecv env ~src:1 () in
          ignore (Api.wait env r)
        end
        else ignore (Api.isend env ~dst:0 [| 3 |]))
  in
  let isend = List.hd (find_syncs outcome (1, 0)) in
  let wait =
    List.find (fun sp -> sp.R.sp_op = "MPI_Wait") (find_syncs outcome (0, 0))
  in
  Alcotest.(check string) "isend recorded" "MPI_Isend" isend.R.sp_op;
  Alcotest.(check bool) "isend -> wait completion" true
    (Vclock.stamp_happens_before isend.R.sp_stamp wait.R.sp_stamp)

(* ------------------------------------------------------------------ *)
(* Progress / least-progressed                                         *)
(* ------------------------------------------------------------------ *)

let test_least_progressed_dlbug () =
  (* rank 5 deadlocks after iteration 7: it must be (one of) the least
     progressed master threads, PRODOMETER-style *)
  let outcome, _ =
    Odd_even.run ~np:16 ~fault:(Fault.Deadlock_recv { rank = 5; after_iter = 7 }) ()
  in
  let entries = Progress.least_progressed outcome in
  let first_masters =
    List.filter (fun e -> e.Progress.sync_count > 0) entries
    |> List.filteri (fun i _ -> i < 3)
    |> List.map (fun e -> e.Progress.pid)
  in
  Alcotest.(check bool) "rank 5 among the least progressed" true
    (List.mem 5 first_masters)

let test_progress_hb_query () =
  let outcome =
    R.run ~np:2 (fun env ->
        if R.pid env = 0 then Api.send env ~dst:1 [| 1 |]
        else ignore (Api.recv env ~src:0 ()))
  in
  (match Progress.hb outcome ~a:(0, 0) ~b:(1, 0) with
  | Some Vclock.Before -> ()
  | _ -> Alcotest.fail "expected Before");
  Alcotest.(check bool) "unknown thread" true
    (Progress.hb outcome ~a:(9, 9) ~b:(0, 0) = None)

let test_progress_render () =
  let outcome =
    R.run ~np:2 (fun env ->
        if R.pid env = 0 then Api.send env ~dst:1 [| 1 |]
        else ignore (Api.recv env ~src:0 ()))
  in
  let s = Progress.render (Progress.least_progressed outcome) in
  Alcotest.(check bool) "renders" true (String.length s > 40)

(* ------------------------------------------------------------------ *)
(* OTF2 export                                                         *)
(* ------------------------------------------------------------------ *)

let sample_outcome () =
  R.run ~np:2 (fun env ->
      Api.call env "main" (fun () ->
          Api.mpi_init env;
          (if R.pid env = 0 then begin
             Api.send env ~dst:1 [| 1 |];
             let r = Api.irecv env ~src:1 () in
             ignore (Api.wait env r)
           end
           else begin
             ignore (Api.recv env ~src:0 ());
             ignore (Api.isend env ~dst:0 [| 2 |])
           end);
          Api.barrier env;
          Api.mpi_finalize env))

let test_otf2_roundtrip () =
  let archive = Otf2.of_outcome (sample_outcome ()) in
  let parsed = Otf2.parse (Otf2.render archive) in
  Alcotest.(check bool) "render/parse roundtrip" true (Otf2.equal archive parsed)

let test_otf2_sync_placement () =
  let archive = Otf2.of_outcome (sample_outcome ()) in
  let loc0 = List.find (fun l -> l.Otf2.pid = 0 && l.Otf2.tid = 0) archive.Otf2.locations in
  (* the MPI_Send sync must directly follow the MPI_Send ENTER *)
  let rec check = function
    | Otf2.Enter "MPI_Send" :: Otf2.Sync s :: _ ->
      Alcotest.(check string) "sync op" "MPI_Send" s.Otf2.op
    | _ :: rest -> check rest
    | [] -> Alcotest.fail "no MPI_Send ENTER followed by SYNC"
  in
  check loc0.Otf2.events;
  (* every sync has a full vector *)
  List.iter
    (fun (_, s) ->
      Alcotest.(check int) "vector arity" 2 (List.length s.Otf2.vector))
    (Otf2.sync_points archive)

let test_otf2_truncated_flag () =
  let outcome =
    R.run ~np:2 ~eager_limit:0 (fun env ->
        let peer = 1 - R.pid env in
        Api.send env ~dst:peer [| 1 |];
        ignore (Api.recv env ~src:peer ()))
  in
  let archive = Otf2.of_outcome outcome in
  List.iter
    (fun l -> Alcotest.(check bool) "truncated exported" true l.Otf2.truncated)
    archive.Otf2.locations;
  let parsed = Otf2.parse (Otf2.render archive) in
  Alcotest.(check bool) "flag survives roundtrip" true (Otf2.equal archive parsed)

let test_otf2_to_trace_set_roundtrip () =
  let outcome = sample_outcome () in
  let reconstructed = Otf2.to_trace_set (Otf2.of_outcome outcome) in
  let dump ts =
    Array.to_list (Difftrace_trace.Trace_set.traces ts)
    |> List.map (fun tr ->
           ( tr.Difftrace_trace.Trace.pid,
             tr.Difftrace_trace.Trace.tid,
             tr.Difftrace_trace.Trace.truncated,
             Difftrace_trace.Trace.to_strings
               (Difftrace_trace.Trace_set.symtab ts)
               tr ))
  in
  Alcotest.(check bool) "events reconstructed exactly" true
    (dump outcome.R.traces = dump reconstructed);
  (* and the pipeline runs on the import *)
  let a = Difftrace.Pipeline.analyze (Difftrace.Config.make ()) reconstructed in
  Alcotest.(check bool) "pipeline accepts imported traces" true
    (Array.length a.Difftrace.Pipeline.labels = 2)

let test_otf2_parse_errors () =
  Alcotest.check_raises "missing header"
    (Invalid_argument "Otf2.parse: missing header") (fun () ->
      ignore (Otf2.parse "DEF STRING 0 \"x\"\n"))

let () =
  Alcotest.run "temporal"
    [ ( "vclock",
        [ Alcotest.test_case "basics" `Quick test_vclock_basic;
          Alcotest.test_case "ordering" `Quick test_vclock_order;
          prop_vclock_partial_order;
          prop_vclock_merge_idempotent_commutative ] );
      ( "stamps",
        [ Alcotest.test_case "send -> recv" `Quick test_send_happens_before_recv;
          Alcotest.test_case "disjoint pairs concurrent" `Quick
            test_disjoint_sends_concurrent;
          Alcotest.test_case "barrier synchronizes" `Quick test_barrier_synchronizes;
          Alcotest.test_case "transitive chain" `Quick test_transitive_chain;
          Alcotest.test_case "nonblocking stamps" `Quick test_nonblocking_stamps ] );
      ( "progress",
        [ Alcotest.test_case "least progressed (dlBug)" `Quick
            test_least_progressed_dlbug;
          Alcotest.test_case "hb query" `Quick test_progress_hb_query;
          Alcotest.test_case "render" `Quick test_progress_render ] );
      ( "otf2",
        [ Alcotest.test_case "roundtrip" `Quick test_otf2_roundtrip;
          Alcotest.test_case "sync placement" `Quick test_otf2_sync_placement;
          Alcotest.test_case "truncated flag" `Quick test_otf2_truncated_flag;
          Alcotest.test_case "import to trace set" `Quick
            test_otf2_to_trace_set_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_otf2_parse_errors ] ) ]
