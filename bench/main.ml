(* Reproduction + benchmark harness.

   Default mode regenerates every table and figure of the paper's
   evaluation (§II walk-through, §IV ILCS Tables VI-VIII / Fig. 7,
   §V LULESH statistics and Table IX), printing paper-style output.

   `--perf` instead runs the Bechamel micro-benchmarks: the codec,
   NLR, lattice-construction (Godin vs. NextClosure), JSM, Myers and
   linkage kernels plus the DESIGN.md ablations. `--engine` runs only
   the engine/memo benches. `--quick` shrinks the workloads for
   CI-speed runs. `--json FILE` additionally records every named
   metric, the telemetry stage spans and the pipeline counters into a
   machine-readable BENCH_*.json trajectory file (schema
   difftrace-bench/1) that CI archives on every commit. *)

open Difftrace
module R = Difftrace_simulator.Runtime
module Fault = Difftrace_simulator.Fault
module Tracer = Difftrace_parlot.Tracer
module Capture = Difftrace_parlot.Capture
module Lzw = Difftrace_parlot.Lzw
module Trace = Difftrace_trace.Trace
module Trace_set = Difftrace_trace.Trace_set
module Symtab = Difftrace_trace.Symtab
module F = Difftrace_filter.Filter
module Nlr = Difftrace_nlr.Nlr
module A = Difftrace_fca.Attributes
module Context = Difftrace_fca.Context
module Lattice = Difftrace_fca.Lattice
module Jsm = Difftrace_cluster.Jsm
module Linkage = Difftrace_cluster.Linkage
module Bscore = Difftrace_cluster.Bscore
module Myers = Difftrace_diff.Myers
module Diffnlr = Difftrace_diff.Diffnlr
module Odd_even = Difftrace_workloads.Odd_even
module Ilcs = Difftrace_workloads.Ilcs
module Lulesh = Difftrace_workloads.Lulesh
module Tsp = Difftrace_workloads.Tsp

module Telemetry = Difftrace_obs.Telemetry
module Json = Telemetry.Json

(* the bench grids are hard-coded and non-empty, so a sweep error is a bug *)
let autotune_exn = function
  | Ok r -> r
  | Error e -> failwith (Session.error_to_string e)

type options = {
  quick : bool;
  perf : bool;
  engine : bool;
  store : bool;
  sketch : bool;
  query : bool;
  vdiff : bool;
  frontend : bool;
  json : string option;
}

let usage oc =
  output_string oc
    "usage: bench [--quick] [--perf | --engine | --store | --sketch | \
     --query | --vdiff | --frontend] [--json FILE]\n\n\
    \  (no mode)    regenerate every paper table and figure\n\
    \  --perf       Bechamel micro-benchmarks only\n\
    \  --engine     engine/memo-cache benchmarks only\n\
    \  --store      cold vs. warm persistent-store benchmarks only\n\
    \  --sketch     MinHash/LSH sketch tier vs. exact JSM sweep only\n\
    \  --query      event-DB index build/load and query-latency benches only\n\
    \  --vdiff      k-way variational merge wall-time sweep only\n\
    \  --frontend   ingestion-frontend throughput sweep only\n\
    \  --quick      shrink workloads to CI scale\n\
    \  --json FILE  write metrics + telemetry to FILE (difftrace-bench/1)\n"

let opts =
  let die msg =
    Printf.eprintf "bench: %s\n" msg;
    usage stderr;
    exit 2
  in
  let rec parse acc = function
    | [] -> acc
    | "--help" :: _ | "-h" :: _ ->
      usage stdout;
      exit 0
    | "--quick" :: rest -> parse { acc with quick = true } rest
    | "--perf" :: rest -> parse { acc with perf = true } rest
    | "--engine" :: rest -> parse { acc with engine = true } rest
    | "--store" :: rest -> parse { acc with store = true } rest
    | "--sketch" :: rest -> parse { acc with sketch = true } rest
    | "--query" :: rest -> parse { acc with query = true } rest
    | "--vdiff" :: rest -> parse { acc with vdiff = true } rest
    | "--frontend" :: rest -> parse { acc with frontend = true } rest
    | "--json" :: file :: rest when file = "" || file.[0] <> '-' ->
      parse { acc with json = Some file } rest
    | [ "--json" ] | "--json" :: _ -> die "--json requires FILE"
    | arg :: _ -> die (Printf.sprintf "unrecognized argument %S" arg)
  in
  let o =
    parse
      { quick = false; perf = false; engine = false; store = false;
        sketch = false; query = false; vdiff = false; frontend = false;
        json = None }
      (List.tl (Array.to_list Sys.argv))
  in
  if (if o.perf then 1 else 0) + (if o.engine then 1 else 0)
     + (if o.store then 1 else 0) + (if o.sketch then 1 else 0)
     + (if o.query then 1 else 0) + (if o.vdiff then 1 else 0)
     + (if o.frontend then 1 else 0)
     > 1
  then
    die
      "--perf, --engine, --store, --sketch, --query, --vdiff and --frontend \
       are exclusive";
  o

let quick = opts.quick
let perf_only = opts.perf
let engine_only = opts.engine
let store_only = opts.store
let sketch_only = opts.sketch
let query_only = opts.query
let vdiff_only = opts.vdiff
let frontend_only = opts.frontend

(* named scalar metrics collected for --json; every section that
   measures something worth tracking across commits pushes here *)
let metrics : (string * float * string) list ref = ref []
let metric ?(unit = "s") name value = metrics := (name, value, unit) :: !metrics

let section id title =
  Printf.printf "\n==== %s %s %s\n" id title
    (String.make (max 1 (66 - String.length id - String.length title)) '=')

let spec g f = { A.granularity = g; freq_mode = f }

(* the benches always diff labels they just ranked; fail loudly otherwise *)
let diffnlr_exn c label =
  match Pipeline.find_diffnlr c label with
  | Ok d -> d
  | Error e -> failwith (Pipeline.lookup_error_to_string e)

(* ------------------------------------------------------------------ *)
(* §II: odd/even walk-through — Tables I-IV, Figs. 3-6                 *)
(* ------------------------------------------------------------------ *)

let mixed_sample_trace () =
  (* a small mixed-API run whose trace exercises every filter row *)
  let outcome =
    R.run ~np:2 ~level:Tracer.All_images (fun env ->
        Difftrace_simulator.Api.call env "main" (fun () ->
            Difftrace_simulator.Api.mpi_init env;
            Difftrace_simulator.Api.libc env "strlen";
            Difftrace_simulator.Api.libc env "memcpy";
            Difftrace_simulator.Api.parallel env ~num_threads:2 (fun tenv ->
                Difftrace_simulator.Api.critical tenv (fun () -> ()));
            (if R.pid env = 0 then
               Difftrace_simulator.Api.send env ~dst:1 [| 1 |]
             else ignore (Difftrace_simulator.Api.recv env ~src:0 ()));
            ignore (Difftrace_simulator.Api.allreduce env ~op:R.Op_sum [| 1 |]);
            Difftrace_simulator.Api.mpi_finalize env))
  in
  outcome.R.traces

let table_i () =
  section "T1" "Table I: predefined filters (+ match counts on a mixed trace)";
  let ts = mixed_sample_trace () in
  let tr = Trace_set.find_exn ts ~pid:0 ~tid:0 in
  let count filter =
    Array.length (F.apply filter (Trace_set.symtab ts) tr.Trace.events)
  in
  let total = Trace.length tr in
  let rows =
    List.map
      (fun (cat, sub, desc) ->
        let kept =
          match sub with
          | "Returns" -> count (F.make ~drop_returns:true ~drop_plt:false [])
          | "PLT" -> count (F.make ~drop_returns:false ~drop_plt:true [])
          | "MPI All" -> count (F.make ~drop_returns:false ~drop_plt:false [ F.Mpi_all ])
          | "MPI Collectives" ->
            count (F.make ~drop_returns:false ~drop_plt:false [ F.Mpi_collectives ])
          | "MPI Send/Recv" ->
            count (F.make ~drop_returns:false ~drop_plt:false [ F.Mpi_send_recv ])
          | "MPI Internal Library" ->
            count (F.make ~drop_returns:false ~drop_plt:false [ F.Mpi_internal ])
          | "OMP All" -> count (F.make ~drop_returns:false ~drop_plt:false [ F.Omp_all ])
          | "OMP Critical" ->
            count (F.make ~drop_returns:false ~drop_plt:false [ F.Omp_critical ])
          | "OMP Mutex" ->
            count (F.make ~drop_returns:false ~drop_plt:false [ F.Omp_mutex ])
          | "Memory" -> count (F.make ~drop_returns:false ~drop_plt:false [ F.Sys_memory ])
          | "Network" ->
            count (F.make ~drop_returns:false ~drop_plt:false [ F.Sys_network ])
          | "Poll" -> count (F.make ~drop_returns:false ~drop_plt:false [ F.Sys_poll ])
          | "String" -> count (F.make ~drop_returns:false ~drop_plt:false [ F.Sys_string ])
          | "Custom" ->
            count (F.make ~drop_returns:false ~drop_plt:false [ F.Custom "^main$" ])
          | "Everything" ->
            count (F.make ~drop_returns:false ~drop_plt:false [ F.Everything ])
          | _ -> -1
        in
        [ cat; sub; desc; Printf.sprintf "%d/%d" kept total ])
      F.predefined
  in
  Difftrace_util.Texttable.print
    ~headers:[ "Category"; "Sub-Category"; "Description"; "Kept (p0 trace)" ]
    rows

let odd_even_walkthrough () =
  let outcome, _ = Odd_even.run ~np:4 ~fault:Fault.No_fault () in
  let ts = outcome.R.traces in

  section "T2" "Table II: generated traces of odd/even sort, 4 processes";
  let show =
    F.make ~drop_returns:true [ F.Mpi_all; F.Custom "main|oddEvenSort|findPtr" ]
  in
  let shown = F.apply_set show ts in
  Array.iter
    (fun tr ->
      Printf.printf "T%s: %s\n"
        (Trace.label ~short:true tr)
        (String.concat " ; " (Trace.to_strings (Trace_set.symtab shown) tr)))
    (Trace_set.traces shown);

  section "T3" "Table III: NLR of the MPI-filtered traces (K=10)";
  let a = Pipeline.analyze (Config.make ()) ts in
  Array.iteri
    (fun i (nlr, _) ->
      Printf.printf "T%s: %s\n" a.Pipeline.labels.(i)
        (String.concat " ; " (Nlr.to_strings a.Pipeline.symtab nlr)))
    a.Pipeline.nlrs;
  for id = 0 to Nlr.Loop_table.size a.Pipeline.loop_table - 1 do
    Printf.printf "  %s = %s\n" (Nlr.Loop_table.label id)
      (Nlr.body_to_string ~table:a.Pipeline.loop_table a.Pipeline.symtab id)
  done;

  section "T4" "Table IV: formal context";
  print_string (Context.to_table a.Pipeline.context);

  section "F3" "Fig. 3: concept lattice (Godin incremental construction)";
  print_string (Lattice.to_string a.Pipeline.context (Lazy.force a.Pipeline.lattice));

  section "F4" "Fig. 4: pairwise Jaccard similarity matrix";
  print_string (Jsm.heatmap a.Pipeline.jsm)

let sec_iig () =
  let np = 16 in
  let normal = (fst (Odd_even.run ~np ~fault:Fault.No_fault ())).R.traces in
  let run_fault name fig fault attrs =
    section fig name;
    let faulty = (fst (Odd_even.run ~np ~fault ())).R.traces in
    let c = Pipeline.compare_runs (Config.make ~attrs ()) ~normal ~faulty in
    Printf.printf "B-score %.3f; top suspects: %s\n" c.Pipeline.bscore
      (String.concat ", "
         (Array.to_list c.Pipeline.suspects
         |> List.filteri (fun i _ -> i < 5)
         |> List.map (fun (l, s) -> Printf.sprintf "%s(%.2f)" l s)));
    let suspect = fst c.Pipeline.suspects.(0) in
    print_string
      (Diffnlr.render ~title:(Printf.sprintf "diffNLR(%s)" suspect)
         (diffnlr_exn c suspect))
  in
  run_fault "Fig. 5 + §II-G: swapBug (rank 5 after iteration 7), 16 ranks" "F5"
    (Fault.Swap_send_recv { rank = 5; after_iter = 7 })
    (spec A.Single A.No_freq);
  run_fault "Fig. 6 + §II-G: dlBug (actual deadlock in rank 5), 16 ranks" "F6"
    (Fault.Deadlock_recv { rank = 5; after_iter = 7 })
    (spec A.Single A.Log10)

(* ------------------------------------------------------------------ *)
(* §IV: ILCS — Tables VI-VIII, Fig. 7                                  *)
(* ------------------------------------------------------------------ *)

let ilcs_args = if quick then (4, 2) else (8, 4)

(* fault targets that exist at either scale *)
let nc_rank, nc_thread = if quick then (2, 1) else (6, 4)
let nc_label = Printf.sprintf "%d.%d" nc_rank nc_thread
let mid_rank_label = if quick then "1.0" else "4.0"

let ilcs_case_study () =
  let np, workers = ilcs_args in
  let normal = (fst (Ilcs.run ~np ~workers ~fault:Fault.No_fault ())).R.traces in

  let mem_filters =
    [ F.make [ F.Sys_memory; F.Omp_critical; F.Custom "CPU_Exec" ];
      F.make ~drop_plt:false [ F.Sys_memory; F.Custom "CPU_Exec" ] ]
  in
  let mpi_filters =
    [ F.make [ F.Mpi_collectives; F.Custom "CPU_Exec|CPU_Init|memcpy" ];
      F.make [ F.Mpi_all; F.Custom "CPU_Exec|CPU_Init|memcpy" ] ]
  in

  section "T6"
    (Printf.sprintf "Table VI: ranking — OpenMP bug (no critical in thread %s)"
       nc_label);
  let faulty_nc =
    (fst
       (Ilcs.run ~np ~workers
          ~fault:(Fault.No_critical { rank = nc_rank; thread = nc_thread })
          ()))
      .R.traces
  in
  print_string
    (Ranking.render ~max_rows:10
       (Ranking.sweep (Ranking.grid ~filters:mem_filters ()) ~normal ~faulty:faulty_nc));

  section "F7a"
    (Printf.sprintf "Fig. 7a: diffNLR(%s) — the unprotected memcpy" nc_label);
  let c =
    Pipeline.compare_runs
      (Config.make ~filter:(List.hd mem_filters) ~attrs:(spec A.Double A.No_freq) ())
      ~normal ~faulty:faulty_nc
  in
  print_string
    (Diffnlr.render
       ~title:(Printf.sprintf "diffNLR(%s)" nc_label)
       (diffnlr_exn c nc_label));

  section "T7" "Table VII: ranking — MPI deadlock (wrong Allreduce size, rank 2)";
  let faulty_ws =
    (fst (Ilcs.run ~np ~workers ~fault:(Fault.Wrong_collective_size { rank = 2 }) ()))
      .R.traces
  in
  print_string
    (Ranking.render ~max_rows:10
       (Ranking.sweep (Ranking.grid ~filters:mpi_filters ()) ~normal ~faulty:faulty_ws));

  section "F7b"
    (Printf.sprintf
       "Fig. 7b: diffNLR(%s) — identical until the hanging MPI_Allreduce"
       mid_rank_label);
  let c =
    Pipeline.compare_runs
      (Config.make ~filter:(List.nth mpi_filters 1) ())
      ~normal ~faulty:faulty_ws
  in
  print_string
    (Diffnlr.render
       ~title:(Printf.sprintf "diffNLR(%s)" mid_rank_label)
       (diffnlr_exn c mid_rank_label));

  section "T8" "Table VIII: ranking — wrong collective op (MAX for MIN, rank 0)";
  let faulty_wo =
    (fst (Ilcs.run ~np ~workers ~fault:(Fault.Wrong_collective_op { rank = 0 }) ()))
      .R.traces
  in
  print_string
    (Ranking.render ~max_rows:10
       (Ranking.sweep (Ranking.grid ~filters:mpi_filters ()) ~normal ~faulty:faulty_wo));

  section "F7c" "Fig. 7c: diffNLR(5) — extra reduction/broadcast rounds";
  let c =
    Pipeline.compare_runs
      (Config.make ~filter:(List.nth mpi_filters 1) ~attrs:(spec A.Single A.Actual) ())
      ~normal ~faulty:faulty_wo
  in
  print_string
    (Diffnlr.render
       ~title:(Printf.sprintf "diffNLR(%s)" (if quick then "1.0" else "5.0"))
       (diffnlr_exn c (if quick then "1.0" else "5.0")))

(* ------------------------------------------------------------------ *)
(* §V: LULESH — statistics, K sweep, Table IX                          *)
(* ------------------------------------------------------------------ *)

let lulesh_args = if quick then (4, 1) else (6, 2)

let lulesh_study () =
  let edge, cycles = lulesh_args in
  section "V-stats" "LULESH2 trace statistics (paper: 410 fns, 2.8 KB, 421503 calls)";
  let normal = Lulesh.run ~edge ~cycles ~fault:Fault.No_fault () in
  Format.printf "%a@." Capture.pp_stats normal.R.stats;

  section "V-K" "NLR reduction factor vs. K (paper: x1.92 @K=10, x16.74 @K=50)";
  let tr = Trace_set.find_exn normal.R.traces ~pid:0 ~tid:0 in
  let ids = Trace.call_ids tr in
  List.iter
    (fun k ->
      let table = Nlr.Loop_table.create () in
      let nlr = Nlr.of_ids ~table ~k ids in
      Printf.printf "K=%-3d %6d calls -> %5d elements (factor %.2f)\n" k
        (Array.length ids) (Nlr.length nlr) (Nlr.reduction_factor nlr))
    [ 2; 10; 50 ];

  section "T9" "Table IX: ranking — rank 2 skips LagrangeLeapFrog";
  let faulty =
    Lulesh.run ~edge ~cycles
      ~fault:(Fault.Skip_function { rank = 2; func = "LagrangeLeapFrog" })
      ()
  in
  Printf.printf "deadlocked: %d threads (the fault stalls every process)\n"
    (List.length faulty.R.deadlocked);
  print_string
    (Ranking.render
       (Ranking.sweep
          (Ranking.grid ~filters:[ F.make [ F.Everything ] ] ())
          ~normal:normal.R.traces ~faulty:faulty.R.traces))

(* ------------------------------------------------------------------ *)
(* Heat diffusion: a silent protocol bug end to end                    *)
(* ------------------------------------------------------------------ *)

let heat_study () =
  section "H1" "Heat stencil: silent halo-protocol flip (rank 3) + autotune";
  let module Heat = Difftrace_workloads.Heat in
  let normal, nres = Heat.run ~fault:Fault.No_fault () in
  let faulty, fres =
    Heat.run ~fault:(Fault.Swap_send_recv { rank = 3; after_iter = 2 }) ()
  in
  Printf.printf
    "both runs complete (normal: %d iters, residual %d; faulty: %d iters, \
     residual %d) — the bug is silent\n"
    nres.Heat.iterations nres.Heat.final_residual fres.Heat.iterations
    fres.Heat.final_residual;
  let r =
    autotune_exn
      (Autotune.search ~normal:normal.R.traces ~faulty:faulty.R.traces ())
  in
  Printf.printf "autotune over %d configurations -> %s\n" r.Autotune.evaluated
    (Config.name r.Autotune.best.Autotune.config);
  let c =
    Pipeline.compare_runs r.Autotune.best.Autotune.config ~normal:normal.R.traces
      ~faulty:faulty.R.traces
  in
  let suspect = fst c.Pipeline.suspects.(0) in
  Printf.printf "top suspect: %s\n" suspect;
  let d = diffnlr_exn c suspect in
  let lines = String.split_on_char '\n' (Diffnlr.render ~title:("diffNLR(" ^ suspect ^ ")") d) in
  List.iteri (fun i l -> if i < 18 then print_endline l) lines;
  (* CCT view: which calling contexts changed *)
  let module Cct = Difftrace_stacktree.Cct in
  let deltas =
    Cct.diff
      ~normal:(Cct.coalesce normal.R.traces)
      ~faulty:(Cct.coalesce faulty.R.traces)
  in
  print_endline "top calling-context deltas (CSTG view):";
  print_string
    (Cct.render_diff (List.filteri (fun i _ -> i < 6) deltas))

(* ------------------------------------------------------------------ *)
(* Ablations (DESIGN.md)                                               *)
(* ------------------------------------------------------------------ *)

let ablations () =
  section "A1" "Ablation: linkage functions on the swapBug comparison";
  let normal = (fst (Odd_even.run ~np:16 ~fault:Fault.No_fault ())).R.traces in
  let faulty =
    (fst (Odd_even.run ~np:16 ~fault:(Fault.Swap_send_recv { rank = 5; after_iter = 7 }) ()))
      .R.traces
  in
  let rows =
    List.map
      (fun meth ->
        let c =
          Pipeline.compare_runs (Config.make ~linkage:meth ()) ~normal ~faulty
        in
        [ Linkage.method_name meth;
          Printf.sprintf "%.3f" c.Pipeline.bscore;
          fst c.Pipeline.suspects.(0) ])
      Linkage.all_methods
  in
  Difftrace_util.Texttable.print ~headers:[ "Linkage"; "B-score"; "Top suspect" ] rows;

  section "A1b" "Fowlkes–Mallows B_k series for swapBug (ref [17]'s plot)";
  let cswap = Pipeline.compare_runs (Config.make ()) ~normal ~faulty in
  let jn, jf = Jsm.align cswap.Pipeline.normal.Pipeline.jsm
                 cswap.Pipeline.faulty.Pipeline.jsm in
  let dn = Linkage.cluster Linkage.Ward (Jsm.rows (Jsm.to_distance jn)) in
  let df = Linkage.cluster Linkage.Ward (Jsm.rows (Jsm.to_distance jf)) in
  List.iter
    (fun (k, bk) -> Printf.printf "  k=%-3d B_k=%.3f\n" k bk)
    (Bscore.series dn df);

  section "A2" "Ablation: attribute modes — lattice size on the ILCS normal run";
  let np, workers = ilcs_args in
  let ts = (fst (Ilcs.run ~np ~workers ~fault:Fault.No_fault ())).R.traces in
  let rich = F.make [ F.Mpi_all; F.Omp_all; F.Custom "CPU_Exec|CPU_Init|memcpy" ] in
  let rows =
    List.map
      (fun sp ->
        let a = Pipeline.analyze (Config.make ~filter:rich ~attrs:sp ()) ts in
        let lat = Lazy.force a.Pipeline.lattice in
        [ A.name sp;
          string_of_int (Context.n_attrs a.Pipeline.context);
          string_of_int (Lattice.size lat) ])
      A.all
  in
  Difftrace_util.Texttable.print ~headers:[ "Attributes"; "#attrs"; "#concepts" ] rows;

  section "A3" "Ablation: compression — incremental LZW vs. raw varint stream";
  let edge, cycles = lulesh_args in
  let outcome = Lulesh.run ~edge ~cycles ~fault:Fault.No_fault () in
  Printf.printf "LULESH whole-run compression ratio: %.2fx (%d events, %d bytes)\n"
    outcome.R.stats.Capture.compression_ratio outcome.R.stats.Capture.total_events
    outcome.R.stats.Capture.total_compressed_bytes;
  (* ratio grows with trace length: the ParLOT claim in §I *)
  List.iter
    (fun reps ->
      let s = String.concat "" (List.init reps (fun _ -> "MPI_Send;MPI_Recv;")) in
      Printf.printf "  synthetic loop x%-6d raw %7d B -> lzw %5d B (%.0fx)\n" reps
        (String.length s)
        (String.length (Lzw.compress s))
        (float_of_int (String.length s) /. float_of_int (String.length (Lzw.compress s))))
    [ 100; 1000; 10000 ]

(* ------------------------------------------------------------------ *)
(* NLR loop-creation threshold (Procedure 1 shows 3; we default to 2)  *)
(* ------------------------------------------------------------------ *)

let nlr_repeats_ablation () =
  section "A6" "Ablation: NLR loop-creation threshold (repeats 2 vs 3)";
  let outcome, _ = Odd_even.run ~np:4 ~fault:Fault.No_fault () in
  List.iter
    (fun repeats ->
      let a =
        Pipeline.analyze (Config.make ~repeats ()) outcome.R.traces
      in
      Printf.printf "repeats=%d: T0 = %s\n" repeats
        (String.concat ";"
           (Nlr.to_strings a.Pipeline.symtab (fst a.Pipeline.nlrs.(0)))))
    [ 2; 3 ];
  print_endline
    "(Procedure 1's literal threshold of 3 misses Table III's two-iteration\n\
    \ loops L0^2/L1^2 of the boundary ranks; the Ketterlin-Clauss default\n\
    \ of 2 reproduces the paper's table, which is why it is the default)"

(* ------------------------------------------------------------------ *)
(* Multi-seed ranking stability (systematic injection, §VII (3))       *)
(* ------------------------------------------------------------------ *)

let stability () =
  section "A5" "Ranking stability: swapBug top-1 hit rate across 6 seeds";
  let seeds = [ 1; 2; 3; 4; 5; 6 ] in
  let rows =
    List.map
      (fun attrs ->
        let hits =
          List.fold_left
            (fun acc seed ->
              let normal =
                (fst (Odd_even.run ~np:16 ~seed ~fault:Fault.No_fault ())).R.traces
              in
              let faulty =
                (fst
                   (Odd_even.run ~np:16 ~seed
                      ~fault:(Fault.Swap_send_recv { rank = 5; after_iter = 7 })
                      ()))
                  .R.traces
              in
              let c =
                Pipeline.compare_runs (Config.make ~attrs ()) ~normal ~faulty
              in
              if fst c.Pipeline.suspects.(0) = "5" then acc + 1 else acc)
            0 seeds
        in
        [ A.name attrs; Printf.sprintf "%d/%d" hits (List.length seeds) ])
      A.all
  in
  Difftrace_util.Texttable.print ~headers:[ "Attributes"; "top-1 = rank 5" ] rows

(* ------------------------------------------------------------------ *)
(* Baseline comparison: DiffTrace vs. AutomaDeD-style SMM (§VI)        *)
(* ------------------------------------------------------------------ *)

let baseline_comparison () =
  section "A4" "DiffTrace JSM_D ranking vs. AutomaDeD-style SMM baseline";
  let module Smm = Difftrace_baseline.Smm in
  let np, workers = ilcs_args in
  let mpi ts = F.apply_set (F.make [ F.Mpi_all ]) ts in
  let cases =
    [ ( "swapBug(5)",
        `Oddeven (Fault.Swap_send_recv { rank = 5; after_iter = 7 }),
        spec A.Single A.No_freq );
      ( "dlBug(5)",
        `Oddeven (Fault.Deadlock_recv { rank = 5; after_iter = 7 }),
        spec A.Single A.Log10 );
      ( "noCritical(6.4)",
        `Ilcs (Fault.No_critical { rank = 6; thread = 4 }),
        spec A.Single A.Actual );
      ( "wrongOp(0)",
        `Ilcs (Fault.Wrong_collective_op { rank = 0 }),
        spec A.Single A.Actual ) ]
  in
  let rows =
    List.map
      (fun (name, kind, attrs) ->
        let normal, faulty, config =
          match kind with
          | `Oddeven fault ->
            ( (fst (Odd_even.run ~np:16 ~fault:Fault.No_fault ())).R.traces,
              (fst (Odd_even.run ~np:16 ~fault ())).R.traces,
              Config.make ~attrs () )
          | `Ilcs fault ->
            ( (fst (Ilcs.run ~np ~workers ~fault:Fault.No_fault ())).R.traces,
              (fst (Ilcs.run ~np ~workers ~fault ())).R.traces,
              Config.make
                ~filter:
                  (F.make [ F.Mpi_all; F.Omp_critical; F.Custom "CPU_Exec|memcpy" ])
                ~attrs () )
        in
        let c = Pipeline.compare_runs config ~normal ~faulty in
        let dt_top =
          if Array.length c.Pipeline.suspects = 0 then "-"
          else fst c.Pipeline.suspects.(0)
        in
        let smm = Smm.rank_changes ~normal:(mpi normal) ~faulty:(mpi faulty) in
        let smm_top = if Array.length smm = 0 then "-" else fst smm.(0) in
        [ name; dt_top; smm_top ])
      cases
  in
  Difftrace_util.Texttable.print
    ~headers:[ "Fault"; "DiffTrace top suspect"; "SMM baseline top (MPI view)" ]
    rows;
  print_endline
    "(the SMM baseline sees control-flow transition changes; DiffTrace's\n\
    \ filters/attributes additionally expose OpenMP and frequency structure)"

(* ------------------------------------------------------------------ *)
(* Bug classification (paper future work (3))                          *)
(* ------------------------------------------------------------------ *)

let classification () =
  section "CLS"
    "Bug classification from lattice/loop features (future work (3))";
  let module Features = Difftrace_classify.Features in
  let module Classifier = Difftrace_classify.Classifier in
  let ilcs_cfg =
    Config.make
      ~filter:(F.make [ F.Mpi_all; F.Omp_critical; F.Custom "CPU_Exec|memcpy" ])
      ~attrs:(spec A.Single A.Actual) ()
  in
  let oe_cfg = Config.make ~attrs:(spec A.Single A.Actual) () in
  let example ~seed (label, kind) =
    match kind with
    | `Ilcs fault ->
      let normal, _ = Ilcs.run ~np:4 ~workers:2 ~seed ~fault:Fault.No_fault () in
      let faulty, _ = Ilcs.run ~np:4 ~workers:2 ~seed ~fault () in
      let c =
        Pipeline.compare_runs ilcs_cfg ~normal:normal.R.traces
          ~faulty:faulty.R.traces
      in
      (label, Features.to_vector (Features.extract c ~faulty_outcome:faulty))
    | `Oddeven fault ->
      let normal, _ = Odd_even.run ~np:8 ~seed ~fault:Fault.No_fault () in
      let faulty, _ = Odd_even.run ~np:8 ~seed ~fault () in
      let c =
        Pipeline.compare_runs oe_cfg ~normal:normal.R.traces
          ~faulty:faulty.R.traces
      in
      (label, Features.to_vector (Features.extract c ~faulty_outcome:faulty))
  in
  let classes =
    [ ("swapBug", `Oddeven (Fault.Swap_send_recv { rank = 5; after_iter = 3 }));
      ("dlBug", `Oddeven (Fault.Deadlock_recv { rank = 5; after_iter = 3 }));
      ("noCritical", `Ilcs (Fault.No_critical { rank = 2; thread = 1 }));
      ("wrongSize", `Ilcs (Fault.Wrong_collective_size { rank = 1 }));
      ("wrongOp", `Ilcs (Fault.Wrong_collective_op { rank = 0 })) ]
  in
  let dataset seeds =
    List.concat_map (fun seed -> List.map (example ~seed) classes) seeds
  in
  let train = dataset [ 1; 2; 3 ] in
  let test = dataset [ 4; 5 ] in
  let m = Classifier.train train in
  Printf.printf
    "5 bug classes x 3 training seeds, tested on 2 unseen seeds\n";
  Printf.printf "features: %s\n"
    (String.concat ", " (Array.to_list Features.names));
  print_string (Classifier.render_confusion (Classifier.confusion m test));
  Printf.printf "held-out accuracy: %.2f (chance: 0.20)\n"
    (Classifier.accuracy m test)

(* ------------------------------------------------------------------ *)
(* Engine and memo-cache benchmarks                                    *)
(* ------------------------------------------------------------------ *)

let time f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

let engine_bench () =
  section "E1" "Engine: sequential vs. parallel JSM + NLR (same bytes out)";
  let cores = Domain.recommended_domain_count () in
  Printf.printf "host parallelism: %d core(s) (Domain.recommended_domain_count)\n"
    cores;
  if cores < 2 then
    print_endline
      "NOTE: single-core host — the parallel engine cannot beat sequential \
       wall-clock here; the byte-identity checks below still exercise it.";
  (* a synthetic context large enough that the O(n^2) Jaccard stage
     dominates: n objects with wide, dense, overlapping attribute sets *)
  let n_objects = if quick then 300 else 800 in
  let n_attrs = if quick then 300 else 800 in
  let universe = 3 * n_attrs in
  let big_ctx =
    Context.of_attr_sets
      (List.init n_objects (fun i ->
           ( Printf.sprintf "o%d" i,
             List.init n_attrs (fun j ->
                 Printf.sprintf "a%d" (((i * 7) + (j * 3)) mod universe)) )))
  in
  let js, t_seq =
    time (fun () -> Jsm.compute ~init:(Engine.init Engine.sequential) big_ctx)
  in
  let domains = 4 in
  let par = Engine.parallel ~domains () in
  let jp, t_par = time (fun () -> Jsm.compute ~init:(Engine.init par) big_ctx) in
  Printf.printf
    "JSM %dx%d: sequential %.3fs, parallel(%d) %.3fs — speedup %.2fx, \
     identical %b\n"
    n_objects n_objects t_seq domains t_par (t_seq /. t_par) (js = jp);
  metric "engine.jsm.sequential" t_seq;
  metric "engine.jsm.parallel4" t_par;
  metric ~unit:"x" "engine.jsm.speedup" (t_seq /. t_par);
  metric ~unit:"bool" "engine.jsm.identical" (if js = jp then 1.0 else 0.0);
  (* whole-pipeline parity on a real workload *)
  let np = if quick then 8 else 16 in
  let normal = (fst (Odd_even.run ~np ~fault:Fault.No_fault ())).R.traces in
  let faulty =
    (fst
       (Odd_even.run ~np
          ~fault:(Fault.Swap_send_recv { rank = 5; after_iter = 7 })
          ()))
      .R.traces
  in
  let compare_with engine =
    Pipeline.compare_runs
      (Config.default |> Config.with_engine engine)
      ~normal ~faulty
  in
  let cs, t_cseq = time (fun () -> compare_with Engine.sequential) in
  let cp, t_cpar = time (fun () -> compare_with par) in
  let render c =
    let suspect = fst c.Pipeline.suspects.(0) in
    Diffnlr.render ~title:"d" (diffnlr_exn c suspect)
  in
  let parity =
    cs.Pipeline.bscore = cp.Pipeline.bscore
    && cs.Pipeline.suspects = cp.Pipeline.suspects
    && render cs = render cp
  in
  Printf.printf
    "compare_runs oddeven%d: sequential %.3fs, parallel(%d) %.3fs; bscore, \
     suspects and diffNLR identical: %b\n"
    np t_cseq domains t_cpar parity;
  metric "engine.compare.sequential" t_cseq;
  metric "engine.compare.parallel4" t_cpar;
  metric ~unit:"bool" "engine.compare.identical" (if parity then 1.0 else 0.0)

let memo_bench () =
  section "E2" "Memo: cold vs. warm NLR-summary cache on the autotune grid";
  let np = if quick then 8 else 16 in
  let normal = (fst (Odd_even.run ~np ~fault:Fault.No_fault ())).R.traces in
  let faulty =
    (fst
       (Odd_even.run ~np
          ~fault:(Fault.Swap_send_recv { rank = 5; after_iter = 7 })
          ()))
      .R.traces
  in
  let r_cold, t_cold =
    time (fun () -> autotune_exn (Autotune.search ~normal ~faulty ()))
  in
  let c = r_cold.Autotune.cache in
  Printf.printf
    "cold sweep: %d configs in %.3fs — cache %d hits / %d misses (hit rate \
     %.0f%%)\n"
    r_cold.Autotune.evaluated t_cold c.Memo.hits c.Memo.misses
    (100.0 *. Memo.hit_rate c);
  metric "memo.sweep.cold" t_cold;
  metric ~unit:"ratio" "memo.sweep.cold_hit_rate" (Memo.hit_rate c);
  (* a second sweep against the same memo never re-summarizes anything *)
  let memo = Memo.create () in
  let _ = Autotune.search ~memo ~normal ~faulty () in
  let r_warm, t_warm =
    time (fun () -> autotune_exn (Autotune.search ~memo ~normal ~faulty ()))
  in
  let w = r_warm.Autotune.cache in
  Printf.printf
    "warm sweep: %d configs in %.3fs — cache %d hits / %d misses (speedup \
     %.2fx)\n"
    r_warm.Autotune.evaluated t_warm w.Memo.hits w.Memo.misses
    (t_cold /. t_warm);
  metric "memo.sweep.warm" t_warm;
  metric ~unit:"x" "memo.sweep.speedup" (t_cold /. t_warm)

let store_bench () =
  section "E3" "Store: cold vs. warm disk-backed analysis (same bytes out)";
  let np, workers = ilcs_args in
  let normal = (fst (Ilcs.run ~np ~workers ~fault:Fault.No_fault ())).R.traces in
  let faulty =
    (fst (Ilcs.run ~np ~workers ~fault:(Fault.Wrong_collective_size { rank = 2 }) ()))
      .R.traces
  in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ()) "difftrace_bench_store"
  in
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  let with_store f =
    match Store.load ~dir with
    | Error e -> failwith ("store: " ^ Store.error_to_string e)
    | Ok st ->
      let v = f st in
      (match Store.flush st with
      | Ok () -> ()
      | Error e -> failwith ("store flush: " ^ Store.error_to_string e));
      (v, st)
  in
  let config = Config.make () in
  let c_none, t_none =
    time (fun () -> Pipeline.compare_runs config ~normal ~faulty)
  in
  let (c_cold, _), t_cold =
    time (fun () ->
        with_store (fun st -> Pipeline.compare_runs ~store:st config ~normal ~faulty))
  in
  let (c_warm, st), t_warm =
    time (fun () ->
        with_store (fun st -> Pipeline.compare_runs ~store:st config ~normal ~faulty))
  in
  let same a b =
    a.Pipeline.bscore = b.Pipeline.bscore
    && a.Pipeline.suspects = b.Pipeline.suspects
    && a.Pipeline.jsm_d = b.Pipeline.jsm_d
  in
  let identical = same c_none c_cold && same c_none c_warm in
  let s = Store.stats st in
  Printf.printf
    "compare ilcs np=%d: storeless %.3fs, cold+flush %.3fs, warm %.3fs \
     (speedup %.2fx vs. storeless); results identical: %b\n"
    np t_none t_cold t_warm (t_none /. t_warm) identical;
  Printf.printf "store after warm run: %d summaries, %d matrices, %d bytes\n"
    s.Store.summaries s.Store.matrices s.Store.file_bytes;
  metric "store.compare.nostore" t_none;
  metric "store.compare.cold" t_cold;
  metric "store.compare.warm" t_warm;
  metric ~unit:"x" "store.compare.warm_speedup" (t_none /. t_warm);
  metric ~unit:"bool" "store.compare.identical" (if identical then 1.0 else 0.0);
  metric ~unit:"B" "store.file_bytes" (float_of_int s.Store.file_bytes)

(* ------------------------------------------------------------------ *)
(* Bechamel perf benches                                               *)
(* ------------------------------------------------------------------ *)

let perf () =
  let open Bechamel in
  section "PERF" "Bechamel micro-benchmarks (ns/run, OLS estimate)";
  (* inputs prepared outside the timed closures *)
  let rng = Difftrace_util.Prng.create 17 in
  let ids =
    Array.init 20_000 (fun _ -> Difftrace_util.Prng.int rng 40)
  in
  let raw_bytes = String.init 60_000 (fun i -> Char.chr (Char.code 'a' + (i mod 7))) in
  let compressed = Lzw.compress raw_bytes in
  let ts = (fst (Odd_even.run ~np:16 ~fault:Fault.No_fault ())).R.traces in
  let analysis = Pipeline.analyze (Config.make ()) ts in
  let big_ctx =
    Context.of_attr_sets
      (List.init 40 (fun i ->
           ( Printf.sprintf "o%d" i,
             List.init 25 (fun j -> Printf.sprintf "a%d" ((i * 7 + j * 3) mod 60)) )))
  in
  let dist =
    let j = Jsm.of_context big_ctx in
    Jsm.rows (Jsm.to_distance j)
  in
  let seq_a = Array.init 600 (fun i -> (i * 37) mod 11) in
  let seq_b = Array.init 600 (fun i -> (i * 53) mod 11) in
  let tsp = Tsp.make ~cities:40 ~seed:3 in
  let tests =
    [ Test.make ~name:"lzw.compress-60kB" (Staged.stage (fun () -> Lzw.compress raw_bytes));
      Test.make ~name:"lzw.decompress-60kB"
        (Staged.stage (fun () -> Lzw.decompress compressed));
      Test.make ~name:"nlr.k10-20k-calls"
        (Staged.stage (fun () ->
             let table = Nlr.Loop_table.create () in
             Nlr.of_ids ~table ~k:10 ids));
      Test.make ~name:"nlr.k50-20k-calls"
        (Staged.stage (fun () ->
             let table = Nlr.Loop_table.create () in
             Nlr.of_ids ~table ~k:50 ids));
      Test.make ~name:"lattice.godin-40x60"
        (Staged.stage (fun () -> Lattice.of_context_incremental big_ctx));
      Test.make ~name:"lattice.next-closure-40x60"
        (Staged.stage (fun () -> Lattice.of_context_batch big_ctx));
      Test.make ~name:"jsm.of-context-40"
        (Staged.stage (fun () -> Jsm.of_context big_ctx));
      Test.make ~name:"myers.diff-600"
        (Staged.stage (fun () -> Myers.diff ~equal:Int.equal seq_a seq_b));
      Test.make ~name:"linkage.ward-40"
        (Staged.stage (fun () -> Linkage.cluster Linkage.Ward dist));
      Test.make ~name:"linkage.single-40"
        (Staged.stage (fun () -> Linkage.cluster Linkage.Single dist));
      Test.make ~name:"tsp.2opt-40-cities"
        (Staged.stage (fun () -> Tsp.solve tsp ~seed:9));
      Test.make ~name:"pipeline.analyze-oddeven16"
        (Staged.stage (fun () -> Pipeline.analyze (Config.make ()) ts));
      Test.make ~name:"bscore.16"
        (Staged.stage (fun () ->
             let d = Linkage.cluster Linkage.Ward (Jsm.rows (Jsm.to_distance analysis.Pipeline.jsm)) in
             Bscore.score d d)) ]
  in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~kde:None () in
  let instance = Toolkit.Instance.monotonic_clock in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let ols =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
          instance results
      in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] ->
            Printf.printf "%-32s %12.0f ns/run\n" name est;
            metric ~unit:"ns/run" ("perf." ^ name) est
          | _ -> Printf.printf "%-32s (no estimate)\n" name)
        ols)
    tests

(* ------------------------------------------------------------------ *)
(* --query: event-DB index build/load and query latency                *)
(* ------------------------------------------------------------------ *)

let query_bench () =
  section "Q1" "Event DB: cold index build vs. warm load, query latency";
  let np, workers = ilcs_args in
  let normal = (fst (Ilcs.run ~np ~workers ~fault:Fault.No_fault ())).R.traces in
  let faulty =
    (fst (Ilcs.run ~np ~workers ~fault:(Fault.Wrong_collective_size { rank = 2 }) ()))
      .R.traces
  in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ()) "difftrace_bench_edb"
  in
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  let db, t_build = time (fun () -> Eventdb.build normal) in
  let db_faulty = Eventdb.build faulty in
  (match Eventdb.save ~dir db with
  | Ok () -> ()
  | Error m -> failwith ("eventdb save: " ^ m));
  let _, t_load =
    time (fun () ->
        match Eventdb.load ~dir ~digest:db.Eventdb.db_digest with
        | Ok db -> db
        | Error m -> failwith ("eventdb load: " ^ m))
  in
  Printf.printf
    "%d threads, %d events: cold build %.4fs, warm load %.4fs (%.1fx)\n"
    (Array.length db.Eventdb.db_threads)
    (Trace_set.total_events normal) t_build t_load (t_build /. t_load);
  metric "eventdb.build.cold" t_build;
  metric "eventdb.load.warm" t_load;
  metric ~unit:"x" "eventdb.load.speedup" (t_build /. t_load);
  let top_fn =
    let funcs =
      match Query.parse "funcs limit 1" with
      | Ok q -> Query.eval db q
      | Error m -> failwith m
    in
    match funcs with
    | Ok (Query.R_funcs { rows = (name, _, _) :: _; _ }) -> name
    | _ -> failwith "eventdb: no functions in the corpus"
  in
  let reps = if quick then 50 else 200 in
  let bench_q name ?against q =
    let ast = match Query.parse q with Ok a -> a | Error m -> failwith m in
    let _, t =
      time (fun () ->
          for _ = 1 to reps do
            ignore (Query.eval db ?against ast)
          done)
    in
    let per = t /. float_of_int reps in
    Printf.printf "  %-10s %.6f s/query   (%s)\n" name per q;
    metric (Printf.sprintf "eventdb.query.%s" name) per
  in
  bench_q "count" (Printf.sprintf "count %s" top_fn);
  bench_q "list" (Printf.sprintf "list %s limit 10" top_fn);
  bench_q "sites" (Printf.sprintf "sites %s" top_fn);
  bench_q "diverge" ~against:db_faulty "diverge"

(* ------------------------------------------------------------------ *)
(* --sketch: MinHash/LSH sketch tier vs. exact JSM                     *)
(* ------------------------------------------------------------------ *)

module Sketch = Difftrace_cluster.Sketch

let c_jaccard_evals = Telemetry.Counter.make "jsm.jaccard_evals"

(* clustered synthetic corpus: groups of ~12 traces sharing a core
   attribute block plus per-trace noise — the sparse-similarity shape
   (most pairs near 0) the sketch tier is built for, and the shape real
   fleet corpora take (a few behavior classes, many members). *)
let sketch_context n =
  let group_size = 12 in
  Context.of_attr_sets
    (List.init n (fun i ->
         let g = i / group_size in
         let core = List.init 20 (fun j -> Printf.sprintf "g%d.c%d" g j) in
         let noise = List.init 6 (fun j -> Printf.sprintf "o%d.n%d" i j) in
         (Printf.sprintf "t%d" i, core @ noise)))

let sketch_bench () =
  (* counters only move while telemetry is on; --sketch needs
     jsm.jaccard_evals regardless of --json *)
  if not (Telemetry.enabled ()) then Telemetry.enable ();
  section "SK1" "MinHash/LSH sketch tier vs. exact JSM";
  Printf.printf "k=%d hashes, %d rows/band (%d bands), LSH threshold ~%.3f\n"
    Sketch.default_k Sketch.rows_per_band
    (Sketch.bands_for Sketch.default_k)
    (Sketch.threshold Sketch.default_k);
  let sizes =
    if quick then [ 60; 120; 240; 480 ] else [ 60; 120; 240; 480; 960; 1920 ]
  in
  let timed_evals f =
    let v0 = Telemetry.Counter.value c_jaccard_evals in
    let r, dt = time f in
    (r, dt, Telemetry.Counter.value c_jaccard_evals - v0)
  in
  let crossover = ref None in
  let last_ratio = ref 1.0 in
  let rows =
    List.map
      (fun n ->
        let ctx = sketch_context n in
        let exact, exact_s, exact_evals =
          timed_evals (fun () -> Jsm.compute ~init:Array.init ctx)
        in
        let sketch, sketch_s, sketch_evals =
          timed_evals (fun () ->
              let sigs = Sketch.of_context ctx in
              let candidates = Sketch.candidates sigs in
              Jsm.compute_sketch ~init:Array.init ~candidates ctx)
        in
        (* candidate pairs carry exact Jaccard values, so the sketch
           tier's whole approximation error is the true similarity of
           the pairs LSH pruned *)
        let max_err = ref 0.0 in
        for i = 0 to n - 1 do
          for j = i + 1 to n - 1 do
            let d = Float.abs (Jsm.get exact i j -. Jsm.get sketch i j) in
            if d > !max_err then max_err := d
          done
        done;
        if !crossover = None && sketch_s < exact_s then crossover := Some n;
        last_ratio :=
          float_of_int sketch_evals /. float_of_int (max 1 exact_evals);
        metric (Printf.sprintf "sketch.n%d.exact_s" n) exact_s;
        metric (Printf.sprintf "sketch.n%d.sketch_s" n) sketch_s;
        metric ~unit:"evals"
          (Printf.sprintf "sketch.n%d.exact_evals" n)
          (float_of_int exact_evals);
        metric ~unit:"evals"
          (Printf.sprintf "sketch.n%d.sketch_evals" n)
          (float_of_int sketch_evals);
        metric ~unit:"jaccard" (Printf.sprintf "sketch.n%d.max_error" n) !max_err;
        [ string_of_int n;
          Printf.sprintf "%.4f" exact_s;
          Printf.sprintf "%.4f" sketch_s;
          string_of_int exact_evals;
          string_of_int sketch_evals;
          Printf.sprintf "%.1f%%" (100.0 *. !last_ratio);
          Printf.sprintf "%.3f" !max_err ])
      sizes
  in
  Difftrace_util.Texttable.print
    ~headers:
      [ "n"; "exact s"; "sketch s"; "exact evals"; "sketch evals"; "evals %";
        "max |err|" ]
    rows;
  (match !crossover with
  | Some n ->
    Printf.printf "sketch faster than exact from n=%d in this sweep\n" n;
    metric ~unit:"n" "sketch.crossover_n" (float_of_int n)
  | None ->
    print_endline "sketch never beat exact wall-clock in this sweep");
  metric ~unit:"ratio" "sketch.largest.evals_ratio" !last_ratio;
  (* acceptance bar: at the largest corpus the sketch tier must do
     < 25% of exact's Jaccard evaluations *)
  if !last_ratio >= 0.25 then begin
    Printf.eprintf
      "bench: FAIL — sketch did %.1f%% of exact's Jaccard evaluations at the \
       largest corpus (bar: < 25%%)\n"
      (100.0 *. !last_ratio);
    exit 1
  end;
  Printf.printf
    "largest corpus: sketch evaluated %.1f%% of exact's pairs (bar: < 25%%)\n"
    (100.0 *. !last_ratio)

(* ------------------------------------------------------------------ *)
(* --vdiff: k-way variational merge wall time                          *)
(* ------------------------------------------------------------------ *)

(* synthetic run family: a shared core sequence with per-run edits —
   one block only the "bad" half carries, plus per-run noise — the
   shape a campaign's run set takes (one structural divergence under a
   fault axis, scheduler jitter everywhere else) *)
let vdiff_runs k len =
  List.init k (fun i ->
      let bad = i >= k / 2 in
      let elems =
        List.concat_map
          (fun j ->
            let core = Printf.sprintf "f%d" j in
            if bad && j = len / 2 then [ core; Printf.sprintf "bad%d" j ]
            else if (j + i) mod 17 = 0 then
              [ core; Printf.sprintf "r%d.n%d" i j ]
            else [ core ])
          (List.init len Fun.id)
      in
      { Variational.vr_name = Printf.sprintf "run%d" i;
        vr_elems = elems;
        vr_axes =
          [ ("fault", (if bad then "f1" else "none"));
            ("seed", string_of_int i) ];
        vr_bad = bad })

let vdiff_bench () =
  section "V1" "k-way variational merge: wall time and alignment width";
  let len = if quick then 120 else 400 in
  let ks = if quick then [ 2; 4; 8 ] else [ 2; 4; 8; 16; 32 ] in
  let rows =
    List.map
      (fun k ->
        let runs = vdiff_runs k len in
        let v, t = time (fun () -> Variational.merge runs) in
        (* the merge must stay lossless at every k *)
        List.iteri
          (fun i r ->
            if Variational.reconstruct v i <> r.Variational.vr_elems then
              failwith (Printf.sprintf "vdiff: k=%d run %d not lossless" k i))
          runs;
        let cols = Array.length v.Variational.columns in
        let nregions = List.length (Variational.regions v) in
        metric (Printf.sprintf "vdiff.k%d.merge_s" k) t;
        metric ~unit:"columns" (Printf.sprintf "vdiff.k%d.columns" k)
          (float_of_int cols);
        [ string_of_int k;
          Printf.sprintf "%.4f" t;
          string_of_int cols;
          string_of_int nregions;
          (match Variational.discriminating v with
          | Some c -> Variational.condition_to_string c
          | None -> "-") ])
      ks
  in
  Difftrace_util.Texttable.print
    ~headers:[ "k"; "merge s"; "columns"; "regions"; "condition" ]
    rows

(* ------------------------------------------------------------------ *)
(* --frontend: ingestion-frontend throughput sweep                     *)
(* ------------------------------------------------------------------ *)

module Fe = Difftrace_frontend.Frontend
module Fe_cilog = Difftrace_frontend.Cilog
module Fe_syscall = Difftrace_frontend.Syscall

(* synthetic GH-Actions-style build log: [steps] ##[group] blocks of
   [lines_per_step] timestamped lines carrying the token shapes the
   normalizer must fold (clocks, paths, counters, hex) *)
let synth_cilog ~steps ~lines_per_step ~fail =
  let b = Buffer.create (steps * lines_per_step * 56) in
  for s = 0 to steps - 1 do
    let ts l = Printf.sprintf "10:%02d:%02d" (s mod 60) (l mod 60) in
    Buffer.add_string b
      (Printf.sprintf "%s ##[group]phase %d\n" (ts 0) s);
    for l = 1 to lines_per_step do
      if fail && s = steps / 2 && l = lines_per_step / 2 then
        Buffer.add_string b
          (Printf.sprintf "%s ERROR /src/mod%d.ml build failed\n" (ts l) l)
      else
        Buffer.add_string b
          (Printf.sprintf "%s compiled /src/mod%d.ml in %d ms id %08x\n"
             (ts l) l (l mod 97) (0xbeef0000 + l))
    done;
    Buffer.add_string b (Printf.sprintf "%s ##[endgroup]\n" (ts 61))
  done;
  Buffer.contents b

(* synthetic strace capture: [pids] threads of [calls] syscalls each,
   one per-thread exit leaf; the faulty variant takes a SIGSEGV *)
let synth_strace ~pids ~calls ~fail =
  let names = [| "read"; "write"; "openat"; "close"; "mmap"; "futex" |] in
  let b = Buffer.create (pids * calls * 36) in
  for p = 0 to pids - 1 do
    for c = 0 to calls - 1 do
      if fail && p = 0 && c = calls / 2 then
        Buffer.add_string b
          (Printf.sprintf "[pid %d] --- SIGSEGV {si_signo=SIGSEGV} ---\n"
             (1000 + p))
      else
        Buffer.add_string b
          (Printf.sprintf "[pid %d] %s(%d) = %d\n" (1000 + p)
             names.((c + p) mod Array.length names)
             c (c mod 7))
    done;
    Buffer.add_string b
      (Printf.sprintf "[pid %d] +++ exited with 0 +++\n" (1000 + p))
  done;
  Buffer.contents b

let count_lines s =
  String.fold_left (fun n c -> if c = '\n' then n + 1 else n) 0 s

let frontend_bench () =
  section "N1" "Ingestion frontends: throughput sweep (seq vs. parallel)";
  let domains = max 2 (Domain.recommended_domain_count ()) in
  let par = Engine.parallel ~domains () in
  let par_runner =
    let r = Engine.runner par in
    { Fe.run = (fun n f -> r.Engine.run n f) }
  in
  let scales = if quick then [ 1; 4 ] else [ 1; 4; 16 ] in
  let cases =
    List.concat_map
      (fun scale ->
        [ ( Fe_cilog.frontend,
            Printf.sprintf "cilog.x%d" scale,
            synth_cilog ~steps:(8 * scale) ~lines_per_step:200 ~fail:false );
          ( Fe_syscall.frontend,
            Printf.sprintf "syscall.x%d" scale,
            synth_strace ~pids:(4 * scale) ~calls:400 ~fail:false ) ])
      scales
  in
  let rows =
    List.map
      (fun (fe, label, input) ->
        let ingest runner =
          match Fe.ingest_string fe ~runner input with
          | Ok ts -> ts
          | Error e ->
            failwith
              (Printf.sprintf "frontend bench %s: %s" label
                 (Fe.error_to_string e))
        in
        let ts, t_seq = time (fun () -> ingest Fe.sequential_runner) in
        let tp, t_par = time (fun () -> ingest par_runner) in
        (* the parallel path must stay observably identical *)
        if Fe.digest ts <> Fe.digest tp then
          failwith (Printf.sprintf "frontend bench %s: seq/par digest" label);
        let lines = count_lines input in
        let lps = float_of_int lines /. t_seq in
        metric (Printf.sprintf "frontend.%s.ingest_s" label) t_seq;
        metric ~unit:"lines/s" (Printf.sprintf "frontend.%s.lines_per_s" label)
          lps;
        [ label;
          string_of_int lines;
          Printf.sprintf "%.1f KB" (float_of_int (String.length input) /. 1e3);
          string_of_int (Trace_set.cardinal ts);
          string_of_int (Trace_set.total_events ts);
          Printf.sprintf "%.4f" t_seq;
          Printf.sprintf "%.4f" t_par;
          Printf.sprintf "%.0f" lps ])
      cases
  in
  Difftrace_util.Texttable.print
    ~headers:
      [ "input"; "lines"; "bytes"; "traces"; "events"; "seq s"; "par s";
        "lines/s" ]
    rows;
  (* one end-to-end compare per frontend: synthesize a pass/fail pair,
     ingest both sides, and run the whole pipeline — ingestion must not
     be the only stage this mode times *)
  section "N2" "Ingestion frontends: end-to-end compare wall time";
  let config = Config.default |> Config.with_filter (F.of_spec "11.all") in
  let e2e =
    List.map
      (fun (name, normal, faulty) ->
        let tmp tag text =
          let file = Filename.temp_file ("bench-fe-" ^ tag) ".log" in
          let oc = open_out_bin file in
          output_string oc text;
          close_out oc;
          file
        in
        let a = tmp (name ^ "-normal") normal
        and b = tmp (name ^ "-faulty") faulty in
        let session = Session.create () in
        let resp, t =
          time (fun () ->
              autotune_exn
                (Session.compare session config
                   { Session.cp_normal = Session.Ingest { path = a; frontend = name };
                     cp_faulty = Session.Ingest { path = b; frontend = name };
                     cp_diffnlr = None }))
        in
        Sys.remove a;
        Sys.remove b;
        metric (Printf.sprintf "frontend.%s.compare_s" name) t;
        [ name;
          Printf.sprintf "%.3f" resp.Session.cp_bscore;
          string_of_int (Array.length resp.Session.cp_suspects);
          Printf.sprintf "%.4f" t ])
      [ ( "cilog",
          synth_cilog ~steps:8 ~lines_per_step:120 ~fail:false,
          synth_cilog ~steps:8 ~lines_per_step:120 ~fail:true );
        ( "syscall",
          synth_strace ~pids:4 ~calls:300 ~fail:false,
          synth_strace ~pids:4 ~calls:300 ~fail:true ) ]
  in
  Difftrace_util.Texttable.print
    ~headers:[ "frontend"; "B-score"; "suspects"; "compare s" ]
    e2e

(* ------------------------------------------------------------------ *)
(* --json trajectory artifact                                          *)
(* ------------------------------------------------------------------ *)

let bench_schema_version = "difftrace-bench/1"

let write_json file =
  let mode =
    Json.Obj
      [ ("quick", Json.Bool opts.quick);
        ("perf", Json.Bool opts.perf);
        ("engine", Json.Bool opts.engine);
        ("store", Json.Bool opts.store);
        ("sketch", Json.Bool opts.sketch);
        ("query", Json.Bool opts.query);
        ("vdiff", Json.Bool opts.vdiff);
        ("frontend", Json.Bool opts.frontend) ]
  in
  let metric_objs =
    List.rev_map
      (fun (name, value, unit) ->
        Json.Obj
          [ ("name", Json.String name);
            ("value", Json.Float value);
            ("unit", Json.String unit) ])
      !metrics
  in
  let doc =
    Json.Obj
      [ ("schema", Json.String bench_schema_version);
        ("mode", mode);
        ("metrics", Json.List metric_objs);
        ("telemetry", Telemetry.report_to_json (Telemetry.report ())) ]
  in
  let oc = open_out file in
  output_string oc (Json.to_string_pretty doc);
  close_out oc;
  Printf.printf "\nbench: wrote %d metric(s) to %s (%s)\n"
    (List.length !metrics) file bench_schema_version

let () =
  (* with --json, also collect stage spans and pipeline counters so the
     artifact captures where the time went, not just the headline numbers *)
  if opts.json <> None then Telemetry.enable ();
  if engine_only then begin
    engine_bench ();
    memo_bench ()
  end
  else if store_only then store_bench ()
  else if sketch_only then sketch_bench ()
  else if query_only then query_bench ()
  else if vdiff_only then vdiff_bench ()
  else if frontend_only then frontend_bench ()
  else if not perf_only then begin
    table_i ();
    odd_even_walkthrough ();
    sec_iig ();
    ilcs_case_study ();
    lulesh_study ();
    heat_study ();
    ablations ();
    nlr_repeats_ablation ();
    stability ();
    baseline_comparison ();
    classification ();
    engine_bench ();
    memo_bench ();
    store_bench ();
    print_newline ();
    print_endline "All reproduction sections completed.";
    print_endline "Run with --perf for Bechamel micro-benchmarks."
  end
  else perf ();
  Option.iter write_json opts.json
