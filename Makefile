# Convenience targets mirroring what CI runs (.github/workflows/ci.yml).

.PHONY: all build test bench bench-smoke campaign-smoke fuzz-smoke store-smoke sketch-smoke serve-smoke query-smoke vdiff-smoke frontend-smoke fmt clean

all: build

build:
	dune build

test:
	dune runtest

# full paper reproduction + trajectory artifact
bench:
	dune exec bench/main.exe -- --json BENCH_OUT.json

# the CI smoke pass: quick engine/memo benches + a parseable artifact
bench-smoke:
	dune build @bench-smoke

# the campaign smoke pass: a 2-fault x 3-seed selftest matrix (one
# deadlocking fault, one crashing fault) must complete every cell,
# resume without re-executing, and render its triage report
campaign-smoke:
	dune build @campaign-smoke

# the persistent-store smoke pass: cold vs. warm disk-backed analysis
# (CI pairs this with an actions/cache of the store directory)
store-smoke:
	dune exec bench/main.exe -- --store --quick

# the sketch-tier smoke pass: MinHash/LSH vs. exact JSM sweep; dies
# unless the sketch tier does <25% of exact's Jaccard evaluations at
# the largest corpus (CI additionally asserts strictly-fewer evals at
# every size off the JSON artifact)
sketch-smoke:
	dune exec bench/main.exe -- --sketch --quick --json sketch-bench-ci.json

# the serve smoke pass: boot a socket daemon, run one scripted client
# transcript (record -> analyze -> compare -> shutdown), and check the
# per-request rpc.* telemetry profile it writes on exit
serve-smoke: build
	sh scripts/serve_smoke.sh

# the query smoke pass: record two archives, drill into them with the
# event-DB query language, prove the warm rerun rebuilds no index, and
# emit the difftrace-bench/1 artifact with the build/load/query timings
query-smoke: build
	sh scripts/query_smoke.sh

# the vdiff smoke pass: a fault x seed selftest matrix through
# campaign run -> report --variational; the minimal discriminating
# condition must name exactly the injected fault axis, and a warm
# rerun must replay the merged alignment out of the store
vdiff-smoke: build
	sh scripts/vdiff_smoke.sh

# the fault-injection corpora on their own: deterministic bit flips,
# truncations, chunk deletions and garbage appends against v1/v2
# archives (see test/test_archive.ml, "resilience" suite), then the
# same mutation battery against the ingestion frontends through the
# conformance checker (scripts/frontend_fuzz.sh)
fuzz-smoke: build
	dune exec test/test_archive.exe -- test resilience
	sh scripts/frontend_fuzz.sh

# the frontend smoke pass: ingest + compare the checked-in CI-log and
# strace fixtures end to end, then the --frontend ingest-throughput
# bench with its difftrace-bench/1 artifact
frontend-smoke: build
	_build/default/bin/difftrace_cli.exe compare \
	  test/corpus/cilog/build_pass.log test/corpus/cilog/build_fail.log \
	  --frontend cilog > /dev/null
	_build/default/bin/difftrace_cli.exe compare \
	  test/corpus/syscall/normal.strace test/corpus/syscall/faulty.strace \
	  --frontend syscall > /dev/null
	dune exec bench/main.exe -- --frontend --quick --json frontend-bench-ci.json

# rewrite sources in place with ocamlformat (advisory in CI; see the
# non-blocking fmt job)
fmt:
	dune fmt

clean:
	dune clean
