# Convenience targets mirroring what CI runs (.github/workflows/ci.yml).

.PHONY: all build test bench bench-smoke fmt clean

all: build

build:
	dune build

test:
	dune runtest

# full paper reproduction + trajectory artifact
bench:
	dune exec bench/main.exe -- --json BENCH_OUT.json

# the CI smoke pass: quick engine/memo benches + a parseable artifact
bench-smoke:
	dune build @bench-smoke

# rewrite sources in place with ocamlformat (advisory in CI; see the
# non-blocking fmt job)
fmt:
	dune fmt

clean:
	dune clean
