open Difftrace_parlot
open Difftrace_trace

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* LZW codec                                                           *)
(* ------------------------------------------------------------------ *)

let test_lzw_empty () =
  Alcotest.(check string) "empty roundtrip" "" (Lzw.decompress (Lzw.compress ""))

let test_lzw_simple () =
  let s = "abcabcabcabc" in
  Alcotest.(check string) "roundtrip" s (Lzw.decompress (Lzw.compress s))

let test_lzw_kwkwk () =
  (* the classic pathological case: a phrase referenced while being
     defined (runs of one character exercise it immediately) *)
  let s = String.make 64 'a' in
  Alcotest.(check string) "KwKwK" s (Lzw.decompress (Lzw.compress s))

let test_lzw_compresses_repetition () =
  let s = String.concat "" (List.init 500 (fun _ -> "MPI_Send;MPI_Recv;")) in
  let c = Lzw.compress s in
  Alcotest.(check bool) "repetitive input shrinks" true
    (String.length c < String.length s / 4);
  Alcotest.(check string) "and still roundtrips" s (Lzw.decompress c)

let test_lzw_streaming_matches_oneshot () =
  let s = "the quick brown fox jumps over the lazy dog the quick brown fox" in
  let e = Lzw.encoder () in
  String.iter (Lzw.feed e) s;
  Alcotest.(check int) "input size counted" (String.length s) (Lzw.input_size e);
  let streamed = Lzw.finish e in
  Alcotest.(check string) "same output as one-shot" (Lzw.compress s) streamed

let test_lzw_output_grows_incrementally () =
  let e = Lzw.encoder () in
  Lzw.feed_string e "abababababababababab";
  let mid = Lzw.output_size e in
  Alcotest.(check bool) "emitted codes before finish" true (mid > 0)

let test_lzw_corrupt () =
  Alcotest.check_raises "missing EOS"
    (Invalid_argument "Lzw.decompress: missing end-of-stream") (fun () ->
      ignore (Lzw.decompress "\x05"))

let varints codes =
  let b = Buffer.create 8 in
  List.iter (Difftrace_util.Varint.write b) codes;
  Buffer.contents b

let test_lzw_first_code_phrase () =
  (* a stream whose very first code references the phrase table, which
     is necessarily empty at that point: must be rejected cleanly *)
  Alcotest.check_raises "phrase code first"
    (Invalid_argument "Lzw.decompress: bad code") (fun () ->
      ignore (Lzw.decompress (varints [ 257; 256 ])))

let test_lzw_trailing_bytes () =
  Alcotest.check_raises "bytes after EOS"
    (Invalid_argument "Lzw.decompress: trailing bytes after end-of-stream")
    (fun () -> ignore (Lzw.decompress (Lzw.compress "abc" ^ "\x00")))

let test_lzw_code_out_of_range () =
  (* first literal is fine, but the next code skips far past the one
     phrase the decoder could know about *)
  Alcotest.check_raises "undefined phrase code"
    (Invalid_argument "Lzw.decompress: bad code") (fun () ->
      ignore (Lzw.decompress (varints [ Char.code 'a'; 300; 256 ])))

let test_lzw_decoder_streaming_parity () =
  (* byte-at-a-time incremental decode = one-shot, across chunk cuts
     that split varint codes *)
  let s = String.concat "" (List.init 50 (fun i -> Printf.sprintf "fn_%d;" (i mod 7))) in
  let c = Lzw.compress s in
  let d = Lzw.decoder () in
  let out = Buffer.create (String.length s) in
  String.iter
    (fun ch ->
      Lzw.decode_feed d (String.make 1 ch);
      Buffer.add_string out (Lzw.decode_take d))
    c;
  Buffer.add_string out (Lzw.decode_finish d);
  Alcotest.(check bool) "decoder reports completion" true (Lzw.decode_finished d);
  Alcotest.(check string) "streaming = one-shot" s (Buffer.contents out)

let prop_lzw_roundtrip =
  qtest "lzw roundtrip on small-alphabet strings" ~count:300
    QCheck2.Gen.(string_size ~gen:(char_range 'a' 'f') (int_range 0 500))
    (fun s -> Lzw.decompress (Lzw.compress s) = s)

let prop_lzw_roundtrip_binary =
  qtest "lzw roundtrip on binary strings"
    QCheck2.Gen.(string_size (int_range 0 300))
    (fun s -> Lzw.decompress (Lzw.compress s) = s)

(* ------------------------------------------------------------------ *)
(* Tracer                                                              *)
(* ------------------------------------------------------------------ *)

let mk_tracer ?(level = Tracer.Main_image) () =
  let symtab = Symtab.create () in
  (symtab, Tracer.create ~symtab ~level ~pid:1 ~tid:2)

let test_tracer_records_and_decodes () =
  let symtab, tr = mk_tracer () in
  Tracer.on_call tr "main";
  Tracer.on_call tr "MPI_Init";
  Tracer.on_return tr "MPI_Init";
  Tracer.on_return tr "main";
  Alcotest.(check int) "events recorded" 4 (Tracer.events_recorded tr);
  let data, truncated = Tracer.finish tr in
  Alcotest.(check bool) "not truncated" false truncated;
  let t = Tracer.decode ~symtab ~pid:1 ~tid:2 ~truncated data in
  Alcotest.(check int) "pid" 1 t.Trace.pid;
  Alcotest.(check int) "tid" 2 t.Trace.tid;
  Alcotest.(check (list string)) "decoded events"
    [ "main"; "MPI_Init"; "ret MPI_Init"; "ret main" ]
    (Trace.to_strings symtab t)

let test_tracer_image_filter () =
  let _, tr = mk_tracer ~level:Tracer.Main_image () in
  Tracer.on_call tr "user_fn";
  Tracer.on_call ~image:Tracer.Library tr "memcpy";
  Alcotest.(check int) "library call dropped in main-image" 1
    (Tracer.events_recorded tr);
  let _, tr2 = mk_tracer ~level:Tracer.All_images () in
  Tracer.on_call tr2 "user_fn";
  Tracer.on_call ~image:Tracer.Library tr2 "memcpy";
  Alcotest.(check int) "library call kept in all-images" 2
    (Tracer.events_recorded tr2)

let test_tracer_scoped_exception () =
  let symtab, tr = mk_tracer () in
  (try Tracer.scoped tr "f" (fun () -> failwith "boom") with Failure _ -> ());
  Tracer.set_truncated tr;
  let data, truncated = Tracer.finish tr in
  let t = Tracer.decode ~symtab ~pid:1 ~tid:2 ~truncated data in
  Alcotest.(check bool) "marked truncated" true t.Trace.truncated;
  Alcotest.(check (list string)) "no return after exception" [ "f" ]
    (Trace.to_strings symtab t)

let prop_tracer_roundtrip =
  qtest "tracer records arbitrary call/return streams" ~count:100
    QCheck2.Gen.(list_size (int_range 0 200) (pair (int_range 0 20) bool))
    (fun evs ->
      let symtab = Symtab.create () in
      let tr = Tracer.create ~symtab ~level:Tracer.All_images ~pid:0 ~tid:0 in
      let names = List.map (fun (i, c) -> (Printf.sprintf "fn%d" i, c)) evs in
      List.iter
        (fun (n, c) -> if c then Tracer.on_call tr n else Tracer.on_return tr n)
        names;
      let data, _ = Tracer.finish tr in
      let t = Tracer.decode ~symtab ~pid:0 ~tid:0 ~truncated:false data in
      Trace.to_strings symtab t
      = List.map (fun (n, c) -> if c then n else "ret " ^ n) names)

(* ------------------------------------------------------------------ *)
(* Capture                                                             *)
(* ------------------------------------------------------------------ *)

let test_capture_shared_symtab_and_stats () =
  let cap = Capture.create () in
  let t00 = Capture.tracer cap ~pid:0 ~tid:0 in
  let t01 = Capture.tracer cap ~pid:0 ~tid:1 in
  let again = Capture.tracer cap ~pid:0 ~tid:0 in
  Alcotest.(check bool) "same tracer handed back" true (t00 == again);
  Tracer.on_call t00 "f";
  Tracer.on_call t01 "f";
  Tracer.on_call t01 "g";
  let ts = Capture.finish cap in
  Alcotest.(check int) "two traces" 2 (Trace_set.cardinal ts);
  Alcotest.(check int) "shared symbol ids" 2 (Symtab.size (Trace_set.symtab ts));
  let stats = Capture.stats cap ts in
  Alcotest.(check int) "threads" 2 stats.Capture.threads;
  Alcotest.(check int) "events" 3 stats.Capture.total_events;
  Alcotest.(check bool) "compressed bytes positive" true
    (stats.Capture.total_compressed_bytes > 0)

let test_capture_stats_compression () =
  (* a long repetitive stream must compress well and the ratio must be
     reflected in the stats *)
  let cap = Capture.create () in
  let tr = Capture.tracer cap ~pid:0 ~tid:0 in
  for _ = 1 to 5000 do
    Tracer.on_call tr "MPI_Send";
    Tracer.on_return tr "MPI_Send";
    Tracer.on_call tr "MPI_Recv";
    Tracer.on_return tr "MPI_Recv"
  done;
  let ts = Capture.finish cap in
  let stats = Capture.stats cap ts in
  Alcotest.(check int) "20k events" 20000 stats.Capture.total_events;
  Alcotest.(check bool) "ratio well above 10x" true
    (stats.Capture.compression_ratio > 10.0);
  Alcotest.(check bool) "compressed under 2KB" true
    (stats.Capture.total_compressed_bytes < 2048)

let () =
  Alcotest.run "parlot"
    [ ( "lzw",
        [ Alcotest.test_case "empty" `Quick test_lzw_empty;
          Alcotest.test_case "simple" `Quick test_lzw_simple;
          Alcotest.test_case "KwKwK" `Quick test_lzw_kwkwk;
          Alcotest.test_case "compresses repetition" `Quick test_lzw_compresses_repetition;
          Alcotest.test_case "streaming = one-shot" `Quick test_lzw_streaming_matches_oneshot;
          Alcotest.test_case "incremental output" `Quick test_lzw_output_grows_incrementally;
          Alcotest.test_case "corrupt input" `Quick test_lzw_corrupt;
          Alcotest.test_case "first code is phrase" `Quick test_lzw_first_code_phrase;
          Alcotest.test_case "trailing bytes" `Quick test_lzw_trailing_bytes;
          Alcotest.test_case "code out of range" `Quick test_lzw_code_out_of_range;
          Alcotest.test_case "streaming decoder parity" `Quick
            test_lzw_decoder_streaming_parity;
          prop_lzw_roundtrip;
          prop_lzw_roundtrip_binary ] );
      ( "tracer",
        [ Alcotest.test_case "records and decodes" `Quick test_tracer_records_and_decodes;
          Alcotest.test_case "image filter" `Quick test_tracer_image_filter;
          Alcotest.test_case "scoped exception truncates" `Quick test_tracer_scoped_exception;
          prop_tracer_roundtrip ] );
      ( "capture",
        [ Alcotest.test_case "shared symtab + stats" `Quick
            test_capture_shared_symtab_and_stats;
          Alcotest.test_case "compression stats" `Quick
            test_capture_stats_compression ] ) ]
