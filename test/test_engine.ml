(* Engine + memo tests: the parallel engine must be byte-identical to
   the sequential one across the bundled workloads, and the NLR summary
   cache must hit without ever changing a result. *)

open Difftrace
module R = Difftrace_simulator.Runtime
module Fault = Difftrace_simulator.Fault
module F = Difftrace_filter.Filter
module A = Difftrace_fca.Attributes
module Linkage = Difftrace_cluster.Linkage
module Odd_even = Difftrace_workloads.Odd_even
module Ilcs = Difftrace_workloads.Ilcs

let par4 = Engine.parallel ~domains:4 ()

let oe16_normal =
  lazy (fst (Odd_even.run ~np:16 ~fault:Fault.No_fault ())).R.traces

let oe16_swap =
  lazy
    (fst
       (Odd_even.run ~np:16
          ~fault:(Fault.Swap_send_recv { rank = 5; after_iter = 7 })
          ()))
      .R.traces

let ilcs_normal =
  lazy (fst (Ilcs.run ~np:4 ~workers:2 ~fault:Fault.No_fault ())).R.traces

let ilcs_faulty =
  lazy
    (fst
       (Ilcs.run ~np:4 ~workers:2
          ~fault:(Fault.No_critical { rank = 2; thread = 1 })
          ()))
      .R.traces

(* ------------------------------------------------------------------ *)
(* Engine.init semantics                                               *)
(* ------------------------------------------------------------------ *)

let test_init_parity () =
  let f i = (i * 37) mod 11 in
  List.iter
    (fun n ->
      Alcotest.(check (array int))
        (Printf.sprintf "n=%d" n)
        (Array.init n f) (Engine.init par4 n f))
    [ 0; 1; 2; 7; 64; 1000 ]

let test_init_exception () =
  (* the lowest failing index wins, whatever the schedule did *)
  Alcotest.check_raises "first exception rethrown" (Failure "boom7")
    (fun () ->
      ignore
        (Engine.init par4 64 (fun i ->
             if i >= 7 then failwith (Printf.sprintf "boom%d" i) else i)))

let test_map () =
  let arr = Array.init 100 (fun i -> i) in
  Alcotest.(check (array int)) "map = Array.map"
    (Array.map (fun x -> x * x) arr)
    (Engine.map par4 (fun x -> x * x) arr)

let test_of_jobs () =
  Alcotest.(check string) "1 job is sequential" "sequential"
    (Engine.to_string (Engine.of_jobs 1));
  Alcotest.(check string) "4 jobs" "parallel:4"
    (Engine.to_string (Engine.of_jobs 4));
  (match Engine.of_jobs 0 with
  | Engine.Parallel { domains } ->
    Alcotest.(check bool) "auto-detect gives >= 1 domain" true (domains >= 1)
  | Engine.Sequential -> Alcotest.fail "of_jobs 0 should auto-parallelize")

let test_string_roundtrip () =
  Alcotest.(check bool) "seq" true
    (Engine.of_string "seq" = Engine.Sequential);
  Alcotest.(check bool) "par:3" true
    (Engine.of_string "par:3" = Engine.Parallel { domains = 3 });
  List.iter
    (fun e ->
      Alcotest.(check bool)
        (Engine.to_string e)
        true
        (Engine.of_string (Engine.to_string e) = e))
    [ Engine.Sequential; par4; Engine.Parallel { domains = 1 } ];
  (match Engine.of_string "bogus" with
  | _ -> Alcotest.fail "of_string should reject bogus"
  | exception Invalid_argument _ -> ())

(* ------------------------------------------------------------------ *)
(* Config builders                                                     *)
(* ------------------------------------------------------------------ *)

let test_config_builders () =
  let c =
    Config.default
    |> Config.with_k 50
    |> Config.with_linkage Linkage.Average
    |> Config.with_engine par4
    |> Config.with_attrs { A.granularity = A.Double; freq_mode = A.Log10 }
  in
  Alcotest.(check int) "with_k" 50 c.Config.k;
  Alcotest.(check bool) "with_linkage" true (c.Config.linkage = Linkage.Average);
  Alcotest.(check bool) "with_engine" true (c.Config.engine = par4);
  (* the engine is an execution detail: not part of the config name *)
  Alcotest.(check string) "name ignores engine"
    "11.mpiall.K50 / doub.log10 / average" (Config.name c);
  Alcotest.(check bool) "default is sequential" true
    (Config.default.Config.engine = Engine.Sequential)

(* ------------------------------------------------------------------ *)
(* Parallel pipeline == sequential pipeline, byte for byte             *)
(* ------------------------------------------------------------------ *)

let check_comparison_identical name config ~normal ~faulty =
  let cs = Pipeline.compare_runs config ~normal ~faulty in
  let cp =
    Pipeline.compare_runs (Config.with_engine par4 config) ~normal ~faulty
  in
  Alcotest.(check (array string))
    (name ^ ": labels") cs.Pipeline.normal.Pipeline.labels
    cp.Pipeline.normal.Pipeline.labels;
  Alcotest.(check bool)
    (name ^ ": JSM matrices bit-identical") true
    (cs.Pipeline.normal.Pipeline.jsm = cp.Pipeline.normal.Pipeline.jsm
    && cs.Pipeline.faulty.Pipeline.jsm = cp.Pipeline.faulty.Pipeline.jsm
    && cs.Pipeline.jsm_d = cp.Pipeline.jsm_d);
  Alcotest.(check bool)
    (name ^ ": B-score bit-identical") true
    (cs.Pipeline.bscore = cp.Pipeline.bscore);
  Alcotest.(check bool)
    (name ^ ": suspect ranking identical") true
    (cs.Pipeline.suspects = cp.Pipeline.suspects);
  Alcotest.(check string)
    (name ^ ": dendrogram identical")
    (Pipeline.dendrogram cs.Pipeline.faulty)
    (Pipeline.dendrogram cp.Pipeline.faulty);
  let render c =
    match Pipeline.find_diffnlr c (fst c.Pipeline.suspects.(0)) with
    | Ok d -> Difftrace_diff.Diffnlr.render d
    | Error e -> Alcotest.fail (Pipeline.lookup_error_to_string e)
  in
  Alcotest.(check string) (name ^ ": diffNLR identical") (render cs) (render cp)

let test_parallel_identical_oddeven () =
  check_comparison_identical "oddeven16" Config.default
    ~normal:(Lazy.force oe16_normal) ~faulty:(Lazy.force oe16_swap)

let test_parallel_identical_ilcs () =
  let config =
    Config.default
    |> Config.with_filter
         (F.make [ F.Mpi_all; F.Omp_critical; F.Custom "CPU_Exec|memcpy" ])
    |> Config.with_attrs { A.granularity = A.Single; freq_mode = A.Actual }
  in
  check_comparison_identical "ilcs4x2" config ~normal:(Lazy.force ilcs_normal)
    ~faulty:(Lazy.force ilcs_faulty)

let test_parallel_identical_analysis () =
  (* analyze-level check: NLR summaries and the shared loop table *)
  let ts = Lazy.force oe16_normal in
  let a_s = Pipeline.analyze Config.default ts in
  let a_p = Pipeline.analyze (Config.with_engine par4 Config.default) ts in
  let strings a =
    Array.map
      (fun (nlr, _) ->
        String.concat ";" (Difftrace_nlr.Nlr.to_strings a.Pipeline.symtab nlr))
      a.Pipeline.nlrs
  in
  Alcotest.(check (array string)) "NLR summaries identical" (strings a_s)
    (strings a_p);
  Alcotest.(check int) "same loop-table size"
    (Difftrace_nlr.Nlr.Loop_table.size a_s.Pipeline.loop_table)
    (Difftrace_nlr.Nlr.Loop_table.size a_p.Pipeline.loop_table)

(* ------------------------------------------------------------------ *)
(* Memo cache: hits on the autotune grid, never a different answer     *)
(* ------------------------------------------------------------------ *)

let test_autotune_cache_hit_rate () =
  let r =
    match
      Autotune.search
        ~normal:(Lazy.force oe16_normal)
        ~faulty:(Lazy.force oe16_swap)
        ()
    with
    | Ok r -> r
    | Error e -> Alcotest.fail (Session.error_to_string e)
  in
  let c = r.Autotune.cache in
  Alcotest.(check bool) "summaries were reused" true (c.Memo.hits > 0);
  Alcotest.(check bool)
    (Printf.sprintf "hit rate %.2f above 0.5" (Memo.hit_rate c))
    true
    (Memo.hit_rate c > 0.5)

let test_autotune_memo_correctness () =
  let normal = Lazy.force oe16_normal and faulty = Lazy.force oe16_swap in
  let with_memo =
    match Autotune.search ~normal ~faulty () with
    | Ok r -> r
    | Error e -> Alcotest.fail (Session.error_to_string e)
  in
  (* force every evaluation to miss: a fresh memo per configuration *)
  let sweep_no_reuse =
    List.map
      (fun cand ->
        Autotune.evaluate cand.Autotune.config ~normal ~faulty)
      with_memo.Autotune.ranked
  in
  List.iter2
    (fun a b ->
      Alcotest.(check string) "same config" (Config.name a.Autotune.config)
        (Config.name b.Autotune.config);
      Alcotest.(check (float 0.0)) "same bscore" b.Autotune.bscore
        a.Autotune.bscore;
      Alcotest.(check (option string)) "same top suspect" b.Autotune.top_suspect
        a.Autotune.top_suspect)
    with_memo.Autotune.ranked sweep_no_reuse

let test_memo_cold_equals_plain () =
  (* the first compare_runs against a fresh memo is byte-identical to a
     memo-less one, diffNLR rendering included *)
  let normal = Lazy.force oe16_normal and faulty = Lazy.force oe16_swap in
  let plain = Pipeline.compare_runs Config.default ~normal ~faulty in
  let memo = Memo.create () in
  let cold = Pipeline.compare_runs ~memo Config.default ~normal ~faulty in
  let render c =
    match Pipeline.find_diffnlr c "5" with
    | Ok d -> Difftrace_diff.Diffnlr.render d
    | Error e -> Alcotest.fail (Pipeline.lookup_error_to_string e)
  in
  Alcotest.(check bool) "suspects identical" true
    (plain.Pipeline.suspects = cold.Pipeline.suspects);
  Alcotest.(check string) "diffNLR identical" (render plain) (render cold);
  let after_cold = Memo.stats memo in
  (* warm reuse keeps every analysis result stable *)
  let warm = Pipeline.compare_runs ~memo Config.default ~normal ~faulty in
  Alcotest.(check bool) "warm bscore identical" true
    (plain.Pipeline.bscore = warm.Pipeline.bscore);
  Alcotest.(check bool) "warm suspects identical" true
    (plain.Pipeline.suspects = warm.Pipeline.suspects);
  (* the warm pass looks up all 32 summaries (16 traces x 2 runs) and
     must find every one of them *)
  let s = Memo.stats memo in
  Alcotest.(check int) "warm pass misses nothing" after_cold.Memo.misses
    s.Memo.misses;
  Alcotest.(check int) "warm pass fully cached" (after_cold.Memo.hits + 32)
    s.Memo.hits

let test_memo_rejects_conflicting_tables () =
  let memo = Memo.create () in
  let ts = Lazy.force oe16_normal in
  match
    Pipeline.analyze ~symtab:(Difftrace_trace.Symtab.create ()) ~memo
      Config.default ts
  with
  | _ -> Alcotest.fail "analyze should reject memo + explicit symtab"
  | exception Invalid_argument _ -> ()

let test_hit_rate_degenerate () =
  (* regression: an all-miss (or untouched) cache once divided by zero *)
  Alcotest.(check (float 1e-9)) "empty stats" 0.0
    (Memo.hit_rate { Memo.hits = 0; misses = 0 });
  Alcotest.(check (float 1e-9)) "all misses" 0.0
    (Memo.hit_rate { Memo.hits = 0; misses = 7 });
  Alcotest.(check (float 1e-9)) "all hits" 1.0
    (Memo.hit_rate { Memo.hits = 5; misses = 0 })

let () =
  Alcotest.run "engine"
    [ ( "engine",
        [ Alcotest.test_case "init parity" `Quick test_init_parity;
          Alcotest.test_case "exception order" `Quick test_init_exception;
          Alcotest.test_case "map" `Quick test_map;
          Alcotest.test_case "of_jobs" `Quick test_of_jobs;
          Alcotest.test_case "of_string roundtrip" `Quick test_string_roundtrip ] );
      ( "config",
        [ Alcotest.test_case "builders" `Quick test_config_builders ] );
      ( "parity",
        [ Alcotest.test_case "odd/even byte-identical" `Quick
            test_parallel_identical_oddeven;
          Alcotest.test_case "ILCS byte-identical" `Quick
            test_parallel_identical_ilcs;
          Alcotest.test_case "analysis internals identical" `Quick
            test_parallel_identical_analysis ] );
      ( "memo",
        [ Alcotest.test_case "autotune hit rate > 50%" `Quick
            test_autotune_cache_hit_rate;
          Alcotest.test_case "memo never changes the ranking" `Quick
            test_autotune_memo_correctness;
          Alcotest.test_case "cold cache == no cache" `Quick
            test_memo_cold_equals_plain;
          Alcotest.test_case "memo + explicit tables rejected" `Quick
            test_memo_rejects_conflicting_tables;
          Alcotest.test_case "hit rate degenerate cases" `Quick
            test_hit_rate_degenerate ] ) ]
