(* Persistent analysis store: round-trip fidelity, flush determinism,
   the corruption corpus (salvage-never-crash discipline, mirroring
   test_archive.ml), gc/eviction accounting, and the read-only verify
   scan. The invariant behind every case: whatever the store's state —
   cold, warm, damaged, garbage — analysis results are bit-identical
   to a storeless run. *)

open Difftrace
module Fault = Difftrace_simulator.Fault
module R = Difftrace_simulator.Runtime
module F = Difftrace_filter.Filter
module Odd_even = Difftrace_workloads.Odd_even
module Prng = Difftrace_util.Prng

let tmpdir name =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) ("difftrace_store_" ^ name) in
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  dir

let store_path dir = Filename.concat dir "analysis.store"
let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let flip_bit path ~byte ~bit =
  let s = Bytes.of_string (read_file path) in
  Bytes.set s byte (Char.chr (Char.code (Bytes.get s byte) lxor (1 lsl bit)));
  write_file path (Bytes.to_string s)

let truncate_file path ~keep =
  write_file path (String.sub (read_file path) 0 keep)

let get = function
  | Ok v -> v
  | Error e -> Alcotest.fail (Store.error_to_string e)

let sample_traces () =
  let outcome, _ = Odd_even.run ~np:4 ~fault:Fault.No_fault () in
  outcome.R.traces

let config () = Config.make ~filter:(F.make []) ()

(* one analyzed-and-flushed store on disk; returns its directory *)
let make_store name ts =
  let dir = tmpdir name in
  let st = get (Store.load ~dir) in
  ignore (Pipeline.analyze ~store:st (config ()) ts);
  get (Store.flush st);
  dir

let bits_equal a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun ra rb ->
         Array.length ra = Array.length rb
         && Array.for_all2
              (fun x y -> Int64.bits_of_float x = Int64.bits_of_float y)
              ra rb)
       a b

let jsm_equal (a : Jsm.t) (b : Jsm.t) =
  a.Jsm.labels = b.Jsm.labels && bits_equal (Jsm.rows a) (Jsm.rows b)

(* counters only move while telemetry is enabled; always restore *)
let with_telemetry f =
  Telemetry.reset ();
  Telemetry.enable ();
  Fun.protect f ~finally:(fun () ->
      Telemetry.disable ();
      Telemetry.reset ())

let c_crc_fail = Telemetry.Counter.make "store.crc_fail"
let c_evictions = Telemetry.Counter.make "store.evictions"

(* ------------------------------------------------------------------ *)
(* Round trip                                                          *)
(* ------------------------------------------------------------------ *)

let test_roundtrip_warm_all_hit () =
  let ts = sample_traces () in
  let cold = Pipeline.analyze (config ()) ts in
  let dir = make_store "roundtrip" ts in
  let st = get (Store.load ~dir) in
  let s = Store.stats st in
  Alcotest.(check bool) "has summaries" true (s.Store.summaries > 0);
  Alcotest.(check int) "one matrix" 1 s.Store.matrices;
  Alcotest.(check bool) "clean load" false s.Store.salvaged;
  Alcotest.(check bool) "file on disk" true (s.Store.file_bytes > 0);
  let warm = Pipeline.analyze ~store:st (config ()) ts in
  let ms = Memo.stats (Store.memo st) in
  Alcotest.(check int) "zero summarizations on the warm run" 0 ms.Memo.misses;
  Alcotest.(check bool) "summaries served from disk" true (ms.Memo.hits > 0);
  Alcotest.(check bool) "warm JSM bit-identical" true
    (jsm_equal cold.Pipeline.jsm warm.Pipeline.jsm)

let test_warm_flush_is_noop () =
  let ts = sample_traces () in
  let dir = make_store "warmnoop" ts in
  let image = read_file (store_path dir) in
  let st = get (Store.load ~dir) in
  ignore (Pipeline.analyze ~store:st (config ()) ts);
  get (Store.flush st);
  Alcotest.(check bool) "fully warm run leaves the file untouched" true
    (read_file (store_path dir) = image)

let test_flush_deterministic () =
  let ts = sample_traces () in
  let a = make_store "det_a" ts in
  let b = make_store "det_b" ts in
  Alcotest.(check bool) "same work renders the same bytes" true
    (read_file (store_path a) = read_file (store_path b))

let test_cold_start_missing () =
  let dir = tmpdir "coldmiss" in
  let st = get (Store.load ~dir) in
  let s = Store.stats st in
  Alcotest.(check int) "no summaries" 0 s.Store.summaries;
  Alcotest.(check int) "no matrices" 0 s.Store.matrices;
  Alcotest.(check int) "no file yet" 0 s.Store.file_bytes

(* ------------------------------------------------------------------ *)
(* Corruption corpus                                                   *)
(* ------------------------------------------------------------------ *)

(* every mutation of a valid store must load Ok — salvaged or cold,
   never an exception — and keep analysis bit-identical to storeless *)
let test_corruption_corpus () =
  let ts = sample_traces () in
  let reference = Pipeline.analyze (config ()) ts in
  let prng = Prng.create 42 in
  for case = 0 to 29 do
    let dir = make_store (Printf.sprintf "corpus_%d" case) ts in
    let victim = store_path dir in
    let size = String.length (read_file victim) in
    let what =
      match case mod 3 with
      | 0 ->
        let byte = Prng.int prng size in
        flip_bit victim ~byte ~bit:(Prng.int prng 8);
        Printf.sprintf "bit flip @%d" byte
      | 1 ->
        let keep = Prng.int prng size in
        truncate_file victim ~keep;
        Printf.sprintf "truncate to %d" keep
      | _ ->
        let n = 1 + Prng.int prng 16 in
        write_file victim
          (read_file victim
          ^ String.init n (fun _ -> Char.chr (Prng.int prng 256)));
        Printf.sprintf "append %d garbage bytes" n
    in
    let ctx = Printf.sprintf "case %d (%s)" case what in
    match Store.load ~dir with
    | Error e -> Alcotest.fail (ctx ^ ": " ^ Store.error_to_string e)
    | exception e -> Alcotest.fail (ctx ^ ": raised " ^ Printexc.to_string e)
    | Ok st ->
      let a = Pipeline.analyze ~store:st (config ()) ts in
      Alcotest.(check bool)
        (ctx ^ ": analysis unaffected by damage")
        true
        (jsm_equal reference.Pipeline.jsm a.Pipeline.jsm)
  done

let test_crc_fail_accounting () =
  let ts = sample_traces () in
  let dir = make_store "crcfail" ts in
  let victim = store_path dir in
  (* flip a bit well past the magic so framing, not magic, catches it *)
  flip_bit victim ~byte:(String.length (read_file victim) - 3) ~bit:0;
  with_telemetry (fun () ->
      let before = Telemetry.Counter.value c_crc_fail in
      let st = get (Store.load ~dir) in
      Alcotest.(check int) "store.crc_fail counted" (before + 1)
        (Telemetry.Counter.value c_crc_fail);
      Alcotest.(check bool) "load reports salvage" true
        (Store.stats st).Store.salvaged)

let test_salvage_rewrites_clean () =
  let ts = sample_traces () in
  let dir = make_store "salvage_rw" ts in
  let victim = store_path dir in
  truncate_file victim ~keep:(String.length (read_file victim) - 2);
  let st = get (Store.load ~dir) in
  Alcotest.(check bool) "salvaged" true (Store.stats st).Store.salvaged;
  (* a salvaged store is dirty: the next flush rewrites a clean file *)
  get (Store.flush st);
  let st2 = get (Store.load ~dir) in
  Alcotest.(check bool) "clean after rewrite" false
    (Store.stats st2).Store.salvaged;
  let c = get (Store.verify ~dir) in
  Alcotest.(check bool) "verify agrees" true (c.Store.c_damage = None)

let test_stale_version_is_cold () =
  let ts = sample_traces () in
  let dir = make_store "stale" ts in
  let victim = store_path dir in
  let image = read_file victim in
  write_file victim
    ("difftrace-store 0\n"
    ^ String.sub image 18 (String.length image - 18));
  let st = get (Store.load ~dir) in
  let s = Store.stats st in
  Alcotest.(check int) "unknown version adopts nothing" 0 s.Store.summaries;
  Alcotest.(check int) "no matrices either" 0 s.Store.matrices;
  Alcotest.(check bool) "flagged as salvaged" true s.Store.salvaged

let test_empty_file_is_cold () =
  let ts = sample_traces () in
  let dir = make_store "emptyfile" ts in
  write_file (store_path dir) "";
  let st = get (Store.load ~dir) in
  Alcotest.(check int) "cold" 0 (Store.stats st).Store.summaries;
  Alcotest.(check bool) "salvaged flag set" true (Store.stats st).Store.salvaged

let test_foreign_file_ignored () =
  let ts = sample_traces () in
  let dir = make_store "foreign" ts in
  write_file (Filename.concat dir "foreign.bin") "not a store record\n";
  let st = get (Store.load ~dir) in
  let s = Store.stats st in
  Alcotest.(check bool) "store still loads" true (s.Store.summaries > 0);
  Alcotest.(check bool) "clean — foreign files are not store damage" false
    s.Store.salvaged;
  get (Store.flush st);
  Alcotest.(check bool) "foreign file left alone" true
    (Sys.file_exists (Filename.concat dir "foreign.bin"))

let test_dir_is_a_file () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ()) "difftrace_store_plainfile"
  in
  write_file path "just a file\n";
  match Store.load ~dir:path with
  | Ok _ -> Alcotest.fail "loaded a store rooted at a regular file"
  | Error e ->
    Alcotest.(check bool) "diagnostic names the path" true
      (let s = Store.error_to_string e in
       String.length s > 0)

(* ------------------------------------------------------------------ *)
(* Gc / eviction                                                       *)
(* ------------------------------------------------------------------ *)

let test_gc_and_eviction_accounting () =
  let ts = sample_traces () in
  let dir = make_store "gc" ts in
  let st = get (Store.load ~dir) in
  let s0 = Store.stats st in
  with_telemetry (fun () ->
      let before = Telemetry.Counter.value c_evictions in
      let ds, dm, dg, _ = Store.gc ~keep_summaries:1 ~keep_matrices:0 st in
      Alcotest.(check int) "summaries dropped" (s0.Store.summaries - 1) ds;
      Alcotest.(check int) "matrices dropped" s0.Store.matrices dm;
      Alcotest.(check int) "no signatures in an exact-mode store" 0 dg;
      Alcotest.(check int) "store.evictions counted" (before + ds + dm + dg)
        (Telemetry.Counter.value c_evictions));
  get (Store.flush st);
  let st2 = get (Store.load ~dir) in
  let s1 = Store.stats st2 in
  Alcotest.(check int) "one summary survives on disk" 1 s1.Store.summaries;
  Alcotest.(check int) "no matrices survive" 0 s1.Store.matrices;
  (* a gc'd store is still just a cache: analysis repopulates it *)
  let a = Pipeline.analyze ~store:st2 (config ()) ts in
  Alcotest.(check bool) "analysis unaffected" true
    (jsm_equal (Pipeline.analyze (config ()) ts).Pipeline.jsm a.Pipeline.jsm);
  get (Store.flush st2);
  let s2 = Store.stats (get (Store.load ~dir)) in
  Alcotest.(check int) "matrix re-recorded" 1 s2.Store.matrices;
  Alcotest.(check int) "summaries repopulated" s0.Store.summaries
    s2.Store.summaries

(* Regression: MinHash signatures are store objects like any other —
   persisted across flush/load, served back on warm sketch runs, and
   subject to the same stamp-ordered gc caps. The eviction cap once
   ignored them, so a sketch-heavy store grew without bound. *)
let c_sig_hits = Telemetry.Counter.make "store.sig_hits"
let c_sig_misses = Telemetry.Counter.make "store.sig_misses"

let test_signatures_persist_and_gc_caps () =
  let ts = sample_traces () in
  let sketch_config = Config.with_mode Config.Sketch (config ()) in
  let dir = tmpdir "signatures" in
  let st = get (Store.load ~dir) in
  let cold = Pipeline.analyze ~store:st sketch_config ts in
  get (Store.flush st);
  let st2 = get (Store.load ~dir) in
  let s0 = Store.stats st2 in
  Alcotest.(check bool) "signatures persisted" true (s0.Store.signatures > 0);
  with_telemetry (fun () ->
      let warm = Pipeline.analyze ~store:st2 sketch_config ts in
      Alcotest.(check bool) "warm sketch JSM bit-identical" true
        (jsm_equal cold.Pipeline.jsm warm.Pipeline.jsm);
      Alcotest.(check int) "warm run recomputes no signature" 0
        (Telemetry.Counter.value c_sig_misses);
      (* one lookup per object, all hits; objects sharing an attribute
         digest share one persisted signature, so hits ≥ records *)
      Alcotest.(check bool) "every lookup served from disk" true
        (Telemetry.Counter.value c_sig_hits >= s0.Store.signatures));
  (* verify counts the signature records too *)
  let c = get (Store.verify ~dir) in
  Alcotest.(check int) "verify counts signatures" s0.Store.signatures
    c.Store.c_signatures;
  (* the gc cap: signatures age out stamp-ordered like summaries and
     matrices, and the cap survives the next flush *)
  let _, _, dg, _ = Store.gc ~keep_signatures:1 st2 in
  Alcotest.(check int) "all but the newest dropped" (s0.Store.signatures - 1) dg;
  get (Store.flush st2);
  let s1 = Store.stats (get (Store.load ~dir)) in
  Alcotest.(check int) "cap holds on disk" 1 s1.Store.signatures;
  (* exact mode never touches signature records: same store, exact
     config, counters stay flat *)
  with_telemetry (fun () ->
      let st3 = get (Store.load ~dir) in
      ignore (Pipeline.analyze ~store:st3 (config ()) ts);
      Alcotest.(check int) "exact mode: no signature lookups" 0
        (Telemetry.Counter.value c_sig_hits
        + Telemetry.Counter.value c_sig_misses))

(* ------------------------------------------------------------------ *)
(* Verify                                                              *)
(* ------------------------------------------------------------------ *)

let test_verify_clean_and_damaged () =
  let ts = sample_traces () in
  let dir = make_store "verify" ts in
  let st = get (Store.load ~dir) in
  let s = Store.stats st in
  let c = get (Store.verify ~dir) in
  Alcotest.(check bool) "no damage" true (c.Store.c_damage = None);
  Alcotest.(check int) "summary count agrees" s.Store.summaries
    c.Store.c_summaries;
  Alcotest.(check int) "matrix count agrees" s.Store.matrices
    c.Store.c_matrices;
  Alcotest.(check int) "symbol count agrees" s.Store.symbols c.Store.c_symbols;
  Alcotest.(check int) "byte count agrees" s.Store.file_bytes c.Store.c_bytes;
  (* damage the tail: verify must report it without adopting anything *)
  truncate_file (store_path dir) ~keep:(s.Store.file_bytes - 1);
  let d = get (Store.verify ~dir) in
  (match d.Store.c_damage with
  | None -> Alcotest.fail "verify missed the damage"
  | Some _ -> ());
  Alcotest.(check bool) "salvageable prefix counted" true
    (d.Store.c_records < c.Store.c_records);
  (* a missing store verifies as empty, not as an error *)
  let e = get (Store.verify ~dir:(tmpdir "verify_missing")) in
  Alcotest.(check int) "missing store: zero records" 0 e.Store.c_records;
  Alcotest.(check bool) "missing store: no damage" true (e.Store.c_damage = None)

let () =
  Alcotest.run "store"
    [ ( "round-trip",
        [ Alcotest.test_case "warm reload is all-hit and bit-identical" `Quick
            test_roundtrip_warm_all_hit;
          Alcotest.test_case "fully warm flush is a no-op" `Quick
            test_warm_flush_is_noop;
          Alcotest.test_case "flush renders deterministically" `Quick
            test_flush_deterministic;
          Alcotest.test_case "missing dir/file is a cold start" `Quick
            test_cold_start_missing ] );
      ( "corruption",
        [ Alcotest.test_case "corpus: flip/truncate/append never crash" `Quick
            test_corruption_corpus;
          Alcotest.test_case "store.crc_fail accounting" `Quick
            test_crc_fail_accounting;
          Alcotest.test_case "salvage rewrites a clean file" `Quick
            test_salvage_rewrites_clean;
          Alcotest.test_case "stale format version falls back cold" `Quick
            test_stale_version_is_cold;
          Alcotest.test_case "empty store file falls back cold" `Quick
            test_empty_file_is_cold;
          Alcotest.test_case "foreign files in the dir are ignored" `Quick
            test_foreign_file_ignored;
          Alcotest.test_case "dir being a regular file is an error" `Quick
            test_dir_is_a_file ] );
      ( "gc",
        [ Alcotest.test_case "gc drops oldest and counts evictions" `Quick
            test_gc_and_eviction_accounting;
          Alcotest.test_case "signatures persist and obey the gc cap" `Quick
            test_signatures_persist_and_gc_caps ] );
      ( "verify",
        [ Alcotest.test_case "verify: clean, damaged, missing" `Quick
            test_verify_clean_and_damaged ] ) ]
