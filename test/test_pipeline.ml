open Difftrace
module R = Difftrace_simulator.Runtime
module Fault = Difftrace_simulator.Fault
module F = Difftrace_filter.Filter
module A = Difftrace_fca.Attributes
module Nlr = Difftrace_nlr.Nlr
module Odd_even = Difftrace_workloads.Odd_even
module Ilcs = Difftrace_workloads.Ilcs

(* Shared runs (computed once; the suites below reuse them). *)
let oe4 = lazy (fst (Odd_even.run ~np:4 ~fault:Fault.No_fault ())).R.traces

let oe16_normal = lazy (fst (Odd_even.run ~np:16 ~fault:Fault.No_fault ())).R.traces

let oe16_swap =
  lazy
    (fst (Odd_even.run ~np:16 ~fault:(Fault.Swap_send_recv { rank = 5; after_iter = 7 }) ()))
      .R.traces

let spec g f = { A.granularity = g; freq_mode = f }

let diffnlr_exn c label =
  match Pipeline.find_diffnlr c label with
  | Ok d -> d
  | Error e -> Alcotest.fail (Pipeline.lookup_error_to_string e)

(* ------------------------------------------------------------------ *)
(* Config                                                              *)
(* ------------------------------------------------------------------ *)

let test_config_names () =
  let c = Config.make () in
  Alcotest.(check string) "filter name" "11.mpiall.K10" (Config.filter_name c);
  Alcotest.(check string) "attrs name" "sing.noFreq" (Config.attrs_name c);
  let c2 =
    Config.make
      ~filter:(F.make [ F.Sys_memory; F.Omp_critical ])
      ~attrs:(spec A.Double A.Log10) ~k:50
      ~linkage:Difftrace_cluster.Linkage.Average ()
  in
  Alcotest.(check string) "full name" "11.mem.ompcrit.K50 / doub.log10 / average"
    (Config.name c2)

(* ------------------------------------------------------------------ *)
(* analyze on the paper's walk-through                                 *)
(* ------------------------------------------------------------------ *)

let test_analyze_table_iii () =
  let a = Pipeline.analyze (Config.make ()) (Lazy.force oe4) in
  let render i =
    String.concat ";" (Nlr.to_strings a.Pipeline.symtab (fst a.Pipeline.nlrs.(i)))
  in
  Alcotest.(check (array string)) "labels are short for single-threaded runs"
    [| "0"; "1"; "2"; "3" |] a.Pipeline.labels;
  Alcotest.(check string) "T0 (Table III)"
    "MPI_Init;MPI_Comm_rank;MPI_Comm_size;L0^2;MPI_Finalize" (render 0);
  Alcotest.(check string) "T1" "MPI_Init;MPI_Comm_rank;MPI_Comm_size;L1^4;MPI_Finalize"
    (render 1);
  Alcotest.(check string) "T2" "MPI_Init;MPI_Comm_rank;MPI_Comm_size;L0^4;MPI_Finalize"
    (render 2);
  Alcotest.(check string) "T3" "MPI_Init;MPI_Comm_rank;MPI_Comm_size;L1^2;MPI_Finalize"
    (render 3);
  Alcotest.(check string) "L0 body" "[MPI_Send-MPI_Recv]"
    (Nlr.body_to_string ~table:a.Pipeline.loop_table a.Pipeline.symtab 0);
  Alcotest.(check string) "L1 body" "[MPI_Recv-MPI_Send]"
    (Nlr.body_to_string ~table:a.Pipeline.loop_table a.Pipeline.symtab 1)

let test_analyze_context_table_iv () =
  let a = Pipeline.analyze (Config.make ()) (Lazy.force oe4) in
  let ctx = a.Pipeline.context in
  Alcotest.(check int) "4 objects" 4 (Difftrace_fca.Context.n_objects ctx);
  Alcotest.(check int) "6 attributes" 6 (Difftrace_fca.Context.n_attrs ctx)

let test_analyze_lattice_fig3 () =
  let a = Pipeline.analyze (Config.make ()) (Lazy.force oe4) in
  let lat = Lazy.force a.Pipeline.lattice in
  Alcotest.(check int) "diamond lattice (Fig. 3)" 4 (Difftrace_fca.Lattice.size lat)

let test_analyze_jsm_fig4 () =
  let a = Pipeline.analyze (Config.make ()) (Lazy.force oe4) in
  let j = a.Pipeline.jsm in
  Alcotest.(check (float 1e-9)) "even-even" 1.0 (Difftrace_cluster.Jsm.get j 0 2);
  Alcotest.(check (float 1e-9)) "odd-odd" 1.0 (Difftrace_cluster.Jsm.get j 1 3);
  Alcotest.(check (float 1e-3)) "even-odd 4/6" 0.667 (Difftrace_cluster.Jsm.get j 0 1)

let test_nlr_of_unknown_label () =
  let a = Pipeline.analyze (Config.make ()) (Lazy.force oe4) in
  match Pipeline.find_nlr a "99" with
  | Ok _ -> Alcotest.fail "lookup of label 99 should fail"
  | Error e ->
    Alcotest.(check string) "reports the unknown label" "99" e.Pipeline.unknown;
    Alcotest.(check (array string)) "error carries the known labels"
      [| "0"; "1"; "2"; "3" |] e.Pipeline.known

(* ------------------------------------------------------------------ *)
(* compare_runs on §II-G                                               *)
(* ------------------------------------------------------------------ *)

let test_swapbug_suspect_is_trace5 () =
  let c =
    Pipeline.compare_runs (Config.make ())
      ~normal:(Lazy.force oe16_normal) ~faulty:(Lazy.force oe16_swap)
  in
  let top, score = c.Pipeline.suspects.(0) in
  Alcotest.(check string) "paper §II-G: trace 5 is the most affected" "5" top;
  Alcotest.(check bool) "with a clearly positive score" true (score > 0.5);
  Alcotest.(check bool) "bscore below 1" true (c.Pipeline.bscore < 1.0);
  Alcotest.(check (list string)) "no label mismatches" [] c.Pipeline.only_normal

let test_swapbug_diffnlr_fig5 () =
  let c =
    Pipeline.compare_runs (Config.make ())
      ~normal:(Lazy.force oe16_normal) ~faulty:(Lazy.force oe16_swap)
  in
  let d = diffnlr_exn c "5" in
  let r = Difftrace_diff.Diffnlr.render d in
  let contains sub s =
    let n = String.length sub and h = String.length s in
    let rec go i = i + n <= h && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  (* Fig. 5: normal loops L^16; faulty flips after 7 iterations *)
  Alcotest.(check bool) "normal side L1^16" true (contains "L1^16" r);
  Alcotest.(check bool) "faulty side L1^7" true (contains "L1^7" r);
  Alcotest.(check bool) "faulty side L0^9" true (contains "L0^9" r);
  Alcotest.(check bool) "both reach MPI_Finalize" true (contains "= MPI_Finalize" r)

let test_identity_comparison () =
  let ts = Lazy.force oe16_normal in
  let c = Pipeline.compare_runs (Config.make ()) ~normal:ts ~faulty:ts in
  Alcotest.(check (float 1e-9)) "bscore of identical runs" 1.0 c.Pipeline.bscore;
  Alcotest.(check (list int)) "no suspicious processes" []
    (Pipeline.top_processes c)

let test_dlbug_truncation_visible () =
  let faulty =
    (fst (Odd_even.run ~np:16 ~fault:(Fault.Deadlock_recv { rank = 5; after_iter = 7 }) ()))
      .R.traces
  in
  let c =
    Pipeline.compare_runs (Config.make ()) ~normal:(Lazy.force oe16_normal) ~faulty
  in
  let d = diffnlr_exn c "5" in
  Alcotest.(check bool) "faulty truncated flag" true d.Difftrace_diff.Diffnlr.faulty_truncated;
  (* the deadlock neighbourhood {4,5,6} must surface under log10 *)
  let c' =
    Pipeline.compare_runs
      (Config.make ~attrs:(spec A.Single A.Log10) ())
      ~normal:(Lazy.force oe16_normal) ~faulty
  in
  let top4 =
    Array.to_list c'.Pipeline.suspects
    |> List.filteri (fun i _ -> i < 4)
    |> List.map fst
  in
  Alcotest.(check bool) "rank 5 or a direct neighbour leads" true
    (List.exists (fun l -> List.mem l [ "4"; "5"; "6" ]) top4)

(* ------------------------------------------------------------------ *)
(* ranking sweeps                                                      *)
(* ------------------------------------------------------------------ *)

let test_ranking_sorted_and_rendered () =
  let normal = Lazy.force oe16_normal and faulty = Lazy.force oe16_swap in
  let rows =
    Ranking.sweep (Ranking.grid ~filters:[ F.make [ F.Mpi_all ] ] ()) ~normal ~faulty
  in
  Alcotest.(check int) "six rows (6 attribute specs)" 6 (List.length rows);
  let scores = List.map (fun r -> r.Ranking.bscore) rows in
  Alcotest.(check bool) "ascending bscore" true
    (List.sort Float.compare scores = scores);
  let rendered = Ranking.render rows in
  Alcotest.(check bool) "renders a table" true (String.length rendered > 100)

let test_ranking_grid_size () =
  let g =
    Ranking.grid
      ~filters:[ F.make [ F.Mpi_all ]; F.make [ F.Sys_memory ] ]
      ~attrs:[ spec A.Single A.Actual ] ()
  in
  Alcotest.(check int) "filters x attrs" 2 (List.length g)

let test_ilcs_nocritical_top_thread () =
  let normal = (fst (Ilcs.run ~fault:Fault.No_fault ())).R.traces in
  let faulty =
    (fst (Ilcs.run ~fault:(Fault.No_critical { rank = 6; thread = 4 }) ())).R.traces
  in
  let filt = F.make [ F.Sys_memory; F.Omp_critical; F.Custom "CPU_Exec" ] in
  let rows = Ranking.sweep (Ranking.grid ~filters:[ filt ] ()) ~normal ~faulty in
  (* Table VI: thread 6.4 flagged first in every row *)
  List.iter
    (fun r ->
      match r.Ranking.top_threads with
      | top :: _ ->
        Alcotest.(check string)
          ("6.4 leads under " ^ Config.attrs_name r.Ranking.config)
          "6.4" top
      | [] -> Alcotest.fail "no threads ranked")
    rows

(* ------------------------------------------------------------------ *)
(* report generation                                                   *)
(* ------------------------------------------------------------------ *)

let test_report_generation () =
  let normal = fst (Odd_even.run ~np:8 ~fault:Fault.No_fault ()) in
  let faulty =
    fst (Odd_even.run ~np:8 ~fault:(Fault.Swap_send_recv { rank = 3; after_iter = 2 }) ())
  in
  let r =
    Report.generate ~fault_label:"swapBug(rank=3,after=2)" ~normal ~faulty ()
  in
  let contains sub =
    let s = r.Report.markdown in
    let n = String.length sub and h = String.length s in
    let rec go i = i + n <= h && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check (option string)) "suspect found" (Some "3") r.Report.top_suspect;
  List.iter
    (fun sec ->
      Alcotest.(check bool) ("has section " ^ sec) true (contains ("## " ^ sec)))
    [ "Configuration search"; "Comparison under"; "diffNLR(3)"; "Phase analysis";
      "Calling-context deltas"; "Where the faulty run stopped" ];
  Alcotest.(check bool) "mentions the fault" true
    (contains "swapBug(rank=3,after=2)")

let test_report_hung_run_has_progress () =
  let normal = fst (Odd_even.run ~np:8 ~fault:Fault.No_fault ()) in
  let faulty =
    fst (Odd_even.run ~np:8 ~fault:(Fault.Deadlock_recv { rank = 3; after_iter = 2 }) ())
  in
  let r = Report.generate ~fault_label:"dlBug" ~normal ~faulty () in
  let contains sub =
    let s = r.Report.markdown in
    let n = String.length sub and h = String.length s in
    let rec go i = i + n <= h && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "HUNG banner" true (contains "HUNG");
  Alcotest.(check bool) "progress section" true
    (contains "## Least-progressed threads")

let test_report_identical_runs () =
  let normal = fst (Odd_even.run ~np:4 ~fault:Fault.No_fault ()) in
  let r = Report.generate ~fault_label:"none" ~normal ~faulty:normal () in
  Alcotest.(check (option string)) "no suspect" None r.Report.top_suspect;
  Alcotest.(check bool) "still renders" true (String.length r.Report.markdown > 200)

(* ------------------------------------------------------------------ *)
(* single-run triage                                                   *)
(* ------------------------------------------------------------------ *)

let test_triage_flags_truncated () =
  (* §II-A: truncated traces stand out in JSM_faulty alone *)
  let faulty =
    (fst (Odd_even.run ~np:8 ~fault:(Fault.Deadlock_recv { rank = 5; after_iter = 3 }) ()))
      .R.traces
  in
  let a =
    Pipeline.analyze
      (Config.make ~attrs:(spec A.Single A.Actual) ())
      faulty
  in
  let entries = Pipeline.triage a in
  Alcotest.(check int) "one entry per trace" 8 (Array.length entries);
  (* some truncated trace must appear in the top three outliers *)
  let top3 = Array.sub entries 0 3 in
  Alcotest.(check bool) "a truncated trace is a top outlier" true
    (Array.exists (fun e -> e.Pipeline.tr_truncated) top3);
  (* scores are sorted descending and within [0, 1] *)
  Array.iteri
    (fun i e ->
      if i > 0 then
        Alcotest.(check bool) "descending" true
          (entries.(i - 1).Pipeline.tr_score >= e.Pipeline.tr_score);
      Alcotest.(check bool) "bounded" true
        (e.Pipeline.tr_score >= -1e-9 && e.Pipeline.tr_score <= 1.0))
    entries

let test_triage_clean_run_uniform () =
  let a = Pipeline.analyze (Config.make ()) (Lazy.force oe4) in
  let entries = Pipeline.triage a in
  (* the 4-rank odd/even run has two symmetric groups: everyone's
     outlier score is identical *)
  let scores = Array.map (fun e -> e.Pipeline.tr_score) entries in
  Array.iter
    (fun s -> Alcotest.(check (float 1e-9)) "uniform" scores.(0) s)
    scores;
  Alcotest.(check bool) "renders" true
    (String.length (Pipeline.render_triage entries) > 50)

let test_pipeline_dendrogram () =
  let a = Pipeline.analyze (Config.make ()) (Lazy.force oe4) in
  let s = Pipeline.dendrogram a in
  Alcotest.(check bool) "renders all labels" true
    (String.length s > 20)

let () =
  Alcotest.run "pipeline"
    [ ( "config",
        [ Alcotest.test_case "names" `Quick test_config_names ] );
      ( "analyze",
        [ Alcotest.test_case "Table III NLRs" `Quick test_analyze_table_iii;
          Alcotest.test_case "Table IV context" `Quick test_analyze_context_table_iv;
          Alcotest.test_case "Fig. 3 lattice" `Quick test_analyze_lattice_fig3;
          Alcotest.test_case "Fig. 4 JSM" `Quick test_analyze_jsm_fig4;
          Alcotest.test_case "unknown label" `Quick test_nlr_of_unknown_label ] );
      ( "compare",
        [ Alcotest.test_case "swapBug flags trace 5 (§II-G)" `Quick
            test_swapbug_suspect_is_trace5;
          Alcotest.test_case "swapBug diffNLR (Fig. 5)" `Quick test_swapbug_diffnlr_fig5;
          Alcotest.test_case "identity comparison" `Quick test_identity_comparison;
          Alcotest.test_case "dlBug truncation (Fig. 6)" `Quick
            test_dlbug_truncation_visible ] );
      ( "report",
        [ Alcotest.test_case "full report" `Quick test_report_generation;
          Alcotest.test_case "hung run progress" `Quick
            test_report_hung_run_has_progress;
          Alcotest.test_case "identical runs" `Quick test_report_identical_runs ] );
      ( "triage",
        [ Alcotest.test_case "flags truncated traces" `Quick
            test_triage_flags_truncated;
          Alcotest.test_case "clean run uniform" `Quick test_triage_clean_run_uniform;
          Alcotest.test_case "dendrogram" `Quick test_pipeline_dendrogram ] );
      ( "ranking",
        [ Alcotest.test_case "sorted + rendered" `Quick test_ranking_sorted_and_rendered;
          Alcotest.test_case "grid size" `Quick test_ranking_grid_size;
          Alcotest.test_case "ILCS noCritical: 6.4 tops Table VI" `Quick
            test_ilcs_nocritical_top_thread ] ) ]
