open Difftrace_diff

let qtest ?(count = 300) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let diff_str a b =
  Myers.diff ~equal:Char.equal
    (Array.init (String.length a) (String.get a))
    (Array.init (String.length b) (String.get b))

let script_to_string ops =
  String.concat ""
    (List.map
       (function
         | Myers.Keep c -> Printf.sprintf "=%c" c
         | Myers.Delete c -> Printf.sprintf "-%c" c
         | Myers.Insert c -> Printf.sprintf "+%c" c)
       ops)

(* ------------------------------------------------------------------ *)
(* Myers                                                               *)
(* ------------------------------------------------------------------ *)

let test_equal_sequences () =
  Alcotest.(check string) "all keeps" "=a=b=c" (script_to_string (diff_str "abc" "abc"))

let test_empty_cases () =
  Alcotest.(check string) "both empty" "" (script_to_string (diff_str "" ""));
  Alcotest.(check string) "insert all" "+a+b" (script_to_string (diff_str "" "ab"));
  Alcotest.(check string) "delete all" "-a-b" (script_to_string (diff_str "ab" ""))

let test_classic_example () =
  (* Myers' paper example: ABCABBA -> CBABAC has edit distance 5 *)
  Alcotest.(check int) "D = 5" 5
    (Myers.edit_distance ~equal:Char.equal
       [| 'A'; 'B'; 'C'; 'A'; 'B'; 'B'; 'A' |]
       [| 'C'; 'B'; 'A'; 'B'; 'A'; 'C' |])

let test_single_substitution () =
  Alcotest.(check int) "one delete + one insert" 2
    (Myers.edit_distance ~equal:Char.equal [| 'a'; 'x'; 'c' |] [| 'a'; 'y'; 'c' |])

let test_apply_reconstructs () =
  let script = diff_str "kitten" "sitting" in
  let a, b = Myers.apply script in
  Alcotest.(check (list char)) "left" [ 'k'; 'i'; 't'; 't'; 'e'; 'n' ] a;
  Alcotest.(check (list char)) "right" [ 's'; 'i'; 't'; 't'; 'i'; 'n'; 'g' ] b

let gen_seq = QCheck2.Gen.(string_size ~gen:(char_range 'a' 'd') (int_range 0 60))

let prop_apply_roundtrip =
  qtest "apply (diff a b) reconstructs (a, b)"
    QCheck2.Gen.(pair gen_seq gen_seq)
    (fun (a, b) ->
      let script = diff_str a b in
      let a', b' = Myers.apply script in
      let to_s l = String.init (List.length l) (List.nth l) in
      to_s a' = a && to_s b' = b)

let prop_distance_zero_iff_equal =
  qtest "edit distance 0 iff equal"
    QCheck2.Gen.(pair gen_seq gen_seq)
    (fun (a, b) ->
      let d =
        Myers.edit_distance ~equal:Char.equal
          (Array.init (String.length a) (String.get a))
          (Array.init (String.length b) (String.get b))
      in
      (d = 0) = (a = b))

let prop_distance_bounds =
  qtest "0 <= D <= |a| + |b| and D >= ||a| - |b||"
    QCheck2.Gen.(pair gen_seq gen_seq)
    (fun (a, b) ->
      let la = String.length a and lb = String.length b in
      let d =
        Myers.edit_distance ~equal:Char.equal
          (Array.init la (String.get a))
          (Array.init lb (String.get b))
      in
      d >= abs (la - lb) && d <= la + lb && (la + lb - d) mod 2 = 0)

let prop_symmetry =
  qtest "D(a,b) = D(b,a)"
    QCheck2.Gen.(pair gen_seq gen_seq)
    (fun (a, b) ->
      let dist x y =
        Myers.edit_distance ~equal:Char.equal
          (Array.init (String.length x) (String.get x))
          (Array.init (String.length y) (String.get y))
      in
      dist a b = dist b a)

(* ------------------------------------------------------------------ *)
(* blocks                                                              *)
(* ------------------------------------------------------------------ *)

let test_blocks_grouping () =
  let script = diff_str "abXcd" "abYcd" in
  match Myers.blocks script with
  | [ Myers.Common [ 'a'; 'b' ]; Myers.Changed { del = [ 'X' ]; ins = [ 'Y' ] };
      Myers.Common [ 'c'; 'd' ] ] ->
    ()
  | bs -> Alcotest.fail (Printf.sprintf "unexpected blocks (%d)" (List.length bs))

let test_blocks_trailing_change () =
  match Myers.blocks (diff_str "ab" "abXY") with
  | [ Myers.Common [ 'a'; 'b' ]; Myers.Changed { del = []; ins = [ 'X'; 'Y' ] } ] -> ()
  | _ -> Alcotest.fail "unexpected blocks"

let prop_blocks_preserve_content =
  qtest "blocks flatten back to the script content"
    QCheck2.Gen.(pair gen_seq gen_seq)
    (fun (a, b) ->
      let script = diff_str a b in
      let blocks = Myers.blocks script in
      let left =
        List.concat_map
          (function
            | Myers.Common l -> l
            | Myers.Changed { del; _ } -> del)
          blocks
      in
      let right =
        List.concat_map
          (function
            | Myers.Common l -> l
            | Myers.Changed { ins; _ } -> ins)
          blocks
      in
      let to_s l = String.init (List.length l) (List.nth l) in
      to_s left = a && to_s right = b)

(* ------------------------------------------------------------------ *)
(* diffNLR                                                             *)
(* ------------------------------------------------------------------ *)

let test_diffnlr_of_strings () =
  let d =
    Diffnlr.of_strings
      ~normal:[ "MPI_Init"; "L1^16"; "MPI_Finalize" ]
      ~faulty:[ "MPI_Init"; "L1^7"; "L0^9"; "MPI_Finalize" ]
  in
  Alcotest.(check int) "common stem" 2 (Diffnlr.common_length d);
  Alcotest.(check int) "changed" 3 (Diffnlr.changed_length d);
  let r = Diffnlr.render ~title:"swapBug" d in
  let contains sub s =
    let n = String.length sub and h = String.length s in
    let rec go i = i + n <= h && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "title shown" true (contains "swapBug" r);
  Alcotest.(check bool) "stem marker" true (contains "= MPI_Init" r);
  Alcotest.(check bool) "changed marker" true (contains "~ L1^16" r)

let test_diffnlr_truncation_note () =
  let symtab = Difftrace_trace.Symtab.create () in
  let table = Difftrace_nlr.Nlr.Loop_table.create () in
  let mk s =
    Difftrace_nlr.Nlr.of_ids ~table
      (Array.of_list
         (List.map (fun c -> Difftrace_trace.Symtab.intern symtab (String.make 1 c))
            (List.init (String.length s) (String.get s))))
  in
  let d = Diffnlr.make symtab ~normal:(mk "abc", false) ~faulty:(mk "ab", true) in
  let r = Diffnlr.render d in
  let contains sub s =
    let n = String.length sub and h = String.length s in
    let rec go i = i + n <= h && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "truncation reported" true (contains "TRUNCATED" r)

(* ------------------------------------------------------------------ *)
(* Phase-aware diffing                                                 *)
(* ------------------------------------------------------------------ *)

let test_phase_split () =
  let phases =
    Phasediff.split ~markers:Phasediff.default_markers
      [ "a"; "b"; "MPI_Barrier"; "c"; "MPI_Allreduce"; "d" ]
  in
  Alcotest.(check (list (list string))) "three phases"
    [ [ "a"; "b"; "MPI_Barrier" ]; [ "c"; "MPI_Allreduce" ]; [ "d" ] ]
    phases;
  Alcotest.(check (list (list string))) "empty input" []
    (Phasediff.split ~markers:Phasediff.default_markers [])

let test_phase_compare_localizes () =
  let normal =
    [ "init"; "MPI_Barrier"; "work"; "work"; "MPI_Allreduce"; "work";
      "MPI_Allreduce"; "fini" ]
  in
  let faulty =
    [ "init"; "MPI_Barrier"; "work"; "work"; "MPI_Allreduce"; "work"; "extra";
      "MPI_Allreduce"; "fini" ]
  in
  let t = Phasediff.compare ~normal ~faulty () in
  Alcotest.(check int) "four phases" 4 t.Phasediff.total_phases;
  Alcotest.(check (option int)) "divergence in phase 2" (Some 2)
    t.Phasediff.first_divergent;
  let p0 = List.nth t.Phasediff.phases 0 in
  Alcotest.(check int) "phase 0 identical" 0 p0.Phasediff.distance;
  let p2 = List.nth t.Phasediff.phases 2 in
  Alcotest.(check int) "phase 2 distance 1" 1 p2.Phasediff.distance

let test_phase_extra_phases () =
  let t =
    Phasediff.compare ~normal:[ "a"; "MPI_Barrier" ]
      ~faulty:[ "a"; "MPI_Barrier"; "b"; "MPI_Barrier" ]
      ()
  in
  Alcotest.(check int) "faulty has an extra phase" 2 t.Phasediff.total_phases;
  Alcotest.(check (option int)) "extra phase divergent" (Some 1)
    t.Phasediff.first_divergent

let test_phase_identical () =
  let calls = [ "x"; "MPI_Barrier"; "y" ] in
  let t = Phasediff.compare ~normal:calls ~faulty:calls () in
  Alcotest.(check (option int)) "no divergence" None t.Phasediff.first_divergent;
  Alcotest.(check bool) "render mentions identical" true
    (String.length (Phasediff.render t) > 10)

let test_phase_render_ragged () =
  (* a hand-assembled (or damaged) report whose [first_divergent]
     points past the recorded phase list: render must degrade to a
     note, where a raw [List.nth] used to die with [Failure "nth"] *)
  let p =
    { Phasediff.index = 2;
      normal_phase = [ "a" ];
      faulty_phase = [ "b" ];
      distance = 2 }
  in
  let ragged =
    { Phasediff.phases = [ p ]; first_divergent = Some 0; total_phases = 3 }
  in
  let r = Phasediff.render ragged in
  let contains sub s =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "missing phase noted" true
    (contains "no report recorded for phase 0" r);
  (* a divergent index that IS recorded still renders its diff *)
  let found =
    Phasediff.render
      { Phasediff.phases = [ p ]; first_divergent = Some 2; total_phases = 3 }
  in
  Alcotest.(check bool) "recorded phase diffed" true (contains "phase 2" found)

let test_phase_pipeline_integration () =
  let module Heat = Difftrace_workloads.Heat in
  let module R = Difftrace_simulator.Runtime in
  let module Fault = Difftrace_simulator.Fault in
  let normal, _ = Heat.run ~np:4 ~max_iters:8 ~fault:Fault.No_fault () in
  let faulty, _ =
    Heat.run ~np:4 ~max_iters:8
      ~fault:(Fault.Swap_send_recv { rank = 1; after_iter = 4 })
      ()
  in
  let c =
    Difftrace.Pipeline.compare_runs
      (Difftrace.Config.make ~filter:(Difftrace_filter.Filter.make []) ())
      ~normal:normal.R.traces ~faulty:faulty.R.traces
  in
  let t =
    match Difftrace.Pipeline.find_phasediff c "1.0" with
    | Ok t -> t
    | Error e -> Alcotest.fail (Difftrace.Pipeline.lookup_error_to_string e)
  in
  (match t.Phasediff.first_divergent with
  | Some i ->
    (* the fault fires after iteration 4: early phases must be clean *)
    Alcotest.(check bool) "divergence not in the first phases" true (i >= 3)
  | None -> Alcotest.fail "expected divergence");
  (* the unaffected rank 3 never diverges *)
  let t3 =
    match Difftrace.Pipeline.find_phasediff c "3.0" with
    | Ok t -> t
    | Error e -> Alcotest.fail (Difftrace.Pipeline.lookup_error_to_string e)
  in
  Alcotest.(check (option int)) "rank 3 identical" None t3.Phasediff.first_divergent

let () =
  Alcotest.run "diff"
    [ ( "myers",
        [ Alcotest.test_case "equal sequences" `Quick test_equal_sequences;
          Alcotest.test_case "empty cases" `Quick test_empty_cases;
          Alcotest.test_case "Myers' ABCABBA example" `Quick test_classic_example;
          Alcotest.test_case "substitution" `Quick test_single_substitution;
          Alcotest.test_case "apply reconstructs" `Quick test_apply_reconstructs;
          prop_apply_roundtrip;
          prop_distance_zero_iff_equal;
          prop_distance_bounds;
          prop_symmetry ] );
      ( "blocks",
        [ Alcotest.test_case "grouping" `Quick test_blocks_grouping;
          Alcotest.test_case "trailing change" `Quick test_blocks_trailing_change;
          prop_blocks_preserve_content ] );
      ( "phasediff",
        [ Alcotest.test_case "split" `Quick test_phase_split;
          Alcotest.test_case "localizes divergence" `Quick test_phase_compare_localizes;
          Alcotest.test_case "extra phases" `Quick test_phase_extra_phases;
          Alcotest.test_case "identical" `Quick test_phase_identical;
          Alcotest.test_case "ragged render" `Quick test_phase_render_ragged;
          Alcotest.test_case "pipeline integration" `Quick
            test_phase_pipeline_integration ] );
      ( "diffnlr",
        [ Alcotest.test_case "of_strings + render" `Quick test_diffnlr_of_strings;
          Alcotest.test_case "truncation note" `Quick test_diffnlr_truncation_note ] ) ]
