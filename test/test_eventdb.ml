(* Event DB: the index must agree with a linear scan of the raw events
   under every engine, survive a save/load round trip byte-identically,
   and rebuild (never crash) on a damaged index file. *)

open Difftrace
module R = Difftrace_simulator.Runtime
module Api = Difftrace_simulator.Api
module Fault = Difftrace_simulator.Fault
module Event = Difftrace_trace.Event
module Trace = Difftrace_trace.Trace
module Trace_set = Difftrace_trace.Trace_set
module Symtab = Difftrace_trace.Symtab
module Heat = Difftrace_workloads.Heat
module Odd_even = Difftrace_workloads.Odd_even
module Intervals = Difftrace_eventdb.Intervals

let qtest ?(count = 10) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* the same randomized mixed-API program family as test_properties *)
let random_program ~recipe env =
  let rng = Difftrace_util.Prng.create (recipe + (R.pid env * 31)) in
  let shared_rng = Difftrace_util.Prng.create recipe in
  Api.call env "main" (fun () ->
      Api.mpi_init env;
      let rank = Api.comm_rank env in
      let np = Api.comm_size env in
      let rounds = 1 + Difftrace_util.Prng.int shared_rng 4 in
      for round = 1 to rounds do
        Api.call env "phase" (fun () ->
            for _ = 1 to Difftrace_util.Prng.int rng 4 do
              Api.call env "compute" (fun () -> ())
            done;
            let next = (rank + 1) mod np and prev = (rank + np - 1) mod np in
            let r = Api.irecv env ~src:prev ~tag:round () in
            Api.send env ~dst:next ~tag:round [| rank; round |];
            ignore (Api.wait env r);
            ignore (Api.allreduce env ~op:R.Op_sum [| rank |]))
      done;
      Api.barrier env;
      Api.mpi_finalize env)

let random_traces ~recipe ~np ~seed =
  (R.run ~np ~seed (random_program ~recipe)).R.traces

let recipe_gen =
  QCheck2.Gen.(triple (int_range 0 500) (int_range 2 6) (int_range 0 500))

let parallel_runner =
  let r = Engine.runner (Engine.Parallel { domains = 2 }) in
  { Eventdb.run = (fun n f -> r.Engine.run n f) }

(* --- the linear-scan oracle ---------------------------------------- *)

let oracle_postings (events : Event.t array) ~nsyms =
  let acc = Array.make nsyms [] in
  Array.iteri
    (fun pos e ->
      match e with
      | Event.Call f -> acc.(f) <- pos :: acc.(f)
      | Event.Return _ -> ())
    events;
  Array.map (fun l -> Array.of_list (List.rev l)) acc

let check_thread_against_oracle ~nsyms (th : Eventdb.thread) =
  let want = oracle_postings th.Eventdb.th_events ~nsyms in
  let got = th.Eventdb.th_postings in
  Array.length got <= nsyms
  && Array.for_all Fun.id
       (Array.init nsyms (fun f ->
            let g = if f < Array.length got then got.(f) else [||] in
            g = want.(f)))
  (* one interval per call, starting at that call's position *)
  && Array.length th.Eventdb.th_intervals
     = Array.fold_left (fun n p -> n + Array.length p) 0 want
  && Array.for_all
       (fun (iv : Intervals.t) ->
         iv.Intervals.iv_start < Array.length th.Eventdb.th_events
         && th.Eventdb.th_events.(iv.Intervals.iv_start)
            = Event.Call iv.Intervals.iv_func
         && iv.Intervals.iv_stop > iv.Intervals.iv_start
         && iv.Intervals.iv_stop <= Array.length th.Eventdb.th_events)
       th.Eventdb.th_intervals
  (* loop spans sit inside the event log and cover only call positions *)
  && Array.for_all
       (fun (lp : Eventdb.loop_span) ->
         lp.Eventdb.lp_start >= 0
         && lp.Eventdb.lp_start <= lp.Eventdb.lp_stop
         && lp.Eventdb.lp_stop <= Array.length th.Eventdb.th_events)
       th.Eventdb.th_loops

let prop_index_matches_oracle =
  qtest "index == linear scan (sequential and parallel engines)" recipe_gen
    (fun (recipe, np, seed) ->
      let ts = random_traces ~recipe ~np ~seed in
      let nsyms = Symtab.size (Trace_set.symtab ts) in
      let db_seq = Eventdb.build ts in
      let db_par = Eventdb.build ~runner:parallel_runner ts in
      Array.for_all (check_thread_against_oracle ~nsyms) db_seq.Eventdb.db_threads
      (* both engines produce the same database *)
      && db_seq.Eventdb.db_digest = db_par.Eventdb.db_digest
      && Array.length db_seq.Eventdb.db_threads
         = Array.length db_par.Eventdb.db_threads
      && Array.for_all2
           (fun (a : Eventdb.thread) (b : Eventdb.thread) ->
             a.Eventdb.th_events = b.Eventdb.th_events
             && a.Eventdb.th_postings = b.Eventdb.th_postings
             && a.Eventdb.th_intervals = b.Eventdb.th_intervals
             && a.Eventdb.th_loops = b.Eventdb.th_loops)
           db_seq.Eventdb.db_threads db_par.Eventdb.db_threads)

let prop_count_query_matches_oracle =
  qtest "count/list queries == linear scan" recipe_gen
    (fun (recipe, np, seed) ->
      let ts = random_traces ~recipe ~np ~seed in
      let db = Eventdb.build ts in
      List.for_all
        (fun fn ->
          let want =
            Array.fold_left
              (fun n (th : Eventdb.thread) ->
                Array.fold_left
                  (fun n e -> match e with
                     | Event.Call f
                       when Symtab.name db.Eventdb.db_symtab f = fn -> n + 1
                     | _ -> n)
                  n th.Eventdb.th_events)
              0 db.Eventdb.db_threads
          in
          match Query.parse (Printf.sprintf "count %s" fn) with
          | Error _ -> false
          | Ok q -> (
            match Query.eval db q with
            | Ok (Query.R_count { total; _ }) -> total = want
            | _ -> false))
        [ "MPI_Send"; "compute"; "phase"; "never_called" ])

(* --- divergence ----------------------------------------------------- *)

let prop_divergence_matches_oracle =
  qtest "stream divergence == first naive mismatch"
    QCheck2.Gen.(triple (int_range 0 200) (int_range 2 5) (int_range 0 200))
    (fun (recipe, np, seed) ->
      let a = random_traces ~recipe ~np ~seed in
      let b = random_traces ~recipe:(recipe + 1) ~np ~seed in
      let syma = Trace_set.symtab a and symb = Trace_set.symtab b in
      Array.for_all2
        (fun (ta : Trace.t) (tb : Trace.t) ->
          let naive =
            let ea = ta.Trace.events and eb = tb.Trace.events in
            let n = min (Array.length ea) (Array.length eb) in
            let rec go i =
              if i >= n then
                if Array.length ea = Array.length eb then None else Some n
              else if
                Event.to_string syma ea.(i) <> Event.to_string symb eb.(i)
              then Some i
              else go (i + 1)
            in
            go 0
          in
          Eventdb.stream_divergence syma ta.Trace.events symb tb.Trace.events
          = naive)
        (Trace_set.traces a) (Trace_set.traces b))

(* --- persistence ----------------------------------------------------- *)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let tmpdir name =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ()) ("difftrace_edb_" ^ name)
  in
  rm_rf dir;
  dir

let heat_traces =
  lazy (fst (Heat.run ~fault:Fault.No_fault ())).R.traces

let query_render db q =
  match Query.parse q with
  | Error m -> Alcotest.failf "parse %S: %s" q m
  | Ok ast -> (
    match Query.eval db ast with
    | Ok r -> Query.render r
    | Error e -> Alcotest.failf "eval %S: %s" q (Query.error_to_string e))

let test_save_load_roundtrip () =
  let dir = tmpdir "roundtrip" in
  let ts = Lazy.force heat_traces in
  let db = Eventdb.build ts in
  (match Eventdb.save ~dir db with
  | Ok () -> ()
  | Error m -> Alcotest.failf "save: %s" m);
  match Eventdb.load ~dir ~digest:db.Eventdb.db_digest with
  | Error m -> Alcotest.failf "load: %s" m
  | Ok db' ->
    Alcotest.(check string) "digest" db.Eventdb.db_digest db'.Eventdb.db_digest;
    Alcotest.(check int) "threads"
      (Array.length db.Eventdb.db_threads)
      (Array.length db'.Eventdb.db_threads);
    Array.iter2
      (fun (a : Eventdb.thread) (b : Eventdb.thread) ->
        Alcotest.(check bool) "thread identical" true
          (a.Eventdb.th_pid = b.Eventdb.th_pid
          && a.Eventdb.th_tid = b.Eventdb.th_tid
          && a.Eventdb.th_truncated = b.Eventdb.th_truncated
          && a.Eventdb.th_events = b.Eventdb.th_events
          && a.Eventdb.th_postings = b.Eventdb.th_postings
          && a.Eventdb.th_intervals = b.Eventdb.th_intervals
          && a.Eventdb.th_loops = b.Eventdb.th_loops))
      db.Eventdb.db_threads db'.Eventdb.db_threads;
    (* the loaded database answers queries byte-identically *)
    List.iter
      (fun q ->
        Alcotest.(check string) q (query_render db q) (query_render db' q))
      [ "threads"; "funcs"; "loops"; "count MPI_Send"; "sites MPI_Send" ]

let test_corrupt_index_rebuilds () =
  let dir = tmpdir "corrupt" in
  let ts = Lazy.force heat_traces in
  let db = Eventdb.build ts in
  (match Eventdb.save ~dir db with
  | Ok () -> ()
  | Error m -> Alcotest.failf "save: %s" m);
  let path = Filename.concat dir (db.Eventdb.db_digest ^ ".edb") in
  let text =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let mid = String.length text / 2 in
  let flipped = Bytes.of_string text in
  Bytes.set flipped mid (Char.chr (Char.code text.[mid] lxor 0xff));
  let oc = open_out_bin path in
  output_bytes oc flipped;
  close_out oc;
  (match Eventdb.load ~dir ~digest:db.Eventdb.db_digest with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "loaded a corrupted index");
  (* the warm path falls back to a rebuild and heals the file *)
  let db2, how = Eventdb.open_ ~dir ts in
  Alcotest.(check bool) "rebuilt" true (how = `Built);
  Alcotest.(check string) "same database" db.Eventdb.db_digest
    db2.Eventdb.db_digest;
  match Eventdb.load ~dir ~digest:db.Eventdb.db_digest with
  | Error m -> Alcotest.failf "index not healed: %s" m
  | Ok _ -> ()

let test_open_warm () =
  let dir = tmpdir "warm" in
  let ts = Lazy.force heat_traces in
  let _, first = Eventdb.open_ ~dir ts in
  let _, second = Eventdb.open_ ~dir ts in
  Alcotest.(check bool) "cold build" true (first = `Built);
  Alcotest.(check bool) "warm load" true (second = `Loaded)

(* --- query semantics pinned on a deterministic workload -------------- *)

let test_between_markers () =
  let db = Eventdb.build (Lazy.force heat_traces) in
  (* the window from ExchangeHalo#1 to ExchangeHalo#2 holds exactly the
     sends of the first halo exchange *)
  match Query.parse "count MPI_Send on 3 between ExchangeHalo#1 and ExchangeHalo#2" with
  | Error m -> Alcotest.failf "parse: %s" m
  | Ok q -> (
    match Query.eval db q with
    | Ok (Query.R_count { total; _ }) ->
      Alcotest.(check int) "window count" 2 total
    | Ok _ -> Alcotest.fail "wrong result shape"
    | Error e -> Alcotest.failf "eval: %s" (Query.error_to_string e))

let test_under_function () =
  let db = Eventdb.build (Lazy.force heat_traces) in
  match Query.parse "sites MPI_Send under ExchangeHalo" with
  | Error m -> Alcotest.failf "parse: %s" m
  | Ok q -> (
    match Query.eval db q with
    | Ok (Query.R_sites { rows; _ }) ->
      Alcotest.(check bool) "has sites" true (rows <> []);
      List.iter
        (fun (_, caller, _, _) ->
          Alcotest.(check string) "caller" "ExchangeHalo" caller)
        rows
    | Ok _ -> Alcotest.fail "wrong result shape"
    | Error e -> Alcotest.failf "eval: %s" (Query.error_to_string e))

let test_unknown_thread_is_typed () =
  let db = Eventdb.build (Lazy.force heat_traces) in
  match Query.parse "count MPI_Send on 99" with
  | Error m -> Alcotest.failf "parse: %s" m
  | Ok q -> (
    match Query.eval db q with
    | Error (Query.Unknown_thread "99") -> ()
    | Error e -> Alcotest.failf "wrong error: %s" (Query.error_to_string e)
    | Ok _ -> Alcotest.fail "accepted an unknown thread")

(* adversarial parser coverage: whatever bytes arrive — NULs, huge
   integers, deeply repeated clauses — parse returns Ok or Error, never
   an exception *)

let query_bytes_gen =
  QCheck2.Gen.(string_size ~gen:(char_range '\000' '\255') (0 -- 300))

(* random walks over the grammar's own vocabulary, which get much
   deeper into the clause parser than raw bytes do *)
let query_tokens_gen =
  QCheck2.Gen.(
    let word =
      oneof
        [ oneofl
            [ "count"; "list"; "sites"; "loops"; "diverge"; "threads"; "funcs";
              "on"; "in"; "between"; "and"; "limit"; "under"; "MPI_Send" ];
          map (Printf.sprintf "L%d") (0 -- 99);
          return "L99999999999999999999999999999999";
          return "99999999999999999999999999999999";
          map (fun (a, b) -> Printf.sprintf "%d..%d" a b) (pair (0 -- 99) (0 -- 99));
          map (Printf.sprintf "f#%d") (0 -- 99);
          return "\000";
          string_size (0 -- 8) ]
    in
    map (String.concat " ") (list_size (0 -- 30) word))

let never_raises name gen =
  qtest ~count:500 name gen (fun text ->
      match Query.parse text with Ok _ | Error _ -> true)

let prop_parse_total_bytes = never_raises "parse total on raw bytes" query_bytes_gen
let prop_parse_total_tokens =
  never_raises "parse total on grammar-shaped tokens" query_tokens_gen

let test_parse_adversarial_pinned () =
  List.iter
    (fun (q, want) ->
      match Query.parse q with
      | Ok _ -> Alcotest.failf "accepted %S" q
      | Error e -> Alcotest.(check string) q want e)
    [ ( "sites f under L99999999999999999999999999999999",
        "loop label \"L99999999999999999999999999999999\" is out of range" );
      ( "list f limit 99999999999999999999999999999999",
        "limit: expected a number, got \"99999999999999999999999999999999\"" );
      ( "count f in 0..99999999999999999999999999999999",
        "bad interval \"0..99999999999999999999999999999999\" (want LO..HI, 0 \
         <= LO <= HI)" );
      ("count f\000g on", "'on' needs a thread label") ]

let () =
  Alcotest.run "eventdb"
    [ ( "oracle",
        [ prop_index_matches_oracle;
          prop_count_query_matches_oracle;
          prop_divergence_matches_oracle ] );
      ( "persistence",
        [ Alcotest.test_case "save/load roundtrip" `Quick
            test_save_load_roundtrip;
          Alcotest.test_case "corrupt index rebuilds" `Quick
            test_corrupt_index_rebuilds;
          Alcotest.test_case "warm open loads" `Quick test_open_warm ] );
      ( "query",
        [ Alcotest.test_case "between markers" `Quick test_between_markers;
          Alcotest.test_case "under function" `Quick test_under_function;
          Alcotest.test_case "unknown thread typed" `Quick
            test_unknown_thread_is_typed ] );
      ( "parser-adversarial",
        [ prop_parse_total_bytes;
          prop_parse_total_tokens;
          Alcotest.test_case "pinned error renders" `Quick
            test_parse_adversarial_pinned ] ) ]
