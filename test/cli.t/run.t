The predefined filter catalog (paper Table I):

  $ difftrace filters | head -6
  +----------+----------------------+------------------------------------------------------------------------+
  | Category | Sub-Category         | Description                                                            |
  +----------+----------------------+------------------------------------------------------------------------+
  | Primary  | Returns              | Filter out all returns                                                 |
  | Primary  | PLT                  | Filter out the ".plt" stub calls for dynamically resolved externals    |
  | MPI      | MPI All              | Only keep functions that start with "MPI_"                             |

swapBug relative debugging on 16 ranks (paper Fig. 5): trace 5 leads.

  $ difftrace compare -w oddeven --np 16 -f 'swapBug(rank=5,after=7)'
  configuration: 11.mpiall.K10 / sing.noFreq / ward
  B-score: 0.794
  top processes: 5, 0, 2, 4, 6, 8
  top threads:   
  suspicious traces:
    5      2.500
    10     0.167
    2      0.167
    6      0.167
    12     0.167
    8      0.167
    14     0.167
    0      0.167
  === diffNLR(5) ===
      normal        | faulty       
      --------------+--------------
    = MPI_Init      | MPI_Init     
    = MPI_Comm_rank | MPI_Comm_rank
    = MPI_Comm_size | MPI_Comm_size
      --------------+--------------
    ~ L1^16         | L1^7         
    >               | L0^9         
      --------------+--------------
    = MPI_Finalize  | MPI_Finalize 
      --------------+--------------
    event db: trace 5: first divergence at event 52 (normal: MPI_Recv, faulty: MPI_Send); drill down: difftrace query 'list MPI_Send on 5 in 52..62'

A hung ILCS job is diagnosed at the collective:

  $ difftrace run -w ilcs -f 'wrongSize(rank=2)' | grep -E 'DEADLOCK|mismatch'
  DEADLOCK: 0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0
  collective mismatch: collective #3: mismatched MPI_Allreduce(count=1)@p0/MPI_Allreduce(count=1)@p1/MPI_Allreduce(count=2)@p2/MPI_Allreduce(count=1)@p3/MPI_Allreduce(count=1)@p4/MPI_Allreduce(count=1)@p5/MPI_Allreduce(count=1)@p6/MPI_Allreduce(count=1)@p7

The offline loop: record both runs, analyze from disk.

  $ difftrace record -w oddeven --np 8 -o normal.arch
  archived 8 trace files to normal.arch
  $ difftrace record -w oddeven --np 8 -f 'dlBug(rank=5,after=3)' -o faulty.arch > /dev/null
  $ difftrace analyze --normal normal.arch --faulty faulty.arch --attrs sing.log10 | head -4
  configuration: 11.mpiall.K10 / sing.log10 / ward
  B-score: 0.516
  suspicious traces:
    0      1.552

Fault specs are validated:

  $ difftrace run -f 'bogus(rank=1)' 2>&1 | head -2 | tail -1
  Usage: difftrace run [OPTION]…

A full markdown report:

  $ difftrace report -w oddeven --np 8 -f 'dlBug(rank=5,after=3)' -o report.md
  wrote report.md (3312 bytes)
  $ grep -c '^## ' report.md
  7

Single-run triage of a hung job (no reference run needed):

  $ difftrace triage -w oddeven --np 8 -f 'dlBug(rank=3,after=2)' --attrs sing.log10 | head -10
  run is HUNG: 8 threads never terminated
  JSM outliers (most dissimilar traces of this run):
  +-------+---------------+-----------+
  | Trace | Outlier score | Truncated |
  +-------+---------------+-----------+
  | 2     | 0.286         | yes       |
  | 3     | 0.286         | yes       |
  | 5     | 0.286         | yes       |
  | 6     | 0.286         | yes       |
  | 7     | 0.286         | yes       |

Schedule exploration:

  $ difftrace explore -w oddeven --np 6 -n 4
  +------+---------+-------+-------------------+
  | Seed | Outcome | Races | Trace fingerprint |
  +------+---------+-------+-------------------+
  | 1    | ok      | 0     | fc5685e6          |
  | 2    | ok      | 0     | fc5685e6          |
  | 3    | ok      | 0     | fc5685e6          |
  | 4    | ok      | 0     | fc5685e6          |
  +------+---------+-------+-------------------+
  distinct outcomes: 1; deadlocking seeds: none

Autotune picks a configuration and a suspect:

  $ difftrace autotune -w oddeven --np 8 -f 'swapBug(rank=3,after=2)' | tail -1
  best: 11.mpiall.K10 / sing.actual / ward (B-score 0.560, top suspect 3)

Resilient archives: a damaged trace file is detected, salvaged, and
repaired (here the v2 terminator chunk loses its last two bytes):

  $ head -c -2 normal.arch/trace_3_0.lzw > t && mv t normal.arch/trace_3_0.lzw
  $ difftrace archive verify -d normal.arch | head -1
  archive normal.arch (v2): DAMAGED (1 of 8 traces)
  $ difftrace analyze --normal normal.arch --faulty faulty.arch --attrs sing.log10 2>&1 | tail -2
  difftrace: archive error in normal.arch/trace_3_0.lzw: truncated chunk
  hint: --salvage recovers the checksum-valid prefix of damaged traces
  $ difftrace analyze --normal normal.arch --faulty faulty.arch --salvage --attrs sing.log10 | head -3
  salvaged trace 3.0: 60 events recovered, 3 bytes dropped (truncated chunk)
  configuration: 11.mpiall.K10 / sing.log10 / ward
  B-score: 0.516
  $ difftrace archive repair -d normal.arch -o fixed.arch
  salvaged trace 3.0: 60 events recovered, 3 bytes dropped (truncated chunk)
  wrote 8 repaired trace files to fixed.arch (1 salvaged)
  $ difftrace archive verify -d fixed.arch | head -1
  archive fixed.arch (v2): OK
