(* The frontend conformance contract, enforced. Every property here is
   the one Conformance.check runs — against both shipped frontends
   (cilog, syscall) over the checked-in corpus and over qcheck-random
   bytes, and against a deliberately misbehaving frontend that the
   suite must catch (a conformance suite that cannot fail a bad
   frontend proves nothing). *)

module Fe = Difftrace_frontend.Frontend
module Cilog = Difftrace_frontend.Cilog
module Syscall = Difftrace_frontend.Syscall
module Conformance = Difftrace_frontend.Conformance
module Registry = Difftrace_frontend.Registry
module Engine = Difftrace_core.Engine
module Trace = Difftrace_trace.Trace
module Trace_set = Difftrace_trace.Trace_set
module Symtab = Difftrace_trace.Symtab
module Event = Difftrace_trace.Event

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let corpus =
  [ (Cilog.frontend, "corpus/cilog/build_pass.log");
    (Cilog.frontend, "corpus/cilog/build_fail.log");
    (Cilog.frontend, "corpus/cilog/ansi_interleaved.log");
    (Syscall.frontend, "corpus/syscall/normal.strace");
    (Syscall.frontend, "corpus/syscall/faulty.strace");
    (Syscall.frontend, "corpus/syscall/unfinished.strace") ]

let engine_runner =
  let r = Engine.runner (Engine.parallel ~domains:3 ()) in
  { Fe.run = (fun n f -> r.Engine.run n f) }

let ingest_exn fe input =
  match Fe.ingest_string fe input with
  | Ok ts -> ts
  | Error e -> Alcotest.failf "ingest failed: %s" (Fe.error_to_string e)

(* ---------------------------------------------------------------- *)
(* Conformance over the checked-in corpus                            *)
(* ---------------------------------------------------------------- *)

(* every corpus file passes every property, under the adversarial
   reversed runner AND under a real parallel engine runner, including
   the archive save/salvage round-trip *)
let test_corpus_conformant () =
  let scratch = Filename.temp_file "fe-conf" "" in
  Sys.remove scratch;
  Unix.mkdir scratch 0o755;
  List.iter
    (fun (fe, path) ->
      let input = read_file path in
      let violations = Conformance.check ~scratch fe input in
      if violations <> [] then
        Alcotest.failf "%s on %s: %s" fe.Fe.name path
          (String.concat "; "
             (List.map Conformance.violation_to_string violations));
      let violations =
        Conformance.check ~alt_runner:engine_runner fe input
      in
      if violations <> [] then
        Alcotest.failf "%s on %s (engine runner): %s" fe.Fe.name path
          (String.concat "; "
             (List.map Conformance.violation_to_string violations)))
    corpus

(* every corpus file actually ingests (the conformance properties are
   vacuous on typed rejects, so pin the corpus to the happy path) *)
let test_corpus_ingests () =
  List.iter
    (fun (fe, path) ->
      let ts = ingest_exn fe (read_file path) in
      Alcotest.(check bool)
        (path ^ " nonempty") true
        (Trace_set.cardinal ts > 0 && Trace_set.total_events ts > 0))
    corpus

(* ---------------------------------------------------------------- *)
(* The suite must catch a misbehaving frontend                       *)
(* ---------------------------------------------------------------- *)

(* chaos: raises on inputs starting with 'R', answers differently on
   every call (mutable counter), renders nothing *)
let chaos_counter = ref 0

let chaos : Fe.t =
  { name = "chaos";
    description = "deliberately nonconformant test frontend";
    ingest =
      (fun ~runner:_ input ->
        if String.length input > 0 && input.[0] = 'R' then
          failwith "chaos: told you so";
        incr chaos_counter;
        let sym = Symtab.create () in
        let id =
          Symtab.intern sym (Printf.sprintf "call%d" !chaos_counter)
        in
        let tr =
          Trace.make ~pid:0 ~tid:0 ~truncated:false
            [| Event.Call id; Event.Return id |]
        in
        Ok (Trace_set.create sym [ tr ]));
    render = (fun _ -> "") }

let props violations =
  List.map (fun v -> v.Conformance.vl_property) violations
  |> List.sort_uniq compare

let test_chaos_totality () =
  Alcotest.(check (list string))
    "raise caught" [ "totality" ]
    (props (Conformance.check chaos "Raise please"))

let test_chaos_determinism () =
  let vs = props (Conformance.check chaos "benign input") in
  Alcotest.(check bool) "determinism flagged" true
    (List.mem "determinism" vs);
  (* the empty render ingests to a different (fresh-counter) set, so
     the round-trip fixed point must fail too *)
  Alcotest.(check bool) "round-trip flagged" true (List.mem "round-trip" vs)

(* a frontend that only misbehaves under the alternate runner: it
   bakes the runner's completion order into a symbol name *)
let order_dependent : Fe.t =
  { name = "order-dependent";
    description = "bakes runner evaluation order into its output";
    ingest =
      (fun ~runner input ->
        let order = Buffer.create 8 in
        ignore
          (runner.Fe.run 4 (fun i ->
               Buffer.add_string order (string_of_int i);
               i));
        let sym = Symtab.create () in
        let id =
          Symtab.intern sym
            (if String.length input = 0 then "empty" else Buffer.contents order)
        in
        let tr =
          Trace.make ~pid:0 ~tid:0 ~truncated:false
            [| Event.Call id; Event.Return id |]
        in
        Ok (Trace_set.create sym [ tr ]));
    render = (fun _ -> "x") }

let test_order_dependence_caught () =
  Alcotest.(check bool) "parity flagged" true
    (List.mem "parity" (props (Conformance.check order_dependent "x")))

(* ---------------------------------------------------------------- *)
(* qcheck: the shipped frontends on arbitrary bytes                  *)
(* ---------------------------------------------------------------- *)

let bytes_gen = QCheck2.Gen.(string_size ~gen:(char_range '\000' '\255') (0 -- 2000))

(* lines that look vaguely like each format, to push random inputs
   past the first parse stages instead of dying at line 1 *)
let structured_gen =
  QCheck2.Gen.(
    let cilog_line =
      oneof
        [ map (fun s -> "10:04:33 " ^ s) (string_size (0 -- 40));
          map (fun n -> Printf.sprintf "##[group]phase %d" n) (0 -- 99);
          return "##[endgroup]";
          map (fun s -> "web | " ^ s) (string_size (0 -- 30)) ]
    in
    let strace_line =
      oneof
        [ map2
            (fun p s -> Printf.sprintf "[pid %d] call(%s) = 0" p s)
            (0 -- 5) (string_size (0 -- 20));
          map (fun p -> Printf.sprintf "[pid %d] +++ exited with 0 +++" p) (0 -- 5);
          map (fun p -> Printf.sprintf "[pid %d] futex( <unfinished ...>" p) (0 -- 5);
          map (fun p -> Printf.sprintf "[pid %d] <... futex resumed> ) = 0" p) (0 -- 5) ]
    in
    map (String.concat "\n") (list_size (0 -- 40) (oneof [ cilog_line; strace_line ])))

let never_violates fe gen label =
  qtest
    (Printf.sprintf "%s conformant on %s input" fe.Fe.name label)
    gen
    (fun input ->
      match Conformance.check fe input with
      | [] -> true
      | vs ->
        QCheck2.Test.fail_reportf "%s"
          (String.concat "; " (List.map Conformance.violation_to_string vs)))

let prop_cilog_random = never_violates Cilog.frontend bytes_gen "random"
let prop_syscall_random = never_violates Syscall.frontend bytes_gen "random"
let prop_cilog_structured = never_violates Cilog.frontend structured_gen "structured"
let prop_syscall_structured = never_violates Syscall.frontend structured_gen "structured"

(* engine parity on structured inputs — the real parallel runner, not
   just the reversed one *)
let prop_engine_parity =
  qtest ~count:50 "engine runner parity on structured input" structured_gen
    (fun input ->
      List.for_all
        (fun fe ->
          Conformance.check ~alt_runner:engine_runner fe input
          |> List.for_all (fun v -> v.Conformance.vl_property <> "parity"))
        [ Cilog.frontend; Syscall.frontend ])

(* ---------------------------------------------------------------- *)
(* cilog specifics                                                   *)
(* ---------------------------------------------------------------- *)

let test_normalize_classes () =
  List.iter
    (fun (raw, want) ->
      Alcotest.(check string) raw want (Cilog.normalize raw))
    [ ("compiled /src/a.ml in 12 ms", "compiled <path> in <n> ms");
      ("10:04:33 starting", "<ts> starting");
      ("id deadbeef01", "id <hex>");
      ("took 98%", "took <n>");
      ("plain words stay", "plain words stay") ]

let prop_normalize_idempotent =
  qtest "cilog normalize is idempotent"
    QCheck2.Gen.(string_size ~gen:printable (0 -- 120))
    (fun s ->
      let once = Cilog.normalize s in
      Cilog.normalize once = once)

let test_cilog_streams_split () =
  let input = "web | a\ndb  | b\nweb | c\n" in
  let ts = ingest_exn Cilog.frontend input in
  Alcotest.(check int) "two streams" 2 (Trace_set.cardinal ts)

let test_cilog_ansi_invisible () =
  let plain = "10:00:00 hello world\n" in
  let colored = "10:00:00 \x1b[32mhello\x1b[0m world\n" in
  Alcotest.(check string) "ansi stripped before tokenizing"
    (Fe.digest (ingest_exn Cilog.frontend plain))
    (Fe.digest (ingest_exn Cilog.frontend colored))

let test_cilog_steps_are_calls () =
  let input = "##[group]Build\nmake\n##[endgroup]\n" in
  let ts = ingest_exn Cilog.frontend input in
  let tr = (Trace_set.traces ts).(0) in
  let names =
    Trace.call_ids tr |> Array.to_list
    |> List.map (Symtab.name (Trace_set.symtab ts))
  in
  Alcotest.(check (list string)) "step wraps body" [ "step:Build"; "make" ]
    names

(* ---------------------------------------------------------------- *)
(* syscall specifics                                                 *)
(* ---------------------------------------------------------------- *)

let test_syscall_pids_renumbered () =
  (* two captures of "the same program" under different kernel pids
     must produce digest-compatible thread identities *)
  let capture base =
    Printf.sprintf
      "[pid %d] read(3) = 1\n[pid %d] write(1) = 1\n[pid %d] futex(0) = 0\n"
      base base (base + 1)
  in
  let a = ingest_exn Syscall.frontend (capture 100)
  and b = ingest_exn Syscall.frontend (capture 9000) in
  Alcotest.(check string) "pid-independent digest" (Fe.digest a) (Fe.digest b)

let test_syscall_unfinished_truncates () =
  let ts =
    ingest_exn Syscall.frontend "[pid 1] nanosleep(1 <unfinished ...>\n"
  in
  let tr = (Trace_set.traces ts).(0) in
  Alcotest.(check bool) "pending call marks truncation" true
    tr.Trace.truncated

let test_syscall_signal_inside_window () =
  (* a signal delivery between unfinished and resumed must nest, not
     error *)
  let input =
    "[pid 1] nanosleep(1 <unfinished ...>\n\
     [pid 1] --- SIGINT {si_signo=SIGINT} ---\n\
     [pid 1] <... nanosleep resumed> ) = 0\n"
  in
  let ts = ingest_exn Syscall.frontend input in
  let tr = (Trace_set.traces ts).(0) in
  Alcotest.(check bool) "complete thread" false tr.Trace.truncated;
  let names =
    Trace.call_ids tr |> Array.to_list
    |> List.map (Symtab.name (Trace_set.symtab ts))
  in
  Alcotest.(check (list string))
    "signal nested in syscall window"
    [ "process"; "nanosleep"; "sig:SIGINT" ]
    names

let test_syscall_mismatched_resume_rejected () =
  match Fe.ingest_string Syscall.frontend "[pid 1] <... read resumed> ) = 0\n" with
  | Ok _ -> Alcotest.fail "resume without unfinished must be a typed error"
  | Error e ->
    Alcotest.(check (option int)) "line pinned" (Some 1) e.Fe.fe_line

(* ---------------------------------------------------------------- *)
(* registry                                                          *)
(* ---------------------------------------------------------------- *)

let test_registry_builtin () =
  Alcotest.(check (list string)) "builtins registered" [ "cilog"; "syscall" ]
    (List.filter
       (fun n -> n = "cilog" || n = "syscall")
       (Registry.known ()));
  Alcotest.(check bool) "find cilog" true (Registry.find "cilog" <> None);
  Alcotest.(check bool) "find nonsense" true (Registry.find "nonsense" = None)

let test_oversized_line_rejected () =
  let input = String.make (Fe.max_line_bytes + 1) 'a' in
  List.iter
    (fun fe ->
      match Fe.ingest_string fe input with
      | Ok _ -> Alcotest.failf "%s accepted an oversized line" fe.Fe.name
      | Error e ->
        Alcotest.(check bool)
          (fe.Fe.name ^ " names the guard")
          true
          (String.length e.Fe.fe_reason > 0))
    [ Cilog.frontend; Syscall.frontend ]

let () =
  Alcotest.run "frontend"
    [ ( "conformance",
        [ Alcotest.test_case "corpus conformant" `Quick test_corpus_conformant;
          Alcotest.test_case "corpus ingests" `Quick test_corpus_ingests;
          prop_cilog_random;
          prop_syscall_random;
          prop_cilog_structured;
          prop_syscall_structured;
          prop_engine_parity ] );
      ( "chaos-detection",
        [ Alcotest.test_case "totality caught" `Quick test_chaos_totality;
          Alcotest.test_case "determinism caught" `Quick
            test_chaos_determinism;
          Alcotest.test_case "order dependence caught" `Quick
            test_order_dependence_caught ] );
      ( "cilog",
        [ Alcotest.test_case "normalize classes" `Quick test_normalize_classes;
          prop_normalize_idempotent;
          Alcotest.test_case "streams split" `Quick test_cilog_streams_split;
          Alcotest.test_case "ansi invisible" `Quick test_cilog_ansi_invisible;
          Alcotest.test_case "steps are calls" `Quick
            test_cilog_steps_are_calls ] );
      ( "syscall",
        [ Alcotest.test_case "pids renumbered" `Quick
            test_syscall_pids_renumbered;
          Alcotest.test_case "unfinished truncates" `Quick
            test_syscall_unfinished_truncates;
          Alcotest.test_case "signal inside window" `Quick
            test_syscall_signal_inside_window;
          Alcotest.test_case "mismatched resume rejected" `Quick
            test_syscall_mismatched_resume_rejected ] );
      ( "registry",
        [ Alcotest.test_case "builtins" `Quick test_registry_builtin;
          Alcotest.test_case "oversized line" `Quick
            test_oversized_line_rejected ] ) ]
