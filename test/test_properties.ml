(* Cross-library properties: end-to-end invariants over randomized
   simulator runs. These catch integration bugs that per-module suites
   cannot (e.g. symbol-table remapping between runs, archive fidelity
   for arbitrary event streams, clock consistency under scheduling). *)

open Difftrace
module R = Difftrace_simulator.Runtime
module Api = Difftrace_simulator.Api
module Vclock = Difftrace_simulator.Vclock
module Fault = Difftrace_simulator.Fault
module Trace = Difftrace_trace.Trace
module Trace_set = Difftrace_trace.Trace_set
module F = Difftrace_filter.Filter
module Archive = Difftrace_parlot.Archive
module Otf2 = Difftrace_temporal.Otf2
module Cct = Difftrace_stacktree.Cct
module Odd_even = Difftrace_workloads.Odd_even
module Heat = Difftrace_workloads.Heat

let qtest ?(count = 25) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* A randomized mixed-API program: parameterized by a seed-derived
   recipe, always terminating, always collective-consistent. *)
let random_program ~recipe env =
  let rng = Difftrace_util.Prng.create (recipe + (R.pid env * 31)) in
  let shared_rng = Difftrace_util.Prng.create recipe in
  Api.call env "main" (fun () ->
      Api.mpi_init env;
      let rank = Api.comm_rank env in
      let np = Api.comm_size env in
      (* same round count everywhere: derived from the shared recipe *)
      let rounds = 1 + Difftrace_util.Prng.int shared_rng 4 in
      for round = 1 to rounds do
        Api.call env "phase" (fun () ->
            (* local compute noise *)
            for _ = 1 to Difftrace_util.Prng.int rng 4 do
              Api.call env "compute" (fun () -> ())
            done;
            (* ring shift with nonblocking receives *)
            let next = (rank + 1) mod np and prev = (rank + np - 1) mod np in
            let r = Api.irecv env ~src:prev ~tag:round () in
            Api.send env ~dst:next ~tag:round [| rank; round |];
            ignore (Api.wait env r);
            (* a collective per round, same kind everywhere *)
            ignore (Api.allreduce env ~op:R.Op_sum [| rank |]))
      done;
      Api.barrier env;
      Api.mpi_finalize env)

let run_random ~recipe ~np ~seed =
  R.run ~np ~seed (random_program ~recipe)

let recipe_gen =
  QCheck2.Gen.(triple (int_range 0 500) (int_range 2 6) (int_range 0 500))

let prop_random_runs_clean =
  qtest "random mixed-API programs terminate cleanly" recipe_gen
    (fun (recipe, np, seed) ->
      let o = run_random ~recipe ~np ~seed in
      o.R.deadlocked = [] && (not o.R.timed_out) && o.R.collective_mismatch = None)

let prop_self_comparison_is_null =
  qtest "comparing a run against itself finds nothing" recipe_gen
    (fun (recipe, np, seed) ->
      let ts = (run_random ~recipe ~np ~seed).R.traces in
      let c = Pipeline.compare_runs (Config.make ~filter:(F.make []) ()) ~normal:ts ~faulty:ts in
      c.Pipeline.bscore = 1.0
      && Array.for_all (fun (_, s) -> s < 1e-9) c.Pipeline.suspects)

let prop_archive_roundtrip_random =
  qtest "archive save/load is lossless for arbitrary runs" ~count:15 recipe_gen
    (fun (recipe, np, seed) ->
      let ts = (run_random ~recipe ~np ~seed).R.traces in
      let dir =
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "difftrace_prop_%d_%d_%d" recipe np seed)
      in
      ignore (Archive.save ~dir ts);
      let loaded = Archive.load_exn ~dir () in
      let dump t =
        Array.to_list (Trace_set.traces t)
        |> List.map (fun tr ->
               ( tr.Trace.pid,
                 tr.Trace.tid,
                 tr.Trace.truncated,
                 Trace.to_strings (Trace_set.symtab t) tr ))
      in
      dump ts = dump loaded)

let prop_otf2_roundtrip_random =
  qtest "OTF2 export parses back identically" ~count:15 recipe_gen
    (fun (recipe, np, seed) ->
      let o = run_random ~recipe ~np ~seed in
      let archive = Otf2.of_outcome o in
      Otf2.equal archive (Otf2.parse (Otf2.render archive)))

let prop_lamport_consistency =
  qtest "Lamport stamps strictly increase along every thread" recipe_gen
    (fun (recipe, np, seed) ->
      let o = run_random ~recipe ~np ~seed in
      List.for_all
        (fun (_, syncs) ->
          let ok = ref true in
          Array.iteri
            (fun i sp ->
              if i > 0 then
                let prev = syncs.(i - 1).R.sp_stamp.Vclock.lamport in
                if sp.R.sp_stamp.Vclock.lamport <= prev then ok := false)
            syncs;
          !ok)
        o.R.sync_log)

let prop_vector_clock_program_order =
  qtest "vector stamps are nondecreasing in program order" recipe_gen
    (fun (recipe, np, seed) ->
      let o = run_random ~recipe ~np ~seed in
      List.for_all
        (fun (_, syncs) ->
          let ok = ref true in
          Array.iteri
            (fun i sp ->
              if i > 0 then
                let prev = syncs.(i - 1).R.sp_stamp.Vclock.vec in
                if not (Vclock.leq prev sp.R.sp_stamp.Vclock.vec) then ok := false)
            syncs;
          !ok)
        o.R.sync_log)

let prop_filter_idempotent =
  qtest "filters are idempotent on trace sets" recipe_gen
    (fun (recipe, np, seed) ->
      let ts = (run_random ~recipe ~np ~seed).R.traces in
      let f = F.make [ F.Mpi_all; F.Custom "phase|compute" ] in
      let once = F.apply_set f ts in
      let twice = F.apply_set f once in
      let dump t =
        Array.to_list (Trace_set.traces t)
        |> List.map (fun tr -> Trace.to_strings (Trace_set.symtab t) tr)
      in
      dump once = dump twice)

let prop_cct_preserves_call_counts =
  qtest "CCT total equals the number of call events" recipe_gen
    (fun (recipe, np, seed) ->
      let ts = (run_random ~recipe ~np ~seed).R.traces in
      let calls =
        Array.fold_left
          (fun acc tr -> acc + Array.length (Trace.call_ids tr))
          0 (Trace_set.traces ts)
      in
      Cct.total_calls (Cct.coalesce ts) = calls)

let prop_pipeline_jsm_properties =
  qtest "pipeline JSM is symmetric with unit diagonal" recipe_gen
    (fun (recipe, np, seed) ->
      let ts = (run_random ~recipe ~np ~seed).R.traces in
      let a = Pipeline.analyze (Config.make ~filter:(F.make []) ()) ts in
      let j = Difftrace_cluster.Jsm.rows a.Pipeline.jsm in
      let n = Array.length j in
      let ok = ref true in
      for i = 0 to n - 1 do
        if Float.abs (j.(i).(i) -. 1.0) > 1e-9 then ok := false;
        for k = 0 to n - 1 do
          if Float.abs (j.(i).(k) -. j.(k).(i)) > 1e-9 then ok := false;
          if j.(i).(k) < -1e-9 || j.(i).(k) > 1.0 +. 1e-9 then ok := false
        done
      done;
      !ok)

(* fault-injected odd/even across the parameter space: the pipeline
   must never crash and always produce a consistent comparison *)
let prop_fault_sweep_total =
  qtest "every odd/even fault yields a well-formed comparison" ~count:20
    QCheck2.Gen.(
      triple (int_range 4 12) (int_range 0 3)
        (oneofl
           [ `Swap; `Dl ]))
    (fun (np, after, kind) ->
      let rank = np / 2 in
      let fault =
        match kind with
        | `Swap -> Fault.Swap_send_recv { rank; after_iter = after }
        | `Dl -> Fault.Deadlock_recv { rank; after_iter = after }
      in
      let normal = (fst (Odd_even.run ~np ~fault:Fault.No_fault ())).R.traces in
      let faulty = (fst (Odd_even.run ~np ~fault ())).R.traces in
      let c = Pipeline.compare_runs (Config.make ()) ~normal ~faulty in
      c.Pipeline.bscore >= 0.0
      && c.Pipeline.bscore <= 1.0 +. 1e-9
      && Array.length c.Pipeline.suspects = np
      && Array.for_all (fun (_, s) -> s >= 0.0) c.Pipeline.suspects)

let prop_heat_conservation_shape =
  qtest "heat field stays bounded for any seed" ~count:10
    QCheck2.Gen.(int_range 0 100)
    (fun seed ->
      let o, r = Heat.run ~np:4 ~max_iters:10 ~seed ~fault:Fault.No_fault () in
      o.R.deadlocked = []
      && Array.for_all (fun v -> v >= 0 && v <= 1_000_000) r.Heat.field)

(* every fault constructor round-trips through its string form —
   including hostile rank/iteration values the CLI never produces.
   [func] stays on an identifier alphabet: the string form is
   positional ("key=value,..."), so separators inside a function name
   are out of the format's domain by design. *)
let fault_gen =
  let open QCheck2.Gen in
  let rank = int_range (-3) 10_000 in
  let iter = int_range (-3) 10_000 in
  let func =
    map2
      (fun c s -> Printf.sprintf "%c%s" c s)
      (char_range 'a' 'z')
      (string_size ~gen:(oneofl [ 'a'; 'z'; 'A'; 'Z'; '0'; '9'; '_'; '.' ])
         (int_range 0 12))
  in
  oneof
    [ return Fault.No_fault;
      map2
        (fun rank after_iter -> Fault.Swap_send_recv { rank; after_iter })
        rank iter;
      map2
        (fun rank after_iter -> Fault.Deadlock_recv { rank; after_iter })
        rank iter;
      map (fun rank -> Fault.Wrong_collective_size { rank }) rank;
      map (fun rank -> Fault.Wrong_collective_op { rank }) rank;
      map2 (fun rank thread -> Fault.No_critical { rank; thread }) rank iter;
      map2 (fun rank func -> Fault.Skip_function { rank; func }) rank func ]

let prop_fault_string_roundtrip =
  qtest "Fault.of_string inverts Fault.to_string" ~count:200 fault_gen
    (fun f -> Fault.equal (Fault.of_string (Fault.to_string f)) f)

let test_fault_of_string_malformed () =
  let expect_invalid s =
    match Fault.of_string s with
    | f -> Alcotest.failf "%S accepted as %s" s (Fault.to_string f)
    | exception Invalid_argument _ -> ()
    | exception e ->
      Alcotest.failf "%S raised %s, not Invalid_argument" s
        (Printexc.to_string e)
  in
  List.iter expect_invalid
    [ "";
      "bogus";
      "swapBug";
      "swapBug(";
      "swapBug(rank=5)";
      (* a malformed number once leaked [Failure "int_of_string"] *)
      "swapBug(rank=abc,after=1)";
      "swapBug(rank=,after=1)";
      "dlBug(after=1)";
      "wrongSize()";
      "noCritical(rank=1)";
      "skipFunction(rank=1)" ]

(* ------------------------------------------------------------------ *)
(* Incremental JSM extension and the persistent analysis store         *)
(* ------------------------------------------------------------------ *)

module Jsm = Difftrace_cluster.Jsm
module Context = Difftrace_fca.Context

(* Exact bit-level equality — "same up to epsilon" is not good enough
   for the store, whose whole contract is byte-identical reports. *)
let bits_equal a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun ra rb ->
         Array.length ra = Array.length rb
         && Array.for_all2
              (fun x y -> Int64.bits_of_float x = Int64.bits_of_float y)
              ra rb)
       a b

(* A random formal context plus a random cold/warm split, all derived
   from one seed. *)
let random_split seed =
  let rng = Difftrace_util.Prng.create seed in
  let n = 1 + Difftrace_util.Prng.int rng 12 in
  let pool = [| "a"; "b"; "c"; "d"; "e"; "f"; "g"; "h" |] in
  let rows =
    List.init n (fun i ->
        let attrs =
          Array.to_list pool
          |> List.filter (fun _ -> Difftrace_util.Prng.bool rng)
        in
        (Printf.sprintf "t%d" i, attrs))
  in
  let fresh = Array.init n (fun _ -> Difftrace_util.Prng.bool rng) in
  (rows, fresh)

let prop_jsm_extend_equals_compute =
  qtest "Jsm.extend == Jsm.compute bit-for-bit, seq and parallel" ~count:100
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rows, fresh = random_split seed in
      let ctx = Context.of_attr_sets rows in
      let warm_rows = List.filteri (fun i _ -> not fresh.(i)) rows in
      let base = Jsm.of_context (Context.of_attr_sets warm_rows) in
      let expected = Jsm.of_context ctx in
      List.for_all
        (fun init ->
          let got = Jsm.extend ~init ~base ~fresh ctx in
          got.Jsm.labels = expected.Jsm.labels
          && bits_equal (Jsm.rows got) (Jsm.rows expected))
        [ Array.init; Engine.init (Engine.parallel ~domains:3 ()) ])

(* The store's warm path must be invisible: a second run over the same
   traces sees only memo hits, zero fresh summarizations, and lands on
   the same matrix bit for bit. *)
let prop_store_roundtrip_warm =
  qtest "store round-trip: warm rerun is all-hit and bit-identical"
    ~count:10 recipe_gen
    (fun (recipe, np, seed) ->
      let ts = (run_random ~recipe ~np ~seed).R.traces in
      let dir =
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "difftrace_prop_store_%d_%d_%d" recipe np seed)
      in
      if Sys.file_exists dir then
        Array.iter
          (fun f -> Sys.remove (Filename.concat dir f))
          (Sys.readdir dir);
      let get = function
        | Ok v -> v
        | Error e -> failwith (Store.error_to_string e)
      in
      let config = Config.make ~filter:(F.make []) () in
      let st1 = get (Store.load ~dir) in
      let a1 = Pipeline.analyze ~store:st1 config ts in
      get (Store.flush st1);
      let st2 = get (Store.load ~dir) in
      let a2 = Pipeline.analyze ~store:st2 config ts in
      let s = Memo.stats (Store.memo st2) in
      s.Memo.misses = 0
      && s.Memo.hits > 0
      && a1.Pipeline.jsm.Jsm.labels = a2.Pipeline.jsm.Jsm.labels
      && bits_equal (Jsm.rows a1.Pipeline.jsm) (Jsm.rows a2.Pipeline.jsm))

let () =
  Alcotest.run "properties"
    [ ( "end-to-end",
        [ prop_random_runs_clean;
          prop_self_comparison_is_null;
          prop_archive_roundtrip_random;
          prop_otf2_roundtrip_random;
          prop_lamport_consistency;
          prop_vector_clock_program_order;
          prop_filter_idempotent;
          prop_cct_preserves_call_counts;
          prop_pipeline_jsm_properties;
          prop_fault_sweep_total;
          prop_heat_conservation_shape ] );
      ( "incremental-store",
        [ prop_jsm_extend_equals_compute; prop_store_roundtrip_warm ] );
      ( "fault-strings",
        [ prop_fault_string_roundtrip;
          Alcotest.test_case "malformed strings rejected" `Quick
            test_fault_of_string_malformed ] ) ]
