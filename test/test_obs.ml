(* Telemetry tests: span nesting and aggregation, the disabled fast
   path, sink plumbing, counter determinism under the parallel engine
   and the stability of the difftrace-telemetry/1 JSON schema. *)

open Difftrace
module R = Difftrace_simulator.Runtime
module Fault = Difftrace_simulator.Fault
module Context = Difftrace_fca.Context
module Jsm = Difftrace_cluster.Jsm
module Odd_even = Difftrace_workloads.Odd_even

(* every test leaves telemetry exactly as it found it: off, real
   clock, allocation tracking on *)
let scrubbed f () =
  Fun.protect f ~finally:(fun () ->
      Telemetry.disable ();
      Telemetry.reset ();
      Telemetry.set_clock None;
      Telemetry.set_track_alloc true)

(* a hand-cranked clock: spans see exactly the seconds the test adds *)
let fake_clock () =
  let now = ref 0.0 in
  Telemetry.set_clock (Some (fun () -> !now));
  Telemetry.set_track_alloc false;
  fun s -> now := !now +. s

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

let test_span_nesting () =
  let advance = fake_clock () in
  Telemetry.enable ();
  Telemetry.Span.with_ "compare" (fun () ->
      advance 0.001;
      Telemetry.Span.with_ "analyze" (fun () -> advance 0.002);
      Telemetry.Span.with_ "analyze" (fun () -> advance 0.003));
  let r = Telemetry.report () in
  let paths = List.map (fun s -> s.Telemetry.path) r.Telemetry.spans in
  Alcotest.(check (list string))
    "child paths join with '/', equal paths aggregate"
    [ "compare"; "compare/analyze" ] paths;
  let find p = List.find (fun s -> s.Telemetry.path = p) r.Telemetry.spans in
  let outer = find "compare" and inner = find "compare/analyze" in
  Alcotest.(check int) "outer count" 1 outer.Telemetry.count;
  Alcotest.(check int) "inner count" 2 inner.Telemetry.count;
  Alcotest.(check int) "outer wall includes children" 6_000_000
    outer.Telemetry.wall_ns;
  Alcotest.(check int) "inner wall summed" 5_000_000 inner.Telemetry.wall_ns;
  Alcotest.(check int) "alloc tracking off" 0 outer.Telemetry.alloc_bytes

let test_span_root_and_current_path () =
  let _advance = fake_clock () in
  Telemetry.enable ();
  Telemetry.Span.with_ "outer" (fun () ->
      Telemetry.Span.with_ "inner" (fun () ->
          Alcotest.(check (option string))
            "current_path is the joined chain" (Some "outer/inner")
            (Telemetry.Span.current_path ()));
      (* engine-worker style spans anchor at the root *)
      Telemetry.Span.with_root "worker" (fun () ->
          Alcotest.(check (option string))
            "with_root ignores the enclosing stack" (Some "worker")
            (Telemetry.Span.current_path ())));
  let paths =
    List.map (fun s -> s.Telemetry.path) (Telemetry.report ()).Telemetry.spans
  in
  Alcotest.(check (list string))
    "root span is not nested under outer"
    [ "outer"; "outer/inner"; "worker" ]
    paths

let test_span_exception_safe () =
  let advance = fake_clock () in
  Telemetry.enable ();
  (try
     Telemetry.Span.with_ "boom" (fun () ->
         advance 0.004;
         failwith "kaboom")
   with Failure _ -> ());
  Alcotest.(check (option string))
    "stack popped after the raise" None
    (Telemetry.Span.current_path ());
  let r = Telemetry.report () in
  let s = List.find (fun s -> s.Telemetry.path = "boom") r.Telemetry.spans in
  Alcotest.(check int) "span still recorded" 4_000_000 s.Telemetry.wall_ns

(* ------------------------------------------------------------------ *)
(* Disabled fast path and sinks                                        *)
(* ------------------------------------------------------------------ *)

let test_disabled_is_noop () =
  Telemetry.disable ();
  Telemetry.reset ();
  let c = Telemetry.Counter.make "test.disabled" in
  Telemetry.Counter.add c 42;
  Alcotest.(check int) "counter untouched while disabled" 0
    (Telemetry.Counter.value c);
  let v = Telemetry.Span.with_ "never" (fun () -> 17) in
  Alcotest.(check int) "span is transparent" 17 v;
  let r = Telemetry.report () in
  Alcotest.(check int) "no spans recorded" 0 (List.length r.Telemetry.spans);
  Alcotest.(check int) "no counters recorded" 0
    (List.length r.Telemetry.counters)

let test_enable_rejects_empty_sinks () =
  Alcotest.check_raises "no sinks is a caller bug"
    (Invalid_argument "Telemetry.enable: no sinks") (fun () ->
      Telemetry.enable ~sinks:[] ())

let test_custom_sink () =
  let advance = fake_clock () in
  let seen = ref [] in
  Telemetry.enable
    ~sinks:
      [ Telemetry.Custom
          (fun ~path ~wall_ns ~alloc_bytes ->
            seen := (path, wall_ns, alloc_bytes) :: !seen) ]
    ();
  Telemetry.Span.with_ "a" (fun () ->
      advance 0.001;
      Telemetry.Span.with_ "b" (fun () -> advance 0.002));
  (* children close first; no Recording sink means an empty report *)
  Alcotest.(check bool)
    "custom sink saw both closes in order" true
    (!seen = [ ("a", 3_000_000, 0); ("a/b", 2_000_000, 0) ]);
  Alcotest.(check int) "recording sink not installed" 0
    (List.length (Telemetry.report ()).Telemetry.spans)

(* ------------------------------------------------------------------ *)
(* Counter determinism across engines                                  *)
(* ------------------------------------------------------------------ *)

let counters_for engine ~normal ~faulty =
  Telemetry.enable ();
  let memo = Memo.create () in
  let config = Config.default |> Config.with_engine engine in
  let _ = Pipeline.compare_runs ~memo config ~normal ~faulty in
  let r = Telemetry.report () in
  Telemetry.disable ();
  r.Telemetry.counters

let test_counters_engine_parity () =
  (* generate the traces before enabling so capture counters don't mix
     into the comparison *)
  let normal = (fst (Odd_even.run ~np:8 ~fault:Fault.No_fault ())).R.traces in
  let faulty =
    (fst
       (Odd_even.run ~np:8
          ~fault:(Fault.Swap_send_recv { rank = 3; after_iter = 3 })
          ()))
      .R.traces
  in
  let seq = counters_for Engine.sequential ~normal ~faulty in
  let par = counters_for (Engine.parallel ~domains:4 ()) ~normal ~faulty in
  Alcotest.(check (list (pair string int)))
    "logical-work counters identical under both engines" seq par;
  Alcotest.(check bool) "the pipeline counted something" true (seq <> [])

let test_jsm_cell_counter () =
  let n = 60 in
  let ctx =
    Context.of_attr_sets
      (List.init n (fun i ->
           ( Printf.sprintf "o%d" i,
             List.init 20 (fun j -> Printf.sprintf "a%d" ((i + j * 3) mod 80))
           )))
  in
  let cells engine =
    Telemetry.enable ();
    let _ = Jsm.compute ~init:(Engine.init engine) ctx in
    let v = List.assoc_opt "jsm.cells" (Telemetry.report ()).Telemetry.counters in
    Telemetry.disable ();
    v
  in
  Alcotest.(check (option int))
    "sequential counts every cell" (Some (n * n))
    (cells Engine.sequential);
  Alcotest.(check (option int))
    "parallel counts every cell exactly once" (Some (n * n))
    (cells (Engine.parallel ~domains:4 ()))

(* ------------------------------------------------------------------ *)
(* JSON schema                                                         *)
(* ------------------------------------------------------------------ *)

(* the exact wire format of difftrace-telemetry/1: an expect test, so
   any accidental schema drift fails loudly *)
let expected_json =
  "{\n\
  \  \"schema\": \"difftrace-telemetry/1\",\n\
  \  \"spans\": [\n\
  \    {\"path\":\"analyze\",\"count\":2,\"wall_ns\":1500000,\"alloc_bytes\":2048},\n\
  \    {\"path\":\"analyze/jsm\",\"count\":2,\"wall_ns\":500000,\"alloc_bytes\":1024}\n\
  \  ],\n\
  \  \"counters\": [\n\
  \    {\"name\":\"jsm.cells\",\"value\":16},\n\
  \    {\"name\":\"memo.hits\",\"value\":3}\n\
  \  ]\n\
   }\n"

let fixed_report =
  Telemetry.
    { spans =
        [ { path = "analyze"; count = 2; wall_ns = 1_500_000; alloc_bytes = 2048 };
          { path = "analyze/jsm"; count = 2; wall_ns = 500_000; alloc_bytes = 1024 }
        ];
      counters = [ ("jsm.cells", 16); ("memo.hits", 3) ] }

let test_json_schema_stability () =
  Alcotest.(check string)
    "serialized form is pinned" expected_json
    (Telemetry.to_json fixed_report);
  Alcotest.(check bool)
    "pinned form parses back to the same report" true
    (Telemetry.report_of_json expected_json = fixed_report)

let test_json_roundtrip_live () =
  let advance = fake_clock () in
  Telemetry.enable ();
  let c = Telemetry.Counter.make "test.roundtrip" in
  Telemetry.Span.with_ "outer" (fun () ->
      advance 0.0025;
      Telemetry.Counter.add c 7;
      Telemetry.Span.with_ "inner \"quoted\"" (fun () -> advance 0.001));
  let r = Telemetry.report () in
  Alcotest.(check bool)
    "report -> json -> report is the identity" true
    (Telemetry.report_of_json (Telemetry.to_json r) = r)

let test_json_rejects_wrong_schema () =
  Alcotest.(check bool)
    "foreign schema tag refused" true
    (try
       ignore
         (Telemetry.report_of_json
            "{\"schema\":\"difftrace-telemetry/999\",\"spans\":[],\"counters\":[]}");
       false
     with Telemetry.Json.Parse_error _ -> true)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "obs"
    [ ( "span",
        [ Alcotest.test_case "nesting" `Quick (scrubbed test_span_nesting);
          Alcotest.test_case "root + current_path" `Quick
            (scrubbed test_span_root_and_current_path);
          Alcotest.test_case "exception safety" `Quick
            (scrubbed test_span_exception_safe) ] );
      ( "switch",
        [ Alcotest.test_case "disabled is a no-op" `Quick
            (scrubbed test_disabled_is_noop);
          Alcotest.test_case "empty sinks rejected" `Quick
            (scrubbed test_enable_rejects_empty_sinks);
          Alcotest.test_case "custom sink" `Quick (scrubbed test_custom_sink) ]
      );
      ( "counters",
        [ Alcotest.test_case "engine parity (compare_runs)" `Quick
            (scrubbed test_counters_engine_parity);
          Alcotest.test_case "jsm cells exact" `Quick
            (scrubbed test_jsm_cell_counter) ] );
      ( "json",
        [ Alcotest.test_case "schema expect" `Quick
            (scrubbed test_json_schema_stability);
          Alcotest.test_case "live round-trip" `Quick
            (scrubbed test_json_roundtrip_live);
          Alcotest.test_case "wrong schema rejected" `Quick
            (scrubbed test_json_rejects_wrong_schema) ] ) ]
