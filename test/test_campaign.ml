(* Campaign runner: matrix construction, crash isolation, resume. *)

module C = Difftrace_campaign.Campaign
module Fault = Difftrace_simulator.Fault
module Telemetry = Difftrace_obs.Telemetry

let contains sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let tmpdir name =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ()) ("difftrace_camp_" ^ name)
  in
  rm_rf dir;
  dir

let dl_fault = Fault.Deadlock_recv { rank = 1; after_iter = 0 }
let crash_fault = Fault.Skip_function { rank = 0; func = "raise" }
let swap_fault = Fault.Swap_send_recv { rank = 1; after_iter = 0 }

(* the acceptance matrix: one deadlocking cell, one raising cell, one
   clean cell *)
let mixed_matrix () =
  C.matrix ~kind:"selftest" ~np:4 ~faults:[ dl_fault; crash_fault; swap_fault ]
    ~seeds:[ 1 ] ()

(* ------------------------------------------------------------------ *)
(* matrix construction                                                 *)
(* ------------------------------------------------------------------ *)

let expect_invalid name f =
  match f () with
  | _ -> Alcotest.failf "%s: accepted" name
  | exception Invalid_argument _ -> ()

let test_matrix_validation () =
  expect_invalid "unknown kind" (fun () ->
      C.matrix ~kind:"nope" ~np:2 ~faults:[ swap_fault ] ~seeds:[ 1 ] ());
  expect_invalid "no faults" (fun () ->
      C.matrix ~kind:"oddeven" ~np:2 ~faults:[] ~seeds:[ 1 ] ());
  expect_invalid "no seeds" (fun () ->
      C.matrix ~kind:"oddeven" ~np:2 ~faults:[ swap_fault ] ~seeds:[] ());
  expect_invalid "np < 1" (fun () ->
      C.matrix ~kind:"oddeven" ~np:0 ~faults:[ swap_fault ] ~seeds:[ 1 ] ())

let test_matrix_cells () =
  let m =
    C.matrix ~kind:"oddeven" ~np:2 ~faults:[ dl_fault; swap_fault ]
      ~seeds:[ 3; 1; 3 ] ()
  in
  Alcotest.(check (list int)) "seeds sorted + deduped" [ 1; 3 ] m.C.seeds;
  let cs = C.cells m in
  Alcotest.(check int) "faults x seeds cells" 4 (List.length cs);
  Alcotest.(check (list int)) "fault-major numbering from 0" [ 0; 1; 2; 3 ]
    (List.map (fun c -> c.C.index) cs);
  let c1 = List.nth cs 1 in
  Alcotest.(check bool) "cell 1 = first fault, second seed" true
    (Fault.equal c1.C.fault dl_fault && c1.C.seed = 3);
  Alcotest.(check string) "label" "dlBug(rank=1,after=0)@s3" (C.cell_label c1)

let test_registered_kinds () =
  List.iter
    (fun k ->
      Alcotest.(check bool) (k ^ " registered") true (List.mem k (C.kinds ())))
    [ "oddeven"; "ilcs"; "lulesh"; "heat"; "heat2d"; "selftest" ]

(* ------------------------------------------------------------------ *)
(* crash isolation                                                     *)
(* ------------------------------------------------------------------ *)

let verdict_of o i =
  (List.find (fun r -> r.C.cell.C.index = i) o.C.results).C.verdict

let result_of o i = List.find (fun r -> r.C.cell.C.index = i) o.C.results

let test_run_isolates_failures () =
  let dir = tmpdir "isolate" in
  let streamed = ref [] in
  let on_cell r = streamed := r.C.cell.C.index :: !streamed in
  match C.run ~on_cell ~dir (mixed_matrix ()) with
  | Error e -> Alcotest.fail (C.error_to_string e)
  | Ok o ->
    Alcotest.(check int) "all cells executed" 3 o.C.executed;
    Alcotest.(check int) "nothing resumed" 0 o.C.resumed_cells;
    Alcotest.(check (list int)) "streamed in index order" [ 0; 1; 2 ]
      (List.rev !streamed);
    (match verdict_of o 0 with
    | C.Hung { deadlocked; timed_out } ->
      Alcotest.(check bool) "deadlocked threads recorded" true (deadlocked > 0);
      Alcotest.(check bool) "not a timeout" false timed_out
    | v -> Alcotest.failf "deadlock cell: %s" (C.verdict_to_string v));
    (* the hung cell's truncated traces were still analyzed *)
    Alcotest.(check bool) "hung cell has a B-score" true
      ((result_of o 0).C.bscore <> None);
    (match verdict_of o 1 with
    | C.Failed { error; backtrace = _ } ->
      Alcotest.(check bool) "exception captured" true
        (contains "injected crash" error)
    | v -> Alcotest.failf "raising cell: %s" (C.verdict_to_string v));
    (match verdict_of o 2 with
    | C.Completed -> ()
    | v -> Alcotest.failf "clean cell: %s" (C.verdict_to_string v));
    (match (result_of o 2).C.suspects with
    | (top, score) :: _ ->
      Alcotest.(check string) "swap fault blames rank 1" "1" top;
      Alcotest.(check bool) "positive score" true (score > 0.0)
    | [] -> Alcotest.fail "clean cell has no suspects")

let test_run_timeout_verdict () =
  let dir = tmpdir "timeout" in
  let m =
    C.matrix ~max_steps:40 ~kind:"selftest" ~np:4
      ~faults:[ Fault.Skip_function { rank = 0; func = "spin" } ]
      ~seeds:[ 1 ] ()
  in
  match C.run ~dir m with
  | Error e -> Alcotest.fail (C.error_to_string e)
  | Ok o -> (
    match verdict_of o 0 with
    | C.Hung { timed_out; _ } ->
      Alcotest.(check bool) "budget exhaustion recorded" true timed_out
    | v -> Alcotest.failf "spin cell: %s" (C.verdict_to_string v))

(* ------------------------------------------------------------------ *)
(* resume                                                              *)
(* ------------------------------------------------------------------ *)

let counter rep name =
  match List.assoc_opt name rep.Telemetry.counters with Some v -> v | None -> 0

let test_run_resumes () =
  let dir = tmpdir "resume" in
  (match C.run ~dir (mixed_matrix ()) with
  | Error e -> Alcotest.fail (C.error_to_string e)
  | Ok o -> Alcotest.(check int) "first pass executes" 3 o.C.executed);
  Telemetry.enable ();
  let second = C.run ~dir (mixed_matrix ()) in
  let rep = Telemetry.report () in
  Telemetry.disable ();
  match second with
  | Error e -> Alcotest.fail (C.error_to_string e)
  | Ok o ->
    Alcotest.(check int) "nothing re-executed" 0 o.C.executed;
    Alcotest.(check int) "all cells resumed" 3 o.C.resumed_cells;
    Alcotest.(check bool) "results marked resumed" true
      (List.for_all (fun r -> r.C.resumed) o.C.results);
    Alcotest.(check int) "campaign.resumed counter" 3
      (counter rep "campaign.resumed");
    Alcotest.(check int) "campaign.cells counter untouched" 0
      (counter rep "campaign.cells");
    (* the failed verdict (error text included) survived the round trip *)
    (match verdict_of o 1 with
    | C.Failed { error; _ } ->
      Alcotest.(check bool) "error persisted" true
        (contains "injected crash" error)
    | v -> Alcotest.failf "persisted verdict: %s" (C.verdict_to_string v))

let test_status_reads_back () =
  let dir = tmpdir "status" in
  (match C.run ~dir (mixed_matrix ()) with
  | Error e -> Alcotest.fail (C.error_to_string e)
  | Ok _ -> ());
  match C.status ~dir with
  | Error e -> Alcotest.fail (C.error_to_string e)
  | Ok o ->
    Alcotest.(check int) "status executes nothing" 0 o.C.executed;
    Alcotest.(check int) "three recorded cells" 3 (List.length o.C.results);
    Alcotest.(check bool) "faults round-tripped" true
      (List.map (fun f -> Fault.to_string f) o.C.matrix.C.faults
      = List.map Fault.to_string [ dl_fault; crash_fault; swap_fault ])

let test_corrupt_manifest_recovery () =
  let dir = tmpdir "corrupt" in
  (match C.run ~dir (mixed_matrix ()) with
  | Error e -> Alcotest.fail (C.error_to_string e)
  | Ok _ -> ());
  let manifest = Filename.concat dir "campaign.manifest" in
  let oc = open_out_gen [ Open_append ] 0o644 manifest in
  output_string oc "garbage";
  close_out oc;
  (* trailing garbage invalidates the CRC, but every record line is still
     readable: status salvages all three cells instead of refusing *)
  (match C.status ~dir with
  | Error e -> Alcotest.failf "status gave up on a salvageable manifest: %s"
                 (C.error_to_string e)
  | Ok o -> Alcotest.(check int) "status salvages the cells" 3
              (List.length o.C.results));
  (* run recovers: warns, resumes the readable records, rewrites clean *)
  match C.run ~dir (mixed_matrix ()) with
  | Error e -> Alcotest.fail (C.error_to_string e)
  | Ok o ->
    Alcotest.(check int) "recovered every cell" 3 (List.length o.C.results);
    Alcotest.(check int) "readable records resumed" 3 o.C.resumed_cells;
    (match verdict_of o 0 with
    | C.Hung _ -> ()
    | v -> Alcotest.failf "re-adopted verdict: %s" (C.verdict_to_string v));
    (* the damaged file was replaced by a clean checksummed manifest *)
    match C.status ~dir with
    | Error e -> Alcotest.fail (C.error_to_string e)
    | Ok o -> Alcotest.(check int) "manifest rewritten clean" 3
                (List.length o.C.results)

(* one flipped byte in the middle of the manifest must cost at most the
   record it hit, never the campaign *)
let test_flipped_byte_manifest_salvage () =
  let dir = tmpdir "flip" in
  (match C.run ~dir (mixed_matrix ()) with
  | Error e -> Alcotest.fail (C.error_to_string e)
  | Ok _ -> ());
  let manifest = Filename.concat dir "campaign.manifest" in
  let text =
    let ic = open_in_bin manifest in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  (* flip one byte of the second cell record's tag: that line (and the
     now-stale CRC footer) become unreadable, every other line survives *)
  let index_from sub i =
    let n = String.length sub in
    let rec go i =
      if i + n > String.length text then Alcotest.failf "no %S in manifest" sub
      else if String.sub text i n = sub then i
      else go (i + 1)
    in
    go i
  in
  let first = index_from "\ncell\t" 0 in
  let second = index_from "\ncell\t" (first + 1) in
  let flipped = Bytes.of_string text in
  Bytes.set flipped (second + 1) (Char.chr (Char.code 'c' lxor 1));
  let oc = open_out_bin manifest in
  output_bytes oc flipped;
  close_out oc;
  Telemetry.enable ();
  let second_run = C.run ~dir (mixed_matrix ()) in
  let rep = Telemetry.report () in
  Telemetry.disable ();
  (match second_run with
  | Error e -> Alcotest.fail (C.error_to_string e)
  | Ok o ->
    Alcotest.(check int) "every cell accounted for" 3 (List.length o.C.results);
    Alcotest.(check int) "intact records resumed" 2 o.C.resumed_cells;
    Alcotest.(check int) "only the lost cell reran" 1 o.C.executed;
    Alcotest.(check bool) "unreadable lines counted" true
      (counter rep "campaign.manifest_salvaged" > 0);
    (* the rerun cell (index 1, the raising one) reproduced its verdict *)
    match verdict_of o 1 with
    | C.Failed { error; _ } ->
      Alcotest.(check bool) "rerun reproduced the crash" true
        (contains "injected crash" error)
    | v -> Alcotest.failf "rerun verdict: %s" (C.verdict_to_string v));
  (* the rewrite healed the manifest: a third run salvages nothing *)
  Telemetry.enable ();
  let third = C.run ~dir (mixed_matrix ()) in
  let rep = Telemetry.report () in
  Telemetry.disable ();
  match third with
  | Error e -> Alcotest.fail (C.error_to_string e)
  | Ok o ->
    Alcotest.(check int) "all resumed after heal" 3 o.C.resumed_cells;
    Alcotest.(check int) "no salvage after heal" 0
      (counter rep "campaign.manifest_salvaged")

(* resuming a manifest that names a kind this process never registered
   must be a typed refusal, not the Not_found crash it used to be *)
let test_unknown_kind_refused () =
  let dir = tmpdir "unkind" in
  (match C.run ~dir (mixed_matrix ()) with
  | Error e -> Alcotest.fail (C.error_to_string e)
  | Ok _ -> ());
  (* rewrite the manifest's kind to something unregistered, keeping the
     CRC footer valid so the file reads as intact *)
  let manifest = Filename.concat dir "campaign.manifest" in
  let text =
    let ic = open_in_bin manifest in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let crc_len = String.length "crc 00000000\n" in
  let body = String.sub text 0 (String.length text - crc_len) in
  let body =
    String.split_on_char '\n' body
    |> List.map (fun l -> if l = "kind selftest" then "kind custom" else l)
    |> String.concat "\n"
  in
  let oc = open_out_bin manifest in
  output_string oc
    (body ^ Printf.sprintf "crc %08x\n" (Difftrace_util.Crc32.string body));
  close_out oc;
  (* status reconstructs the matrix without executing: still readable *)
  match C.status ~dir with
  | Error e -> Alcotest.failf "status refused a readable manifest: %s"
                 (C.error_to_string e)
  | Ok o ->
    Alcotest.(check string) "kind read back" "custom" o.C.matrix.C.kind;
    Alcotest.(check int) "cells still readable" 3 (List.length o.C.results);
    (* resuming that matrix must refuse with the typed error *)
    match C.run ~dir o.C.matrix with
    | Error (C.Unknown_kind k as e) ->
      Alcotest.(check string) "names the kind" "custom" k;
      Alcotest.(check bool) "lists registered kinds" true
        (contains "selftest" (C.error_to_string e))
    | Error e -> Alcotest.failf "wrong error: %s" (C.error_to_string e)
    | Ok _ -> Alcotest.fail "ran a campaign with an unregistered kind"

let test_mismatched_matrix_rejected () =
  let dir = tmpdir "mismatch" in
  (match C.run ~dir (mixed_matrix ()) with
  | Error e -> Alcotest.fail (C.error_to_string e)
  | Ok _ -> ());
  let other =
    C.matrix ~kind:"selftest" ~np:8 ~faults:[ dl_fault; crash_fault; swap_fault ]
      ~seeds:[ 1 ] ()
  in
  match C.run ~dir other with
  | Error (C.Wrong_campaign _ as e) ->
    Alcotest.(check bool) "names the mismatch" true
      (contains "np" (C.error_to_string e))
  | Error e -> Alcotest.failf "wrong error: %s" (C.error_to_string e)
  | Ok _ -> Alcotest.fail "accepted a different campaign in the same dir"

(* ------------------------------------------------------------------ *)
(* reporting                                                           *)
(* ------------------------------------------------------------------ *)

let test_render_ranks_failures_first () =
  let dir = tmpdir "render" in
  match C.run ~dir (mixed_matrix ()) with
  | Error e -> Alcotest.fail (C.error_to_string e)
  | Ok o ->
    let s = C.render o in
    Alcotest.(check bool) "header" true (contains "campaign selftest" s);
    Alcotest.(check bool) "failure detail" true (contains "injected crash" s);
    (* the FAILED row precedes every analyzable row *)
    let idx sub =
      let n = String.length sub in
      let rec go i =
        if i + n > String.length s then Alcotest.failf "missing %S" sub
        else if String.sub s i n = sub then i
        else go (i + 1)
      in
      go 0
    in
    Alcotest.(check bool) "failed row ranked first" true
      (idx "FAILED" < idx "HUNG" && idx "HUNG" < idx "ok")

let test_top_cell_diffnlr () =
  let dir = tmpdir "diffnlr" in
  match C.run ~dir (mixed_matrix ()) with
  | Error e -> Alcotest.fail (C.error_to_string e)
  | Ok o -> (
    match C.top_cell_diffnlr ~dir o with
    | Error e -> Alcotest.fail e
    | Ok s ->
      Alcotest.(check bool) "renders a diffNLR" true (contains "diffNLR" s))

let () =
  Alcotest.run "campaign"
    [ ( "matrix",
        [ Alcotest.test_case "validation" `Quick test_matrix_validation;
          Alcotest.test_case "cells" `Quick test_matrix_cells;
          Alcotest.test_case "registered kinds" `Quick test_registered_kinds ] );
      ( "isolation",
        [ Alcotest.test_case "deadlock/crash/clean" `Quick
            test_run_isolates_failures;
          Alcotest.test_case "step-budget timeout" `Quick
            test_run_timeout_verdict ] );
      ( "resume",
        [ Alcotest.test_case "second run skips" `Quick test_run_resumes;
          Alcotest.test_case "status" `Quick test_status_reads_back;
          Alcotest.test_case "corrupt manifest" `Quick
            test_corrupt_manifest_recovery;
          Alcotest.test_case "flipped-byte salvage" `Quick
            test_flipped_byte_manifest_salvage;
          Alcotest.test_case "unknown kind refused" `Quick
            test_unknown_kind_refused;
          Alcotest.test_case "mismatch rejected" `Quick
            test_mismatched_matrix_rejected ] );
      ( "report",
        [ Alcotest.test_case "ranking" `Quick test_render_ranks_failures_first;
          Alcotest.test_case "top-cell diffNLR" `Quick test_top_cell_diffnlr ] ) ]
