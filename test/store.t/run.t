A persistent analysis store: the first (cold) compare populates it,
the second (warm) compare answers from it — zero fresh NLR
summarizations, every previously seen JSM row mirrored from disk —
and the report is byte-identical either way.

  $ difftrace compare -w ilcs --np 6 -f 'swapBug(rank=3,after=5)' --store st > cold.txt
  $ cat cold.txt
  configuration: 11.mpiall.K10 / sing.noFreq / ward
  B-score: 1.000
  top processes: 
  top threads:   
  suspicious traces:
  === diffNLR(0.2) ===
      normal       | faulty      
      -------------+-------------
    event db: trace 0.2: streams identical (70 events)

  $ difftrace compare -w ilcs --np 6 -f 'swapBug(rank=3,after=5)' --store st --profile > warm.txt

The warm run's counters: both matrices served from the store, all 60
rows mirrored, and no nlr.summaries / jsm.jaccard_evals / store.misses
rows at all — nothing was recomputed.

  $ grep -E 'nlr\.|store\.|jsm\.' warm.txt
  | jsm.cells                |  1800 |
  | jsm.rows_reused          |    60 |
  | store.hits               |     2 |

Stripped of the profile tables, the warm report matches the cold one
bit for bit — and a storeless run too:

  $ grep -v '^[+|]' warm.txt > warm_report.txt
  $ cmp cold.txt warm_report.txt
  $ difftrace compare -w ilcs --np 6 -f 'swapBug(rank=3,after=5)' > nostore.txt
  $ cmp cold.txt nostore.txt

The store subcommands inspect and maintain the directory:

  $ difftrace store stats -d st | grep -v 'file bytes'
  summaries   2
  matrices    1
  signatures  0
  symbols     8
  loop bodies 3
  $ difftrace store verify -d st
  store: ok (14 records)
  summaries   2
  matrices    1
  signatures  0
  symbols     8
  loop bodies 3
  $ difftrace store gc -d st --keep-summaries 1
  evicted 1 summaries, 0 matrices, 0 signatures
  $ difftrace store stats -d st | grep summaries
  summaries   1

Damage is salvaged, never fatal: verify flags the truncation (exit 1),
a compare over the damaged store still produces the same report and
rewrites a clean file.

  $ head -c -2 st/analysis.store > st/t && mv st/t st/analysis.store
  $ difftrace store verify -d st
  store: damaged — truncated record at byte 210 (12 records salvageable)
  summaries   1
  matrices    0
  signatures  0
  symbols     8
  loop bodies 3
  [1]
  $ difftrace compare -w ilcs --np 6 -f 'swapBug(rank=3,after=5)' --store st > salvaged.txt
  $ cmp cold.txt salvaged.txt
  $ difftrace store verify -d st
  store: ok (14 records)
  summaries   2
  matrices    1
  signatures  0
  symbols     8
  loop bodies 3

--no-store forces a cold, storeless run even when --store is given:

  $ difftrace compare -w ilcs --np 6 -f 'swapBug(rank=3,after=5)' --store st --no-store --profile | grep 'store\.'
  [1]
