An 8-cell selftest matrix (2 faults x 4 seeds): the noop-skipping cells
complete like the references, the spin cells burn their step budget and
hang. The variational report merges every archived run -- 4 fault-free
references plus all 8 cells -- into one variational NLR and names the
injected fault axis as the minimal discriminating condition.

  $ difftrace campaign run -d camp -w selftest --np 4 --seeds 4 \
  >   -f 'skipFunction(rank=0,func=noop)' \
  >   -f 'skipFunction(rank=0,func=spin)' | grep -E '^cell|^campaign:'
  cell 0 [skipFunction(rank=0,func=noop)@s1]: ok (B-score 1.000)
  cell 1 [skipFunction(rank=0,func=noop)@s2]: ok (B-score 1.000)
  cell 2 [skipFunction(rank=0,func=noop)@s3]: ok (B-score 1.000)
  cell 3 [skipFunction(rank=0,func=noop)@s4]: ok (B-score 1.000)
  cell 4 [skipFunction(rank=0,func=spin)@s1]: HUNG(4 blocked, timed out) (B-score 0.000)
  cell 5 [skipFunction(rank=0,func=spin)@s2]: HUNG(4 blocked, timed out) (B-score 0.204)
  cell 6 [skipFunction(rank=0,func=spin)@s3]: HUNG(4 blocked, timed out) (B-score 0.000)
  cell 7 [skipFunction(rank=0,func=spin)@s4]: HUNG(4 blocked, timed out) (B-score 0.000)
  campaign: 8 cells executed, 0 resumed

  $ difftrace campaign report -d camp --variational
  campaign selftest: np=4, 2 faults x 4 seeds = 8 cells
  recorded 8/8 cells: 4 completed, 4 hung, 0 failed (8 resumed)
  +------+--------------------------------+------+---------+---------+-------------+----------+
  | Cell | Fault                          | Seed | Verdict | B-score | Top suspect | Salvaged |
  +------+--------------------------------+------+---------+---------+-------------+----------+
  | 4    | skipFunction(rank=0,func=spin) | 1    | HUNG    | 0.000   | 2 (0.667)   |          |
  | 6    | skipFunction(rank=0,func=spin) | 3    | HUNG    | 0.000   | 2 (0.667)   |          |
  | 7    | skipFunction(rank=0,func=spin) | 4    | HUNG    | 0.000   | 2 (0.667)   |          |
  | 5    | skipFunction(rank=0,func=spin) | 2    | HUNG    | 0.204   | 2 (0.733)   |          |
  | 0    | skipFunction(rank=0,func=noop) | 1    | ok      | 1.000   | -           |          |
  | 1    | skipFunction(rank=0,func=noop) | 2    | ok      | 1.000   | -           |          |
  | 2    | skipFunction(rank=0,func=noop) | 3    | ok      | 1.000   | -           |          |
  | 3    | skipFunction(rank=0,func=noop) | 4    | ok      | 1.000   | -           |          |
  +------+--------------------------------+------+---------+---------+-------------+----------+
  === variational NLR(0): 12 runs ===
    r0 ref@s1 [fault=none seed=1]
    r1 ref@s2 [fault=none seed=2]
    r2 ref@s3 [fault=none seed=3]
    r3 ref@s4 [fault=none seed=4]
    r4 skipFunction(rank=0,func=noop)@s1 [fault=skipFunction(rank=0,func=noop) seed=1]
    r5 skipFunction(rank=0,func=noop)@s2 [fault=skipFunction(rank=0,func=noop) seed=2]
    r6 skipFunction(rank=0,func=noop)@s3 [fault=skipFunction(rank=0,func=noop) seed=3]
    r7 skipFunction(rank=0,func=noop)@s4 [fault=skipFunction(rank=0,func=noop) seed=4]
    r8 skipFunction(rank=0,func=spin)@s1 [fault=skipFunction(rank=0,func=spin) seed=1] BAD
    r9 skipFunction(rank=0,func=spin)@s2 [fault=skipFunction(rank=0,func=spin) seed=2] BAD
    r10 skipFunction(rank=0,func=spin)@s3 [fault=skipFunction(rank=0,func=spin) seed=3] BAD
    r11 skipFunction(rank=0,func=spin)@s4 [fault=skipFunction(rank=0,func=spin) seed=4] BAD
    7 columns in 4 regions
      = MPI_Init
      = MPI_Comm_rank
      = MPI_Comm_size
    [present: fault∈{none,skipFunction(rank=0,func=noop)}]
      ~ L0^2
      ~ MPI_Finalize
    [present: fault=skipFunction(rank=0,func=spin)]
      ~ MPI_Send
    [present: fault=skipFunction(rank=0,func=spin) ∧ seed∈{1,3,4}]
      ~ MPI_Recv
  suspect regions:
    1. `L0^2 .. MPI_Finalize` absent exactly where fault=skipFunction(rank=0,func=spin)
    2. `MPI_Send` present exactly where fault=skipFunction(rank=0,func=spin)
    3. `MPI_Recv` present mostly where fault=skipFunction(rank=0,func=spin) ∧ seed∈{1,3,4}
  minimal discriminating condition: fault=skipFunction(rank=0,func=spin)
    event db: trace 0: first divergence at event 13 (normal: ret MPI_Recv, faulty: end of trace); drill down: difftrace query 'diverge on 0'

The same alignment straight from the archives, two runs at a time: a
2-run vdiff is exactly the classical pairwise diffNLR, plus the
presence conditions.

  $ difftrace vdiff --salvage \
  >   -r ref=camp/normal_s1 \
  >   -r spin=camp/cell_4 --axes 'spin:fault=spin' --bad spin
  === variational NLR(0): 2 runs ===
    r0 ref
    r1 spin [fault=spin] BAD
    7 columns in 3 regions
      = MPI_Init
      = MPI_Comm_rank
      = MPI_Comm_size
    [present: fault=-]
      ~ L0^2
      ~ MPI_Finalize
    [present: fault=spin]
      ~ MPI_Send
      ~ MPI_Recv
  suspect regions:
    1. `L0^2 .. MPI_Finalize` absent exactly where fault=spin
    2. `MPI_Send .. MPI_Recv` present exactly where fault=spin
  minimal discriminating condition: fault=spin
    event db: trace 0: first divergence at event 13 (normal: ret MPI_Recv, faulty: end of trace); drill down: difftrace query 'diverge on 0'

A warm rerun replays the merged alignment out of the campaign store
without re-aligning: the vdiff record was persisted above.

  $ difftrace campaign report -d camp --variational --profile 2>/dev/null \
  >   | grep -E 'vdiff_(hits|misses)'
  | store.vdiff_hits         |     1 |

  $ difftrace store stats -d camp/store | grep -E '^(summaries|vdiffs)'
  summaries   10
  vdiffs      1
