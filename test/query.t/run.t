The indexed event database and its drill-down query language: count and
list calls, window them between markers, group call sites under a loop
or caller, inventory threads/functions/loops, and find the first
raw-event divergence of two runs — straight from v2 archives.

Record two heat-stencil runs, one clean and one with the silent halo
protocol swap on rank 3:

  $ difftrace record -w heat --out normal > /dev/null
  $ difftrace record -w heat -f 'swapBug(rank=3,after=2)' --out faulty > /dev/null

Inventories first — threads, then the busiest functions:

  $ difftrace query 'threads' --archive normal | head -7
  +--------+--------+-------+-------+-----------+
  | Thread | Events | Calls | Loops | Truncated |
  +--------+--------+-------+-------+-----------+
  | 0      |    916 |   458 |     0 | no        |
  | 0.1    |    180 |    90 |     1 | no        |
  | 0.2    |    180 |    90 |     1 | no        |
  | 0.3    |    180 |    90 |     1 | no        |
  $ difftrace query 'funcs limit 5' --archive normal
  functions: 19 (showing 5)
  +---------------------+-------+---------+
  | Function            | Calls | Threads |
  +---------------------+-------+---------+
  | GOMP_critical_end   |  1440 |      32 |
  | GOMP_critical_start |  1440 |      32 |
  | JacobiKernel        |   960 |      32 |
  | MPI_Irecv           |   420 |       8 |
  | MPI_Send            |   420 |       8 |
  +---------------------+-------+---------+

Counting and listing calls, on one thread, in a position window:

  $ difftrace query 'count MPI_Send' --archive normal
  calls of MPI_Send: 420
  $ difftrace query 'list MPI_Send on 3 in 0..200 limit 3' --archive normal
  calls of MPI_Send on 3 in 0..200: 12 (showing 3)
  +-----+--------+-------+--------------+
  | Pos | Thread | Depth | Caller       |
  +-----+--------+-------+--------------+
  |  14 | 3      |     2 | ExchangeHalo |
  |  16 | 3      |     2 | ExchangeHalo |
  |  50 | 3      |     2 | ExchangeHalo |
  +-----+--------+-------+--------------+

Markers window a query between the k-th calls of two functions — here
the first halo exchange of rank 3:

  $ difftrace query 'count MPI_Send on 3 between ExchangeHalo#1 and ExchangeHalo#2' --archive normal
  calls of MPI_Send on 3 between ExchangeHalo and ExchangeHalo#2: 2

The database recognizes NLR loops and places every instance at event
positions; 'sites' groups a function's calls by caller:

  $ difftrace query 'loops on 1' --archive normal
  +------+--------+-----------+------------+-------+-------------+
  | Loop | Thread | Instances | Iterations | First | Body        |
  +------+--------+-----------+------------+-------+-------------+
  | L1   | 1      |        30 |         60 |    10 | [MPI_Irecv] |
  | L2   | 1      |        30 |         60 |    14 | [MPI_Send]  |
  | L3   | 1      |        30 |         60 |    18 | [MPI_Wait]  |
  +------+--------+-----------+------------+-------+-------------+
  $ difftrace query 'sites MPI_Send under ExchangeHalo on 1' --archive normal
  call sites of MPI_Send under ExchangeHalo on 1: 1 site(s)
  +--------+--------------+-------+-------+
  | Thread | Caller       | Calls | First |
  +--------+--------------+-------+-------+
  | 1      | ExchangeHalo |    60 |    14 |
  +--------+--------------+-------+-------+

Two-run queries take --against; 'diverge' is the first raw-event
disagreement per thread — the swap flips the Irecv/Send order at
event 82:

  $ difftrace query 'diverge on 3' --archive normal --against faulty
  first divergence: thread 3 at event 82 (1 threads compared)
  +--------+-------+-----------+----------+
  | Thread | Event | Normal    | Faulty   |
  +--------+-------+-----------+----------+
  | 3      |    82 | MPI_Irecv | MPI_Send |
  +--------+-------+-----------+----------+

The index persists next to the store, namespaced by the content digest
of its source traces. The first (cold) query builds and saves it:

  $ difftrace query 'count MPI_Send' --archive normal --store st --profile | grep eventdb
  | eventdb.builds        |     1 |
  | eventdb.saved         |     1 |
  $ ls st/eventdb | wc -l | tr -d ' '
  1

A warm rerun performs zero index rebuilds — only eventdb.loads moves,
eventdb.builds does not appear at all:

  $ difftrace query 'count MPI_Send' --archive normal --store st --profile | grep eventdb
  | eventdb.loads         |     1 |

Bad queries are answered, not crashed on, and exit nonzero:

  $ difftrace query 'bogus stuff' --archive normal
  difftrace: query: unknown query "bogus"; queries: count F | list F | sites F | loops | diverge | threads | funcs (see MANUAL.md)
  [1]
  $ difftrace query 'count MPI_Send on 99' --archive normal
  difftrace: unknown trace label "99" (known labels: 0, 0.1, 0.2, 0.3, 1, 1.1, 1.2, 1.3, 2, 2.1, 2.2, 2.3, 3, 3.1, 3.2, 3.3, 4, 4.1, 4.2, 4.3, 5, 5.1, 5.2, 5.3, 6, 6.1, 6.2, 6.3, 7, 7.1, 7.2, 7.3)
  [1]
  $ difftrace query 'sites MPI_Send under L99' --archive normal
  difftrace: query: unknown loop L99 (the database has 4 loop bodies; see 'loops')
  [1]
  $ difftrace query 'diverge' --archive normal
  difftrace: query: this query compares two runs; provide a second source (--against)
  [1]

Adversarial inputs are typed parse errors too — integers wider than
the machine word (in loop labels, limits and intervals) and embedded
NULs never escape as exceptions:

  $ difftrace query 'sites MPI_Send under L99999999999999999999999999999999' --archive normal
  difftrace: query: loop label "L99999999999999999999999999999999" is out of range
  [1]
  $ difftrace query 'list MPI_Send limit 99999999999999999999999999999999' --archive normal
  difftrace: query: limit: expected a number, got "99999999999999999999999999999999"
  [1]
  $ difftrace query 'count MPI_Send in 0..99999999999999999999999999999999' --archive normal
  difftrace: query: bad interval "0..99999999999999999999999999999999" (want LO..HI, 0 <= LO <= HI)
  [1]
