open Difftrace_simulator
open Runtime
module Trace = Difftrace_trace.Trace
module Trace_set = Difftrace_trace.Trace_set

let qtest ?(count = 50) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let clean outcome =
  Alcotest.(check (list (pair int int))) "no deadlock" [] outcome.deadlocked;
  Alcotest.(check bool) "no timeout" false outcome.timed_out

let last_event ts ~pid ~tid =
  let tr = Trace_set.find_exn ts ~pid ~tid in
  Difftrace_trace.Event.to_string (Trace_set.symtab ts)
    tr.Trace.events.(Array.length tr.Trace.events - 1)

(* ------------------------------------------------------------------ *)
(* point-to-point                                                      *)
(* ------------------------------------------------------------------ *)

let test_ping_pong () =
  let outcome =
    run ~np:2 (fun env ->
        Api.mpi_init env;
        let rank = Api.comm_rank env in
        if rank = 0 then begin
          Api.send env ~dst:1 [| 42 |];
          let r = Api.recv env ~src:1 () in
          Alcotest.(check (array int)) "pong payload" [| 43 |] r
        end
        else begin
          let r = Api.recv env ~src:0 () in
          Alcotest.(check (array int)) "ping payload" [| 42 |] r;
          Api.send env ~dst:0 [| 43 |]
        end;
        Api.mpi_finalize env)
  in
  clean outcome

let test_eager_send_completes_without_receiver () =
  (* below the eager limit a send buffers; the receive happens later *)
  let outcome =
    run ~np:2 ~eager_limit:8 (fun env ->
        if pid env = 0 then begin
          Api.send env ~dst:1 [| 1; 2; 3 |];
          Api.send env ~dst:1 [| 4 |]
        end
        else begin
          (* receive in order *)
          let a = Api.recv env ~src:0 () in
          let b = Api.recv env ~src:0 () in
          Alcotest.(check (array int)) "first" [| 1; 2; 3 |] a;
          Alcotest.(check (array int)) "second (non-overtaking)" [| 4 |] b
        end)
  in
  clean outcome

let test_rendezvous_blocks_until_recv () =
  (* above the eager limit, head-to-head sends deadlock; under
     all-images capture the trace ends inside the MPI library *)
  let outcome =
    run ~np:2 ~eager_limit:0 ~level:Difftrace_parlot.Tracer.All_images (fun env ->
        let peer = 1 - pid env in
        Api.send env ~dst:peer [| 9 |];
        ignore (Api.recv env ~src:peer ()))
  in
  Alcotest.(check (list (pair int int))) "both blocked" [ (0, 0); (1, 0) ]
    outcome.deadlocked;
  Alcotest.(check string) "trace ends inside MPI library" "poll"
    (last_event outcome.traces ~pid:0 ~tid:0)

let test_rendezvous_trace_truncation_main_image () =
  let outcome =
    run ~np:2 ~eager_limit:0 ~level:Difftrace_parlot.Tracer.Main_image (fun env ->
        let peer = 1 - pid env in
        Api.send env ~dst:peer [| 9 |];
        ignore (Api.recv env ~src:peer ()))
  in
  (* without library frames, the last main-image event is the MPI_Send
     call with no return — the paper's truncated-trace signature *)
  Alcotest.(check string) "last event is the hanging call" "MPI_Send"
    (last_event outcome.traces ~pid:0 ~tid:0);
  let tr = Trace_set.find_exn outcome.traces ~pid:0 ~tid:0 in
  Alcotest.(check bool) "trace marked truncated" true tr.Trace.truncated

let test_tag_matching () =
  let outcome =
    run ~np:2 (fun env ->
        if pid env = 0 then begin
          Api.send env ~dst:1 ~tag:7 [| 7 |];
          Api.send env ~dst:1 ~tag:8 [| 8 |]
        end
        else begin
          (* receive in reverse tag order: matching is by (src, tag) *)
          let b = Api.recv env ~src:0 ~tag:8 () in
          let a = Api.recv env ~src:0 ~tag:7 () in
          Alcotest.(check (array int)) "tag 8" [| 8 |] b;
          Alcotest.(check (array int)) "tag 7" [| 7 |] a
        end)
  in
  clean outcome

let test_recv_wrong_source_deadlocks () =
  let outcome =
    run ~np:2 (fun env ->
        if pid env = 0 then Api.send env ~dst:1 [| 1 |]
        else ignore (Api.recv env ~src:1 ~tag:0 ()) (* self, never sent *))
  in
  Alcotest.(check (list (pair int int))) "receiver hung" [ (1, 0) ]
    outcome.deadlocked

let test_irecv_before_send () =
  let outcome =
    run ~np:2 (fun env ->
        if pid env = 0 then begin
          let r = Api.irecv env ~src:1 () in
          Api.send env ~dst:1 [| 5 |];
          let v = Api.wait env r in
          Alcotest.(check (array int)) "posted recv filled" [| 6 |] v
        end
        else begin
          let v = Api.recv env ~src:0 () in
          Api.send env ~dst:0 [| v.(0) + 1 |]
        end)
  in
  clean outcome

let test_isend_eager_completes_immediately () =
  let outcome =
    run ~np:2 ~eager_limit:8 (fun env ->
        if pid env = 0 then begin
          let r = Api.isend env ~dst:1 [| 1 |] in
          (* completes without the receiver having posted anything *)
          ignore (Api.wait env r)
        end
        else begin
          Api.yield env;
          ignore (Api.recv env ~src:0 ())
        end)
  in
  clean outcome

let test_isend_rendezvous_completes_on_consumption () =
  let consumed_before_wait = ref false in
  let outcome =
    run ~np:2 ~eager_limit:0 ~seed:2 (fun env ->
        if pid env = 0 then begin
          let r = Api.isend env ~dst:1 [| 1; 2; 3 |] in
          (* call returns immediately even above the eager limit *)
          Api.yield env;
          ignore (Api.wait env r);
          Alcotest.(check bool) "receiver consumed before wait returned" true
            !consumed_before_wait
        end
        else begin
          let v = Api.recv env ~src:0 () in
          consumed_before_wait := true;
          Alcotest.(check (array int)) "payload" [| 1; 2; 3 |] v
        end)
  in
  clean outcome

let test_nonblocking_fixes_head_to_head () =
  (* the swapBug cure: posting the receives first makes the symmetric
     exchange deadlock-free even in rendezvous mode *)
  let outcome =
    run ~np:2 ~eager_limit:0 (fun env ->
        let peer = 1 - pid env in
        let r = Api.irecv env ~src:peer () in
        Api.send env ~dst:peer [| pid env |];
        let v = Api.wait env r in
        Alcotest.(check (array int)) "exchanged" [| peer |] v)
  in
  clean outcome

let test_irecv_posting_order () =
  let outcome =
    run ~np:2 (fun env ->
        if pid env = 0 then begin
          let r1 = Api.irecv env ~src:1 () in
          let r2 = Api.irecv env ~src:1 () in
          let v2 = Api.wait env r2 in
          let v1 = Api.wait env r1 in
          Alcotest.(check (array int)) "first posted gets first message" [| 10 |] v1;
          Alcotest.(check (array int)) "second posted gets second" [| 20 |] v2
        end
        else begin
          Api.send env ~dst:0 [| 10 |];
          Api.send env ~dst:0 [| 20 |]
        end)
  in
  clean outcome

let test_waitall () =
  let outcome =
    run ~np:2 (fun env ->
        if pid env = 0 then begin
          let rs = List.init 3 (fun _ -> Api.irecv env ~src:1 ()) in
          let vs = Api.waitall env rs in
          Alcotest.(check (list (array int))) "all payloads in posting order"
            [ [| 0 |]; [| 1 |]; [| 2 |] ] vs
        end
        else
          for i = 0 to 2 do
            Api.send env ~dst:0 [| i |]
          done)
  in
  clean outcome

let test_wait_unmatched_hangs () =
  let outcome =
    run ~np:2 (fun env ->
        if pid env = 0 then begin
          let r = Api.irecv env ~src:1 () in
          ignore (Api.wait env r)
        end)
  in
  Alcotest.(check (list (pair int int))) "waiter hung" [ (0, 0) ] outcome.deadlocked

let test_wait_twice_rejected () =
  Alcotest.check_raises "double wait"
    (Invalid_argument "Runtime: MPI_Wait on an unknown or finished request")
    (fun () ->
      ignore
        (run ~np:2 (fun env ->
             if pid env = 0 then begin
               let r = Api.isend env ~dst:1 [| 1 |] in
               ignore (Api.wait env r);
               ignore (Api.wait env r)
             end
             else ignore (Api.recv env ~src:0 ()))))

let test_sendrecv_symmetric_exchange () =
  (* the idiomatic cure for the swapBug: symmetric Sendrecv is
     deadlock-free even in pure rendezvous mode *)
  let outcome =
    run ~np:2 ~eager_limit:0 (fun env ->
        let peer = 1 - pid env in
        let v = Api.sendrecv env ~dst:peer ~src:peer [| pid env; 7 |] in
        Alcotest.(check (array int)) "swapped payloads" [| peer; 7 |] v)
  in
  clean outcome

let test_sendrecv_ring_shift () =
  let outcome =
    run ~np:5 (fun env ->
        let next = (pid env + 1) mod 5 and prev = (pid env + 4) mod 5 in
        let v = Api.sendrecv env ~dst:next ~src:prev [| pid env |] in
        Alcotest.(check (array int)) "ring shift" [| prev |] v)
  in
  clean outcome

(* ------------------------------------------------------------------ *)
(* collectives                                                         *)
(* ------------------------------------------------------------------ *)

let test_allreduce_ops () =
  let results = Array.make 4 [||] in
  let outcome =
    run ~np:4 (fun env ->
        let r = pid env in
        let sum = Api.allreduce env ~op:Op_sum [| r; 1 |] in
        let mn = Api.allreduce env ~op:Op_min [| r |] in
        let mx = Api.allreduce env ~op:Op_max [| r |] in
        let pr = Api.allreduce env ~op:Op_prod [| r + 1 |] in
        results.(r) <- Array.concat [ sum; mn; mx; pr ])
  in
  clean outcome;
  Array.iteri
    (fun r res ->
      Alcotest.(check (array int))
        (Printf.sprintf "rank %d sees sum/min/max/prod" r)
        [| 6; 4; 0; 3; 24 |] res)
    results

let test_reduce_root_only () =
  let outcome =
    run ~np:3 (fun env ->
        let r = Api.reduce env ~root:1 ~op:Op_sum [| 10 |] in
        if pid env = 1 then Alcotest.(check (array int)) "root gets sum" [| 30 |] r
        else Alcotest.(check (array int)) "non-root gets nothing" [||] r)
  in
  clean outcome

let test_bcast () =
  let outcome =
    run ~np:4 (fun env ->
        let data = if pid env = 2 then [| 99; 77 |] else [| 0 |] in
        let r = Api.bcast env ~root:2 data in
        Alcotest.(check (array int)) "everyone gets root's data" [| 99; 77 |] r)
  in
  clean outcome

let test_barrier_orders () =
  let hits = ref [] in
  let outcome =
    run ~np:3 ~seed:5 (fun env ->
        hits := `Before (pid env) :: !hits;
        Api.barrier env;
        hits := `After (pid env) :: !hits)
  in
  clean outcome;
  let events = List.rev !hits in
  (* every Before precedes every After *)
  let rec check seen_after = function
    | [] -> true
    | `After _ :: rest -> check true rest
    | `Before _ :: rest -> (not seen_after) && check seen_after rest
  in
  Alcotest.(check bool) "barrier separates phases" true (check false events)

let test_collective_count_mismatch_deadlocks () =
  let outcome =
    run ~np:3 (fun env ->
        let count = if pid env = 1 then 2 else 1 in
        ignore (Api.allreduce env ~count ~op:Op_sum [| 1 |]))
  in
  Alcotest.(check int) "all three hung" 3 (List.length outcome.deadlocked);
  Alcotest.(check bool) "mismatch diagnosed" true
    (outcome.collective_mismatch <> None)

let test_collective_kind_mismatch_deadlocks () =
  let outcome =
    run ~np:2 (fun env ->
        if pid env = 0 then Api.barrier env
        else ignore (Api.allreduce env ~op:Op_sum [| 1 |]))
  in
  Alcotest.(check int) "both hung" 2 (List.length outcome.deadlocked);
  Alcotest.(check bool) "mismatch diagnosed" true
    (outcome.collective_mismatch <> None)

let test_wrong_op_applies_rank0s () =
  (* rank 0 passes MAX while everyone else passes MIN: rank 0 wins *)
  let seen = Array.make 3 (-1) in
  let outcome =
    run ~np:3 (fun env ->
        let op = if pid env = 0 then Op_max else Op_min in
        let r = Api.allreduce env ~op [| pid env + 10 |] in
        seen.(pid env) <- r.(0))
  in
  clean outcome;
  Array.iteri
    (fun i v -> Alcotest.(check int) (Printf.sprintf "rank %d got MAX" i) 12 v)
    seen

(* ------------------------------------------------------------------ *)
(* OpenMP                                                              *)
(* ------------------------------------------------------------------ *)

let test_fork_join_runs_all_threads () =
  let ran = Array.make 4 false in
  let outcome =
    run ~np:1 (fun env ->
        Api.parallel env ~num_threads:4 (fun tenv -> ran.(tid tenv) <- true))
  in
  clean outcome;
  Alcotest.(check (array bool)) "all team members ran" [| true; true; true; true |] ran

let test_fork_produces_thread_traces () =
  let outcome =
    run ~np:2 (fun env ->
        Api.parallel env ~num_threads:3 (fun tenv ->
            Api.call tenv "work" (fun () -> ())))
  in
  clean outcome;
  Alcotest.(check int) "2 ranks x 3 threads" 6 (Trace_set.cardinal outcome.traces)

let test_join_waits_for_children () =
  let order = ref [] in
  let outcome =
    run ~np:1 ~seed:13 (fun env ->
        Api.parallel env ~num_threads:3 (fun tenv ->
            if tid tenv > 0 then begin
              Api.yield tenv;
              Api.yield tenv;
              order := `Child :: !order
            end);
        order := `Joined :: !order)
  in
  clean outcome;
  Alcotest.(check bool) "join after all children" true
    (List.rev !order = [ `Child; `Child; `Joined ])

let test_critical_mutual_exclusion () =
  let inside = ref 0 and max_inside = ref 0 and total = ref 0 in
  let outcome =
    run ~np:1 ~seed:3 (fun env ->
        Api.parallel env ~num_threads:4 (fun tenv ->
            for _ = 1 to 5 do
              Api.critical tenv (fun () ->
                  incr inside;
                  if !inside > !max_inside then max_inside := !inside;
                  incr total;
                  decr inside);
              Api.yield tenv
            done))
  in
  clean outcome;
  Alcotest.(check int) "all sections ran" 20 !total;
  Alcotest.(check int) "never two inside" 1 !max_inside

let test_unlock_not_held_rejected () =
  Alcotest.check_raises "unlock unheld"
    (Invalid_argument "Runtime: unlock of a lock not held") (fun () ->
      ignore
        (run ~np:1 (fun _env -> Effect.perform (E_unlock "nope"))))

let test_discipline_checker () =
  let outcome =
    run ~np:1 (fun env ->
        let c = Shm.cell ~protected_:true "shared" 0 in
        Api.parallel env ~num_threads:3 (fun tenv ->
            if tid tenv = 1 then Shm.write tenv c 1 (* unprotected! *)
            else if tid tenv = 2 then Api.critical tenv (fun () -> Shm.write tenv c 2)))
  in
  match outcome.races with
  | [ r ] ->
    Alcotest.(check string) "cell named" "shared" r.cell_name;
    Alcotest.(check (list int)) "offending thread" [ 1 ] r.tids
  | l -> Alcotest.fail (Printf.sprintf "expected 1 violation, got %d" (List.length l))

let test_discipline_clean_when_locked () =
  let outcome =
    run ~np:1 (fun env ->
        let c = Shm.cell ~protected_:true "shared" 0 in
        Api.parallel env ~num_threads:3 (fun tenv ->
            Api.critical tenv (fun () -> Shm.write tenv c (tid tenv));
            ignore (Shm.read tenv c) (* unlocked reads are fine *)))
  in
  Alcotest.(check int) "no violations" 0 (List.length outcome.races)

(* ------------------------------------------------------------------ *)
(* scheduler properties                                                *)
(* ------------------------------------------------------------------ *)

let trace_fingerprint outcome =
  Array.to_list
    (Array.map
       (fun tr ->
         ( Trace.label tr,
           Trace.to_strings (Trace_set.symtab outcome.traces) tr ))
       (Trace_set.traces outcome.traces))

let busy_program env =
  Api.mpi_init env;
  let rank = Api.comm_rank env in
  Api.parallel env ~num_threads:3 (fun tenv ->
      if tid tenv > 0 then
        for _ = 1 to 3 do
          Api.critical tenv (fun () -> ());
          Api.yield tenv
        done);
  ignore (Api.allreduce env ~op:Op_sum [| rank |]);
  if rank = 0 then Api.send env ~dst:1 [| 1 |]
  else if rank = 1 then ignore (Api.recv env ~src:0 ());
  Api.mpi_finalize env

let test_determinism_same_seed () =
  let a = run ~np:2 ~seed:99 busy_program in
  let b = run ~np:2 ~seed:99 busy_program in
  Alcotest.(check bool) "same seed, same traces" true
    (trace_fingerprint a = trace_fingerprint b)

let prop_determinism =
  qtest "any seed: run is reproducible" ~count:20
    QCheck2.Gen.(int_range 0 10000)
    (fun seed ->
      let a = run ~np:2 ~seed busy_program in
      let b = run ~np:2 ~seed busy_program in
      trace_fingerprint a = trace_fingerprint b && a.deadlocked = [])

let test_livelock_hits_step_budget () =
  let outcome =
    run ~np:1 ~max_steps:500 (fun env ->
        while true do
          Api.yield env
        done)
  in
  Alcotest.(check bool) "timed out" true outcome.timed_out;
  Alcotest.(check (list (pair int int))) "spinner reported hung" [ (0, 0) ]
    outcome.deadlocked

let test_empty_program () =
  let outcome = run ~np:3 (fun _ -> ()) in
  clean outcome;
  Alcotest.(check int) "one trace per rank" 3 (Trace_set.cardinal outcome.traces)

let test_nested_parallel_rejected () =
  Alcotest.check_raises "nested regions"
    (Invalid_argument "Runtime: nested parallel regions are not supported")
    (fun () ->
      ignore
        (run ~np:1 (fun env ->
             Api.parallel env ~num_threads:2 (fun tenv ->
                 if tid tenv = 0 then
                   Api.parallel tenv ~num_threads:2 (fun _ -> ())))))

let test_program_exception_propagates () =
  Alcotest.check_raises "user exception surfaces" (Failure "boom") (fun () ->
      ignore (run ~np:2 (fun env -> if pid env = 1 then failwith "boom")))

let test_np_validation () =
  Alcotest.check_raises "np 0" (Invalid_argument "Runtime.run: np must be positive")
    (fun () -> ignore (run ~np:0 (fun _ -> ())))

let test_mpi_test_polling () =
  (* a polling progress loop: rank 0 overlaps "compute" with an
     incoming message, counting poll attempts *)
  let polls = ref 0 in
  let outcome =
    run ~np:2 ~seed:11 (fun env ->
        if pid env = 0 then begin
          let r = Api.irecv env ~src:1 () in
          let got = ref None in
          while !got = None do
            (match Api.test env r with
            | Some v -> got := Some v
            | None ->
              incr polls;
              Api.call env "compute" (fun () -> ());
              Api.yield env)
          done;
          Alcotest.(check (array int)) "payload" [| 9 |] (Option.get !got)
        end
        else begin
          Api.yield env;
          Api.yield env;
          Api.send env ~dst:0 [| 9 |]
        end)
  in
  clean outcome;
  Alcotest.(check bool) "polled at least once" true (!polls >= 1)

let test_mpi_test_consumed_request () =
  Alcotest.check_raises "test after completion"
    (Invalid_argument "Runtime: MPI_Test on an unknown or finished request")
    (fun () ->
      ignore
        (run ~np:2 (fun env ->
             if pid env = 0 then begin
               let r = Api.irecv env ~src:1 () in
               ignore (Api.wait env r);
               ignore (Api.test env r)
             end
             else Api.send env ~dst:0 [| 1 |])))

let test_jitter_validation () =
  Alcotest.check_raises "jitter >= 1 rejected"
    (Invalid_argument "Runtime.run: jitter must be in [0, 1)") (fun () ->
      ignore (run ~np:1 ~jitter:1.0 (fun _ -> ())))

let test_jitter_deterministic_and_effective () =
  let module Ilcs = Difftrace_workloads.Ilcs in
  let fp outcome = trace_fingerprint outcome in
  let run_with jitter =
    fst (Ilcs.run ~np:4 ~workers:2 ~seed:5 ~jitter ~fault:Fault.No_fault ())
  in
  (* deterministic for a fixed (seed, jitter) *)
  Alcotest.(check bool) "reproducible" true (fp (run_with 0.5) = fp (run_with 0.5));
  (* jitter = 0 is the unbiased scheduler (compat default) *)
  let plain = fst (Ilcs.run ~np:4 ~workers:2 ~seed:5 ~fault:Fault.No_fault ()) in
  Alcotest.(check bool) "zero jitter = default" true (fp (run_with 0.0) = fp plain);
  (* a progress-dependent workload actually feels the skew *)
  Alcotest.(check bool) "jitter changes the schedule" true
    (fp (run_with 0.8) <> fp plain)

(* ------------------------------------------------------------------ *)
(* schedule exploration                                                *)
(* ------------------------------------------------------------------ *)

let test_explore_deterministic_program () =
  (* a schedule-independent program: one outcome across all seeds *)
  let s =
    Explore.run ~np:2 ~seeds:[ 1; 2; 3; 4; 5 ] (fun env ->
        if pid env = 0 then Api.send env ~dst:1 [| 1 |]
        else ignore (Api.recv env ~src:0 ()))
  in
  Alcotest.(check int) "one outcome" 1 s.Explore.distinct_outcomes;
  Alcotest.(check (list int)) "no deadlocks" [] s.Explore.deadlock_seeds

let test_explore_schedule_dependent_traces () =
  (* workers race to update an unprotected counter: trace contents
     (loop counts) vary across schedules *)
  let program env =
    let c = Shm.cell "counter" 0 in
    Api.parallel env ~num_threads:3 (fun tenv ->
        for _ = 1 to 3 do
          let v = Shm.read tenv c in
          Api.yield tenv;
          Shm.write tenv c (v + 1);
          Api.call tenv (Printf.sprintf "saw_%d" (Shm.read tenv c)) (fun () -> ())
        done)
  in
  let s = Explore.run ~np:1 ~seeds:(List.init 8 (fun i -> i)) program in
  Alcotest.(check bool) "schedules produce multiple outcomes" true
    (s.Explore.distinct_outcomes > 1)

let test_explore_finds_rendezvous_deadlock () =
  (* head-to-head rendezvous sends deadlock under EVERY schedule *)
  let s =
    Explore.run ~np:2 ~eager_limit:0 ~seeds:[ 1; 2; 3 ] (fun env ->
        let peer = 1 - pid env in
        Api.send env ~dst:peer [| 1 |];
        ignore (Api.recv env ~src:peer ()))
  in
  Alcotest.(check (list int)) "all seeds deadlock" [ 1; 2; 3 ]
    s.Explore.deadlock_seeds;
  Alcotest.(check bool) "renders" true (String.length (Explore.render s) > 80)

let test_explore_empty_seeds () =
  Alcotest.check_raises "no seeds" (Invalid_argument "Explore.run: no seeds")
    (fun () -> ignore (Explore.run ~seeds:[] (fun _ -> ())))

let contains sub s =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

let test_explore_summarize_excludes_timeouts () =
  let v ~seed ~fp ~t =
    { Explore.seed; deadlocked = false; timed_out = t; races = 0;
      fingerprint = fp }
  in
  let s =
    Explore.summarize
      [ v ~seed:1 ~fp:10 ~t:false;
        v ~seed:2 ~fp:20 ~t:true;
        v ~seed:3 ~fp:30 ~t:true;
        v ~seed:4 ~fp:10 ~t:false ]
  in
  (* the timed-out fingerprints are budget artifacts: seeds 2 and 3
     must not inflate the outcome count *)
  Alcotest.(check int) "timeouts excluded from outcomes" 1 s.Explore.distinct_outcomes;
  Alcotest.(check (list int)) "timeout seeds" [ 2; 3 ] s.Explore.timeout_seeds;
  Alcotest.(check bool) "render reports the exclusion" true
    (contains "timed-out seeds" (Explore.render s));
  let clean = Explore.summarize [ v ~seed:1 ~fp:10 ~t:false ] in
  Alcotest.(check (list int)) "no timeouts" [] clean.Explore.timeout_seeds;
  Alcotest.(check bool) "no timeout line when none" false
    (contains "timed-out" (Explore.render clean))

let test_explore_timeout_run () =
  (* every seed exhausts the budget inside the barrier loop *)
  let s =
    Explore.run ~np:2 ~max_steps:30 ~seeds:[ 1; 2 ] (fun env ->
        while true do
          Api.barrier env
        done)
  in
  Alcotest.(check (list int)) "all seeds time out" [ 1; 2 ]
    s.Explore.timeout_seeds;
  Alcotest.(check int) "no countable outcomes" 0 s.Explore.distinct_outcomes

let test_explore_on_verdict_stream () =
  let seen = ref [] in
  let s =
    Explore.run ~np:2 ~seeds:[ 1; 2; 3 ]
      ~on_verdict:(fun v -> seen := v.Explore.seed :: !seen)
      (fun env ->
        if pid env = 0 then Api.send env ~dst:1 [| 1 |]
        else ignore (Api.recv env ~src:0 ()))
  in
  Alcotest.(check (list int)) "streamed in seed order" [ 1; 2; 3 ]
    (List.rev !seen);
  Alcotest.(check int) "one verdict per seed" 3 (List.length s.Explore.verdicts)

let () =
  Alcotest.run "simulator"
    [ ( "point-to-point",
        [ Alcotest.test_case "ping-pong" `Quick test_ping_pong;
          Alcotest.test_case "eager buffering + FIFO" `Quick
            test_eager_send_completes_without_receiver;
          Alcotest.test_case "rendezvous head-to-head deadlock" `Quick
            test_rendezvous_blocks_until_recv;
          Alcotest.test_case "truncation signature" `Quick
            test_rendezvous_trace_truncation_main_image;
          Alcotest.test_case "tag matching" `Quick test_tag_matching;
          Alcotest.test_case "wrong source hangs" `Quick
            test_recv_wrong_source_deadlocks ] );
      ( "nonblocking",
        [ Alcotest.test_case "irecv before send" `Quick test_irecv_before_send;
          Alcotest.test_case "isend eager immediate" `Quick
            test_isend_eager_completes_immediately;
          Alcotest.test_case "isend rendezvous completion" `Quick
            test_isend_rendezvous_completes_on_consumption;
          Alcotest.test_case "irecv cures head-to-head" `Quick
            test_nonblocking_fixes_head_to_head;
          Alcotest.test_case "posting order" `Quick test_irecv_posting_order;
          Alcotest.test_case "waitall" `Quick test_waitall;
          Alcotest.test_case "unmatched wait hangs" `Quick test_wait_unmatched_hangs;
          Alcotest.test_case "double wait rejected" `Quick test_wait_twice_rejected;
          Alcotest.test_case "sendrecv symmetric" `Quick
            test_sendrecv_symmetric_exchange;
          Alcotest.test_case "sendrecv ring" `Quick test_sendrecv_ring_shift ] );
      ( "collectives",
        [ Alcotest.test_case "allreduce ops" `Quick test_allreduce_ops;
          Alcotest.test_case "reduce root-only" `Quick test_reduce_root_only;
          Alcotest.test_case "bcast" `Quick test_bcast;
          Alcotest.test_case "barrier separates" `Quick test_barrier_orders;
          Alcotest.test_case "count mismatch deadlocks" `Quick
            test_collective_count_mismatch_deadlocks;
          Alcotest.test_case "kind mismatch deadlocks" `Quick
            test_collective_kind_mismatch_deadlocks;
          Alcotest.test_case "wrong op: rank 0 wins" `Quick
            test_wrong_op_applies_rank0s ] );
      ( "openmp",
        [ Alcotest.test_case "fork/join coverage" `Quick test_fork_join_runs_all_threads;
          Alcotest.test_case "per-thread traces" `Quick test_fork_produces_thread_traces;
          Alcotest.test_case "join waits" `Quick test_join_waits_for_children;
          Alcotest.test_case "critical mutual exclusion" `Quick
            test_critical_mutual_exclusion;
          Alcotest.test_case "unlock unheld rejected" `Quick
            test_unlock_not_held_rejected;
          Alcotest.test_case "discipline checker flags" `Quick test_discipline_checker;
          Alcotest.test_case "discipline checker clean" `Quick
            test_discipline_clean_when_locked ] );
      ( "mpi_test",
        [ Alcotest.test_case "polling loop" `Quick test_mpi_test_polling;
          Alcotest.test_case "consumed request" `Quick
            test_mpi_test_consumed_request ] );
      ( "jitter",
        [ Alcotest.test_case "validation" `Quick test_jitter_validation;
          Alcotest.test_case "deterministic and effective" `Quick
            test_jitter_deterministic_and_effective ] );
      ( "explore",
        [ Alcotest.test_case "deterministic program" `Quick
            test_explore_deterministic_program;
          Alcotest.test_case "schedule-dependent traces" `Quick
            test_explore_schedule_dependent_traces;
          Alcotest.test_case "finds rendezvous deadlock" `Quick
            test_explore_finds_rendezvous_deadlock;
          Alcotest.test_case "empty seeds" `Quick test_explore_empty_seeds;
          Alcotest.test_case "summarize excludes timeouts" `Quick
            test_explore_summarize_excludes_timeouts;
          Alcotest.test_case "timed-out run" `Quick test_explore_timeout_run;
          Alcotest.test_case "on_verdict streaming" `Quick
            test_explore_on_verdict_stream ] );
      ( "scheduler",
        [ Alcotest.test_case "determinism (fixed seed)" `Quick test_determinism_same_seed;
          prop_determinism;
          Alcotest.test_case "livelock -> step budget" `Quick
            test_livelock_hits_step_budget;
          Alcotest.test_case "empty program" `Quick test_empty_program;
          Alcotest.test_case "nested parallel rejected" `Quick
            test_nested_parallel_rejected;
          Alcotest.test_case "exceptions propagate" `Quick
            test_program_exception_propagates;
          Alcotest.test_case "np validation" `Quick test_np_validation ] ) ]
