open Difftrace
module R = Difftrace_simulator.Runtime
module Fault = Difftrace_simulator.Fault
module Heat = Difftrace_workloads.Heat
module Cct = Difftrace_stacktree.Cct
module Trace_set = Difftrace_trace.Trace_set
module F = Difftrace_filter.Filter
module A = Difftrace_fca.Attributes

let spec g f = { A.granularity = g; freq_mode = f }

(* ------------------------------------------------------------------ *)
(* Heat workload                                                       *)
(* ------------------------------------------------------------------ *)

let test_heat_normal () =
  let outcome, r = Heat.run ~max_iters:50 ~fault:Fault.No_fault () in
  Alcotest.(check (list (pair int int))) "clean" [] outcome.R.deadlocked;
  Alcotest.(check int) "full field gathered" (8 * 24) (Array.length r.Heat.field);
  Alcotest.(check bool) "ran some iterations" true (r.Heat.iterations > 3);
  (* diffusion keeps the field non-negative and bounded by the source *)
  Array.iter
    (fun v ->
      if v < 0 || v > 1_000_000 then Alcotest.fail "field out of bounds")
    r.Heat.field;
  (* heat spreads away from the hot spot: neighbours of the peak warm *)
  let mid = Array.length r.Heat.field / 2 in
  Alcotest.(check bool) "heat diffused" true (r.Heat.field.(mid - 1) > 0)

let test_heat_residual_decreases () =
  let _, r5 = Heat.run ~max_iters:5 ~fault:Fault.No_fault () in
  let _, r25 = Heat.run ~max_iters:25 ~fault:Fault.No_fault () in
  Alcotest.(check bool) "residual shrinks with more iterations" true
    (r25.Heat.final_residual < r5.Heat.final_residual)

let test_heat_deterministic () =
  let _, a = Heat.run ~seed:9 ~fault:Fault.No_fault () in
  let _, b = Heat.run ~seed:9 ~fault:Fault.No_fault () in
  Alcotest.(check (array int)) "same field" a.Heat.field b.Heat.field;
  Alcotest.(check int) "same iterations" a.Heat.iterations b.Heat.iterations

let test_heat_skip_fault_hangs () =
  let outcome, _ =
    Heat.run ~fault:(Fault.Skip_function { rank = 2; func = "ExchangeHalo" }) ()
  in
  Alcotest.(check bool) "neighbours hang" true (outcome.R.deadlocked <> [])

let test_heat_wrong_size_hangs_all () =
  let outcome, _ = Heat.run ~fault:(Fault.Wrong_collective_size { rank = 1 }) () in
  Alcotest.(check int) "all masters hung" 8 (List.length outcome.R.deadlocked);
  Alcotest.(check bool) "diagnosed" true (outcome.R.collective_mismatch <> None)

let test_heat_nocritical_flagged () =
  let outcome, _ = Heat.run ~fault:(Fault.No_critical { rank = 5; thread = 2 }) () in
  match outcome.R.races with
  | [ race ] ->
    Alcotest.(check int) "process" 5 race.R.race_pid;
    Alcotest.(check string) "cell" "residual" race.R.cell_name;
    Alcotest.(check (list int)) "thread" [ 2 ] race.R.tids
  | l -> Alcotest.fail (Printf.sprintf "expected 1 violation, got %d" (List.length l))

let test_heat_swap_visible_in_diffnlr () =
  (* the protocol flip is a silent bug: the run completes but the trace
     shape changes from Irecv/Wait to blocking Recv *)
  let normal, _ = Heat.run ~fault:Fault.No_fault () in
  let faulty, _ =
    Heat.run ~fault:(Fault.Swap_send_recv { rank = 3; after_iter = 2 }) ()
  in
  Alcotest.(check (list (pair int int))) "completes" [] faulty.R.deadlocked;
  let c =
    Pipeline.compare_runs
      (Config.make ~attrs:(spec A.Single A.Actual) ())
      ~normal:normal.R.traces ~faulty:faulty.R.traces
  in
  let top, score = c.Pipeline.suspects.(0) in
  Alcotest.(check string) "rank 3 flagged" "3.0" top;
  Alcotest.(check bool) "positive score" true (score > 0.1)

(* ------------------------------------------------------------------ *)
(* CCT on heat                                                         *)
(* ------------------------------------------------------------------ *)

let test_cct_structure () =
  let outcome, _ = Heat.run ~np:2 ~workers:2 ~max_iters:4 ~fault:Fault.No_fault () in
  let cct = Cct.coalesce outcome.R.traces in
  (* masters root at main; worker threads root at their region frames *)
  (match List.find_opt (fun n -> n.Cct.frame = "main") cct.Cct.roots with
  | Some root ->
    Alcotest.(check int) "main called once per master" 2 root.Cct.calls;
    Alcotest.(check int) "two masters contribute" 2 (List.length root.Cct.by)
  | None -> Alcotest.fail "main root missing");
  (* the kernel context exists with full path *)
  match Cct.find cct [ "main"; "JacobiSweep"; "GOMP_parallel_start" ] with
  | Some _ -> ()
  | None -> (
    (* the kernel is under the master's JacobiSweep; workers' frames
       are their own roots? no — workers trace from the region body *)
    match Cct.find cct [ "main"; "JacobiSweep" ] with
    | Some n ->
      Alcotest.(check bool) "sweep called every iteration" true (n.Cct.calls >= 4)
    | None -> Alcotest.fail "JacobiSweep context missing")

let test_cct_total_calls_counts_events () =
  let outcome, _ = Heat.run ~np:2 ~workers:2 ~max_iters:3 ~fault:Fault.No_fault () in
  let cct = Cct.coalesce outcome.R.traces in
  (* every Call event lands in exactly one context *)
  let calls =
    Array.fold_left
      (fun acc tr ->
        acc + Array.length (Difftrace_trace.Trace.call_ids tr))
      0
      (Trace_set.traces outcome.R.traces)
  in
  Alcotest.(check int) "total calls preserved" calls (Cct.total_calls cct)

let test_cct_diff_localizes_skip () =
  let normal, _ = Heat.run ~np:4 ~max_iters:5 ~fault:Fault.No_fault () in
  let faulty, _ =
    Heat.run ~np:4 ~max_iters:5
      ~fault:(Fault.Skip_function { rank = 2; func = "ExchangeHalo" })
      ()
  in
  let dn = Cct.coalesce normal.R.traces and df = Cct.coalesce faulty.R.traces in
  let deltas = Cct.diff ~normal:dn ~faulty:df in
  Alcotest.(check bool) "changes found" true (deltas <> []);
  (* the ExchangeHalo context must be among the drops *)
  let halo_drop =
    List.exists
      (fun d ->
        List.mem "ExchangeHalo" d.Cct.path
        && d.Cct.faulty_calls < d.Cct.normal_calls)
      deltas
  in
  Alcotest.(check bool) "ExchangeHalo context dropped calls" true halo_drop;
  Alcotest.(check bool) "renders" true
    (String.length (Cct.render_diff deltas) > 50)

let test_cct_diff_identical_empty () =
  let a, _ = Heat.run ~np:2 ~max_iters:3 ~fault:Fault.No_fault () in
  let b, _ = Heat.run ~np:2 ~max_iters:3 ~fault:Fault.No_fault () in
  let da = Cct.coalesce a.R.traces and db = Cct.coalesce b.R.traces in
  Alcotest.(check int) "no deltas between identical runs" 0
    (List.length (Cct.diff ~normal:da ~faulty:db))

let test_cct_to_dot () =
  let outcome, _ = Heat.run ~np:2 ~workers:2 ~max_iters:2 ~fault:Fault.No_fault () in
  let dot = Cct.to_dot (Cct.coalesce outcome.R.traces) in
  let contains sub =
    let n = String.length sub and h = String.length dot in
    let rec go i = i + n <= h && (String.sub dot i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "digraph" true (contains "digraph cct");
  Alcotest.(check bool) "main node" true (contains "main");
  Alcotest.(check bool) "edges" true (contains "->")

let test_cct_render () =
  let outcome, _ = Heat.run ~np:2 ~workers:2 ~max_iters:2 ~fault:Fault.No_fault () in
  let cct = Cct.coalesce outcome.R.traces in
  let shallow = Cct.render ~max_depth:2 cct in
  let deep = Cct.render cct in
  Alcotest.(check bool) "depth limit shrinks output" true
    (String.length shallow < String.length deep)

(* ------------------------------------------------------------------ *)
(* Autotune                                                            *)
(* ------------------------------------------------------------------ *)

let test_autotune_finds_discriminating_config () =
  let normal, _ = Heat.run ~fault:Fault.No_fault () in
  let faulty, _ =
    Heat.run ~fault:(Fault.Swap_send_recv { rank = 3; after_iter = 2 }) ()
  in
  let r =
    match Autotune.search ~normal:normal.R.traces ~faulty:faulty.R.traces () with
    | Ok r -> r
    | Error e -> Alcotest.fail (Session.error_to_string e)
  in
  Alcotest.(check int) "2 filters x 6 attrs" 12 r.Autotune.evaluated;
  Alcotest.(check bool) "best config separates the runs" true
    (r.Autotune.best.Autotune.bscore < 1.0);
  Alcotest.(check (option string)) "and points at rank 3" (Some "3.0")
    r.Autotune.best.Autotune.top_suspect;
  (* ranked list is sorted by the (bscore, -concentration) objective *)
  let rec sorted = function
    | a :: (b :: _ as rest) ->
      (a.Autotune.bscore < b.Autotune.bscore
      || (a.Autotune.bscore = b.Autotune.bscore
         && a.Autotune.concentration >= b.Autotune.concentration))
      && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "ranked order" true (sorted r.Autotune.ranked);
  Alcotest.(check bool) "renders" true (String.length (Autotune.render r) > 100)

let test_autotune_identity_runs () =
  let normal, _ = Heat.run ~max_iters:5 ~fault:Fault.No_fault () in
  let r =
    match Autotune.search ~normal:normal.R.traces ~faulty:normal.R.traces () with
    | Ok r -> r
    | Error e -> Alcotest.fail (Session.error_to_string e)
  in
  Alcotest.(check (float 1e-9)) "identical runs: best bscore 1" 1.0
    r.Autotune.best.Autotune.bscore;
  Alcotest.(check (option string)) "no suspect" None
    r.Autotune.best.Autotune.top_suspect

let test_autotune_empty_axis () =
  let normal, _ = Heat.run ~np:2 ~max_iters:2 ~fault:Fault.No_fault () in
  (* an empty sweep is request data, not a bug: a typed error, not a raise *)
  (match
     Autotune.search ~ks:[] ~normal:normal.R.traces ~faulty:normal.R.traces ()
   with
  | Ok _ -> Alcotest.fail "empty ks: expected Error"
  | Error e ->
    Alcotest.(check string) "empty ks"
      "autotune: empty parameter axis (K): nothing to sweep"
      (Session.error_to_string e));
  match
    Autotune.search ~ks:[] ~linkages:[] ~normal:normal.R.traces
      ~faulty:normal.R.traces ()
  with
  | Ok _ -> Alcotest.fail "two empty axes: expected Error"
  | Error e ->
    Alcotest.(check string) "names every empty axis"
      "autotune: empty parameter axis (K, linkages): nothing to sweep"
      (Session.error_to_string e)

let () =
  Alcotest.run "heat+cct+autotune"
    [ ( "heat",
        [ Alcotest.test_case "normal run" `Quick test_heat_normal;
          Alcotest.test_case "residual decreases" `Quick test_heat_residual_decreases;
          Alcotest.test_case "deterministic" `Quick test_heat_deterministic;
          Alcotest.test_case "skip fault hangs" `Quick test_heat_skip_fault_hangs;
          Alcotest.test_case "wrong size hangs" `Quick test_heat_wrong_size_hangs_all;
          Alcotest.test_case "noCritical flagged" `Quick test_heat_nocritical_flagged;
          Alcotest.test_case "swap visible to diffNLR" `Quick
            test_heat_swap_visible_in_diffnlr ] );
      ( "cct",
        [ Alcotest.test_case "structure" `Quick test_cct_structure;
          Alcotest.test_case "counts preserved" `Quick test_cct_total_calls_counts_events;
          Alcotest.test_case "diff localizes skip" `Quick test_cct_diff_localizes_skip;
          Alcotest.test_case "identical -> empty diff" `Quick test_cct_diff_identical_empty;
          Alcotest.test_case "render depth" `Quick test_cct_render;
          Alcotest.test_case "to_dot" `Quick test_cct_to_dot ] );
      ( "autotune",
        [ Alcotest.test_case "finds discriminating config" `Quick
            test_autotune_finds_discriminating_config;
          Alcotest.test_case "identity runs" `Quick test_autotune_identity_runs;
          Alcotest.test_case "empty axis" `Quick test_autotune_empty_axis ] ) ]
