Ingestion frontends, end to end: the registry listing, single-file
ingestion, the flagship compare-two-foreign-files path for both
shipped frontends, the DFG view, the conformance checker, and every
CLI error path.

Registry listing:

  $ difftrace frontend list
  +---------+----------------------------------------------------------------------------------------------------------------------------------+
  | Name    | Description                                                                                                                      |
  +---------+----------------------------------------------------------------------------------------------------------------------------------+
  | cilog   | CI/build logs: log-aware tokenization (<ts>/<hex>/<path>/<n>), step headers as call boundaries, 'name |' interleaving as threads |
  | syscall | strace captures: pid -> thread, syscall -> function, unfinished/resumed nesting, directly-follows-graph view                     |
  +---------+----------------------------------------------------------------------------------------------------------------------------------+

Ingest one CI log (the digest is the canonical trace-set digest —
equal digests mean the pipeline cannot tell two sets apart):

  $ difftrace frontend ingest corpus/cilog/build_pass.log -F cilog
  ingested corpus/cilog/build_pass.log via cilog: 1 traces, 28 events
  digest: 51a036c3107b14f3f0bd9af078168fe3

ANSI colors and interleaved "name |" streams are invisible to the
tokenizer — three streams become three threads:

  $ difftrace frontend ingest corpus/cilog/ansi_interleaved.log -F cilog
  ingested corpus/cilog/ansi_interleaved.log via cilog: 3 traces, 26 events
  digest: 2a5616a2530c58ddc94cb95fee0f07a0

Compare two CI logs directly — the CiDiff-style workflow: step headers
are call boundaries, volatile tokens are normalized away, and the
diffNLR pins the divergence to the Build step:

  $ difftrace compare corpus/cilog/build_pass.log corpus/cilog/build_fail.log --frontend cilog
  configuration: 11.all.K10 / sing.noFreq / ward
  B-score: 1.000
  top processes: 
  top threads:   
  suspicious traces:
  === diffNLR(0) ===
      normal                                                             | faulty                                                            
      -------------------------------------------------------------------+-------------------------------------------------------------------
    = step:Checkout sources                                              | step:Checkout sources                                             
    = <ts> Syncing repository: <path>                                    | <ts> Syncing repository: <path>                                   
    = <ts> Checking out <hex>                                            | <ts> Checking out <hex>                                           
    = step:Install dependencies                                          | step:Install dependencies                                         
    = <ts> resolving <n> packages                                        | <ts> resolving <n> packages                                       
    = <ts> fetched <n> packages in <n>                                   | <ts> fetched <n> packages in <n>                                  
    = step:Build                                                         | step:Build                                                        
    = L0^2                                                               | L0^2                                                              
      -------------------------------------------------------------------+-------------------------------------------------------------------
    ~ <ts> linking <path>                                                | <ts> <path> error: implicit declaration of function 'wdg_checksum'
    ~ <ts> build finished in <n>                                         | <ts> make: *** <path> Error <n>                                   
    < step:Test                                                          |                                                                   
    < <ts> running <n> tests                                             |                                                                   
    < <ts> <n> passed, <n> failed                                        |                                                                   
      -------------------------------------------------------------------+-------------------------------------------------------------------
    event db: trace 0: first divergence at event 17 (normal: <ts> linking <path>, faulty: <ts> <path> error: implicit declaration of function 'wdg_checksum'); drill down: difftrace query 'list <ts> <path> error: implicit declaration of function 'wdg_checksum' on 0 in 17..27'

Compare two strace captures — pids align as threads whatever raw ids
the kernel handed out, and the ranking pays attention to both:

  $ difftrace compare corpus/syscall/normal.strace corpus/syscall/faulty.strace --frontend syscall
  configuration: 11.all.K10 / sing.noFreq / ward
  B-score: 1.000
  top processes: 0, 1
  top threads:   
  suspicious traces:
    1      0.185
    0      0.185
  === diffNLR(1) ===
      normal          | faulty         
      ----------------+----------------
    = process         | process        
    = set_robust_list | set_robust_list
    = futex           | futex          
      ----------------+----------------
    < write           |                
    < exit_group      |                
      ----------------+----------------
    = exited          | exited         
      ----------------+----------------
    event db: trace 1: first divergence at event 5 (normal: write, faulty: exited); drill down: difftrace query 'list exited on 1 in 5..15'

The directly-follows graph of a capture:

  $ difftrace frontend dfg corpus/syscall/normal.strace -F syscall
  directly-follows graph: 15 edges
  +-----------------+-----------------+-------+
  | From            | To              | Count |
  +-----------------+-----------------+-------+
  | brk             | openat          | 1     |
  | clone           | write           | 1     |
  | close           | clone           | 1     |
  | execve          | brk             | 1     |
  | exit_group      | exited          | 2     |
  | futex           | wait4           | 1     |
  | futex           | write           | 1     |
  | openat          | read            | 1     |
  | process         | execve          | 1     |
  | process         | set_robust_list | 1     |
  | read            | close           | 1     |
  | set_robust_list | futex           | 1     |
  | wait4           | exit_group      | 1     |
  | write           | exit_group      | 1     |
  | write           | futex           | 1     |
  +-----------------+-----------------+-------+

Conformance checks — a pending <unfinished ...> at EOF is a truncated
thread, not an error; a foreign format is a typed reject, never a
crash:

  $ difftrace frontend check corpus/syscall/unfinished.strace -F syscall
  ok: 2 traces, 10 events, digest 523be24c07c376c16f257675e945ec77
  $ difftrace frontend check corpus/cilog/build_pass.log -F syscall
  ok (typed reject): frontend syscall: line 1: unrecognized strace line

Error paths:

  $ difftrace compare a.log --frontend cilog
  difftrace: compare --frontend needs exactly two FILE arguments (normal faulty)
  [2]
  $ difftrace compare a.log b.log --frontend nosuch
  difftrace: unknown frontend "nosuch" (known: cilog, syscall)
  [1]
  $ difftrace compare corpus/cilog/build_pass.log corpus/cilog/build_fail.log
  difftrace: positional FILE arguments require --frontend NAME
  [2]
  $ difftrace frontend ingest /nonexistent.log -F cilog
  difftrace: frontend cilog: cannot read /nonexistent.log: /nonexistent.log: No such file or directory
  [1]
