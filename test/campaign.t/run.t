A campaign over a deadlocking fault, a crashing fault and a clean fault:
the failures become per-cell verdicts, the rest of the matrix still runs.

  $ difftrace campaign run -d camp -w selftest --np 4 --seeds 2 \
  >   -f 'dlBug(rank=1,after=0)' \
  >   -f 'skipFunction(rank=0,func=raise)' \
  >   -f 'swapBug(rank=1,after=0)'
  cell 0 [dlBug(rank=1,after=0)@s1]: HUNG(4 blocked) (B-score 0.204)
  cell 1 [dlBug(rank=1,after=0)@s2]: HUNG(4 blocked) (B-score 0.204)
  cell 2 [skipFunction(rank=0,func=raise)@s1]: FAILED: cell run: Failure("selftest: injected crash")
  cell 3 [skipFunction(rank=0,func=raise)@s2]: FAILED: cell run: Failure("selftest: injected crash")
  cell 4 [swapBug(rank=1,after=0)@s1]: ok (B-score 0.204)
  cell 5 [swapBug(rank=1,after=0)@s2]: ok (B-score 0.204)
  campaign: 6 cells executed, 0 resumed
  campaign selftest: np=4, 3 faults x 2 seeds = 6 cells
  recorded 6/6 cells: 2 completed, 2 hung, 2 failed (0 resumed)
  +------+---------------------------------+------+---------+---------+-------------+----------+
  | Cell | Fault                           | Seed | Verdict | B-score | Top suspect | Salvaged |
  +------+---------------------------------+------+---------+---------+-------------+----------+
  | 2    | skipFunction(rank=0,func=raise) | 1    | FAILED  | -       | -           |          |
  | 3    | skipFunction(rank=0,func=raise) | 2    | FAILED  | -       | -           |          |
  | 0    | dlBug(rank=1,after=0)           | 1    | HUNG    | 0.204   | 0 (0.967)   |          |
  | 1    | dlBug(rank=1,after=0)           | 2    | HUNG    | 0.204   | 0 (0.967)   |          |
  | 4    | swapBug(rank=1,after=0)         | 1    | ok      | 0.204   | 1 (1.000)   |          |
  | 5    | swapBug(rank=1,after=0)         | 2    | ok      | 0.204   | 1 (1.000)   |          |
  +------+---------------------------------+------+---------+---------+-------------+----------+
  failures:
    cell 2 [skipFunction(rank=0,func=raise)@s1]: cell run: Failure("selftest: injected crash")
    cell 3 [skipFunction(rank=0,func=raise)@s2]: cell run: Failure("selftest: injected crash")

Re-running over the same state directory resumes from the manifest: no
cell re-executes (the crashing cells do not even re-crash), and the
campaign.resumed counter records the skips.

  $ difftrace campaign run -d camp -w selftest --np 4 --seeds 2 \
  >   -f 'dlBug(rank=1,after=0)' \
  >   -f 'skipFunction(rank=0,func=raise)' \
  >   -f 'swapBug(rank=1,after=0)' \
  >   --profile | grep -E 'executed|campaign\.resumed'
  campaign: 0 cells executed, 6 resumed
  | campaign.resumed |     6 |

The state directory survives inspection without execution:

  $ difftrace campaign status -d camp | head -2
  campaign selftest: np=4, 3 faults x 2 seeds = 6 cells
  recorded 6/6 cells: 2 completed, 2 hung, 2 failed (6 resumed)

The triage report drills into the best-ranked analyzable cell:

  $ difftrace campaign report -d camp --diffnlr | tail -12
  === diffNLR(0) ===
      normal        | faulty       
      --------------+--------------
    = MPI_Init      | MPI_Init     
    = MPI_Comm_rank | MPI_Comm_rank
    = MPI_Comm_size | MPI_Comm_size
      --------------+--------------
    ~ L0^2          | MPI_Send     
    ~ MPI_Finalize  | MPI_Recv     
      --------------+--------------
      faulty trace is TRUNCATED: the thread hung inside its last call
    event db: trace 0: first divergence at event 13 (normal: ret MPI_Recv, faulty: end of trace); drill down: difftrace query 'diverge on 0'

A different matrix over the same directory is refused, not silently mixed:

  $ difftrace campaign run -d camp -w selftest --np 8 --seeds 2 \
  >   -f 'dlBug(rank=1,after=0)'
  difftrace: camp holds a different campaign (mismatched np); use a fresh state directory or delete it
  [1]

The campaign keeps one analysis store under its state directory, so
resumed or repeated sweeps reuse NLR summaries and JSMs across
processes:

  $ difftrace store stats -d camp/store | grep -v 'file bytes'
  summaries   8
  matrices    3
  signatures  0
  symbols     6
  loop bodies 2
  $ difftrace campaign run -d camp2 -w selftest --np 4 --seeds 2 \
  >   -f 'swapBug(rank=1,after=0)' --store camp/store --profile \
  >   | grep -E 'store\.hits|nlr\.summaries'
  | store.hits               |     4 |

One flipped byte in the manifest costs at most the record it hit: the
damaged line (and the stale CRC footer) are dropped and counted, the
readable records still resume, only the lost cell re-executes, and the
rewrite leaves a clean manifest behind.

  $ sed -i 's/^cell\(.4.\)/xell\1/' camp/campaign.manifest
  $ difftrace campaign run -d camp -w selftest --np 4 --seeds 2 \
  >   -f 'dlBug(rank=1,after=0)' \
  >   -f 'skipFunction(rank=0,func=raise)' \
  >   -f 'swapBug(rank=1,after=0)' \
  >   --profile | grep -E 'damaged|cell 4|executed|manifest_salvaged'
  difftrace: campaign manifest in camp is damaged (2 unreadable line(s) dropped); cells they recorded will rerun
  cell 4 [swapBug(rank=1,after=0)@s1]: ok (B-score 0.204)
  campaign: 1 cells executed, 5 resumed
  | campaign.manifest_salvaged |     2 |
  $ difftrace campaign status -d camp | head -2
  campaign selftest: np=4, 3 faults x 2 seeds = 6 cells
  recorded 6/6 cells: 2 completed, 2 hung, 2 failed (6 resumed)
