open Difftrace_parlot
open Difftrace_trace
module R = Difftrace_simulator.Runtime
module Fault = Difftrace_simulator.Fault
module Odd_even = Difftrace_workloads.Odd_even
module Stacktree = Difftrace_stacktree.Stacktree

let tmpdir name =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) ("difftrace_" ^ name) in
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  dir

let set_equal ts1 ts2 =
  let dump ts =
    Array.to_list (Trace_set.traces ts)
    |> List.map (fun tr ->
           ( tr.Trace.pid,
             tr.Trace.tid,
             tr.Trace.truncated,
             Trace.to_strings (Trace_set.symtab ts) tr ))
  in
  dump ts1 = dump ts2

(* ------------------------------------------------------------------ *)
(* Archive                                                             *)
(* ------------------------------------------------------------------ *)

let test_archive_roundtrip () =
  let outcome, _ = Odd_even.run ~np:4 ~fault:Fault.No_fault () in
  let dir = tmpdir "roundtrip" in
  let n = Archive.save ~dir outcome.R.traces in
  Alcotest.(check int) "one file per thread" 4 n;
  let loaded = Archive.load_exn ~dir () in
  Alcotest.(check bool) "identical traces after reload" true
    (set_equal outcome.R.traces loaded)

let test_archive_preserves_truncation () =
  let outcome, _ =
    Odd_even.run ~np:8 ~fault:(Fault.Deadlock_recv { rank = 5; after_iter = 3 }) ()
  in
  let dir = tmpdir "truncated" in
  ignore (Archive.save ~dir outcome.R.traces);
  let loaded = Archive.load_exn ~dir () in
  Alcotest.(check bool) "truncation flags survive" true
    (set_equal outcome.R.traces loaded);
  let tr = Trace_set.find_exn loaded ~pid:5 ~tid:0 in
  Alcotest.(check bool) "rank 5 still truncated" true tr.Trace.truncated

let test_archive_reanalysis_offline () =
  (* the paper's workflow: record once, re-filter offline *)
  let outcome, _ = Odd_even.run ~np:4 ~fault:Fault.No_fault () in
  let dir = tmpdir "offline" in
  ignore (Archive.save ~dir outcome.R.traces);
  let loaded = Archive.load_exn ~dir () in
  let a = Difftrace.Pipeline.analyze (Difftrace.Config.make ()) loaded in
  Alcotest.(check string) "Table III reproducible from disk"
    "MPI_Init;MPI_Comm_rank;MPI_Comm_size;L0^2;MPI_Finalize"
    (String.concat ";"
       (Difftrace_nlr.Nlr.to_strings a.Difftrace.Pipeline.symtab
          (fst a.Difftrace.Pipeline.nlrs.(0))))

let test_archive_corrupt_manifest () =
  let dir = tmpdir "corrupt" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let oc = open_out (Archive.manifest_file dir) in
  output_string oc "not an archive\n";
  close_out oc;
  Alcotest.check_raises "bad magic" (Invalid_argument "Archive.load: bad magic")
    (fun () -> ignore (Archive.load_exn ~dir ()));
  (* the result API reports the same problem without raising *)
  match Archive.load ~dir () with
  | Ok _ -> Alcotest.fail "corrupt manifest loaded"
  | Error e -> Alcotest.(check string) "reason" "bad magic" e.Archive.err_reason

(* ------------------------------------------------------------------ *)
(* Resilience: v2 framing, corruption corpus, salvage, verify/repair   *)
(* ------------------------------------------------------------------ *)

module Prng = Difftrace_util.Prng
module Varint = Difftrace_util.Varint

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let trace_paths dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> f <> "manifest")
  |> List.sort compare
  |> List.map (Filename.concat dir)

let flip_bit path ~byte ~bit =
  let s = Bytes.of_string (read_file path) in
  Bytes.set s byte (Char.chr (Char.code (Bytes.get s byte) lxor (1 lsl bit)));
  write_file path (Bytes.to_string s)

let truncate_file path ~keep =
  write_file path (String.sub (read_file path) 0 keep)

(* remove the first data chunk of a v2 trace file (varint length,
   payload, CRC-32 footer), keeping the magic and everything after *)
let delete_first_chunk path =
  let s = read_file path in
  let len, p = Varint.read s 4 in
  assert (len > 0);
  let after = p + len + 4 in
  write_file path (String.sub s 0 4 ^ String.sub s after (String.length s - after))

let sample_traces () =
  let outcome, _ = Odd_even.run ~np:4 ~fault:Fault.No_fault () in
  outcome.R.traces

(* regression: a zero-byte trace file is a complete empty trace — the
   streaming analogue of [Lzw.decompress ""] = "" — not an
   unterminated-stream error *)
let test_stream_empty_input () =
  let st = Tracer.stream () in
  Alcotest.(check bool) "complete before any feed" true
    (Tracer.stream_complete st);
  let st = Tracer.stream () in
  Tracer.stream_feed st "";
  Alcotest.(check int) "no events" 0 (Tracer.stream_events st);
  Alcotest.(check bool) "complete after empty feed" true
    (Tracer.stream_complete st);
  let tr = Tracer.stream_finish st ~pid:3 ~tid:1 ~truncated:false in
  Alcotest.(check int) "empty trace" 0 (Trace.length tr);
  Alcotest.(check bool) "flags preserved" false tr.Trace.truncated

let make_archive ?format ?chunk_size name ts =
  let dir = tmpdir name in
  ignore (Archive.save ?format ?chunk_size ~dir ts);
  dir

let par_runner =
  { Archive.run =
      (fun n f -> Difftrace.Engine.init (Difftrace.Engine.parallel ~domains:4 ()) n f) }

let test_v1_still_loads () =
  let ts = sample_traces () in
  let dir = make_archive ~format:Archive.V1 "v1_compat" ts in
  match Archive.load ~dir () with
  | Error e -> Alcotest.fail (Archive.error_to_string e)
  | Ok l ->
    Alcotest.(check int) "reports version 1" 1 l.Archive.version;
    Alcotest.(check int) "nothing salvaged" 0 (List.length l.Archive.salvaged);
    Alcotest.(check bool) "identical traces" true (set_equal ts l.Archive.set)

let test_v1_v2_identical () =
  let ts = sample_traces () in
  let v1 = Archive.load_exn ~dir:(make_archive ~format:Archive.V1 "x_v1" ts) () in
  let v2 = Archive.load_exn ~dir:(make_archive ~format:Archive.V2 "x_v2" ts) () in
  Alcotest.(check bool) "v1 load = original" true (set_equal ts v1);
  Alcotest.(check bool) "v2 load = v1 load" true (set_equal v1 v2)

let test_runner_parity () =
  let ts = sample_traces () in
  let dir = make_archive ~chunk_size:64 "parity" ts in
  let seq = Archive.load_exn ~dir () in
  let par = Archive.load_exn ~runner:par_runner ~dir () in
  Alcotest.(check bool) "sequential = parallel" true (set_equal seq par);
  Alcotest.(check bool) "both = original" true (set_equal ts seq)

(* random event streams through Varint/Lzw/Archive, both formats and
   several chunk sizes (1 forces every LZW code to straddle frames) *)
let random_set seed =
  let prng = Prng.create seed in
  let symtab = Symtab.create () in
  let nfuncs = 1 + Prng.int prng 40 in
  let ids =
    Array.init nfuncs (fun i -> Symtab.intern symtab (Printf.sprintf "fn_%d" i))
  in
  let traces =
    List.init (1 + Prng.int prng 5) (fun pid ->
        let n = Prng.int prng 500 in
        let events =
          Array.init n (fun _ ->
              let id = ids.(Prng.int prng nfuncs) in
              if Prng.bool prng then Event.Call id else Event.Return id)
        in
        Trace.make ~pid ~tid:0 ~truncated:(Prng.bool prng) events)
  in
  Trace_set.create symtab traces

let test_random_roundtrips () =
  for seed = 1 to 6 do
    let ts = random_set seed in
    List.iter
      (fun (format, chunk_size, tag) ->
        let name = Printf.sprintf "rand_%d_%s" seed tag in
        let dir = make_archive ~format ?chunk_size name ts in
        let loaded = Archive.load_exn ~dir () in
        Alcotest.(check bool)
          (Printf.sprintf "seed %d %s roundtrips" seed tag)
          true (set_equal ts loaded))
      [ (Archive.V1, None, "v1");
        (Archive.V2, Some 1, "v2c1");
        (Archive.V2, Some 3, "v2c3");
        (Archive.V2, None, "v2") ]
  done

(* Deterministic fault injector: every mutation of a valid v2 archive
   must land in Error (strict) or a truncated salvage — never an
   uncaught exception. *)
let test_corruption_corpus () =
  let ts = sample_traces () in
  let prng = Prng.create 42 in
  for case = 0 to 39 do
    let dir = make_archive ~chunk_size:32 (Printf.sprintf "corpus_%d" case) ts in
    let paths = trace_paths dir in
    let victim = List.nth paths (Prng.int prng (List.length paths)) in
    let size = String.length (read_file victim) in
    let what =
      match case mod 4 with
      | 0 ->
        let byte = Prng.int prng size in
        flip_bit victim ~byte ~bit:(Prng.int prng 8);
        Printf.sprintf "bit flip @%d" byte
      | 1 ->
        let keep = Prng.int prng size in
        truncate_file victim ~keep;
        Printf.sprintf "truncate to %d" keep
      | 2 -> delete_first_chunk victim; "chunk deletion"
      | _ ->
        let n = 1 + Prng.int prng 16 in
        write_file victim
          (read_file victim ^ String.init n (fun _ -> Char.chr (Prng.int prng 256)));
        Printf.sprintf "append %d garbage bytes" n
    in
    let ctx = Printf.sprintf "case %d (%s on %s)" case what victim in
    (match Archive.load ~dir () with
    | Ok _ -> Alcotest.fail (ctx ^ ": corruption went undetected")
    | Error _ -> ()
    | exception e ->
      Alcotest.fail (ctx ^ ": strict load raised " ^ Printexc.to_string e));
    (match Archive.load ~salvage:true ~dir () with
    | Error e ->
      Alcotest.fail (ctx ^ ": salvage refused: " ^ Archive.error_to_string e)
    | exception e ->
      Alcotest.fail (ctx ^ ": salvage raised " ^ Printexc.to_string e)
    | Ok l ->
      Alcotest.(check bool) (ctx ^ ": salvage recorded") true
        (l.Archive.salvaged <> []);
      List.iter
        (fun s ->
          let tr =
            Trace_set.find_exn l.Archive.set ~pid:s.Archive.sv_pid
              ~tid:s.Archive.sv_tid
          in
          Alcotest.(check bool) (ctx ^ ": salvaged trace marked truncated") true
            tr.Trace.truncated;
          Alcotest.(check bool) (ctx ^ ": dropped bytes accounted") true
            (s.Archive.sv_dropped_bytes >= 0))
        l.Archive.salvaged);
    match Archive.verify ~dir () with
    | Error e -> Alcotest.fail (ctx ^ ": verify refused: " ^ Archive.error_to_string e)
    | Ok r -> Alcotest.(check bool) (ctx ^ ": verify flags damage") false r.Archive.rp_ok
  done

let test_v1_corruption () =
  let ts = sample_traces () in
  List.iter
    (fun (name, mutate) ->
      let dir = make_archive ~format:Archive.V1 ("v1_" ^ name) ts in
      let victim = List.hd (trace_paths dir) in
      mutate victim;
      (match Archive.load ~dir () with
      | Ok _ -> Alcotest.fail (name ^ ": v1 corruption went undetected")
      | Error _ -> ());
      match Archive.load ~salvage:true ~dir () with
      | Error e -> Alcotest.fail (name ^ ": " ^ Archive.error_to_string e)
      | Ok l ->
        Alcotest.(check bool) (name ^ ": salvaged") true (l.Archive.salvaged <> []))
    [ ("truncate", fun p -> truncate_file p ~keep:(String.length (read_file p) / 2));
      ("garbage", fun p -> write_file p (read_file p ^ "\xff\x00\x17")) ]

let test_manifest_bitflip () =
  let ts = sample_traces () in
  let prng = Prng.create 7 in
  for case = 0 to 7 do
    let dir = make_archive (Printf.sprintf "mflip_%d" case) ts in
    let path = Archive.manifest_file dir in
    let size = String.length (read_file path) in
    flip_bit path ~byte:(Prng.int prng size) ~bit:(Prng.int prng 8);
    List.iter
      (fun salvage ->
        match Archive.load ~salvage ~dir () with
        | Ok _ -> Alcotest.fail "manifest corruption went undetected"
        | Error _ -> ()
        | exception e ->
          Alcotest.fail ("manifest load raised " ^ Printexc.to_string e))
      [ false; true ]
  done

let test_verify_clean () =
  let ts = sample_traces () in
  let dir = make_archive ~chunk_size:64 "verify_ok" ts in
  match Archive.verify ~runner:par_runner ~dir () with
  | Error e -> Alcotest.fail (Archive.error_to_string e)
  | Ok r ->
    Alcotest.(check bool) "clean archive verifies" true r.Archive.rp_ok;
    Alcotest.(check int) "one check per trace" 4 (List.length r.Archive.rp_traces);
    List.iter
      (fun t ->
        Alcotest.(check bool) "no issue" true (t.Archive.tc_issue = None);
        Alcotest.(check bool) "chunks counted" true (t.Archive.tc_chunks > 0))
      r.Archive.rp_traces;
    let rendered = Archive.render_report r in
    Alcotest.(check bool) "report says OK" true
      (String.length rendered > 0
      && (let ok = ref false in
          String.iteri
            (fun i _ ->
              if i + 2 <= String.length rendered && String.sub rendered i 2 = "OK"
              then ok := true)
            rendered;
          !ok))

let test_repair () =
  let ts = sample_traces () in
  let src = make_archive ~chunk_size:32 "repair_src" ts in
  let victim = List.hd (trace_paths src) in
  truncate_file victim ~keep:(String.length (read_file victim) / 2);
  let dst = tmpdir "repair_dst" in
  match Archive.repair ~src ~dst () with
  | Error e -> Alcotest.fail (Archive.error_to_string e)
  | Ok (l, files) ->
    Alcotest.(check int) "all traces rewritten" 4 files;
    Alcotest.(check int) "one trace salvaged" 1 (List.length l.Archive.salvaged);
    (match Archive.verify ~dir:dst () with
    | Error e -> Alcotest.fail (Archive.error_to_string e)
    | Ok r -> Alcotest.(check bool) "repaired archive verifies" true r.Archive.rp_ok);
    match Archive.load ~dir:dst () with
    | Error e -> Alcotest.fail (Archive.error_to_string e)
    | Ok l2 ->
      Alcotest.(check bool) "repaired archive loads clean" true
        (l2.Archive.salvaged = []);
      Alcotest.(check bool) "repaired set = salvaged set" true
        (set_equal l.Archive.set l2.Archive.set)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let test_save_creates_parents () =
  let base = Filename.concat (Filename.get_temp_dir_name ()) "difftrace_nested" in
  rm_rf base;
  let dir = Filename.concat (Filename.concat base "a") "b" in
  let ts = sample_traces () in
  Alcotest.(check int) "saved through missing parents" 4 (Archive.save ~dir ts);
  Alcotest.(check bool) "and loads back" true
    (set_equal ts (Archive.load_exn ~dir ()))

let test_save_dir_is_file () =
  let path = Filename.concat (Filename.get_temp_dir_name ()) "difftrace_blocker" in
  write_file path "in the way";
  let ts = sample_traces () in
  (match Archive.save ~dir:path ts with
  | _ -> Alcotest.fail "saved into a regular file"
  | exception Invalid_argument m ->
    Alcotest.(check bool) "clear error" true
      (String.length m > 0 && String.sub m 0 12 = "Archive.save"));
  Sys.remove path

let test_zero_byte_trace_file () =
  (* the file a crashed writer leaves behind: created, never flushed —
     a byte-less stream must load as the valid empty trace the manifest
     promised, with nothing salvaged *)
  let symtab = Symtab.create () in
  let f = Symtab.intern symtab "f" in
  let full =
    Trace.make ~pid:0 ~tid:0 ~truncated:false [| Event.Call f; Event.Return f |]
  in
  let empty = Trace.make ~pid:1 ~tid:0 ~truncated:false [||] in
  let ts = Trace_set.create symtab [ full; empty ] in
  let dir = make_archive ~format:Archive.V1 "zero_byte" ts in
  let oc = open_out_bin (Archive.trace_file dir ~pid:1 ~tid:0) in
  close_out oc;
  match Archive.load ~dir () with
  | Error e -> Alcotest.fail (Archive.error_to_string e)
  | Ok l ->
    Alcotest.(check int) "nothing salvaged" 0 (List.length l.Archive.salvaged);
    Alcotest.(check bool) "identical traces" true (set_equal ts l.Archive.set)

let test_v1_length_mismatch () =
  (* v1 manifests carry no checksum, so a tampered length must be
     caught by the decoded-event count instead *)
  let ts = sample_traces () in
  let dir = make_archive ~format:Archive.V1 "v1_len" ts in
  let path = Archive.manifest_file dir in
  let text = read_file path in
  (* bump the first thread's event count by prepending a digit *)
  let tampered =
    String.split_on_char '\n' text
    |> List.map (fun line ->
           let prefix = "thread 0 0 complete " in
           let plen = String.length prefix in
           if String.length line > plen && String.sub line 0 plen = prefix then
             prefix ^ "9" ^ String.sub line plen (String.length line - plen)
           else line)
    |> String.concat "\n"
  in
  write_file path tampered;
  match Archive.load ~dir () with
  | Ok _ -> Alcotest.fail "length mismatch went undetected"
  | Error e ->
    Alcotest.(check bool) "reason names the mismatch" true
      (String.length e.Archive.err_reason >= 21
      && String.sub e.Archive.err_reason 0 21 = "trace length mismatch")

(* ------------------------------------------------------------------ *)
(* Stack trees                                                         *)
(* ------------------------------------------------------------------ *)

let test_final_stack_reconstruction () =
  let symtab = Symtab.create () in
  let id n = Symtab.intern symtab n in
  let tr =
    Trace.make ~pid:0 ~tid:0 ~truncated:true
      [| Event.Call (id "main"); Event.Call (id "f"); Event.Return (id "f");
         Event.Call (id "g"); Event.Call (id "MPI_Recv") |]
  in
  Alcotest.(check (list string)) "stuck inside main>g>MPI_Recv"
    [ "main"; "g"; "MPI_Recv" ]
    (Stacktree.final_stack symtab tr)

let test_final_stack_balanced () =
  let symtab = Symtab.create () in
  let id n = Symtab.intern symtab n in
  let tr =
    Trace.make ~pid:0 ~tid:0 ~truncated:false
      [| Event.Call (id "main"); Event.Call (id "f"); Event.Return (id "f");
         Event.Return (id "main") |]
  in
  Alcotest.(check (list string)) "balanced trace -> empty stack" []
    (Stacktree.final_stack symtab tr)

let test_final_stack_unmatched_return () =
  let symtab = Symtab.create () in
  let id n = Symtab.intern symtab n in
  let tr =
    Trace.make ~pid:0 ~tid:0 ~truncated:false
      [| Event.Call (id "main"); Event.Return (id "other") |]
  in
  Alcotest.(check (list string)) "unmatched return ignored" [ "main" ]
    (Stacktree.final_stack symtab tr)

let test_stacktree_hung_run () =
  (* dlBug: STAT-style view of where every rank is stuck *)
  let outcome, _ =
    Odd_even.run ~np:8 ~fault:(Fault.Deadlock_recv { rank = 3; after_iter = 2 }) ()
  in
  let tree = Stacktree.build outcome.R.traces in
  (* everyone still alive is under main > oddEvenSort > MPI_* *)
  (match tree.Stacktree.roots with
  | [ root ] ->
    Alcotest.(check string) "root frame" "main" root.Stacktree.frame;
    Alcotest.(check bool) "root holds the hung ranks" true
      (List.length root.Stacktree.members >= 5)
  | _ -> Alcotest.fail "expected a single main root");
  let classes = Stacktree.equivalence_classes tree in
  Alcotest.(check bool) "at least one stuck class" true (List.length classes >= 1);
  let total =
    List.fold_left (fun acc (_, members) -> acc + List.length members) 0 classes
  in
  Alcotest.(check int) "every rank is in exactly one class" 8 total;
  (* the injected rank is stuck under main > oddEvenSort > MPI_Recv *)
  let rank3_class =
    List.find (fun (_, members) -> List.mem (3, 0) members) classes
  in
  Alcotest.(check (list string)) "rank 3's stack"
    [ "main"; "oddEvenSort"; "MPI_Recv" ]
    (fst rank3_class);
  let rendered = Stacktree.render tree in
  Alcotest.(check bool) "renders frames" true (String.length rendered > 50)

let test_stacktree_clean_run_all_idle () =
  let outcome, _ = Odd_even.run ~np:4 ~fault:Fault.No_fault () in
  let tree = Stacktree.build outcome.R.traces in
  Alcotest.(check int) "no live frames" 0 (List.length tree.Stacktree.roots);
  Alcotest.(check int) "all idle" 4 (List.length tree.Stacktree.idle)

(* ------------------------------------------------------------------ *)
(* Extra collectives                                                   *)
(* ------------------------------------------------------------------ *)

module Api = Difftrace_simulator.Api

let clean outcome =
  Alcotest.(check (list (pair int int))) "no deadlock" [] outcome.R.deadlocked

let test_allgather () =
  let outcome =
    R.run ~np:3 (fun env ->
        let r = Api.allgather env [| R.pid env * 10 |] in
        Alcotest.(check (array int)) "rank-ordered concat" [| 0; 10; 20 |] r)
  in
  clean outcome

let test_gather () =
  let outcome =
    R.run ~np:3 (fun env ->
        let r = Api.gather env ~root:1 [| R.pid env; R.pid env |] in
        if R.pid env = 1 then
          Alcotest.(check (array int)) "root" [| 0; 0; 1; 1; 2; 2 |] r
        else Alcotest.(check (array int)) "non-root" [||] r)
  in
  clean outcome

let test_scatter () =
  let outcome =
    R.run ~np:3 (fun env ->
        let data = if R.pid env = 0 then [| 10; 11; 20; 21; 30; 31 |] else [||] in
        let r = Api.scatter env ~root:0 ~count:2 data in
        Alcotest.(check (array int)) "slice"
          [| ((R.pid env + 1) * 10); ((R.pid env + 1) * 10) + 1 |]
          r)
  in
  clean outcome

let test_scatter_bad_buffer_hangs () =
  let outcome =
    R.run ~np:2 (fun env ->
        let data = if R.pid env = 0 then [| 1 |] (* too short *) else [||] in
        ignore (Api.scatter env ~root:0 ~count:2 data))
  in
  Alcotest.(check int) "hangs" 2 (List.length outcome.R.deadlocked);
  Alcotest.(check bool) "diagnosed" true (outcome.R.collective_mismatch <> None)

let test_alltoall () =
  let outcome =
    R.run ~np:2 (fun env ->
        (* rank r sends [r*100 + d] to rank d *)
        let data = [| (R.pid env * 100) + 0; (R.pid env * 100) + 1 |] in
        let r = Api.alltoall env ~count:1 data in
        Alcotest.(check (array int)) "transposed"
          [| 0 + R.pid env; 100 + R.pid env |]
          r)
  in
  clean outcome

let test_scan () =
  let outcome =
    R.run ~np:4 (fun env ->
        let r = Api.scan env ~op:R.Op_sum [| 1 |] in
        Alcotest.(check (array int)) "inclusive prefix" [| R.pid env + 1 |] r)
  in
  clean outcome

(* ------------------------------------------------------------------ *)
(* Communicators                                                       *)
(* ------------------------------------------------------------------ *)

let test_comm_split_groups () =
  let outcome =
    R.run ~np:6 (fun env ->
        let rank = R.pid env in
        (* evens and odds form separate communicators *)
        let c = Api.comm_split env ~color:(rank mod 2) ~key:rank in
        (* sum within the group *)
        let s = Api.allreduce ~comm:c env ~op:R.Op_sum [| rank |] in
        let expected = if rank mod 2 = 0 then 0 + 2 + 4 else 1 + 3 + 5 in
        Alcotest.(check (array int)) "group sum" [| expected |] s;
        (* world collectives still work alongside *)
        let w = Api.allreduce env ~op:R.Op_sum [| 1 |] in
        Alcotest.(check (array int)) "world size" [| 6 |] w)
  in
  clean outcome

let test_comm_split_key_orders_members () =
  let outcome =
    R.run ~np:4 (fun env ->
        let rank = R.pid env in
        (* reverse ordering via descending keys *)
        let c = Api.comm_split env ~color:0 ~key:(- rank) in
        Alcotest.(check (array int)) "members sorted by key"
          [| 3; 2; 1; 0 |]
          c.R.members;
        ignore (Api.barrier ~comm:c env))
  in
  clean outcome

let test_comm_split_allgather_order () =
  let outcome =
    R.run ~np:4 (fun env ->
        let rank = R.pid env in
        let c = Api.comm_split env ~color:(rank / 2) ~key:rank in
        let g = Api.allgather ~comm:c env [| rank * 10 |] in
        let expected = if rank < 2 then [| 0; 10 |] else [| 20; 30 |] in
        Alcotest.(check (array int)) "gathered in comm-rank order" expected g)
  in
  clean outcome

let test_comm_mismatched_split_hangs () =
  (* a classic split bug: one rank computes a different color and its
     group can never complete a collective of the expected size...
     here rank 3 joins color 0's group while they expect it in group 1,
     so the collective *memberships* disagree -> derive_comm differs ->
     the groups deadlock *)
  let outcome =
    R.run ~np:4 (fun env ->
        let rank = R.pid env in
        let color = if rank = 3 then 0 else rank mod 2 in
        let c = Api.comm_split env ~color ~key:rank in
        (* ranks disagree about who is in which group only if their
           local view diverged; with allgather-based split all views
           agree, so instead simulate the bug by using the wrong comm
           size expectation: rank 3 then barriers on a comm whose other
           members never barrier on it *)
        if rank = 3 then ignore (Api.barrier ~comm:c env)
        else if rank mod 2 = 1 then ignore (Api.barrier ~comm:c env))
  in
  (* rank 1's group is {1}, it completes alone; rank 3 joined {0,2,3}
     but 0 and 2 never call barrier -> rank 3 hangs *)
  Alcotest.(check bool) "the misrouted rank hangs" true
    (List.mem (3, 0) outcome.R.deadlocked)


(* ------------------------------------------------------------------ *)
(* trace emission of the newer MPI wrappers                            *)
(* ------------------------------------------------------------------ *)

let trace_names outcome ~pid =
  let ts = outcome.R.traces in
  let tr = Trace_set.find_exn ts ~pid ~tid:0 in
  Trace.to_strings (Trace_set.symtab ts) tr

let test_sendrecv_trace_name () =
  let outcome =
    R.run ~np:2 (fun env ->
        let peer = 1 - R.pid env in
        ignore (Api.sendrecv env ~dst:peer ~src:peer [| 1 |]))
  in
  let names = trace_names outcome ~pid:0 in
  Alcotest.(check bool) "MPI_Sendrecv recorded" true
    (List.mem "MPI_Sendrecv" names);
  Alcotest.(check bool) "and returned" true (List.mem "ret MPI_Sendrecv" names)

let test_comm_split_trace_name () =
  let outcome =
    R.run ~np:2 (fun env ->
        ignore (Api.comm_split env ~color:0 ~key:(R.pid env)))
  in
  let names = trace_names outcome ~pid:1 in
  Alcotest.(check bool) "MPI_Comm_split recorded" true
    (List.mem "MPI_Comm_split" names)

let test_explore_reproducible () =
  let program env =
    Api.parallel env ~num_threads:3 (fun tenv ->
        Api.critical tenv (fun () -> ());
        Api.yield tenv)
  in
  let a = Difftrace_simulator.Explore.run ~np:2 ~seeds:[ 3; 1; 2 ] program in
  let b = Difftrace_simulator.Explore.run ~np:2 ~seeds:[ 1; 2; 3 ] program in
  Alcotest.(check bool) "seed order does not matter, results identical" true
    (a = b)

let test_archive_empty_set () =
  let ts = Trace_set.create (Symtab.create ()) [] in
  let dir = tmpdir "empty" in
  Alcotest.(check int) "zero files" 0 (Archive.save ~dir ts);
  Alcotest.(check int) "load empty" 0
    (Trace_set.cardinal (Archive.load_exn ~dir ()))

let () =
  Alcotest.run "archive+stacktree+collectives"
    [ ( "archive",
        [ Alcotest.test_case "roundtrip" `Quick test_archive_roundtrip;
          Alcotest.test_case "truncation preserved" `Quick
            test_archive_preserves_truncation;
          Alcotest.test_case "offline re-analysis" `Quick
            test_archive_reanalysis_offline;
          Alcotest.test_case "corrupt manifest" `Quick test_archive_corrupt_manifest ] );
      ( "resilience",
        [ Alcotest.test_case "v1 still loads" `Quick test_v1_still_loads;
          Alcotest.test_case "v1 and v2 identical" `Quick test_v1_v2_identical;
          Alcotest.test_case "runner parity" `Quick test_runner_parity;
          Alcotest.test_case "random roundtrips" `Quick test_random_roundtrips;
          Alcotest.test_case "corruption corpus" `Quick test_corruption_corpus;
          Alcotest.test_case "v1 corruption" `Quick test_v1_corruption;
          Alcotest.test_case "manifest bit flips" `Quick test_manifest_bitflip;
          Alcotest.test_case "verify clean" `Quick test_verify_clean;
          Alcotest.test_case "repair" `Quick test_repair;
          Alcotest.test_case "save creates parents" `Quick test_save_creates_parents;
          Alcotest.test_case "save onto a file" `Quick test_save_dir_is_file;
          Alcotest.test_case "v1 length mismatch" `Quick test_v1_length_mismatch;
          Alcotest.test_case "empty stream input" `Quick test_stream_empty_input;
          Alcotest.test_case "zero-byte trace file" `Quick
            test_zero_byte_trace_file ] );
      ( "stacktree",
        [ Alcotest.test_case "final stack" `Quick test_final_stack_reconstruction;
          Alcotest.test_case "balanced stack" `Quick test_final_stack_balanced;
          Alcotest.test_case "unmatched return" `Quick test_final_stack_unmatched_return;
          Alcotest.test_case "hung run classes" `Quick test_stacktree_hung_run;
          Alcotest.test_case "clean run idle" `Quick test_stacktree_clean_run_all_idle ] );
      ( "collectives",
        [ Alcotest.test_case "allgather" `Quick test_allgather;
          Alcotest.test_case "gather" `Quick test_gather;
          Alcotest.test_case "scatter" `Quick test_scatter;
          Alcotest.test_case "scatter bad buffer" `Quick test_scatter_bad_buffer_hangs;
          Alcotest.test_case "alltoall" `Quick test_alltoall;
          Alcotest.test_case "scan" `Quick test_scan ] );
      ( "api-traces",
        [ Alcotest.test_case "sendrecv name" `Quick test_sendrecv_trace_name;
          Alcotest.test_case "comm_split name" `Quick test_comm_split_trace_name;
          Alcotest.test_case "explore reproducible" `Quick test_explore_reproducible;
          Alcotest.test_case "empty archive" `Quick test_archive_empty_set ] );
      ( "communicators",
        [ Alcotest.test_case "split groups" `Quick test_comm_split_groups;
          Alcotest.test_case "key ordering" `Quick test_comm_split_key_orders_members;
          Alcotest.test_case "allgather order" `Quick test_comm_split_allgather_order;
          Alcotest.test_case "misrouted rank hangs" `Quick
            test_comm_mismatched_split_hangs ] ) ]

