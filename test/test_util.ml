open Difftrace_util

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Bitset                                                              *)
(* ------------------------------------------------------------------ *)

let test_bitset_basic () =
  let s = Bitset.create 100 in
  Alcotest.(check bool) "fresh set is empty" true (Bitset.is_empty s);
  Bitset.add s 0;
  Bitset.add s 63;
  Bitset.add s 64;
  Bitset.add s 99;
  Alcotest.(check int) "cardinal" 4 (Bitset.cardinal s);
  Alcotest.(check bool) "mem 63" true (Bitset.mem s 63);
  Alcotest.(check bool) "mem 64" true (Bitset.mem s 64);
  Alcotest.(check bool) "not mem 1" false (Bitset.mem s 1);
  Bitset.remove s 63;
  Alcotest.(check bool) "removed" false (Bitset.mem s 63);
  Alcotest.(check int) "cardinal after remove" 3 (Bitset.cardinal s)

let test_bitset_bounds () =
  let s = Bitset.create 10 in
  Alcotest.check_raises "add out of range" (Invalid_argument "Bitset: index out of range")
    (fun () -> Bitset.add s 10);
  Alcotest.check_raises "mem negative" (Invalid_argument "Bitset: index out of range")
    (fun () -> ignore (Bitset.mem s (-1)))

let test_bitset_ops () =
  let a = Bitset.of_list 10 [ 1; 2; 3 ] and b = Bitset.of_list 10 [ 2; 3; 4 ] in
  Alcotest.(check (list int)) "inter" [ 2; 3 ] (Bitset.to_list (Bitset.inter a b));
  Alcotest.(check (list int)) "union" [ 1; 2; 3; 4 ] (Bitset.to_list (Bitset.union a b));
  Alcotest.(check (list int)) "diff" [ 1 ] (Bitset.to_list (Bitset.diff a b));
  Alcotest.(check int) "inter_cardinal" 2 (Bitset.inter_cardinal a b);
  Alcotest.(check int) "union_cardinal" 4 (Bitset.union_cardinal a b);
  Alcotest.(check (float 1e-9)) "jaccard" 0.5 (Bitset.jaccard a b);
  Alcotest.(check bool) "subset no" false (Bitset.subset a b);
  Alcotest.(check bool) "subset yes" true
    (Bitset.subset (Bitset.of_list 10 [ 2; 3 ]) b)

let test_bitset_jaccard_empty () =
  let a = Bitset.create 8 and b = Bitset.create 8 in
  Alcotest.(check (float 1e-9)) "both empty -> 1.0" 1.0 (Bitset.jaccard a b)

let test_bitset_full_singleton () =
  Alcotest.(check int) "full cardinal" 70 (Bitset.cardinal (Bitset.full 70));
  Alcotest.(check (list int)) "singleton" [ 5 ] (Bitset.to_list (Bitset.singleton 9 5))

let test_bitset_inplace () =
  let a = Bitset.of_list 130 [ 0; 64; 128 ] in
  let b = Bitset.of_list 130 [ 64; 100 ] in
  Bitset.add_all a b;
  Alcotest.(check (list int)) "add_all" [ 0; 64; 100; 128 ] (Bitset.to_list a);
  Bitset.inter_into a b;
  Alcotest.(check (list int)) "inter_into" [ 64; 100 ] (Bitset.to_list a)

let test_bitset_capacity_mismatch () =
  let a = Bitset.create 8 and b = Bitset.create 9 in
  Alcotest.check_raises "inter mismatch" (Invalid_argument "Bitset: capacity mismatch")
    (fun () -> ignore (Bitset.inter a b))

let bitset_gen =
  QCheck2.Gen.(
    let* n = int_range 1 200 in
    let* l = list_size (int_range 0 50) (int_range 0 (n - 1)) in
    return (n, l))

let prop_bitset_roundtrip =
  qtest "bitset of_list/to_list is sorted-dedup" bitset_gen (fun (n, l) ->
      let s = Bitset.of_list n l in
      Bitset.to_list s = List.sort_uniq Int.compare l)

let prop_bitset_demorgan =
  qtest "bitset |a∪b| + |a∩b| = |a| + |b|"
    QCheck2.Gen.(
      let* n = int_range 1 150 in
      let* l1 = list_size (int_range 0 60) (int_range 0 (n - 1)) in
      let* l2 = list_size (int_range 0 60) (int_range 0 (n - 1)) in
      return (n, l1, l2))
    (fun (n, l1, l2) ->
      let a = Bitset.of_list n l1 and b = Bitset.of_list n l2 in
      Bitset.union_cardinal a b + Bitset.inter_cardinal a b
      = Bitset.cardinal a + Bitset.cardinal b)

let prop_bitset_hash_equal =
  qtest "bitset equal implies equal hash" bitset_gen (fun (n, l) ->
      let a = Bitset.of_list n l and b = Bitset.of_list n (List.rev l) in
      Bitset.equal a b && Bitset.hash a = Bitset.hash b)

(* ------------------------------------------------------------------ *)
(* Vec                                                                 *)
(* ------------------------------------------------------------------ *)

let test_vec_push_pop () =
  let v = Vec.create () in
  for i = 0 to 99 do
    Vec.push v i
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get 42" 42 (Vec.get v 42);
  Alcotest.(check int) "pop" 99 (Vec.pop v);
  Alcotest.(check int) "length after pop" 99 (Vec.length v);
  Alcotest.(check int) "peek 0" 98 (Vec.peek v 0);
  Alcotest.(check int) "peek 3" 95 (Vec.peek v 3)

let test_vec_truncate () =
  let v = Vec.of_array [| 1; 2; 3; 4; 5 |] in
  Vec.truncate v 2;
  Alcotest.(check (list int)) "truncated" [ 1; 2 ] (Vec.to_list v);
  Alcotest.check_raises "truncate grows" (Invalid_argument "Vec.truncate")
    (fun () -> Vec.truncate v 10)

let test_vec_float () =
  (* exercises the flat float array representation *)
  let v = Vec.create () in
  for i = 0 to 999 do
    Vec.push v (float_of_int i *. 0.5)
  done;
  Alcotest.(check (float 1e-9)) "float get" 250.0 (Vec.get v 500)

let test_vec_sub_iter () =
  let v = Vec.of_array [| 10; 20; 30; 40 |] in
  Alcotest.(check (array int)) "sub" [| 20; 30 |] (Vec.sub v 1 2);
  let acc = ref 0 in
  Vec.iter (fun x -> acc := !acc + x) v;
  Alcotest.(check int) "iter sum" 100 !acc;
  Alcotest.(check int) "fold" 100 (Vec.fold_left ( + ) 0 v);
  Vec.append_array v [| 50 |];
  Alcotest.(check int) "append" 50 (Vec.get v 4)

let test_vec_empty_errors () =
  let v : int Vec.t = Vec.create () in
  Alcotest.check_raises "pop empty" (Invalid_argument "Vec.pop: empty") (fun () ->
      ignore (Vec.pop v))

let prop_vec_roundtrip =
  qtest "vec of_array/to_array roundtrip"
    QCheck2.Gen.(list int)
    (fun l ->
      let v = Vec.of_array (Array.of_list l) in
      Vec.to_list v = l)

(* ------------------------------------------------------------------ *)
(* Varint                                                              *)
(* ------------------------------------------------------------------ *)

let test_varint_examples () =
  let enc n =
    let b = Buffer.create 8 in
    Varint.write b n;
    Buffer.contents b
  in
  Alcotest.(check int) "small is 1 byte" 1 (String.length (enc 0));
  Alcotest.(check int) "127 is 1 byte" 1 (String.length (enc 127));
  Alcotest.(check int) "128 is 2 bytes" 2 (String.length (enc 128));
  Alcotest.(check int) "size agrees" (String.length (enc 300)) (Varint.size 300);
  Alcotest.check_raises "negative" (Invalid_argument "Varint.write: negative")
    (fun () -> ignore (enc (-1)))

let test_varint_truncated () =
  Alcotest.check_raises "truncated" (Invalid_argument "Varint.read: truncated input")
    (fun () -> ignore (Varint.read "\x80" 0))

let test_varint_overflow () =
  (* more continuation bytes than a 63-bit int can hold must be
     rejected, not silently wrapped to a negative or truncated value *)
  let overlong = String.make 9 '\x80' ^ "\x01" in
  Alcotest.check_raises "shift overflow"
    (Invalid_argument "Varint.read: overflow") (fun () ->
      ignore (Varint.read overlong 0));
  (* 9 bytes whose 63rd bit would be set: fits the shift cap but not
     the sign bit *)
  let negative = String.make 8 '\xff' ^ "\x7f" in
  Alcotest.check_raises "sign overflow"
    (Invalid_argument "Varint.read: overflow") (fun () ->
      ignore (Varint.read negative 0));
  (* max_int itself still roundtrips *)
  let b = Buffer.create 10 in
  Varint.write b max_int;
  let v, _ = Varint.read (Buffer.contents b) 0 in
  Alcotest.(check int) "max_int roundtrips" max_int v

(* ------------------------------------------------------------------ *)
(* Crc32                                                               *)
(* ------------------------------------------------------------------ *)

let test_crc32_vectors () =
  (* the standard IEEE 802.3 check value *)
  Alcotest.(check int) "check vector" 0xCBF43926 (Crc32.string "123456789");
  Alcotest.(check int) "empty" 0 (Crc32.string "")

let test_crc32_incremental () =
  let s = "a trace archive chunk of modest length, fed in pieces" in
  let crc = ref Crc32.init in
  String.iteri
    (fun i _ -> crc := Crc32.update !crc s ~pos:i ~len:1)
    s;
  Alcotest.(check int) "byte-at-a-time = one-shot" (Crc32.string s)
    (Crc32.finish !crc)

let test_crc32_le_bytes () =
  List.iter
    (fun s ->
      let d = Crc32.string s in
      Alcotest.(check int) "LE footer roundtrips" d
        (Crc32.of_le_bytes (Crc32.to_le_bytes d) 0))
    [ ""; "x"; "123456789"; String.make 1000 '\xff' ]

let test_crc32_detects_flip () =
  let s = Bytes.of_string "archive payload bytes" in
  let before = Crc32.string (Bytes.to_string s) in
  Bytes.set s 3 (Char.chr (Char.code (Bytes.get s 3) lxor 0x10));
  Alcotest.(check bool) "single bit flip changes digest" true
    (before <> Crc32.string (Bytes.to_string s))

let prop_varint_roundtrip =
  qtest "varint roundtrip"
    QCheck2.Gen.(int_range 0 max_int)
    (fun n ->
      let b = Buffer.create 8 in
      Varint.write b n;
      let v, pos = Varint.read (Buffer.contents b) 0 in
      v = n && pos = Buffer.length b)

let prop_varint_list =
  qtest "varint list roundtrip"
    QCheck2.Gen.(list (int_range 0 1_000_000))
    (fun l ->
      let b = Buffer.create 8 in
      Varint.write_list b l;
      let l', _ = Varint.read_list (Buffer.contents b) 0 in
      l = l')

(* ------------------------------------------------------------------ *)
(* Prng                                                                *)
(* ------------------------------------------------------------------ *)

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next a) (Prng.next b)
  done

let test_prng_bounds () =
  let g = Prng.create 7 in
  for _ = 1 to 1000 do
    let v = Prng.int g 13 in
    if v < 0 || v >= 13 then Alcotest.fail "out of bounds"
  done;
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int g 0))

let test_prng_float_range () =
  let g = Prng.create 11 in
  for _ = 1 to 1000 do
    let f = Prng.float g in
    if f < 0.0 || f >= 1.0 then Alcotest.fail "float out of [0,1)"
  done

let test_prng_shuffle_permutation () =
  let g = Prng.create 3 in
  let a = Array.init 50 (fun i -> i) in
  Prng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 (fun i -> i)) sorted

let test_prng_split_independent () =
  let g = Prng.create 5 in
  let h = Prng.split g in
  let a = Prng.next g and b = Prng.next h in
  Alcotest.(check bool) "split streams differ" true (a <> b)

(* ------------------------------------------------------------------ *)
(* Texttable and Stats                                                 *)
(* ------------------------------------------------------------------ *)

let test_texttable_render () =
  let s = Texttable.render ~headers:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "333"; "4" ] ] in
  Alcotest.(check bool) "contains header" true
    (String.length s > 0 && String.split_on_char '\n' s <> []);
  let lines = String.split_on_char '\n' s in
  let widths = List.filter (fun l -> l <> "") lines |> List.map String.length in
  match widths with
  | w :: rest -> List.iter (fun w' -> Alcotest.(check int) "equal widths" w w') rest
  | [] -> Alcotest.fail "no output"

let test_texttable_ragged () =
  Alcotest.check_raises "ragged row" (Invalid_argument "Texttable.render: ragged row")
    (fun () -> ignore (Texttable.render ~headers:[ "a" ] [ [ "1"; "2" ] ]))

let contains ~sub s =
  let n = String.length sub and h = String.length s in
  let rec go i = i + n <= h && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_texttable_heatmap () =
  let s =
    Texttable.heatmap ~labels:[| "x"; "y" |] [| [| 1.0; 0.5 |]; [| 0.5; 1.0 |] |]
  in
  Alcotest.(check bool) "has 0.50 cell" true (contains ~sub:"0.50" s);
  Alcotest.(check bool) "has label" true (contains ~sub:" x " s)

let test_stats () =
  let a = [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.mean a);
  Alcotest.(check (float 1e-9)) "variance" 1.25 (Stats.variance a);
  Alcotest.(check (float 1e-9)) "median even" 2.5 (Stats.median a);
  Alcotest.(check (float 1e-9)) "median odd" 2.0 (Stats.median [| 3.0; 1.0; 2.0 |]);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.minimum a);
  Alcotest.(check (float 1e-9)) "max" 4.0 (Stats.maximum a);
  Alcotest.(check (float 1e-9)) "sum" 10.0 (Stats.sum a);
  Alcotest.(check (float 1e-9)) "geomean" 2.0 (Stats.geomean [| 1.0; 2.0; 4.0 |]);
  Alcotest.check_raises "empty mean" (Invalid_argument "Stats: empty array")
    (fun () -> ignore (Stats.mean [||]))

let () =
  Alcotest.run "util"
    [ ( "bitset",
        [ Alcotest.test_case "basic" `Quick test_bitset_basic;
          Alcotest.test_case "bounds" `Quick test_bitset_bounds;
          Alcotest.test_case "set ops" `Quick test_bitset_ops;
          Alcotest.test_case "jaccard empty" `Quick test_bitset_jaccard_empty;
          Alcotest.test_case "full/singleton" `Quick test_bitset_full_singleton;
          Alcotest.test_case "in-place ops" `Quick test_bitset_inplace;
          Alcotest.test_case "capacity mismatch" `Quick test_bitset_capacity_mismatch;
          prop_bitset_roundtrip;
          prop_bitset_demorgan;
          prop_bitset_hash_equal ] );
      ( "vec",
        [ Alcotest.test_case "push/pop/peek" `Quick test_vec_push_pop;
          Alcotest.test_case "truncate" `Quick test_vec_truncate;
          Alcotest.test_case "floats" `Quick test_vec_float;
          Alcotest.test_case "sub/iter/fold" `Quick test_vec_sub_iter;
          Alcotest.test_case "empty errors" `Quick test_vec_empty_errors;
          prop_vec_roundtrip ] );
      ( "varint",
        [ Alcotest.test_case "examples" `Quick test_varint_examples;
          Alcotest.test_case "truncated input" `Quick test_varint_truncated;
          Alcotest.test_case "overflow rejected" `Quick test_varint_overflow;
          prop_varint_roundtrip;
          prop_varint_list ] );
      ( "crc32",
        [ Alcotest.test_case "check vectors" `Quick test_crc32_vectors;
          Alcotest.test_case "incremental" `Quick test_crc32_incremental;
          Alcotest.test_case "LE footer" `Quick test_crc32_le_bytes;
          Alcotest.test_case "detects bit flip" `Quick test_crc32_detects_flip ] );
      ( "prng",
        [ Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "int bounds" `Quick test_prng_bounds;
          Alcotest.test_case "float range" `Quick test_prng_float_range;
          Alcotest.test_case "shuffle is permutation" `Quick test_prng_shuffle_permutation;
          Alcotest.test_case "split independence" `Quick test_prng_split_independent ] );
      ( "texttable+stats",
        [ Alcotest.test_case "render alignment" `Quick test_texttable_render;
          Alcotest.test_case "ragged rejected" `Quick test_texttable_ragged;
          Alcotest.test_case "heatmap" `Quick test_texttable_heatmap;
          Alcotest.test_case "stats" `Quick test_stats ] ) ]
