(* lib/variational: n-way merge invariants. The two load-bearing
   contracts are (1) the alignment is lossless — every input sequence
   reads back verbatim — and (2) with exactly two runs the merged
   render collapses byte-identically to the classical pairwise diffNLR,
   so vdiff is a strict generalization of what PR 0 shipped. *)

open Difftrace
module V = Variational
module Bitset = Difftrace_util.Bitset

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let mk ?(axes = fun _ -> []) ?(bad = fun _ -> false) seqs =
  List.mapi
    (fun i elems ->
      { V.vr_name = Printf.sprintf "run%d" i;
        vr_elems = elems;
        vr_axes = axes i;
        vr_bad = bad i })
    seqs

(* short alphabets make collisions (shared elements) common, which is
   where alignment logic actually gets exercised *)
let elem_gen = QCheck2.Gen.(map (Printf.sprintf "f%d") (int_range 0 5))
let seq_gen = QCheck2.Gen.(list_size (int_range 0 30) elem_gen)

let seqs_gen k = QCheck2.Gen.(list_size (return k) seq_gen)
let any_seqs_gen = QCheck2.Gen.(int_range 2 6 >>= seqs_gen)

(* --- the qcheck properties ------------------------------------------- *)

let prop_lossless =
  qtest "merge is lossless for every run" any_seqs_gen (fun seqs ->
      let v = V.merge (mk seqs) in
      List.for_all2
        (fun i elems -> V.reconstruct v i = elems)
        (List.init (List.length seqs) Fun.id)
        seqs)

let prop_presence_nonempty =
  qtest "every column's presence set is non-empty and in range" any_seqs_gen
    (fun seqs ->
      let v = V.merge (mk seqs) in
      let n = V.n_runs v in
      Array.for_all
        (fun (_, present) ->
          Bitset.cardinal present > 0
          && List.for_all (fun i -> i >= 0 && i < n) (Bitset.to_list present))
        v.V.columns)

let prop_regions_partition =
  qtest "regions partition the columns in order" any_seqs_gen (fun seqs ->
      let v = V.merge (mk seqs) in
      let rgs = V.regions v in
      (* concatenated region elements = column texts, in order *)
      List.concat_map (fun rg -> rg.V.rg_elems) rgs
      = (Array.to_list v.V.columns |> List.map fst)
      (* adjacent regions differ in presence (maximality) *)
      && fst
           (List.fold_left
              (fun (ok, prev) rg ->
                ( (ok
                  &&
                  match prev with
                  | None -> true
                  | Some p -> not (Bitset.equal p rg.V.rg_present)),
                  Some rg.V.rg_present ))
              (true, None) rgs))

let prop_two_run_diffnlr_identical =
  qtest "2-run merge renders byte-identically to the pairwise diffNLR"
    (seqs_gen 2) (fun seqs ->
      match seqs with
      | [ a; b ] ->
        let v = V.merge (mk seqs) in
        let d =
          match V.to_diffnlr v with
          | Some d -> d
          | None -> failwith "to_diffnlr: expected Some for 2 runs"
        in
        Diffnlr.render d = Diffnlr.render (Diffnlr.of_strings ~normal:a ~faulty:b)
      | _ -> false)

let prop_columns_roundtrip =
  qtest "of_columns (columns_repr v) rebuilds an identical alignment"
    any_seqs_gen (fun seqs ->
      let runs = mk seqs in
      let v = V.merge runs in
      let v' = V.of_columns runs (V.columns_repr v) in
      Array.length v.V.columns = Array.length v'.V.columns
      && Array.for_all2
           (fun (t, p) (t', p') -> t = t' && Bitset.equal p p')
           v.V.columns v'.V.columns)

let prop_condition_exact =
  (* conditions computed over a one-axis family select exactly their
     target: every run's axis value is its own index, so every subset
     of runs is expressible and condition_of must return Axes, and its
     extension must be the target itself *)
  qtest "condition_of is exact when the axes can express the target"
    QCheck2.Gen.(pair (seqs_gen 4) (int_range 1 14))
    (fun (seqs, mask) ->
      let runs = mk ~axes:(fun i -> [ ("run", string_of_int i) ]) seqs in
      let v = V.merge runs in
      let target = Bitset.of_list 4 (List.filter (fun i -> mask land (1 lsl i) <> 0) [ 0; 1; 2; 3 ]) in
      match V.condition_of v ~target with
      | V.Axes [ ("run", vals) ] ->
        List.sort compare vals
        = List.sort compare
            (List.map string_of_int (Bitset.to_list target))
      | _ -> false)

(* --- unit tests ------------------------------------------------------- *)

let test_discriminating_fault_axis () =
  (* 2 faults x 2 seeds + 2 references: the bad runs differ from the
     good ones by one block, and the minimal condition is the fault
     axis alone — the campaign acceptance shape in miniature *)
  let core = [ "init"; "work"; "fini" ] in
  let bad_seq = [ "init"; "work"; "extra"; "fini" ] in
  let axes = [| ("none", 1); ("none", 2); ("f1", 1); ("f1", 2); ("f2", 1); ("f2", 2) |] in
  let seqs = [ core; core; core; core; bad_seq; bad_seq ] in
  let runs =
    mk
      ~axes:(fun i ->
        let f, s = axes.(i) in
        [ ("fault", f); ("seed", string_of_int s) ])
      ~bad:(fun i -> i >= 4)
      seqs
  in
  let v = V.merge runs in
  (match V.discriminating v with
  | Some c -> Alcotest.(check string) "condition" "fault=f2" (V.condition_to_string c)
  | None -> Alcotest.fail "expected a discriminating condition");
  match V.suspects v with
  | sp :: _ ->
    Alcotest.(check bool) "top suspect exact" true sp.V.sp_exact;
    Alcotest.(check string) "suspect condition" "fault=f2"
      (V.condition_to_string sp.V.sp_condition)
  | [] -> Alcotest.fail "expected a suspect region"

let test_condition_multi_axis () =
  (* no single axis separates {f1@s2}: the minimal condition needs the
     conjunction of both *)
  let seqs = [ [ "a" ]; [ "a" ]; [ "a"; "x" ]; [ "a" ] ] in
  let axes = [| ("f1", 1); ("f1", 2); ("f2", 1); ("f2", 2) |] in
  let runs =
    mk
      ~axes:(fun i ->
        let f, s = axes.(i) in
        [ ("fault", f); ("seed", string_of_int s) ])
      seqs
  in
  let v = V.merge runs in
  let c = V.condition_of v ~target:(Bitset.singleton 4 2) in
  Alcotest.(check string) "conjunction" "fault=f2 \xe2\x88\xa7 seed=1"
    (V.condition_to_string c)

let test_condition_named_fallback () =
  (* two runs sharing every axis value cannot be separated by axes:
     the condition falls back to naming the runs *)
  let seqs = [ [ "a"; "x" ]; [ "a" ] ] in
  let runs = mk ~axes:(fun _ -> [ ("fault", "f1") ]) seqs in
  let v = V.merge runs in
  match V.condition_of v ~target:(Bitset.singleton 2 0) with
  | V.Named [ "run0" ] -> ()
  | c -> Alcotest.failf "expected Named [run0], got %s" (V.condition_to_string c)

let test_of_columns_validates () =
  let runs = mk [ [ "a" ]; [ "a" ] ] in
  Alcotest.check_raises "empty presence"
    (Invalid_argument "Variational.of_columns: empty presence") (fun () ->
      ignore (V.of_columns runs [| ("a", []) |]));
  (match V.of_columns runs [| ("a", [ 0; 7 ]) |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range run index accepted")

let test_merge_empty_rejected () =
  match V.merge [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty run list accepted"

let () =
  Alcotest.run "variational"
    [ ( "properties",
        [ prop_lossless;
          prop_presence_nonempty;
          prop_regions_partition;
          prop_two_run_diffnlr_identical;
          prop_columns_roundtrip;
          prop_condition_exact ] );
      ( "conditions",
        [ Alcotest.test_case "discriminating fault axis" `Quick
            test_discriminating_fault_axis;
          Alcotest.test_case "multi-axis conjunction" `Quick
            test_condition_multi_axis;
          Alcotest.test_case "named fallback" `Quick
            test_condition_named_fallback;
          Alcotest.test_case "of_columns validates" `Quick
            test_of_columns_validates;
          Alcotest.test_case "empty merge rejected" `Quick
            test_merge_empty_rejected ] ) ]
