(* MinHash/LSH sketch tier: the probabilistic contracts the sketch-mode
   pipeline rides on, pinned as qcheck properties with explicit failure
   budgets.

   - MinHash error: at the default k, |estimate − exact Jaccard| stays
     within ε for (almost) every pair. k = 64 rows gives a Hoeffding
     bound of 2·exp(−2·64·0.2²) ≈ 1.2% per pair for ε = 0.2, so a 10%
     per-context budget is generous; ε = 0.35 (bound ≈ 3e-7 per pair)
     gets no budget at all.
   - LSH recall: every pair whose exact Jaccard clears the banding
     threshold with margin (0.6 ≫ ~0.177 at the default geometry) lands
     in at least one shared bucket — miss probability (1−0.6²)^32 ≈
     6e-7, so a single miss is a real bug, not noise.
   - Engine/extension identity: [compute_sketch] is a pure function of
     (context, candidates) — bit-identical across sequential and
     parallel engines — and [extend_sketch] over any cold/warm split
     reproduces it bit for bit (candidacy is pairwise in the two
     signatures, so a warm base can never change a verdict). *)

open Difftrace
module Context = Difftrace_fca.Context
module Sketch = Difftrace_cluster.Sketch
module Bitset = Difftrace_util.Bitset
module Prng = Difftrace_util.Prng

let qtest ?(count = 25) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let seed_gen = QCheck2.Gen.(int_range 0 100_000)

(* a random context over a small attribute pool: pair similarities
   spread over the whole [0, 1] range, including empty sets *)
let random_rows rng n =
  let pool =
    Array.init 16 (fun i -> Printf.sprintf "a%d" i)
  in
  List.init n (fun i ->
      let attrs =
        Array.to_list pool |> List.filter (fun _ -> Prng.bool rng)
      in
      (Printf.sprintf "t%d" i, attrs))

let random_context seed =
  let rng = Prng.create seed in
  let n = 2 + Prng.int rng 11 in
  Context.of_attr_sets (random_rows rng n)

(* a clustered context guaranteeing high-similarity pairs: each base
   object is followed by a near-clone (one attribute dropped), J ≥ 8/9 *)
let clustered_context seed =
  let rng = Prng.create seed in
  let n = 1 + Prng.int rng 5 in
  let rows =
    List.concat
      (List.init n (fun i ->
           let attrs =
             List.init 9 (fun j -> Printf.sprintf "g%d.a%d" i j)
           in
           let clone =
             List.filteri (fun j _ -> j <> Prng.int rng 9) attrs
           in
           [ (Printf.sprintf "t%d" i, attrs);
             (Printf.sprintf "t%d'" i, clone) ]))
  in
  Context.of_attr_sets rows

let prop_minhash_error_bounded =
  qtest "MinHash estimate within ε of exact Jaccard (budgeted)" ~count:50
    seed_gen (fun seed ->
      let ctx = random_context seed in
      let n = Context.n_objects ctx in
      let sigs = Sketch.of_context ctx in
      let pairs = ref 0 and over_soft = ref 0 and over_hard = ref 0 in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          incr pairs;
          let err =
            Float.abs (Sketch.estimate sigs.(i) sigs.(j) -. Context.jaccard ctx i j)
          in
          if err > 0.2 then incr over_soft;
          if err > 0.35 then incr over_hard
        done
      done;
      (* ≤ 10% of pairs may exceed ε = 0.2; none may exceed 0.35 *)
      !over_hard = 0
      && float_of_int !over_soft <= 0.1 *. float_of_int (max 1 !pairs))

let prop_lsh_recall_above_threshold =
  qtest "LSH: every pair above J = 0.6 shares a band bucket" ~count:50
    seed_gen (fun seed ->
      let ctx = clustered_context seed in
      let n = Context.n_objects ctx in
      let candidates = Sketch.candidates (Sketch.of_context ctx) in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          if Context.jaccard ctx i j >= 0.6 && not (Bitset.mem candidates.(i) j)
          then ok := false
        done
      done;
      !ok)

let engines = [ Array.init; Engine.init (Engine.parallel ~domains:3 ()) ]

let jsm_bits_equal a b =
  a.Jsm.labels = b.Jsm.labels
  &&
  let ra = Jsm.rows a and rb = Jsm.rows b in
  Array.for_all2
    (Array.for_all2 (fun x y -> Int64.bits_of_float x = Int64.bits_of_float y))
    ra rb

let prop_compute_sketch_engine_identity =
  qtest "compute_sketch bit-identical across engines" ~count:50 seed_gen
    (fun seed ->
      let ctx = random_context seed in
      let candidates = Sketch.candidates (Sketch.of_context ctx) in
      match
        List.map (fun init -> Jsm.compute_sketch ~init ~candidates ctx) engines
      with
      | [ a; b ] -> jsm_bits_equal a b
      | _ -> false)

(* the cold/warm split idiom from test_properties.ml: non-fresh objects
   come from a previously computed base matrix *)
let random_split seed =
  let rng = Prng.create (seed + 7919) in
  let n = 1 + Prng.int rng 12 in
  let rows = random_rows rng n in
  let fresh = Array.init n (fun _ -> Prng.bool rng) in
  (rows, fresh)

let prop_extend_sketch_equals_compute_sketch =
  qtest "extend_sketch == compute_sketch bit-for-bit, seq and parallel"
    ~count:100 seed_gen (fun seed ->
      let rows, fresh = random_split seed in
      let ctx = Context.of_attr_sets rows in
      let candidates = Sketch.candidates (Sketch.of_context ctx) in
      let warm_rows = List.filteri (fun i _ -> not fresh.(i)) rows in
      let warm_ctx = Context.of_attr_sets warm_rows in
      (* the base the store would hold: the warm subset's own sketch
         matrix — same signatures, so same pairwise verdicts *)
      let base =
        Jsm.compute_sketch ~init:Array.init
          ~candidates:(Sketch.candidates (Sketch.of_context warm_ctx))
          warm_ctx
      in
      let expected = Jsm.compute_sketch ~init:Array.init ~candidates ctx in
      List.for_all
        (fun init ->
          jsm_bits_equal expected
            (Jsm.extend_sketch ~init ~base ~fresh ~candidates ctx))
        engines)

let test_estimate_identical_and_disjoint () =
  let ctx =
    Context.of_attr_sets
      [ ("a", [ "x"; "y"; "z" ]); ("b", [ "x"; "y"; "z" ]); ("c", [ "q" ]);
        ("d", []); ("e", []) ]
  in
  let s = Sketch.of_context ctx in
  Alcotest.(check (float 0.0)) "identical sets estimate 1" 1.0
    (Sketch.estimate s.(0) s.(1));
  Alcotest.(check (float 0.0)) "both-empty sets estimate 1 (as Context.jaccard)"
    1.0
    (Sketch.estimate s.(3) s.(4));
  Alcotest.(check bool) "disjoint sets estimate near 0" true
    (Sketch.estimate s.(0) s.(2) < 0.2)

let test_candidates_shape () =
  let ctx =
    Context.of_attr_sets
      [ ("a", [ "x"; "y" ]); ("b", [ "x"; "y" ]); ("c", [ "z" ]) ]
  in
  let c = Sketch.candidates (Sketch.of_context ctx) in
  Alcotest.(check int) "one adjacency row per object" 3 (Array.length c);
  Alcotest.(check bool) "identical pair is a candidate" true (Bitset.mem c.(0) 1);
  Alcotest.(check bool) "adjacency is symmetric" true (Bitset.mem c.(1) 0);
  Alcotest.(check bool) "no self loops" false (Bitset.mem c.(0) 0)

let test_hasher_k_validated () =
  let ctx = Context.of_attr_sets [ ("a", [ "x" ]) ] in
  Alcotest.check_raises "k must be positive"
    (Invalid_argument "Sketch.hasher: k must be positive") (fun () ->
      ignore (Sketch.hasher ~k:0 ctx : int -> Sketch.signature))

let () =
  Alcotest.run "sketch"
    [ ( "minhash",
        [ prop_minhash_error_bounded;
          Alcotest.test_case "estimate endpoints" `Quick
            test_estimate_identical_and_disjoint;
          Alcotest.test_case "hasher validates k" `Quick
            test_hasher_k_validated ] );
      ( "lsh",
        [ prop_lsh_recall_above_threshold;
          Alcotest.test_case "candidate adjacency shape" `Quick
            test_candidates_shape ] );
      ( "jsm",
        [ prop_compute_sketch_engine_identity;
          prop_extend_sketch_equals_compute_sketch ] ) ]
