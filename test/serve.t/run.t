The difftrace-rpc/1 protocol, as an executable transcript. One JSON
object per line: requests carry a client-chosen id echoed on the
response; `ok` payloads carry the report in `output` exactly as the
one-shot CLI prints it; broken lines get structured `error` responses
(with the offending id whenever it can still be recovered) and the
daemon keeps serving.

The scripted session: status on an empty daemon, record two runs,
compare them twice with a status before and after (the counters prove
the repeat re-used every summary), then a malformed line, an unknown
method, an unknown run, an event subscription, and shutdown.

  $ cat > transcript <<'EOF'
  > {"difftrace-rpc":1,"id":"r1","method":"status"}
  > {"difftrace-rpc":1,"id":"r2","method":"record","params":{"workload":"oddeven","np":4,"name":"normal"}}
  > {"difftrace-rpc":1,"id":"r3","method":"record","params":{"workload":"oddeven","np":4,"fault":"swapBug(rank=1,after=2)","name":"faulty"}}
  > {"difftrace-rpc":1,"id":"r4","method":"compare","params":{"normal":"normal","faulty":"faulty"}}
  > {"difftrace-rpc":1,"id":"r5","method":"status"}
  > {"difftrace-rpc":1,"id":"r6","method":"compare","params":{"normal":"normal","faulty":"faulty"}}
  > {"difftrace-rpc":1,"id":"r7","method":"status"}
  > this line is not JSON
  > {"difftrace-rpc":1,"id":"r8","method":"frobnicate"}
  > {"difftrace-rpc":1,"id":"r9","method":"triage","params":{"subject":"nope"}}
  > {"difftrace-rpc":1,"id":"r10","method":"subscribe"}
  > {"difftrace-rpc":1,"id":"r11","method":"triage","params":{"subject":"faulty","limit":3}}
  > {"difftrace-rpc":1,"id":"r12","method":"shutdown"}
  > EOF

  $ difftrace serve --stdio --state state < transcript | tee out-seq.jsonl
  {"difftrace-rpc":1,"id":"r1","ok":{"method":"status","requests":1,"runs":[],"summaries":0,"hits":0,"misses":0,"store":null,"output":"requests: 1\nruns: (none)\nmemo: 0 summaries, 0 hits, 0 misses\nstore: (none)\n"}}
  {"difftrace-rpc":1,"id":"r2","ok":{"method":"record","files":4,"traces":4,"events":128,"hung":0,"run":"normal","output":"archived 4 trace files to state/runs/normal\n"}}
  {"difftrace-rpc":1,"id":"r3","ok":{"method":"record","files":4,"traces":4,"events":128,"hung":0,"run":"faulty","output":"archived 4 trace files to state/runs/faulty\n"}}
  {"difftrace-rpc":1,"id":"r4","ok":{"method":"compare","bscore":1.0,"top_processes":[1,0,2,3],"top_threads":[],"suspects":[{"trace":"1","score":0.50000000000000011},{"trace":"0","score":0.16666666666666674},{"trace":"2","score":0.16666666666666674},{"trace":"3","score":0.16666666666666663}],"output":"configuration: 11.mpiall.K10 / sing.noFreq / ward\nB-score: 1.000\ntop processes: 1, 0, 2, 3\ntop threads:   \nsuspicious traces:\n  1      0.500\n  0      0.167\n  2      0.167\n  3      0.167\n=== diffNLR(1) ===\n    normal        | faulty       \n    --------------+--------------\n  = MPI_Init      | MPI_Init     \n  = MPI_Comm_rank | MPI_Comm_rank\n  = MPI_Comm_size | MPI_Comm_size\n    --------------+--------------\n  ~ L1^4          | L1^2         \n  >               | L0^2         \n    --------------+--------------\n  = MPI_Finalize  | MPI_Finalize \n    --------------+--------------\n  event db: trace 1: first divergence at event 22 (normal: MPI_Recv, faulty: MPI_Send); drill down: difftrace query 'list MPI_Send on 1 in 22..32'\n"}}
  {"difftrace-rpc":1,"id":"r5","ok":{"method":"status","requests":5,"runs":[{"name":"faulty","traces":4},{"name":"normal","traces":4}],"summaries":5,"hits":3,"misses":5,"store":null,"output":"requests: 5\nruns: faulty (4 traces), normal (4 traces)\nmemo: 5 summaries, 3 hits, 5 misses\nstore: (none)\n"}}
  {"difftrace-rpc":1,"id":"r6","ok":{"method":"compare","bscore":1.0,"top_processes":[1,0,2,3],"top_threads":[],"suspects":[{"trace":"1","score":0.50000000000000011},{"trace":"0","score":0.16666666666666674},{"trace":"2","score":0.16666666666666674},{"trace":"3","score":0.16666666666666663}],"output":"configuration: 11.mpiall.K10 / sing.noFreq / ward\nB-score: 1.000\ntop processes: 1, 0, 2, 3\ntop threads:   \nsuspicious traces:\n  1      0.500\n  0      0.167\n  2      0.167\n  3      0.167\n=== diffNLR(1) ===\n    normal        | faulty       \n    --------------+--------------\n  = MPI_Init      | MPI_Init     \n  = MPI_Comm_rank | MPI_Comm_rank\n  = MPI_Comm_size | MPI_Comm_size\n    --------------+--------------\n  ~ L1^4          | L1^2         \n  >               | L0^2         \n    --------------+--------------\n  = MPI_Finalize  | MPI_Finalize \n    --------------+--------------\n  event db: trace 1: first divergence at event 22 (normal: MPI_Recv, faulty: MPI_Send); drill down: difftrace query 'list MPI_Send on 1 in 22..32'\n"}}
  {"difftrace-rpc":1,"id":"r7","ok":{"method":"status","requests":7,"runs":[{"name":"faulty","traces":4},{"name":"normal","traces":4}],"summaries":5,"hits":11,"misses":5,"store":null,"output":"requests: 7\nruns: faulty (4 traces), normal (4 traces)\nmemo: 5 summaries, 11 hits, 5 misses\nstore: (none)\n"}}
  {"difftrace-rpc":1,"id":null,"error":{"kind":"invalid-request","message":"malformed JSON: bad literal true at 0"}}
  {"difftrace-rpc":1,"id":"r8","error":{"kind":"invalid-request","message":"unknown method \"frobnicate\" (methods: record, analyze, compare, triage, query, vdiff, status, subscribe, shutdown)"}}
  {"difftrace-rpc":1,"id":"r9","error":{"kind":"unknown-run","message":"unknown run \"nope\" (registered: faulty, normal)"}}
  {"difftrace-rpc":1,"id":"r10","ok":{"method":"subscribe","events":true,"output":"subscribed to events\n"}}
  {"difftrace-rpc":1,"event":"request","id":"r11","method":"triage"}
  {"difftrace-rpc":1,"id":"r11","ok":{"method":"triage","outliers":[{"trace":"3","score":0.27777777777777779,"truncated":false},{"trace":"2","score":0.16666666666666663,"truncated":false},{"trace":"1","score":0.16666666666666663,"truncated":false},{"trace":"0","score":0.16666666666666663,"truncated":false}],"output":"JSM outliers (most dissimilar traces of this run):\n+-------+---------------+-----------+\n| Trace | Outlier score | Truncated |\n+-------+---------------+-----------+\n| 3     | 0.278         |           |\n| 2     | 0.167         |           |\n| 1     | 0.167         |           |\n+-------+---------------+-----------+\ndendrogram:\n     [0.35]        \n   +----------+    \n[0.00]     [0.17]  \n+------+   +------+\n0      2   1      3\nSTAT-style stack tree (where is everyone now):\n(completed cleanly) [4: 0.0,1.0,2.0,3.0]\n"}}
  {"difftrace-rpc":1,"event":"request","id":"r12","method":"shutdown"}
  {"difftrace-rpc":1,"id":"r12","ok":{"method":"shutdown","output":"daemon stopping\n"}}
  {"difftrace-rpc":1,"event":"shutdown"}

Notes on the transcript above: r4 and r6 differ only in their id — the
warm repeat is byte-identical — and the r5/r7 status pair shows misses
frozen at 5 while hits climbed, i.e. the repeated compare performed
zero fresh summarizations. The unparseable line is answered with
"id":null; r8's id survives even though its method does not exist.

The same transcript under the parallel engine is byte-identical:

  $ rm -rf state
  $ difftrace serve --stdio --state state --engine par < transcript > out-par.jsonl
  $ cmp out-seq.jsonl out-par.jsonl

A socket daemon answers `difftrace client --decode` with exactly the
bytes the one-shot CLI prints for the same analysis:

  $ difftrace serve --socket d.sock 2> serve.log &
  $ difftrace client --socket d.sock --decode -e '{"difftrace-rpc":1,"id":"c1","method":"compare","params":{"normal":{"workload":"oddeven","np":16},"faulty":{"workload":"oddeven","np":16,"fault":"swapBug(rank=5,after=7)"}}}' > daemon.out
  $ difftrace compare -w oddeven --np 16 -f 'swapBug(rank=5,after=7)' > oneshot.out
  $ cmp daemon.out oneshot.out
  $ difftrace client --socket d.sock -e '{"difftrace-rpc":1,"id":"c2","method":"shutdown"}' > /dev/null
  $ wait
  $ cat serve.log
  difftrace serve: listening on d.sock (difftrace-rpc/1)

The query method serves the event DB over the same wire — a fresh
stdio daemon, two archives recorded through it, then drill-down
queries against them (the daemon stays up through a bad query):

  $ rm -rf qstate
  $ cat > qtranscript <<'REQS'
  > {"difftrace-rpc":1,"id":"q1","method":"record","params":{"workload":"oddeven","np":4,"name":"qnormal"}}
  > {"difftrace-rpc":1,"id":"q2","method":"record","params":{"workload":"oddeven","np":4,"fault":"swapBug(rank=1,after=1)","name":"qfaulty"}}
  > {"difftrace-rpc":1,"id":"q3","method":"query","params":{"q":"count MPI_Send","source":{"archive":"qstate/runs/qnormal"}}}
  > {"difftrace-rpc":1,"id":"q4","method":"query","params":{"q":"diverge","source":{"archive":"qstate/runs/qnormal"},"against":{"archive":"qstate/runs/qfaulty"}}}
  > {"difftrace-rpc":1,"id":"q5","method":"query","params":{"q":"total nonsense","source":{"archive":"qstate/runs/qnormal"}}}
  > {"difftrace-rpc":1,"id":"q6","method":"query","params":{"q":"threads"}}
  > {"difftrace-rpc":1,"id":"q7","method":"shutdown"}
  > REQS
  $ difftrace serve --stdio --state qstate < qtranscript
  {"difftrace-rpc":1,"id":"q1","ok":{"method":"record","files":4,"traces":4,"events":128,"hung":0,"run":"qnormal","output":"archived 4 trace files to qstate/runs/qnormal\n"}}
  {"difftrace-rpc":1,"id":"q2","ok":{"method":"record","files":4,"traces":4,"events":128,"hung":0,"run":"qfaulty","output":"archived 4 trace files to qstate/runs/qfaulty\n"}}
  {"difftrace-rpc":1,"id":"q3","ok":{"method":"query","kind":"count","size":12,"warm":false,"output":"calls of MPI_Send: 12\n"}}
  {"difftrace-rpc":1,"id":"q4","ok":{"method":"query","kind":"diverge","size":1,"warm":false,"output":"first divergence: thread 1 at event 16 (4 threads compared)\n+--------+-------+----------+----------+\n| Thread | Event | Normal   | Faulty   |\n+--------+-------+----------+----------+\n| 1      |    16 | MPI_Recv | MPI_Send |\n+--------+-------+----------+----------+\n"}}
  {"difftrace-rpc":1,"id":"q5","error":{"kind":"invalid-params","message":"query: unknown query \"total\"; queries: count F | list F | sites F | loops | diverge | threads | funcs (see MANUAL.md)"}}
  {"difftrace-rpc":1,"id":"q6","error":{"kind":"invalid-params","message":"query: missing source \"source\""}}
  {"difftrace-rpc":1,"id":"q7","ok":{"method":"shutdown","output":"daemon stopping\n"}}
