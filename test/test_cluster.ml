open Difftrace_cluster
module Context = Difftrace_fca.Context

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Linkage                                                             *)
(* ------------------------------------------------------------------ *)

(* hand-checkable 4-point line: 0-1 close, 2-3 close, groups far *)
let line_matrix =
  [| [| 0.; 1.; 8.; 9. |];
     [| 1.; 0.; 7.; 8. |];
     [| 8.; 7.; 0.; 1. |];
     [| 9.; 8.; 1.; 0. |] |]

let test_single_linkage_heights () =
  let t = Linkage.cluster Linkage.Single line_matrix in
  let heights = Array.to_list (Array.map (fun m -> m.Linkage.dist) t.Linkage.merges) in
  Alcotest.(check (list (float 1e-9))) "merge heights" [ 1.0; 1.0; 7.0 ] heights

let test_complete_linkage_heights () =
  let t = Linkage.cluster Linkage.Complete line_matrix in
  let heights = Array.to_list (Array.map (fun m -> m.Linkage.dist) t.Linkage.merges) in
  Alcotest.(check (list (float 1e-9))) "merge heights" [ 1.0; 1.0; 9.0 ] heights

let test_average_linkage_heights () =
  let t = Linkage.cluster Linkage.Average line_matrix in
  let heights = Array.to_list (Array.map (fun m -> m.Linkage.dist) t.Linkage.merges) in
  (* between-group average of {8,9,7,8} = 8 *)
  Alcotest.(check (list (float 1e-9))) "merge heights" [ 1.0; 1.0; 8.0 ] heights

let test_ward_two_points () =
  let m = [| [| 0.; 2. |]; [| 2.; 0. |] |] in
  let t = Linkage.cluster Linkage.Ward m in
  Alcotest.(check int) "one merge" 1 (Array.length t.Linkage.merges);
  Alcotest.(check (float 1e-9)) "height is the distance" 2.0
    t.Linkage.merges.(0).Linkage.dist

let test_merge_sizes () =
  let t = Linkage.cluster Linkage.Ward line_matrix in
  let final = t.Linkage.merges.(Array.length t.Linkage.merges - 1) in
  Alcotest.(check int) "last merge holds all leaves" 4 final.Linkage.size

let test_cut_k () =
  let t = Linkage.cluster Linkage.Average line_matrix in
  Alcotest.(check (array int)) "k=2 groups pairs" [| 0; 0; 1; 1 |] (Linkage.cut_k t 2);
  Alcotest.(check (array int)) "k=4 all singletons" [| 0; 1; 2; 3 |] (Linkage.cut_k t 4);
  Alcotest.(check (array int)) "k=1 one cluster" [| 0; 0; 0; 0 |] (Linkage.cut_k t 1);
  Alcotest.check_raises "k=0 invalid" (Invalid_argument "Linkage.cut_k") (fun () ->
      ignore (Linkage.cut_k t 0))

let test_cut_height () =
  let t = Linkage.cluster Linkage.Single line_matrix in
  Alcotest.(check (array int)) "h=2 groups pairs" [| 0; 0; 1; 1 |]
    (Linkage.cut_height t 2.0);
  Alcotest.(check (array int)) "h=10 everything" [| 0; 0; 0; 0 |]
    (Linkage.cut_height t 10.0);
  Alcotest.(check (array int)) "h=0.5 nothing merged" [| 0; 1; 2; 3 |]
    (Linkage.cut_height t 0.5)

let test_cophenetic () =
  let t = Linkage.cluster Linkage.Single line_matrix in
  let c = Linkage.cophenetic t in
  Alcotest.(check (float 1e-9)) "pair 0-1" 1.0 c.(0).(1);
  Alcotest.(check (float 1e-9)) "cross group" 7.0 c.(0).(3);
  Alcotest.(check (float 1e-9)) "diagonal" 0.0 c.(2).(2)

let test_validation () =
  Alcotest.check_raises "not square" (Invalid_argument "Linkage.cluster: not square")
    (fun () -> ignore (Linkage.cluster Linkage.Single [| [| 0.; 1. |] |]));
  Alcotest.check_raises "asymmetric" (Invalid_argument "Linkage.cluster: not symmetric")
    (fun () ->
      ignore (Linkage.cluster Linkage.Single [| [| 0.; 1. |]; [| 2.; 0. |] |]));
  Alcotest.check_raises "nonzero diagonal"
    (Invalid_argument "Linkage.cluster: nonzero diagonal") (fun () ->
      ignore (Linkage.cluster Linkage.Single [| [| 1. |] |]))

let test_method_names () =
  List.iter
    (fun m ->
      Alcotest.(check bool) "roundtrip" true
        (Linkage.method_of_string (Linkage.method_name m) = m))
    Linkage.all_methods;
  Alcotest.(check int) "seven methods" 7 (List.length Linkage.all_methods)

let dist_gen =
  QCheck2.Gen.(
    let* n = int_range 2 8 in
    let* cells = list_repeat (n * n) (float_bound_inclusive 10.0) in
    let a = Array.of_list cells in
    let m =
      Array.init n (fun i ->
          Array.init n (fun j ->
              if i = j then 0.0
              else
                let x = a.((min i j * n) + max i j) in
                x +. 0.001))
    in
    return m)

let prop_all_methods_terminate =
  qtest "every linkage produces n-1 nondecreasing-size merges" dist_gen (fun m ->
      List.for_all
        (fun meth ->
          let t = Linkage.cluster meth m in
          Array.length t.Linkage.merges = Array.length m - 1
          && t.Linkage.merges.(Array.length t.Linkage.merges - 1).Linkage.size
             = Array.length m)
        Linkage.all_methods)

let prop_single_below_complete =
  qtest "single-linkage heights <= complete-linkage heights" dist_gen (fun m ->
      let hs meth =
        Array.map (fun x -> x.Linkage.dist) (Linkage.cluster meth m).Linkage.merges
      in
      let s = hs Linkage.Single and c = hs Linkage.Complete in
      (* compare the final (root) heights: max pairwise <= is not
         guaranteed stepwise, but the root is *)
      s.(Array.length s - 1) <= c.(Array.length c - 1) +. 1e-9)

let prop_cut_k_counts =
  qtest "cut_k yields exactly k clusters"
    QCheck2.Gen.(pair dist_gen (int_range 1 8))
    (fun (m, k) ->
      let n = Array.length m in
      let k = min k n in
      let t = Linkage.cluster Linkage.Average m in
      let a = Linkage.cut_k t k in
      let distinct = List.sort_uniq Int.compare (Array.to_list a) in
      List.length distinct = k)

(* ------------------------------------------------------------------ *)
(* Dendrogram                                                          *)
(* ------------------------------------------------------------------ *)

let test_dendrogram_structure () =
  let t = Linkage.cluster Linkage.Average line_matrix in
  let tree = Dendrogram.of_linkage t in
  Alcotest.(check (float 1e-9)) "root height" 8.0 (Dendrogram.height tree);
  let order = Dendrogram.leaf_order tree in
  Alcotest.(check int) "all leaves" 4 (List.length order);
  Alcotest.(check (list int)) "sorted leaves" [ 0; 1; 2; 3 ]
    (List.sort Int.compare order);
  (* pairs {0,1} and {2,3} must be adjacent in the leaf order *)
  let pos x = Option.get (List.find_index (Int.equal x) order) in
  Alcotest.(check int) "0 next to 1" 1 (abs (pos 0 - pos 1));
  Alcotest.(check int) "2 next to 3" 1 (abs (pos 2 - pos 3))

let test_dendrogram_single_leaf () =
  let t = Linkage.cluster Linkage.Single [| [| 0.0 |] |] in
  let tree = Dendrogram.of_linkage t in
  Alcotest.(check (list int)) "one leaf" [ 0 ] (Dendrogram.leaf_order tree);
  Alcotest.(check (float 1e-9)) "zero height" 0.0 (Dendrogram.height tree)

let test_dendrogram_render () =
  let t = Linkage.cluster Linkage.Average line_matrix in
  let s = Dendrogram.render ~labels:[| "a"; "b"; "c"; "d" |] t in
  let contains sub =
    let n = String.length sub and h = String.length s in
    let rec go i = i + n <= h && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "labels shown" true
    (contains "a" && contains "d");
  Alcotest.(check bool) "root height annotated" true (contains "[8.00]")

let prop_dendrogram_leaves_permutation =
  qtest "dendrogram leaf order is a permutation of the leaves" dist_gen (fun m ->
      let t = Linkage.cluster Linkage.Ward m in
      let order = Dendrogram.leaf_order (Dendrogram.of_linkage t) in
      List.sort Int.compare order = List.init (Array.length m) (fun i -> i))

let prop_dendrogram_root_height_is_last_merge =
  qtest "dendrogram root height = final merge height" dist_gen (fun m ->
      let t = Linkage.cluster Linkage.Average m in
      let expected =
        t.Linkage.merges.(Array.length t.Linkage.merges - 1).Linkage.dist
      in
      Float.abs (Dendrogram.height (Dendrogram.of_linkage t) -. expected) < 1e-9)

(* ------------------------------------------------------------------ *)
(* B-score                                                             *)
(* ------------------------------------------------------------------ *)

let test_bk_identical () =
  Alcotest.(check (float 1e-9)) "identical clusterings" 1.0
    (Bscore.bk_of_assignments [| 0; 0; 1; 1 |] [| 1; 1; 0; 0 |])

let test_bk_disjoint () =
  Alcotest.(check (float 1e-9)) "orthogonal clusterings" 0.0
    (Bscore.bk_of_assignments [| 0; 0; 1; 1 |] [| 0; 1; 0; 1 |])

let test_bk_all_singletons () =
  Alcotest.(check (float 1e-9)) "singletons carry no information" 1.0
    (Bscore.bk_of_assignments [| 0; 1; 2 |] [| 2; 1; 0 |])

let test_score_self () =
  let t = Linkage.cluster Linkage.Average line_matrix in
  Alcotest.(check (float 1e-9)) "B(x,x) = 1" 1.0 (Bscore.score t t)

let test_score_differs () =
  let t1 = Linkage.cluster Linkage.Average line_matrix in
  (* a matrix grouping 0-2 and 1-3 instead *)
  let m2 =
    [| [| 0.; 8.; 1.; 9. |];
       [| 8.; 0.; 9.; 1. |];
       [| 1.; 9.; 0.; 8. |];
       [| 9.; 1.; 8.; 0. |] |]
  in
  let t2 = Linkage.cluster Linkage.Average m2 in
  let s = Bscore.score t1 t2 in
  Alcotest.(check bool) "restructured clustering scores below 1" true (s < 1.0);
  Alcotest.(check bool) "and is nonnegative" true (s >= 0.0)

let test_series_range () =
  let t = Linkage.cluster Linkage.Average line_matrix in
  let series = Bscore.series t t in
  Alcotest.(check (list int)) "k ranges 2..n-1" [ 2; 3 ] (List.map fst series)

let test_bk_mismatch () =
  Alcotest.check_raises "leaf count mismatch"
    (Invalid_argument "Bscore: leaf count mismatch") (fun () ->
      ignore (Bscore.bk_of_assignments [| 0 |] [| 0; 1 |]))

let prop_bscore_bounds =
  qtest "B-score in [0, 1] and B(x,x)=1"
    QCheck2.Gen.(pair dist_gen dist_gen)
    (fun (m1, m2) ->
      let n = min (Array.length m1) (Array.length m2) in
      let shrink m = Array.map (fun r -> Array.sub r 0 n) (Array.sub m 0 n) in
      let t1 = Linkage.cluster Linkage.Ward (shrink m1) in
      let t2 = Linkage.cluster Linkage.Ward (shrink m2) in
      let s = Bscore.score t1 t2 in
      s >= -1e-9 && s <= 1.0 +. 1e-9 && Bscore.score t1 t1 = 1.0)

(* ------------------------------------------------------------------ *)
(* JSM                                                                 *)
(* ------------------------------------------------------------------ *)

let ctx l = Context.of_attr_sets l

let test_jsm_of_context () =
  let j =
    Jsm.of_context
      (ctx [ ("a", [ "x"; "y" ]); ("b", [ "x"; "y" ]); ("c", [ "z" ]) ])
  in
  Alcotest.(check int) "size" 3 (Jsm.size j);
  Alcotest.(check (float 1e-9)) "identical objects" 1.0 (Jsm.get j 0 1);
  Alcotest.(check (float 1e-9)) "disjoint objects" 0.0 (Jsm.get j 0 2);
  Alcotest.(check (float 1e-9)) "diagonal" 1.0 (Jsm.get j 2 2)

let test_jsm_diff_aligns_labels () =
  let a = Jsm.of_context (ctx [ ("t0", [ "x" ]); ("t1", [ "x" ]); ("t2", [ "y" ]) ]) in
  let b = Jsm.of_context (ctx [ ("t0", [ "x" ]); ("t2", [ "x" ]) ]) in
  let d = Jsm.diff a b in
  Alcotest.(check (array string)) "common labels only" [| "t0"; "t2" |] d.Jsm.labels;
  (* a: J(t0,t2)=0; b: J(t0,t2)=1 -> |diff| = 1 *)
  Alcotest.(check (float 1e-9)) "restructured pair" 1.0 (Jsm.get d 0 1);
  Alcotest.(check (float 1e-9)) "row change" 1.0 (Jsm.row_change d 0)

let test_jsm_diff_self_zero () =
  let a = Jsm.of_context (ctx [ ("t0", [ "x" ]); ("t1", [ "y" ]) ]) in
  let d = Jsm.diff a a in
  Alcotest.(check (float 1e-9)) "self diff zero" 0.0 (Jsm.row_change d 0)

let test_jsm_to_distance () =
  let a = Jsm.of_context (ctx [ ("t0", [ "x" ]); ("t1", [ "x" ]) ]) in
  let d = Jsm.to_distance a in
  Alcotest.(check (float 1e-9)) "distance = 1 - sim" 0.0 (Jsm.get d 0 1);
  Alcotest.(check (float 1e-9)) "self distance" 0.0 (Jsm.get d 0 0)

let test_jsm_heatmap () =
  let a = Jsm.of_context (ctx [ ("t0", [ "x" ]); ("t1", [ "y" ]) ]) in
  let s = Jsm.heatmap a in
  Alcotest.(check bool) "renders" true (String.length s > 20)

let test_jsm_align_partial_overlap () =
  (* alignment restricted to the label intersection, in first-matrix
     order — the hand-assembled records exercise [align] away from the
     [of_context] invariants *)
  let a =
    Jsm.of_dense ~labels:[| "a"; "b"; "c" |]
      [| [| 1.0; 0.5; 0.2 |]; [| 0.5; 1.0; 0.4 |]; [| 0.2; 0.4; 1.0 |] |]
  in
  let b =
    Jsm.of_dense ~labels:[| "c"; "b"; "d" |]
      [| [| 1.0; 0.1; 0.0 |]; [| 0.1; 1.0; 0.3 |]; [| 0.0; 0.3; 1.0 |] |]
  in
  let a', b' = Jsm.align a b in
  Alcotest.(check (array string)) "intersection, a-order" [| "b"; "c" |]
    a'.Jsm.labels;
  Alcotest.(check (float 1e-9)) "a cell picked" 0.4 (Jsm.get a' 0 1);
  Alcotest.(check (float 1e-9)) "b cell picked (b-indices)" 0.1 (Jsm.get b' 0 1)

let test_jsm_align_ragged_rejected () =
  (* malformed matrices (the partially-failed campaign cell case) are
     diagnosed by name at construction, not as a bare out-of-bounds;
     label/dimension drift is still caught at align time *)
  Alcotest.check_raises "missing row named"
    (Invalid_argument "Jsm.of_dense: 2 labels but 1 rows")
    (fun () ->
      ignore (Jsm.of_dense ~labels:[| "a"; "b" |] [| [| 1.0; 0.0 |] |]));
  Alcotest.check_raises "short row named"
    (Invalid_argument
       "Jsm.of_dense: row 1 (label \"b\") has 1 columns, expected 2")
    (fun () ->
      ignore
        (Jsm.of_dense ~labels:[| "a"; "b" |] [| [| 1.0; 0.0 |]; [| 0.0 |] |]));
  let ok = Jsm.of_dense ~labels:[| "a"; "b" |] [| [| 1.0; 0.0 |]; [| 0.0; 1.0 |] |] in
  let drifted = { ok with Jsm.labels = [| "a" |] } in
  Alcotest.check_raises "label/dimension drift named"
    (Invalid_argument "Jsm.align: second matrix has 1 labels but 2 rows")
    (fun () -> ignore (Jsm.align ok drifted))

let test_jsm_diff_disjoint_labels () =
  (* no common labels: an empty (but well-formed) diff, not a crash *)
  let a = Jsm.of_context (ctx [ ("t0", [ "x" ]) ]) in
  let b = Jsm.of_context (ctx [ ("t9", [ "x" ]) ]) in
  let d = Jsm.diff a b in
  Alcotest.(check int) "empty alignment" 0 (Array.length d.Jsm.labels)

let test_jsm_empty_matrix_views () =
  (* regression: heatmap and row_change once indexed into the 0-trace
     matrix that diffing label-disjoint runs produces *)
  let a = Jsm.of_context (ctx [ ("t0", [ "x" ]) ]) in
  let b = Jsm.of_context (ctx [ ("t9", [ "x" ]) ]) in
  let d = Jsm.diff a b in
  Alcotest.(check string) "heatmap placeholder" "(no traces)\n" (Jsm.heatmap d);
  Alcotest.(check (float 1e-9)) "row change on empty" 0.0 (Jsm.row_change d 0)

let () =
  Alcotest.run "cluster"
    [ ( "linkage",
        [ Alcotest.test_case "single heights" `Quick test_single_linkage_heights;
          Alcotest.test_case "complete heights" `Quick test_complete_linkage_heights;
          Alcotest.test_case "average heights" `Quick test_average_linkage_heights;
          Alcotest.test_case "ward two points" `Quick test_ward_two_points;
          Alcotest.test_case "merge sizes" `Quick test_merge_sizes;
          Alcotest.test_case "cut_k" `Quick test_cut_k;
          Alcotest.test_case "cut_height" `Quick test_cut_height;
          Alcotest.test_case "cophenetic" `Quick test_cophenetic;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "method names" `Quick test_method_names;
          prop_all_methods_terminate;
          prop_single_below_complete;
          prop_cut_k_counts ] );
      ( "dendrogram",
        [ Alcotest.test_case "structure" `Quick test_dendrogram_structure;
          Alcotest.test_case "single leaf" `Quick test_dendrogram_single_leaf;
          Alcotest.test_case "render" `Quick test_dendrogram_render;
          prop_dendrogram_leaves_permutation;
          prop_dendrogram_root_height_is_last_merge ] );
      ( "bscore",
        [ Alcotest.test_case "identical" `Quick test_bk_identical;
          Alcotest.test_case "orthogonal" `Quick test_bk_disjoint;
          Alcotest.test_case "singleton convention" `Quick test_bk_all_singletons;
          Alcotest.test_case "score self" `Quick test_score_self;
          Alcotest.test_case "score differs" `Quick test_score_differs;
          Alcotest.test_case "series range" `Quick test_series_range;
          Alcotest.test_case "mismatch rejected" `Quick test_bk_mismatch;
          prop_bscore_bounds ] );
      ( "jsm",
        [ Alcotest.test_case "of_context" `Quick test_jsm_of_context;
          Alcotest.test_case "diff aligns labels" `Quick test_jsm_diff_aligns_labels;
          Alcotest.test_case "self diff zero" `Quick test_jsm_diff_self_zero;
          Alcotest.test_case "to_distance" `Quick test_jsm_to_distance;
          Alcotest.test_case "heatmap" `Quick test_jsm_heatmap;
          Alcotest.test_case "align partial overlap" `Quick
            test_jsm_align_partial_overlap;
          Alcotest.test_case "align ragged rejected" `Quick
            test_jsm_align_ragged_rejected;
          Alcotest.test_case "diff disjoint labels" `Quick
            test_jsm_diff_disjoint_labels;
          Alcotest.test_case "empty matrix views" `Quick
            test_jsm_empty_matrix_views ] ) ]
