(* The resident daemon and its difftrace-rpc/1 protocol.

   Four layers of guarantees:
     - protocol: total, round-tripping encode/decode; malformed,
       oversized and adversarial lines always yield a structured error
       carrying the best-effort request id (decoder hardening);
     - daemon core (transport-free on_line): responses byte-identical
       to driving the Session API directly, two interleaved clients
       multiplex over one warm session, a repeated compare performs
       zero fresh summarizations (the memo counters prove it);
     - kill-and-restart: a daemon dropped without ceremony after its
       per-request flush restarts on the same store fully warm;
     - a real Unix-socket round-trip over serve_socket/Client. *)

open Difftrace
module P = Serve.Protocol
module Daemon = Serve.Daemon
module R = Runtime

let tmpdir name =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ()) ("difftrace_serve_" ^ name)
  in
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  dir

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let swap_fault = "swapBug(rank=3,after=2)"

let compare_req ?(id = "r") ?engine () =
  Printf.sprintf
    {|{"difftrace-rpc":1,"id":"%s","method":"compare","params":{"normal":{"workload":"oddeven","np":6},"faulty":{"workload":"oddeven","np":6,"fault":"%s"}%s}}|}
    id swap_fault
    (match engine with
    | None -> ""
    | Some e -> Printf.sprintf {|,"config":{"engine":"%s"}|} e)

(* drive a daemon core directly, collecting emitted lines per client *)
let drive d lines =
  let out = Hashtbl.create 4 in
  let emit (Daemon.Send { client; line }) =
    let prev = Option.value ~default:[] (Hashtbl.find_opt out client) in
    Hashtbl.replace out client (line :: prev)
  in
  let last =
    List.fold_left
      (fun _ (client, line) -> Daemon.on_line d ~client ~emit line)
      `Continue lines
  in
  (last, fun client ->
     List.rev (Option.value ~default:[] (Hashtbl.find_opt out client)))

let decode_ok line =
  match P.decode_response line with
  | Ok { P.rsp_body = Ok p; _ } -> p
  | Ok { P.rsp_body = Error e; _ } ->
    Alcotest.failf "error response: %s: %s" e.P.err_kind e.P.err_message
  | Error m -> Alcotest.failf "undecodable response: %s" m

let decode_err line =
  match P.decode_response line with
  | Ok { P.rsp_id; rsp_body = Error e } -> (rsp_id, e)
  | Ok { P.rsp_body = Ok _; _ } -> Alcotest.fail "expected an error response"
  | Error m -> Alcotest.failf "undecodable response: %s" m

let output_of line = P.payload_output (decode_ok line)
let misses d = (Memo.stats (Session.memo (Daemon.session d))).Memo.misses

(* what the one-shot CLI prints for the same compare, via the same
   session API the daemon serves *)
let oneshot_compare () =
  let normal, _ = Workloads.Odd_even.run ~np:6 ~fault:Fault.No_fault () in
  let faulty, _ =
    Workloads.Odd_even.run ~np:6 ~fault:(Fault.of_string swap_fault) ()
  in
  let r =
    match
      Session.compare (Session.create ()) Config.default
        { Session.cp_normal = Session.Traces normal.R.traces;
          cp_faulty = Session.Traces faulty.R.traces;
          cp_diffnlr = None }
    with
    | Ok r -> r
    | Error e -> Alcotest.fail (Session.error_to_string e)
  in
  r.Session.cp_output

(* --- protocol: round-trip -------------------------------------------- *)

let sample_requests =
  [ { P.req_id = "a1";
      req_call =
        P.Record
          { rq_workload =
              { P.ws_workload = "oddeven"; ws_np = 4; ws_seed = 2;
                ws_fault = "none"; ws_all_images = false };
            rq_name = Some "normal";
            rq_out = None;
            rq_v1 = true } };
    { P.req_id = "a2";
      req_call =
        P.Compare
          { rq_normal = P.Src_run "normal";
            rq_faulty = P.Src_archive { dir = "x/y"; salvage = true };
            rq_config =
              { P.default_config with
                pc_k = 50;
                pc_custom = [ "main|solve" ];
                pc_engine = Some "parallel:2" };
            rq_diffnlr = Some "5.1" } };
    { P.req_id = "a3";
      req_call =
        P.Analyze
          { rq_normal = P.Src_archive { dir = "n"; salvage = false };
            rq_faulty = P.Src_run "f";
            rq_config = P.default_config;
            rq_diffnlr = None } };
    { P.req_id = "a4";
      req_call =
        P.Triage
          { rq_subject =
              P.Src_workload
                { P.ws_workload = "lulesh"; ws_np = 8; ws_seed = 1;
                  ws_fault = "skipFunction(rank=2,func=LagrangeLeapFrog)";
                  ws_all_images = true };
            rq_config = P.default_config;
            rq_limit = 4 } };
    { P.req_id = "a5"; req_call = P.Status };
    { P.req_id = "a6"; req_call = P.Subscribe { rq_events = false } };
    { P.req_id = "a7"; req_call = P.Shutdown } ]

let test_request_round_trip () =
  List.iter
    (fun r ->
      match P.decode_request (P.encode_request r) with
      | Ok r' -> Alcotest.(check bool) (P.method_name r.P.req_call) true (r = r')
      | Error (_, e) ->
        Alcotest.failf "decode failed for %s: %s" (P.method_name r.P.req_call)
          (Session.error_to_string e))
    sample_requests

let sample_payloads =
  [ P.P_record
      { pr_files = 8; pr_traces = 8; pr_events = 448; pr_hung = 0;
        pr_run = Some "normal"; pr_output = "archived 8 trace files to x\n" };
    P.P_report
      { pr_style = `Compare; pr_bscore = 0.794; pr_top_processes = [ 5; 0 ];
        pr_top_threads = [ "5.1" ];
        pr_suspects = [ ("5", 2.5); ("10", 0.125) ];
        pr_output = "B-score: 0.794\n" };
    P.P_report
      { pr_style = `Analyze; pr_bscore = 1.0; pr_top_processes = [];
        pr_top_threads = []; pr_suspects = []; pr_output = "" };
    P.P_triage
      { pr_outliers = [ ("2", 0.286, true); ("0", 0.0, false) ];
        pr_output = "JSM outliers\n" };
    P.P_status
      { pr_requests = 3; pr_runs = [ ("normal", 8) ]; pr_summaries = 5;
        pr_hits = 47; pr_misses = 17; pr_store = Some (5, 2);
        pr_output = "requests: 3\n" };
    P.P_status
      { pr_requests = 0; pr_runs = []; pr_summaries = 0; pr_hits = 0;
        pr_misses = 0; pr_store = None; pr_output = "" };
    P.P_subscribe { pr_events = true; pr_output = "subscribed to events\n" };
    P.P_shutdown { pr_output = "daemon stopping\n" } ]

let test_response_round_trip () =
  List.iter
    (fun p ->
      let r = { P.rsp_id = Some "id-1"; rsp_body = Ok p } in
      match P.decode_response (P.encode_response r) with
      | Ok r' -> Alcotest.(check bool) "response" true (r = r')
      | Error m -> Alcotest.fail m)
    sample_payloads;
  let err =
    P.error_response ~id:None (Session.Protocol "bad line \"quoted\"\n")
  in
  match P.decode_response (P.encode_response err) with
  | Ok r' -> Alcotest.(check bool) "error response" true (err = r')
  | Error m -> Alcotest.fail m

let test_event_round_trip () =
  let ev =
    { P.ev_name = "request";
      ev_fields =
        [ ("id", P.Json.String "r1"); ("method", P.Json.String "compare") ] }
  in
  match P.decode_message (P.encode_event ev) with
  | Ok (P.Event ev') -> Alcotest.(check bool) "event" true (ev = ev')
  | Ok (P.Response _) -> Alcotest.fail "expected an event"
  | Error m -> Alcotest.fail m

(* --- protocol: decoder hardening -------------------------------------- *)

let expect_err ~id line =
  match P.decode_request line with
  | Ok _ -> Alcotest.failf "accepted: %s" line
  | Error (got_id, e) ->
    Alcotest.(check (option string)) "recovered id" id got_id;
    e

let test_decoder_hardening () =
  (* malformed JSON still yields the offending request id *)
  (match expect_err ~id:(Some "r9") {|{"id":"r9", this is not json|} with
  | Session.Protocol _ -> ()
  | e -> Alcotest.failf "wrong error: %s" (Session.error_to_string e));
  (* id with escapes is recovered lexically *)
  (match expect_err ~id:(Some {|q"x|}) {|{"id":"q\"x", nope|} with
  | Session.Protocol _ -> ()
  | _ -> Alcotest.fail "wrong error");
  ignore (expect_err ~id:None "");
  ignore (expect_err ~id:None "[1,2,3]");
  ignore (expect_err ~id:None {|{"difftrace-rpc":1,"method":"status"}|});
  (* version checks *)
  (match
     expect_err ~id:(Some "v") {|{"difftrace-rpc":99,"id":"v","method":"status"}|}
   with
  | Session.Protocol m ->
    Alcotest.(check bool) "names the version" true (contains ~sub:"version" m)
  | _ -> Alcotest.fail "wrong error");
  ignore (expect_err ~id:(Some "nv") {|{"id":"nv","method":"status"}|});
  (* unknown method, bad params *)
  (match
     expect_err ~id:(Some "m") {|{"difftrace-rpc":1,"id":"m","method":"frob"}|}
   with
  | Session.Protocol _ -> ()
  | _ -> Alcotest.fail "wrong error");
  (match
     expect_err ~id:(Some "p")
       {|{"difftrace-rpc":1,"id":"p","method":"compare","params":{"normal":7,"faulty":"f"}}|}
   with
  | Session.Invalid _ -> ()
  | _ -> Alcotest.fail "wrong error");
  (* a numeric id is not a string id *)
  ignore (expect_err ~id:None {|{"difftrace-rpc":1,"id":7,"method":"status"}|})

let test_oversized_line () =
  let pad = String.make (P.max_line_bytes + 10) 'x' in
  let line =
    Printf.sprintf
      {|{"difftrace-rpc":1,"id":"big","method":"status","pad":"%s"}|} pad
  in
  match P.decode_request line with
  | Ok _ -> Alcotest.fail "oversized line accepted"
  | Error (id, Session.Protocol m) ->
    Alcotest.(check (option string)) "id survives the cap" (Some "big") id;
    Alcotest.(check bool) "message names the cap" true
      (contains ~sub:(string_of_int P.max_line_bytes) m)
  | Error (_, e) -> Alcotest.failf "wrong error: %s" (Session.error_to_string e)

(* the daemon answers garbage with errors and keeps serving *)
let test_daemon_survives_garbage () =
  let d = Daemon.create ~default_engine:Engine.Sequential () in
  let last, out =
    drive d
      [ (0, "not json at all");
        (0, {|{"difftrace-rpc":1,"id":"u","method":"frob"}|});
        (0, {|{"difftrace-rpc":1,"id":"w","method":"compare","params":{}}|});
        (0, {|{"difftrace-rpc":1,"id":"ok","method":"status"}|}) ]
  in
  Alcotest.(check bool) "still serving" true (last = `Continue);
  let lines = out 0 in
  Alcotest.(check int) "four replies" 4 (List.length lines);
  List.iteri
    (fun i (id, kind) ->
      let got_id, e = decode_err (List.nth lines i) in
      Alcotest.(check (option string)) "id echoed" id got_id;
      Alcotest.(check string) "error kind" kind e.P.err_kind)
    [ (None, "invalid-request"); (Some "u", "invalid-request");
      (Some "w", "invalid-params") ];
  (match P.decode_response (List.nth lines 3) with
  | Ok { P.rsp_id = Some "ok"; rsp_body = Ok (P.P_status _) } -> ()
  | _ -> Alcotest.fail "status after garbage should succeed")

(* --- daemon core: byte-identity and warm multiplexing ----------------- *)

let test_interleaved_clients_warm () =
  let expected = oneshot_compare () in
  let d = Daemon.create ~default_engine:Engine.Sequential () in
  let triage_line ~id =
    Printf.sprintf
      {|{"difftrace-rpc":1,"id":"%s","method":"triage","params":{"subject":{"workload":"oddeven","np":6,"fault":"%s"},"limit":4}}|}
      id swap_fault
  in
  (* two clients interleaved against one warm daemon *)
  let last, out =
    drive d
      [ (1, compare_req ~id:"c1" ());
        (2, compare_req ~id:"c2" ());
        (1, triage_line ~id:"t1");
        (2, triage_line ~id:"t2");
        (1, {|{"difftrace-rpc":1,"id":"s1","method":"status"}|}) ]
  in
  Alcotest.(check bool) "still serving" true (last = `Continue);
  let c1 = output_of (List.nth (out 1) 0) in
  let c2 = output_of (List.nth (out 2) 0) in
  Alcotest.(check string) "client 1 compare == one-shot CLI" expected c1;
  Alcotest.(check string) "client 2 compare == client 1" c1 c2;
  let t1 = output_of (List.nth (out 1) 1) in
  let t2 = output_of (List.nth (out 2) 1) in
  Alcotest.(check string) "interleaved triages agree" t1 t2;
  (* the status payload reports the one shared memo truthfully *)
  match P.decode_response (List.nth (out 1) 2) with
  | Ok { P.rsp_body = Ok (P.P_status { pr_requests; pr_misses; _ }); _ } ->
    Alcotest.(check int) "status counts every request (itself included)" 5
      pr_requests;
    Alcotest.(check int) "status reports the shared memo" (misses d) pr_misses
  | _ -> Alcotest.fail "status failed"

let test_repeat_compare_zero_summarizations () =
  let d = Daemon.create ~default_engine:Engine.Sequential () in
  let _, out1 = drive d [ (0, compare_req ~id:"c1" ()) ] in
  let first = output_of (List.nth (out1 0) 0) in
  let after_first = misses d in
  let _, out2 = drive d [ (0, compare_req ~id:"c2" ()) ] in
  let second = output_of (List.nth (out2 0) 0) in
  Alcotest.(check string) "warm repeat is byte-identical" first second;
  Alcotest.(check int) "zero summarizations on the warm repeat" after_first
    (misses d);
  Alcotest.(check bool) "the first compare did summarize" true (after_first > 0)

(* same requests under both engines: byte-identical response lines *)
let test_engine_identical_responses () =
  let run engine =
    let d = Daemon.create ~default_engine:Engine.Sequential () in
    let _, out =
      drive d
        [ (0, compare_req ~id:"e1" ~engine ());
          (0, {|{"difftrace-rpc":1,"id":"e2","method":"status"}|}) ]
    in
    out 0
  in
  List.iter2
    (fun a b -> Alcotest.(check string) "seq == par" a b)
    (run "sequential") (run "parallel:2")

(* --- record / subscribe / events -------------------------------------- *)

let test_record_subscribe_events () =
  let state = tmpdir "state" in
  let d = Daemon.create ~state_dir:state ~default_engine:Engine.Sequential () in
  let _, out =
    drive d
      [ (0, {|{"difftrace-rpc":1,"id":"sub","method":"subscribe"}|});
        ( 0,
          {|{"difftrace-rpc":1,"id":"rec","method":"record","params":{"workload":"oddeven","np":4,"name":"normal"}}|}
        );
        ( 0,
          {|{"difftrace-rpc":1,"id":"cmp","method":"compare","params":{"normal":"normal","faulty":{"run":"normal"}}}|}
        ) ]
  in
  let lines = out 0 in
  (match P.decode_response (List.hd lines) with
  | Ok { P.rsp_body = Ok (P.P_subscribe { pr_events = true; _ }); _ } -> ()
  | _ -> Alcotest.fail "subscribe failed");
  (* after subscribing: per-request events interleave with responses *)
  let events, responses =
    List.partition
      (fun l ->
        match P.decode_message l with Ok (P.Event _) -> true | _ -> false)
      (List.tl lines)
  in
  Alcotest.(check bool) "events were pushed" true (List.length events >= 2);
  (match P.decode_message (List.hd events) with
  | Ok (P.Event { ev_name = "request"; _ }) -> ()
  | _ -> Alcotest.fail "first event should be request");
  (match P.decode_response (List.hd responses) with
  | Ok { P.rsp_body = Ok (P.P_record { pr_files; pr_run; pr_output; _ }); _ } ->
    Alcotest.(check int) "archived files" 4 pr_files;
    Alcotest.(check (option string)) "registered" (Some "normal") pr_run;
    Alcotest.(check bool) "archived under the state dir" true
      (contains ~sub:"runs" pr_output)
  | _ -> Alcotest.fail "record failed");
  (* the run resolves, as bare-string and object source specs alike *)
  match P.decode_response (List.nth responses 1) with
  | Ok { P.rsp_body = Ok (P.P_report { pr_style = `Compare; _ }); _ } -> ()
  | _ -> Alcotest.fail "compare on the recorded run failed"

let test_unknown_run_error () =
  let d = Daemon.create ~default_engine:Engine.Sequential () in
  let _, out =
    drive d
      [ ( 0,
          {|{"difftrace-rpc":1,"id":"x","method":"triage","params":{"subject":"nope"}}|}
        ) ]
  in
  let id, e = decode_err (List.hd (out 0)) in
  Alcotest.(check (option string)) "id echoed" (Some "x") id;
  Alcotest.(check string) "kind" "unknown-run" e.P.err_kind

(* --- kill-and-restart: the store re-adopts warm ------------------------ *)

let test_kill_and_restart_warm () =
  let dir = tmpdir "restart" in
  let boot () =
    match Store.load ~dir with
    | Ok st -> Daemon.create ~store:st ~default_engine:Engine.Sequential ()
    | Error e -> Alcotest.fail (Store.error_to_string e)
  in
  let d1 = boot () in
  let _, out1 = drive d1 [ (0, compare_req ~id:"k1" ()) ] in
  let first = output_of (List.hd (out1 0)) in
  Alcotest.(check bool) "cold daemon summarized" true (misses d1 > 0);
  (* no shutdown, no explicit flush: the daemon is "killed" here; the
     per-request flush already persisted the store *)
  let d2 = boot () in
  let _, out2 = drive d2 [ (0, compare_req ~id:"k2" ()) ] in
  let second = output_of (List.hd (out2 0)) in
  Alcotest.(check string) "restarted daemon is byte-identical" first second;
  Alcotest.(check int) "restart is cold-start-free: zero summarizations" 0
    (misses d2)

(* --- shutdown ---------------------------------------------------------- *)

let test_shutdown () =
  let d = Daemon.create ~default_engine:Engine.Sequential () in
  let last, out =
    drive d [ (0, {|{"difftrace-rpc":1,"id":"bye","method":"shutdown"}|}) ]
  in
  Alcotest.(check bool) "stops" true (last = `Shutdown);
  match P.decode_response (List.hd (out 0)) with
  | Ok { P.rsp_id = Some "bye"; rsp_body = Ok (P.P_shutdown _) } -> ()
  | _ -> Alcotest.fail "shutdown response"

(* --- a real socket round-trip ------------------------------------------ *)

let test_socket_round_trip () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "difftrace_serve_%d.sock" (Unix.getpid ()))
  in
  if Sys.file_exists path then Sys.remove path;
  let d = Daemon.create ~default_engine:Engine.Sequential () in
  let th = Thread.create (fun () -> Daemon.serve_socket d ~path) () in
  let conn =
    match Serve.Client.connect ~path () with
    | Ok c -> c
    | Error m -> Alcotest.fail m
  in
  let rpc line =
    match Serve.Client.rpc conn line ~on_event:(fun _ -> ()) with
    | Ok r -> r
    | Error m -> Alcotest.fail m
  in
  (match rpc {|{"difftrace-rpc":1,"id":"s1","method":"status"}|} with
  | { P.rsp_id = Some "s1"; rsp_body = Ok (P.P_status _) } -> ()
  | _ -> Alcotest.fail "unexpected status reply");
  (match rpc {|{"difftrace-rpc":1,"id":"s2","method":"shutdown"}|} with
  | { P.rsp_body = Ok (P.P_shutdown _); _ } -> ()
  | _ -> Alcotest.fail "unexpected shutdown reply");
  Serve.Client.close conn;
  Thread.join th;
  Alcotest.(check bool) "socket removed" false (Sys.file_exists path)

(* a raising accept must cost one counter tick, never the daemon: the
   select loop used to die on the first transient ECONNABORTED *)
let test_accept_failure_survived () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "difftrace_serve_acc_%d.sock" (Unix.getpid ()))
  in
  if Sys.file_exists path then Sys.remove path;
  let failures = ref 1 in
  let accept fd =
    if !failures > 0 then begin
      decr failures;
      raise (Unix.Unix_error (Unix.ECONNABORTED, "accept", ""))
    end
    else Unix.accept fd
  in
  let d = Daemon.create ~default_engine:Engine.Sequential () in
  Difftrace_obs.Telemetry.enable ();
  let th = Thread.create (fun () -> Daemon.serve_socket ~accept d ~path) () in
  (* the injected raise happens before the real accept, so the pending
     connection stays queued on the listen socket: the very same client
     is served once the loop survives and retries *)
  let rec connect tries =
    match Serve.Client.connect ~path () with
    | Ok c -> c
    | Error _ when tries > 0 ->
      Unix.sleepf 0.02;
      connect (tries - 1)
    | Error m -> Alcotest.fail m
  in
  let conn = connect 50 in
  let rpc line =
    match Serve.Client.rpc conn line ~on_event:(fun _ -> ()) with
    | Ok r -> r
    | Error m -> Alcotest.fail m
  in
  (match rpc {|{"difftrace-rpc":1,"id":"a1","method":"status"}|} with
  | { P.rsp_id = Some "a1"; rsp_body = Ok (P.P_status _) } -> ()
  | _ -> Alcotest.fail "daemon did not serve after the accept failure");
  (match rpc {|{"difftrace-rpc":1,"id":"a2","method":"shutdown"}|} with
  | { P.rsp_body = Ok (P.P_shutdown _); _ } -> ()
  | _ -> Alcotest.fail "unexpected shutdown reply");
  Serve.Client.close conn;
  Thread.join th;
  let rep = Difftrace_obs.Telemetry.report () in
  Difftrace_obs.Telemetry.disable ();
  let counter name =
    match List.assoc_opt name rep.Difftrace_obs.Telemetry.counters with
    | Some v -> v
    | None -> 0
  in
  Alcotest.(check int) "injected failure consumed" 0 !failures;
  Alcotest.(check int) "rpc.accept_errors counted" 1
    (counter "rpc.accept_errors")

let () =
  Alcotest.run "serve"
    [ ( "protocol",
        [ Alcotest.test_case "request round-trip" `Quick test_request_round_trip;
          Alcotest.test_case "response round-trip" `Quick
            test_response_round_trip;
          Alcotest.test_case "event round-trip" `Quick test_event_round_trip ] );
      ( "hardening",
        [ Alcotest.test_case "decoder never raises, ids recovered" `Quick
            test_decoder_hardening;
          Alcotest.test_case "oversized line" `Quick test_oversized_line;
          Alcotest.test_case "daemon survives garbage" `Quick
            test_daemon_survives_garbage ] );
      ( "daemon",
        [ Alcotest.test_case "interleaved clients, warm and byte-identical"
            `Quick test_interleaved_clients_warm;
          Alcotest.test_case "repeat compare: zero summarizations" `Quick
            test_repeat_compare_zero_summarizations;
          Alcotest.test_case "seq and par responses identical" `Quick
            test_engine_identical_responses;
          Alcotest.test_case "record registers, archives, events" `Quick
            test_record_subscribe_events;
          Alcotest.test_case "unknown run is a structured error" `Quick
            test_unknown_run_error;
          Alcotest.test_case "shutdown" `Quick test_shutdown ] );
      ( "restart",
        [ Alcotest.test_case "kill-and-restart re-adopts the store warm" `Quick
            test_kill_and_restart_warm ] );
      ( "socket",
        [ Alcotest.test_case "socket round-trip" `Quick test_socket_round_trip;
          Alcotest.test_case "accept failure survived" `Quick
            test_accept_failure_survived ] ) ]
