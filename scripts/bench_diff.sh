#!/bin/sh
# bench_diff.sh BASELINE.json CURRENT.json [MAX_REGRESSION_PCT]
#
# Diff two difftrace-bench/1 trajectory files metric by metric and fail
# (exit 1) when any wall-time metric (unit "s") regressed by more than
# MAX_REGRESSION_PCT (default 25). Prints a per-metric table either
# way, and a GitHub ::error:: annotation per regressed metric so the
# failure is readable from the workflow summary.
#
# A missing baseline is a clean pass: the first run of a freshly-keyed
# cache has nothing to compare against and merely primes the baseline.
#
# Only wall-time metrics gate. Counter-like metrics (evals, ratios,
# bytes) are deterministic and asserted exactly by the benches
# themselves; timings are the one thing only a cross-run diff can
# watch.

set -eu

baseline=${1:?usage: bench_diff.sh BASELINE.json CURRENT.json [PCT]}
current=${2:?usage: bench_diff.sh BASELINE.json CURRENT.json [PCT]}
threshold=${3:-25}

if [ ! -f "$baseline" ]; then
    echo "bench_diff: no baseline at $baseline (first run?) — nothing to gate"
    exit 0
fi
if [ ! -f "$current" ]; then
    echo "bench_diff: current file $current missing" >&2
    exit 2
fi

for f in "$baseline" "$current"; do
    if ! grep -q '"schema": *"difftrace-bench/1"' "$f"; then
        echo "bench_diff: $f is not a difftrace-bench/1 file" >&2
        exit 2
    fi
done

# difftrace-bench/1 pretty-prints one metric object per line:
#   {"name":"...","value":...,"unit":"..."}
extract_seconds() {
    sed -n 's/.*"name":"\([^"]*\)","value":\([0-9.eE+-]*\),"unit":"s".*/\1 \2/p' "$1"
}

base_tmp=$(mktemp) || exit 2
cur_tmp=$(mktemp) || exit 2
trap 'rm -f "$base_tmp" "$cur_tmp"' EXIT

extract_seconds "$baseline" > "$base_tmp"
extract_seconds "$current" > "$cur_tmp"

awk -v threshold="$threshold" '
BEGIN {
    printf "| %-40s | %12s | %12s | %8s | %-9s |\n", \
        "metric", "baseline (s)", "current (s)", "delta", "verdict"
}
NR == FNR { base[$1] = $2; next }
{
    name = $1; cur = $2 + 0
    if (!(name in base)) { skipped++; next }
    old = base[name] + 0
    compared++
    if (old > 0) pct = (cur - old) / old * 100; else pct = 0
    regressed = (old > 0 && pct > threshold)
    if (regressed) {
        verdict = "REGRESSED"
        failures++
        annotations = annotations sprintf( \
            "::error::bench regression: %s went %.6fs -> %.6fs (%+.1f%%, gate +%d%%)\n", \
            name, old, cur, pct, threshold)
    } else verdict = "ok"
    printf "| %-40s | %12.6f | %12.6f | %+7.1f%% | %-9s |\n", \
        name, old, cur, pct, verdict
}
END {
    if (compared == 0) {
        print "bench_diff: no common wall-time metrics between baseline and current"
        exit 0
    }
    printf "bench_diff: %d metric(s) compared, %d new/unmatched skipped, gate +%d%%\n", \
        compared, skipped, threshold
    if (failures > 0) {
        printf "%s", annotations
        printf "bench_diff: %d metric(s) regressed beyond the gate\n", failures
        exit 1
    }
    print "bench_diff: no wall-time regression beyond the gate"
}' "$base_tmp" "$cur_tmp"
