#!/bin/sh
# frontend-fuzz: deterministic mutation fuzzing of the ingestion
# frontends. Every checked-in corpus fixture is mutated — bit flips,
# truncations, binary garbage, CRLF/UTF-16-ish re-encodings, an
# oversized single line to trip the max-line guard — and every mutant
# is driven through `difftrace frontend check`, i.e. the full
# conformance suite (totality, determinism, runner parity, round-trip,
# archive salvage). A mutant may ingest or be rejected with a typed
# error; what it must never do is violate a conformance property
# (nonzero exit). The per-case log is written for CI to upload.
#
#   make fuzz-smoke                                     # local
#   DIFFTRACE="difftrace" sh scripts/frontend_fuzz.sh   # installed binary
set -eu

DIFFTRACE=${DIFFTRACE:-"_build/default/bin/difftrace_cli.exe"}
DIR=${FUZZ_DIR:-_build/frontend-fuzz}
ARTIFACT=${FUZZ_LOG:-frontend-fuzz.log}

rm -rf "$DIR"
mkdir -p "$DIR/cases" "$DIR/scratch"
: > "$ARTIFACT"

cases=0
fail=0

# run_check NAME FRONTEND FILE — one conformance pass over one mutant
run_check() {
  cases=$((cases + 1))
  if out=$("$DIFFTRACE" frontend check "$3" -F "$2" \
      --scratch "$DIR/scratch" 2>&1); then
    printf '%-40s %s\n' "$1" "$out" >> "$ARTIFACT"
  else
    fail=$((fail + 1))
    printf '%-40s VIOLATION\n%s\n' "$1" "$out" >> "$ARTIFACT"
    echo "frontend-fuzz: $1 violated conformance:" >&2
    echo "$out" >&2
  fi
}

# flip_byte FILE OFFSET — XOR one byte with 0x20 (deterministic)
flip_byte() {
  b=$(od -An -t u1 -j "$2" -N 1 "$1" | tr -d ' ')
  [ -n "$b" ] || return 0
  printf "$(printf '\\%03o' $((b ^ 32)))" \
    | dd of="$1" bs=1 seek="$2" count=1 conv=notrunc 2> /dev/null
}

mutate_and_check() { # FRONTEND FIXTURE
  fe=$1
  fix=$2
  base=$(basename "$fix")
  size=$(wc -c < "$fix" | tr -d ' ')

  # verbatim — the fixture itself must be conformant
  cp "$fix" "$DIR/cases/$base"
  run_check "$fe/$base" "$fe" "$DIR/cases/$base"

  # bit flips at deterministic offsets
  for off in 0 17 $((size / 2)) $((size - 2)); do
    [ "$off" -ge 0 ] && [ "$off" -lt "$size" ] || continue
    cp "$fix" "$DIR/cases/flip$off-$base"
    flip_byte "$DIR/cases/flip$off-$base" "$off"
    run_check "$fe/flip$off-$base" "$fe" "$DIR/cases/flip$off-$base"
  done

  # truncations, including the empty file
  for n in 0 1 $((size / 2)); do
    head -c "$n" "$fix" > "$DIR/cases/trunc$n-$base"
    run_check "$fe/trunc$n-$base" "$fe" "$DIR/cases/trunc$n-$base"
  done

  # binary garbage appended mid-stream
  { cat "$fix"; printf '\000\001\002\377\376\375GARBAGE\000END'; } \
    > "$DIR/cases/garbage-$base"
  run_check "$fe/garbage-$base" "$fe" "$DIR/cases/garbage-$base"

  # mixed encodings: CRLF line endings, then a UTF-16-style BOM with
  # NUL-interleaved first bytes
  sed 's/$/\r/' "$fix" > "$DIR/cases/crlf-$base"
  run_check "$fe/crlf-$base" "$fe" "$DIR/cases/crlf-$base"
  { printf '\377\376h\000i\000\n'; cat "$fix"; } > "$DIR/cases/bom-$base"
  run_check "$fe/bom-$base" "$fe" "$DIR/cases/bom-$base"
}

for fix in test/corpus/cilog/*; do
  mutate_and_check cilog "$fix"
done
for fix in test/corpus/syscall/*; do
  mutate_and_check syscall "$fix"
done

# the max-line guard: a single multi-megabyte line must be a typed
# reject (never an allocation blowup or a crash) for every frontend
awk 'BEGIN { s = "aaaaaaaaaaaaaaaa"; for (i = 0; i < 17; i++) s = s s;
  printf "%s\n", s }' > "$DIR/cases/hugeline"
for fe in cilog syscall; do
  run_check "$fe/hugeline" "$fe" "$DIR/cases/hugeline"
  grep -q "$fe/hugeline.*typed reject" "$ARTIFACT" || {
    echo "frontend-fuzz: $fe accepted a $(wc -c < "$DIR/cases/hugeline")-byte line" >&2
    fail=$((fail + 1))
  }
done

echo "frontend-fuzz: $cases cases, $fail violations ($ARTIFACT)"
[ "$fail" -eq 0 ]
