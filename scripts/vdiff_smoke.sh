#!/bin/sh
# vdiff-smoke: run a small fault x seed selftest matrix through
# `campaign run`, merge every archived run with
# `campaign report --variational`, and check that the minimal
# discriminating condition names exactly the injected fault axis.
# A second report must replay the merged alignment warm out of the
# campaign store (store.vdiff_hits), and a direct 2-run `difftrace
# vdiff` over the same archives must render the pairwise view.
#
#   make vdiff-smoke                  # local, against the dune build
#   DIFFTRACE="difftrace" sh scripts/vdiff_smoke.sh  # installed binary
set -eu

DIFFTRACE=${DIFFTRACE:-"_build/default/bin/difftrace_cli.exe"}
DIR=${SMOKE_DIR:-_build/vdiff-smoke}
RENDER=${VDIFF_RENDER:-vdiff-render.txt}

rm -rf "$DIR"
mkdir -p "$DIR"

# 2 faults x 4 seeds = 8 cells: skipping a noop leaves the run clean,
# skipping into a spin burns the step budget and hangs
$DIFFTRACE campaign run -d "$DIR/camp" -w selftest --np 4 --seeds 4 \
  -f 'skipFunction(rank=0,func=noop)' \
  -f 'skipFunction(rank=0,func=spin)' > "$DIR/run.log"

$DIFFTRACE campaign report -d "$DIR/camp" --variational > "$RENDER"

# the merge must recover the injected fault axis, exactly
grep -qF \
  'minimal discriminating condition: fault=skipFunction(rank=0,func=spin)' \
  "$RENDER" || {
  echo "vdiff-smoke: discriminating condition missing from $RENDER" >&2
  exit 1
}
# ... and link the top suspect to its first divergent event
grep -q 'event db: trace' "$RENDER" || {
  echo "vdiff-smoke: event-db footer missing from $RENDER" >&2
  exit 1
}

# warm rerun: the persisted vdiff record skips re-alignment
$DIFFTRACE campaign report -d "$DIR/camp" --variational --profile \
  > "$DIR/warm.log" 2>&1
grep -q 'store\.vdiff_hits' "$DIR/warm.log" || {
  echo "vdiff-smoke: warm rerun did not hit the stored vdiff record" >&2
  exit 1
}

# the 2-run special case straight off the archives
$DIFFTRACE vdiff --salvage \
  -r "ref=$DIR/camp/normal_s1" \
  -r "spin=$DIR/camp/cell_4" --axes 'spin:fault=spin' --bad spin \
  > "$DIR/pair.log"
grep -qF 'minimal discriminating condition: fault=spin' "$DIR/pair.log" || {
  echo "vdiff-smoke: 2-run vdiff condition wrong" >&2
  exit 1
}

echo "vdiff-smoke: OK ($RENDER)"
