#!/bin/sh
# serve-smoke: boot a socket daemon, drive one scripted client session
# (record -> record -> analyze -> compare -> status -> shutdown), and
# check the per-request telemetry profile the daemon writes on exit.
#
#   make serve-smoke                  # local, against the dune build
#   DIFFTRACE="difftrace" sh scripts/serve_smoke.sh   # installed binary
#
# The daemon and the client run concurrently, so DIFFTRACE must be the
# built binary itself, not `dune exec` (whose project lock would make
# the client wait for the daemon to exit).
set -eu

DIFFTRACE=${DIFFTRACE:-"_build/default/bin/difftrace_cli.exe"}
DIR=${SMOKE_DIR:-_build/serve-smoke}
PROFILE=${PROFILE_JSON:-serve-profile.json}

rm -rf "$DIR"
mkdir -p "$DIR"
SOCK="$DIR/daemon.sock"

$DIFFTRACE serve --socket "$SOCK" --state "$DIR/state" \
  --profile-json "$PROFILE" 2> "$DIR/serve.log" &
DAEMON=$!

# one scripted session: archive two runs, re-analyze them from their
# archives (the streaming ingestion path), compare the registered warm
# sets, then shut the daemon down
$DIFFTRACE client --socket "$SOCK" --decode \
  -e '{"difftrace-rpc":1,"id":"s1","method":"record","params":{"workload":"oddeven","np":8,"name":"normal","out":"'"$DIR"'/normal"}}' \
  -e '{"difftrace-rpc":1,"id":"s2","method":"record","params":{"workload":"oddeven","np":8,"fault":"swapBug(rank=3,after=4)","name":"faulty","out":"'"$DIR"'/faulty"}}' \
  -e '{"difftrace-rpc":1,"id":"s3","method":"analyze","params":{"normal":{"archive":"'"$DIR"'/normal"},"faulty":{"archive":"'"$DIR"'/faulty"}}}' \
  -e '{"difftrace-rpc":1,"id":"s4","method":"compare","params":{"normal":"normal","faulty":"faulty"}}' \
  -e '{"difftrace-rpc":1,"id":"s5","method":"status"}' \
  -e '{"difftrace-rpc":1,"id":"s6","method":"shutdown"}'

wait "$DAEMON"

# the daemon's lifetime profile must show every per-request span and
# the request counters
for needle in rpc.record rpc.analyze rpc.compare rpc.status rpc.shutdown \
    rpc.requests; do
  grep -q "$needle" "$PROFILE" || {
    echo "serve-smoke: $needle missing from $PROFILE" >&2
    exit 1
  }
done
echo "serve-smoke: OK ($PROFILE)"
