#!/bin/sh
# query-smoke: record two archives, drill into them with the event-DB
# query language, and prove the persisted index makes warm reruns
# rebuild-free (eventdb.loads moves, eventdb.builds must not appear).
# Finishes with the --query bench so the difftrace-bench/1 artifact
# carries the index build/load timings.
#
#   make query-smoke                  # local, against the dune build
#   DIFFTRACE="difftrace" sh scripts/query_smoke.sh   # installed binary
set -eu

DIFFTRACE=${DIFFTRACE:-"_build/default/bin/difftrace_cli.exe"}
BENCH=${BENCH:-"_build/default/bench/main.exe"}
DIR=${SMOKE_DIR:-_build/query-smoke}
BENCH_JSON=${BENCH_JSON:-query-bench.json}

rm -rf "$DIR"
mkdir -p "$DIR"

$DIFFTRACE record -w oddeven --np 8 --out "$DIR/normal" > /dev/null
$DIFFTRACE record -w oddeven --np 8 -f 'swapBug(rank=3,after=4)' \
  --out "$DIR/faulty" > /dev/null

# the drill-down forms: inventory, count, list, divergence of the runs
$DIFFTRACE query 'threads' --archive "$DIR/normal" | grep -q '^| 3 '
$DIFFTRACE query 'count MPI_Send' --archive "$DIR/normal" \
  | grep -q '^calls of MPI_Send: '
$DIFFTRACE query 'list MPI_Send on 3 limit 2' --archive "$DIR/normal" \
  | grep -q '(showing 2)'
$DIFFTRACE query 'diverge' --archive "$DIR/normal" \
  --against "$DIR/faulty" | grep -q '^first divergence: thread 3 '

# a bad query answers with the grammar and a nonzero exit, no crash
if $DIFFTRACE query 'bogus' --archive "$DIR/normal" 2> "$DIR/err"; then
  echo "query-smoke: bad query did not fail" >&2
  exit 1
fi
grep -q 'queries: count F' "$DIR/err"

# cold query builds and persists the index; the warm rerun must load
# it back and rebuild nothing
$DIFFTRACE query 'count MPI_Send' --archive "$DIR/normal" \
  --store "$DIR/store" --profile > "$DIR/cold"
grep -q 'eventdb.builds' "$DIR/cold"
grep -q 'eventdb.saved' "$DIR/cold"
$DIFFTRACE query 'count MPI_Send' --archive "$DIR/normal" \
  --store "$DIR/store" --profile > "$DIR/warm"
grep -q 'eventdb.loads' "$DIR/warm"
if grep -q 'eventdb.builds' "$DIR/warm"; then
  echo "query-smoke: warm rerun rebuilt the event DB" >&2
  exit 1
fi

# the bench artifact must carry the index build/load and query timings
$BENCH --query --quick --json "$BENCH_JSON" > /dev/null
for needle in eventdb.build.cold eventdb.load.warm eventdb.query.count \
    eventdb.query.diverge; do
  grep -q "$needle" "$BENCH_JSON" || {
    echo "query-smoke: $needle missing from $BENCH_JSON" >&2
    exit 1
  }
done
echo "query-smoke: OK ($BENCH_JSON)"
