(* difftrace — command-line front end.

   Subcommands:
     run       execute a workload (optionally fault-injected), print the
               capture statistics and decoded traces
     compare   run a workload twice (normal vs. fault), print B-score,
               suspicious traces and a diffNLR
     table     sweep a filter/attribute grid and print the paper-style
               ranking table
     filters   print the Table I filter catalog
     serve     resident analysis daemon speaking difftrace-rpc/1
     client    send protocol request lines to a running daemon

   compare/analyze/record/triage are thin frontends over the Session
   API (lib/core/session.ml) — the daemon serves the same functions, so
   its responses are byte-identical to these subcommands' reports. *)

open Cmdliner
open Difftrace
module R = Difftrace_simulator.Runtime
module Fault = Difftrace_simulator.Fault
module Tracer = Difftrace_parlot.Tracer
module Capture = Difftrace_parlot.Capture
module Trace = Difftrace_trace.Trace
module Trace_set = Difftrace_trace.Trace_set
module F = Difftrace_filter.Filter
module A = Difftrace_fca.Attributes
module Linkage = Difftrace_cluster.Linkage

let workload_conv =
  let parse s =
    if List.mem s Serve.Workload.known then Ok s
    else Error (`Msg ("unknown workload: " ^ s))
  in
  Arg.conv (parse, Format.pp_print_string)

let fault_conv =
  let parse s =
    match Fault.of_string s with
    | f -> Ok f
    | exception Invalid_argument m -> Error (`Msg m)
  in
  Arg.conv (parse, Fault.pp)

(* the one name -> program mapping, shared with the daemon *)
let run_workload w ~np ~seed ~level ~fault =
  match Serve.Workload.run w ~np ~seed ~level ~fault with
  | Ok outcome -> outcome
  | Error e ->
    Printf.eprintf "difftrace: %s\n" (Session.error_to_string e);
    exit 1

(* common options *)
let workload_t =
  Arg.(
    value
    & opt workload_conv "oddeven"
    & info [ "w"; "workload" ] ~docv:"WORKLOAD"
        ~doc:"Workload to execute: oddeven, ilcs, lulesh, heat or heat2d.")

let np_t =
  Arg.(value & opt int 8 & info [ "np" ] ~docv:"N" ~doc:"Number of MPI ranks.")

let seed_t =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Scheduler seed.")

let fault_t =
  Arg.(
    value
    & opt fault_conv Fault.No_fault
    & info [ "f"; "fault" ] ~docv:"FAULT"
        ~doc:
          "Fault to inject, e.g. 'swapBug(rank=5,after=7)', \
           'dlBug(rank=5,after=7)', 'wrongSize(rank=2)', 'wrongOp(rank=0)', \
           'noCritical(rank=6,thread=4)', \
           'skipFunction(rank=2,func=LagrangeLeapFrog)' or 'none'.")

let all_images_t =
  Arg.(
    value & flag
    & info [ "all-images" ]
        ~doc:"Capture library-level frames too (ParLOT all-images mode).")

let filter_t =
  Arg.(
    value
    & opt string "11.mpiall"
    & info [ "filter" ] ~docv:"SPEC"
        ~doc:
          "Filter spec: two drop digits (returns, plt) then keep \
           categories, e.g. '11.mpiall', '01.mem.ompcrit', '11.all'.")

let custom_t =
  Arg.(
    value
    & opt_all string []
    & info [ "custom" ] ~docv:"REGEX"
        ~doc:"Regex bound to each 'cust' component of the filter spec.")

let attrs_t =
  Arg.(
    value
    & opt string "sing.noFreq"
    & info [ "attrs" ] ~docv:"SPEC"
        ~doc:"FCA attributes: sing|doub . actual|log10|noFreq.")

let k_t = Arg.(value & opt int 10 & info [ "k" ] ~docv:"K" ~doc:"NLR constant K.")

let engine_conv =
  let parse s =
    match Engine.of_string s with
    | e -> Ok e
    | exception Invalid_argument _ ->
      Error (`Msg ("unknown engine (expected sequential or parallel[:N]): " ^ s))
  in
  let print ppf e = Format.pp_print_string ppf (Engine.to_string e) in
  Arg.conv (parse, print)

(* --engine names an engine explicitly; --jobs N is shorthand for
   parallel:N (0 = auto-detect) and wins when both are given. *)
let engine_t =
  let engine =
    Arg.(
      value
      & opt engine_conv Engine.Sequential
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:
            "Execution engine for the analysis pipeline: 'sequential' \
             (default) or 'parallel[:N]' (N domains, auto-detected when \
             omitted). Results are byte-identical across engines.")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Run the NLR and JSM stages on N domains (0 = auto-detect); \
             shorthand for --engine=parallel:N.")
  in
  let combine engine jobs =
    match jobs with Some n -> Engine.of_jobs n | None -> engine
  in
  Term.(const combine $ engine $ jobs)

let linkage_t =
  Arg.(
    value
    & opt string "ward"
    & info [ "linkage" ] ~docv:"METHOD"
        ~doc:"Linkage: single, complete, average, weighted, centroid, median, ward.")

(* --sketch routes the JSM through the MinHash/LSH tier; --exact (the
   default) pins today's byte-identical output and wins when both are
   given, so scripts can append --exact to force the pinned path. *)
let mode_t =
  let sketch =
    Arg.(
      value & flag
      & info [ "sketch" ]
          ~doc:
            "Build the JSM through the MinHash/LSH sketch tier: only LSH \
             candidate pairs get exact Jaccard evaluations, pruned pairs \
             read 0.0 — near-linear instead of quadratic on corpora whose \
             similar pairs are sparse.")
  in
  let exact =
    Arg.(
      value & flag
      & info [ "exact" ]
          ~doc:
            "Evaluate every trace pair exactly (the default). Wins over \
             $(b,--sketch), pinning byte-identical output.")
  in
  let combine sketch exact =
    if sketch && not exact then Config.Sketch else Config.Exact
  in
  Term.(const combine $ sketch $ exact)

let level_of all_images = if all_images then Tracer.All_images else Tracer.Main_image

(* --- ingestion frontends -------------------------------------------- *)

module Frontend = Difftrace_frontend.Frontend
module Frontend_registry = Difftrace_frontend.Registry
module Conformance = Difftrace_frontend.Conformance

let frontend_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "frontend" ] ~docv:"NAME"
        ~doc:
          "Ingest foreign-format trace files (CI logs, strace captures) \
           through the named frontend instead of reading archives or \
           executing workloads. Unless --filter is given explicitly, the \
           filter defaults to '11.all' (foreign traces have no MPI calls \
           to keep). See $(b,difftrace frontend list).")

(* foreign traces have no MPI_* calls, so the MPI default filter would
   empty them; an explicit --filter still wins *)
let frontend_filter ~frontend filter =
  if frontend <> None && filter = "11.mpiall" then "11.all" else filter

(* --- the persistent analysis store ---------------------------------- *)

(* every analysis command takes --store DIR (reuse NLR summaries and
   JSM matrices across invocations) and --no-store (wins over --store;
   for campaigns it disables the default per-campaign store). The raw
   pair is interpreted per command: [store_of] for commands where the
   store is opt-in, [campaign_store_of] for campaign run, which
   defaults to <campaign-dir>/store. *)
let store_flags_t =
  let store =
    Arg.(
      value
      & opt (some string) None
      & info [ "store" ] ~docv:"DIR"
          ~doc:
            "Persistent analysis store: reload cached NLR summaries and JSM \
             matrices from $(docv) and save new ones back, so repeated \
             analyses skip recomputation. Results are byte-identical with \
             or without a store.")
  in
  let no_store =
    Arg.(
      value & flag
      & info [ "no-store" ]
          ~doc:
            "Disable the persistent analysis store (overrides --store and \
             the campaign default).")
  in
  Term.(const (fun s n -> (s, n)) $ store $ no_store)

let store_of (dir, no_store) = if no_store then None else dir

let campaign_store_of ~dir (sdir, no_store) =
  if no_store then None
  else Some (Option.value sdir ~default:(Filename.concat dir "store"))

(* a store that fails to open degrades to a cold run, it never blocks
   the analysis *)
let open_store = function
  | None -> None
  | Some dir -> (
    match Store.load ~dir with
    | Ok st -> Some st
    | Error e ->
      Printf.eprintf "difftrace: store disabled: %s\n%!"
        (Store.error_to_string e);
      None)

let flush_store = function
  | None -> ()
  | Some st -> (
    match Store.flush st with
    | Ok () -> ()
    | Error e ->
      Printf.eprintf "difftrace: could not flush store: %s\n%!"
        (Store.error_to_string e))

(* --- profiling ------------------------------------------------------ *)

(* every analysis command takes --profile (print the per-stage table
   after the normal output) and --profile-json FILE (write the
   difftrace-telemetry/1 report, plus the configuration when the
   command has a single one). Both record the whole command, workload
   execution and capture included. *)
let profile_t =
  let profile =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:
            "Record pipeline telemetry (stage timings, allocation, \
             counters) and print the per-stage tables after the normal \
             output.")
  in
  let profile_json =
    Arg.(
      value
      & opt (some string) None
      & info [ "profile-json" ] ~docv:"FILE"
          ~doc:
            "Record pipeline telemetry and write the machine-readable \
             report (schema difftrace-telemetry/1, documented in \
             MANUAL.md) to $(docv).")
  in
  Term.(const (fun p j -> (p, j)) $ profile $ profile_json)

let run_profiled (profile, profile_json) ?config f =
  if not (profile || profile_json <> None) then f ()
  else begin
    Telemetry.enable ();
    let finish () =
      let rep = Telemetry.report () in
      Telemetry.disable ();
      if profile then print_string (Telemetry.render rep);
      Option.iter
        (fun file ->
          let doc =
            match (Telemetry.report_to_json rep, config) with
            | Telemetry.Json.Obj kvs, Some c ->
              Telemetry.Json.Obj (kvs @ [ ("config", Config.to_json c) ])
            | j, _ -> j
          in
          let oc = open_out file in
          output_string oc (Telemetry.Json.to_string_pretty doc);
          close_out oc;
          Printf.eprintf "difftrace: wrote profile to %s\n%!" file)
        profile_json
    in
    Fun.protect ~finally:finish f
  end

let config_of ~filter ~custom ~attrs ~k ~linkage ~engine ~mode =
  Config.default
  |> Config.with_filter (F.of_spec ~custom filter)
  |> Config.with_attrs (A.of_name attrs)
  |> Config.with_k k
  |> Config.with_linkage (Linkage.method_of_string linkage)
  |> Config.with_engine engine
  |> Config.with_mode mode

(* per-thread archive IO scheduled by the same engine as the analysis
   stages *)
let archive_runner engine =
  let r = Engine.runner engine in
  { Archive.run = (fun n f -> r.Engine.run n f) }

(* --- run ----------------------------------------------------------- *)

let run_cmd =
  let doc = "Execute a workload on the simulator and dump its traces." in
  let show_traces =
    Arg.(value & flag & info [ "traces" ] ~doc:"Print every decoded trace.")
  in
  let action w np seed fault all_images show_traces =
    let outcome = run_workload w ~np ~seed ~level:(level_of all_images) ~fault in
    Format.printf "%a@." Capture.pp_stats outcome.R.stats;
    if outcome.R.deadlocked <> [] then
      Printf.printf "DEADLOCK: %s\n"
        (String.concat ", "
           (List.map (fun (p, t) -> Printf.sprintf "%d.%d" p t) outcome.R.deadlocked));
    (match outcome.R.collective_mismatch with
    | Some m -> Printf.printf "collective mismatch: %s\n" m
    | None -> ());
    List.iter
      (fun r ->
        Printf.printf "race: process %d cell %s threads %s\n" r.R.race_pid
          r.R.cell_name
          (String.concat "," (List.map string_of_int r.R.tids)))
      outcome.R.races;
    if show_traces then
      Array.iter
        (fun tr ->
          Printf.printf "--- T%s%s\n%s\n" (Trace.label tr)
            (if tr.Trace.truncated then " (truncated)" else "")
            (String.concat "\n"
               (Trace.to_strings (Trace_set.symtab outcome.R.traces) tr)))
        (Trace_set.traces outcome.R.traces)
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(const action $ workload_t $ np_t $ seed_t $ fault_t $ all_images_t
          $ show_traces)

(* --- compare ------------------------------------------------------- *)

let compare_cmd =
  let doc =
    "Run a workload normally and with a fault (or, with --frontend, ingest \
     two foreign-format trace files); print B-score, suspicious traces and \
     a diffNLR."
  in
  let diffnlr_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "diffnlr" ] ~docv:"LABEL"
          ~doc:"Trace to diff (e.g. '5' or '6.4'); default: top suspect.")
  in
  let files_t =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"FILE"
          ~doc:
            "With $(b,--frontend): the normal and the faulty foreign-format \
             file, in that order.")
  in
  let action w np seed fault all_images filter custom attrs k linkage engine
      mode store diffnlr frontend files prof =
    let filter = frontend_filter ~frontend filter in
    let config = config_of ~filter ~custom ~attrs ~k ~linkage ~engine ~mode in
    let sources =
      match (frontend, files) with
      | Some fe, [ a; b ] ->
        `Sources (Session.Ingest { path = a; frontend = fe },
                  Session.Ingest { path = b; frontend = fe })
      | Some _, _ ->
        Printf.eprintf
          "difftrace: compare --frontend needs exactly two FILE arguments \
           (normal faulty)\n";
        exit 2
      | None, _ :: _ ->
        Printf.eprintf
          "difftrace: positional FILE arguments require --frontend NAME\n";
        exit 2
      | None, [] ->
        if fault = Fault.No_fault then
          prerr_endline "warning: comparing a run against itself (--fault none)";
        `Workload
    in
    run_profiled prof ~config @@ fun () ->
    let normal_src, faulty_src =
      match sources with
      | `Sources (n, f) -> (n, f)
      | `Workload ->
        let level = level_of all_images in
        let normal = run_workload w ~np ~seed ~level ~fault:Fault.No_fault in
        let faulty = run_workload w ~np ~seed ~level ~fault in
        (Session.Traces normal.R.traces, Session.Traces faulty.R.traces)
    in
    let store = open_store (store_of store) in
    let ses = Session.create ?store () in
    let r =
      Session.compare ses config
        { Session.cp_normal = normal_src;
          cp_faulty = faulty_src;
          cp_diffnlr = diffnlr }
    in
    flush_store store;
    match r with
    | Ok r -> print_string r.Session.cp_output
    | Error e ->
      Printf.eprintf "difftrace: %s\n" (Session.error_to_string e);
      exit 1
  in
  Cmd.v (Cmd.info "compare" ~doc)
    Term.(const action $ workload_t $ np_t $ seed_t $ fault_t $ all_images_t
          $ filter_t $ custom_t $ attrs_t $ k_t $ linkage_t $ engine_t
          $ mode_t $ store_flags_t $ diffnlr_t $ frontend_t $ files_t
          $ profile_t)

(* --- table --------------------------------------------------------- *)

let table_cmd =
  let doc = "Sweep filters x attributes and print the ranking table." in
  let filters_t =
    Arg.(
      value
      & opt_all string [ "11.mpiall" ]
      & info [ "F"; "filter-spec" ] ~docv:"SPEC"
          ~doc:"Filter spec; repeatable for a multi-filter grid.")
  in
  let action w np seed fault all_images filters custom k linkage engine store
      prof =
    run_profiled prof @@ fun () ->
    let level = level_of all_images in
    let normal = run_workload w ~np ~seed ~level ~fault:Fault.No_fault in
    let faulty = run_workload w ~np ~seed ~level ~fault in
    let filters = List.map (F.of_spec ~custom) filters in
    let store = open_store (store_of store) in
    let grid =
      Ranking.grid ~filters ~k
        ~linkage:(Linkage.method_of_string linkage)
        ~engine ()
    in
    let rows =
      match store with
      | Some _ ->
        Ranking.sweep ?store grid ~normal:normal.R.traces
          ~faulty:faulty.R.traces
      | None ->
        Ranking.sweep ~memo:(Memo.create ()) grid ~normal:normal.R.traces
          ~faulty:faulty.R.traces
    in
    flush_store store;
    print_string (Ranking.render rows)
  in
  Cmd.v (Cmd.info "table" ~doc)
    Term.(const action $ workload_t $ np_t $ seed_t $ fault_t $ all_images_t
          $ filters_t $ custom_t $ k_t $ linkage_t $ engine_t $ store_flags_t
          $ profile_t)

(* --- record / analyze: the offline archive workflow ----------------- *)

let record_cmd =
  let doc =
    "Execute a workload and archive its compressed traces to a directory \
     (record once, re-analyze offline with any filters)."
  in
  let out_t =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"DIR" ~doc:"Archive directory to write.")
  in
  let v1_t =
    Arg.(
      value & flag
      & info [ "v1" ]
          ~doc:
            "Write the legacy v1 archive format (bare LZW streams, no \
             checksums) instead of the framed, checksummed v2 format.")
  in
  let action w np seed fault all_images out v1 =
    let outcome = run_workload w ~np ~seed ~level:(level_of all_images) ~fault in
    let format = if v1 then Archive.V1 else Archive.V2 in
    match
      Session.record (Session.create ()) ~outcome
        { Session.rc_name = None; rc_dir = Some out; rc_format = format }
    with
    | Ok r -> print_string r.Session.rc_output
    | Error e ->
      Printf.eprintf "difftrace: %s\n" (Session.error_to_string e);
      exit 1
  in
  Cmd.v (Cmd.info "record" ~doc)
    Term.(const action $ workload_t $ np_t $ seed_t $ fault_t $ all_images_t $ out_t
          $ v1_t)

let analyze_cmd =
  let doc =
    "Compare two recorded archives (normal vs. faulty) offline: B-score, \
     suspicious traces and a diffNLR — the paper's re-analysis loop."
  in
  let normal_t =
    Arg.(
      required
      & opt (some string) None
      & info [ "normal" ] ~docv:"DIR" ~doc:"Archive of the working run.")
  in
  let faulty_t =
    Arg.(
      required
      & opt (some string) None
      & info [ "faulty" ] ~docv:"DIR" ~doc:"Archive of the faulty run.")
  in
  let diffnlr_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "diffnlr" ] ~docv:"LABEL" ~doc:"Trace to diff; default: top suspect.")
  in
  let salvage_t =
    Arg.(
      value & flag
      & info [ "salvage" ]
          ~doc:
            "Recover damaged archives: keep the longest checksum-valid, \
             cleanly-decoding prefix of each corrupt trace (marked \
             truncated) instead of refusing the whole run.")
  in
  let action normal_dir faulty_dir filter custom attrs k linkage engine mode
      store salvage diffnlr frontend prof =
    let filter = frontend_filter ~frontend filter in
    let config = config_of ~filter ~custom ~attrs ~k ~linkage ~engine ~mode in
    run_profiled prof ~config @@ fun () ->
    let store = open_store (store_of store) in
    let ses = Session.create ?store () in
    (* with --frontend, --normal/--faulty name foreign-format files
       rather than archive directories *)
    let source_of path =
      match frontend with
      | Some fe -> Session.Ingest { path; frontend = fe }
      | None -> Session.Archive { dir = path; salvage }
    in
    let r =
      Session.analyze ses config
        { Session.cp_normal = source_of normal_dir;
          cp_faulty = source_of faulty_dir;
          cp_diffnlr = diffnlr }
    in
    flush_store store;
    match r with
    | Ok r -> print_string r.Session.cp_output
    | Error e ->
      Printf.eprintf "difftrace: %s\n" (Session.error_to_string e);
      (match e with
      | Session.Archive_failed _ when not salvage ->
        prerr_endline
          "hint: --salvage recovers the checksum-valid prefix of damaged \
           traces"
      | _ -> ());
      exit 1
  in
  Cmd.v (Cmd.info "analyze" ~doc)
    Term.(const action $ normal_t $ faulty_t $ filter_t $ custom_t $ attrs_t
          $ k_t $ linkage_t $ engine_t $ mode_t $ store_flags_t $ salvage_t
          $ diffnlr_t $ frontend_t $ profile_t)

(* --- vdiff: n-way variational diffing -------------------------------- *)

let vdiff_cmd =
  let doc =
    "Merge two or more recorded archives into one variational NLR: every \
     structural region annotated with the minimal condition (over the \
     declared axes) selecting the runs it appears in, ranked suspect \
     regions, and the condition discriminating the runs marked --bad."
  in
  let runs_t =
    Arg.(
      value
      & opt_all string []
      & info [ "r"; "run" ] ~docv:"NAME=DIR"
          ~doc:
            "A run to align: display name and archive directory. Repeat at \
             least twice; run order fixes the r0, r1, ... indices.")
  in
  let axes_t =
    Arg.(
      value
      & opt_all string []
      & info [ "axes" ] ~docv:"NAME:K=V[,K=V...]"
          ~doc:
            "Condition axes of run NAME, e.g. cell7:fault=f2,seed=3. Axes \
             missing on a run read as \"-\".")
  in
  let bad_t =
    Arg.(
      value
      & opt_all string []
      & info [ "bad" ] ~docv:"NAME"
          ~doc:
            "Mark run NAME as bad (its verdict label); repeatable. The \
             report names the minimal condition discriminating the bad \
             set.")
  in
  let trace_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"LABEL"
          ~doc:
            "Trace label to align; default: the first label common to every \
             run.")
  in
  let salvage_t =
    Arg.(
      value & flag
      & info [ "salvage" ]
          ~doc:
            "Recover damaged archives: keep the longest checksum-valid, \
             cleanly-decoding prefix of each corrupt trace instead of \
             refusing the whole run.")
  in
  let split_once c s =
    match String.index_opt s c with
    | None -> None
    | Some i ->
      Some (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  in
  let usage_exit m =
    Printf.eprintf "difftrace: %s\n" m;
    exit 2
  in
  let action runs axes bad trace filter custom attrs k linkage engine mode
      store salvage frontend prof =
    let named =
      List.map
        (fun spec ->
          match split_once '=' spec with
          | Some (name, dir) when name <> "" && dir <> "" -> (name, dir)
          | _ -> usage_exit (Printf.sprintf "--run %S: expected NAME=DIR" spec))
        runs
    in
    if List.length named < 2 then
      usage_exit "vdiff needs at least two --run NAME=DIR archives";
    (match
       List.find_opt
         (fun (n, _) -> List.length (List.filter (fun (m, _) -> m = n) named) > 1)
         named
     with
    | Some (n, _) -> usage_exit (Printf.sprintf "duplicate run name %S" n)
    | None -> ());
    let known n = List.mem_assoc n named in
    let axes_of =
      List.map
        (fun spec ->
          match split_once ':' spec with
          | None ->
            usage_exit (Printf.sprintf "--axes %S: expected NAME:K=V[,K=V...]" spec)
          | Some (name, kvs) ->
            if not (known name) then
              usage_exit (Printf.sprintf "--axes %S: no --run named %S" spec name);
            let pairs =
              List.map
                (fun kv ->
                  match split_once '=' kv with
                  | Some (k, v) when k <> "" -> (k, v)
                  | _ ->
                    usage_exit
                      (Printf.sprintf "--axes %S: malformed %S" spec kv))
                (String.split_on_char ',' kvs)
            in
            (name, pairs))
        axes
    in
    List.iter
      (fun n ->
        if not (known n) then
          usage_exit (Printf.sprintf "--bad %S: no --run with that name" n))
      bad;
    let filter = frontend_filter ~frontend filter in
    let config = config_of ~filter ~custom ~attrs ~k ~linkage ~engine ~mode in
    run_profiled prof ~config @@ fun () ->
    let store = open_store (store_of store) in
    let ses = Session.create ?store () in
    let vd_runs =
      List.map
        (fun (name, dir) ->
          { Session.vdr_name = name;
            vdr_source =
              (match frontend with
              | Some fe -> Session.Ingest { path = dir; frontend = fe }
              | None -> Session.Archive { dir; salvage });
            vdr_axes =
              List.concat_map snd
                (List.filter (fun (n, _) -> n = name) axes_of);
            vdr_bad = List.mem name bad })
        named
    in
    let r = Session.vdiff ses config { Session.vd_runs; vd_trace = trace } in
    flush_store store;
    match r with
    | Ok r -> print_string r.Session.vd_output
    | Error e ->
      Printf.eprintf "difftrace: %s\n" (Session.error_to_string e);
      (match e with
      | Session.Archive_failed _ when not salvage ->
        prerr_endline
          "hint: --salvage recovers the checksum-valid prefix of damaged \
           traces"
      | _ -> ());
      exit 1
  in
  Cmd.v (Cmd.info "vdiff" ~doc)
    Term.(const action $ runs_t $ axes_t $ bad_t $ trace_t $ filter_t
          $ custom_t $ attrs_t $ k_t $ linkage_t $ engine_t $ mode_t
          $ store_flags_t $ salvage_t $ frontend_t $ profile_t)

(* --- frontend: foreign-format ingestion ------------------------------ *)

let frontend_cmd =
  let doc = "Ingestion frontends: list, ingest, inspect and check them." in
  let file_t =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Foreign-format trace file to ingest.")
  in
  let named_frontend_t =
    Arg.(
      required
      & opt (some string) None
      & info [ "F"; "frontend" ] ~docv:"NAME"
          ~doc:"Frontend to ingest through (see $(b,difftrace frontend list)).")
  in
  let fail e =
    Printf.eprintf "difftrace: %s\n" (Session.error_to_string e);
    exit 1
  in
  let list_cmd =
    let doc = "List the registered ingestion frontends." in
    let action () =
      print_string
        (Difftrace_util.Texttable.render ~headers:[ "Name"; "Description" ]
           (List.map
              (fun fe -> [ fe.Frontend.name; fe.Frontend.description ])
              (Frontend_registry.all ())))
    in
    Cmd.v (Cmd.info "list" ~doc) Term.(const action $ const ())
  in
  let ingest_cmd =
    let doc =
      "Ingest a foreign-format file and archive the result (after which \
       any analysis command consumes it like a recorded run)."
    in
    let out_t =
      Arg.(
        value
        & opt (some string) None
        & info [ "o"; "out" ] ~docv:"DIR" ~doc:"Archive directory to write.")
    in
    let action file fename out engine =
      let config = Config.default |> Config.with_engine engine in
      match
        Session.ingest (Session.create ()) config
          { Session.ig_path = file;
            ig_frontend = fename;
            ig_name = None;
            ig_dir = out;
            ig_format = Archive.V2 }
      with
      | Ok r ->
        print_string r.Session.ig_output;
        Printf.printf "digest: %s\n" r.Session.ig_digest
      | Error e -> fail e
    in
    Cmd.v (Cmd.info "ingest" ~doc)
      Term.(const action $ file_t $ named_frontend_t $ out_t $ engine_t)
  in
  let dfg_cmd =
    let doc =
      "Ingest a foreign-format file and print its directly-follows graph \
       (one edge per consecutive call pair on a thread)."
    in
    let action file fename engine =
      let config = Config.default |> Config.with_engine engine in
      let ses = Session.create () in
      match
        Session.resolve ses ~engine:config.Config.engine
          (Session.Ingest { path = file; frontend = fename })
      with
      | Ok (ts, _) -> print_string (Frontend.render_dfg ts)
      | Error e -> fail e
    in
    Cmd.v (Cmd.info "dfg" ~doc)
      Term.(const action $ file_t $ named_frontend_t $ engine_t)
  in
  let check_cmd =
    let doc =
      "Run the frontend conformance suite (totality, determinism, runner \
       parity, round-trip fixed point, salvage compatibility) against one \
       input file. Exit 0 when conformant — a typed ingestion error is a \
       conforming outcome — and 1 when any property is violated."
    in
    let scratch_t =
      Arg.(
        value
        & opt (some string) None
        & info [ "scratch" ] ~docv:"DIR"
            ~doc:
              "Scratch directory for the salvage-compatibility property \
               (skipped when absent).")
    in
    let action file fename scratch =
      match Frontend_registry.find fename with
      | None ->
        fail
          (Session.Unknown_frontend
             { name = fename; known = Frontend_registry.known () })
      | Some fe -> (
        match
          let ic = open_in_bin file in
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        with
        | exception Sys_error m ->
          Printf.eprintf "difftrace: cannot read %s: %s\n" file m;
          exit 1
        | input -> (
          match Conformance.check ?scratch fe input with
          | [] ->
            (match fe.Frontend.ingest ~runner:Frontend.sequential_runner input with
            | Ok ts ->
              Printf.printf "ok: %d traces, %d events, digest %s\n"
                (Trace_set.cardinal ts)
                (Trace_set.total_events ts)
                (Frontend.digest ts)
            | Error e ->
              Printf.printf "ok (typed reject): %s\n"
                (Frontend.error_to_string e)
            | exception _ -> assert false (* totality just passed *))
          | vs ->
            List.iter
              (fun v ->
                Printf.printf "violation %s\n"
                  (Conformance.violation_to_string v))
              vs;
            exit 1))
    in
    Cmd.v (Cmd.info "check" ~doc)
      Term.(const action $ file_t $ named_frontend_t $ scratch_t)
  in
  Cmd.group (Cmd.info "frontend" ~doc)
    [ list_cmd; ingest_cmd; dfg_cmd; check_cmd ]

(* --- archive: integrity tooling ------------------------------------- *)

let archive_cmd =
  let dir_t =
    Arg.(
      required
      & opt (some string) None
      & info [ "d"; "dir" ] ~docv:"DIR" ~doc:"Archive directory.")
  in
  let runner_of = archive_runner in
  let verify_cmd =
    let doc =
      "Scan an archive's checksummed chunks and event streams; print one \
       integrity row per trace. Exits 1 if any trace is damaged."
    in
    let action dir engine =
      match Archive.verify ~runner:(runner_of engine) ~dir () with
      | Error e ->
        Printf.eprintf "difftrace: %s\n" (Archive.error_to_string e);
        exit 1
      | Ok r ->
        print_string (Archive.render_report r);
        if not r.Archive.rp_ok then exit 1
    in
    Cmd.v (Cmd.info "verify" ~doc) Term.(const action $ dir_t $ engine_t)
  in
  let repair_cmd =
    let doc =
      "Salvage a damaged archive: recover the longest checksum-valid prefix \
       of every trace and rewrite a clean v2 archive."
    in
    let out_t =
      Arg.(
        required
        & opt (some string) None
        & info [ "o"; "out" ] ~docv:"DIR" ~doc:"Directory for the repaired archive.")
    in
    let action dir out engine =
      match Archive.repair ~runner:(runner_of engine) ~src:dir ~dst:out () with
      | Error e ->
        Printf.eprintf "difftrace: %s\n" (Archive.error_to_string e);
        exit 1
      | Ok (l, files) ->
        List.iter
          (fun s ->
            Printf.printf
              "salvaged trace %d.%d: %d events recovered, %d bytes dropped \
               (%s)\n"
              s.Archive.sv_pid s.Archive.sv_tid s.Archive.sv_events
              s.Archive.sv_dropped_bytes s.Archive.sv_reason)
          l.Archive.salvaged;
        Printf.printf "wrote %d repaired trace files to %s (%d salvaged)\n"
          files out
          (List.length l.Archive.salvaged)
    in
    Cmd.v (Cmd.info "repair" ~doc) Term.(const action $ dir_t $ out_t $ engine_t)
  in
  let doc = "Archive integrity tooling: verify checksums, repair damage." in
  Cmd.group (Cmd.info "archive" ~doc) [ verify_cmd; repair_cmd ]

(* --- triage (single-run analysis, no reference needed) ------------- *)

let triage_cmd =
  let doc =
    "Analyze a single (possibly faulty) run: JSM outliers, dendrogram, and \
     the least-progressed threads — no reference execution needed."
  in
  let action w np seed fault all_images filter custom attrs k linkage engine
      mode store prof =
    let config = config_of ~filter ~custom ~attrs ~k ~linkage ~engine ~mode in
    run_profiled prof ~config @@ fun () ->
    let outcome = run_workload w ~np ~seed ~level:(level_of all_images) ~fault in
    let store = open_store (store_of store) in
    let ses = Session.create ?store () in
    let r =
      Session.triage ~outcome ses config
        { Session.tg_subject = Session.Traces outcome.R.traces; tg_limit = 8 }
    in
    flush_store store;
    match r with
    | Ok r -> print_string r.Session.tg_output
    | Error e ->
      Printf.eprintf "difftrace: %s\n" (Session.error_to_string e);
      exit 1
  in
  Cmd.v (Cmd.info "triage" ~doc)
    Term.(const action $ workload_t $ np_t $ seed_t $ fault_t $ all_images_t
          $ filter_t $ custom_t $ attrs_t $ k_t $ linkage_t $ engine_t
          $ mode_t $ store_flags_t $ profile_t)

(* --- export (OTF2-style archive) ------------------------------------ *)

let export_cmd =
  let doc =
    "Run a workload and export its logically-timestamped traces as an \
     OTF2-style text archive on stdout."
  in
  let action w np seed fault all_images =
    let outcome = run_workload w ~np ~seed ~level:(level_of all_images) ~fault in
    print_string
      (Difftrace_temporal.Otf2.render (Difftrace_temporal.Otf2.of_outcome outcome))
  in
  Cmd.v (Cmd.info "export" ~doc)
    Term.(const action $ workload_t $ np_t $ seed_t $ fault_t $ all_images_t)

(* --- explore: schedule exploration ----------------------------------- *)

let explore_cmd =
  let doc =
    "Run one workload under many scheduler seeds and report how the \
     outcome varies (deadlock frequency, distinct trace shapes) — simple \
     nondeterminism control."
  in
  let seeds_t =
    Arg.(
      value
      & opt int 8
      & info [ "n"; "seeds" ] ~docv:"N" ~doc:"Number of seeds to explore (1..N).")
  in
  let action w np fault all_images nseeds =
    let level = level_of all_images in
    let seeds = List.init nseeds (fun i -> i + 1) in
    let verdicts =
      List.map
        (fun seed ->
          let o = run_workload w ~np ~seed ~level ~fault in
          { Difftrace_simulator.Explore.seed;
            deadlocked = o.R.deadlocked <> [];
            timed_out = o.R.timed_out;
            races = List.length o.R.races;
            fingerprint =
              Difftrace_simulator.Explore.fingerprint_of o.R.traces })
        seeds
    in
    print_string
      (Difftrace_simulator.Explore.render
         (Difftrace_simulator.Explore.summarize verdicts))
  in
  Cmd.v (Cmd.info "explore" ~doc)
    Term.(const action $ workload_t $ np_t $ fault_t $ all_images_t $ seeds_t)

(* --- report: a complete markdown debugging report ------------------- *)

let report_cmd =
  let doc =
    "Run the full DiffTrace loop for one fault and write a markdown report: \
     configuration search, ranking, diffNLR, phase diff, calling-context \
     deltas and stack tree."
  in
  let out_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Write to FILE (default stdout).")
  in
  let action w np seed fault all_images engine out prof =
    run_profiled prof @@ fun () ->
    let level = level_of all_images in
    let normal = run_workload w ~np ~seed ~level ~fault:Fault.No_fault in
    let faulty = run_workload w ~np ~seed ~level ~fault in
    let report =
      Report.generate ~engine ~fault_label:(Fault.to_string fault) ~normal
        ~faulty ()
    in
    match out with
    | None -> print_string report.Report.markdown
    | Some file ->
      let oc = open_out file in
      output_string oc report.Report.markdown;
      close_out oc;
      Printf.printf "wrote %s (%d bytes)\n" file
        (String.length report.Report.markdown)
  in
  Cmd.v (Cmd.info "report" ~doc)
    Term.(const action $ workload_t $ np_t $ seed_t $ fault_t $ all_images_t
          $ engine_t $ out_t $ profile_t)

(* --- autotune: search the configuration grid ------------------------ *)

let autotune_cmd =
  let doc =
    "Search the filter/attribute/K/linkage grid for the configuration that \
     most sharply separates a faulty run from the normal one (the paper's \
     Fig. 1 refinement loop, automated)."
  in
  let ks_t =
    Arg.(
      value
      & opt_all int [ 10 ]
      & info [ "K" ] ~docv:"K" ~doc:"NLR constants to sweep (repeatable).")
  in
  let action w np seed fault all_images custom ks engine store prof =
    run_profiled prof @@ fun () ->
    let level = level_of all_images in
    let normal = run_workload w ~np ~seed ~level ~fault:Fault.No_fault in
    let faulty = run_workload w ~np ~seed ~level ~fault in
    ignore custom;
    let store = open_store (store_of store) in
    let r =
      Autotune.search ~engine ?store ~ks ~normal:normal.R.traces
        ~faulty:faulty.R.traces ()
    in
    flush_store store;
    match r with
    | Error e ->
      Printf.eprintf "difftrace: %s\n" (Session.error_to_string e);
      exit 1
    | Ok r ->
      Printf.printf "evaluated %d configurations\n" r.Autotune.evaluated;
      print_string (Autotune.render r);
      Printf.printf "best: %s (B-score %.3f, top suspect %s)\n"
        (Config.name r.Autotune.best.Autotune.config)
        r.Autotune.best.Autotune.bscore
        (Option.value ~default:"-" r.Autotune.best.Autotune.top_suspect)
  in
  Cmd.v (Cmd.info "autotune" ~doc)
    Term.(const action $ workload_t $ np_t $ seed_t $ fault_t $ all_images_t
          $ custom_t $ ks_t $ engine_t $ store_flags_t $ profile_t)

(* --- query: the event-DB drill-down language ------------------------- *)

let query_cmd =
  let doc =
    "Query the indexed event database of a recorded archive: count/list \
     calls, call sites under a loop or function, recognized loops, thread \
     and function inventories, and (with --against) the first raw-event \
     divergence of two runs."
  in
  let query_t =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"QUERY"
          ~doc:
            "One query, e.g. 'count MPI_Send on 3', 'list MPI_Recv on 6.4 in \
             0..200 limit 5', 'sites MPI_Send under L0', 'loops', 'threads', \
             'funcs', 'diverge' (grammar in MANUAL.md).")
  in
  let archive_t =
    Arg.(
      required
      & opt (some string) None
      & info [ "archive" ] ~docv:"DIR" ~doc:"Archive of the run to query.")
  in
  let against_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "against" ] ~docv:"DIR"
          ~doc:
            "Second archive (the faulty run) for two-run queries like \
             'diverge'.")
  in
  let salvage_t =
    Arg.(
      value & flag
      & info [ "salvage" ]
          ~doc:"Recover the checksum-valid prefix of damaged archives.")
  in
  let action query archive against salvage engine store prof =
    let config = Config.default |> Config.with_engine engine in
    run_profiled prof ~config @@ fun () ->
    let store = open_store (store_of store) in
    let ses = Session.create ?store () in
    let r =
      Session.query ses config
        { Session.qy_text = query;
          qy_source = Session.Archive { dir = archive; salvage };
          qy_against =
            Option.map (fun dir -> Session.Archive { dir; salvage }) against }
    in
    flush_store store;
    match r with
    | Ok r -> print_string r.Session.qy_output
    | Error e ->
      Printf.eprintf "difftrace: %s\n" (Session.error_to_string e);
      exit 1
  in
  Cmd.v (Cmd.info "query" ~doc)
    Term.(const action $ query_t $ archive_t $ against_t $ salvage_t
          $ engine_t $ store_flags_t $ profile_t)

(* --- campaign: crash-isolated fault x seed sweeps -------------------- *)

let campaign_cmd =
  let module C = Campaign in
  let dir_t =
    Arg.(
      required
      & opt (some string) None
      & info [ "d"; "dir" ] ~docv:"DIR"
          ~doc:
            "Campaign state directory: the CRC-checked manifest plus one \
             trace archive per executed cell. Re-running over the same \
             directory resumes the campaign.")
  in
  let kind_t =
    Arg.(
      value
      & opt string "oddeven"
      & info [ "w"; "workload" ] ~docv:"KIND"
          ~doc:
            "Cell kind: oddeven, ilcs, lulesh, heat, heat2d, selftest \
             (odd/even plus injected crash/timeout faults for exercising \
             crash isolation), or corpus:FRONTEND:DIR (each cell ingests \
             a file of DIR through an ingestion frontend; the reference \
             run ingests the first file, seed s selects file s mod n).")
  in
  let faults_t =
    Arg.(
      value
      & opt_all fault_conv []
      & info [ "f"; "fault" ] ~docv:"FAULT"
          ~doc:"Fault to sweep; repeatable — the matrix is faults x seeds.")
  in
  let nseeds_t =
    Arg.(
      value
      & opt int 3
      & info [ "seeds" ] ~docv:"N" ~doc:"Scheduler seeds 1..N per fault.")
  in
  let max_steps_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-steps" ] ~docv:"N"
          ~doc:
            "Per-cell step budget: a cell still running after N scheduler \
             steps is recorded as hung (with its truncated traces) instead \
             of blocking the campaign.")
  in
  let print_outcome o = print_string (C.render o) in
  let run_cmd =
    let doc =
      "Execute the fault x seed matrix, one archived cell at a time; crashes \
       and hangs become per-cell verdicts, never campaign aborts. Re-running \
       resumes from the manifest."
    in
    let action dir kind np faults nseeds max_steps filter custom attrs k
        linkage engine mode store prof =
      if faults = [] then begin
        prerr_endline
          "difftrace: campaign run needs at least one --fault (repeatable)";
        exit 2
      end;
      (* corpus cells hold foreign traces; the MPI default filter would
         empty them (an explicit --filter still wins) *)
      let filter =
        if String.length kind >= 7 && String.sub kind 0 7 = "corpus:" then
          frontend_filter ~frontend:(Some kind) filter
        else filter
      in
      let config = config_of ~filter ~custom ~attrs ~k ~linkage ~engine ~mode in
      run_profiled prof ~config @@ fun () ->
      (* campaigns persist analysis by default, beside their archives;
         a resumed campaign re-adopts the store like everything else *)
      let store = open_store (campaign_store_of ~dir store) in
      match
        C.matrix ?max_steps ~kind ~np ~faults
          ~seeds:(List.init nseeds (fun i -> i + 1))
          ()
      with
      | exception Invalid_argument m ->
        Printf.eprintf "difftrace: %s\n" m;
        exit 2
      | m -> (
        let on_cell (r : C.cell_result) =
          Printf.printf "cell %d [%s]: %s%s\n%!" r.C.cell.C.index
            (C.cell_label r.C.cell)
            (C.verdict_to_string r.C.verdict)
            (match r.C.bscore with
            | Some b -> Printf.sprintf " (B-score %.3f)" b
            | None -> "")
        in
        match C.run ~config ~on_cell ?store ~dir m with
        | Error e ->
          Printf.eprintf "difftrace: %s\n" (C.error_to_string e);
          exit 1
        | Ok o ->
          flush_store store;
          Printf.printf "campaign: %d cells executed, %d resumed\n" o.C.executed
            o.C.resumed_cells;
          print_outcome o)
    in
    Cmd.v (Cmd.info "run" ~doc)
      Term.(const action $ dir_t $ kind_t $ np_t $ faults_t $ nseeds_t
            $ max_steps_t $ filter_t $ custom_t $ attrs_t $ k_t $ linkage_t
            $ engine_t $ mode_t $ store_flags_t $ profile_t)
  in
  let status_cmd =
    let doc =
      "Print the recorded state of a campaign directory without executing \
       anything."
    in
    let action dir =
      match C.status ~dir with
      | Error e ->
        Printf.eprintf "difftrace: %s\n" (C.error_to_string e);
        exit 1
      | Ok o -> print_outcome o
    in
    Cmd.v (Cmd.info "status" ~doc) Term.(const action $ dir_t)
  in
  let report_cmd =
    let doc =
      "Render the ranked cross-fault triage report from a campaign \
       directory; --diffnlr drills into the best-ranked cell's top suspect, \
       --variational merges every archived run into one conditioned \
       variational NLR."
    in
    let diffnlr_t =
      Arg.(
        value & flag
        & info [ "diffnlr" ]
            ~doc:
              "Also re-load the best-ranked cell's archives and print the \
               diffNLR of its top suspect against the reference run.")
    in
    let variational_t =
      Arg.(
        value & flag
        & info [ "variational" ]
            ~doc:
              "Also merge every archived run (references + recorded cells) \
               into one variational NLR conditioned on the fault and seed \
               axes, and name the minimal condition discriminating the bad \
               cells.")
    in
    let action dir diffnlr variational filter custom attrs k linkage engine
        mode store prof =
      let config = config_of ~filter ~custom ~attrs ~k ~linkage ~engine ~mode in
      run_profiled prof ~config @@ fun () ->
      match C.status ~dir with
      | Error e ->
        Printf.eprintf "difftrace: %s\n" (C.error_to_string e);
        exit 1
      | Ok o -> (
        print_outcome o;
        if diffnlr || variational then begin
          let store = open_store (campaign_store_of ~dir store) in
          (if diffnlr then
             match C.top_cell_diffnlr ~config ?store ~dir o with
             | Ok s -> print_string s
             | Error e ->
               Printf.eprintf "difftrace: %s\n" e;
               exit 1);
          (if variational then
             match C.variational ~config ?store ~dir o with
             | Ok s -> print_string s
             | Error e ->
               Printf.eprintf "difftrace: %s\n" e;
               exit 1);
          flush_store store
        end)
    in
    Cmd.v (Cmd.info "report" ~doc)
      Term.(const action $ dir_t $ diffnlr_t $ variational_t $ filter_t
            $ custom_t $ attrs_t $ k_t $ linkage_t $ engine_t $ mode_t
            $ store_flags_t $ profile_t)
  in
  let doc =
    "Fault campaigns: run a declarative fault x scheduler-seed matrix with \
     per-cell crash isolation, checkpointed resume, and a ranked cross-fault \
     triage report."
  in
  Cmd.group (Cmd.info "campaign" ~doc) [ run_cmd; status_cmd; report_cmd ]

(* --- store: persistent analysis store tooling ------------------------ *)

let store_cmd =
  let dir_t =
    Arg.(
      required
      & opt (some string) None
      & info [ "d"; "dir" ] ~docv:"DIR" ~doc:"Analysis store directory.")
  in
  let load_or_exit dir =
    match Store.load ~dir with
    | Ok st -> st
    | Error e ->
      Printf.eprintf "difftrace: %s\n" (Store.error_to_string e);
      exit 1
  in
  let stats_cmd =
    let doc =
      "Print what the store holds: summaries, matrices, shared-table sizes \
       and the file size on disk."
    in
    let action dir = print_string (Store.render_stats (Store.stats (load_or_exit dir))) in
    Cmd.v (Cmd.info "stats" ~doc) Term.(const action $ dir_t)
  in
  let gc_cmd =
    let doc =
      "Evict the oldest cached entries beyond the retention caps and rewrite \
       the store file."
    in
    let keep_summaries_t =
      Arg.(
        value
        & opt int 4096
        & info [ "keep-summaries" ] ~docv:"N"
            ~doc:"Keep at most $(docv) newest NLR summaries.")
    in
    let keep_matrices_t =
      Arg.(
        value
        & opt int 64
        & info [ "keep-matrices" ] ~docv:"N"
            ~doc:"Keep at most $(docv) newest JSM matrices.")
    in
    let keep_signatures_t =
      Arg.(
        value
        & opt int 4096
        & info [ "keep-signatures" ] ~docv:"N"
            ~doc:"Keep at most $(docv) newest MinHash signatures.")
    in
    let keep_vdiffs_t =
      Arg.(
        value
        & opt int 64
        & info [ "keep-vdiffs" ] ~docv:"N"
            ~doc:"Keep at most $(docv) newest variational alignments.")
    in
    let action dir keep_summaries keep_matrices keep_signatures keep_vdiffs =
      let st = load_or_exit dir in
      let s, m, g, v =
        Store.gc ~keep_summaries ~keep_matrices ~keep_signatures ~keep_vdiffs st
      in
      (match Store.flush st with
      | Ok () -> ()
      | Error e ->
        Printf.eprintf "difftrace: %s\n" (Store.error_to_string e);
        exit 1);
      (* the vdiff field appears only when something was dropped, keeping
         the long-standing three-field line byte-stable *)
      Printf.printf "evicted %d summaries, %d matrices, %d signatures%s\n" s m g
        (if v > 0 then Printf.sprintf ", %d vdiffs" v else "")
    in
    Cmd.v (Cmd.info "gc" ~doc)
      Term.(const action $ dir_t $ keep_summaries_t $ keep_matrices_t
            $ keep_signatures_t $ keep_vdiffs_t)
  in
  let verify_cmd =
    let doc =
      "Scan the store file's checksummed records without adopting anything; \
       exits 1 when damage is found (the damaged suffix is discarded on the \
       next load)."
    in
    let action dir =
      match Store.verify ~dir with
      | Error e ->
        Printf.eprintf "difftrace: %s\n" (Store.error_to_string e);
        exit 1
      | Ok c ->
        print_string (Store.render_check c);
        if c.Store.c_damage <> None then exit 1
    in
    Cmd.v (Cmd.info "verify" ~doc) Term.(const action $ dir_t)
  in
  let doc =
    "Persistent analysis store tooling: stats, gc, integrity verification."
  in
  Cmd.group (Cmd.info "store" ~doc) [ stats_cmd; gc_cmd; verify_cmd ]

(* --- filters ------------------------------------------------------- *)

let filters_cmd =
  let doc = "Print the predefined filter catalog (paper Table I)." in
  let action () =
    Difftrace_util.Texttable.print
      ~headers:[ "Category"; "Sub-Category"; "Description" ]
      (List.map (fun (a, b, c) -> [ a; b; c ]) F.predefined)
  in
  Cmd.v (Cmd.info "filters" ~doc) Term.(const action $ const ())

(* --- serve / client: the resident daemon ----------------------------- *)

let serve_cmd =
  let doc =
    "Run the resident analysis daemon: one warm session (store, memo, \
     completed JSMs) multiplexed over many clients, speaking the \
     line-delimited difftrace-rpc/1 protocol (see the MANUAL) over a Unix \
     socket or stdio."
  in
  let socket_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Listen on the Unix-domain socket $(docv) (created; a stale \
                socket file is replaced).")
  in
  let stdio_t =
    Arg.(
      value & flag
      & info [ "stdio" ]
          ~doc:
            "Serve one session over stdin/stdout: one request line in, one \
             response line out. The transport of the protocol transcript \
             tests.")
  in
  let state_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "state" ] ~docv:"DIR"
          ~doc:
            "State directory: 'record' requests that name no output \
             directory archive their run under $(docv)/runs/<name>.")
  in
  let action socket stdio store state engine prof =
    let store = open_store (store_of store) in
    run_profiled prof @@ fun () ->
    let d =
      Serve.Daemon.create ?store ?state_dir:state ~default_engine:engine ()
    in
    match (stdio, socket) with
    | true, _ -> Serve.Daemon.serve_stdio d
    | false, Some path ->
      Printf.eprintf "difftrace serve: listening on %s (difftrace-rpc/1)\n%!"
        path;
      Serve.Daemon.serve_socket d ~path
    | false, None ->
      prerr_endline "difftrace: serve needs --socket PATH or --stdio";
      exit 2
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(const action $ socket_t $ stdio_t $ store_flags_t $ state_t
          $ engine_t $ profile_t)

let client_cmd =
  let doc =
    "Send difftrace-rpc/1 request lines to a running daemon and print its \
     replies."
  in
  let socket_t =
    Arg.(
      required
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH" ~doc:"Daemon socket path.")
  in
  let exec_t =
    Arg.(
      value
      & opt_all string []
      & info [ "e"; "execute" ] ~docv:"JSON"
          ~doc:
            "Request line to send (repeatable, sent in order). Without \
             $(opt), request lines are read from stdin.")
  in
  let decode_t =
    Arg.(
      value & flag
      & info [ "decode" ]
          ~doc:
            "Print each ok response's output field verbatim (events as \
             'event: NAME' lines) instead of the raw JSON reply; error \
             responses go to stderr and make the client exit 1.")
  in
  let action socket lines decode =
    match Serve.Client.connect ~path:socket () with
    | Error m ->
      Printf.eprintf "difftrace: %s\n" m;
      exit 1
    | Ok conn ->
      let failed = ref false in
      let on_event ev =
        if decode then Printf.printf "event: %s\n" ev.Serve.Protocol.ev_name
        else print_endline (Serve.Protocol.encode_event ev)
      in
      let send line =
        match Serve.Client.rpc conn line ~on_event with
        | Error m ->
          Printf.eprintf "difftrace: %s\n" m;
          failed := true
        | Ok r ->
          if decode then (
            match r.Serve.Protocol.rsp_body with
            | Ok p -> print_string (Serve.Protocol.payload_output p)
            | Error e ->
              Printf.eprintf "difftrace: error (%s): %s\n"
                e.Serve.Protocol.err_kind e.Serve.Protocol.err_message;
              failed := true)
          else print_endline (Serve.Protocol.encode_response r)
      in
      (match lines with
      | [] -> (
        try
          while true do
            send (input_line stdin)
          done
        with End_of_file -> ())
      | ls -> List.iter send ls);
      Serve.Client.close conn;
      if !failed then exit 1
  in
  Cmd.v (Cmd.info "client" ~doc)
    Term.(const action $ socket_t $ exec_t $ decode_t)

let () =
  let doc = "whole-program trace analysis and diffing for HPC debugging" in
  let info = Cmd.info "difftrace" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ run_cmd; compare_cmd; table_cmd; record_cmd; analyze_cmd;
            vdiff_cmd; frontend_cmd; archive_cmd; campaign_cmd; store_cmd;
            triage_cmd;
            autotune_cmd; query_cmd; report_cmd; explore_cmd; export_cmd;
            filters_cmd; serve_cmd; client_cmd ]))
