(* Table-driven CRC-32 (reflected polynomial 0xEDB88320). The running
   value is kept pre- and post-conditioned with the customary all-ones
   mask folded into [init]/[finish], so [update] is a pure table walk. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let mask = 0xFFFFFFFF
let init = mask

let update crc s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Crc32.update: out-of-bounds range";
  let t = Lazy.force table in
  let c = ref (crc land mask) in
  for i = pos to pos + len - 1 do
    c := t.((!c lxor Char.code s.[i]) land 0xff) lxor (!c lsr 8)
  done;
  !c

let finish crc = crc lxor mask land mask
let string s = finish (update init s ~pos:0 ~len:(String.length s))

let to_le_bytes d =
  String.init 4 (fun i -> Char.chr ((d lsr (8 * i)) land 0xff))

let of_le_bytes s pos =
  if pos < 0 || pos + 4 > String.length s then
    invalid_arg "Crc32.of_le_bytes: truncated";
  let b i = Char.code s.[pos + i] in
  b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)
