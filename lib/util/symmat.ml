(* Packed symmetric float matrices: the upper triangle (i <= j) stored
   row-major in one flat array, n*(n+1)/2 cells for an n x n matrix.
   Row i owns the n-i cells (i,i)..(i,n-1) at offset i*n - i*(i-1)/2. *)

type t = { n : int; cells : float array }

let cells_for n = n * (n + 1) / 2

let make n =
  if n < 0 then invalid_arg "Symmat.make";
  { n; cells = Array.make (cells_for n) 0.0 }

let dim t = t.n

let offset t i = (i * t.n) - (i * (i - 1) / 2)

let check t i =
  if i < 0 || i >= t.n then invalid_arg "Symmat: index out of range"

let get t i j =
  check t i;
  check t j;
  let i, j = if i <= j then (i, j) else (j, i) in
  t.cells.(offset t i + (j - i))

let set t i j v =
  check t i;
  check t j;
  let i, j = if i <= j then (i, j) else (j, i) in
  t.cells.(offset t i + (j - i)) <- v

let init n f =
  if n < 0 then invalid_arg "Symmat.init";
  let t = make n in
  for i = 0 to n - 1 do
    let base = offset t i in
    for j = i to n - 1 do
      t.cells.(base + (j - i)) <- f i j
    done
  done;
  t

let of_upper_rows ~n rows =
  if Array.length rows <> n then
    invalid_arg
      (Printf.sprintf "Symmat.of_upper_rows: %d rows for dimension %d"
         (Array.length rows) n);
  let t = make n in
  Array.iteri
    (fun i row ->
      if Array.length row <> n - i then
        invalid_arg
          (Printf.sprintf
             "Symmat.of_upper_rows: row %d has %d cells, expected %d" i
             (Array.length row) (n - i));
      Array.blit row 0 t.cells (offset t i) (n - i))
    rows;
  t

let of_cells ~n cells =
  if Array.length cells <> cells_for n then
    invalid_arg
      (Printf.sprintf "Symmat.of_cells: %d cells for dimension %d"
         (Array.length cells) n);
  { n; cells = Array.copy cells }

let cells t = t.cells

let to_rows t =
  Array.init t.n (fun i -> Array.init t.n (fun j -> get t i j))

let map f t = { t with cells = Array.map f t.cells }

let map2 f a b =
  if a.n <> b.n then invalid_arg "Symmat.map2: dimension mismatch";
  { a with cells = Array.map2 f a.cells b.cells }

let row_sum t i =
  check t i;
  let acc = ref 0.0 in
  for j = 0 to t.n - 1 do
    acc := !acc +. get t i j
  done;
  !acc
