let write buf n =
  if n < 0 then invalid_arg "Varint.write: negative";
  let rec go n =
    if n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  go n

let read s pos =
  let len = String.length s in
  let rec go pos shift acc =
    if pos >= len then invalid_arg "Varint.read: truncated input";
    (* [write] never emits more than 9 bytes (shift 56 holds bits
       56..62 of a 63-bit int); past that — or once a continuation run
       would set the sign bit — [lsl] silently wraps, so reject. *)
    if shift > 56 then invalid_arg "Varint.read: overflow";
    let b = Char.code s.[pos] in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if acc < 0 then invalid_arg "Varint.read: overflow";
    if b land 0x80 = 0 then (acc, pos + 1) else go (pos + 1) (shift + 7) acc
  in
  go pos 0 0

let size n =
  if n < 0 then invalid_arg "Varint.size: negative";
  let rec go n acc = if n < 0x80 then acc else go (n lsr 7) (acc + 1) in
  go n 1

let write_list buf l =
  write buf (List.length l);
  List.iter (write buf) l

let read_list s pos =
  let n, pos = read s pos in
  let rec go i pos acc =
    if i = n then (List.rev acc, pos)
    else
      let v, pos = read s pos in
      go (i + 1) pos (v :: acc)
  in
  go 0 pos []
