(** Packed symmetric float matrices.

    An n x n symmetric matrix stored as its upper triangle only —
    n*(n+1)/2 cells instead of n², and structural equality on the packed
    representation coincides with matrix equality (a dense symmetric
    matrix has two copies of every off-diagonal cell that could
    disagree). Accessors transparently reflect (i, j) to (j, i). *)

type t

(** [make n] is the n x n all-zero matrix. *)
val make : int -> t

(** [dim t] is n. *)
val dim : t -> int

(** [get t i j] = [get t j i]. Raises [Invalid_argument] out of range. *)
val get : t -> int -> int -> float

(** [set t i j v] sets both (i, j) and (j, i) (one cell is stored). *)
val set : t -> int -> int -> float -> unit

(** [init n f] fills from [f i j], calling [f] only on the upper
    triangle (i <= j), row by row. *)
val init : int -> (int -> int -> float) -> t

(** [of_upper_rows ~n rows] packs ragged upper-triangle rows: [rows.(i)]
    must hold the n-i cells (i,i)..(i,n-1). Raises [Invalid_argument]
    on a row-count or row-length mismatch. *)
val of_upper_rows : n:int -> float array array -> t

(** [of_cells ~n cells] wraps a copy of a flat packed-triangle array of
    exactly n*(n+1)/2 cells (the {!cells} layout). *)
val of_cells : n:int -> float array -> t

(** [cells t] is the flat packed storage, row-major upper rows: row i's
    cells (i,i)..(i,n-1) start at offset i*n - i*(i-1)/2. Shared, do
    not mutate. *)
val cells : t -> float array

(** [to_rows t] is a fresh dense mirror (both triangles filled). *)
val to_rows : t -> float array array

(** [map f t] applies [f] to every stored cell. *)
val map : (float -> float) -> t -> t

(** [map2 f a b] combines two matrices cell-wise; dimensions must match. *)
val map2 : (float -> float -> float) -> t -> t -> t

(** [row_sum t i] = Σ_j [get t i j]. *)
val row_sum : t -> int -> float
