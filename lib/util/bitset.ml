(* Bit sets packed into OCaml native ints, [bits_per_word] bits per word. *)

let bits_per_word = Sys.int_size

type t = { mutable words : int array; cap : int }

let words_for cap = (cap + bits_per_word - 1) / bits_per_word

let create cap =
  if cap < 0 then invalid_arg "Bitset.create";
  { words = Array.make (max 1 (words_for cap)) 0; cap }

let capacity s = s.cap
let copy s = { words = Array.copy s.words; cap = s.cap }

let check s i =
  if i < 0 || i >= s.cap then invalid_arg "Bitset: index out of range"

let add s i =
  check s i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  s.words.(w) <- s.words.(w) lor (1 lsl b)

let remove s i =
  check s i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  s.words.(w) <- s.words.(w) land lnot (1 lsl b)

let mem s i =
  check s i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  s.words.(w) land (1 lsl b) <> 0

let singleton n i =
  let s = create n in
  add s i;
  s

let full n =
  let s = create n in
  for i = 0 to n - 1 do
    add s i
  done;
  s

let of_list n l =
  let s = create n in
  List.iter (add s) l;
  s

let is_empty s = Array.for_all (fun w -> w = 0) s.words

(* Branch-free SWAR popcount (~12 ops per word vs. one loop iteration
   per set bit for the former Kernighan loop — the words here are
   dense attribute incidences, so bits are the common case, not the
   exception). The repeated-byte masks are built by shifting because a
   full-width hex literal overflows OCaml's boxed-free int range; the
   final multiply gathers the per-byte counts into the top byte, which
   can hold them because a word has at most [Sys.int_size] < 128 bits. *)
let rep8 byte =
  let bytes = (Sys.int_size + 7) / 8 in
  let rec go acc n = if n = 0 then acc else go ((acc lsl 8) lor byte) (n - 1) in
  go 0 bytes

let m1 = rep8 0x55
let m2 = rep8 0x33
let m4 = rep8 0x0F
let h01 = rep8 0x01
let top_shift = 8 * ((Sys.int_size + 7) / 8) - 8

let popcount x =
  let x = x - ((x lsr 1) land m1) in
  let x = (x land m2) + ((x lsr 2) land m2) in
  let x = (x + (x lsr 4)) land m4 in
  (x * h01) lsr top_shift

let cardinal s = Array.fold_left (fun acc w -> acc + popcount w) 0 s.words

let same_cap a b =
  if a.cap <> b.cap then invalid_arg "Bitset: capacity mismatch"

let equal a b =
  same_cap a b;
  let rec go i = i >= Array.length a.words || (a.words.(i) = b.words.(i) && go (i + 1)) in
  go 0

let compare a b =
  same_cap a b;
  let rec go i =
    if i >= Array.length a.words then 0
    else
      let c = Int.compare a.words.(i) b.words.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let subset a b =
  same_cap a b;
  let rec go i =
    i >= Array.length a.words || (a.words.(i) land lnot b.words.(i) = 0 && go (i + 1))
  in
  go 0

let map2 f a b =
  same_cap a b;
  { words = Array.init (Array.length a.words) (fun i -> f a.words.(i) b.words.(i));
    cap = a.cap }

let inter a b = map2 ( land ) a b
let union a b = map2 ( lor ) a b
let diff a b = map2 (fun x y -> x land lnot y) a b

let count2 f a b =
  same_cap a b;
  let acc = ref 0 in
  for i = 0 to Array.length a.words - 1 do
    acc := !acc + popcount (f a.words.(i) b.words.(i))
  done;
  !acc

let inter_cardinal a b = count2 ( land ) a b
let union_cardinal a b = count2 ( lor ) a b

let jaccard a b =
  let u = union_cardinal a b in
  if u = 0 then 1.0 else float_of_int (inter_cardinal a b) /. float_of_int u

let add_all a b =
  same_cap a b;
  for i = 0 to Array.length a.words - 1 do
    a.words.(i) <- a.words.(i) lor b.words.(i)
  done

let inter_into a b =
  same_cap a b;
  for i = 0 to Array.length a.words - 1 do
    a.words.(i) <- a.words.(i) land b.words.(i)
  done

(* Walk set bits word at a time, isolating the lowest set bit with
   [w land (-w)]; empty words cost one test instead of
   [bits_per_word]. The visit order is still increasing. *)
let iter f s =
  for w = 0 to Array.length s.words - 1 do
    let word = ref s.words.(w) in
    let base = w * bits_per_word in
    while !word <> 0 do
      let low = !word land - !word in
      f (base + popcount (low - 1));
      word := !word land (!word - 1)
    done
  done

let fold f s init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) s;
  !acc

let to_list s = List.rev (fold (fun i acc -> i :: acc) s [])

let hash s = Array.fold_left (fun h w -> (h * 1000003) lxor w) s.cap s.words

let pp ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Format.pp_print_int)
    (to_list s)
