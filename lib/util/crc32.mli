(** CRC-32 (IEEE 802.3, the zlib/PNG polynomial) over byte strings.

    The archive v2 framing appends a CRC-32 footer to every chunk and a
    whole-stream footer to the terminator, so a flipped bit anywhere in
    a trace file is detected before the LZW decoder ever sees it.
    Digests are plain non-negative [int]s in [0, 2^32); the module is
    pure and allocation-free per update apart from the shared table. *)

(** The initial running value (all ones pre-conditioning already
    applied): [finish init] is the CRC of the empty string. *)
val init : int

(** [update crc s ~pos ~len] folds [s.[pos .. pos+len-1]] into the
    running value. Raises [Invalid_argument] on an out-of-bounds
    range. *)
val update : int -> string -> pos:int -> len:int -> int

(** [finish crc] finalizes a running value into the digest. *)
val finish : int -> int

(** [string s] = [finish (update init s ~pos:0 ~len:(String.length s))]. *)
val string : string -> int

(** [to_le_bytes d] is the digest as 4 little-endian bytes — the
    on-disk footer encoding. *)
val to_le_bytes : int -> string

(** [of_le_bytes s pos] reads a footer written by {!to_le_bytes}.
    Raises [Invalid_argument] if fewer than 4 bytes remain. *)
val of_le_bytes : string -> int -> int
