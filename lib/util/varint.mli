(** LEB128 variable-length integer coding.

    The ParLOT-style trace codec stores function IDs and LZW codes as
    unsigned varints: small IDs (the common case in hot loops) take a
    single byte, keeping the on-the-fly compressed streams compact. *)

(** [write buf n] appends the unsigned LEB128 coding of [n] to [buf].
    Raises [Invalid_argument] if [n < 0]. *)
val write : Buffer.t -> int -> unit

(** [read s pos] decodes an unsigned varint starting at [pos] and returns
    [(value, next_pos)]. Raises [Invalid_argument] on truncated input and
    on overflow — a continuation run that would shift past the native
    int's 62 value bits (malformed or adversarial input; [write] never
    produces it). *)
val read : string -> int -> int * int

(** [size n] is the number of bytes [write] would emit for [n]. *)
val size : int -> int

(** [write_list buf l] writes the length of [l] followed by its
    elements. *)
val write_list : Buffer.t -> int list -> unit

(** [read_list s pos] reads a list written by [write_list]. *)
val read_list : string -> int -> int list * int
