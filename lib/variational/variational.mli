(** N-way variational diffing — one merged NLR for a whole run set.

    The paper validates DiffTrace pairwise: one faulty execution
    against one reference. A campaign produces dozens of runs whose
    verdicts (ok / hung / failed) label an entire fault × seed matrix,
    and the question worth answering is not "how does cell 7 differ
    from its reference" but "{e which structural difference appears
    exactly in the runs that went wrong}" — the variational-trace
    question of Meinicke et al. ("Understanding Differences among
    Executions with Variational Traces", PAPERS.md).

    This module merges k NLR element sequences into one {e variational
    NLR} by pairwise-anchored progressive alignment: the two most
    similar runs (by the MinHash sketch tier, {!Difftrace_cluster.Sketch})
    merge first, every later run is aligned against the running profile
    with the same {!Difftrace_diff.Myers} machinery diffNLR uses. The
    result is a single column sequence where every column carries a
    {!Difftrace_util.Bitset} of the runs it appears in; maximal runs of
    columns with one presence set form {e regions}, and a small
    set-cover over the declared condition axes (fault, seed, ...)
    turns a region's presence set into a minimal discriminating
    condition such as [fault=f2 ∧ seed∈{3,7}].

    The alignment is lossless ({!reconstruct} returns every input
    sequence verbatim) and collapses to the classical pairwise diffNLR
    when k = 2 ({!to_diffnlr} renders byte-identically — both are
    property-tested). *)

type run = {
  vr_name : string;  (** stable display name, e.g. a cell label *)
  vr_elems : string list;  (** rendered NLR elements, in trace order *)
  vr_axes : (string * string) list;
      (** condition axes as [(axis, value)], e.g. [("fault", "f2");
          ("seed", "3")]; axes missing on a run read as ["-"] *)
  vr_bad : bool;  (** verdict label: [true] = the run went wrong *)
}

type t = private {
  runs : run array;  (** in input order — run index [i] = input [i] *)
  columns : (string * Difftrace_util.Bitset.t) array;
      (** the merged alignment: element text and the set of run
          indices it is present in (never empty) *)
}

(** [merge runs] — progressive k-way alignment. Raises
    [Invalid_argument] on an empty list. With exactly two runs the
    anchor is always run 0, so the column order is exactly the Myers
    script of run 0 vs. run 1. *)
val merge : run list -> t

val n_runs : t -> int

(** [of_columns runs cols] — rebuild a [t] from persisted columns
    (presence as run-index lists). Raises [Invalid_argument] when a
    column's presence is empty or out of range. The store's
    re-alignment skip path; {!columns_repr} is its inverse. *)
val of_columns : run list -> (string * int list) array -> t

val columns_repr : t -> (string * int list) array

(** [reconstruct t i] — run [i]'s original element sequence, read back
    off the alignment (the losslessness invariant). *)
val reconstruct : t -> int -> string list

(** {1 Regions and conditions} *)

type region = {
  rg_first : int;  (** index of the region's first column *)
  rg_elems : string list;
  rg_present : Difftrace_util.Bitset.t;
}

(** Maximal runs of consecutive columns sharing one presence set, in
    column order. *)
val regions : t -> region list

type condition =
  | Axes of (string * string list) list
      (** conjunction of per-axis value sets, e.g.
          [[("fault", ["f2"]); ("seed", ["3"; "7"])]]; axis order
          follows the runs' declaration order, values are sorted *)
  | Named of string list
      (** no axis conjunction separates the target: fall back to
          naming the runs *)

(** [condition_of t ~target] — the minimal discriminating condition
    for the run subset [target]: the fewest axes (then fewest values)
    whose observed-value conjunction selects {e exactly} [target]. *)
val condition_of : t -> target:Difftrace_util.Bitset.t -> condition

(** ["fault=f2 ∧ seed∈{3,7}"] (["all runs"] for the empty
    conjunction). *)
val condition_to_string : condition -> string

(** {1 Suspects} *)

(** The run indices with [vr_bad = true]. *)
val bad_set : t -> Difftrace_util.Bitset.t

type polarity = Present | Absent

type suspect = {
  sp_region : region;
  sp_polarity : polarity;
      (** which side of the region tracks the bad set: [Absent] means
          the region is missing from (some or all) bad runs *)
  sp_condition : condition;
      (** minimal discriminating condition of the region's
          [sp_polarity] side *)
  sp_exact : bool;
      (** the region's [sp_polarity] side {e equals} the bad set *)
  sp_score : float;  (** Jaccard of that side vs. the bad set *)
}

(** [suspects ?limit t] — partial-presence regions ranked by how well
    they track the bad set: exact matches first (larger regions
    first), then by descending [sp_score]. Empty when no run is bad
    or every run is. [limit] defaults to 4. *)
val suspects : ?limit:int -> t -> suspect list

(** The minimal discriminating condition of the bad set itself —
    [None] when the bad set is empty or full. *)
val discriminating : t -> condition option

(** {1 Rendering} *)

(** The conditioned variational NLR: the run set (bad runs marked),
    every region under its [\[present: ...\]] annotation, the ranked
    suspects, and the bad set's minimal discriminating condition. *)
val render : ?title:string -> t -> string

(** [to_diffnlr t] — [Some] iff [t] has exactly two runs: the
    classical pairwise diffNLR (run 0 = normal, run 1 = faulty),
    byte-identical to {!Difftrace_diff.Diffnlr.of_strings} on the same
    sequences. *)
val to_diffnlr : t -> Difftrace_diff.Diffnlr.t option
