(* N-way variational NLR: progressive alignment + condition mining.
   See variational.mli for the design rationale. *)

module Bitset = Difftrace_util.Bitset
module Myers = Difftrace_diff.Myers
module Diffnlr = Difftrace_diff.Diffnlr
module Context = Difftrace_fca.Context
module Sketch = Difftrace_cluster.Sketch
module Telemetry = Difftrace_obs.Telemetry
module Span = Telemetry.Span

let c_merges = Telemetry.Counter.make "variational.merges"
let c_columns = Telemetry.Counter.make "variational.columns"

type run = {
  vr_name : string;
  vr_elems : string list;
  vr_axes : (string * string) list;
  vr_bad : bool;
}

type t = { runs : run array; columns : (string * Bitset.t) array }

let n_runs t = Array.length t.runs

(* ------------------------------------------------------------------ *)
(* Progressive merge                                                   *)
(* ------------------------------------------------------------------ *)

(* sketch-tier merge order: the two most similar runs anchor the
   profile, then always the unmerged run most similar to anything
   already merged — the classical progressive-alignment guide tree,
   flattened to a greedy chain. Ties break toward lower indices so the
   order (and therefore the column order) is deterministic. *)
let merge_order runs =
  let n = Array.length runs in
  let ctx =
    Context.of_attr_sets
      (Array.to_list
         (Array.mapi
            (fun i r ->
              (Printf.sprintf "r%d" i, List.sort_uniq String.compare r.vr_elems))
            runs))
  in
  let sigs = Sketch.of_context ctx in
  let sim = Array.make_matrix n n 0.0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let s = Sketch.estimate sigs.(i) sigs.(j) in
      sim.(i).(j) <- s;
      sim.(j).(i) <- s
    done
  done;
  let best_pair = ref (0, 1) in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let bi, bj = !best_pair in
      if sim.(i).(j) > sim.(bi).(bj) then best_pair := (i, j)
    done
  done;
  let bi, bj = !best_pair in
  let merged = Array.make n false in
  merged.(bi) <- true;
  merged.(bj) <- true;
  let order = ref [ bj; bi ] in
  for _ = 2 to n - 1 do
    let best = ref (-1) and best_s = ref neg_infinity in
    for i = 0 to n - 1 do
      if not merged.(i) then begin
        let s = ref neg_infinity in
        for j = 0 to n - 1 do
          if merged.(j) && sim.(i).(j) > !s then s := sim.(i).(j)
        done;
        if !s > !best_s then begin
          best := i;
          best_s := !s
        end
      end
    done;
    merged.(!best) <- true;
    order := !best :: !order
  done;
  List.rev !order

(* align run [r] against the running profile: Keep consumes a profile
   column and sets [r]'s bit on it, Delete passes a profile column
   through, Insert opens a fresh column present only in [r]. Column
   order is the Myers script order, which for k = 2 makes the result
   literally the pairwise script. *)
let merge_into ~capacity cols r elems =
  let a = Array.map fst cols in
  let script = Myers.diff ~equal:String.equal a (Array.of_list elems) in
  let out = ref [] in
  let pi = ref 0 in
  List.iter
    (fun op ->
      match op with
      | Myers.Keep _ ->
        let text, present = cols.(!pi) in
        incr pi;
        Bitset.add present r;
        out := (text, present) :: !out
      | Myers.Delete _ ->
        out := cols.(!pi) :: !out;
        incr pi
      | Myers.Insert text ->
        out := (text, Bitset.singleton capacity r) :: !out)
    script;
  Array.of_list (List.rev !out)

let merge = function
  | [] -> invalid_arg "Variational.merge: no runs"
  | runs_list ->
    Span.with_ "variational.merge" @@ fun () ->
    Telemetry.Counter.incr c_merges;
    let runs = Array.of_list runs_list in
    let n = Array.length runs in
    let order =
      (* two runs must reproduce the pairwise diffNLR byte-for-byte,
         so their anchor is pinned to run 0 regardless of similarity *)
      if n <= 2 then List.init n Fun.id else merge_order runs
    in
    let first = List.hd order in
    let cols =
      ref
        (Array.of_list
           (List.map
              (fun e -> (e, Bitset.singleton n first))
              runs.(first).vr_elems))
    in
    List.iter
      (fun r -> cols := merge_into ~capacity:n !cols r runs.(r).vr_elems)
      (List.tl order);
    Telemetry.Counter.add c_columns (Array.length !cols);
    { runs; columns = !cols }

let columns_repr t =
  Array.map (fun (text, present) -> (text, Bitset.to_list present)) t.columns

let of_columns runs_list cols =
  match runs_list with
  | [] -> invalid_arg "Variational.of_columns: no runs"
  | _ ->
    let runs = Array.of_list runs_list in
    let n = Array.length runs in
    let columns =
      Array.map
        (fun (text, present) ->
          if present = [] then
            invalid_arg "Variational.of_columns: empty presence";
          if List.exists (fun i -> i < 0 || i >= n) present then
            invalid_arg "Variational.of_columns: run index out of range";
          (text, Bitset.of_list n present))
        cols
    in
    { runs; columns }

let reconstruct t i =
  Array.to_list t.columns
  |> List.filter_map (fun (text, present) ->
         if Bitset.mem present i then Some text else None)

(* ------------------------------------------------------------------ *)
(* Regions                                                             *)
(* ------------------------------------------------------------------ *)

type region = {
  rg_first : int;
  rg_elems : string list;
  rg_present : Bitset.t;
}

let regions t =
  let out = ref [] in
  let flush first elems present =
    match elems with
    | [] -> ()
    | _ ->
      out :=
        { rg_first = first; rg_elems = List.rev elems; rg_present = present }
        :: !out
  in
  let first = ref 0 and acc = ref [] and cur = ref None in
  Array.iteri
    (fun i (text, present) ->
      match !cur with
      | Some p when Bitset.equal p present -> acc := text :: !acc
      | Some p ->
        flush !first !acc p;
        first := i;
        acc := [ text ];
        cur := Some present
      | None ->
        first := i;
        acc := [ text ];
        cur := Some present)
    t.columns;
  (match !cur with Some p -> flush !first !acc p | None -> ());
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Conditions                                                          *)
(* ------------------------------------------------------------------ *)

type condition = Axes of (string * string list) list | Named of string list

let axis_value run axis =
  Option.value ~default:"-" (List.assoc_opt axis run.vr_axes)

(* axis names in first-declaration order across the run set *)
let axis_names t =
  Array.fold_left
    (fun acc r ->
      List.fold_left
        (fun acc (a, _) -> if List.mem a acc then acc else acc @ [ a ])
        acc r.vr_axes)
    [] t.runs

(* the minimal discriminating condition is a tiny set cover: the
   fewest axes (then the fewest values) whose observed-value
   conjunction selects exactly [target]. The conjunction built from a
   given axis subset is the tightest one containing [target] — its
   value sets are exactly the values [target]'s runs exhibit — so
   testing it for equality with [target] decides that subset in one
   pass, and subsets are enumerated smallest-first. *)
let condition_of t ~target =
  let axes = Array.of_list (axis_names t) in
  let n_axes = Array.length axes in
  let n = n_runs t in
  let in_target i = Bitset.mem target i in
  let values_of axis =
    let vs = ref [] in
    for i = 0 to n - 1 do
      if in_target i then vs := axis_value t.runs.(i) axis :: !vs
    done;
    List.sort_uniq String.compare !vs
  in
  let extension_is_target subset =
    let sel =
      List.map (fun ai -> (axes.(ai), values_of axes.(ai))) subset
    in
    let ok = ref true in
    for i = 0 to n - 1 do
      let matches =
        List.for_all
          (fun (axis, vs) -> List.mem (axis_value t.runs.(i) axis) vs)
          sel
      in
      if matches <> in_target i then ok := false
    done;
    if !ok then Some sel else None
  in
  let subsets_of_size k =
    (* ascending-mask order: for equal size, earlier axes first *)
    let out = ref [] in
    for mask = 1 to (1 lsl n_axes) - 1 do
      let bits = ref [] and cnt = ref 0 in
      for b = n_axes - 1 downto 0 do
        if mask land (1 lsl b) <> 0 then begin
          bits := b :: !bits;
          incr cnt
        end
      done;
      if !cnt = k then out := !bits :: !out
    done;
    List.rev !out
  in
  let total_values sel =
    List.fold_left (fun acc (_, vs) -> acc + List.length vs) 0 sel
  in
  let rec search k =
    if k > n_axes then
      Named
        (List.filter_map
           (fun i ->
             if in_target i then Some t.runs.(i).vr_name else None)
           (List.init n Fun.id))
    else
      let hits = List.filter_map extension_is_target (subsets_of_size k) in
      match hits with
      | [] -> search (k + 1)
      | first :: rest ->
        Axes
          (List.fold_left
             (fun best sel ->
               if total_values sel < total_values best then sel else best)
             first rest)
  in
  if n_axes = 0 then
    Named
      (List.filter_map
         (fun i -> if in_target i then Some t.runs.(i).vr_name else None)
         (List.init n Fun.id))
  else search 1

let condition_to_string = function
  | Axes [] -> "all runs"
  | Axes atoms ->
    String.concat " \xe2\x88\xa7 " (* ∧ *)
      (List.map
         (fun (axis, values) ->
           match values with
           | [ v ] -> Printf.sprintf "%s=%s" axis v
           | vs ->
             Printf.sprintf "%s\xe2\x88\x88{%s}" (* ∈ *) axis
               (String.concat "," vs))
         atoms)
  | Named names -> "runs {" ^ String.concat ", " names ^ "}"

(* ------------------------------------------------------------------ *)
(* Suspects                                                            *)
(* ------------------------------------------------------------------ *)

let bad_set t =
  let s = Bitset.create (n_runs t) in
  Array.iteri (fun i r -> if r.vr_bad then Bitset.add s i) t.runs;
  s

type polarity = Present | Absent

type suspect = {
  sp_region : region;
  sp_polarity : polarity;
  sp_condition : condition;
  sp_exact : bool;
  sp_score : float;
}

let suspects ?(limit = 4) t =
  let bad = bad_set t in
  let nbad = Bitset.cardinal bad in
  if nbad = 0 || nbad = n_runs t then []
  else
    let full = Bitset.full (n_runs t) in
    let of_region rg =
      if Bitset.equal rg.rg_present full then None
      else
        let absent = Bitset.diff full rg.rg_present in
        (* report the side that tracks the bad set better: "this block
           is absent exactly where the fault fired" reads off Absent *)
        let s_present = Bitset.jaccard rg.rg_present bad in
        let s_absent = Bitset.jaccard absent bad in
        let polarity, side, score =
          if s_absent >= s_present then (Absent, absent, s_absent)
          else (Present, rg.rg_present, s_present)
        in
        Some
          { sp_region = rg;
            sp_polarity = polarity;
            sp_condition = condition_of t ~target:side;
            sp_exact = Bitset.equal side bad;
            sp_score = score }
    in
    let all = List.filter_map of_region (regions t) in
    let ranked =
      List.stable_sort
        (fun a b ->
          match Bool.compare b.sp_exact a.sp_exact with
          | 0 -> (
            match compare b.sp_score a.sp_score with
            | 0 ->
              Int.compare
                (List.length b.sp_region.rg_elems)
                (List.length a.sp_region.rg_elems)
            | c -> c)
          | c -> c)
        all
    in
    List.filteri (fun i _ -> i < limit) ranked

let discriminating t =
  let bad = bad_set t in
  let nbad = Bitset.cardinal bad in
  if nbad = 0 || nbad = n_runs t then None
  else Some (condition_of t ~target:bad)

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let region_label rg =
  match rg.rg_elems with
  | [ e ] -> e
  | e :: _ -> Printf.sprintf "%s .. %s" e (List.nth rg.rg_elems
                                             (List.length rg.rg_elems - 1))
  | [] -> ""

let render ?title t =
  let b = Buffer.create 1024 in
  let n = n_runs t in
  let title =
    match title with
    | Some s -> s
    | None -> Printf.sprintf "variational NLR: %d runs" n
  in
  Buffer.add_string b (Printf.sprintf "=== %s ===\n" title);
  Array.iteri
    (fun i r ->
      let axes =
        match r.vr_axes with
        | [] -> ""
        | axes ->
          Printf.sprintf " [%s]"
            (String.concat " "
               (List.map (fun (a, v) -> Printf.sprintf "%s=%s" a v) axes))
      in
      Buffer.add_string b
        (Printf.sprintf "  r%d %s%s%s\n" i r.vr_name axes
           (if r.vr_bad then " BAD" else "")))
    t.runs;
  let rgs = regions t in
  Buffer.add_string b
    (Printf.sprintf "  %d columns in %d regions\n" (Array.length t.columns)
       (List.length rgs));
  let full = Bitset.full n in
  List.iter
    (fun rg ->
      if Bitset.equal rg.rg_present full then
        List.iter
          (fun e -> Buffer.add_string b (Printf.sprintf "    = %s\n" e))
          rg.rg_elems
      else begin
        Buffer.add_string b
          (Printf.sprintf "  [present: %s]\n"
             (condition_to_string (condition_of t ~target:rg.rg_present)));
        List.iter
          (fun e -> Buffer.add_string b (Printf.sprintf "    ~ %s\n" e))
          rg.rg_elems
      end)
    rgs;
  (match suspects t with
  | [] -> ()
  | sps ->
    Buffer.add_string b "suspect regions:\n";
    List.iteri
      (fun i sp ->
        let side =
          match sp.sp_polarity with Present -> "present" | Absent -> "absent"
        in
        Buffer.add_string b
          (Printf.sprintf "  %d. `%s` %s %s %s\n" (i + 1)
             (region_label sp.sp_region) side
             (if sp.sp_exact then "exactly where" else "mostly where")
             (condition_to_string sp.sp_condition)))
      sps);
  (match discriminating t with
  | None -> ()
  | Some c ->
    Buffer.add_string b
      (Printf.sprintf "minimal discriminating condition: %s\n"
         (condition_to_string c)));
  Buffer.contents b

let to_diffnlr t =
  if n_runs t <> 2 then None
  else
    let ops =
      Array.to_list t.columns
      |> List.map (fun (text, present) ->
             match (Bitset.mem present 0, Bitset.mem present 1) with
             | true, true -> Myers.Keep text
             | true, false -> Myers.Delete text
             | false, true -> Myers.Insert text
             | false, false -> assert false)
    in
    Some
      { Diffnlr.blocks = Myers.blocks ops;
        normal_truncated = false;
        faulty_truncated = false }
