(** The DiffTrace umbrella: one module re-exporting the whole toolkit.

    [open Difftrace] gives every layer of the system its short name —
    examples and the CLI write [Pipeline.compare_runs], [Trace_set.traces]
    or [Fault.of_string] instead of [Difftrace_core.Pipeline]-style
    dotted paths. The aliases are plain module bindings, so all types
    are interchangeable with the underlying libraries'. *)

(* Observability: spans, counters, profile reports. *)
module Telemetry = Difftrace_obs.Telemetry

(* Analysis toolkit (lib/core). *)
module Config = Difftrace_core.Config
module Engine = Difftrace_core.Engine
module Memo = Difftrace_core.Memo
module Store = Difftrace_core.Store
module Pipeline = Difftrace_core.Pipeline
module Session = Difftrace_core.Session
module Ranking = Difftrace_core.Ranking
module Autotune = Difftrace_core.Autotune
module Report = Difftrace_core.Report

(* Traces and symbols. *)
module Event = Difftrace_trace.Event
module Symtab = Difftrace_trace.Symtab
module Trace = Difftrace_trace.Trace
module Trace_set = Difftrace_trace.Trace_set

(* Capture (ParLOT-style) and archives. *)
module Tracer = Difftrace_parlot.Tracer
module Capture = Difftrace_parlot.Capture
module Archive = Difftrace_parlot.Archive
module Lzw = Difftrace_parlot.Lzw

(* The MPI/OpenMP simulator and its faults. *)
module Runtime = Difftrace_simulator.Runtime
module Api = Difftrace_simulator.Api
module Fault = Difftrace_simulator.Fault
module Explore = Difftrace_simulator.Explore
module Vclock = Difftrace_simulator.Vclock

(* Front-end filtering and summarization. *)
module Filter = Difftrace_filter.Filter
module Nlr = Difftrace_nlr.Nlr

(* Formal concept analysis. *)
module Attributes = Difftrace_fca.Attributes
module Context = Difftrace_fca.Context
module Lattice = Difftrace_fca.Lattice

(* Clustering. *)
module Jsm = Difftrace_cluster.Jsm
module Sketch = Difftrace_cluster.Sketch
module Linkage = Difftrace_cluster.Linkage
module Bscore = Difftrace_cluster.Bscore
module Dendrogram = Difftrace_cluster.Dendrogram

(* Fault campaigns (crash-isolated, resumable fault x seed sweeps). *)
module Campaign = Difftrace_campaign.Campaign

(* The resident analysis daemon and its difftrace-rpc/1 protocol
   (lib/serve), grouped under the library name: [Serve.Protocol],
   [Serve.Daemon], [Serve.Client], [Serve.Workload]. *)
module Serve = Difftrace_serve

(* The indexed event database and its drill-down query language. *)
module Eventdb = Difftrace_eventdb.Eventdb
module Query = Difftrace_eventdb.Query

(* Diffing. *)
module Diffnlr = Difftrace_diff.Diffnlr
module Phasediff = Difftrace_diff.Phasediff
module Myers = Difftrace_diff.Myers

(* N-way variational diffing: k runs merged into one conditioned NLR. *)
module Variational = Difftrace_variational.Variational

(* Structural and temporal views. *)
module Stacktree = Difftrace_stacktree.Stacktree
module Cct = Difftrace_stacktree.Cct
module Otf2 = Difftrace_temporal.Otf2
module Progress = Difftrace_temporal.Progress

(* Bundled workloads, the SMM baseline and the bug classifier, grouped
   under their library names (e.g. [Workloads.Odd_even.run]). *)
module Workloads = Difftrace_workloads
module Baseline = Difftrace_baseline
module Classify = Difftrace_classify
