type t =
  | No_fault
  | Swap_send_recv of { rank : int; after_iter : int }
  | Deadlock_recv of { rank : int; after_iter : int }
  | Wrong_collective_size of { rank : int }
  | Wrong_collective_op of { rank : int }
  | No_critical of { rank : int; thread : int }
  | Skip_function of { rank : int; func : string }

let equal (a : t) (b : t) = a = b

let to_string = function
  | No_fault -> "none"
  | Swap_send_recv { rank; after_iter } ->
    Printf.sprintf "swapBug(rank=%d,after=%d)" rank after_iter
  | Deadlock_recv { rank; after_iter } ->
    Printf.sprintf "dlBug(rank=%d,after=%d)" rank after_iter
  | Wrong_collective_size { rank } -> Printf.sprintf "wrongSize(rank=%d)" rank
  | Wrong_collective_op { rank } -> Printf.sprintf "wrongOp(rank=%d)" rank
  | No_critical { rank; thread } ->
    Printf.sprintf "noCritical(rank=%d,thread=%d)" rank thread
  | Skip_function { rank; func } ->
    Printf.sprintf "skipFunction(rank=%d,func=%s)" rank func

(* Parses "name" or "name(k=v,...)". *)
let of_string s =
  let fail () = invalid_arg ("Fault.of_string: " ^ s) in
  let name, args =
    match String.index_opt s '(' with
    | None -> (s, [])
    | Some i ->
      if s.[String.length s - 1] <> ')' then fail ();
      let name = String.sub s 0 i in
      let inner = String.sub s (i + 1) (String.length s - i - 2) in
      let args =
        if inner = "" then []
        else
          List.map
            (fun kv ->
              match String.split_on_char '=' kv with
              | [ k; v ] -> (String.trim k, String.trim v)
              | _ -> fail ())
            (String.split_on_char ',' inner)
      in
      (name, args)
  in
  let geti k =
    (* int_of_string_opt, not int_of_string: a malformed number must
       surface as the documented Invalid_argument, not Failure *)
    match List.assoc_opt k args with
    | Some v -> ( match int_of_string_opt v with Some n -> n | None -> fail ())
    | None -> fail ()
  in
  let gets k = match List.assoc_opt k args with Some v -> v | None -> fail () in
  match name with
  | "none" -> No_fault
  | "swapBug" -> Swap_send_recv { rank = geti "rank"; after_iter = geti "after" }
  | "dlBug" -> Deadlock_recv { rank = geti "rank"; after_iter = geti "after" }
  | "wrongSize" -> Wrong_collective_size { rank = geti "rank" }
  | "wrongOp" -> Wrong_collective_op { rank = geti "rank" }
  | "noCritical" -> No_critical { rank = geti "rank"; thread = geti "thread" }
  | "skipFunction" -> Skip_function { rank = geti "rank"; func = gets "func" }
  | _ -> fail ()

let pp ppf f = Format.pp_print_string ppf (to_string f)
