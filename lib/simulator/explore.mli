(** Schedule exploration.

    The DOE correctness report the paper builds on (§I, ref [3])
    classifies "nondeterminism control" as one of the six debugging
    method types. The simulator's scheduler is a pure function of its
    seed, which makes the simplest form of it trivial: run the same
    program under many schedules and report how the outcome varies —
    does a potential deadlock actually fire, does a racy update change
    the result, how many distinct trace shapes exist? *)

type verdict = {
  seed : int;
  deadlocked : bool;
  timed_out : bool;
  races : int;
  fingerprint : int;
      (** hash of all decoded traces: schedules with equal fingerprints
          produced identical executions *)
}

type summary = {
  verdicts : verdict list;       (** one per seed, in seed order *)
  deadlock_seeds : int list;     (** seeds whose run hung *)
  timeout_seeds : int list;
      (** seeds whose run exhausted the step budget; their trace shape
          is an artifact of where the budget cut them, so they are
          excluded from [distinct_outcomes] *)
  distinct_outcomes : int;
      (** number of distinct fingerprints among runs that did not time
          out *)
}

(** [summarize verdicts] — aggregate a verdict list (however produced:
    {!run}, a campaign driver, the CLI's per-workload loop) into a
    summary. Timed-out verdicts land in [timeout_seeds] and do not
    count toward [distinct_outcomes]. *)
val summarize : verdict list -> summary

(** [verdict_of ?np ?eager_limit ?max_steps ~seed program] — execute
    one seed and classify it ([max_steps] is the step budget standing
    in for the cluster job time limit). *)
val verdict_of :
  ?np:int ->
  ?eager_limit:int ->
  ?max_steps:int ->
  seed:int ->
  (Runtime.env -> unit) ->
  verdict

(** [run ?np ?eager_limit ?max_steps ?on_verdict ~seeds program] —
    execute [program] once per seed. [on_verdict] is invoked with each
    verdict as soon as its run finishes — the streaming hook campaign
    drivers use for progress and early abort decisions. *)
val run :
  ?np:int ->
  ?eager_limit:int ->
  ?max_steps:int ->
  ?on_verdict:(verdict -> unit) ->
  seeds:int list ->
  (Runtime.env -> unit) ->
  summary

(** [render s] — a compact report table. *)
val render : summary -> string

(** [fingerprint_of ts] — the full-content trace digest used in
    verdicts (exposed for external drivers). *)
val fingerprint_of : Difftrace_trace.Trace_set.t -> int
