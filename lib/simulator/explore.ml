module Trace = Difftrace_trace.Trace
module Trace_set = Difftrace_trace.Trace_set

type verdict = {
  seed : int;
  deadlocked : bool;
  timed_out : bool;
  races : int;
  fingerprint : int;
}

type summary = {
  verdicts : verdict list;
  deadlock_seeds : int list;
  timeout_seeds : int list;
  distinct_outcomes : int;
}

(* A full digest of every event of every trace: Hashtbl.hash samples
   only a bounded prefix of a structure and would collide on traces
   that differ late. *)
let fingerprint_of ts =
  let buf = Buffer.create 4096 in
  Array.iter
    (fun (tr : Trace.t) ->
      Buffer.add_string buf
        (Printf.sprintf "%d.%d:%b|" tr.Trace.pid tr.Trace.tid tr.Trace.truncated);
      List.iter
        (fun s ->
          Buffer.add_string buf s;
          Buffer.add_char buf ';')
        (Trace.to_strings (Trace_set.symtab ts) tr))
    (Trace_set.traces ts);
  let d = Digest.string (Buffer.contents buf) in
  (* fold the 16 digest bytes into a positive int *)
  let acc = ref 0 in
  String.iter (fun c -> acc := (!acc * 257) lxor Char.code c) d;
  !acc land max_int

let summarize verdicts =
  (* a timed-out run's trace shape is an artifact of where the step
     budget happened to cut it, so its fingerprint says nothing about
     schedule diversity: such seeds are surfaced in [timeout_seeds]
     and excluded from [distinct_outcomes] *)
  let fps =
    List.sort_uniq Int.compare
      (List.filter_map
         (fun v -> if v.timed_out then None else Some v.fingerprint)
         verdicts)
  in
  { verdicts;
    deadlock_seeds =
      List.filter_map (fun v -> if v.deadlocked then Some v.seed else None) verdicts;
    timeout_seeds =
      List.filter_map (fun v -> if v.timed_out then Some v.seed else None) verdicts;
    distinct_outcomes = List.length fps }

let verdict_of ?np ?eager_limit ?max_steps ~seed program =
  let o = Runtime.run ?np ?eager_limit ?max_steps ~seed program in
  { seed;
    deadlocked = o.Runtime.deadlocked <> [];
    timed_out = o.Runtime.timed_out;
    races = List.length o.Runtime.races;
    fingerprint = fingerprint_of o.Runtime.traces }

let run ?np ?eager_limit ?max_steps ?on_verdict ~seeds program =
  if seeds = [] then invalid_arg "Explore.run: no seeds";
  let verdicts =
    List.map
      (fun seed ->
        let v = verdict_of ?np ?eager_limit ?max_steps ~seed program in
        (match on_verdict with Some f -> f v | None -> ());
        v)
      (List.sort_uniq Int.compare seeds)
  in
  summarize verdicts

let render s =
  let rows =
    List.map
      (fun v ->
        [ string_of_int v.seed;
          (if v.deadlocked then "DEADLOCK" else if v.timed_out then "TIMEOUT" else "ok");
          string_of_int v.races;
          Printf.sprintf "%08x" (v.fingerprint land 0xFFFFFFFF) ])
      s.verdicts
  in
  let seed_list = function
    | [] -> "none"
    | seeds -> String.concat "," (List.map string_of_int seeds)
  in
  Difftrace_util.Texttable.render
    ~headers:[ "Seed"; "Outcome"; "Races"; "Trace fingerprint" ]
    rows
  ^ Printf.sprintf "distinct outcomes: %d; deadlocking seeds: %s\n"
      s.distinct_outcomes
      (seed_list s.deadlock_seeds)
  ^
  if s.timeout_seeds = [] then ""
  else Printf.sprintf "timed-out seeds (excluded from outcome count): %s\n"
         (seed_list s.timeout_seeds)
