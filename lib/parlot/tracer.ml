open Difftrace_util
open Difftrace_trace
module Telemetry = Difftrace_obs.Telemetry

let c_captured = Telemetry.Counter.make "parlot.events.captured"
let c_compressed = Telemetry.Counter.make "parlot.bytes.compressed"
let c_decoded_traces = Telemetry.Counter.make "parlot.traces.decoded"
let c_decoded_events = Telemetry.Counter.make "parlot.events.decoded"

type image = Main | Library
type level = Main_image | All_images

type t = {
  symtab : Symtab.t;
  level : level;
  pid : int;
  tid : int;
  encoder : Lzw.encoder;
  scratch : Buffer.t;
  mutable nevents : int;
  mutable truncated : bool;
}

let create ~symtab ~level ~pid ~tid =
  { symtab;
    level;
    pid;
    tid;
    encoder = Lzw.encoder ();
    scratch = Buffer.create 16;
    nevents = 0;
    truncated = false }

let pid t = t.pid
let tid t = t.tid
let keeps t image = match (t.level, image) with All_images, _ | Main_image, Main -> true | Main_image, Library -> false

let record t event =
  Buffer.clear t.scratch;
  Varint.write t.scratch (Event.encode event);
  Lzw.feed_string t.encoder (Buffer.contents t.scratch);
  Telemetry.Counter.incr c_captured;
  t.nevents <- t.nevents + 1

let on_call ?(image = Main) t name =
  if keeps t image then record t (Event.Call (Symtab.intern t.symtab name))

let on_return ?(image = Main) t name =
  if keeps t image then record t (Event.Return (Symtab.intern t.symtab name))

let scoped ?image t name f =
  on_call ?image t name;
  let r = f () in
  on_return ?image t name;
  r

let set_truncated t = t.truncated <- true
let events_recorded t = t.nevents
let compressed_so_far t = Lzw.output_size t.encoder
let finish t =
  let data = Lzw.finish t.encoder in
  Telemetry.Counter.add c_compressed (String.length data);
  (data, t.truncated)

(* Streaming decode: compressed bytes go through the incremental LZW
   decoder, and the decompressed varint-event stream is parsed as it
   drains — a partial event varint is carried across feeds, so the
   archive layer can push arbitrary chunk slices. *)

type stream = {
  lzw : Lzw.decoder;
  s_events : Event.t Vec.t;
  mutable s_acc : int; (* partial event varint *)
  mutable s_shift : int;
  mutable s_partial : bool; (* an event varint is in flight *)
  mutable s_bytes : int; (* compressed bytes fed so far *)
}

let stream () =
  { lzw = Lzw.decoder ();
    s_events = Vec.create ();
    s_acc = 0;
    s_shift = 0;
    s_partial = false;
    s_bytes = 0 }

let drain st =
  let raw = Lzw.decode_take st.lzw in
  String.iter
    (fun c ->
      let b = Char.code c in
      if st.s_shift > 56 then invalid_arg "Tracer.decode: event varint overflow";
      st.s_acc <- st.s_acc lor ((b land 0x7f) lsl st.s_shift);
      if st.s_acc < 0 then invalid_arg "Tracer.decode: event varint overflow";
      if b land 0x80 = 0 then begin
        Vec.push st.s_events (Event.decode st.s_acc);
        st.s_acc <- 0;
        st.s_shift <- 0;
        st.s_partial <- false
      end
      else begin
        st.s_shift <- st.s_shift + 7;
        st.s_partial <- true
      end)
    raw

let stream_feed st data =
  st.s_bytes <- st.s_bytes + String.length data;
  Lzw.decode_feed st.lzw data;
  drain st

let stream_events st = Vec.length st.s_events

(* a zero-byte stream is a complete empty trace — the streaming analogue
   of [Lzw.decompress ""] = "" — not a missing end-of-stream marker *)
let stream_complete st =
  drain st;
  st.s_bytes = 0 || (Lzw.decode_finished st.lzw && not st.s_partial)

let stream_trace st ~pid ~tid ~truncated =
  Telemetry.Counter.incr c_decoded_traces;
  Telemetry.Counter.add c_decoded_events (Vec.length st.s_events);
  Trace.make ~pid ~tid ~truncated (Vec.to_array st.s_events)

let stream_finish st ~pid ~tid ~truncated =
  drain st;
  if st.s_bytes > 0 then ignore (Lzw.decode_finish st.lzw);
  if st.s_partial then invalid_arg "Tracer.decode: truncated event stream";
  stream_trace st ~pid ~tid ~truncated

(* Salvage: keep every event that decoded cleanly, drop a trailing
   partial varint, and force the truncation flag — the archive's
   recovery path for damaged trace files. *)
let stream_salvage st ~pid ~tid =
  (try drain st with Invalid_argument _ -> ());
  stream_trace st ~pid ~tid ~truncated:true

let decode ~symtab ~pid ~tid ~truncated data =
  ignore symtab;
  let st = stream () in
  stream_feed st data;
  stream_finish st ~pid ~tid ~truncated
