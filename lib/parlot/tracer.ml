open Difftrace_util
open Difftrace_trace
module Telemetry = Difftrace_obs.Telemetry

let c_captured = Telemetry.Counter.make "parlot.events.captured"
let c_compressed = Telemetry.Counter.make "parlot.bytes.compressed"
let c_decoded_traces = Telemetry.Counter.make "parlot.traces.decoded"
let c_decoded_events = Telemetry.Counter.make "parlot.events.decoded"

type image = Main | Library
type level = Main_image | All_images

type t = {
  symtab : Symtab.t;
  level : level;
  pid : int;
  tid : int;
  encoder : Lzw.encoder;
  scratch : Buffer.t;
  mutable nevents : int;
  mutable truncated : bool;
}

let create ~symtab ~level ~pid ~tid =
  { symtab;
    level;
    pid;
    tid;
    encoder = Lzw.encoder ();
    scratch = Buffer.create 16;
    nevents = 0;
    truncated = false }

let pid t = t.pid
let tid t = t.tid
let keeps t image = match (t.level, image) with All_images, _ | Main_image, Main -> true | Main_image, Library -> false

let record t event =
  Buffer.clear t.scratch;
  Varint.write t.scratch (Event.encode event);
  Lzw.feed_string t.encoder (Buffer.contents t.scratch);
  Telemetry.Counter.incr c_captured;
  t.nevents <- t.nevents + 1

let on_call ?(image = Main) t name =
  if keeps t image then record t (Event.Call (Symtab.intern t.symtab name))

let on_return ?(image = Main) t name =
  if keeps t image then record t (Event.Return (Symtab.intern t.symtab name))

let scoped ?image t name f =
  on_call ?image t name;
  let r = f () in
  on_return ?image t name;
  r

let set_truncated t = t.truncated <- true
let events_recorded t = t.nevents
let compressed_so_far t = Lzw.output_size t.encoder
let finish t =
  let data = Lzw.finish t.encoder in
  Telemetry.Counter.add c_compressed (String.length data);
  (data, t.truncated)

let decode ~symtab ~pid ~tid ~truncated data =
  let raw = Lzw.decompress data in
  let events = Vec.create () in
  let len = String.length raw in
  let rec go pos =
    if pos < len then begin
      let v, pos = Varint.read raw pos in
      Vec.push events (Event.decode v);
      go pos
    end
  in
  go 0;
  ignore symtab;
  Telemetry.Counter.incr c_decoded_traces;
  Telemetry.Counter.add c_decoded_events (Vec.length events);
  Trace.make ~pid ~tid ~truncated (Vec.to_array events)
