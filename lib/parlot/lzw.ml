open Difftrace_util

(* Classic LZW. Codes 0..255 denote single bytes; code 256 is the
   end-of-stream marker; fresh phrases get codes from 257 up. The
   current phrase is represented by its dictionary code, so the encoder
   state is O(1) per step plus the dictionary. *)

let eos_code = 256
let first_code = 257

type encoder = {
  dict : (int * char, int) Hashtbl.t;
  mutable next_code : int;
  mutable current : int; (* code of the pending phrase; -1 = none *)
  out : Buffer.t;
  mutable fed : int;
}

let encoder () =
  { dict = Hashtbl.create 4096;
    next_code = first_code;
    current = -1;
    out = Buffer.create 256;
    fed = 0 }

let feed e c =
  e.fed <- e.fed + 1;
  if e.current < 0 then e.current <- Char.code c
  else
    match Hashtbl.find_opt e.dict (e.current, c) with
    | Some code -> e.current <- code
    | None ->
      Varint.write e.out e.current;
      Hashtbl.add e.dict (e.current, c) e.next_code;
      e.next_code <- e.next_code + 1;
      e.current <- Char.code c

let feed_string e s = String.iter (feed e) s

let finish e =
  if e.current >= 0 then begin
    Varint.write e.out e.current;
    e.current <- -1
  end;
  Varint.write e.out eos_code;
  Buffer.contents e.out

let output_size e = Buffer.length e.out
let input_size e = e.fed

let compress s =
  let e = encoder () in
  feed_string e s;
  finish e

(* Decoder: phrases are stored as (prefix_code, last_byte) pairs; a
   phrase is materialized by walking prefixes. Handles the KwKwK case
   (a code one past the dictionary end refers to the phrase currently
   being defined). The decoder is incremental: compressed bytes arrive
   in arbitrary slices (a varint code may straddle two feeds), so the
   archive layer can stream a trace file chunk by chunk without ever
   materializing it as one string. *)

type decoder = {
  phrases : (int * char) Vec.t; (* phrases.(i) is code first_code+i *)
  dout : Buffer.t; (* decoded bytes not yet taken *)
  mutable prev : int; (* previous code; -1 = none yet *)
  mutable acc : int; (* partial varint accumulator *)
  mutable shift : int; (* nonzero while a varint straddles feeds *)
  mutable eos : bool; (* end-of-stream marker consumed *)
}

let decoder () =
  { phrases = Vec.create ();
    dout = Buffer.create 256;
    prev = -1;
    acc = 0;
    shift = 0;
    eos = false }

let phrase_bytes d buf code =
  let rec go code =
    if code < 256 then Buffer.add_char buf (Char.chr code)
    else begin
      let prefix, last = Vec.get d.phrases (code - first_code) in
      go prefix;
      Buffer.add_char buf last
    end
  in
  go code

let first_byte d code =
  let rec go code =
    if code < 256 then Char.chr code
    else
      let prefix, _ = Vec.get d.phrases (code - first_code) in
      go prefix
  in
  go code

let decode_code d code =
  if code = eos_code then d.eos <- true
  else begin
    let valid_max = first_code + Vec.length d.phrases in
    if code > valid_max || code < 0 then invalid_arg "Lzw.decompress: bad code";
    (* the first code of a stream must be a literal: no phrase exists
       yet, and the KwKwK rule needs a previous code to lean on *)
    if d.prev < 0 && code >= first_code then
      invalid_arg "Lzw.decompress: bad code";
    if d.prev >= 0 then begin
      (* Define the phrase prev ++ first_byte(code); for the KwKwK
         case code = valid_max, whose first byte equals prev's. *)
      let last =
        if code = valid_max then first_byte d d.prev else first_byte d code
      in
      Vec.push d.phrases (d.prev, last)
    end;
    phrase_bytes d d.dout code;
    d.prev <- code
  end

let decode_feed d s =
  String.iter
    (fun c ->
      if d.eos then
        invalid_arg "Lzw.decompress: trailing bytes after end-of-stream";
      let b = Char.code c in
      (* inline varint accumulation; codes are dictionary-bounded, so a
         run shifting past 56 bits can only be corruption *)
      if d.shift > 56 then invalid_arg "Lzw.decompress: bad code";
      d.acc <- d.acc lor ((b land 0x7f) lsl d.shift);
      if d.acc < 0 then invalid_arg "Lzw.decompress: bad code";
      if b land 0x80 = 0 then begin
        let code = d.acc in
        d.acc <- 0;
        d.shift <- 0;
        decode_code d code
      end
      else d.shift <- d.shift + 7)
    s

(* [decode_take] drains the decoded bytes produced so far, so callers
   can consume output incrementally and keep the buffer bounded. *)
let decode_take d =
  let s = Buffer.contents d.dout in
  Buffer.clear d.dout;
  s

let decode_finished d = d.eos

let decode_finish d =
  if not d.eos then invalid_arg "Lzw.decompress: missing end-of-stream";
  decode_take d

let decompress s =
  if String.length s = 0 then ""
  else begin
    let d = decoder () in
    decode_feed d s;
    decode_finish d
  end
