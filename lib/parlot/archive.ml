open Difftrace_trace
open Difftrace_util
module Telemetry = Difftrace_obs.Telemetry
module Span = Telemetry.Span

let c_chunks = Telemetry.Counter.make "archive.chunks"
let c_crc_fail = Telemetry.Counter.make "archive.crc_fail"
let c_salvaged = Telemetry.Counter.make "archive.salvaged_events"

type format = V1 | V2

type runner = { run : 'a. int -> (int -> 'a) -> 'a array }

let sequential_runner = { run = Array.init }

type error = { err_path : string; err_reason : string }

let error_to_string e =
  Printf.sprintf "archive error in %s: %s" e.err_path e.err_reason

type salvage = {
  sv_pid : int;
  sv_tid : int;
  sv_events : int;
  sv_dropped_bytes : int;
  sv_reason : string;
}

type loaded = { set : Trace_set.t; version : int; salvaged : salvage list }

type trace_check = {
  tc_pid : int;
  tc_tid : int;
  tc_chunks : int;
  tc_events : int;
  tc_bytes : int;
  tc_issue : string option;
}

type report = {
  rp_dir : string;
  rp_version : int;
  rp_traces : trace_check list;
  rp_ok : bool;
}

let manifest_file dir = Filename.concat dir "manifest"

(* presence check only — the manifest may still be damaged; [load]
   decides that *)
let is_archive dir =
  Sys.file_exists (manifest_file dir) && not (Sys.is_directory (manifest_file dir))

let trace_file dir ~pid ~tid =
  Filename.concat dir (Printf.sprintf "trace_%d_%d.lzw" pid tid)

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)
(* ------------------------------------------------------------------ *)

let rec mkdir_p dir =
  if Sys.file_exists dir then begin
    if not (Sys.is_directory dir) then
      invalid_arg
        (Printf.sprintf "Archive.save: %s exists and is not a directory" dir)
  end
  else begin
    let parent = Filename.dirname dir in
    if parent <> dir && parent <> "" then mkdir_p parent;
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.is_directory dir -> () (* lost a race; fine *)
  end

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let chunk_magic = "DTA2"
let default_chunk_size = 4096

(* v2 trace file: the magic, then varint-length-prefixed chunks each
   closed by a CRC-32 footer of its payload, then a zero-length
   terminator chunk whose footer checksums the whole compressed
   stream. Chunk boundaries are transport framing only — they need not
   align with LZW code boundaries, which is why the decoder is
   incremental. *)
let write_v2_trace path data ~chunk_size =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc chunk_magic;
      let total = String.length data in
      let b = Buffer.create 8 in
      let pos = ref 0 in
      while !pos < total do
        let len = min chunk_size (total - !pos) in
        Buffer.clear b;
        Varint.write b len;
        output_string oc (Buffer.contents b);
        output_substring oc data !pos len;
        output_string oc
          (Crc32.to_le_bytes
             (Crc32.finish (Crc32.update Crc32.init data ~pos:!pos ~len)));
        Telemetry.Counter.incr c_chunks;
        pos := !pos + len
      done;
      Buffer.clear b;
      Varint.write b 0;
      output_string oc (Buffer.contents b);
      output_string oc (Crc32.to_le_bytes (Crc32.string data)))

let encode_trace (tr : Trace.t) =
  let enc = Lzw.encoder () in
  let scratch = Buffer.create 16 in
  Array.iter
    (fun ev ->
      Buffer.clear scratch;
      Varint.write scratch (Event.encode ev);
      Lzw.feed_string enc (Buffer.contents scratch))
    tr.Trace.events;
  Lzw.finish enc

let save ?(format = V2) ?(chunk_size = default_chunk_size) ~dir ts =
  if chunk_size < 1 then invalid_arg "Archive.save: chunk_size must be >= 1";
  Span.with_ "archive.save" @@ fun () ->
  mkdir_p dir;
  let symtab = Trace_set.symtab ts in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "difftrace-archive %d\n"
       (match format with V1 -> 1 | V2 -> 2));
  Buffer.add_string buf (Printf.sprintf "symbols %d\n" (Symtab.size symtab));
  Array.iter
    (fun name -> Buffer.add_string buf (Printf.sprintf "%S\n" name))
    (Symtab.names symtab);
  let traces = Trace_set.traces ts in
  Buffer.add_string buf (Printf.sprintf "threads %d\n" (Array.length traces));
  Array.iter
    (fun (tr : Trace.t) ->
      Buffer.add_string buf
        (Printf.sprintf "thread %d %d %s %d\n" tr.Trace.pid tr.Trace.tid
           (if tr.Trace.truncated then "truncated" else "complete")
           (Trace.length tr)))
    traces;
  (* the v2 manifest closes with a CRC-32 footer over everything above
     it, so manifest corruption is detected, not misparsed *)
  (match format with
  | V1 -> ()
  | V2 ->
    Buffer.add_string buf
      (Printf.sprintf "crc %08x\n" (Crc32.string (Buffer.contents buf))));
  write_file (manifest_file dir) (Buffer.contents buf);
  Array.iter
    (fun (tr : Trace.t) ->
      let data = encode_trace tr in
      let path = trace_file dir ~pid:tr.Trace.pid ~tid:tr.Trace.tid in
      match format with
      | V1 -> write_file path data
      | V2 -> write_v2_trace path data ~chunk_size)
    traces;
  Array.length traces

(* ------------------------------------------------------------------ *)
(* Manifest parsing                                                    *)
(* ------------------------------------------------------------------ *)

type manifest = {
  m_version : int;
  m_symbols : string list;
  m_threads : (int * int * bool * int) list; (* pid, tid, truncated, len *)
}

exception Bad of string

let crc_footer_len = String.length "crc 00000000\n"

let parse_manifest text =
  let fail msg = raise (Bad msg) in
  let version, body =
    if String.length text >= 20 && String.sub text 0 20 = "difftrace-archive 1\n"
    then (1, text)
    else if
      String.length text >= 20 && String.sub text 0 20 = "difftrace-archive 2\n"
    then begin
      let n = String.length text in
      if n < 20 + crc_footer_len then fail "missing manifest checksum";
      let body = String.sub text 0 (n - crc_footer_len) in
      let footer = String.sub text (n - crc_footer_len) crc_footer_len in
      let crc =
        try Scanf.sscanf footer "crc %x" (fun c -> c)
        with _ -> fail "missing manifest checksum"
      in
      if Crc32.string body <> crc then fail "manifest checksum mismatch";
      (2, body)
    end
    else fail "bad magic"
  in
  match String.split_on_char '\n' body with
  | _magic :: rest ->
    let nsyms, rest =
      match rest with
      | l :: rest -> (
        try Scanf.sscanf l "symbols %d" (fun n -> (n, rest))
        with _ -> fail "missing symbols header")
      | [] -> fail "truncated manifest"
    in
    if nsyms < 0 then fail "missing symbols header";
    let rec read_syms n rest acc =
      if n = 0 then (List.rev acc, rest)
      else
        match rest with
        | l :: rest ->
          let name =
            try Scanf.sscanf l "%S" (fun s -> s) with _ -> fail "bad symbol"
          in
          read_syms (n - 1) rest (name :: acc)
        | [] -> fail "truncated symbols"
    in
    let symbols, rest = read_syms nsyms rest [] in
    let nthreads, rest =
      match rest with
      | l :: rest -> (
        try Scanf.sscanf l "threads %d" (fun n -> (n, rest))
        with _ -> fail "missing threads header")
      | [] -> fail "truncated manifest"
    in
    if nthreads < 0 then fail "missing threads header";
    let rec read_threads n rest acc =
      if n = 0 then List.rev acc
      else
        match rest with
        | l :: rest ->
          let pid, tid, status, len =
            try Scanf.sscanf l "thread %d %d %s %d" (fun a b c d -> (a, b, c, d))
            with _ -> fail "bad thread line"
          in
          let truncated =
            match status with
            | "truncated" -> true
            | "complete" -> false
            | _ -> fail "bad thread status"
          in
          read_threads (n - 1) rest ((pid, tid, truncated, len) :: acc)
        | [] -> fail "truncated thread list"
    in
    let threads = read_threads nthreads rest [] in
    { m_version = version; m_symbols = symbols; m_threads = threads }
  | [] -> fail "bad magic"

(* ------------------------------------------------------------------ *)
(* Reading one trace file                                              *)
(* ------------------------------------------------------------------ *)

(* Outcome of scanning one trace file: chunk accounting plus the
   decoder holding every event recovered before the first problem.
   [sc_consumed] is the file offset just past the last fully validated
   chunk — dropped bytes under salvage are measured from there. *)
type scan = {
  sc_chunks : int;
  sc_bytes : int; (* validated payload bytes *)
  sc_consumed : int;
  sc_size : int;
  sc_issue : string option;
  sc_stream : Tracer.stream;
}

let read_block_size = 65536

(* Shared by load and verify; IO errors (missing file) are reported as
   an issue, never an exception. *)
let scan_trace ~version path =
  match open_in_bin path with
  | exception Sys_error m ->
    { sc_chunks = 0;
      sc_bytes = 0;
      sc_consumed = 0;
      sc_size = 0;
      sc_issue = Some ("cannot open trace file: " ^ m);
      sc_stream = Tracer.stream () }
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let size = in_channel_length ic in
        let st = Tracer.stream () in
        let chunks = ref 0 in
        let bytes = ref 0 in
        let consumed = ref 0 in
        let issue = ref None in
        let set_issue r = if !issue = None then issue := Some r in
        (match version with
        | 1 ->
          (* v1: a bare LZW stream; read in blocks, feed incrementally *)
          (try
             let buf = Bytes.create read_block_size in
             let rec go () =
               let n = input ic buf 0 read_block_size in
               if n > 0 then begin
                 Tracer.stream_feed st (Bytes.sub_string buf 0 n);
                 bytes := !bytes + n;
                 consumed := pos_in ic;
                 go ()
               end
             in
             go ();
             if not (Tracer.stream_complete st) then
               set_issue "unterminated event stream"
           with Invalid_argument m -> set_issue ("decode error: " ^ m))
        | _ ->
          let read_varint () =
            let rec go shift acc =
              if shift > 56 then failwith "bad chunk length";
              let b = input_byte ic in
              let acc = acc lor ((b land 0x7f) lsl shift) in
              if acc < 0 then failwith "bad chunk length";
              if b land 0x80 = 0 then acc else go (shift + 7) acc
            in
            go 0 0
          in
          (try
             let magic = really_input_string ic 4 in
             if magic <> chunk_magic then set_issue "bad trace file magic"
             else begin
               let stream_crc = ref Crc32.init in
               let rec loop () =
                 let len = read_varint () in
                 if len = 0 then begin
                   let expect = Crc32.of_le_bytes (really_input_string ic 4) 0 in
                   if Crc32.finish !stream_crc <> expect then begin
                     Telemetry.Counter.incr c_crc_fail;
                     set_issue "whole-stream checksum mismatch"
                   end
                   else begin
                     consumed := pos_in ic;
                     if pos_in ic <> size then
                       set_issue "trailing garbage after terminator"
                     else if not (Tracer.stream_complete st) then
                       set_issue "unterminated event stream"
                   end
                 end
                 else if len > size - pos_in ic then failwith "truncated chunk"
                 else begin
                   let data = really_input_string ic len in
                   let expect = Crc32.of_le_bytes (really_input_string ic 4) 0 in
                   if Crc32.string data <> expect then begin
                     Telemetry.Counter.incr c_crc_fail;
                     set_issue "chunk checksum mismatch"
                   end
                   else begin
                     incr chunks;
                     Telemetry.Counter.incr c_chunks;
                     bytes := !bytes + len;
                     stream_crc := Crc32.update !stream_crc data ~pos:0 ~len;
                     match Tracer.stream_feed st data with
                     | () ->
                       consumed := pos_in ic;
                       loop ()
                     | exception Invalid_argument m ->
                       set_issue ("decode error: " ^ m)
                   end
                 end
               in
               loop ()
             end
           with
          | End_of_file -> set_issue "truncated chunk"
          | Failure m -> set_issue m));
        { sc_chunks = !chunks;
          sc_bytes = !bytes;
          sc_consumed = !consumed;
          sc_size = size;
          sc_issue = !issue;
          sc_stream = st })

(* ------------------------------------------------------------------ *)
(* Loading                                                             *)
(* ------------------------------------------------------------------ *)

let read_manifest dir =
  let path = manifest_file dir in
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error m ->
    Error { err_path = path; err_reason = "cannot read manifest: " ^ m }
  | text -> (
    match parse_manifest text with
    | m -> Ok m
    | exception Bad reason -> Error { err_path = path; err_reason = reason })

type thread_outcome =
  | T_ok of Trace.t
  | T_salvaged of Trace.t * salvage
  | T_err of error

let load_thread ~version ~salvage dir (pid, tid, truncated, len) =
  let path = trace_file dir ~pid ~tid in
  let sc = scan_trace ~version path in
  let outcome =
    match sc.sc_issue with
    | Some reason -> Error reason
    | None ->
      if Tracer.stream_events sc.sc_stream <> len then
        Error
          (Printf.sprintf "trace length mismatch (manifest %d, decoded %d)" len
             (Tracer.stream_events sc.sc_stream))
      else (
        (* a clean scan already verified completeness, but never let a
           decoder refusal escape as an exception *)
        match Tracer.stream_finish sc.sc_stream ~pid ~tid ~truncated with
        | tr -> Ok tr
        | exception Invalid_argument _ -> Error "incomplete event stream")
  in
  match outcome with
  | Ok tr -> T_ok tr
  | Error reason when salvage ->
    let tr = Tracer.stream_salvage sc.sc_stream ~pid ~tid in
    Telemetry.Counter.add c_salvaged (Trace.length tr);
    T_salvaged
      ( tr,
        { sv_pid = pid;
          sv_tid = tid;
          sv_events = Trace.length tr;
          sv_dropped_bytes = sc.sc_size - sc.sc_consumed;
          sv_reason = reason } )
  | Error reason -> T_err { err_path = path; err_reason = reason }

let load ?(runner = sequential_runner) ?(salvage = false) ~dir () =
  Span.with_ "archive.load" @@ fun () ->
  match read_manifest dir with
  | Error e -> Error e
  | Ok m -> (
    let symtab = Symtab.create () in
    List.iter (fun name -> ignore (Symtab.intern symtab name)) m.m_symbols;
    let threads = Array.of_list m.m_threads in
    let outcomes =
      runner.run (Array.length threads) (fun i ->
          load_thread ~version:m.m_version ~salvage dir threads.(i))
    in
    let err =
      Array.fold_left
        (fun acc o ->
          match (acc, o) with Some _, _ -> acc | None, T_err e -> Some e | None, _ -> None)
        None outcomes
    in
    match err with
    | Some e -> Error e
    | None ->
      let traces =
        Array.to_list
          (Array.map
             (function
               | T_ok tr | T_salvaged (tr, _) -> tr | T_err _ -> assert false)
             outcomes)
      in
      let salvaged =
        Array.to_list outcomes
        |> List.filter_map (function T_salvaged (_, s) -> Some s | _ -> None)
      in
      Ok
        { set = Trace_set.create symtab traces;
          version = m.m_version;
          salvaged })

let load_exn ?runner ~dir () =
  match load ?runner ~dir () with
  | Ok l -> l.set
  | Error e -> invalid_arg ("Archive.load: " ^ e.err_reason)

(* ------------------------------------------------------------------ *)
(* Verify / repair                                                     *)
(* ------------------------------------------------------------------ *)

let verify ?(runner = sequential_runner) ~dir () =
  Span.with_ "archive.verify" @@ fun () ->
  match read_manifest dir with
  | Error e -> Error e
  | Ok m ->
    let threads = Array.of_list m.m_threads in
    let checks =
      runner.run (Array.length threads) (fun i ->
          let pid, tid, _, len = threads.(i) in
          let sc = scan_trace ~version:m.m_version (trace_file dir ~pid ~tid) in
          let events = Tracer.stream_events sc.sc_stream in
          let issue =
            match sc.sc_issue with
            | Some _ as i -> i
            | None when events <> len ->
              Some
                (Printf.sprintf "trace length mismatch (manifest %d, decoded %d)"
                   len events)
            | None -> None
          in
          { tc_pid = pid;
            tc_tid = tid;
            tc_chunks = sc.sc_chunks;
            tc_events = events;
            tc_bytes = sc.sc_bytes;
            tc_issue = issue })
    in
    let traces = Array.to_list checks in
    Ok
      { rp_dir = dir;
        rp_version = m.m_version;
        rp_traces = traces;
        rp_ok = List.for_all (fun t -> t.tc_issue = None) traces }

let render_report r =
  let header =
    Printf.sprintf "archive %s (v%d): %s\n" r.rp_dir r.rp_version
      (if r.rp_ok then "OK"
       else
         Printf.sprintf "DAMAGED (%d of %d traces)"
           (List.length (List.filter (fun t -> t.tc_issue <> None) r.rp_traces))
           (List.length r.rp_traces))
  in
  header
  ^ Texttable.render
      ~headers:[ "Trace"; "Chunks"; "Bytes"; "Events"; "Status" ]
      (List.map
         (fun t ->
           [ Printf.sprintf "%d.%d" t.tc_pid t.tc_tid;
             string_of_int t.tc_chunks;
             string_of_int t.tc_bytes;
             string_of_int t.tc_events;
             (match t.tc_issue with None -> "ok" | Some i -> i) ])
         r.rp_traces)

let repair ?runner ~src ~dst () =
  match load ?runner ~salvage:true ~dir:src () with
  | Error e -> Error e
  | Ok l ->
    let files = save ~format:V2 ~dir:dst l.set in
    Ok (l, files)
