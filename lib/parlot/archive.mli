(** On-disk trace archives with checksummed streaming ingestion.

    The paper's workflow records traces once and re-analyzes them
    offline "with different filters" at every debug iteration — and the
    runs most worth re-analyzing are the crashed or hung ones, exactly
    the runs that leave truncated or corrupt trace files behind. The
    archive layer therefore treats damage as an expected input, not an
    exception: loads are result-returning, every v2 byte is covered by
    a CRC-32, and a {e salvage} mode recovers the longest checksum-valid
    prefix of each damaged trace instead of discarding the run.

    Layout (version 2, the default):
    {v
    <dir>/manifest        version, symbols, one line per thread,
                          closed by a "crc %08x" footer line
    <dir>/trace_P_T.lzw   "DTA2", then varint-length-prefixed chunks of
                          the compressed event stream, each closed by a
                          CRC-32 footer; a zero-length terminator chunk
                          carries the whole-stream CRC-32
    v}

    Version 1 archives (bare LZW streams, no checksums) remain
    readable. Trace files are decoded incrementally — chunk by chunk
    through {!Lzw}'s streaming decoder — so a multi-GB archive never
    materializes a trace file as one string, and per-thread loads can
    be fanned out over domains via a {!runner}. *)

(** Archive wire format. [V2] (framed + checksummed) is the default for
    {!save}; [V1] is the legacy format, still written for
    interoperability tests and always readable. *)
type format = V1 | V2

(** How per-thread loads are scheduled: [run n f] must behave exactly
    like [Array.init n f] (same contract as [Engine.init] in the core
    library, which is the intended parallel instantiation — pass
    [{ run = Engine.init engine }]). *)
type runner = { run : 'a. int -> (int -> 'a) -> 'a array }

(** [Array.init] — the default. *)
val sequential_runner : runner

(** A hard ingestion failure: which file, and why. *)
type error = { err_path : string; err_reason : string }

val error_to_string : error -> string

(** One damaged trace recovered in salvage mode. *)
type salvage = {
  sv_pid : int;
  sv_tid : int;
  sv_events : int;  (** events recovered (the clean prefix) *)
  sv_dropped_bytes : int;  (** compressed bytes discarded *)
  sv_reason : string;  (** first problem encountered *)
}

(** A successful load: the trace set, the archive version it came from,
    and the per-trace salvage outcomes (empty for a pristine archive;
    salvaged traces are marked [truncated] in [set]). *)
type loaded = {
  set : Difftrace_trace.Trace_set.t;
  version : int;
  salvaged : salvage list;
}

(** [save ?format ?chunk_size ~dir ts] writes the archive (creating
    [dir] and any missing parents) and returns the number of trace
    files written. Re-encodes each decoded trace with the streaming LZW
    codec; under [V2] the compressed stream is framed into
    [chunk_size]-byte (default 4096) checksummed chunks.
    Raises [Invalid_argument] if [dir] exists and is not a directory,
    or if [chunk_size < 1]; [Sys_error] on IO failure. *)
val save :
  ?format:format ->
  ?chunk_size:int ->
  dir:string ->
  Difftrace_trace.Trace_set.t ->
  int

(** [load ?runner ?salvage ~dir] reads a version 1 or 2 archive back
    into a trace set.

    Without [salvage] (the default), any corruption — a flipped bit, a
    truncated or deleted chunk, appended garbage, a manifest that fails
    its checksum — yields [Error] naming the offending file; no
    exception escapes for malformed {e content} ([Sys_error] can still
    be raised for IO failures outside the archive's control).

    With [salvage:true], each damaged trace file is recovered up to its
    last checksum-valid, cleanly-decoding point; the recovered trace is
    marked [truncated] and reported in [salvaged]. Only manifest-level
    damage still yields [Error]. *)
val load :
  ?runner:runner ->
  ?salvage:bool ->
  dir:string ->
  unit ->
  (loaded, error) result

(** [load_exn ?runner ~dir] — strict compatibility wrapper: the [Ok]
    trace set, or [Invalid_argument ("Archive.load: " ^ reason)]. *)
val load_exn :
  ?runner:runner -> dir:string -> unit -> Difftrace_trace.Trace_set.t

(** {1 Verification} *)

(** Integrity of one trace file: checksum-valid chunks, validated
    payload bytes, cleanly decoded events, and the first problem found
    ([None] = pristine). *)
type trace_check = {
  tc_pid : int;
  tc_tid : int;
  tc_chunks : int;
  tc_events : int;
  tc_bytes : int;
  tc_issue : string option;
}

type report = {
  rp_dir : string;
  rp_version : int;
  rp_traces : trace_check list;
  rp_ok : bool;
}

(** [verify ?runner ~dir] scans every trace file without building a
    trace set. [Error] only when the manifest itself is unreadable. *)
val verify : ?runner:runner -> dir:string -> unit -> (report, error) result

(** Human-readable rendering of a verify report (one row per trace). *)
val render_report : report -> string

(** [repair ?runner ~src ~dst] loads [src] with salvage and rewrites
    the recovered set as a clean v2 archive at [dst]. Returns what was
    loaded plus the number of files written. *)
val repair :
  ?runner:runner ->
  src:string ->
  dst:string ->
  unit ->
  (loaded * int, error) result

(** [is_archive dir] — [dir] holds an archive manifest file. A cheap
    presence probe for layouts (e.g. campaign state directories) that
    mix archives with other state; it does not validate the manifest —
    {!load} does. *)
val is_archive : string -> bool

(** [manifest_file dir] / [trace_file dir ~pid ~tid] — file paths. *)
val manifest_file : string -> string

val trace_file : string -> pid:int -> tid:int -> string
