(** Per-thread trace recorder with ParLOT's on-the-fly compression.

    The simulated runtime calls [on_call]/[on_return] exactly where Pin
    instrumentation would fire; events are varint-serialized and pushed
    straight into a streaming {!Lzw} encoder, so the in-memory footprint
    during capture is the encoder state, not the trace. *)

(** Which binary image a function belongs to. ParLOT captures either the
    [main image] only (user code + API entry points) or [all images]
    (including inner library frames). *)
type image = Main | Library

type level = Main_image | All_images

type t

(** [create ~symtab ~level ~pid ~tid]. *)
val create :
  symtab:Difftrace_trace.Symtab.t -> level:level -> pid:int -> tid:int -> t

val pid : t -> int
val tid : t -> int

(** [on_call t ?image name] records entry into [name]. Events from
    [Library] images are dropped under [Main_image] capture, mirroring
    ParLOT's image filter. [image] defaults to [Main]. *)
val on_call : ?image:image -> t -> string -> unit

(** [on_return t ?image name] records exit from [name]. *)
val on_return : ?image:image -> t -> string -> unit

(** [scoped t ?image name f] records the call, runs [f ()], records the
    return, and passes exceptions through *without* recording the return
    — a thread killed inside a call leaves a truncated trace, as the
    paper's deadlock examples show. *)
val scoped : ?image:image -> t -> string -> (unit -> 'a) -> 'a

(** [set_truncated t] marks the thread as never having terminated. *)
val set_truncated : t -> unit

(** [events_recorded t] is the number of retained events so far. *)
val events_recorded : t -> int

(** [compressed_so_far t] is the compressed byte count so far. *)
val compressed_so_far : t -> int

(** [finish t] closes the stream and returns the compressed trace file
    contents together with the truncation flag. *)
val finish : t -> string * bool

(** [decode ~symtab ~pid ~tid ~truncated data] decompresses a finished
    stream back into a {!Difftrace_trace.Trace.t} — the pipeline's
    "ParLOT decoder" stage. Raises [Invalid_argument] on corrupt or
    unterminated input (use the streaming API below to salvage). *)
val decode :
  symtab:Difftrace_trace.Symtab.t ->
  pid:int ->
  tid:int ->
  truncated:bool ->
  string ->
  Difftrace_trace.Trace.t

(** {1 Streaming decode}

    The inverse of the streaming capture side: compressed bytes are
    accepted in arbitrary slices (the archive feeds checksummed chunks
    as it reads them), events materialize incrementally, and a damaged
    stream can be {e salvaged} — every event that decoded cleanly before
    the first bad byte is kept. *)

type stream

(** [stream ()] is a fresh streaming decoder for one trace file. *)
val stream : unit -> stream

(** [stream_feed st bytes] pushes compressed bytes; completed events
    accumulate inside. Raises [Invalid_argument] on corrupt input —
    events decoded before the bad byte are retained for
    {!stream_salvage}. *)
val stream_feed : stream -> string -> unit

(** [stream_events st] is the number of fully decoded events so far. *)
val stream_events : stream -> int

(** [stream_complete st] — has the stream seen its end-of-stream marker
    with no event split across it? A stream fed zero bytes (an empty
    trace file) is complete: it decodes to the empty event sequence,
    mirroring [Lzw.decompress ""] = [""]. *)
val stream_complete : stream -> bool

(** [stream_finish st ~pid ~tid ~truncated] closes a well-formed stream.
    Raises [Invalid_argument] if it is unterminated or ends mid-event;
    a stream fed zero bytes finishes as a valid empty trace. *)
val stream_finish :
  stream -> pid:int -> tid:int -> truncated:bool -> Difftrace_trace.Trace.t

(** [stream_salvage st ~pid ~tid] recovers the longest cleanly decoded
    event prefix of a damaged stream as a trace marked [truncated].
    Never raises. *)
val stream_salvage : stream -> pid:int -> tid:int -> Difftrace_trace.Trace.t
