(** Streaming LZW compression over byte strings.

    ParLOT's defining property is *on-the-fly, incremental* compression
    of each thread's function-ID stream: events are compressed as they
    are produced, so only a bounded encoder state (not the trace) is
    resident, and the output is appended to the thread's trace file as
    the application runs. This module reproduces that property with the
    classic LZW scheme over bytes; dictionary codes are emitted as
    LEB128 varints so fresh (small) codes stay short. *)

type encoder

(** [encoder ()] is a fresh streaming encoder. *)
val encoder : unit -> encoder

(** [feed e byte] pushes one input byte; any completed codes are
    appended to the encoder's internal output buffer immediately. *)
val feed : encoder -> char -> unit

(** [feed_string e s] pushes every byte of [s]. *)
val feed_string : encoder -> string -> unit

(** [finish e] flushes the pending phrase and returns the complete
    compressed output. The encoder must not be fed afterwards. *)
val finish : encoder -> string

(** [output_size e] is the number of compressed bytes produced so far
    (excluding the unflushed pending phrase). *)
val output_size : encoder -> int

(** [input_size e] is the number of bytes fed so far. *)
val input_size : encoder -> int

(** [compress s] is one-shot compression. *)
val compress : string -> string

(** {1 Incremental decoding}

    The decoder mirrors the encoder's streaming property: compressed
    bytes are accepted in arbitrary slices (a varint code may straddle
    two feeds), so archive ingestion never materializes a whole trace
    file. Corruption — an out-of-range code, a phrase code before any
    literal, an over-long varint run, or bytes after the end-of-stream
    marker — raises [Invalid_argument]; everything decoded before the
    bad byte remains available via {!decode_take} for salvage. *)

type decoder

(** [decoder ()] is a fresh streaming decoder. *)
val decoder : unit -> decoder

(** [decode_feed d s] pushes compressed bytes.
    Raises [Invalid_argument] on corrupt input or input past the
    end-of-stream marker. *)
val decode_feed : decoder -> string -> unit

(** [decode_take d] drains and returns the decompressed bytes produced
    since the last take. *)
val decode_take : decoder -> string

(** [decode_finished d] — has the end-of-stream marker been consumed? *)
val decode_finished : decoder -> bool

(** [decode_finish d] checks the end-of-stream marker was seen and
    drains the remaining output. Raises [Invalid_argument] if the
    stream is unterminated. *)
val decode_finish : decoder -> string

(** [decompress s] inverts [compress]/[feed]+[finish].
    Raises [Invalid_argument] on corrupt input: bad codes, a truncated
    or unterminated stream, or trailing bytes after the end-of-stream
    marker. *)
val decompress : string -> string
