module Config = Difftrace_core.Config
module Engine = Difftrace_core.Engine
module Memo = Difftrace_core.Memo
module Store = Difftrace_core.Store
module Pipeline = Difftrace_core.Pipeline
module Session = Difftrace_core.Session
module Fault = Difftrace_simulator.Fault
module Runtime = Difftrace_simulator.Runtime
module Archive = Difftrace_parlot.Archive
module Trace = Difftrace_trace.Trace
module Trace_set = Difftrace_trace.Trace_set
module Crc32 = Difftrace_util.Crc32
module Eventdb = Difftrace_eventdb.Eventdb
module Telemetry = Difftrace_obs.Telemetry
module Span = Telemetry.Span
module Odd_even = Difftrace_workloads.Odd_even
module Ilcs = Difftrace_workloads.Ilcs
module Lulesh = Difftrace_workloads.Lulesh
module Heat = Difftrace_workloads.Heat
module Heat2d = Difftrace_workloads.Heat2d

let c_cells = Telemetry.Counter.make "campaign.cells"
let c_failed = Telemetry.Counter.make "campaign.failed"
let c_resumed = Telemetry.Counter.make "campaign.resumed"
let c_manifest_salvaged = Telemetry.Counter.make "campaign.manifest_salvaged"

(* ------------------------------------------------------------------ *)
(* Errors                                                              *)
(* ------------------------------------------------------------------ *)

type error =
  | State_dir of string
  | Wrong_campaign of { dir : string; what : string }
  | Manifest_damaged of { dir : string; reason : string }
  | No_manifest of string
  | Unknown_kind of string
  | Io of string

(* ------------------------------------------------------------------ *)
(* Cell kinds                                                          *)
(* ------------------------------------------------------------------ *)

type kind_fn =
  np:int ->
  seed:int ->
  max_steps:int option ->
  fault:Fault.t ->
  Runtime.outcome

(* the registry is written only at module init and by [register_kind];
   campaign fan-out only reads it *)
let kind_tbl : (string, kind_fn) Hashtbl.t = Hashtbl.create 16

let register_kind name fn =
  if name = "" then invalid_arg "Campaign.register_kind: empty kind name";
  Hashtbl.replace kind_tbl name fn

let kinds () =
  Hashtbl.fold (fun k _ acc -> k :: acc) kind_tbl [] |> List.sort String.compare

let oddeven ~np ~seed ~max_steps ~fault =
  fst (Odd_even.run ~np ~seed ?max_steps ~fault ())

(* Frontend-backed corpus cells: the kind "corpus:FRONTEND:DIR" doesn't
   execute anything — it ingests checked-in foreign-format files (CI
   logs, strace captures) through a registered frontend. The fault-free
   reference run ingests the first file of DIR (sorted); a faulty cell
   with seed s ingests file s mod n, so one campaign sweep ranks every
   corpus member against the baseline. The fault axis only
   distinguishes reference from cell; ingestion failures raise and are
   contained by the campaign's crash isolation. *)
let corpus_prefix = "corpus:"

let corpus_kind name : kind_fn option =
  if not (String.starts_with ~prefix:corpus_prefix name) then None
  else
    let rest =
      String.sub name (String.length corpus_prefix)
        (String.length name - String.length corpus_prefix)
    in
    match String.index_opt rest ':' with
    | None -> None
    | Some i ->
      let fename = String.sub rest 0 i in
      let dir = String.sub rest (i + 1) (String.length rest - i - 1) in
      if fename = "" || dir = "" then None
      else
        Some
          (fun ~np:_ ~seed ~max_steps:_ ~fault ->
            let module Frontend = Difftrace_frontend.Frontend in
            let fe =
              match Difftrace_frontend.Registry.find fename with
              | Some fe -> fe
              | None ->
                failwith (Printf.sprintf "corpus cell: unknown frontend %S" fename)
            in
            let files =
              match Sys.readdir dir with
              | a ->
                Array.to_list a
                |> List.filter (fun f ->
                       not (Sys.is_directory (Filename.concat dir f)))
                |> List.sort String.compare
              | exception Sys_error m -> failwith ("corpus cell: " ^ m)
            in
            let n = List.length files in
            if n = 0 then failwith ("corpus cell: no files in " ^ dir);
            let idx =
              if fault = Fault.No_fault then 0 else ((seed mod n) + n) mod n
            in
            let file = Filename.concat dir (List.nth files idx) in
            match Frontend.ingest_file fe file with
            | Error e -> failwith (Frontend.error_to_string e)
            | Ok ts ->
              let threads = Trace_set.cardinal ts in
              let total_events = Trace_set.total_events ts in
              { Runtime.traces = ts;
                stats =
                  { Difftrace_parlot.Capture.threads;
                    total_events;
                    total_compressed_bytes = 0;
                    mean_compressed_bytes = 0.;
                    mean_events_per_process =
                      (if threads = 0 then 0.
                       else float_of_int total_events /. float_of_int threads);
                    mean_distinct_functions = 0.;
                    compression_ratio = 0. };
                deadlocked = [];
                timed_out = false;
                collective_mismatch = None;
                races = [];
                sync_log = [] })

(* registered kinds, plus the parameterized corpus family *)
let find_kind name =
  match Hashtbl.find_opt kind_tbl name with
  | Some fn -> Some fn
  | None -> corpus_kind name

let () =
  register_kind "oddeven" oddeven;
  register_kind "ilcs" (fun ~np ~seed ~max_steps ~fault ->
      fst (Ilcs.run ~np ~seed ?max_steps ~fault ()));
  register_kind "lulesh" (fun ~np ~seed ~max_steps ~fault ->
      Lulesh.run ~np ~seed ?max_steps ~fault ());
  register_kind "heat" (fun ~np ~seed ~max_steps ~fault ->
      fst (Heat.run ~np ~seed ?max_steps ~fault ()));
  register_kind "heat2d" (fun ~np ~seed ~max_steps ~fault ->
      let px = max 1 (np / 2) and py = if np >= 2 then 2 else 1 in
      fst (Heat2d.run ~px ~py ~seed ?max_steps ~fault ()));
  (* the diagnostics kind: odd/even plus two synthetic failure modes,
     so crash isolation is exercisable from the CLI and CI *)
  register_kind "selftest" (fun ~np ~seed ~max_steps ~fault ->
      match fault with
      | Fault.Skip_function { func = "raise"; _ } ->
        failwith "selftest: injected crash"
      | Fault.Skip_function { func = "spin"; _ } ->
        (* a budget small enough that the sort cannot finish: the
           deterministic stand-in for a livelocked cell *)
        oddeven ~np ~seed ~max_steps:(Some 10) ~fault:Fault.No_fault
      | fault -> oddeven ~np ~seed ~max_steps ~fault)

let error_to_string = function
  | State_dir reason -> "campaign state dir: " ^ reason
  | Wrong_campaign { dir; what } ->
    Printf.sprintf
      "%s holds a different campaign (mismatched %s); use a fresh state \
       directory or delete it"
      dir what
  | Manifest_damaged { dir; reason } ->
    Printf.sprintf "campaign manifest in %s: %s" dir reason
  | No_manifest dir -> "no campaign manifest in " ^ dir
  | Unknown_kind kind ->
    Printf.sprintf
      "campaign cell kind %S is not registered (registered: %s); a custom \
       kind must be re-registered before resuming its campaign"
      kind
      (String.concat ", " (kinds ()))
  | Io reason -> reason

(* ------------------------------------------------------------------ *)
(* Matrix                                                              *)
(* ------------------------------------------------------------------ *)

type matrix = {
  kind : string;
  np : int;
  faults : Fault.t list;
  seeds : int list;
  max_steps : int option;
}

let matrix ?max_steps ~kind ~np ~faults ~seeds () =
  if Option.is_none (find_kind kind) then
    invalid_arg
      (Printf.sprintf "Campaign.matrix: unknown cell kind %S (known: %s)" kind
         (String.concat ", " (kinds ())));
  if np < 1 then invalid_arg "Campaign.matrix: np must be >= 1";
  if faults = [] then invalid_arg "Campaign.matrix: no faults";
  if seeds = [] then invalid_arg "Campaign.matrix: no seeds";
  (match max_steps with
  | Some s when s < 1 -> invalid_arg "Campaign.matrix: max_steps must be >= 1"
  | _ -> ());
  { kind; np; faults; seeds = List.sort_uniq Int.compare seeds; max_steps }

type cell = { index : int; fault : Fault.t; seed : int }

let cells m =
  List.concat_map
    (fun (fi, fault) ->
      List.mapi
        (fun si seed -> { index = (fi * List.length m.seeds) + si; fault; seed })
        m.seeds)
    (List.mapi (fun i f -> (i, f)) m.faults)

let cell_label c = Printf.sprintf "%s@s%d" (Fault.to_string c.fault) c.seed

(* ------------------------------------------------------------------ *)
(* Results                                                             *)
(* ------------------------------------------------------------------ *)

type verdict =
  | Completed
  | Hung of { deadlocked : int; timed_out : bool }
  | Failed of { error : string; backtrace : string }

let verdict_to_string = function
  | Completed -> "ok"
  | Hung { deadlocked; timed_out } ->
    Printf.sprintf "HUNG(%d blocked%s)" deadlocked
      (if timed_out then ", timed out" else "")
  | Failed { error; _ } -> Printf.sprintf "FAILED: %s" error

let verdict_short = function
  | Completed -> "ok"
  | Hung _ -> "HUNG"
  | Failed _ -> "FAILED"

type cell_result = {
  cell : cell;
  verdict : verdict;
  bscore : float option;
  suspects : (string * float) list;
  salvaged : int;
  resumed : bool;
}

type outcome = {
  matrix : matrix;
  results : cell_result list;
  executed : int;
  resumed_cells : int;
}

(* ------------------------------------------------------------------ *)
(* State directory layout                                              *)
(* ------------------------------------------------------------------ *)

let manifest_file dir = Filename.concat dir "campaign.manifest"
let cell_dir dir index = Filename.concat dir (Printf.sprintf "cell_%d" index)
let normal_dir dir seed = Filename.concat dir (Printf.sprintf "normal_s%d" seed)
let meta_file adir = Filename.concat adir "cell.meta"

(* never raises: a bad [dir] parameter must surface as an [Error] a
   resident daemon can report, not as an exception that kills it *)
let rec mkdir_p dir =
  if Sys.file_exists dir then
    if Sys.is_directory dir then Ok ()
    else Error (Printf.sprintf "%s exists and is not a directory" dir)
  else begin
    let parent = Filename.dirname dir in
    match if parent <> dir && parent <> "" then mkdir_p parent else Ok () with
    | Error _ as e -> e
    | Ok () -> (
      match Sys.mkdir dir 0o755 with
      | () -> Ok ()
      | exception Sys_error _ when Sys.is_directory dir -> Ok () (* lost a race; fine *)
      | exception Sys_error reason -> Error reason)
  end

(* atomic-enough replacement: write a sibling temp file, then rename
   over the target, so an interrupted campaign never leaves a
   half-written manifest (the CRC footer catches anything else) *)
let write_file_atomic path contents =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents);
  Sys.rename tmp path

(* ------------------------------------------------------------------ *)
(* Per-cell run metadata (beside the cell's archive)                   *)
(* ------------------------------------------------------------------ *)

(* diagnostics the trace archive itself cannot carry: how the run
   ended. Written when a cell is first simulated; consulted when an
   interrupted campaign re-adopts the archive. *)
let write_meta adir ~deadlocked ~timed_out =
  let body =
    Printf.sprintf "deadlocked %d\ntimed_out %b\n" deadlocked timed_out
  in
  write_file_atomic (meta_file adir)
    (body ^ Printf.sprintf "crc %08x\n" (Crc32.string body))

let read_meta adir =
  let path = meta_file adir in
  if not (Sys.file_exists path) then None
  else
    try
      let ic = open_in_bin path in
      let text =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let crc_len = String.length "crc 00000000\n" in
      if String.length text <= crc_len then None
      else
        let body = String.sub text 0 (String.length text - crc_len) in
        let footer = String.sub text (String.length text - crc_len) crc_len in
        let crc = Scanf.sscanf footer "crc %x" (fun c -> c) in
        if Crc32.string body <> crc then None
        else
          Scanf.sscanf body "deadlocked %d timed_out %b" (fun d t -> Some (d, t))
    with _ -> None (* damaged metadata: fall back to trace truncation flags *)

(* ------------------------------------------------------------------ *)
(* Manifest                                                            *)
(* ------------------------------------------------------------------ *)

let manifest_magic = "difftrace-campaign 1"

(* absent field *)
let none_tok = "-"

let esc s = "!" ^ String.escaped s
let unesc s = if s = none_tok then "" else Scanf.unescaped (String.sub s 1 (String.length s - 1))

let encode_verdict = function
  | Completed -> "completed"
  | Hung { deadlocked; timed_out } ->
    Printf.sprintf "hung/%d/%d" deadlocked (if timed_out then 1 else 0)
  | Failed _ -> "failed"

let encode_cell_line r =
  let suspects =
    if r.suspects = [] then none_tok
    else
      String.concat ","
        (List.map (fun (l, s) -> Printf.sprintf "%s=%.6f" l s) r.suspects)
  in
  let error, backtrace =
    match r.verdict with
    | Failed { error; backtrace } -> (esc error, esc backtrace)
    | _ -> (none_tok, none_tok)
  in
  String.concat "\t"
    [ "cell";
      string_of_int r.cell.index;
      encode_verdict r.verdict;
      (match r.bscore with Some b -> Printf.sprintf "%.6f" b | None -> none_tok);
      string_of_int r.salvaged;
      suspects;
      error;
      backtrace ]

let manifest_body m ~config_name results =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (manifest_magic ^ "\n");
  Buffer.add_string buf (Printf.sprintf "kind %s\n" m.kind);
  Buffer.add_string buf (Printf.sprintf "np %d\n" m.np);
  Buffer.add_string buf
    (Printf.sprintf "seeds %s\n"
       (String.concat " " (List.map string_of_int m.seeds)));
  Buffer.add_string buf
    (Printf.sprintf "budget %s\n"
       (match m.max_steps with Some s -> string_of_int s | None -> none_tok));
  Buffer.add_string buf (Printf.sprintf "config %s\n" config_name);
  List.iter
    (fun f -> Buffer.add_string buf (Printf.sprintf "fault %s\n" (Fault.to_string f)))
    m.faults;
  List.iter
    (fun r -> Buffer.add_string buf (encode_cell_line r ^ "\n"))
    results;
  Buffer.contents buf

let write_manifest ~dir m ~config_name results =
  let body = manifest_body m ~config_name results in
  write_file_atomic (manifest_file dir)
    (body ^ Printf.sprintf "crc %08x\n" (Crc32.string body))

(* what [status] and resume read back *)
type stored_cell = {
  st_index : int;
  st_verdict : verdict;
  st_bscore : float option;
  st_suspects : (string * float) list;
  st_salvaged : int;
}

(* header fields are options: a salvaged manifest may have lost any of
   them, and a lost field must read as "unknown", never as a default
   that could fake (or mask) a campaign mismatch *)
type loaded_manifest = {
  lm_kind : string option;
  lm_np : int option;
  lm_seeds : int list option;
  lm_faults : string list;
  lm_budget : int option option;  (** [None] = budget line lost *)
  lm_config : string option;
  lm_cells : stored_cell list;
  lm_salvaged : int;  (** unreadable lines dropped *)
  lm_intact : bool;  (** checksum valid and nothing dropped *)
}

let parse_cell_line_exn line =
  match String.split_on_char '\t' line with
  | [ "cell"; idx; verdict; bscore; salvaged; suspects; error; backtrace ] ->
    let idx = int_of_string idx in
    let bscore =
      if bscore = none_tok then None else Some (float_of_string bscore)
    in
    let suspects =
      if suspects = none_tok then []
      else
        List.map
          (fun kv ->
            match String.rindex_opt kv '=' with
            | Some i ->
              ( String.sub kv 0 i,
                float_of_string (String.sub kv (i + 1) (String.length kv - i - 1))
              )
            | None -> failwith "bad suspect entry")
          (String.split_on_char ',' suspects)
    in
    let verdict =
      match String.split_on_char '/' verdict with
      | [ "completed" ] -> Completed
      | [ "hung"; d; t ] ->
        Hung { deadlocked = int_of_string d; timed_out = t = "1" }
      | [ "failed" ] -> Failed { error = unesc error; backtrace = unesc backtrace }
      | _ -> failwith "bad verdict"
    in
    { st_index = idx;
      st_verdict = verdict;
      st_bscore = bscore;
      st_suspects = suspects;
      st_salvaged = int_of_string salvaged }
  | _ -> failwith "bad cell record"

(* Load whatever of the manifest is still readable; [None] = no
   manifest file. One flipped byte must cost at most the record it
   sits in — the damaged lines are dropped (their cells simply rerun)
   and counted into [lm_salvaged] and the [campaign.manifest_salvaged]
   counter, never raised: a corrupt manifest may not strand hours of
   completed cells behind a [failwith]. *)
let load_manifest ~dir =
  let path = manifest_file dir in
  if not (Sys.file_exists path) then None
  else begin
    let text =
      try
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      with Sys_error _ | End_of_file -> ""
    in
    let crc_len = String.length "crc 00000000\n" in
    (* with a valid footer, parse just the body; without one, parse
       everything we have (the stray footer line is then dropped and
       counted like any other unreadable line) *)
    let body, crc_ok =
      if String.length text <= crc_len then (text, false)
      else begin
        let body = String.sub text 0 (String.length text - crc_len) in
        let footer = String.sub text (String.length text - crc_len) crc_len in
        match Scanf.sscanf footer "crc %x" (fun c -> c) with
        | crc when Crc32.string body = crc -> (body, true)
        | _ -> (text, false)
        | exception _ -> (text, false)
      end
    in
    let salvaged = ref 0 in
    let drop () = incr salvaged in
    let lm =
      ref
        { lm_kind = None;
          lm_np = None;
          lm_seeds = None;
          lm_faults = [];
          lm_budget = None;
          lm_config = None;
          lm_cells = [];
          lm_salvaged = 0;
          lm_intact = false }
    in
    let lines =
      String.split_on_char '\n' body |> List.filter (fun l -> l <> "")
    in
    List.iteri
      (fun i line ->
        if i = 0 && line = manifest_magic then ()
        else
          let field k =
            let p = k ^ " " in
            if
              String.length line > String.length p
              && String.sub line 0 (String.length p) = p
            then
              Some
                (String.sub line (String.length p)
                   (String.length line - String.length p))
            else None
          in
          try
            match field "kind" with
            | Some v -> lm := { !lm with lm_kind = Some v }
            | None ->
            match field "np" with
            | Some v -> lm := { !lm with lm_np = Some (int_of_string v) }
            | None ->
            match field "seeds" with
            | Some v ->
              lm :=
                { !lm with
                  lm_seeds =
                    Some
                      (String.split_on_char ' ' v
                      |> List.filter (( <> ) "")
                      |> List.map int_of_string) }
            | None ->
            match field "budget" with
            | Some v ->
              lm :=
                { !lm with
                  lm_budget =
                    Some
                      (if v = none_tok then None else Some (int_of_string v)) }
            | None ->
            match field "config" with
            | Some v -> lm := { !lm with lm_config = Some v }
            | None ->
            match field "fault" with
            | Some v ->
              (* validate now: a damaged fault line must be dropped
                 here, not explode later in [Fault.of_string] *)
              ignore (Fault.of_string v : Fault.t);
              lm := { !lm with lm_faults = !lm.lm_faults @ [ v ] }
            | None ->
              if String.length line >= 5 && String.sub line 0 5 = "cell\t" then
                lm :=
                  { !lm with
                    lm_cells = !lm.lm_cells @ [ parse_cell_line_exn line ] }
              else failwith "unrecognized manifest line"
          with _ -> drop ())
      lines;
    Telemetry.Counter.add c_manifest_salvaged !salvaged;
    Some
      { !lm with
        lm_salvaged = !salvaged;
        lm_intact = crc_ok && !salvaged = 0 }
  end

let rec is_subseq xs ys =
  match (xs, ys) with
  | [], _ -> true
  | _, [] -> false
  | x :: xt, y :: yt -> if x = y then is_subseq xt yt else is_subseq xs yt

(* the loaded manifest describes this very campaign? Lost fields
   cannot testify either way, so only surviving ones are compared; a
   salvaged manifest's fault lines need only be an in-order subset
   (some may have been dropped). *)
let manifest_matches m ~config_name lm =
  let mismatch what = Some what in
  let differs field v = match field with Some w -> w <> v | None -> false in
  if differs lm.lm_kind m.kind then mismatch "kind"
  else if differs lm.lm_np m.np then mismatch "np"
  else if differs lm.lm_seeds m.seeds then mismatch "seeds"
  else if
    (let fs = List.map Fault.to_string m.faults in
     if lm.lm_intact then lm.lm_faults <> fs
     else not (is_subseq lm.lm_faults fs))
  then mismatch "faults"
  else if differs lm.lm_budget m.max_steps then mismatch "step budget"
  else if differs lm.lm_config config_name then mismatch "configuration"
  else None

(* ------------------------------------------------------------------ *)
(* Cell execution                                                      *)
(* ------------------------------------------------------------------ *)

(* one obtained run: the traces plus how the run ended *)
type sim = {
  sm_set : Trace_set.t;
  sm_deadlocked : int;
  sm_timed_out : bool;
  sm_salvaged : int;
}

let count_truncated set =
  Array.fold_left
    (fun acc (tr : Trace.t) -> if tr.Trace.truncated then acc + 1 else acc)
    0 (Trace_set.traces set)

(* Obtain one run's traces: adopt a surviving archive from an earlier
   (interrupted) campaign when possible — salvage-loading it, so even
   a damaged archive contributes its checksum-valid prefix — otherwise
   execute the cell program and persist a fresh archive. All failure
   modes are captured as data; nothing escapes into the engine
   fan-out. *)
let obtain ~kind_fn ~np ~max_steps ~fault ~seed ~adir : (sim, string * string) result =
  let simulate () =
    match kind_fn ~np ~seed ~max_steps ~fault with
    | (o : Runtime.outcome) ->
      let deadlocked = List.length o.Runtime.deadlocked in
      (try
         ignore (Archive.save ~dir:adir o.Runtime.traces : int);
         write_meta adir ~deadlocked ~timed_out:o.Runtime.timed_out
       with e ->
         (* archive persistence is best-effort: the in-memory traces
            still feed the analysis, only resumability suffers *)
         Printf.eprintf "difftrace: could not archive %s: %s\n%!" adir
           (Printexc.to_string e));
      Ok
        { sm_set = o.Runtime.traces;
          sm_deadlocked = deadlocked;
          sm_timed_out = o.Runtime.timed_out;
          sm_salvaged = 0 }
    | exception e ->
      Error (Printexc.to_string e, Printexc.get_backtrace ())
  in
  if Archive.is_archive adir then
    match Archive.load ~salvage:true ~dir:adir () with
    | Ok l ->
      let deadlocked, timed_out =
        match read_meta adir with
        | Some (d, t) -> (d, t)
        | None -> (count_truncated l.Archive.set, false)
      in
      Ok
        { sm_set = l.Archive.set;
          sm_deadlocked = deadlocked;
          sm_timed_out = timed_out;
          sm_salvaged = List.length l.Archive.salvaged }
    | Error _ -> simulate () (* even salvage refused it: re-execute *)
  else simulate ()

let max_suspects = 8

let analyze_cell ?memo ?store ~config c ~normal ~faulty =
  match (faulty, normal) with
  | Error (error, backtrace), _ ->
    { cell = c;
      verdict = Failed { error = "cell run: " ^ error; backtrace };
      bscore = None;
      suspects = [];
      salvaged = 0;
      resumed = false }
  | Ok (sim : sim), Error (error, backtrace) ->
    { cell = c;
      verdict = Failed { error = "reference run: " ^ error; backtrace };
      bscore = None;
      suspects = [];
      salvaged = sim.sm_salvaged;
      resumed = false }
  | Ok sim, Ok (nsim : sim) -> (
    let run_verdict =
      if sim.sm_deadlocked > 0 || sim.sm_timed_out then
        Hung { deadlocked = sim.sm_deadlocked; timed_out = sim.sm_timed_out }
      else Completed
    in
    match
      Pipeline.compare_runs ?memo ?store config ~normal:nsim.sm_set
        ~faulty:sim.sm_set
    with
    | cmp ->
      let suspects =
        Array.to_list cmp.Pipeline.suspects
        |> List.filter (fun (_, s) -> s > 1e-9)
        |> List.filteri (fun i _ -> i < max_suspects)
      in
      { cell = c;
        verdict = run_verdict;
        bscore = Some cmp.Pipeline.bscore;
        suspects;
        salvaged = sim.sm_salvaged + nsim.sm_salvaged;
        resumed = false }
    | exception e ->
      (* the pipeline choked on this cell's (possibly ragged) traces:
         that is a verdict about the cell, not about the campaign *)
      { cell = c;
        verdict =
          Failed
            { error = "analysis: " ^ Printexc.to_string e;
              backtrace = Printexc.get_backtrace () };
        bscore = None;
        suspects = [];
        salvaged = sim.sm_salvaged + nsim.sm_salvaged;
        resumed = false })

(* ------------------------------------------------------------------ *)
(* Running                                                             *)
(* ------------------------------------------------------------------ *)

let result_of_stored all_cells st =
  match List.find_opt (fun c -> c.index = st.st_index) all_cells with
  | None -> None (* stale record outside the matrix: drop *)
  | Some cell ->
    Some
      { cell;
        verdict = st.st_verdict;
        bscore = st.st_bscore;
        suspects = st.st_suspects;
        salvaged = st.st_salvaged;
        resumed = true }

let run ?(config = Config.default) ?on_cell ?store ~dir m =
  Span.with_ "campaign.run" @@ fun () ->
  Printexc.record_backtrace true;
  let config_name = Config.name config in
  (* the kind must resolve before anything touches disk: a resumed
     matrix can name a kind that was never re-registered in this
     process (status reconstructs such matrices on purpose), and a
     fresh matrix can outlive its registration — both are a typed
     refusal, not a Not_found crash mid-campaign *)
  match find_kind m.kind with
  | None -> Error (Unknown_kind m.kind)
  | Some kind_fn -> (
  match mkdir_p dir with
  | Error reason -> Error (State_dir reason)
  | Ok () -> (
    let stored =
      match load_manifest ~dir with
      | None -> Ok []
      | Some lm -> (
        match manifest_matches m ~config_name lm with
        | Some what -> Error (Wrong_campaign { dir; what })
        | None ->
          (* a damaged manifest must not strand the campaign: resume
             from every record that survived, rerun the rest *)
          if not lm.lm_intact then
            Printf.eprintf
              "difftrace: campaign manifest in %s is damaged (%d unreadable \
               line(s) dropped); cells they recorded will rerun\n%!"
              dir lm.lm_salvaged;
          Ok lm.lm_cells)
    in
    match stored with
    | Error _ as e -> e
    | Ok stored -> (
      let all = cells m in
      let prior = List.filter_map (result_of_stored all) stored in
      let done_idx = List.map (fun r -> r.cell.index) prior in
      let pending =
        List.filter (fun c -> not (List.mem c.index done_idx)) all
      in
      Telemetry.Counter.add c_resumed (List.length prior);
      (* record the campaign's identity (and any resumed results)
         before the first cell runs — also what rewrites a clean,
         checksummed manifest over a salvaged one *)
      match write_manifest ~dir m ~config_name prior with
      | exception Sys_error reason -> Error (Io ("campaign manifest: " ^ reason))
      | () ->
      let runner = Engine.runner config.Config.engine in
      (* fault-free reference runs, one per seed a pending cell needs *)
      let seeds_needed =
        Array.of_list
          (List.sort_uniq Int.compare (List.map (fun c -> c.seed) pending))
      in
      let normals =
        Span.with_ "campaign.reference" @@ fun () ->
        runner.Engine.run (Array.length seeds_needed) (fun i ->
            let seed = seeds_needed.(i) in
            ( seed,
              obtain ~kind_fn ~np:m.np ~max_steps:m.max_steps
                ~fault:Fault.No_fault ~seed ~adir:(normal_dir dir seed) ))
      in
      let normal_for seed =
        match Array.find_opt (fun (s, _) -> s = seed) normals with
        | Some (_, r) -> r
        | None -> Error ("no reference run for seed " ^ string_of_int seed, "")
      in
      (* faulty cell runs, fanned over the engine; every failure mode
         is data, so one bad cell never aborts the fan-out *)
      let pending_arr = Array.of_list pending in
      let sims =
        Span.with_ "campaign.cells" @@ fun () ->
        runner.Engine.run (Array.length pending_arr) (fun i ->
            let c = pending_arr.(i) in
            obtain ~kind_fn ~np:m.np ~max_steps:m.max_steps ~fault:c.fault
              ~seed:c.seed ~adir:(cell_dir dir c.index))
      in
      (* analysis: sequential, one shared memo — every cell of a seed
         reuses the reference run's NLR summaries — with the manifest
         rewritten after each cell so an interruption loses at most
         the cell in flight. A store replaces the throwaway memo, so a
         resumed campaign re-adopts its summaries and JSMs from disk;
         flushing after every cell keeps the store as current as the
         manifest. *)
      let memo =
        match store with Some _ -> None | None -> Some (Memo.create ())
      in
      let completed = ref (List.rev prior) in
      Array.iteri
        (fun i c ->
          let res =
            Span.with_ "campaign.analyze" @@ fun () ->
            analyze_cell ?memo ?store ~config c ~normal:(normal_for c.seed)
              ~faulty:sims.(i)
          in
          Telemetry.Counter.incr c_cells;
          (match res.verdict with
          | Completed -> ()
          | Hung _ | Failed _ -> Telemetry.Counter.incr c_failed);
          completed := res :: !completed;
          let snapshot =
            List.sort
              (fun a b -> Int.compare a.cell.index b.cell.index)
              !completed
          in
          (* per-cell persistence is best-effort, like cell archives:
             a full disk costs resumability, not the running sweep *)
          (try write_manifest ~dir m ~config_name snapshot
           with Sys_error reason ->
             Printf.eprintf "difftrace: could not write campaign manifest: %s\n%!"
               reason);
          (match store with
          | Some st -> (
            match Store.flush st with
            | Ok () -> ()
            | Error e ->
              (* persistence is best-effort, like cell archives *)
              Printf.eprintf "difftrace: could not flush store: %s\n%!"
                (Store.error_to_string e))
          | None -> ());
          match on_cell with Some f -> f res | None -> ())
        pending_arr;
      let results =
        List.sort (fun a b -> Int.compare a.cell.index b.cell.index) !completed
      in
      Ok
        { matrix = m;
          results;
          executed = Array.length pending_arr;
          resumed_cells = List.length prior })))

(* ------------------------------------------------------------------ *)
(* Status                                                              *)
(* ------------------------------------------------------------------ *)

let status ~dir =
  match load_manifest ~dir with
  | None -> Error (No_manifest dir)
  | Some lm -> (
    match (lm.lm_kind, lm.lm_np, lm.lm_seeds, lm.lm_faults) with
    | Some kind, Some np, Some seeds, (_ :: _ as fault_names) -> (
      match List.map Fault.of_string fault_names with
      | exception Invalid_argument reason ->
        Error (Manifest_damaged { dir; reason })
      | faults ->
        (* reconstructed directly: [status] must work even when the
           manifest's kind is not registered in this process *)
        let m =
          { kind;
            np;
            faults;
            seeds;
            max_steps = Option.value lm.lm_budget ~default:None }
        in
        let all = cells m in
        let results = List.filter_map (result_of_stored all) lm.lm_cells in
        Ok
          { matrix = m;
            results;
            executed = 0;
            resumed_cells = List.length results })
    | _ ->
      Error
        (Manifest_damaged
           { dir;
             reason =
               Printf.sprintf
                 "header lost beyond salvage (%d unreadable line(s))"
                 lm.lm_salvaged }))

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

(* failed cells first (they crashed — maximally suspicious), then by
   ascending B-score (the paper's ordering), index breaking ties *)
let rank results =
  List.stable_sort
    (fun a b ->
      match (a.bscore, b.bscore) with
      | None, None -> Int.compare a.cell.index b.cell.index
      | None, Some _ -> -1
      | Some _, None -> 1
      | Some x, Some y -> (
        match Float.compare x y with
        | 0 -> Int.compare a.cell.index b.cell.index
        | c -> c))
    results

let render o =
  let m = o.matrix in
  let total = List.length m.faults * List.length m.seeds in
  let count p = List.length (List.filter p o.results) in
  let completed = count (fun r -> r.verdict = Completed) in
  let hung = count (fun r -> match r.verdict with Hung _ -> true | _ -> false) in
  let failed =
    count (fun r -> match r.verdict with Failed _ -> true | _ -> false)
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "campaign %s: np=%d, %d faults x %d seeds = %d cells\n"
       m.kind m.np (List.length m.faults) (List.length m.seeds) total);
  Buffer.add_string buf
    (Printf.sprintf
       "recorded %d/%d cells: %d completed, %d hung, %d failed (%d resumed)\n"
       (List.length o.results) total completed hung failed o.resumed_cells);
  let rows =
    List.map
      (fun r ->
        [ string_of_int r.cell.index;
          Fault.to_string r.cell.fault;
          string_of_int r.cell.seed;
          verdict_short r.verdict;
          (match r.bscore with Some b -> Printf.sprintf "%.3f" b | None -> "-");
          (match r.suspects with (l, s) :: _ -> Printf.sprintf "%s (%.3f)" l s | [] -> "-");
          (if r.salvaged > 0 then string_of_int r.salvaged else "") ])
      (rank o.results)
  in
  Buffer.add_string buf
    (Difftrace_util.Texttable.render
       ~headers:
         [ "Cell"; "Fault"; "Seed"; "Verdict"; "B-score"; "Top suspect"; "Salvaged" ]
       rows);
  let failures =
    List.filter
      (fun r -> match r.verdict with Failed _ -> true | _ -> false)
      o.results
  in
  if failures <> [] then begin
    Buffer.add_string buf "failures:\n";
    List.iter
      (fun r ->
        match r.verdict with
        | Failed { error; _ } ->
          Buffer.add_string buf
            (Printf.sprintf "  cell %d [%s]: %s\n" r.cell.index
               (cell_label r.cell) error)
        | _ -> ())
      failures
  end;
  let pending = total - List.length o.results in
  if pending > 0 then
    Buffer.add_string buf (Printf.sprintf "pending: %d cells not yet executed\n" pending);
  Buffer.contents buf

let top_cell_diffnlr ?(config = Config.default) ?store ~dir o =
  let candidates =
    rank o.results
    |> List.filter (fun r -> r.bscore <> None && r.suspects <> [])
  in
  match candidates with
  | [] -> Error "no analyzable cell with a suspicious trace"
  | top :: _ -> (
    let load adir =
      match Archive.load ~salvage:true ~dir:adir () with
      | Ok l -> Ok l.Archive.set
      | Error e -> Error (Archive.error_to_string e)
    in
    match
      (load (normal_dir dir top.cell.seed), load (cell_dir dir top.cell.index))
    with
    | Error e, _ | _, Error e -> Error e
    | Ok normal, Ok faulty -> (
      match Pipeline.compare_runs ?store config ~normal ~faulty with
      | exception e -> Error ("analysis: " ^ Printexc.to_string e)
      | cmp -> (
        let label = fst (List.hd top.suspects) in
        match Pipeline.find_diffnlr cmp label with
        | Error e -> Error (Pipeline.lookup_error_to_string e)
        | Ok d ->
          let note =
            Option.value ~default:""
              (Eventdb.divergence_note ~normal ~faulty ~label)
          in
          Ok
            (Printf.sprintf "cell %d [%s]:\n%s" top.cell.index
               (cell_label top.cell)
               (Difftrace_diff.Diffnlr.render
                  ~title:(Printf.sprintf "diffNLR(%s)" label)
                  d
               ^ note)))))

(* the n-way drill-down: merge every archived run of the campaign —
   the per-seed fault-free references plus every recorded cell that
   left an archive (Failed cells crashed before archiving anything) —
   into one variational NLR conditioned on the fault and seed axes,
   with each cell's verdict as its bad/good label. *)
let variational ?(config = Config.default) ?store ~dir o =
  let archived =
    List.filter
      (fun r -> match r.verdict with Failed _ -> false | _ -> true)
      o.results
  in
  let seeds =
    List.sort_uniq Int.compare (List.map (fun r -> r.cell.seed) archived)
  in
  let refs =
    List.map
      (fun seed ->
        { Session.vdr_name = Printf.sprintf "ref@s%d" seed;
          vdr_source =
            Session.Archive { dir = normal_dir dir seed; salvage = true };
          vdr_axes = [ ("fault", "none"); ("seed", string_of_int seed) ];
          vdr_bad = false })
      seeds
  in
  let cells =
    List.map
      (fun r ->
        { Session.vdr_name = cell_label r.cell;
          vdr_source =
            Session.Archive { dir = cell_dir dir r.cell.index; salvage = true };
          vdr_axes =
            [ ("fault", Fault.to_string r.cell.fault);
              ("seed", string_of_int r.cell.seed) ];
          vdr_bad = (match r.verdict with Completed -> false | _ -> true) })
      archived
  in
  let runs = refs @ cells in
  if List.length runs < 2 then
    Error "variational: fewer than two archived runs to align"
  else
    let ses = Session.create ?store () in
    match
      Session.vdiff ses config { Session.vd_runs = runs; vd_trace = None }
    with
    | Error e -> Error (Session.error_to_string e)
    | Ok r -> Ok r.Session.vd_output
