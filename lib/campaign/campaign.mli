(** Crash-isolated fault campaigns.

    The paper validates DiffTrace one planted fault at a time (§II-G,
    §IV, §V): a single normal/faulty pair per experiment. A campaign
    sweeps the whole fault × scheduler-seed matrix of a workload in one
    invocation, feeds every completed cell through the existing
    pipeline (JSM diff → B-score → suspect ranking), and produces a
    ranked cross-fault triage report — the "compare many executions at
    once" workflow of Variational Traces and CiDiff, on DiffTrace's
    substrate.

    Two properties make campaigns production-grade rather than a shell
    loop:

    {b Crash isolation.} A cell that deadlocks or exhausts its step
    budget is recorded as [Hung]; a cell whose workload or analysis
    raises is recorded as [Failed] with the exception and backtrace.
    Neither aborts the campaign — the remaining cells always run.

    {b Resumability.} Campaign state persists incrementally under one
    state directory: a CRC-checked manifest (rewritten atomically after
    every cell) plus one checksummed v2 trace archive per executed
    cell and per fault-free reference run. Re-running over the same
    directory skips every cell already in the manifest ([resumed] in
    its result, counted by the [campaign.resumed] telemetry counter);
    cells whose archive survived an interrupted run but never reached
    the manifest are re-analyzed from disk — salvage-loaded, so even a
    damaged archive contributes its checksum-valid prefix instead of
    forcing a re-execution.

    Cell simulations and archive loads are fanned over the configured
    {!Difftrace_core.Engine.t}; the analysis stage runs sequentially
    against one shared {!Difftrace_core.Memo.t}, so the per-seed
    reference run is summarized once however many faults share it.

    Telemetry counters: [campaign.cells] (cells executed this run),
    [campaign.failed] ([Hung] + [Failed] verdicts among them),
    [campaign.resumed] (cells skipped via the manifest),
    [campaign.manifest_salvaged] (unreadable manifest lines dropped on
    load — each costs at most the cell it recorded, which reruns). *)

(** {1 Errors}

    Everything {!run} and {!status} can refuse with, as data: a
    resident daemon passes campaign parameters straight from the wire,
    so no parameter — however bad — may surface as an exception. *)

type error =
  | State_dir of string  (** the state directory is unusable on disk *)
  | Wrong_campaign of { dir : string; what : string }
      (** the directory holds a {e different} campaign; [what] names
          the first mismatched field ("kind", "np", "seeds", "faults",
          "step budget", "configuration") *)
  | Manifest_damaged of { dir : string; reason : string }
      (** the manifest survives but salvage could not recover what the
          operation needs *)
  | No_manifest of string  (** [status] on a directory with no manifest *)
  | Unknown_kind of string
      (** the matrix names a cell kind absent from the registry — a
          custom kind not re-registered before resuming, or a typo; the
          rendering lists the registered kinds. {!status} still reads
          such a campaign (inspection needs no runner), only {!run}
          refuses. *)
  | Io of string  (** the initial manifest write failed *)

val error_to_string : error -> string

(** {1 Cell kinds}

    A {e kind} names the program a cell executes. The bundled
    workloads are pre-registered ("oddeven", "ilcs", "lulesh", "heat",
    "heat2d"), plus "selftest" — a diagnostics kind that delegates to
    the odd/even sort but interprets [Skip_function {func = "raise"}]
    as an injected exception and [Skip_function {func = "spin"}] as a
    forced step-budget timeout, so campaign crash isolation can be
    exercised end to end from the CLI. See EXTENDING.md for adding
    kinds.

    One kind family is parameterized rather than registered:
    ["corpus:FRONTEND:DIR"] cells execute nothing — each ingests a
    checked-in foreign-format file of [DIR] through the named
    {!Difftrace_frontend.Registry} frontend. The fault-free reference
    ingests the first file (sorted); a cell with seed [s] ingests file
    [s mod n], so one sweep ranks every corpus member against the
    baseline. Ingestion failures surface as [Failed] verdicts through
    the campaign's crash isolation. *)

(** [run ~np ~seed ~max_steps ~fault] — execute one cell program.
    [max_steps] is the campaign's per-cell step budget (None = the
    runtime default); implementations should thread it through to
    {!Difftrace_simulator.Runtime.run} so hung cells time out instead
    of burning the whole budget. May raise: the campaign runner
    records the exception as a [Failed] verdict. *)
type kind_fn =
  np:int ->
  seed:int ->
  max_steps:int option ->
  fault:Difftrace_simulator.Fault.t ->
  Difftrace_simulator.Runtime.outcome

(** [register_kind name fn] — add (or replace) a cell kind. *)
val register_kind : string -> kind_fn -> unit

(** Registered kind names, sorted. *)
val kinds : unit -> string list

(** {1 The matrix} *)

type matrix = private {
  kind : string;
  np : int;
  faults : Difftrace_simulator.Fault.t list;  (** in declaration order *)
  seeds : int list;                           (** sorted, deduplicated *)
  max_steps : int option;                     (** per-cell step budget *)
}

(** [matrix ?max_steps ~kind ~np ~faults ~seeds ()] — validate and
    build. Raises [Invalid_argument] on an unknown kind, an empty
    fault or seed list, or [np < 1]. Cells are the cross product
    faults × seeds, numbered fault-major from 0. *)
val matrix :
  ?max_steps:int ->
  kind:string ->
  np:int ->
  faults:Difftrace_simulator.Fault.t list ->
  seeds:int list ->
  unit ->
  matrix

type cell = { index : int; fault : Difftrace_simulator.Fault.t; seed : int }

(** The matrix's cells, in index order. *)
val cells : matrix -> cell list

(** ["dlBug(rank=1,after=0)@s2"] — the cell's stable human label. *)
val cell_label : cell -> string

(** {1 Results} *)

type verdict =
  | Completed  (** clean termination, analysis done *)
  | Hung of { deadlocked : int; timed_out : bool }
      (** the run ended abnormally — [deadlocked] threads blocked
          and/or the step budget ran out; the truncated traces were
          still analyzed (that is DiffTrace's specialty) *)
  | Failed of { error : string; backtrace : string }
      (** the workload or its analysis raised; [backtrace] may be
          empty *)

val verdict_to_string : verdict -> string

type cell_result = {
  cell : cell;
  verdict : verdict;
  bscore : float option;
      (** B-score of the cell vs. its fault-free reference run; [None]
          when the cell failed before analysis *)
  suspects : (string * float) list;
      (** top suspicious traces (label, JSM_D row change), descending *)
  salvaged : int;  (** traces recovered by archive salvage on reuse *)
  resumed : bool;  (** skipped via the manifest, not executed *)
}

type outcome = {
  matrix : matrix;
  results : cell_result list;  (** in cell-index order *)
  executed : int;              (** cells run (or re-analyzed) this call *)
  resumed_cells : int;         (** cells skipped via the manifest *)
}

(** {1 Running} *)

(** [run ?config ?on_cell ?store ~dir m] — execute every cell of [m]
    not already recorded in [dir]'s manifest, persisting state as it
    goes. [config] (default {!Difftrace_core.Config.default}) selects
    the analysis parameters and the engine; [on_cell] streams each
    non-resumed cell's result as its analysis finishes. [store]
    replaces the campaign's per-run memo with a persistent
    {!Difftrace_core.Store}: a resumed campaign re-adopts its cached
    summaries and JSMs, and the store is flushed after every analyzed
    cell (best-effort, like cell archives).

    Errors (as [Error _], never an exception): the state directory
    holds a {e different} campaign (kind, np, faults, seeds, config or
    step budget changed), or it is unusable on disk. A {e damaged}
    manifest is salvaged line by line: readable cell records still
    resume, unreadable ones are dropped with a stderr warning (their
    cells rerun, re-adopting any surviving archives) and counted by
    [campaign.manifest_salvaged], and the campaign's first manifest
    rewrite replaces the damaged file with a clean checksummed one. *)
val run :
  ?config:Difftrace_core.Config.t ->
  ?on_cell:(cell_result -> unit) ->
  ?store:Difftrace_core.Store.t ->
  dir:string ->
  matrix ->
  (outcome, error) result

(** [status ~dir] — the campaign recorded in [dir]'s manifest, without
    executing anything: every recorded cell appears as a [resumed]
    result, unrecorded cells are absent. Damage is salvaged as in
    {!run} (best-effort: status is only as complete as the readable
    records); [Error] when there is no manifest at all, or salvage
    lost the header fields the matrix needs. *)
val status : dir:string -> (outcome, error) result

(** {1 Reporting} *)

(** [render o] — the ranked cross-fault triage table: failed cells
    first (they crashed — maximally suspicious), then analyzable cells
    by ascending B-score (the paper's ordering: low B-score = the
    fault restructured the execution most), with a failure-detail
    section beneath. *)
val render : outcome -> string

(** [top_cell_diffnlr ?config ?store ~dir o] — re-load the archives of the
    best-ranked analyzable cell and render the diffNLR of its top
    suspect against the reference run (the drill-down step of the
    triage loop), with the event-DB divergence footer pinning the
    suspect to a raw-event position. [Error] when no cell is
    analyzable or the archives are gone. *)
val top_cell_diffnlr :
  ?config:Difftrace_core.Config.t ->
  ?store:Difftrace_core.Store.t ->
  dir:string ->
  outcome ->
  (string, string) result

(** [variational ?config ?store ~dir o] — the n-way drill-down
    ([campaign report --variational]): re-load {e every} archived run
    of the campaign — the per-seed fault-free references plus each
    recorded cell (Failed cells crashed before archiving and are
    skipped) — and render one conditioned variational NLR
    ({!Difftrace_core.Session.vdiff}) with [fault] and [seed] as the
    condition axes and each cell's verdict as its bad/good label. The
    report annotates every structural region with the minimal condition
    selecting the runs it appears in, and names the minimal
    discriminating condition of the bad set — e.g. [fault=f2] when the
    divergent region tracks one injected fault exactly. [Error] when
    fewer than two archived runs remain or an archive is unreadable. *)
val variational :
  ?config:Difftrace_core.Config.t ->
  ?store:Difftrace_core.Store.t ->
  dir:string ->
  outcome ->
  (string, string) result
