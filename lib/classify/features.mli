(** Elevated features for bug classification (paper §VII future work
    (3): "whether concept lattices and loop structures can be used as
    elevated features for precise bug classifications").

    One feature vector summarizes a (normal, faulty) run pair: how much
    the clustering restructured (B-score), how concentrated the
    suspicion is, whether the job hung, what the runtime diagnosed, and
    how the concept lattice and the loop structures moved. *)

type t = {
  bscore : float;
  mean_row_change : float;     (** mean JSM_D row change *)
  suspect_concentration : float;
      (** top suspect's share of the total row change (1 = one clear
          culprit, ≈1/n = diffuse) *)
  truncated_fraction : float;  (** share of faulty traces truncated *)
  deadlocked : float;          (** 1.0 if the faulty run hung *)
  collective_mismatch : float; (** 1.0 if a collective was diagnosed *)
  race_count : float;          (** locking-discipline violations *)
  lattice_growth : float;      (** |faulty lattice| / |normal lattice| *)
  loop_drift : float;
      (** mean relative change in per-trace NLR length *)
}

(** [names] — feature names, in {!to_vector} order. *)
val names : string array

(** [to_vector t] — the numeric vector (same order as [names]). *)
val to_vector : t -> float array

(** [extract comparison ~faulty_outcome] — build the vector from a
    pipeline comparison plus the faulty run's runtime diagnostics. *)
val extract :
  Difftrace_core.Pipeline.comparison ->
  faulty_outcome:Difftrace_simulator.Runtime.outcome ->
  t
