module Pipeline = Difftrace_core.Pipeline
module Lattice = Difftrace_fca.Lattice
module Nlr = Difftrace_nlr.Nlr
module R = Difftrace_simulator.Runtime

type t = {
  bscore : float;
  mean_row_change : float;
  suspect_concentration : float;
  truncated_fraction : float;
  deadlocked : float;
  collective_mismatch : float;
  race_count : float;
  lattice_growth : float;
  loop_drift : float;
}

let names =
  [| "bscore"; "mean_row_change"; "suspect_concentration";
     "truncated_fraction"; "deadlocked"; "collective_mismatch"; "race_count";
     "lattice_growth"; "loop_drift" |]

let to_vector t =
  [| t.bscore; t.mean_row_change; t.suspect_concentration;
     t.truncated_fraction; t.deadlocked; t.collective_mismatch; t.race_count;
     t.lattice_growth; t.loop_drift |]

let extract (c : Pipeline.comparison) ~(faulty_outcome : R.outcome) =
  let suspects = c.Pipeline.suspects in
  let total = Array.fold_left (fun acc (_, s) -> acc +. s) 0.0 suspects in
  let top = if Array.length suspects = 0 then 0.0 else snd suspects.(0) in
  let n_f = Array.length c.Pipeline.faulty.Pipeline.nlrs in
  let truncated =
    Array.fold_left
      (fun acc (_, t) -> if t then acc + 1 else acc)
      0 c.Pipeline.faulty.Pipeline.nlrs
  in
  let lat a = float_of_int (Lattice.size (Lazy.force a.Pipeline.lattice)) in
  (* mean relative NLR-length change over traces present in both runs *)
  let drift =
    let acc = ref 0.0 and n = ref 0 in
    Array.iteri
      (fun i label ->
        match Pipeline.find_nlr c.Pipeline.faulty label with
        | Error _ -> ()
        | Ok (f_nlr, _) ->
          let n_len = float_of_int (Nlr.length (fst c.Pipeline.normal.Pipeline.nlrs.(i))) in
          let f_len = float_of_int (Nlr.length f_nlr) in
          if n_len > 0.0 then begin
            acc := !acc +. (Float.abs (f_len -. n_len) /. n_len);
            incr n
          end)
      c.Pipeline.normal.Pipeline.labels;
    if !n = 0 then 0.0 else !acc /. float_of_int !n
  in
  { bscore = c.Pipeline.bscore;
    mean_row_change =
      (if Array.length suspects = 0 then 0.0
       else total /. float_of_int (Array.length suspects));
    suspect_concentration = (if total <= 1e-12 then 0.0 else top /. total);
    truncated_fraction =
      (if n_f = 0 then 0.0 else float_of_int truncated /. float_of_int n_f);
    deadlocked = (if faulty_outcome.R.deadlocked <> [] then 1.0 else 0.0);
    collective_mismatch =
      (if faulty_outcome.R.collective_mismatch <> None then 1.0 else 0.0);
    race_count = float_of_int (List.length faulty_outcome.R.races);
    lattice_growth =
      (let ln = lat c.Pipeline.normal in
       if ln <= 0.0 then 1.0 else lat c.Pipeline.faulty /. ln);
    loop_drift = drift }
