(** Minimal [difftrace-rpc/1] client: connect to a daemon's Unix
    socket, send request lines, read typed messages back. The
    [difftrace client] subcommand is a thin frontend over this. *)

type conn

(** [connect ~path ()] — connect to the daemon socket, retrying (with
    a short sleep) while the daemon is still booting. [attempts]
    defaults to 100 at 50 ms apart (~5 s). *)
val connect : path:string -> ?attempts:int -> unit -> (conn, string) result

val close : conn -> unit

(** Send one raw request line (the newline is appended). *)
val send_line : conn -> string -> unit

(** Read one daemon message; [Error] on a closed connection or a line
    that does not decode. *)
val read_message : conn -> (Protocol.message, string) result

(** [rpc conn line ~on_event] sends [line] and reads until the next
    response arrives, feeding any interleaved events to [on_event]. *)
val rpc :
  conn ->
  string ->
  on_event:(Protocol.event -> unit) ->
  (Protocol.response, string) result
