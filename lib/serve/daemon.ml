(* The resident daemon: one warm Session multiplexed over many
   clients, one request at a time. The protocol core (on_line) is
   transport-free so tests can interleave clients without sockets;
   serve_stdio/serve_socket are thin transports over it. *)

module Session = Difftrace_core.Session
module Store = Difftrace_core.Store
module Memo = Difftrace_core.Memo
module Engine = Difftrace_core.Engine
module Archive = Difftrace_parlot.Archive
module Tracer = Difftrace_parlot.Tracer
module Fault = Difftrace_simulator.Fault
module Runtime = Difftrace_simulator.Runtime
module Telemetry = Difftrace_obs.Telemetry
module Span = Telemetry.Span
module Json = Telemetry.Json
module P = Protocol

let ( let* ) = Result.bind
let c_requests = Telemetry.Counter.make "rpc.requests"
let c_errors = Telemetry.Counter.make "rpc.errors"
let c_accept_errors = Telemetry.Counter.make "rpc.accept_errors"

type t = {
  dm_session : Session.t;
  state_dir : string option;
  default_engine : Engine.t;
  subscribers : (int, unit) Hashtbl.t;
  mutable requests : int;
}

let create ?store ?state_dir ~default_engine () =
  { dm_session = Session.create ?store ();
    state_dir;
    default_engine;
    subscribers = Hashtbl.create 4;
    requests = 0 }

let session t = t.dm_session
let requests_served t = t.requests

type directive = Send of { client : int; line : string }

let on_disconnect t ~client = Hashtbl.remove t.subscribers client

(* broadcast in client order, so event interleaving is deterministic *)
let broadcast t ~emit ev =
  let line = P.encode_event ev in
  Hashtbl.fold (fun c () acc -> c :: acc) t.subscribers []
  |> List.sort compare
  |> List.iter (fun client -> emit (Send { client; line }))

let flush_warn t =
  match Session.flush t.dm_session with
  | Ok () -> ()
  | Error e ->
    Printf.eprintf "difftrace serve: %s\n%!" (Session.error_to_string e)

(* --- request dispatch ------------------------------------------------- *)

let fault_of_string s =
  match Fault.of_string s with
  | f -> Ok f
  | exception Invalid_argument m -> Error (Session.Invalid m)

let run_workload (ws : P.workload_spec) =
  let* fault = fault_of_string ws.P.ws_fault in
  let level =
    if ws.P.ws_all_images then Tracer.All_images else Tracer.Main_image
  in
  Workload.run ws.P.ws_workload ~np:ws.P.ws_np ~seed:ws.P.ws_seed ~level ~fault

(* a workload source carries its outcome out, so triage can render the
   outcome-only sections (HUNG banner, logical clocks) exactly like the
   one-shot CLI that just executed the run *)
let source_of_spec = function
  | P.Src_run name -> Ok (Session.Run name, None)
  | P.Src_archive { dir; salvage } -> Ok (Session.Archive { dir; salvage }, None)
  | P.Src_workload ws ->
    let* o = run_workload ws in
    Ok (Session.Traces o.Runtime.traces, Some o)
  | P.Src_ingest { path; frontend } ->
    Ok (Session.Ingest { path; frontend }, None)

let record_dir t ~name ~out =
  match out with
  | Some d -> Some d
  | None -> (
    match (name, t.state_dir) with
    | Some n, Some sd -> Some (Filename.concat (Filename.concat sd "runs") n)
    | _ -> None)

let dispatch t ~client ~emit call =
  match call with
  | P.Status ->
    let s = Session.status t.dm_session in
    Ok
      (P.P_status
         { pr_requests = t.requests;
           pr_runs = s.Session.st_runs;
           pr_summaries = s.Session.st_summaries;
           pr_hits = s.Session.st_memo.Memo.hits;
           pr_misses = s.Session.st_memo.Memo.misses;
           pr_store =
             Option.map
               (fun (st : Store.stats) -> (st.Store.summaries, st.Store.matrices))
               s.Session.st_store;
           pr_output =
             Printf.sprintf "requests: %d\n" t.requests ^ s.Session.st_output })
  | P.Subscribe { rq_events } ->
    if rq_events then Hashtbl.replace t.subscribers client ()
    else Hashtbl.remove t.subscribers client;
    Ok
      (P.P_subscribe
         { pr_events = rq_events;
           pr_output =
             (if rq_events then "subscribed to events\n" else "unsubscribed\n")
         })
  | P.Shutdown -> Ok (P.P_shutdown { pr_output = "daemon stopping\n" })
  | P.Record { rq_workload; rq_name; rq_out; rq_v1 } ->
    let* outcome = run_workload rq_workload in
    broadcast t ~emit
      { P.ev_name = "record.run";
        ev_fields =
          [ ("workload", Json.String rq_workload.P.ws_workload);
            ("fault", Json.String rq_workload.P.ws_fault) ] };
    let dir = record_dir t ~name:rq_name ~out:rq_out in
    let* r =
      Session.record t.dm_session ~outcome
        { Session.rc_name = rq_name;
          rc_dir = dir;
          rc_format = (if rq_v1 then Archive.V1 else Archive.V2) }
    in
    Ok
      (P.P_record
         { pr_files = r.Session.rc_files;
           pr_traces = r.Session.rc_traces;
           pr_events = r.Session.rc_events;
           pr_hung = r.Session.rc_hung;
           pr_run = rq_name;
           pr_output = r.Session.rc_output })
  | P.Compare { rq_normal; rq_faulty; rq_config; rq_diffnlr }
  | P.Analyze { rq_normal; rq_faulty; rq_config; rq_diffnlr } ->
    let style = match call with P.Compare _ -> `Compare | _ -> `Analyze in
    let* config =
      P.config_of_params ~default_engine:t.default_engine rq_config
    in
    let* src_n, _ = source_of_spec rq_normal in
    let* src_f, _ = source_of_spec rq_faulty in
    let req =
      { Session.cp_normal = src_n; cp_faulty = src_f; cp_diffnlr = rq_diffnlr }
    in
    let* r =
      (match style with `Compare -> Session.compare | `Analyze -> Session.analyze)
        t.dm_session config req
    in
    Ok
      (P.P_report
         { pr_style = style;
           pr_bscore = r.Session.cp_bscore;
           pr_top_processes = r.Session.cp_top_processes;
           pr_top_threads = r.Session.cp_top_threads;
           pr_suspects = Array.to_list r.Session.cp_suspects;
           pr_output = r.Session.cp_output })
  | P.Triage { rq_subject; rq_config; rq_limit } ->
    let* config =
      P.config_of_params ~default_engine:t.default_engine rq_config
    in
    let* src, outcome = source_of_spec rq_subject in
    let* r =
      Session.triage ?outcome t.dm_session config
        { Session.tg_subject = src; tg_limit = rq_limit }
    in
    Ok
      (P.P_triage
         { pr_outliers =
             Array.to_list r.Session.tg_entries
             |> List.map (fun (e : Difftrace_core.Pipeline.triage_entry) ->
                    ( e.Difftrace_core.Pipeline.tr_label,
                      e.Difftrace_core.Pipeline.tr_score,
                      e.Difftrace_core.Pipeline.tr_truncated ));
           pr_output = r.Session.tg_output })
  | P.Query { rq_q; rq_source; rq_against; rq_config } ->
    let* config =
      P.config_of_params ~default_engine:t.default_engine rq_config
    in
    let* src, _ = source_of_spec rq_source in
    let* against =
      match rq_against with
      | None -> Ok None
      | Some spec ->
        let* s, _ = source_of_spec spec in
        Ok (Some s)
    in
    let* r =
      Session.query t.dm_session config
        { Session.qy_text = rq_q; qy_source = src; qy_against = against }
    in
    Ok
      (P.P_query
         { pq_kind = r.Session.qy_kind;
           pq_size = r.Session.qy_size;
           pq_warm = r.Session.qy_warm;
           pq_output = r.Session.qy_output })
  | P.Vdiff { rq_runs; rq_trace; rq_config } ->
    let* config =
      P.config_of_params ~default_engine:t.default_engine rq_config
    in
    let* vd_runs =
      List.fold_left
        (fun acc (r : P.vdiff_run_spec) ->
          let* acc = acc in
          let* src, _ = source_of_spec r.P.vs_source in
          Ok
            ({ Session.vdr_name = r.P.vs_name;
               vdr_source = src;
               vdr_axes = r.P.vs_axes;
               vdr_bad = r.P.vs_bad }
            :: acc))
        (Ok []) rq_runs
    in
    let* r =
      Session.vdiff t.dm_session config
        { Session.vd_runs = List.rev vd_runs; vd_trace = rq_trace }
    in
    Ok
      (P.P_vdiff
         { pv_nruns = r.Session.vd_nruns;
           pv_columns = r.Session.vd_columns;
           pv_regions = r.Session.vd_regions;
           pv_warm = r.Session.vd_warm;
           pv_condition = r.Session.vd_condition;
           pv_output = r.Session.vd_output })

(* the daemon must survive anything a request throws at it *)
let dispatch_safe t ~client ~emit call =
  match dispatch t ~client ~emit call with
  | r -> r
  | exception Invalid_argument m -> Error (Session.Invalid m)
  | exception exn -> Error (Session.Run_failed (Printexc.to_string exn))

let on_line t ~client ~emit line =
  let reply r = emit (Send { client; line = P.encode_response r }) in
  match P.decode_request line with
  | Error (id, e) ->
    Telemetry.Counter.incr c_errors;
    reply (P.error_response ~id e);
    `Continue
  | Ok { P.req_id; req_call } ->
    t.requests <- t.requests + 1;
    Telemetry.Counter.incr c_requests;
    let meth = P.method_name req_call in
    broadcast t ~emit
      { P.ev_name = "request";
        ev_fields =
          [ ("id", Json.String req_id); ("method", Json.String meth) ] };
    (match
       Span.with_root ("rpc." ^ meth) (fun () ->
           dispatch_safe t ~client ~emit req_call)
     with
    | Ok payload -> reply { P.rsp_id = Some req_id; rsp_body = Ok payload }
    | Error e ->
      Telemetry.Counter.incr c_errors;
      reply (P.error_response ~id:(Some req_id) e));
    (match req_call with
    | P.Shutdown ->
      broadcast t ~emit { P.ev_name = "shutdown"; ev_fields = [] };
      flush_warn t;
      `Shutdown
    | P.Record _ | P.Compare _ | P.Analyze _ | P.Triage _ | P.Vdiff _ ->
      (* persist what the request just computed, so a killed daemon
         restarts warm (see the kill-and-restart test) *)
      flush_warn t;
      `Continue
    | P.Query _ | P.Status | P.Subscribe _ ->
      (* query persists its own index files; nothing of the session's to flush *)
      `Continue)

(* --- transports ------------------------------------------------------- *)

let serve_stdio t =
  let emit (Send { line; _ }) =
    print_string line;
    print_char '\n';
    flush stdout
  in
  let rec loop () =
    match input_line stdin with
    | exception End_of_file -> flush_warn t
    | line -> (
      match on_line t ~client:0 ~emit line with
      | `Continue -> loop ()
      | `Shutdown -> ())
  in
  loop ()

type client_state = {
  cl_fd : Unix.file_descr;
  cl_id : int;
  cl_buf : Buffer.t;
  mutable cl_discarding : bool;
}

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ()
  in
  go 0

let serve_socket ?(accept = Unix.accept ?cloexec:None) t ~path =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  if Sys.file_exists path then Sys.remove path;
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX path);
  Unix.listen listen_fd 16;
  let clients : (int, client_state) Hashtbl.t = Hashtbl.create 8 in
  let next_id = ref 1 in
  let emit (Send { client; line }) =
    match Hashtbl.find_opt clients client with
    | Some c -> write_all c.cl_fd (line ^ "\n")
    | None -> ()
  in
  let drop c =
    on_disconnect t ~client:c.cl_id;
    Hashtbl.remove clients c.cl_id;
    try Unix.close c.cl_fd with Unix.Unix_error _ -> ()
  in
  let stopping = ref false in
  let chunk = Bytes.create 65536 in
  (* dispatch the complete lines accumulated in the client's buffer;
     an unterminated line past the protocol cap is answered with a
     structured error and discarded, never buffered without bound *)
  let rec drain c =
    let s = Buffer.contents c.cl_buf in
    match String.index_opt s '\n' with
    | Some i ->
      let line = String.sub s 0 i in
      let line =
        if line <> "" && line.[String.length line - 1] = '\r' then
          String.sub line 0 (String.length line - 1)
        else line
      in
      Buffer.clear c.cl_buf;
      Buffer.add_substring c.cl_buf s (i + 1) (String.length s - i - 1);
      if c.cl_discarding then begin
        c.cl_discarding <- false;
        drain c
      end
      else (
        match on_line t ~client:c.cl_id ~emit line with
        | `Continue -> drain c
        | `Shutdown -> stopping := true)
    | None ->
      if c.cl_discarding then Buffer.clear c.cl_buf
      else if Buffer.length c.cl_buf > P.max_line_bytes then begin
        let prefix = Buffer.sub c.cl_buf 0 (min 4096 (Buffer.length c.cl_buf)) in
        Telemetry.Counter.incr c_errors;
        emit
          (Send
             { client = c.cl_id;
               line =
                 P.encode_response
                   (P.error_response ~id:(P.scan_id prefix)
                      (Session.Protocol
                         (Printf.sprintf "request line exceeds %d bytes"
                            P.max_line_bytes))) });
        Buffer.clear c.cl_buf;
        c.cl_discarding <- true
      end
  in
  let client_of_fd fd =
    Hashtbl.fold
      (fun _ c acc -> if c.cl_fd = fd then Some c else acc)
      clients None
  in
  while not !stopping do
    let fds =
      listen_fd :: Hashtbl.fold (fun _ c acc -> c.cl_fd :: acc) clients []
    in
    match Unix.select fds [] [] (-1.0) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, _, _ ->
      List.iter
        (fun fd ->
          if !stopping then ()
          else if fd = listen_fd then begin
            (* a failed accept is the peer's problem (aborted handshake)
               or a transient of ours (fd exhaustion, a signal): either
               way it must not take down the clients already connected *)
            match accept listen_fd with
            | cfd, _ ->
              let id = !next_id in
              incr next_id;
              Hashtbl.replace clients id
                { cl_fd = cfd;
                  cl_id = id;
                  cl_buf = Buffer.create 256;
                  cl_discarding = false }
            | exception Unix.Unix_error (_, _, _) ->
              Telemetry.Counter.incr c_accept_errors
          end
          else
            match client_of_fd fd with
            | None -> ()
            | Some c -> (
              match Unix.read c.cl_fd chunk 0 (Bytes.length chunk) with
              | 0 -> drop c
              | n ->
                Buffer.add_subbytes c.cl_buf chunk 0 n;
                drain c
              | exception
                  Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
                drop c))
        readable
  done;
  Hashtbl.iter (fun _ c -> try Unix.close c.cl_fd with Unix.Unix_error _ -> ())
    clients;
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  try Sys.remove path with Sys_error _ -> ()
