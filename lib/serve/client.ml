type conn = { ic : in_channel; oc : out_channel }

let connect ~path ?(attempts = 100) () =
  let rec go n =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> Ok { ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when n > 1 ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Unix.sleepf 0.05;
      go (n - 1)
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "cannot connect to %s: %s" path (Unix.error_message e))
  in
  go (max 1 attempts)

let close c = try close_out c.oc with Sys_error _ -> ()

let send_line c line =
  output_string c.oc line;
  output_char c.oc '\n';
  flush c.oc

let read_message c =
  match input_line c.ic with
  | exception End_of_file -> Error "connection closed by daemon"
  | line -> Protocol.decode_message line

let rpc c line ~on_event =
  send_line c line;
  let rec await () =
    match read_message c with
    | Error _ as e -> e
    | Ok (Protocol.Event ev) ->
      on_event ev;
      await ()
    | Ok (Protocol.Response r) -> Ok r
  in
  await ()
