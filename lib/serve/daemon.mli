(** The resident analysis daemon.

    One daemon holds one {!Difftrace_core.Session.t} — one optional
    {!Difftrace_core.Store}, one {!Difftrace_core.Memo}, the registered
    runs — warm across requests, and speaks [difftrace-rpc/1]
    ({!Protocol}) over stdio or a Unix-domain socket.

    The protocol core is deliberately transport-free: {!on_line} maps
    one request line to emitted response/event lines, so tests drive a
    daemon (multiple interleaved clients included) without sockets or
    processes. {!serve_stdio} and {!serve_socket} are thin transports
    over it.

    Requests are handled one at a time, in arrival order — the session
    state is single-threaded by design — so concurrency means many
    clients multiplexed over one warm engine, never data races. Each
    request runs under a telemetry span [rpc.<method>] and bumps the
    [rpc.requests] / [rpc.errors] counters, so [--profile-json] yields
    a per-method profile of the daemon's lifetime. *)

module Session = Difftrace_core.Session

type t

(** [create ?store ?state_dir ~default_engine ()]. [state_dir] is where
    [record] archives runs when the request names no directory
    ([<state_dir>/runs/<name>]); without it, unarchived records are
    registered in memory only. [default_engine] serves requests whose
    config names no engine. *)
val create :
  ?store:Difftrace_core.Store.t ->
  ?state_dir:string ->
  default_engine:Difftrace_core.Engine.t ->
  unit ->
  t

val session : t -> Session.t

(** Requests decoded and dispatched so far (the in-flight request
    included, so [status] counts itself). *)
val requests_served : t -> int

(** One line to deliver to one client. Broadcasts to subscribers are
    pre-expanded into one [Send] per subscribed client. *)
type directive = Send of { client : int; line : string }

(** [on_line t ~client ~emit line] handles one request line from
    [client]: decodes it, dispatches, and emits the response (and any
    events due to subscribers) via [emit]. Total — a malformed,
    oversized or unknown-method line emits a structured error response
    carrying the best-effort request id and the daemon keeps serving.
    [`Shutdown] is returned only for a [shutdown] request, after its
    response was emitted and the store flushed. *)
val on_line :
  t -> client:int -> emit:(directive -> unit) -> string -> [ `Continue | `Shutdown ]

(** Forget a disconnected client (drops its event subscription). *)
val on_disconnect : t -> client:int -> unit

(** {2 Transports} *)

(** Serve requests from stdin (one client, id 0), responses to stdout.
    Returns on [shutdown] or EOF (both flush the store). The transport
    of the cram transcripts. *)
val serve_stdio : t -> unit

(** Bind [path] (removing a stale socket file), then accept and
    multiplex clients with a single-threaded select loop until a
    [shutdown] request arrives. A client whose unterminated line
    exceeds {!Protocol.max_line_bytes} gets an error response and the
    oversized line is discarded, not buffered. A raising accept
    ([ECONNABORTED], [EMFILE], [EINTR], ...) never stops the loop:
    the failure is counted by [rpc.accept_errors] and the connected
    clients keep being served. [accept] substitutes the accept call —
    a test hook for injecting exactly such failures. *)
val serve_socket :
  ?accept:(Unix.file_descr -> Unix.file_descr * Unix.sockaddr) ->
  t ->
  path:string ->
  unit
