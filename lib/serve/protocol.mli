(** [difftrace-rpc/1] — the daemon's typed, versioned, line-delimited
    JSON protocol.

    One JSON object per LF-terminated line, at most {!max_line_bytes}
    bytes. Three message shapes:

    {v
    request   {"difftrace-rpc":1,"id":"r1","method":"compare","params":{...}}
    response  {"difftrace-rpc":1,"id":"r1","ok":{"method":"compare",...}}
              {"difftrace-rpc":1,"id":"r1","error":{"kind":"...","message":"..."}}
    event     {"difftrace-rpc":1,"event":"record.trace","done":3,"total":8}
    v}

    Requests carry a client-chosen [id] echoed on the response; events
    are pushed to subscribed clients and carry no id. Every [ok]
    payload includes an [output] field holding the report exactly as
    the equivalent one-shot CLI subcommand prints it.

    Everything here is {e total}: [decode_*] never raises on malformed,
    truncated, oversized or adversarial input — it returns the
    structured error the daemon answers with, carrying the offending
    request id when one can still be recovered from the broken line
    (see {!scan_id}). The full message reference lives in MANUAL.md;
    the executable spec is test/serve.t. *)

module Json = Difftrace_obs.Telemetry.Json
module Session = Difftrace_core.Session

(** Protocol version; bumped on any incompatible change. *)
val version : int

(** ["difftrace-rpc/1"], the banner form. *)
val version_string : string

(** Hard cap on one request line (1 MiB). Longer lines yield an
    [invalid-request] error response, never unbounded buffering. *)
val max_line_bytes : int

(** {2 Requests} *)

(** Analysis-configuration parameters; every field optional on the
    wire, defaulting to the CLI's defaults. [pc_engine = None] uses the
    daemon's default engine ([difftrace serve --engine]). [pc_mode]
    is ["exact"] or ["sketch"] (the MinHash/LSH JSM tier). *)
type config_params = {
  pc_filter : string;
  pc_custom : string list;
  pc_attrs : string;
  pc_k : int;
  pc_linkage : string;
  pc_engine : string option;
  pc_mode : string;
}

val default_config : config_params

(** [config_of_params ~default_engine p] — the {!Config.t}, or
    [Invalid] naming the bad field. *)
val config_of_params :
  default_engine:Difftrace_core.Engine.t ->
  config_params ->
  (Difftrace_core.Config.t, Session.error) result

type workload_spec = {
  ws_workload : string;
  ws_np : int;  (** default 8 *)
  ws_seed : int;  (** default 1 *)
  ws_fault : string;  (** {!Difftrace_simulator.Fault.of_string} syntax *)
  ws_all_images : bool;
}

(** Where a request's traces come from: a run registered by [record],
    an on-disk archive, a workload the daemon executes, or a
    foreign-format file ingested through a registered frontend
    ([{"file": "a.log", "frontend": "cilog"}] on the wire). *)
type source_spec =
  | Src_run of string
  | Src_archive of { dir : string; salvage : bool }
  | Src_workload of workload_spec
  | Src_ingest of { path : string; frontend : string }

(** One run of an n-way [vdiff] request: display name, trace source,
    condition axes ([axes] object on the wire, e.g.
    [{"fault":"f2","seed":"3"}]) and the bad/good verdict label. *)
type vdiff_run_spec = {
  vs_name : string;
  vs_source : source_spec;
  vs_axes : (string * string) list;
  vs_bad : bool;
}

type call =
  | Record of {
      rq_workload : workload_spec;
      rq_name : string option;  (** register warm under this name *)
      rq_out : string option;  (** archive here (default: state dir) *)
      rq_v1 : bool;  (** write the legacy v1 archive format *)
    }
  | Compare of {
      rq_normal : source_spec;
      rq_faulty : source_spec;
      rq_config : config_params;
      rq_diffnlr : string option;
    }
  | Analyze of {
      rq_normal : source_spec;
      rq_faulty : source_spec;
      rq_config : config_params;
      rq_diffnlr : string option;
    }
  | Triage of {
      rq_subject : source_spec;
      rq_config : config_params;
      rq_limit : int;  (** default 8 *)
    }
  | Query of {
      rq_q : string;  (** one event-DB query (grammar in MANUAL.md) *)
      rq_source : source_spec;
      rq_against : source_spec option;
          (** second run for two-run queries ([diverge]) *)
      rq_config : config_params;  (** only the engine matters here *)
    }
  | Vdiff of {
      rq_runs : vdiff_run_spec list;  (** at least two *)
      rq_trace : string option;
          (** trace label to align; default: first common label *)
      rq_config : config_params;
    }
  | Status
  | Subscribe of { rq_events : bool }
  | Shutdown

type request = { req_id : string; req_call : call }

(** The wire name of a call ("record", "compare", ...). *)
val method_name : call -> string

(** {2 Responses} *)

type payload =
  | P_record of {
      pr_files : int;
      pr_traces : int;
      pr_events : int;
      pr_hung : int;
      pr_run : string option;
      pr_output : string;
    }
  | P_report of {
      pr_style : [ `Compare | `Analyze ];
      pr_bscore : float;
      pr_top_processes : int list;
      pr_top_threads : string list;
      pr_suspects : (string * float) list;
      pr_output : string;
    }
  | P_triage of {
      pr_outliers : (string * float * bool) list;  (** label, score, truncated *)
      pr_output : string;
    }
  | P_query of {
      pq_kind : string;  (** stable query-form tag ("count", "list", ...) *)
      pq_size : int;  (** matches / rows behind the rendered output *)
      pq_warm : bool;  (** every event DB came from the store, no rebuild *)
      pq_output : string;
    }
  | P_vdiff of {
      pv_nruns : int;
      pv_columns : int;  (** merged alignment width *)
      pv_regions : int;
      pv_warm : bool;  (** the alignment replayed from the store *)
      pv_condition : string option;
          (** the bad set's minimal discriminating condition *)
      pv_output : string;
    }
  | P_status of {
      pr_requests : int;
      pr_runs : (string * int) list;
      pr_summaries : int;
      pr_hits : int;
      pr_misses : int;
      pr_store : (int * int) option;  (** store summaries, matrices *)
      pr_output : string;
    }
  | P_subscribe of { pr_events : bool; pr_output : string }
  | P_shutdown of { pr_output : string }

(** The payload's CLI-identical report text. *)
val payload_output : payload -> string

type error_body = { err_kind : string; err_message : string }

val error_body_of : Session.error -> error_body

(** [rsp_id = None] answers a line whose id could not be recovered. *)
type response = { rsp_id : string option; rsp_body : (payload, error_body) result }

val error_response : id:string option -> Session.error -> response

(** {2 Events} *)

type event = { ev_name : string; ev_fields : (string * Json.t) list }

(** {2 Encode / decode — total, result-returning} *)

val encode_request : request -> string
val encode_response : response -> string
val encode_event : event -> string

(** [decode_request line] — the typed request, or the best-effort
    request id plus the error to answer with. Enforces
    {!max_line_bytes}. *)
val decode_request : string -> (request, string option * Session.error) result

type message = Response of response | Event of event

(** Client-side decode of one daemon line. *)
val decode_message : string -> (message, string) result

val decode_response : string -> (response, string) result

(** Best-effort ["id"] extraction from a line that failed to parse —
    a lexical scan, so a malformed or oversized request can still be
    answered with its own id. *)
val scan_id : string -> string option
