(** Name-based workload execution — the one place that maps the wire's
    (and the CLI's) workload names onto the bundled simulator programs,
    so the daemon and the one-shot subcommands cannot disagree about
    what "ilcs" means. *)

(** The registered names, sorted: ["heat"; "heat2d"; "ilcs"; "lulesh";
    "oddeven"]. *)
val known : string list

(** [run name ~np ~seed ~level ~fault] executes the workload once on
    the simulator. Unknown names are [Error Unknown_workload]; an
    exception escaping the workload (a crash bug, not a simulated
    fault) is captured as [Error Run_failed]. *)
val run :
  string ->
  np:int ->
  seed:int ->
  level:Difftrace_parlot.Tracer.level ->
  fault:Difftrace_simulator.Fault.t ->
  (Difftrace_simulator.Runtime.outcome, Difftrace_core.Session.error) result
